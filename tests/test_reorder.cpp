// Partition-aware planning suite (DESIGN.md §12): cross-backend differential
// correctness of non-identity orderings (the permuted multiply, inverse
// scattered, must be bit-identical to the identity run), cached-permutation
// replay accounting (zero partition seconds and zero reorder collective
// bytes on a value-matched reuse; value-only forward replay otherwise),
// Auto's joint (backend × ordering) decision on clustered structure, the
// silent Identity degrade for ineligible operands, and chaos containment of
// a rank abort mid-permute.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dist/dist_plan.hpp"
#include "dist/dist_spgemm.hpp"
#include "part/partitioner.hpp"
#include "part/permutation.hpp"
#include "runtime/fault.hpp"
#include "runtime/machine.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "util/rng.hpp"

namespace sa1d {
namespace {

// Small-integer values keep every ⊕ order exact in doubles, so permuted runs
// can be asserted *bit-identical* against the identity reference.
CscMatrix<double> with_integer_values(const CscMatrix<double>& a, std::uint64_t seed) {
  SplitMix64 g(seed);
  std::vector<double> v(a.vals().size());
  for (auto& x : v) x = static_cast<double>(1 + g.below(7));
  return CscMatrix<double>(a.nrows(), a.ncols(), a.colptr(), a.rowids(), std::move(v));
}

::testing::AssertionResult bit_equal(const CscMatrix<double>& got, const CscMatrix<double>& want) {
  if (got.nrows() != want.nrows() || got.ncols() != want.ncols())
    return ::testing::AssertionFailure() << "dimension mismatch";
  if (got.colptr() != want.colptr()) return ::testing::AssertionFailure() << "colptr differs";
  if (got.rowids() != want.rowids()) return ::testing::AssertionFailure() << "rowids differ";
  if (got.vals() != want.vals())
    return ::testing::AssertionFailure() << "values differ (not bit-identical)";
  return ::testing::AssertionSuccess();
}

/// Destroys the natural block ordering of a generator output with a seeded
/// random symmetric relabeling, so a partitioned ordering has real work to
/// do (the identity ordering scatters every cluster across all ranks).
CscMatrix<double> scrambled(const CscMatrix<double>& a, std::uint64_t seed) {
  auto p = random_permutation(a.ncols(), seed);
  return permute_symmetric(a, p);
}

/// Rectangular uniform-random matrix (the eligibility tests need shapes the
/// square generators cannot produce).
CscMatrix<double> rect(index_t nr, index_t nc, int edges, std::uint64_t seed) {
  CooMatrix<double> c(nr, nc);
  SplitMix64 g(seed);
  for (int e = 0; e < edges; ++e)
    c.push(static_cast<index_t>(g.below(static_cast<std::uint64_t>(nr))),
           static_cast<index_t>(g.below(static_cast<std::uint64_t>(nc))),
           static_cast<double>(1 + g.below(5)));
  c.canonicalize();
  return CscMatrix<double>::from_coo(c);
}

// ---- cross-backend differential -------------------------------------------

TEST(ReorderDifferential, AllBackendsBothSemiringsMatchIdentity) {
  auto a = with_integer_values(scrambled(block_clustered<double>(180, 6, 6.0, 1.0, 21), 3), 1);
  auto b = with_integer_values(erdos_renyi<double>(180, 4.0, 22), 2);
  auto want_pt = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa);
  auto want_mp = spgemm_local<MinPlus<double>, double>(a, b, LocalKernel::Spa);
  for (int P : {5, 6}) {  // prime and composite (rectangular grids)
    Machine m(P);
    m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      auto db = DistMatrix1D<double>::from_global(c, b);
      for (Algo algo : {Algo::SparseAware1D, Algo::Ring1D, Algo::Summa2D, Algo::Split3D}) {
        for (Ordering ord : {Ordering::Partitioned, Ordering::Random}) {
          DistSpgemmOptions opt;
          opt.algo = algo;
          opt.reorder = ord;
          DistSpgemmStats st;
          auto got = spgemm_dist(c, da, db, opt, &st);
          EXPECT_EQ(st.ordering, ord) << algo_name(algo);
          // C comes back in the *caller's* ordering and distribution.
          EXPECT_EQ(got.bounds(), da.bounds()) << algo_name(algo);
          EXPECT_TRUE(bit_equal(got.gather(c), want_pt))
              << "plus-times " << algo_name(algo) << " " << ordering_name(ord) << " P=" << P;
          auto got_mp = spgemm_dist<MinPlus<double>>(c, da, db, opt);
          EXPECT_TRUE(bit_equal(got_mp.gather(c), want_mp))
              << "min-plus " << algo_name(algo) << " " << ordering_name(ord) << " P=" << P;
          if (ord == Ordering::Partitioned) {
            EXPECT_GT(st.partition_seconds, 0.0);
            EXPECT_LT(st.reorder_cut_fraction, 1.0);
          }
          EXPECT_GT(st.reorder_coll_bytes, 0u);  // structure gather + permutes
        }
      }
    });
  }
}

TEST(ReorderDifferential, SquaringAliasedOperands) {
  auto a = with_integer_values(scrambled(block_clustered<double>(160, 4, 6.0, 1.0, 23), 5), 3);
  auto want = spgemm_local<PlusTimes<double>, double>(a, a, LocalKernel::Spa);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    DistSpgemmOptions opt;
    opt.reorder = Ordering::Partitioned;
    for (Algo algo : {Algo::SparseAware1D, Algo::Summa2D}) {
      opt.algo = algo;
      auto got = spgemm_dist(c, da, da, opt);
      EXPECT_TRUE(bit_equal(got.gather(c), want)) << algo_name(algo);
    }
  });
}

// ---- plan replay accounting ------------------------------------------------

TEST(ReorderReplay, ValueMatchedReuseSkipsPartitionAndMovement) {
  auto a = with_integer_values(scrambled(block_clustered<double>(200, 8, 6.0, 1.0, 31), 7), 4);
  auto b = with_integer_values(scrambled(block_clustered<double>(200, 8, 6.0, 1.0, 31), 7), 5);
  auto want = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa);
  const int P = 4;
  Machine m(P);
  std::vector<DistSpgemmStats> build(P), reuse(P);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    auto db = DistMatrix1D<double>::from_global(c, b);
    DistSpgemmOptions opt;
    opt.algo = Algo::Summa2D;
    opt.reorder = Ordering::Partitioned;
    opt.expected_iterations = 6;
    DistSpgemmPlan<double> plan;
    auto c1 = spgemm_dist_cached(c, plan, da, db, opt, &build[static_cast<std::size_t>(c.rank())]);
    auto c2 = spgemm_dist_cached(c, plan, da, db, opt, &reuse[static_cast<std::size_t>(c.rank())]);
    EXPECT_TRUE(bit_equal(c1.gather(c), want));
    EXPECT_TRUE(bit_equal(c2.gather(c), want));
  });
  for (int r = 0; r < P; ++r) {
    const auto& b0 = build[static_cast<std::size_t>(r)];
    const auto& r1 = reuse[static_cast<std::size_t>(r)];
    EXPECT_FALSE(b0.plan_reused) << r;
    EXPECT_EQ(b0.ordering, Ordering::Partitioned) << r;
    EXPECT_GT(b0.partition_seconds, 0.0) << r;
    EXPECT_GT(b0.reorder_coll_bytes, 0u) << r;
    // The replay contract: a value-matched reuse runs the multiply on the
    // cached permuted operands — no partitioner, no operand movement, and
    // no collective bytes beyond the value-replay volume.
    EXPECT_TRUE(r1.plan_reused) << r;
    EXPECT_EQ(r1.ordering, Ordering::Partitioned) << r;
    EXPECT_DOUBLE_EQ(r1.partition_seconds, 0.0) << r;
    EXPECT_EQ(r1.reorder_coll_bytes, 0u) << r;
    EXPECT_EQ(r1.meta_coll_bytes, 0u) << r;
  }
}

TEST(ReorderReplay, ChangedValuesForwardReplayThroughCachedRoutes) {
  auto pat = scrambled(block_clustered<double>(200, 8, 6.0, 1.0, 33), 9);
  auto a0 = with_integer_values(pat, 6);
  auto a1 = with_integer_values(pat, 7);  // same structure, different values
  auto want1 = spgemm_local<PlusTimes<double>, double>(a1, a1, LocalKernel::Spa);
  const int P = 4;
  Machine m(P);
  std::vector<DistSpgemmStats> st(P);
  m.run([&](Comm& c) {
    auto d0 = DistMatrix1D<double>::from_global(c, a0);
    auto d1 = DistMatrix1D<double>::from_global(c, a1);
    DistSpgemmOptions opt;
    opt.algo = Algo::SparseAware1D;
    opt.reorder = Ordering::Partitioned;
    DistSpgemmPlan<double> plan;
    spgemm_dist_cached(c, plan, d0, d0, opt);
    auto c1 = spgemm_dist_cached(c, plan, d1, d1, opt, &st[static_cast<std::size_t>(c.rank())]);
    EXPECT_TRUE(bit_equal(c1.gather(c), want1));
  });
  for (int r = 0; r < P; ++r) {
    const auto& s = st[static_cast<std::size_t>(r)];
    EXPECT_TRUE(s.plan_reused) << r;
    // New values must flow forward through the cached routes (nonzero
    // reorder bytes) but the partitioner itself never reruns.
    EXPECT_DOUBLE_EQ(s.partition_seconds, 0.0) << r;
    EXPECT_GT(s.reorder_coll_bytes, 0u) << r;
  }
}

// ---- joint Auto decision ---------------------------------------------------

TEST(ReorderAuto, PicksPartitionedOrderingOnClusteredStructure) {
  // A scrambled block-clustered matrix: the identity ordering smears every
  // cluster across all ranks, so with an iterated horizon the amortized
  // partitioned ordering must win the joint decision — and the measured cut
  // must actually be small. The horizon is MCL-scale: the one-shot
  // partitioner cost is *real host seconds* (the rest of the prediction is
  // count-based at calibrated host rates), so at this small scale it takes
  // tens of replays to pay off.
  auto a = with_integer_values(scrambled(block_clustered<double>(256, 8, 8.0, 0.5, 41), 11), 8);
  const int P = 4;
  Machine m(P);
  std::vector<DistSpgemmStats> st(P);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    DistSpgemmOptions opt;
    opt.algo = Algo::Auto;
    opt.reorder = Ordering::Auto;
    opt.expected_iterations = 96;
    spgemm_dist(c, da, da, opt, &st[static_cast<std::size_t>(c.rank())]);
  });
  for (int r = 0; r < P; ++r) {
    const auto& s = st[static_cast<std::size_t>(r)];
    EXPECT_EQ(s.requested_ordering, Ordering::Auto) << r;
    EXPECT_EQ(s.ordering, Ordering::Partitioned) << r;
    EXPECT_LT(s.reorder_cut_fraction, 0.5) << r;
    // The decision trace prices both orderings (rank-uniform).
    EXPECT_EQ(s.ordering, st[0].ordering) << r;
    EXPECT_EQ(s.chosen, st[0].chosen) << r;
  }
}

TEST(ReorderAuto, HiddenCommunityAlsoPartitioned) {
  auto a = with_integer_values(hidden_community<double>(256, 8, 8.0, 0.5, 71), 9);
  Machine m(4);
  std::vector<DistSpgemmStats> st(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    DistSpgemmOptions opt;
    opt.algo = Algo::Auto;
    opt.reorder = Ordering::Auto;
    opt.expected_iterations = 64;
    spgemm_dist(c, da, da, opt, &st[static_cast<std::size_t>(c.rank())]);
  });
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(st[static_cast<std::size_t>(r)].ordering, Ordering::Partitioned) << r;
}

// ---- eligibility degrade ---------------------------------------------------

TEST(ReorderDegrade, RectangularOperandsSilentlyRunIdentity) {
  auto a = rect(120, 100, 480, 51);
  auto b = rect(100, 90, 400, 52);
  auto want = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa);
  Machine m(4);
  std::vector<DistSpgemmStats> st(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    auto db = DistMatrix1D<double>::from_global(c, b);
    DistSpgemmOptions opt;
    opt.algo = Algo::Summa2D;
    opt.reorder = Ordering::Partitioned;
    auto got = spgemm_dist(c, da, db, opt, &st[static_cast<std::size_t>(c.rank())]);
    EXPECT_TRUE(bit_equal(got.gather(c), want));
  });
  for (int r = 0; r < 4; ++r) {
    const auto& s = st[static_cast<std::size_t>(r)];
    EXPECT_EQ(s.requested_ordering, Ordering::Partitioned) << r;
    EXPECT_EQ(s.ordering, Ordering::Identity) << r;
    EXPECT_DOUBLE_EQ(s.partition_seconds, 0.0) << r;
    EXPECT_EQ(s.reorder_coll_bytes, 0u) << r;
  }
}

// ---- chaos: abort mid-permute ----------------------------------------------

struct RankOutcome {
  bool ok = false;
  FaultClass cls = FaultClass::None;
  std::string what;
};

template <typename Body>
std::vector<RankOutcome> run_capture(Machine& m, Body&& body) {
  std::vector<RankOutcome> out(static_cast<std::size_t>(m.nranks()));
  m.run([&](Comm& c) {
    auto& o = out[static_cast<std::size_t>(c.rank())];
    try {
      body(c);
      o.ok = true;
    } catch (const Sa1dError& e) {
      o.cls = e.fault_class();
      o.what = dynamic_cast<const std::exception&>(e).what();
    } catch (const std::exception& e) {
      o.what = e.what();
    }
  });
  return out;
}

TEST(ReorderChaos, RankAbortMidPermuteFailsEveryRankTyped) {
  auto a = with_integer_values(scrambled(block_clustered<double>(160, 4, 6.0, 1.0, 61), 15), 12);
  auto g = graph_from_matrix(a);
  auto w = flops_vertex_weights(a);
  PartitionOptions popt;
  popt.nparts = 4;
  auto lay = partition_to_layout(partition_graph(g, w, popt).part, 4);

  auto workload = [&](Comm& c, std::uint64_t* pre, std::uint64_t* post) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    if (pre != nullptr) *pre = c.report().comm_ops;
    auto pa = permute_symmetric_dist(c, da, lay.perm, lay.bounds);
    if (post != nullptr) *post = c.report().comm_ops;
  };

  std::vector<std::uint64_t> pre(4, 0), post(4, 0);
  Machine probe(4);
  probe.run([&](Comm& c) {
    workload(c, &pre[static_cast<std::size_t>(c.rank())],
             &post[static_cast<std::size_t>(c.rank())]);
  });

  const int victim = 1;
  ASSERT_GT(post[static_cast<std::size_t>(victim)], pre[static_cast<std::size_t>(victim)]);
  MachineOptions o;
  o.faults.actions.push_back(
      {.kind = FaultKind::RankAbort,
       .rank = victim,
       .op_index = (pre[static_cast<std::size_t>(victim)] +
                    post[static_cast<std::size_t>(victim)]) /
                   2});
  Machine m(4, {}, o);
  auto out = run_capture(m, [&](Comm& c) { workload(c, nullptr, nullptr); });
  for (int r = 0; r < 4; ++r) {
    EXPECT_FALSE(out[static_cast<std::size_t>(r)].ok) << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].cls, FaultClass::Peer) << r;
  }
}

}  // namespace
}  // namespace sa1d
