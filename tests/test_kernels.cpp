// Unit + property tests for the local SpGEMM kernels and semirings.
#include <gtest/gtest.h>

#include <tuple>

#include "kernels/spgemm_local.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace sa1d {
namespace {

/// Dense reference multiply for ground truth.
CscMatrix<double> dense_ref(const CscMatrix<double>& a, const CscMatrix<double>& b) {
  std::vector<std::vector<double>> c(static_cast<std::size_t>(a.nrows()),
                                     std::vector<double>(static_cast<std::size_t>(b.ncols()), 0));
  for (index_t j = 0; j < b.ncols(); ++j) {
    auto ks = b.col_rows(j);
    auto vs = b.col_vals(j);
    for (std::size_t p = 0; p < ks.size(); ++p) {
      auto ars = a.col_rows(ks[p]);
      auto avs = a.col_vals(ks[p]);
      for (std::size_t q = 0; q < ars.size(); ++q)
        c[static_cast<std::size_t>(ars[q])][static_cast<std::size_t>(j)] += avs[q] * vs[p];
    }
  }
  CooMatrix<double> coo(a.nrows(), b.ncols());
  for (index_t i = 0; i < a.nrows(); ++i)
    for (index_t j = 0; j < b.ncols(); ++j)
      if (c[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] != 0.0)
        coo.push(i, j, c[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
  return CscMatrix<double>::from_coo(coo);
}

TEST(Semiring, PlusTimes) {
  EXPECT_DOUBLE_EQ(PlusTimes<>::add(2, 3), 5);
  EXPECT_DOUBLE_EQ(PlusTimes<>::multiply(2, 3), 6);
  EXPECT_DOUBLE_EQ(PlusTimes<>::zero(), 0);
}

TEST(Semiring, MinPlus) {
  EXPECT_DOUBLE_EQ(MinPlus<>::add(2, 3), 2);
  EXPECT_DOUBLE_EQ(MinPlus<>::multiply(2, 3), 5);
  EXPECT_TRUE(std::isinf(MinPlus<>::zero()));
}

TEST(Semiring, OrAnd) {
  EXPECT_TRUE(OrAnd::add(false, true));
  EXPECT_FALSE(OrAnd::multiply(true, false));
}

TEST(Semiring, PlusSelect2nd) {
  EXPECT_DOUBLE_EQ(PlusSelect2nd<>::multiply(99.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(PlusSelect2nd<>::add(1.0, 2.0), 3.0);
}

TEST(SymbolicFlops, MatchesHandCount) {
  // A: col0 has 2 nnz, col1 has 1 nnz. B col0 selects A cols {0,1}.
  CooMatrix<double> ca(3, 2), cb(2, 1);
  ca.push(0, 0, 1);
  ca.push(2, 0, 1);
  ca.push(1, 1, 1);
  cb.push(0, 0, 1);
  cb.push(1, 0, 1);
  auto a = CscMatrix<double>::from_coo(ca);
  auto b = CscMatrix<double>::from_coo(cb);
  auto f = symbolic_flops(a, b);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], 3);
  EXPECT_EQ(total_flops(a, b), 3);
}

TEST(SymbolicFlops, RejectsDimMismatch) {
  auto a = erdos_renyi<double>(10, 2.0, 1);
  auto b = erdos_renyi<double>(11, 2.0, 1);
  EXPECT_THROW(symbolic_flops(a, b), std::invalid_argument);
}

TEST(SpgemmLocal, IdentityTimesA) {
  auto a = erdos_renyi<double>(50, 4.0, 5);
  CooMatrix<double> ic(50, 50);
  for (index_t i = 0; i < 50; ++i) ic.push(i, i, 1.0);
  auto eye = CscMatrix<double>::from_coo(ic);
  for (auto k : {LocalKernel::Spa, LocalKernel::Heap, LocalKernel::Hash, LocalKernel::Hybrid}) {
    EXPECT_TRUE(approx_equal(spgemm(eye, a, k), a)) << kernel_name(k);
    EXPECT_TRUE(approx_equal(spgemm(a, eye, k), a)) << kernel_name(k);
  }
}

TEST(SpgemmLocal, EmptyOperands) {
  CscMatrix<double> a(5, 4), b(4, 3);
  auto c = spgemm(a, b);
  EXPECT_EQ(c.nrows(), 5);
  EXPECT_EQ(c.ncols(), 3);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(SpgemmLocal, DimensionMismatchThrows) {
  CscMatrix<double> a(5, 4), b(5, 3);
  EXPECT_THROW(spgemm(a, b), std::invalid_argument);
}

TEST(SpgemmLocal, RectangularMatchesDense) {
  auto a = erdos_renyi<double>(40, 3.0, 11);
  CooMatrix<double> cb(40, 25);
  SplitMix64 g(5);
  for (int e = 0; e < 120; ++e)
    cb.push(static_cast<index_t>(g.below(40)), static_cast<index_t>(g.below(25)),
            1.0 + g.uniform());
  cb.canonicalize();
  auto b = CscMatrix<double>::from_coo(cb);
  auto want = dense_ref(a, b);
  for (auto k : {LocalKernel::Spa, LocalKernel::Heap, LocalKernel::Hash, LocalKernel::Hybrid})
    EXPECT_TRUE(approx_equal(spgemm(a, b, k), want, 1e-9)) << kernel_name(k);
}

TEST(SpgemmLocal, OrAndSemiringGivesReachability) {
  auto a = mesh2d<double>(6);
  auto c = spgemm_local<OrAnd, double>(a, a, LocalKernel::Spa);
  // Patterns must match plus-times pattern (no numeric cancellation here).
  auto num = spgemm(a, a, LocalKernel::Spa);
  EXPECT_EQ(c.colptr(), num.colptr());
  EXPECT_EQ(c.rowids(), num.rowids());
  for (auto v : c.vals()) EXPECT_DOUBLE_EQ(v, 1.0);  // true -> 1.0
}

TEST(SpgemmLocal, MinPlusShortestTwoHop) {
  // Path graph 0-1-2 with weights 1, 2: two-hop distance 0->2 is 3.
  CooMatrix<double> m(3, 3);
  m.push(1, 0, 1.0);
  m.push(0, 1, 1.0);
  m.push(2, 1, 2.0);
  m.push(1, 2, 2.0);
  auto a = CscMatrix<double>::from_coo(m);
  auto d2 = spgemm_local<MinPlus<double>, double>(a, a, LocalKernel::Spa);
  // Entry (2,0): min over k of a(2,k)+a(k,0) = 2+1 = 3.
  bool found = false;
  for (std::size_t p = 0; p < d2.col_rows(0).size(); ++p)
    if (d2.col_rows(0)[p] == 2) {
      EXPECT_DOUBLE_EQ(d2.col_vals(0)[p], 3.0);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(SpgemmLocal, ThreadedMatchesSerial) {
  auto a = erdos_renyi<double>(300, 6.0, 23);
  auto want = spgemm(a, a, LocalKernel::Hash, 1);
  for (int t : {2, 3, 8}) EXPECT_EQ(spgemm(a, a, LocalKernel::Hash, t), want) << t << " threads";
}

TEST(SpgemmLocal, RejectsBadThreadCount) {
  auto a = erdos_renyi<double>(10, 2.0, 3);
  EXPECT_THROW(spgemm(a, a, LocalKernel::Hash, 0), std::invalid_argument);
}

// Property sweep: all kernels agree with SPA across structures and seeds.
using KernelCase = std::tuple<LocalKernel, int /*seed*/, int /*gen*/>;
class KernelEquivalence : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelEquivalence, MatchesSpaReference) {
  auto [kernel, seed, gen] = GetParam();
  CscMatrix<double> a;
  switch (gen) {
    case 0: a = erdos_renyi<double>(120, 5.0, static_cast<std::uint64_t>(seed)); break;
    case 1: a = rmat<double>(7, 8, static_cast<std::uint64_t>(seed)); break;
    case 2: a = mesh2d<double>(12); break;
    case 3:
      a = block_clustered<double>(128, 8, 6.0, 0.5, static_cast<std::uint64_t>(seed));
      break;
    default: FAIL();
  }
  auto want = spgemm(a, a, LocalKernel::Spa);
  auto got = spgemm(a, a, kernel);
  EXPECT_TRUE(approx_equal(got, want, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelEquivalence,
    ::testing::Combine(::testing::Values(LocalKernel::Heap, LocalKernel::Hash,
                                         LocalKernel::Hybrid),
                       ::testing::Values(1, 2, 3), ::testing::Values(0, 1, 2, 3)),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      return std::string(kernel_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_g" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SpgemmLocal, HybridThresholdBoundaryBehaviour) {
  // Hybrid must agree with reference regardless of where columns fall
  // relative to the flops threshold; exercise both tiny and heavy columns.
  auto heavy = erdos_renyi<double>(400, 30.0, 41);
  auto want = spgemm(heavy, heavy, LocalKernel::Spa);
  EXPECT_TRUE(approx_equal(spgemm(heavy, heavy, LocalKernel::Hybrid), want, 1e-9));
}

}  // namespace
}  // namespace sa1d
