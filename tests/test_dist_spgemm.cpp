// The unified spgemm_dist front-end: cross-backend bit-identity over the
// differential operand suite (ER / RMAT / rectangular / hypersparse /
// empty-rank, both semirings), per-phase accounting for every backend,
// grid-shape validation errors, and the cost-model Auto dispatch.
#include <gtest/gtest.h>

#include <string>

#include "apps/triangle.hpp"
#include "dist/dist_spgemm.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace sa1d {
namespace {

// Small-integer values make every ⊕ order exact in doubles, so "the same
// result" is bit-for-bit identity, not approximate agreement — different
// backends associate the semiring reduction differently.
CscMatrix<double> with_integer_values(CscMatrix<double> a, std::uint64_t seed) {
  SplitMix64 g(seed);
  std::vector<double> v(a.vals().size());
  for (auto& x : v) x = static_cast<double>(1 + g.below(7));
  return CscMatrix<double>(a.nrows(), a.ncols(), a.colptr(), a.rowids(), std::move(v));
}

CscMatrix<double> random_rect(index_t m, index_t n, int edges, std::uint64_t seed) {
  CooMatrix<double> c(m, n);
  SplitMix64 g(seed);
  for (int e = 0; e < edges; ++e)
    c.push(static_cast<index_t>(g.below(static_cast<std::uint64_t>(m))),
           static_cast<index_t>(g.below(static_cast<std::uint64_t>(n))),
           static_cast<double>(1 + g.below(5)));
  c.canonicalize();
  return CscMatrix<double>::from_coo(c);
}

/// Hypersparse: nnz ≪ n, whole column ranges empty (some ranks hold nothing).
CscMatrix<double> hypersparse(index_t n, int edges, std::uint64_t seed) {
  CooMatrix<double> c(n, n);
  SplitMix64 g(seed);
  for (int e = 0; e < edges; ++e)
    c.push(static_cast<index_t>(g.below(static_cast<std::uint64_t>(n) / 3)),
           static_cast<index_t>(g.below(static_cast<std::uint64_t>(n) / 3)),
           static_cast<double>(1 + g.below(3)));
  c.canonicalize();
  return CscMatrix<double>::from_coo(c);
}

::testing::AssertionResult bit_equal(const CscMatrix<double>& got, const CscMatrix<double>& want) {
  if (got.nrows() != want.nrows() || got.ncols() != want.ncols())
    return ::testing::AssertionFailure() << "dimension mismatch";
  if (got.colptr() != want.colptr()) return ::testing::AssertionFailure() << "colptr differs";
  if (got.rowids() != want.rowids()) return ::testing::AssertionFailure() << "rowids differ";
  if (got.vals() != want.vals())
    return ::testing::AssertionFailure() << "values differ (not bit-identical)";
  return ::testing::AssertionSuccess();
}

// Differential coverage deliberately includes *degenerate* Split-3D
// layerings (c = P, one rank per layer) that Auto would never dispatch:
// explicit backend requests run them, so they must be bit-correct too.
std::vector<Algo> feasible_backends(int P) {
  std::vector<Algo> out{Algo::SparseAware1D, Algo::Ring1D};
  if (summa_grid_side(P) > 0) out.push_back(Algo::Summa2D);
  if (!valid_layer_counts(P).empty()) out.push_back(Algo::Split3D);
  return out;
}

/// Runs every feasible backend through spgemm_dist over both semirings and
/// asserts the gathered results are bit-identical to the serial reference.
void check_all_backends(const CscMatrix<double>& a, const CscMatrix<double>& b, int P,
                        const std::vector<index_t>& a_bounds = {},
                        const std::vector<index_t>& b_bounds = {}) {
  auto want_pt = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa);
  auto want_mp = spgemm_local<MinPlus<double>, double>(a, b, LocalKernel::Spa);
  Machine m(P);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a, a_bounds);
    auto db = DistMatrix1D<double>::from_global(c, b, b_bounds);
    for (Algo algo : feasible_backends(P)) {
      DistSpgemmOptions opt;
      opt.algo = algo;
      auto got = spgemm_dist(c, da, db, opt);
      // Every backend returns C in B's column distribution.
      EXPECT_EQ(got.bounds(), db.bounds()) << algo_name(algo);
      EXPECT_TRUE(bit_equal(got.gather(c), want_pt)) << "plus-times " << algo_name(algo);
      auto got_mp = spgemm_dist<MinPlus<double>>(c, da, db, opt);
      EXPECT_TRUE(bit_equal(got_mp.gather(c), want_mp)) << "min-plus " << algo_name(algo);
    }
  });
}

// ---- cross-backend differential suite ------------------------------------

TEST(DistSpgemmDifferential, ErdosRenyiSquare) {
  auto a = with_integer_values(erdos_renyi<double>(180, 5.0, 11), 1);
  auto b = with_integer_values(erdos_renyi<double>(180, 5.0, 12), 2);
  for (int P : {1, 4, 8, 9}) check_all_backends(a, b, P);
}

TEST(DistSpgemmDifferential, RmatSquaring) {
  auto a = with_integer_values(rmat<double>(8, 6, 21), 3);
  for (int P : {4, 16}) check_all_backends(a, a, P);
}

TEST(DistSpgemmDifferential, RectangularOperands) {
  auto a = random_rect(90, 60, 400, 31);
  auto b = random_rect(60, 75, 350, 32);
  for (int P : {4, 9}) check_all_backends(a, b, P);
}

TEST(DistSpgemmDifferential, HypersparseOperands) {
  auto a = hypersparse(600, 50, 41);
  auto b = hypersparse(600, 40, 42);
  for (int P : {4, 8}) check_all_backends(a, b, P);
}

TEST(DistSpgemmDifferential, EmptyRankSlices) {
  // All nonzeros live in the first third of the columns; with these skewed
  // bounds ranks 1 and 2 hold structurally empty A and B slices.
  auto a = hypersparse(500, 60, 51);
  auto b = hypersparse(500, 45, 52);
  std::vector<index_t> skew{0, 200, 400, 500};
  check_all_backends(a, b, 3, skew, skew);
  check_all_backends(a, b, 4);
}

TEST(DistSpgemmDifferential, UnevenBoundsReturnInBsDistribution) {
  auto a = with_integer_values(erdos_renyi<double>(120, 4.0, 61), 4);
  std::vector<index_t> ab{0, 10, 30, 70, 120};
  std::vector<index_t> bb{0, 50, 60, 100, 120};
  check_all_backends(a, a, 4, ab, bb);
}

// ---- per-phase accounting -------------------------------------------------

TEST(DistSpgemmPhases, EveryBackendAccountsComputeAndTraffic) {
  auto a = with_integer_values(erdos_renyi<double>(400, 8.0, 71), 5);
  const int P = 4;
  for (Algo algo : feasible_backends(P)) {
    Machine m(P);
    auto rep = m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      DistSpgemmOptions opt;
      opt.algo = algo;
      spgemm_dist(c, da, da, opt);
    });
    double comp = 0, other = 0, plan = 0;
    for (const auto& r : rep.ranks) {
      comp += r.comp_s;
      other += r.other_s;
      plan += r.plan_s;
    }
    EXPECT_GT(comp, 0.0) << algo_name(algo);
    EXPECT_GT(other, 0.0) << algo_name(algo);
    EXPECT_GT(rep.total_bytes_network(), 0u) << algo_name(algo);
    EXPECT_GT(rep.total_msgs_network(), 0u) << algo_name(algo);
    if (algo == Algo::SparseAware1D) {
      EXPECT_GT(plan, 0.0) << "inspector time must be accounted";
      EXPECT_GT(rep.total_rdma_bytes(), 0u);
    } else {
      // The send/recv mirror holds for the collective-only backends.
      EXPECT_EQ(rep.total_sent_bytes(), rep.total_coll_bytes_received()) << algo_name(algo);
    }
  }
}

// ---- grid-shape validation ------------------------------------------------

TEST(DistSpgemmValidation, SummaRejectsNonSquarePWithActionableMessage) {
  Machine m(6);
  auto a = erdos_renyi<double>(30, 2.0, 2);
  try {
    m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      DistSpgemmOptions opt;
      opt.algo = Algo::Summa2D;
      spgemm_dist(c, da, da, opt);
    });
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("P=6"), std::string::npos) << msg;
    EXPECT_NE(msg.find("perfect-square"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4 or 9"), std::string::npos) << msg;  // nearest valid counts
  }
}

TEST(DistSpgemmValidation, Split3dRejectsBadLayersListingValidCounts) {
  Machine m(8);
  auto a = erdos_renyi<double>(30, 2.0, 2);
  try {
    m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      DistSpgemmOptions opt;
      opt.algo = Algo::Split3D;
      opt.layers = 3;
      spgemm_dist(c, da, da, opt);
    });
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("layers=3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("P=8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("{2, 8}"), std::string::npos) << msg;  // the valid layerings
  }
}

TEST(DistSpgemmValidation, Split3dOnlyDegenerateLayeringNamesAlternatives) {
  Machine m(6);  // 6 = 2·3: only the degenerate 6·1² layering exists
  auto a = erdos_renyi<double>(30, 2.0, 2);
  try {
    m.run([&](Comm& c) { spgemm_split_3d(c, a, a, 2); });
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("are {6}"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Algo::SparseAware1D"), std::string::npos) << msg;
  }
}

TEST(DistSpgemmValidation, LegacyWrappersStillThrowInvalidArgument) {
  Machine m(6);
  auto a = erdos_renyi<double>(20, 2.0, 2);
  EXPECT_THROW(m.run([&](Comm& c) { spgemm_summa_2d(c, a, a); }), std::invalid_argument);
}

// ---- cost-model Auto dispatch ---------------------------------------------

TEST(DistSpgemmAuto, RecordsInputsAndPredictionsAndPicksArgmin) {
  auto a = with_integer_values(erdos_renyi<double>(300, 6.0, 81), 6);
  Machine m(16, calibrate_cost_params());
  auto want = spgemm_local<PlusTimes<double>, double>(a, a, LocalKernel::Spa);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    DistSpgemmStats st;
    auto got = spgemm_dist(c, da, da, {}, &st);
    EXPECT_TRUE(bit_equal(got.gather(c), want));

    EXPECT_EQ(st.requested, Algo::Auto);
    ASSERT_EQ(st.predictions.size(), 4u);
    // The structural inputs were gathered and are globally consistent.
    EXPECT_EQ(st.inputs.P, 16);
    EXPECT_EQ(st.inputs.nnz_a, static_cast<std::uint64_t>(a.nnz()));
    EXPECT_GT(st.inputs.flops, 0u);
    EXPECT_GT(st.inputs.sa1d_fetch_elems, 0u);
    EXPECT_GT(st.inputs.needed_fraction, 0.0);
    EXPECT_LE(st.inputs.needed_fraction, 1.0);
    // The chosen backend is the cheapest feasible prediction.
    double best = -1;
    Algo argmin = Algo::SparseAware1D;
    for (const auto& pr : st.predictions) {
      EXPECT_NE(pr.algo, Algo::Auto);
      if (!pr.feasible) continue;
      EXPECT_GT(pr.total_s(), 0.0) << algo_name(pr.algo);
      if (best < 0 || pr.total_s() < best) {
        best = pr.total_s();
        argmin = pr.algo;
      }
    }
    EXPECT_EQ(st.chosen, argmin);
  });
}

TEST(DistSpgemmAuto, ExplicitBackendSkipsTheMetadataGather) {
  auto a = with_integer_values(erdos_renyi<double>(150, 4.0, 91), 7);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    DistSpgemmOptions opt;
    opt.algo = Algo::Ring1D;
    DistSpgemmStats st;
    spgemm_dist(c, da, da, opt, &st);
    EXPECT_EQ(st.requested, Algo::Ring1D);
    EXPECT_EQ(st.chosen, Algo::Ring1D);
    EXPECT_TRUE(st.predictions.empty());
  });
}

TEST(DistSpgemmAuto, AllPredictionsFeasibilityMatchesGridShapes) {
  CostModel cm(calibrate_cost_params());
  AlgoCostInputs in;
  in.P = 6;  // not a square, no c·q² layering
  in.nnz_a = in.nnz_b = 1000;
  in.flops = 10000;
  in.max_rank_flops = 2500;
  EXPECT_TRUE(cm.predict(in, Algo::SparseAware1D).feasible);
  EXPECT_TRUE(cm.predict(in, Algo::Ring1D).feasible);
  EXPECT_FALSE(cm.predict(in, Algo::Summa2D).feasible);
  in.layers = 2;
  EXPECT_FALSE(cm.predict(in, Algo::Split3D).feasible);
  in.P = 16;
  in.layers = 4;
  EXPECT_TRUE(cm.predict(in, Algo::Summa2D).feasible);
  EXPECT_TRUE(cm.predict(in, Algo::Split3D).feasible);
}

TEST(DistSpgemmAuto, SparsityAdvantageFavorsSa1dOverRing) {
  // With a tiny needed fraction the SA-1D prediction must undercut the
  // ring's full-replication cost at every realistic size.
  CostModel cm;
  AlgoCostInputs in;
  in.P = 16;
  in.nnz_a = in.nnz_b = 1'000'000;
  in.nzc_a = 40'000;
  in.flops = 40'000'000;
  in.max_rank_flops = 3'000'000;
  in.sa1d_fetch_elems = 50'000;  // 5% of A moves
  in.sa1d_fetch_msgs = 1'000;
  EXPECT_LT(cm.predict(in, Algo::SparseAware1D).total_s(),
            cm.predict(in, Algo::Ring1D).total_s());
}

// ---- plan reuse through the front-end -------------------------------------

TEST(DistSpgemmCache, PlanPointerReplaysAcrossCalls) {
  auto a = with_integer_values(erdos_renyi<double>(200, 5.0, 95), 8);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    SpgemmPlan1D<double> plan;
    DistSpgemmOptions opt;
    opt.algo = Algo::SparseAware1D;
    auto c1 = spgemm_dist(c, da, da, opt, nullptr, &plan);
    EXPECT_EQ(plan.executions(), 1);
    auto c2 = spgemm_dist(c, da, da, opt, nullptr, &plan);
    EXPECT_EQ(plan.executions(), 2);  // same structure: replayed, not rebuilt
    EXPECT_TRUE(bit_equal(c1.gather(c), c2.gather(c)));
  });
}

// ---- apps accept every backend --------------------------------------------

TEST(DistSpgemmApps, TriangleCountAgreesAcrossBackends) {
  auto g = symmetrize(erdos_renyi<double>(120, 4.0, 97));
  auto want = count_triangles_serial(g);
  const int P = 4;
  Machine m(P);
  m.run([&](Comm& c) {
    for (Algo algo : feasible_backends(P)) {
      DistSpgemmOptions opt;
      opt.algo = algo;
      EXPECT_EQ(count_triangles_dist(c, g, opt), want) << algo_name(algo);
    }
  });
}

}  // namespace
}  // namespace sa1d
