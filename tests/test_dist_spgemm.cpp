// The unified spgemm_dist front-end: cross-backend bit-identity over the
// differential operand suite (ER / RMAT / rectangular / hypersparse /
// empty-rank, both semirings), per-phase accounting for every backend,
// grid-shape validation errors, and the cost-model Auto dispatch.
#include <gtest/gtest.h>

#include <string>

#include "apps/triangle.hpp"
#include "dist/dist_spgemm.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace sa1d {
namespace {

// Small-integer values make every ⊕ order exact in doubles, so "the same
// result" is bit-for-bit identity, not approximate agreement — different
// backends associate the semiring reduction differently.
CscMatrix<double> with_integer_values(CscMatrix<double> a, std::uint64_t seed) {
  SplitMix64 g(seed);
  std::vector<double> v(a.vals().size());
  for (auto& x : v) x = static_cast<double>(1 + g.below(7));
  return CscMatrix<double>(a.nrows(), a.ncols(), a.colptr(), a.rowids(), std::move(v));
}

CscMatrix<double> random_rect(index_t m, index_t n, int edges, std::uint64_t seed) {
  CooMatrix<double> c(m, n);
  SplitMix64 g(seed);
  for (int e = 0; e < edges; ++e)
    c.push(static_cast<index_t>(g.below(static_cast<std::uint64_t>(m))),
           static_cast<index_t>(g.below(static_cast<std::uint64_t>(n))),
           static_cast<double>(1 + g.below(5)));
  c.canonicalize();
  return CscMatrix<double>::from_coo(c);
}

/// Hypersparse: nnz ≪ n, whole column ranges empty (some ranks hold nothing).
CscMatrix<double> hypersparse(index_t n, int edges, std::uint64_t seed) {
  CooMatrix<double> c(n, n);
  SplitMix64 g(seed);
  for (int e = 0; e < edges; ++e)
    c.push(static_cast<index_t>(g.below(static_cast<std::uint64_t>(n) / 3)),
           static_cast<index_t>(g.below(static_cast<std::uint64_t>(n) / 3)),
           static_cast<double>(1 + g.below(3)));
  c.canonicalize();
  return CscMatrix<double>::from_coo(c);
}

::testing::AssertionResult bit_equal(const CscMatrix<double>& got, const CscMatrix<double>& want) {
  if (got.nrows() != want.nrows() || got.ncols() != want.ncols())
    return ::testing::AssertionFailure() << "dimension mismatch";
  if (got.colptr() != want.colptr()) return ::testing::AssertionFailure() << "colptr differs";
  if (got.rowids() != want.rowids()) return ::testing::AssertionFailure() << "rowids differ";
  if (got.vals() != want.vals())
    return ::testing::AssertionFailure() << "values differ (not bit-identical)";
  return ::testing::AssertionSuccess();
}

// Every backend is feasible at every P now that the 2D/3D grids may be
// rectangular; the differential coverage deliberately includes *degenerate*
// Split-3D layerings (c = P, one rank per layer) and 1 × P grids that Auto
// would never dispatch: explicit backend requests run them, so they must be
// bit-correct too.
std::vector<Algo> feasible_backends(int) {
  return {Algo::SparseAware1D, Algo::Ring1D, Algo::Summa2D, Algo::Split3D};
}

/// Runs every feasible backend through spgemm_dist over both semirings and
/// asserts the gathered results are bit-identical to the serial reference.
void check_all_backends(const CscMatrix<double>& a, const CscMatrix<double>& b, int P,
                        const std::vector<index_t>& a_bounds = {},
                        const std::vector<index_t>& b_bounds = {}) {
  auto want_pt = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa);
  auto want_mp = spgemm_local<MinPlus<double>, double>(a, b, LocalKernel::Spa);
  Machine m(P);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a, a_bounds);
    auto db = DistMatrix1D<double>::from_global(c, b, b_bounds);
    for (Algo algo : feasible_backends(P)) {
      DistSpgemmOptions opt;
      opt.algo = algo;
      auto got = spgemm_dist(c, da, db, opt);
      // Every backend returns C in B's column distribution.
      EXPECT_EQ(got.bounds(), db.bounds()) << algo_name(algo);
      EXPECT_TRUE(bit_equal(got.gather(c), want_pt)) << "plus-times " << algo_name(algo);
      auto got_mp = spgemm_dist<MinPlus<double>>(c, da, db, opt);
      EXPECT_TRUE(bit_equal(got_mp.gather(c), want_mp)) << "min-plus " << algo_name(algo);
    }
  });
}

// ---- cross-backend differential suite ------------------------------------

TEST(DistSpgemmDifferential, ErdosRenyiSquare) {
  auto a = with_integer_values(erdos_renyi<double>(180, 5.0, 11), 1);
  auto b = with_integer_values(erdos_renyi<double>(180, 5.0, 12), 2);
  for (int P : {1, 4, 8, 9}) check_all_backends(a, b, P);
}

TEST(DistSpgemmDifferential, RectangularGridsPrimeAndCompositeP) {
  // The issue's rectangular-grid acceptance set: primes (2, 3, 5 → 1×P
  // grids), 6 → 2×3, 8 → 2×4, 12 → 3×4 — with uneven tails (180 does not
  // divide evenly by most of these) and all four backends at every P.
  auto a = with_integer_values(erdos_renyi<double>(180, 5.0, 13), 9);
  auto b = with_integer_values(erdos_renyi<double>(180, 5.0, 14), 10);
  for (int P : {2, 3, 5, 6, 8, 12}) check_all_backends(a, b, P);
}

TEST(DistSpgemmDifferential, PinnedGridShapeMatchesAutoShape) {
  // An explicitly pinned q_r × q_c (including the transposed and the
  // maximally skewed shapes) must agree bit-for-bit with the auto pick.
  auto a = with_integer_values(erdos_renyi<double>(150, 5.0, 15), 11);
  auto want = spgemm_local<PlusTimes<double>, double>(a, a, LocalKernel::Spa);
  Machine m(6);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    const std::pair<int, int> shapes[] = {{2, 3}, {3, 2}, {1, 6}, {6, 1}};
    for (auto [r, cc] : shapes) {
      DistSpgemmOptions opt;
      opt.algo = Algo::Summa2D;
      opt.grid_rows = r;
      opt.grid_cols = cc;
      auto got = spgemm_dist(c, da, da, opt);
      EXPECT_TRUE(bit_equal(got.gather(c), want)) << r << "x" << cc;
    }
    // The per-layer grid of Split-3D honors the same pin: 6 = 2·(3×1).
    DistSpgemmOptions opt3;
    opt3.algo = Algo::Split3D;
    opt3.layers = 2;
    opt3.grid_rows = 3;
    opt3.grid_cols = 1;
    EXPECT_TRUE(bit_equal(spgemm_dist(c, da, da, opt3).gather(c), want));
  });
}

TEST(DistSpgemmDifferential, RmatSquaring) {
  auto a = with_integer_values(rmat<double>(8, 6, 21), 3);
  for (int P : {4, 16}) check_all_backends(a, a, P);
}

TEST(DistSpgemmDifferential, RectangularOperands) {
  auto a = random_rect(90, 60, 400, 31);
  auto b = random_rect(60, 75, 350, 32);
  for (int P : {4, 9}) check_all_backends(a, b, P);
}

TEST(DistSpgemmDifferential, HypersparseOperands) {
  auto a = hypersparse(600, 50, 41);
  auto b = hypersparse(600, 40, 42);
  for (int P : {4, 8}) check_all_backends(a, b, P);
}

TEST(DistSpgemmDifferential, EmptyRankSlices) {
  // All nonzeros live in the first third of the columns; with these skewed
  // bounds ranks 1 and 2 hold structurally empty A and B slices.
  auto a = hypersparse(500, 60, 51);
  auto b = hypersparse(500, 45, 52);
  std::vector<index_t> skew{0, 200, 400, 500};
  check_all_backends(a, b, 3, skew, skew);
  check_all_backends(a, b, 4);
}

TEST(DistSpgemmDifferential, UnevenBoundsReturnInBsDistribution) {
  auto a = with_integer_values(erdos_renyi<double>(120, 4.0, 61), 4);
  std::vector<index_t> ab{0, 10, 30, 70, 120};
  std::vector<index_t> bb{0, 50, 60, 100, 120};
  check_all_backends(a, a, 4, ab, bb);
}

// ---- per-phase accounting -------------------------------------------------

TEST(DistSpgemmPhases, EveryBackendAccountsComputeAndTraffic) {
  auto a = with_integer_values(erdos_renyi<double>(400, 8.0, 71), 5);
  const int P = 4;
  for (Algo algo : feasible_backends(P)) {
    Machine m(P);
    auto rep = m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      DistSpgemmOptions opt;
      opt.algo = algo;
      spgemm_dist(c, da, da, opt);
    });
    double comp = 0, other = 0, plan = 0;
    for (const auto& r : rep.ranks) {
      comp += r.comp_s;
      other += r.other_s;
      plan += r.plan_s;
    }
    EXPECT_GT(comp, 0.0) << algo_name(algo);
    EXPECT_GT(other, 0.0) << algo_name(algo);
    EXPECT_GT(rep.total_bytes_network(), 0u) << algo_name(algo);
    EXPECT_GT(rep.total_msgs_network(), 0u) << algo_name(algo);
    if (algo == Algo::SparseAware1D) {
      EXPECT_GT(plan, 0.0) << "inspector time must be accounted";
      EXPECT_GT(rep.total_rdma_bytes(), 0u);
    } else {
      // The send/recv mirror holds for the collective-only backends.
      EXPECT_EQ(rep.total_sent_bytes(), rep.total_coll_bytes_received()) << algo_name(algo);
    }
  }
}

// ---- grid-shape validation ------------------------------------------------

TEST(DistSpgemmValidation, PinnedGridRejectedWithActionableMessage) {
  Machine m(6);
  auto a = erdos_renyi<double>(30, 2.0, 2);
  try {
    m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      DistSpgemmOptions opt;
      opt.algo = Algo::Summa2D;
      opt.grid_rows = 4;  // 4 does not divide 6
      spgemm_dist(c, da, da, opt);
    });
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("grid_rows=4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("P=6"), std::string::npos) << msg;
    EXPECT_NE(msg.find("{1, 2, 3, 6}"), std::string::npos) << msg;  // the divisors
  }
}

TEST(DistSpgemmValidation, Split3dRejectsBadLayersListingValidCounts) {
  Machine m(8);
  auto a = erdos_renyi<double>(30, 2.0, 2);
  try {
    m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      DistSpgemmOptions opt;
      opt.algo = Algo::Split3D;
      opt.layers = 3;
      spgemm_dist(c, da, da, opt);
    });
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("layers=3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("P=8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("{1, 2, 4, 8}"), std::string::npos) << msg;  // every divisor
  }
}

TEST(DistSpgemmValidation, FormerlyInfeasibleShapesNowRun) {
  // P=6 SUMMA (the old "not a perfect square" rejection) and P=6 layers=2
  // split-3D (the old "only the degenerate layering" rejection) both run on
  // rectangular grids now and agree with the serial reference.
  Machine m(6);
  auto a = erdos_renyi<double>(60, 3.0, 2);
  auto want = spgemm(a, a, LocalKernel::Spa);
  m.run([&](Comm& c) {
    EXPECT_TRUE(approx_equal(gather_coo(c, spgemm_summa_2d(c, a, a)), want, 1e-9));
    EXPECT_TRUE(approx_equal(gather_coo(c, spgemm_split_3d(c, a, a, 2)), want, 1e-9));
  });
}

// ---- cost-model Auto dispatch ---------------------------------------------

TEST(DistSpgemmAuto, RecordsInputsAndPredictionsAndPicksArgmin) {
  auto a = with_integer_values(erdos_renyi<double>(300, 6.0, 81), 6);
  Machine m(16, calibrate_cost_params());
  auto want = spgemm_local<PlusTimes<double>, double>(a, a, LocalKernel::Spa);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    DistSpgemmStats st;
    auto got = spgemm_dist(c, da, da, {}, &st);
    EXPECT_TRUE(bit_equal(got.gather(c), want));

    EXPECT_EQ(st.requested, Algo::Auto);
    ASSERT_EQ(st.predictions.size(), 4u);
    // The structural inputs were gathered and are globally consistent.
    EXPECT_EQ(st.inputs.P, 16);
    EXPECT_EQ(st.inputs.nnz_a, static_cast<std::uint64_t>(a.nnz()));
    EXPECT_GT(st.inputs.flops, 0u);
    EXPECT_GT(st.inputs.sa1d_fetch_elems, 0u);
    EXPECT_GT(st.inputs.needed_fraction, 0.0);
    EXPECT_LE(st.inputs.needed_fraction, 1.0);
    // The chosen backend is the cheapest feasible prediction.
    double best = -1;
    Algo argmin = Algo::SparseAware1D;
    for (const auto& pr : st.predictions) {
      EXPECT_NE(pr.algo, Algo::Auto);
      if (!pr.feasible) continue;
      EXPECT_GT(pr.total_s(), 0.0) << algo_name(pr.algo);
      if (best < 0 || pr.total_s() < best) {
        best = pr.total_s();
        argmin = pr.algo;
      }
    }
    EXPECT_EQ(st.chosen, argmin);
  });
}

TEST(DistSpgemmAuto, ExplicitBackendSkipsTheMetadataGather) {
  auto a = with_integer_values(erdos_renyi<double>(150, 4.0, 91), 7);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    DistSpgemmOptions opt;
    opt.algo = Algo::Ring1D;
    DistSpgemmStats st;
    spgemm_dist(c, da, da, opt, &st);
    EXPECT_EQ(st.requested, Algo::Ring1D);
    EXPECT_EQ(st.chosen, Algo::Ring1D);
    EXPECT_TRUE(st.predictions.empty());
  });
}

TEST(DistSpgemmAuto, AllBackendsFeasibleAtEveryP) {
  // The rectangular-grid acceptance regression: choose_algo must report all
  // four backends feasible at every P ≥ 2 — primes included — so Auto is a
  // total function of P and fig08/fig09 never lose a series.
  CostModel cm(calibrate_cost_params());
  AlgoCostInputs in;
  in.m = in.k = in.n = 4096;
  in.nnz_a = in.nnz_b = 40000;
  in.flops = 400000;
  in.max_rank_flops = 100000;
  for (int P : {2, 3, 5, 6, 7, 8, 12, 16}) {
    in.P = P;
    std::vector<AlgoPrediction> preds;
    int layers = 1;
    choose_algo(cm, in, 0, &layers, &preds);
    ASSERT_EQ(preds.size(), 4u);
    for (const auto& pr : preds) {
      if (pr.algo == Algo::Split3D && !split3d_has_nontrivial_layers(P)) {
        // Primes have no middle layering; Auto skips the degenerate ones.
        EXPECT_FALSE(pr.feasible) << "P=" << P;
        continue;
      }
      EXPECT_TRUE(pr.feasible) << algo_name(pr.algo) << " P=" << P;
      EXPECT_GT(pr.total_s(), 0.0) << algo_name(pr.algo) << " P=" << P;
    }
  }
  // Direct predictions (no dispatch policy): Summa2D at any P, Split3D at
  // any dividing layer count — including quotients that are not squares.
  in.P = 6;
  EXPECT_TRUE(cm.predict(in, Algo::Summa2D).feasible);
  in.layers = 2;  // layer grids of 3 ranks: 1×3
  EXPECT_TRUE(cm.predict(in, Algo::Split3D).feasible);
  in.layers = 4;  // 4 does not divide 6
  EXPECT_FALSE(cm.predict(in, Algo::Split3D).feasible);
  in.P = 16;
  in.layers = 4;
  EXPECT_TRUE(cm.predict(in, Algo::Split3D).feasible);
  // A pinned grid shape that does not factor P is the one remaining
  // infeasibility.
  in.grid_rows = 5;
  EXPECT_FALSE(cm.predict(in, Algo::Summa2D).feasible);
}

TEST(DistSpgemmAuto, ReplayPredictionsAreCheaperAndPlanFree) {
  // predict_replay prices the cached value-only replay: for every backend
  // it must undercut the one-shot prediction (less volume, no metadata, no
  // sort-side work) while keeping the same compute term.
  CostModel cm(calibrate_cost_params());
  AlgoCostInputs in;
  in.P = 6;
  in.m = in.k = in.n = 4096;
  in.nnz_a = in.nnz_b = 40000;
  in.nzc_a = 3000;
  in.flops = 400000;
  in.max_rank_flops = 100000;
  in.sa1d_fetch_elems = 20000;
  in.sa1d_fetch_msgs = 600;
  in.layers = 2;
  for (Algo algo : {Algo::SparseAware1D, Algo::Ring1D, Algo::Summa2D, Algo::Split3D}) {
    auto one_shot = cm.predict(in, algo);
    auto replay = cm.predict_replay(in, algo);
    ASSERT_TRUE(one_shot.feasible && replay.feasible) << algo_name(algo);
    EXPECT_LT(replay.total_s(), one_shot.total_s()) << algo_name(algo);
    EXPECT_DOUBLE_EQ(replay.comp_s, one_shot.comp_s) << algo_name(algo);
    EXPECT_LE(replay.comm_s, one_shot.comm_s) << algo_name(algo);
  }
}

TEST(DistSpgemmAuto, SparsityAdvantageFavorsSa1dOverRing) {
  // With a tiny needed fraction the SA-1D prediction must undercut the
  // ring's full-replication cost at every realistic size.
  CostModel cm;
  AlgoCostInputs in;
  in.P = 16;
  in.nnz_a = in.nnz_b = 1'000'000;
  in.nzc_a = 40'000;
  in.flops = 40'000'000;
  in.max_rank_flops = 3'000'000;
  in.sa1d_fetch_elems = 50'000;  // 5% of A moves
  in.sa1d_fetch_msgs = 1'000;
  EXPECT_LT(cm.predict(in, Algo::SparseAware1D).total_s(),
            cm.predict(in, Algo::Ring1D).total_s());
}

// ---- plan reuse through the front-end -------------------------------------

TEST(DistSpgemmCache, PlanPointerReplaysAcrossCalls) {
  auto a = with_integer_values(erdos_renyi<double>(200, 5.0, 95), 8);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    SpgemmPlan1D<double> plan;
    DistSpgemmOptions opt;
    opt.algo = Algo::SparseAware1D;
    auto c1 = spgemm_dist(c, da, da, opt, nullptr, &plan);
    EXPECT_EQ(plan.executions(), 1);
    auto c2 = spgemm_dist(c, da, da, opt, nullptr, &plan);
    EXPECT_EQ(plan.executions(), 2);  // same structure: replayed, not rebuilt
    EXPECT_TRUE(bit_equal(c1.gather(c), c2.gather(c)));
  });
}

// ---- apps accept every backend --------------------------------------------

TEST(DistSpgemmApps, TriangleCountAgreesAcrossBackends) {
  auto g = symmetrize(erdos_renyi<double>(120, 4.0, 97));
  auto want = count_triangles_serial(g);
  const int P = 4;
  Machine m(P);
  m.run([&](Comm& c) {
    for (Algo algo : feasible_backends(P)) {
      DistSpgemmOptions opt;
      opt.algo = algo;
      EXPECT_EQ(count_triangles_dist(c, g, opt), want) << algo_name(algo);
    }
  });
}

}  // namespace
}  // namespace sa1d
