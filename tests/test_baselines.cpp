// Tests for the baseline distributed algorithms: outer-product 1D
// (Algorithm 3), naive ring 1D, 2D sparse SUMMA, Split-3D.
#include <gtest/gtest.h>

#include "core/outer_product.hpp"
#include "core/spgemm1d.hpp"
#include "dist/naive1d.hpp"
#include "dist/spgemm3d.hpp"
#include "dist/summa2d.hpp"
#include "sparse/generators.hpp"

namespace sa1d {
namespace {

CscMatrix<double> random_rect(index_t m, index_t n, int edges, std::uint64_t seed) {
  CooMatrix<double> c(m, n);
  SplitMix64 g(seed);
  for (int e = 0; e < edges; ++e)
    c.push(static_cast<index_t>(g.below(static_cast<std::uint64_t>(m))),
           static_cast<index_t>(g.below(static_cast<std::uint64_t>(n))), 1.0 + g.uniform());
  c.canonicalize();
  return CscMatrix<double>::from_coo(c);
}

// ---- Outer product (Algorithm 3) ----------------------------------------

TEST(OuterProduct1d, MatchesSerialSquare) {
  auto a = erdos_renyi<double>(120, 5.0, 3);
  auto want = spgemm(a, a, LocalKernel::Spa);
  for (int P : {1, 3, 5}) {
    Machine m(P);
    m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      auto got = spgemm_outer_product_1d(c, da, da).gather(c);
      EXPECT_TRUE(approx_equal(got, want, 1e-9)) << "P=" << P;
    });
  }
}

TEST(OuterProduct1d, MatchesSerialRectangular) {
  auto a = random_rect(60, 40, 250, 5);
  auto b = random_rect(40, 30, 180, 6);
  auto want = spgemm(a, b, LocalKernel::Spa);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    auto db = DistMatrix1D<double>::from_global(c, b);
    auto got = spgemm_outer_product_1d(c, da, db).gather(c);
    EXPECT_TRUE(approx_equal(got, want, 1e-9));
  });
}

TEST(OuterProduct1d, AgreesWithSparsityAware1d) {
  auto a = mesh2d<double>(11);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    auto c1 = spgemm_1d(c, da, da).gather(c);
    auto c2 = spgemm_outer_product_1d(c, da, da).gather(c);
    EXPECT_TRUE(approx_equal(c1, c2, 1e-9));
  });
}

TEST(OuterProduct1d, DimensionMismatchThrows) {
  Machine m(2);
  EXPECT_THROW(m.run([&](Comm& c) {
    auto a = DistMatrix1D<double>::from_global(c, erdos_renyi<double>(10, 2.0, 1));
    auto b = DistMatrix1D<double>::from_global(c, erdos_renyi<double>(12, 2.0, 1));
    spgemm_outer_product_1d(c, a, b);
  }),
               std::invalid_argument);
}

// ---- Naive ring 1D -------------------------------------------------------

TEST(NaiveRing1d, MatchesSerial) {
  auto a = erdos_renyi<double>(90, 4.0, 17);
  auto want = spgemm(a, a, LocalKernel::Spa);
  for (int P : {1, 2, 5}) {
    Machine m(P);
    m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      auto got = spgemm_naive_ring_1d(c, da, da).gather(c);
      EXPECT_TRUE(approx_equal(got, want, 1e-9)) << "P=" << P;
    });
  }
}

TEST(NaiveRing1d, MovesWholeAAcrossRing) {
  // Ballard's analysis: the ring circulates all of A through every rank, so
  // network traffic is ~(P-1) x nnz(A) triples — far above sparsity-aware.
  auto a = block_clustered<double>(256, 8, 6.0, 0.25, 9);
  const int P = 4;
  Machine m(P);
  auto ring = m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    spgemm_naive_ring_1d(c, da, da);
  });
  auto aware = m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    spgemm_1d(c, da, da);
  });
  EXPECT_GT(ring.total_bytes_network(), 2 * aware.total_bytes_network());
}

// ---- 2D sparse SUMMA -----------------------------------------------------

TEST(Summa2d, MatchesSerialOnAnyProcessCount) {
  // Square grids (1, 4, 9), rectangular factorizations (6 → 2×3, 8 → 2×4,
  // 12 → 3×4), and primes (5 → 1×5): every P forms a q_r × q_c grid.
  auto a = erdos_renyi<double>(80, 4.0, 21);
  auto want = spgemm(a, a, LocalKernel::Spa);
  for (int P : {1, 4, 9, 2, 3, 5, 6, 8, 12}) {
    Machine m(P);
    m.run([&](Comm& c) {
      auto blk = spgemm_summa_2d(c, a, a);
      auto got = gather_coo(c, blk);
      EXPECT_TRUE(approx_equal(got, want, 1e-9)) << "P=" << P;
    });
  }
}

TEST(Summa2d, GridShapeFactorsNearestSquare) {
  EXPECT_EQ(summa_grid_shape(1), (GridShape{1, 1, 1}));
  EXPECT_EQ(summa_grid_shape(4), (GridShape{2, 2, 2}));
  EXPECT_EQ(summa_grid_shape(6), (GridShape{2, 3, 6}));
  EXPECT_EQ(summa_grid_shape(8), (GridShape{2, 4, 4}));
  EXPECT_EQ(summa_grid_shape(12), (GridShape{3, 4, 12}));
  EXPECT_EQ(summa_grid_shape(16), (GridShape{4, 4, 4}));
  EXPECT_EQ(summa_grid_shape(5), (GridShape{1, 5, 5}));   // prime: 1 × P
  // Pinned shapes: one side derives the other; both pinned are verbatim.
  EXPECT_EQ(summa_grid_shape(6, 3, 0), (GridShape{3, 2, 6}));
  EXPECT_EQ(summa_grid_shape(6, 0, 2), (GridShape{3, 2, 6}));
  EXPECT_EQ(summa_grid_shape(12, 2, 6), (GridShape{2, 6, 6}));
  // A nonsensical pin (negative, or not dividing P) must yield an invalid
  // shape — never a silent fallback to the auto grid.
  EXPECT_EQ(summa_grid_shape(6, -3, 0).stages, 0);
  EXPECT_EQ(summa_grid_shape(6, -3, -2).stages, 0);
  EXPECT_EQ(summa_grid_shape(6, 0, 4).stages, 0);
  EXPECT_THROW(require_grid_shape(6, -3, 0, "test"), std::invalid_argument);
}

TEST(Summa2d, RectangularOperands) {
  auto a = random_rect(50, 36, 200, 7);
  auto b = random_rect(36, 44, 200, 8);
  auto want = spgemm(a, b, LocalKernel::Spa);
  Machine m(4);
  m.run([&](Comm& c) {
    auto got = gather_coo(c, spgemm_summa_2d(c, a, b));
    EXPECT_TRUE(approx_equal(got, want, 1e-9));
  });
}

TEST(Summa2d, PinnedGridShapeMustFactorP) {
  Machine m(6);
  auto a = erdos_renyi<double>(20, 2.0, 2);
  EXPECT_THROW(m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    spgemm_summa_2d_dist(c, da, da, LocalKernel::Hybrid, 1, nullptr, /*grid_rows=*/4);
  }),
               std::invalid_argument);
}

// ---- Split-3D --------------------------------------------------------------

TEST(Split3d, ValidLayerCounts) {
  // Every divisor of P is a layer count now that layer grids may be
  // rectangular (P/c always factors into some q_r × q_c).
  EXPECT_EQ(valid_layer_counts(16), (std::vector<int>{1, 2, 4, 8, 16}));
  EXPECT_EQ(valid_layer_counts(8), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(valid_layer_counts(6), (std::vector<int>{1, 2, 3, 6}));
  EXPECT_EQ(valid_layer_counts(1), (std::vector<int>{1}));
}

TEST(Split3d, MatchesSerialAcrossLayerCounts) {
  // 8 = 1·(2×4) = 2·(2×2) = 4·(1×2) = 8·(1×1): every divisor layers, the
  // c=1 and c=4 cases on rectangular layer grids.
  auto a = erdos_renyi<double>(70, 4.0, 13);
  auto want = spgemm(a, a, LocalKernel::Spa);
  for (int layers : {1, 2, 4, 8}) {
    int P = 8;
    Machine m(P);
    m.run([&](Comm& c) {
      auto got = gather_coo(c, spgemm_split_3d(c, a, a, layers));
      EXPECT_TRUE(approx_equal(got, want, 1e-9)) << "layers=" << layers;
    });
  }
}

TEST(Split3d, LayersEqualOneMatchesSumma) {
  auto a = mesh2d<double>(9);
  Machine m(4);
  m.run([&](Comm& c) {
    auto c3 = gather_coo(c, spgemm_split_3d(c, a, a, 1));
    auto c2 = gather_coo(c, spgemm_summa_2d(c, a, a));
    EXPECT_TRUE(approx_equal(c3, c2, 1e-9));
  });
}

TEST(Split3d, RejectsBadLayerCount) {
  Machine m(8);
  auto a = erdos_renyi<double>(20, 2.0, 2);
  EXPECT_THROW(m.run([&](Comm& c) { spgemm_split_3d(c, a, a, 3); }), std::invalid_argument);
}

TEST(Split3d, RectangularOperands) {
  auto a = random_rect(48, 32, 180, 9);
  auto b = random_rect(32, 40, 180, 10);
  auto want = spgemm(a, b, LocalKernel::Spa);
  Machine m(8);
  m.run([&](Comm& c) {
    auto got = gather_coo(c, spgemm_split_3d(c, a, b, 2));
    EXPECT_TRUE(approx_equal(got, want, 1e-9));
  });
}

// ---- Cross-algorithm agreement -------------------------------------------

TEST(AllAlgorithms, AgreeOnOneInput) {
  auto a = block_clustered<double>(144, 6, 5.0, 0.5, 14);
  auto want = spgemm(a, a, LocalKernel::Spa);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    EXPECT_TRUE(approx_equal(spgemm_1d(c, da, da).gather(c), want, 1e-9));
    EXPECT_TRUE(approx_equal(spgemm_outer_product_1d(c, da, da).gather(c), want, 1e-9));
    EXPECT_TRUE(approx_equal(spgemm_naive_ring_1d(c, da, da).gather(c), want, 1e-9));
    EXPECT_TRUE(approx_equal(gather_coo(c, spgemm_summa_2d(c, a, a)), want, 1e-9));
    EXPECT_TRUE(approx_equal(gather_coo(c, spgemm_split_3d(c, a, a, 4)), want, 1e-9));
  });
}

}  // namespace
}  // namespace sa1d
