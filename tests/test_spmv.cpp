// Tests for CSR and the SpMV kernels (local CSC/CSR and distributed 1D).
#include <gtest/gtest.h>

#include "kernels/spmv.hpp"
#include "sparse/generators.hpp"

namespace sa1d {
namespace {

std::vector<double> dense_spmv(const CscMatrix<double>& a, const std::vector<double>& x) {
  std::vector<double> y(static_cast<std::size_t>(a.nrows()), 0.0);
  for (index_t j = 0; j < a.ncols(); ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_vals(j);
    for (std::size_t p = 0; p < rows.size(); ++p)
      y[static_cast<std::size_t>(rows[p])] += vals[p] * x[static_cast<std::size_t>(j)];
  }
  return y;
}

std::vector<double> random_vec(index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = g.uniform() - 0.5;
  return x;
}

TEST(Csr, RoundTripThroughCsc) {
  auto a = erdos_renyi<double>(80, 4.0, 3);
  auto r = CsrMatrix<double>::from_csc(a);
  EXPECT_EQ(r.nnz(), a.nnz());
  EXPECT_EQ(r.to_csc(), a);
}

TEST(Csr, RowAccessors) {
  CooMatrix<double> m(3, 4);
  m.push(1, 0, 5.0);
  m.push(1, 3, 7.0);
  auto r = CsrMatrix<double>::from_csc(CscMatrix<double>::from_coo(m));
  EXPECT_EQ(r.row_nnz(0), 0);
  ASSERT_EQ(r.row_nnz(1), 2);
  EXPECT_EQ(r.row_cols(1)[0], 0);
  EXPECT_EQ(r.row_cols(1)[1], 3);
  EXPECT_DOUBLE_EQ(r.row_vals(1)[1], 7.0);
}

TEST(Csr, ValidatesConstruction) {
  EXPECT_THROW(CsrMatrix<double>(2, 2, {0, 1}, {0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix<double>(2, 2, {0, 1, 3}, {0}, {1.0}), std::invalid_argument);
}

TEST(Spmv, CscMatchesDense) {
  auto a = erdos_renyi<double>(120, 5.0, 7);
  auto x = random_vec(120, 1);
  auto want = dense_spmv(a, x);
  auto got = spmv(a, std::span<const double>(x));
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-12);
}

TEST(Spmv, CsrMatchesCsc) {
  auto a = erdos_renyi<double>(100, 4.0, 9);
  auto r = CsrMatrix<double>::from_csc(a);
  auto x = random_vec(100, 2);
  auto yc = spmv(a, std::span<const double>(x));
  auto yr = spmv(r, std::span<const double>(x));
  for (std::size_t i = 0; i < yc.size(); ++i) EXPECT_NEAR(yc[i], yr[i], 1e-12);
}

TEST(Spmv, RectangularShapes) {
  CooMatrix<double> m(3, 5);
  m.push(0, 4, 2.0);
  m.push(2, 1, 3.0);
  auto a = CscMatrix<double>::from_coo(m);
  std::vector<double> x{1, 2, 3, 4, 5};
  auto y = spmv(a, std::span<const double>(x));
  EXPECT_DOUBLE_EQ(y[0], 10.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 6.0);
}

TEST(Spmv, SizeMismatchThrows) {
  auto a = erdos_renyi<double>(10, 2.0, 1);
  std::vector<double> x(9);
  EXPECT_THROW(spmv(a, std::span<const double>(x)), std::invalid_argument);
}

TEST(Spmv, MinPlusSemiringOneHopDistances) {
  // y = A ⊗ x over (min,+) relaxes one hop of shortest paths.
  CooMatrix<double> m(2, 2);
  m.push(1, 0, 3.0);
  auto a = CscMatrix<double>::from_coo(m);
  std::vector<double> x{5.0, std::numeric_limits<double>::infinity()};
  auto y = spmv<MinPlus<double>>(a, std::span<const double>(x));
  EXPECT_DOUBLE_EQ(y[1], 8.0);
}

TEST(Spmv1d, MatchesSerialAcrossP) {
  auto a = hidden_community<double>(160, 8, 6.0, 0.5, 4);
  auto x = random_vec(160, 3);
  auto want = dense_spmv(a, x);
  for (int P : {1, 4, 7}) {
    Machine m(P);
    m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      std::vector<double> x_local(x.begin() + da.col_lo(), x.begin() + da.col_hi());
      auto y = spmv_1d(c, da, std::span<const double>(x_local));
      ASSERT_EQ(y.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_NEAR(y[i], want[i], 1e-9) << "P=" << P;
    });
  }
}

TEST(Spmv1d, SliceWidthValidated) {
  auto a = erdos_renyi<double>(20, 2.0, 5);
  Machine m(2);
  EXPECT_THROW(m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    std::vector<double> wrong(3);
    spmv_1d(c, da, std::span<const double>(wrong));
  }),
               std::invalid_argument);
}

TEST(Spmv1d, PowerIterationConverges) {
  // Integration: dominant eigenvector of a symmetric matrix via repeated
  // distributed SpMV (a realistic consumer of the 1D layout).
  auto a = mesh2d<double>(8);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    std::vector<double> x(static_cast<std::size_t>(a.ncols()), 1.0);
    double lambda = 0;
    for (int it = 0; it < 60; ++it) {
      std::vector<double> x_local(x.begin() + da.col_lo(), x.begin() + da.col_hi());
      auto y = spmv_1d(c, da, std::span<const double>(x_local));
      double norm = 0;
      for (auto v : y) norm += v * v;
      norm = std::sqrt(norm);
      lambda = norm;
      for (auto& v : y) v /= norm;
      x = std::move(y);
    }
    // Rayleigh quotient check: ||A x|| ≈ lambda with unit x.
    std::vector<double> x_local(x.begin() + da.col_lo(), x.begin() + da.col_hi());
    auto ax = spmv_1d(c, da, std::span<const double>(x_local));
    double dot = 0;
    for (std::size_t i = 0; i < ax.size(); ++i) dot += ax[i] * x[i];
    EXPECT_NEAR(dot, lambda, 1e-6 * lambda);
  });
}

}  // namespace
}  // namespace sa1d
