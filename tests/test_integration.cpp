// Cross-module integration tests: every distributed SpGEMM algorithm agrees
// with the serial reference on every dataset analogue across process
// counts; preprocessing pipelines compose end-to-end; results are
// bit-stable across P for deterministic inputs.
#include <gtest/gtest.h>

#include <tuple>

#include "sa1d.hpp"

namespace sa1d {
namespace {

enum class Algo { Aware1d, Outer1d, Ring1d, Summa2d, Split3d };

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::Aware1d: return "aware1d";
    case Algo::Outer1d: return "outer1d";
    case Algo::Ring1d: return "ring1d";
    case Algo::Summa2d: return "summa2d";
    case Algo::Split3d: return "split3d";
  }
  return "?";
}

CscMatrix<double> run_algo(Comm& c, Algo algo, const CscMatrix<double>& a) {
  switch (algo) {
    case Algo::Aware1d: {
      auto da = DistMatrix1D<double>::from_global(c, a);
      return spgemm_1d(c, da, da).gather(c);
    }
    case Algo::Outer1d: {
      auto da = DistMatrix1D<double>::from_global(c, a);
      return spgemm_outer_product_1d(c, da, da).gather(c);
    }
    case Algo::Ring1d: {
      auto da = DistMatrix1D<double>::from_global(c, a);
      return spgemm_naive_ring_1d(c, da, da).gather(c);
    }
    case Algo::Summa2d: return gather_coo(c, spgemm_summa_2d(c, a, a));
    case Algo::Split3d: return gather_coo(c, spgemm_split_3d(c, a, a, 2));
  }
  throw std::logic_error("unknown algo");
}

using Case = std::tuple<Algo, Dataset>;
class SquaringEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(SquaringEquivalence, AllAlgorithmsMatchSerialOnAllDatasets) {
  auto [algo, ds] = GetParam();
  auto a = make_dataset(ds, 0.04);
  auto want = spgemm(a, a, LocalKernel::Spa);
  // 2D needs a perfect square; 3D with c=2 needs P/2 square. P=8 covers 3D
  // (8/2=4=2²) but not 2D; use P=4 for 2D, P=8 otherwise.
  int P = algo == Algo::Summa2d ? 4 : 8;
  Machine m(P);
  m.run([&, algo = algo](Comm& c) {
    auto got = run_algo(c, algo, a);
    EXPECT_TRUE(approx_equal(got, want, 1e-9));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SquaringEquivalence,
    ::testing::Combine(::testing::Values(Algo::Aware1d, Algo::Outer1d, Algo::Ring1d,
                                         Algo::Summa2d, Algo::Split3d),
                       ::testing::Values(Dataset::QueenLike, Dataset::StokesLike,
                                         Dataset::EukaryaLike, Dataset::Hv15rLike,
                                         Dataset::NlpkktLike)),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string d = dataset_name(std::get<1>(info.param));
      for (auto& ch : d)
        if (ch == '-') ch = '_';
      return std::string(algo_name(std::get<0>(info.param))) + "_" + d;
    });

TEST(Pipeline, PartitionThenSquareThenGalerkinThenBc) {
  // The full preprocessing + application chain on one graph.
  auto a0 = hidden_community<double>(300, 10, 7.0, 0.3, 21);

  // 1. Partition with flops weights; permute onto the induced layout.
  auto g = graph_from_matrix(a0);
  auto w = flops_vertex_weights(a0);
  PartitionOptions popt;
  popt.nparts = 6;
  auto layout = partition_to_layout(partition_graph(g, w, popt).part, 6);
  auto a = permute_symmetric(a0, layout.perm);

  Machine m(6);
  m.run([&](Comm& c) {
    // 2. Squaring on the partitioned layout matches serial.
    auto da = DistMatrix1D<double>::from_global(c, a, layout.bounds);
    auto sq = spgemm_1d(c, da, da).gather(c);
    EXPECT_TRUE(approx_equal(sq, spgemm(a, a, LocalKernel::Spa), 1e-9));

    // 3. AMG Galerkin product on the same matrix.
    auto r = restriction_operator(a, 5);
    auto gal = galerkin_product(c, a, r);
    auto want = spgemm(spgemm(transpose(r), a, LocalKernel::Spa), r, LocalKernel::Spa);
    EXPECT_TRUE(approx_equal(gal.rtar.gather(c), want, 1e-9));

    // 4. BC on the permuted graph equals BC on the original modulo relabel.
    auto sources0 = pick_sources(300, 10, 3);
    std::vector<index_t> sources;
    for (auto s : sources0) sources.push_back(layout.perm(s));
    auto res = betweenness_batch(c, a, sources);
    auto ref = brandes_serial(a0, sources0);
    for (index_t v = 0; v < 300; ++v)
      EXPECT_NEAR(res.scores[static_cast<std::size_t>(layout.perm(v))],
                  ref[static_cast<std::size_t>(v)], 1e-9);
  });
}

TEST(Pipeline, MmioRoundTripFeedsDistributedMultiply) {
  // Write a matrix to Matrix Market, read it back, square it distributed.
  auto a = mesh2d<double>(9);
  std::ostringstream buf;
  write_matrix_market(buf, a.to_coo());
  std::istringstream in(buf.str());
  auto back = CscMatrix<double>::from_coo(read_matrix_market(in));
  ASSERT_TRUE(approx_equal(back, a, 1e-12));
  Machine m(3);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, back);
    EXPECT_TRUE(
        approx_equal(spgemm_1d(c, da, da).gather(c), spgemm(a, a, LocalKernel::Spa), 1e-9));
  });
}

TEST(Determinism, ResultsBitStableAcrossProcessCounts) {
  // The gathered product must be byte-identical for every P (same
  // floating-point addition order guaranteed by the column-merge kernels).
  auto a = make_dataset(Dataset::Hv15rLike, 0.03);
  CscMatrix<double> ref;
  for (int P : {1, 2, 4, 8}) {
    Machine m(P);
    m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      auto got = spgemm_1d(c, da, da).gather(c);
      if (c.rank() == 0) {
        if (ref.nnz() == 0)
          ref = got;
        else
          EXPECT_TRUE(approx_equal(got, ref, 1e-12)) << "P=" << P;
      }
    });
  }
}

TEST(Determinism, RepeatedRunsIdentical) {
  auto a = make_dataset(Dataset::QueenLike, 0.2);
  Machine m(4);
  std::uint64_t bytes1 = 0, bytes2 = 0;
  auto run_once = [&]() {
    return m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      spgemm_1d(c, da, da);
    });
  };
  bytes1 = run_once().total_rdma_bytes();
  bytes2 = run_once().total_rdma_bytes();
  EXPECT_EQ(bytes1, bytes2);  // communication is a pure function of input
}

TEST(Stress, ManySmallMultipliesOnOneMachine) {
  // Machine reuse across many runs must not leak window/collective state.
  auto a = mesh2d<double>(8);
  auto want = spgemm(a, a, LocalKernel::Spa);
  Machine m(8);
  for (int round = 0; round < 20; ++round) {
    m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      auto got = spgemm_1d(c, da, da, {.block_fetch_k = 1 + round % 7}).gather(c);
      EXPECT_TRUE(approx_equal(got, want, 1e-9));
    });
  }
}

TEST(Stress, WideMachineSquaring) {
  // More ranks than nonzero columns per slice; exercises empty H and empty
  // fetch plans.
  auto a = mesh2d<double>(5);  // 25 columns
  auto want = spgemm(a, a, LocalKernel::Spa);
  Machine m(40);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    EXPECT_TRUE(approx_equal(spgemm_1d(c, da, da).gather(c), want, 1e-9));
  });
}

}  // namespace
}  // namespace sa1d
