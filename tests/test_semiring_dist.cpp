// Semiring behaviour through the full stack: the local kernels are
// semiring-generic, and the distributed algorithms preserve the numeric
// semantics the applications rely on (reachability closure, path counting,
// two-hop tropical distances). Also checks algebraic identities.
#include <gtest/gtest.h>

#include "sa1d.hpp"

namespace sa1d {
namespace {

CscMatrix<double> cycle_graph(index_t n) {
  CooMatrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) {
    m.push((i + 1) % n, i, 1.0);
    m.push(i, (i + 1) % n, 1.0);
  }
  m.canonicalize();
  return CscMatrix<double>::from_coo(m);
}

TEST(SemiringIdentities, MultiplyByZeroMatrixIsEmptyPattern) {
  auto a = erdos_renyi<double>(50, 4.0, 3);
  CscMatrix<double> z(50, 50);
  for (auto k : {LocalKernel::Spa, LocalKernel::Heap, LocalKernel::Hash, LocalKernel::Hybrid}) {
    auto mp = spgemm_local<MinPlus<double>, double>(a, z, k);
    EXPECT_EQ(mp.nnz(), 0);
    auto oa = spgemm_local<OrAnd, double>(z, a, k);
    EXPECT_EQ(oa.nnz(), 0);
  }
}

TEST(SemiringIdentities, AssociativityOnTripleProduct) {
  auto a = erdos_renyi<double>(40, 3.0, 5);
  auto b = erdos_renyi<double>(40, 3.0, 6);
  auto c = erdos_renyi<double>(40, 3.0, 7);
  auto left = spgemm(spgemm(a, b), c);
  auto right = spgemm(a, spgemm(b, c));
  EXPECT_TRUE(approx_equal(left, right, 1e-8));
}

TEST(SemiringDist, PathCountsOnCycleViaPlusTimes) {
  // (A²)(i,j) over plus-times counts 2-step walks; on a cycle every vertex
  // has exactly two 2-step walks back to itself.
  auto a = cycle_graph(12);
  auto a2 = spgemm(a, a, LocalKernel::Spa);
  for (index_t j = 0; j < 12; ++j) {
    auto rows = a2.col_rows(j);
    auto pos = std::lower_bound(rows.begin(), rows.end(), j);
    ASSERT_TRUE(pos != rows.end() && *pos == j);
    EXPECT_DOUBLE_EQ(a2.col_vals(j)[static_cast<std::size_t>(pos - rows.begin())], 2.0);
  }
}

TEST(SemiringDist, TwoHopReachabilityMatchesPattern) {
  // Boolean closure of A² equals the pattern of the numeric square when no
  // cancellation exists (all-positive values).
  auto a = hidden_community<double>(128, 8, 6.0, 0.5, 3);
  auto num = spgemm(a, a, LocalKernel::Spa);
  auto boolean = spgemm_local<OrAnd, double>(a, a, LocalKernel::Hash);
  EXPECT_EQ(boolean.colptr(), num.colptr());
  EXPECT_EQ(boolean.rowids(), num.rowids());
}

TEST(SemiringDist, TropicalTwoHopViaAllKernels) {
  // min-plus A⊗A gives shortest two-hop distances; all kernels must agree.
  auto a = banded<double>(80, 3, 0.8, 9);
  auto want = spgemm_local<MinPlus<double>, double>(a, a, LocalKernel::Spa);
  for (auto k : {LocalKernel::Heap, LocalKernel::Hash, LocalKernel::Hybrid}) {
    auto got = spgemm_local<MinPlus<double>, double>(a, a, k);
    EXPECT_TRUE(approx_equal(got, want, 1e-12)) << kernel_name(k);
  }
}

TEST(SemiringDist, BfsLevelsViaRepeatedSpmv) {
  // OrAnd SpMV from a seed reaches exactly the BFS ball of radius t.
  auto a = mesh2d<double>(7);
  std::vector<double> x(49, 0.0);
  x[24] = 1.0;  // center
  auto reach = x;
  for (int hop = 0; hop < 3; ++hop) {
    auto nxt = spmv(a, std::span<const double>(reach));
    for (std::size_t i = 0; i < 49; ++i) reach[i] = (nxt[i] != 0.0 || reach[i] != 0.0) ? 1.0 : 0.0;
  }
  // Manhattan ball of radius 3 around (3,3) on a 5-point grid.
  for (index_t r = 0; r < 7; ++r)
    for (index_t c = 0; c < 7; ++c) {
      bool inside = std::abs(r - 3) + std::abs(c - 3) <= 3;
      EXPECT_EQ(reach[static_cast<std::size_t>(r * 7 + c)] != 0.0, inside)
          << "(" << r << "," << c << ")";
    }
}

TEST(SemiringDist, DistributedSquareOverAllDatasetsSmall) {
  // Tiny smoke sweep: semiring-generic local kernel inside Algorithm 1 via
  // the numeric path; datasets exercise all structure classes.
  for (auto d : all_datasets()) {
    auto a = make_dataset(d, 0.03);
    auto want = spgemm(a, a, LocalKernel::Spa);
    Machine m(5);
    m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      EXPECT_TRUE(approx_equal(spgemm_1d(c, da, da).gather(c), want, 1e-9))
          << dataset_name(d);
    });
  }
}

}  // namespace
}  // namespace sa1d
