// Differential tests of the two-phase local SpGEMM engine: all four
// accumulator classes must produce *bit-identical* CSC output (structure
// and values) across semirings, thread counts, and adversarial shapes —
// the engine guarantees a fixed per-row ⊕ order — and the symbolic phase
// must predict the numeric structure exactly.
#include <gtest/gtest.h>

#include "kernels/spgemm_local.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "util/rng.hpp"

namespace sa1d {
namespace {

constexpr LocalKernel kAllKernels[] = {LocalKernel::Spa, LocalKernel::Heap, LocalKernel::Hash,
                                       LocalKernel::Hybrid};
constexpr int kThreadCounts[] = {1, 2, 7};

/// Adversarial generator: a mix of empty columns, singleton columns, dense
/// columns, and scattered columns, with values in {±1, ±0.5} so numeric
/// cancellation (explicit zeros) actually occurs.
CscMatrix<double> adversarial(index_t m, index_t n, std::uint64_t seed) {
  SplitMix64 g(seed);
  CooMatrix<double> coo(m, n);
  auto val = [&]() {
    switch (g.below(4)) {
      case 0: return 1.0;
      case 1: return -1.0;
      case 2: return 0.5;
      default: return -0.5;
    }
  };
  for (index_t j = 0; j < n; ++j) {
    switch (g.below(6)) {
      case 0: break;  // structurally empty column
      case 1:         // singleton column (exercises the 1-list copy path)
        coo.push(static_cast<index_t>(g.below(static_cast<std::uint64_t>(m))), j, val());
        break;
      case 2:  // dense column (exercises the SPA classes)
        for (index_t i = 0; i < m; ++i)
          if (g.below(3) != 0) coo.push(i, j, val());
        break;
      default: {  // scattered column
        auto cnt = 1 + g.below(12);
        for (std::uint64_t e = 0; e < cnt; ++e)
          coo.push(static_cast<index_t>(g.below(static_cast<std::uint64_t>(m))), j, val());
      }
    }
  }
  // Singleton rows: a few rows whose only nonzero is planted here.
  coo.canonicalize();
  return CscMatrix<double>::from_coo(coo);
}

/// The engine falls back to one thread below 2^14 flops/thread; the
/// threads>1 assertions are vacuous unless the input carries enough work to
/// actually engage the parallel partition for every tested thread count.
void require_parallel_work(const CscMatrix<double>& a, const CscMatrix<double>& b) {
  ASSERT_GT(total_flops(a, b), 7 * (index_t{1} << 14));
}

TEST(TwoPhaseDifferential, PlusTimesBitIdenticalAcrossKernelsAndThreads) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto a = adversarial(400, 300, seed);
    auto b = adversarial(300, 350, seed + 100);
    require_parallel_work(a, b);
    auto ref = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa, 1);
    for (auto k : kAllKernels)
      for (int t : kThreadCounts)
        EXPECT_EQ((spgemm_local<PlusTimes<double>, double>(a, b, k, t)), ref)
            << kernel_name(k) << " t=" << t << " seed=" << seed;
  }
}

TEST(TwoPhaseDifferential, MinPlusBitIdenticalAcrossKernelsAndThreads) {
  for (std::uint64_t seed : {5u, 6u}) {
    auto a = adversarial(350, 350, seed);
    require_parallel_work(a, a);
    auto ref = spgemm_local<MinPlus<double>, double>(a, a, LocalKernel::Spa, 1);
    for (auto k : kAllKernels)
      for (int t : kThreadCounts)
        EXPECT_EQ((spgemm_local<MinPlus<double>, double>(a, a, k, t)), ref)
            << kernel_name(k) << " t=" << t << " seed=" << seed;
  }
}

TEST(TwoPhaseDifferential, SkewedParallelPartition) {
  // Power-law columns stress flop_balanced_split's uneven ranges with the
  // parallel path genuinely engaged.
  auto a = rmat<double>(10, 8, 3);
  require_parallel_work(a, a);
  auto ref = spgemm_local<PlusTimes<double>, double>(a, a, LocalKernel::Spa, 1);
  for (auto k : kAllKernels)
    for (int t : kThreadCounts)
      EXPECT_EQ((spgemm_local<PlusTimes<double>, double>(a, a, k, t)), ref)
          << kernel_name(k) << " t=" << t;
}

TEST(TwoPhaseDifferential, OrAndBitIdenticalAcrossKernels) {
  auto a = adversarial(80, 80, 9);
  auto ref = spgemm_local<OrAnd, double>(a, a, LocalKernel::Spa, 1);
  for (auto k : kAllKernels)
    for (int t : kThreadCounts)
      EXPECT_EQ((spgemm_local<OrAnd, double>(a, a, k, t)), ref) << kernel_name(k);
}

TEST(TwoPhaseDifferential, HypersparseLargeRowDimension) {
  // Large row ids force the hash class under Hybrid and exercise the
  // generation-tagged table where a -1 sentinel key could have collided.
  const index_t m = index_t{1} << 21;
  SplitMix64 g(13);
  CooMatrix<double> ca(m, 40);
  for (int e = 0; e < 600; ++e)
    ca.push(static_cast<index_t>(g.below(static_cast<std::uint64_t>(m))),
            static_cast<index_t>(g.below(40)), 1.0 + g.uniform());
  // Include the extreme row ids explicitly.
  ca.push(0, 0, 1.0);
  ca.push(m - 1, 0, 1.0);
  ca.canonicalize();
  auto a = CscMatrix<double>::from_coo(ca);
  auto b = adversarial(40, 30, 17);
  auto ref = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa, 1);
  for (auto k : kAllKernels)
    for (int t : kThreadCounts)
      EXPECT_EQ((spgemm_local<PlusTimes<double>, double>(a, b, k, t)), ref)
          << kernel_name(k) << " t=" << t;
}

TEST(TwoPhaseSymbolic, NnzPredictionMatchesNumericExactly) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    auto a = adversarial(120, 90, seed);
    auto b = adversarial(90, 60, seed + 50);
    auto predicted = symbolic_nnz(a, b);
    ASSERT_EQ(predicted.size(), static_cast<std::size_t>(b.ncols()));
    for (auto k : kAllKernels) {
      auto c = spgemm(a, b, k);
      index_t total = 0;
      for (index_t j = 0; j < c.ncols(); ++j) {
        EXPECT_EQ(c.col_nnz(j), predicted[static_cast<std::size_t>(j)])
            << "col " << j << " kernel " << kernel_name(k);
        total += predicted[static_cast<std::size_t>(j)];
      }
      EXPECT_EQ(c.nnz(), total);
    }
  }
}

TEST(TwoPhaseSymbolic, CancellationKeepsStructuralZeros) {
  // +1/-1 values cancel numerically; the structural entry must survive so
  // symbolic nnz stays exact.
  CooMatrix<double> ca(4, 2), cb(2, 1);
  ca.push(0, 0, 1.0);
  ca.push(0, 1, -1.0);
  cb.push(0, 0, 1.0);
  cb.push(1, 0, 1.0);
  auto a = CscMatrix<double>::from_coo(ca);
  auto b = CscMatrix<double>::from_coo(cb);
  auto predicted = symbolic_nnz(a, b);
  ASSERT_EQ(predicted.size(), 1u);
  EXPECT_EQ(predicted[0], 1);
  for (auto k : kAllKernels) {
    auto c = spgemm(a, b, k);
    EXPECT_EQ(c.nnz(), 1) << kernel_name(k);
    EXPECT_DOUBLE_EQ(c.vals()[0], 0.0) << kernel_name(k);
  }
}

TEST(FlopBalancedSplit, CoversAndBalancesSkewedWork) {
  // One hub column holds half the flops; the split must isolate it.
  std::vector<index_t> flops(100, 10);
  flops[7] = 1000;
  auto b = flop_balanced_split(flops, 4);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), 100);
  for (std::size_t i = 0; i + 1 < b.size(); ++i) EXPECT_LE(b[i], b[i + 1]);
  // The range containing column 7 must be narrow (the hub dominates).
  for (int p = 0; p < 4; ++p) {
    if (b[static_cast<std::size_t>(p)] <= 7 && 7 < b[static_cast<std::size_t>(p) + 1])
      EXPECT_LT(b[static_cast<std::size_t>(p) + 1] - b[static_cast<std::size_t>(p)], 40);
  }
}

TEST(FlopBalancedSplit, DegenerateInputs) {
  std::vector<index_t> empty;
  auto b0 = flop_balanced_split(empty, 3);
  EXPECT_EQ(b0, (std::vector<index_t>{0, 0, 0, 0}));
  std::vector<index_t> zeros(10, 0);
  auto b1 = flop_balanced_split(zeros, 2);
  EXPECT_EQ(b1.front(), 0);
  EXPECT_EQ(b1.back(), 10);
}

TEST(TwoPhaseEngine, MoreThreadsThanColumns) {
  auto a = adversarial(30, 3, 31);
  auto b = adversarial(3, 2, 32);
  auto ref = spgemm(a, b, LocalKernel::Spa, 1);
  EXPECT_EQ(spgemm(a, b, LocalKernel::Hybrid, 16), ref);
}

}  // namespace
}  // namespace sa1d
