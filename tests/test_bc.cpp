// Tests for betweenness centrality: serial Brandes sanity, distributed
// batched BC vs. the serial reference, level stats, and edge cases.
#include <gtest/gtest.h>

#include "apps/bc.hpp"
#include "sparse/generators.hpp"

namespace sa1d {
namespace {

CscMatrix<double> path_graph(index_t n) {
  CooMatrix<double> m(n, n);
  for (index_t i = 0; i + 1 < n; ++i) {
    m.push(i, i + 1, 1.0);
    m.push(i + 1, i, 1.0);
  }
  return CscMatrix<double>::from_coo(m);
}

CscMatrix<double> star_graph(index_t leaves) {
  CooMatrix<double> m(leaves + 1, leaves + 1);
  for (index_t i = 1; i <= leaves; ++i) {
    m.push(0, i, 1.0);
    m.push(i, 0, 1.0);
  }
  return CscMatrix<double>::from_coo(m);
}

std::vector<index_t> all_vertices(index_t n) {
  std::vector<index_t> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  return v;
}

TEST(BrandesSerial, PathGraphExact) {
  // Path 0-1-2-3-4: exact BC of interior v = number of s,t pairs through it
  // (ordered pairs): v1: pairs {0}x{2,3,4} both directions = 6, etc.
  auto a = path_graph(5);
  auto bc = brandes_serial(a, all_vertices(5));
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 6.0);
  EXPECT_DOUBLE_EQ(bc[2], 8.0);
  EXPECT_DOUBLE_EQ(bc[3], 6.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
}

TEST(BrandesSerial, StarGraphExact) {
  // Star with 5 leaves: center lies on all 5*4 = 20 ordered leaf pairs.
  auto a = star_graph(5);
  auto bc = brandes_serial(a, all_vertices(6));
  EXPECT_DOUBLE_EQ(bc[0], 20.0);
  for (int i = 1; i <= 5; ++i) EXPECT_DOUBLE_EQ(bc[static_cast<std::size_t>(i)], 0.0);
}

TEST(BrandesSerial, SubsetOfSources) {
  auto a = path_graph(4);
  auto bc = brandes_serial(a, std::vector<index_t>{0});
  // From source 0 only: delta contributions 0->{1,2,3}: v1 on 2 paths, v2 on 1.
  EXPECT_DOUBLE_EQ(bc[1], 2.0);
  EXPECT_DOUBLE_EQ(bc[2], 1.0);
  EXPECT_DOUBLE_EQ(bc[3], 0.0);
}

TEST(PickSources, DistinctAndDeterministic) {
  auto s1 = pick_sources(100, 20, 5);
  auto s2 = pick_sources(100, 20, 5);
  EXPECT_EQ(s1, s2);
  std::set<index_t> uniq(s1.begin(), s1.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (auto v : s1) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
  EXPECT_THROW(pick_sources(10, 11, 1), std::invalid_argument);
}

TEST(ToPattern, AllOnes) {
  auto a = erdos_renyi<double>(20, 3.0, 4);
  auto p = to_pattern(a);
  EXPECT_EQ(p.colptr(), a.colptr());
  for (auto v : p.vals()) EXPECT_DOUBLE_EQ(v, 1.0);
}

void expect_bc_matches_serial(const CscMatrix<double>& a, std::span<const index_t> sources,
                              int P) {
  auto want = brandes_serial(a, sources);
  Machine m(P);
  m.run([&](Comm& c) {
    auto res = betweenness_batch(c, a, sources);
    ASSERT_EQ(res.scores.size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v)
      EXPECT_NEAR(res.scores[v], want[v], 1e-9) << "vertex " << v;
  });
}

TEST(BcDistributed, PathGraphAllSources) {
  expect_bc_matches_serial(path_graph(9), all_vertices(9), 3);
}

TEST(BcDistributed, StarGraph) { expect_bc_matches_serial(star_graph(7), all_vertices(8), 4); }

TEST(BcDistributed, MeshSampledSources) {
  auto a = mesh2d<double>(9);
  auto sources = pick_sources(81, 16, 7);
  expect_bc_matches_serial(a, sources, 4);
}

TEST(BcDistributed, CommunityGraphSampledSources) {
  auto a = hidden_community<double>(128, 8, 6.0, 0.5, 3);
  auto sources = pick_sources(128, 24, 9);
  for (int P : {1, 2, 6}) expect_bc_matches_serial(a, sources, P);
}

TEST(BcDistributed, DisconnectedGraph) {
  // Two components: BFS must terminate and scores stay component-local.
  CooMatrix<double> m(6, 6);
  m.push(0, 1, 1.0);
  m.push(1, 0, 1.0);
  m.push(1, 2, 1.0);
  m.push(2, 1, 1.0);
  m.push(3, 4, 1.0);
  m.push(4, 3, 1.0);
  auto a = CscMatrix<double>::from_coo(m);  // vertex 5 isolated
  expect_bc_matches_serial(a, all_vertices(6), 2);
}

TEST(BcDistributed, SingleSource) {
  expect_bc_matches_serial(path_graph(6), std::vector<index_t>{2}, 3);
}

TEST(BcDistributed, MoreRanksThanSources) {
  expect_bc_matches_serial(path_graph(8), std::vector<index_t>{0, 7}, 5);
}

TEST(BcDistributed, LevelStatsShapeAndMonotoneLevels) {
  auto a = mesh2d<double>(8);
  auto sources = pick_sources(64, 8, 2);
  Machine m(4);
  m.run([&](Comm& c) {
    auto res = betweenness_batch(c, a, sources);
    // Forward levels 1..nlevels then backward nlevels..1.
    ASSERT_GE(res.nlevels, 2);
    int nfwd = 0, nbwd = 0;
    for (const auto& s : res.level_stats) {
      if (s.forward)
        ++nfwd;
      else
        ++nbwd;
    }
    EXPECT_EQ(nfwd, res.nlevels);
    EXPECT_EQ(nbwd, res.nlevels);
  });
}

TEST(BcDistributed, RejectsBadInput) {
  Machine m(2);
  CscMatrix<double> rect(3, 4);
  EXPECT_THROW(m.run([&](Comm& c) {
    betweenness_batch(c, rect, std::vector<index_t>{0});
  }),
               std::invalid_argument);
  auto a = path_graph(4);
  EXPECT_THROW(m.run([&](Comm& c) {
    betweenness_batch(c, a, std::vector<index_t>{});
  }),
               std::invalid_argument);
}

TEST(BcSemiring, PlusSelect2ndMatchesMaskedPlusTimesBitwise) {
  // The traversal satellite: BC's default path runs the BFS multiplies on
  // PlusSelect2nd (⊗ selects the frontier value; the 0/1 adjacency entry is
  // structural). Because A is a pattern, 1.0 ⊗ x == x exactly, so the
  // legacy masked plus-times formulation must agree bit for bit — scores,
  // level counts, and every per-level stat shape.
  auto g = symmetrize(hidden_community<double>(96, 6, 5.0, 0.5, 21));
  auto sources = pick_sources(96, 12, 23);
  auto want = brandes_serial(g, sources);
  Machine m(4);
  m.run([&](Comm& c) {
    BcOptions legacy;
    legacy.plus_times_traversal = true;
    auto sel = betweenness_batch(c, g, sources);
    auto pt = betweenness_batch(c, g, sources, legacy);
    EXPECT_EQ(sel.nlevels, pt.nlevels);
    ASSERT_EQ(sel.scores.size(), pt.scores.size());
    for (std::size_t v = 0; v < sel.scores.size(); ++v) {
      EXPECT_EQ(sel.scores[v], pt.scores[v]) << "vertex " << v;  // bitwise
      EXPECT_NEAR(sel.scores[v], want[v], 1e-9) << "vertex " << v;
    }
  });
}

TEST(BcSemiring, PlusSelect2ndTraversalsRunOnEveryBackend) {
  // The semiring-generic backends carry the PlusSelect2nd traversal: BC on
  // a grid backend must still match the serial reference.
  auto g = symmetrize(erdos_renyi<double>(80, 4.0, 27));
  auto sources = pick_sources(80, 10, 29);
  auto want = brandes_serial(g, sources);
  for (Algo backend : {Algo::Ring1D, Algo::Summa2D}) {
    Machine m(4);
    m.run([&](Comm& c) {
      BcOptions opt;
      opt.backend = backend;
      auto res = betweenness_batch(c, g, sources, opt);
      for (std::size_t v = 0; v < want.size(); ++v)
        EXPECT_NEAR(res.scores[v], want[v], 1e-9)
            << algo_name(backend) << " vertex " << v;
    });
  }
}

TEST(BcDistributed, ScoresIndependentOfP) {
  auto a = hidden_community<double>(96, 6, 5.0, 0.5, 11);
  auto sources = pick_sources(96, 12, 13);
  std::vector<double> ref;
  for (int P : {1, 3, 4}) {
    Machine m(P);
    m.run([&](Comm& c) {
      auto res = betweenness_batch(c, a, sources);
      if (ref.empty()) {
        ref = res.scores;
      } else {
        for (std::size_t v = 0; v < ref.size(); ++v) EXPECT_NEAR(res.scores[v], ref[v], 1e-9);
      }
    });
  }
}

}  // namespace
}  // namespace sa1d
