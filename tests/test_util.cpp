// Unit tests for src/util: common helpers, RNG, bit vector, timers.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/bitvector.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace sa1d {
namespace {

TEST(Require, ThrowsOnFalse) {
  EXPECT_THROW(require(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(require(true, "ok"));
}

TEST(CheckedCast, RoundTripsInRange) {
  EXPECT_EQ(checked_cast<int>(std::int64_t{42}), 42);
  EXPECT_EQ(checked_cast<std::int64_t>(7), 7);
}

TEST(CheckedCast, ThrowsOutOfRange) {
  EXPECT_THROW(checked_cast<std::int8_t>(std::int64_t{1000}), std::overflow_error);
}

TEST(ExclusiveScan, Basic) {
  std::vector<index_t> in{3, 1, 4};
  auto out = exclusive_scan_vec<index_t>(in);
  EXPECT_EQ(out, (std::vector<index_t>{0, 3, 4, 8}));
}

TEST(ExclusiveScan, Empty) {
  std::vector<index_t> in;
  auto out = exclusive_scan_vec<index_t>(in);
  EXPECT_EQ(out, (std::vector<index_t>{0}));
}

TEST(CeilDiv, Values) {
  EXPECT_EQ(ceil_div<index_t>(10, 3), 4);
  EXPECT_EQ(ceil_div<index_t>(9, 3), 3);
  EXPECT_EQ(ceil_div<index_t>(1, 100), 1);
}

TEST(EvenSplit, CoversAndBalances) {
  auto b = even_split(10, 3);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), 10);
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    index_t len = b[i + 1] - b[i];
    EXPECT_GE(len, 3);
    EXPECT_LE(len, 4);
  }
}

TEST(EvenSplit, MoreParterThanItems) {
  auto b = even_split(2, 5);
  EXPECT_EQ(b.back(), 2);
  EXPECT_EQ(b.size(), 6u);
}

TEST(EvenSplit, RejectsNonPositiveParts) {
  EXPECT_THROW(even_split(5, 0), std::invalid_argument);
}

TEST(FindOwner, LocatesRange) {
  auto b = even_split(100, 7);
  for (index_t x = 0; x < 100; ++x) {
    int o = find_owner(b, x);
    EXPECT_LE(b[static_cast<std::size_t>(o)], x);
    EXPECT_LT(x, b[static_cast<std::size_t>(o) + 1]);
  }
}

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, UniformInUnitInterval) {
  SplitMix64 g(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double u = g.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(SplitMix64, ForkIndependentStreams) {
  SplitMix64 g(99);
  SplitMix64 c1(g.fork(1)), c2(g.fork(2));
  EXPECT_NE(c1(), c2());
}

TEST(BitVector, SetTestClear) {
  BitVector v(130);
  EXPECT_EQ(v.count(), 0);
  v.set(0);
  v.set(64);
  v.set(129);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(129));
  EXPECT_FALSE(v.test(1));
  EXPECT_EQ(v.count(), 3);
  v.clear(64);
  EXPECT_FALSE(v.test(64));
  EXPECT_EQ(v.count(), 2);
}

TEST(BitVector, AnyInRange) {
  BitVector v(256);
  v.set(100);
  EXPECT_TRUE(v.any_in_range(0, 256));
  EXPECT_TRUE(v.any_in_range(100, 101));
  EXPECT_FALSE(v.any_in_range(0, 100));
  EXPECT_FALSE(v.any_in_range(101, 256));
}

TEST(BitVector, ToIndicesAscending) {
  BitVector v(200);
  std::set<index_t> want{3, 63, 64, 65, 127, 128, 199};
  for (auto i : want) v.set(i);
  auto got = v.to_indices();
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(std::set<index_t>(got.begin(), got.end()), want);
}

TEST(Timers, Advance) {
  WallTimer w;
  CpuTimer c;
  volatile double x = 0;
  for (int i = 0; i < 1000000; ++i) x = x + 1.0;
  EXPECT_GT(w.seconds(), 0.0);
  EXPECT_GT(c.seconds(), 0.0);
}

}  // namespace
}  // namespace sa1d
