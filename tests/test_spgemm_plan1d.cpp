// Tests for the inspector–executor split of Algorithm 1 (SpgemmPlan1D):
// plan+execute equals the one-shot wrapper bit for bit; a cached plan
// replayed N times over value-changing operands (the MCL/BC/AMG loop
// shapes) is bit-identical to N fresh spgemm_1d calls; reused executions
// record zero metadata-collective bytes and zero Plan-phase time and move
// only the value half of the RDMA traffic; the fingerprint catches
// structure changes, including pattern changes that preserve nzc/nnz.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/amg.hpp"
#include "core/spgemm1d.hpp"
#include "sparse/generators.hpp"

namespace sa1d {
namespace {

/// Same sparsity pattern as `base`, values re-derived from (position, t):
/// the value-refresh shape of iterated app loops (time stepping, Jacobian
/// updates, BC frontier weights) with a frozen structure.
CscMatrix<double> with_values(const CscMatrix<double>& base, int t) {
  std::vector<double> vals(base.vals().size());
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = 1.0 + 0.25 * static_cast<double>(t) + 0.001 * static_cast<double>(i % 97);
  return CscMatrix<double>(base.nrows(), base.ncols(), base.colptr(), base.rowids(),
                           std::move(vals));
}

using LocalsPerIter = std::vector<std::vector<DcscMatrix<double>>>;  // [rank][iter]

TEST(SpgemmPlan1d, PlanExecuteEqualsOneShotWrapper) {
  auto a = block_clustered<double>(160, 8, 5.0, 0.5, 11);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    Spgemm1dInfo wrap_info, exec_info;
    auto via_wrapper = spgemm_1d(c, da, da, {}, &wrap_info);
    SpgemmPlan1D<double> plan(c, da, da);
    auto via_plan = plan.execute(c, da, da, &exec_info);
    EXPECT_TRUE(via_wrapper.local() == via_plan.local());
    // Wrapper counts the inspector's structure gets and the executor's
    // value gets (2 per block, as before the split); a standalone execute
    // issues only the value half.
    EXPECT_EQ(wrap_info.rdma_calls % 2, 0);
    EXPECT_EQ(exec_info.rdma_calls, plan.plan_rdma_calls());
    EXPECT_EQ(wrap_info.rdma_calls, 2 * plan.plan_rdma_calls());
    EXPECT_EQ(wrap_info.atilde_nnz, exec_info.atilde_nnz);
  });
}

// The acceptance loop: for each app-style iteration shape, executing a
// cached plan N times must be bit-identical to N fresh spgemm_1d calls.
void expect_reuse_bit_identical(int P, const CscMatrix<double>& a_pat,
                                const CscMatrix<double>& b_pat, int iters,
                                const Spgemm1dOptions& opt = {}) {
  Machine m(P);
  LocalsPerIter fresh(static_cast<std::size_t>(P)), reused(static_cast<std::size_t>(P));
  m.run([&](Comm& c) {
    for (int t = 0; t < iters; ++t) {
      auto da = DistMatrix1D<double>::from_global(c, with_values(a_pat, t));
      auto db = DistMatrix1D<double>::from_global(c, with_values(b_pat, t));
      auto dc = spgemm_1d(c, da, db, opt);
      fresh[static_cast<std::size_t>(c.rank())].push_back(dc.local());
    }
  });
  m.run([&](Comm& c) {
    SpgemmPlan1D<double> plan;
    for (int t = 0; t < iters; ++t) {
      auto da = DistMatrix1D<double>::from_global(c, with_values(a_pat, t));
      auto db = DistMatrix1D<double>::from_global(c, with_values(b_pat, t));
      if (plan.empty()) plan = SpgemmPlan1D<double>(c, da, db, opt);
      RankReport before = c.report();
      auto dc = plan.execute(c, da, db);
      RankReport after = c.report();
      reused[static_cast<std::size_t>(c.rank())].push_back(dc.local());
      // Reused iterations: zero metadata-collective bytes, zero Plan time.
      EXPECT_EQ(after.bytes_network() - after.rdma_bytes,
                before.bytes_network() - before.rdma_bytes)
          << "metadata collective traffic on iteration " << t;
      if (t >= 1) EXPECT_DOUBLE_EQ(after.plan_s, before.plan_s) << "symbolic time, iter " << t;
    }
    EXPECT_EQ(plan.executions(), iters);
  });
  for (int r = 0; r < P; ++r) {
    ASSERT_EQ(fresh[static_cast<std::size_t>(r)].size(), static_cast<std::size_t>(iters));
    for (int t = 0; t < iters; ++t)
      EXPECT_TRUE(fresh[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)] ==
                  reused[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)])
          << "rank " << r << " iter " << t;
  }
}

TEST(SpgemmPlan1d, MclStyleExpansionReuse) {
  // MCL expansion M·M over a frozen pattern with per-round value refresh.
  auto mpat = block_clustered<double>(192, 8, 5.0, 0.4, 3);
  expect_reuse_bit_identical(4, mpat, mpat, 4);
}

TEST(SpgemmPlan1d, BcStyleLevelReuse) {
  // BC level shape: fixed square A, rectangular frontier operand.
  auto a = mesh2d<double>(12);  // 144 x 144
  CooMatrix<double> fr(144, 24);
  SplitMix64 g(17);
  for (int e = 0; e < 160; ++e)
    fr.push(static_cast<index_t>(g.below(144)), static_cast<index_t>(g.below(24)),
            1.0 + g.uniform());
  fr.canonicalize();
  expect_reuse_bit_identical(3, a, CscMatrix<double>::from_coo(fr), 4);
}

TEST(SpgemmPlan1d, ReuseWorksAcrossOptionVariants) {
  auto mpat = block_clustered<double>(128, 8, 4.0, 0.4, 9);
  expect_reuse_bit_identical(4, mpat, mpat, 3, {.block_fetch_k = 8});
  expect_reuse_bit_identical(4, mpat, mpat, 3, {.sparsity_aware = false});
  expect_reuse_bit_identical(4, mpat, mpat, 3,
                             {.block_fetch_k = 16, .merge_adjacent_blocks = true});
  expect_reuse_bit_identical(2, mpat, mpat, 3, {.threads = 3});
}

TEST(SpgemmPlan1d, AmgStyleGalerkinReuse) {
  // RᵀAR across an AMG-setup refresh loop: A's values change, the pattern
  // (and hence R and every product structure) is frozen. GalerkinOperator
  // must reuse its plans and stay bit-identical to fresh one-shot products.
  auto a_pat = mesh2d<double>(10);
  auto r = restriction_operator(a_pat, 5);
  const int P = 3, iters = 3;
  Machine m(P);
  LocalsPerIter fresh_rtar(P), reused_rtar(P);
  m.run([&](Comm& c) {
    for (int t = 0; t < iters; ++t) {
      auto res = galerkin_product(c, with_values(a_pat, t), r, {},
                                  RightMultAlgo::SparsityAware1d);
      fresh_rtar[static_cast<std::size_t>(c.rank())].push_back(res.rtar.local());
    }
  });
  m.run([&](Comm& c) {
    GalerkinOperator op(c, r, {}, RightMultAlgo::SparsityAware1d);
    for (int t = 0; t < iters; ++t) {
      RankReport before = c.report();
      auto res = op.compute(c, with_values(a_pat, t));
      RankReport after = c.report();
      reused_rtar[static_cast<std::size_t>(c.rank())].push_back(res.rtar.local());
      // Iterations after the first replay both cached plans: no Plan time.
      if (t >= 1) EXPECT_DOUBLE_EQ(after.plan_s, before.plan_s);
    }
  });
  for (int r2 = 0; r2 < P; ++r2)
    for (int t = 0; t < iters; ++t)
      EXPECT_TRUE(fresh_rtar[static_cast<std::size_t>(r2)][static_cast<std::size_t>(t)] ==
                  reused_rtar[static_cast<std::size_t>(r2)][static_cast<std::size_t>(t)])
          << "rank " << r2 << " iter " << t;
}

TEST(SpgemmPlan1d, ReusedExecuteMovesOnlyValueTraffic) {
  auto a = block_clustered<double>(256, 8, 6.0, 0.25, 7);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    SpgemmPlan1D<double> plan(c, da, da);
    plan.execute(c, da, da);
    RankReport before = c.report();
    Spgemm1dInfo info;
    plan.execute(c, da, da, &info);
    RankReport after = c.report();
    // One value get per planned block, fetched_elems doubles worth of bytes.
    EXPECT_EQ(after.rdma_msgs - before.rdma_msgs,
              static_cast<std::uint64_t>(plan.plan_rdma_calls()));
    EXPECT_EQ(after.rdma_bytes - before.rdma_bytes,
              static_cast<std::uint64_t>(info.fetched_elems) * sizeof(double));
    EXPECT_EQ(info.rdma_calls, plan.plan_rdma_calls());
  });
}

TEST(SpgemmPlan1d, CachedEntryPointReplansOnStructureChange) {
  // spgemm_1d_cached must reuse while the pattern holds, replan when it
  // changes, and stay correct throughout (the MCL/BC loop contract).
  auto pat1 = block_clustered<double>(128, 8, 4.0, 0.4, 21);
  auto pat2 = erdos_renyi<double>(128, 3.0, 22);  // different structure
  Machine m(4);
  m.run([&](Comm& c) {
    SpgemmPlan1D<double> plan;
    const CscMatrix<double>* pats[] = {&pat1, &pat1, &pat2, &pat2, &pat1};
    for (int t = 0; t < 5; ++t) {
      auto cur = with_values(*pats[t], t);
      auto dm = DistMatrix1D<double>::from_global(c, cur);
      auto got = spgemm_1d_cached(c, plan, dm, dm);
      auto fresh = spgemm_1d(c, dm, dm);
      EXPECT_TRUE(got.local() == fresh.local()) << "iter " << t;
    }
    // Reuse happened at t=1 and t=3, replans at t=0, t=2, t=4.
    EXPECT_EQ(plan.executions(), 1);  // the plan built at t=4 ran once
  });
}

TEST(SpgemmPlan1d, CachedEntryPointReplansOnOptionChange) {
  // Same structure, different options: the cached wrapper must rebuild —
  // option fields shape the fetch plan (K, merging) and the local pass.
  // Scattered matrix: most columns are needed remotely, so K controls the
  // message count (as in Spgemm1d.BlockFetchKControlsMessageCount).
  auto pat = erdos_renyi<double>(200, 5.0, 23);
  Machine m(4);
  m.run([&](Comm& c) {
    auto dm = DistMatrix1D<double>::from_global(c, pat);
    SpgemmPlan1D<double> plan;
    std::uint64_t msgs_k1, msgs_k64;
    {
      RankReport before = c.report();
      spgemm_1d_cached(c, plan, dm, dm, {.block_fetch_k = 1});
      msgs_k1 = c.report().rdma_msgs - before.rdma_msgs;
      EXPECT_EQ(plan.options().block_fetch_k, 1);
    }
    {
      RankReport before = c.report();
      spgemm_1d_cached(c, plan, dm, dm, {.block_fetch_k = 64});
      msgs_k64 = c.report().rdma_msgs - before.rdma_msgs;
      EXPECT_EQ(plan.options().block_fetch_k, 64);
    }
    EXPECT_LT(msgs_k1, msgs_k64);  // the new K actually took effect
  });
}

TEST(SpgemmPlan1d, ExecuteRejectsStructureMismatch) {
  Machine m(2);
  EXPECT_THROW(m.run([](Comm& c) {
    auto a = DistMatrix1D<double>::from_global(c, erdos_renyi<double>(60, 4.0, 7));
    auto b = DistMatrix1D<double>::from_global(c, erdos_renyi<double>(60, 4.0, 8));
    SpgemmPlan1D<double> plan(c, a, a);
    plan.execute(c, b, b);  // different nnz layout -> fingerprint mismatch
  }),
               std::invalid_argument);
}

TEST(SpgemmPlan1d, MatchesCatchesPatternChangeWithEqualCounts) {
  // Two single-entry matrices: same dims, same per-rank nzc/nnz, different
  // pattern. The cheap fields agree; the structure hash must not.
  CooMatrix<double> c1(8, 8), c2(8, 8);
  c1.push(0, 0, 1.0);
  c2.push(1, 0, 1.0);
  c1.canonicalize();
  c2.canonicalize();
  auto m1 = CscMatrix<double>::from_coo(c1);
  auto m2 = CscMatrix<double>::from_coo(c2);
  Machine m(1);
  m.run([&](Comm& c) {
    auto d1 = DistMatrix1D<double>::from_global(c, m1);
    auto d2 = DistMatrix1D<double>::from_global(c, m2);
    SpgemmPlan1D<double> plan(c, d1, d1);
    EXPECT_TRUE(plan.matches(c, d1, d1));
    EXPECT_FALSE(plan.matches_local(d2, d2));
    EXPECT_FALSE(plan.matches(c, d2, d2));
  });
}

TEST(SpgemmPlan1d, EmptyPlanReportsEmptyAndRefusesExecute) {
  SpgemmPlan1D<double> plan;
  EXPECT_TRUE(plan.empty());
  Machine m(1);
  EXPECT_THROW(m.run([&](Comm& c) {
    auto d = DistMatrix1D<double>::from_global(c, mesh2d<double>(4));
    SpgemmPlan1D<double> empty;
    empty.execute(c, d, d);
  }),
               std::invalid_argument);
}

}  // namespace
}  // namespace sa1d
