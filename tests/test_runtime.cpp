// Tests for the simulated MPI runtime: collectives, windows, stats,
// sub-communicators, failure propagation, and the cost model.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>

#include "runtime/machine.hpp"

namespace sa1d {
namespace {

TEST(Machine, RejectsZeroRanks) { EXPECT_THROW(Machine(0), std::invalid_argument); }

TEST(Machine, SingleRankRuns) {
  Machine m(1);
  int seen = -1;
  m.run([&](Comm& c) { seen = c.rank(); });
  EXPECT_EQ(seen, 0);
}

TEST(Collectives, Allgather) {
  Machine m(6);
  m.run([](Comm& c) {
    auto all = c.allgather(c.rank() * 10);
    ASSERT_EQ(all.size(), 6u);
    for (int p = 0; p < 6; ++p) EXPECT_EQ(all[static_cast<std::size_t>(p)], p * 10);
  });
}

TEST(Collectives, AllgathervVariableSizes) {
  Machine m(5);
  m.run([](Comm& c) {
    std::vector<index_t> mine(static_cast<std::size_t>(c.rank()), c.rank());
    auto all = c.allgatherv(std::span<const index_t>(mine));
    for (int p = 0; p < 5; ++p) {
      ASSERT_EQ(all[static_cast<std::size_t>(p)].size(), static_cast<std::size_t>(p));
      for (auto v : all[static_cast<std::size_t>(p)]) EXPECT_EQ(v, p);
    }
  });
}

TEST(Collectives, AllgathervConcatOrdered) {
  Machine m(4);
  m.run([](Comm& c) {
    std::vector<int> mine{c.rank()};
    auto cat = c.allgatherv_concat(std::span<const int>(mine));
    EXPECT_EQ(cat, (std::vector<int>{0, 1, 2, 3}));
  });
}

TEST(Collectives, Alltoallv) {
  Machine m(4);
  m.run([](Comm& c) {
    std::vector<std::vector<int>> send(4);
    for (int p = 0; p < 4; ++p) send[static_cast<std::size_t>(p)] = {c.rank() * 100 + p};
    auto recv = c.alltoallv(send);
    for (int p = 0; p < 4; ++p) {
      ASSERT_EQ(recv[static_cast<std::size_t>(p)].size(), 1u);
      EXPECT_EQ(recv[static_cast<std::size_t>(p)][0], p * 100 + c.rank());
    }
  });
}

TEST(Collectives, AlltoallvSendAccountingMatchesPayload) {
  // Regression: the send side used to publish the outer std::vector header
  // size instead of the per-destination payload, so sent-byte counters
  // under-reported every all-to-all. Exact volumes: each rank sends one
  // int to each other rank (self-chunks are local, not network traffic).
  const int P = 4;
  Machine m(P);
  auto rep = m.run([](Comm& c) {
    std::vector<std::vector<int>> send(P);
    for (int p = 0; p < P; ++p) send[static_cast<std::size_t>(p)] = {c.rank() * 100 + p};
    c.alltoallv(send);
  });
  const std::uint64_t expect_bytes = P * (P - 1) * sizeof(int);
  EXPECT_EQ(rep.total_sent_bytes(), expect_bytes);
  EXPECT_EQ(rep.total_coll_bytes_received(), expect_bytes);
  EXPECT_EQ(rep.total_sent_msgs(), static_cast<std::uint64_t>(P * (P - 1)));
  EXPECT_EQ(rep.total_coll_msgs_received(), static_cast<std::uint64_t>(P * (P - 1)));
}

TEST(Collectives, SentEqualsReceivedMachineWide) {
  // The mirror invariant across a mix of every collective, including empty
  // and self-addressed chunks: machine-wide collective sent == received,
  // bytes and messages, with the intra/inter split consistent.
  CostParams cp;
  cp.ranks_per_node = 2;  // make the intra/inter split non-trivial
  Machine m(6, cp);
  auto rep = m.run([](Comm& c) {
    std::vector<std::vector<double>> send(6);
    for (int p = 0; p < 6; ++p)
      if ((c.rank() + p) % 2 == 0)
        send[static_cast<std::size_t>(p)].assign(static_cast<std::size_t>(p + 1),
                                                 1.0 * c.rank());
    c.alltoallv(send);
    c.allgather(c.rank());
    std::vector<index_t> mine(static_cast<std::size_t>(c.rank()), 7);
    c.allgatherv(std::span<const index_t>(mine));
    std::vector<int> data;
    if (c.rank() == 2) data.assign(33, 5);
    c.bcast(data, 2);
  });
  EXPECT_GT(rep.total_sent_bytes(), 0u);
  EXPECT_EQ(rep.total_sent_bytes(), rep.total_coll_bytes_received());
  EXPECT_EQ(rep.total_sent_msgs(), rep.total_coll_msgs_received());
  std::uint64_t sent_inter = 0, recv_inter = 0;
  for (const auto& r : rep.ranks) {
    sent_inter += r.sent_bytes_inter;
    recv_inter += r.bytes_inter - r.rdma_bytes_inter;
  }
  EXPECT_EQ(sent_inter, recv_inter);
}

TEST(Collectives, AlltoallvRejectsWrongSize) {
  Machine m(3);
  EXPECT_THROW(m.run([](Comm& c) {
    std::vector<std::vector<int>> send(2);
    c.alltoallv(send);
  }),
               std::invalid_argument);
}

TEST(Collectives, Bcast) {
  Machine m(5);
  m.run([](Comm& c) {
    std::vector<double> data;
    if (c.rank() == 2) data = {1.5, 2.5, 3.5};
    c.bcast(data, 2);
    EXPECT_EQ(data, (std::vector<double>{1.5, 2.5, 3.5}));
  });
}

TEST(Collectives, AllreduceSumAndMax) {
  Machine m(7);
  m.run([](Comm& c) {
    EXPECT_EQ(c.allreduce_sum(c.rank()), 21);
    EXPECT_EQ(c.allreduce_max(c.rank()), 6);
  });
}

TEST(Collectives, BarrierCompletes) {
  Machine m(8);
  std::atomic<int> counter{0};
  m.run([&](Comm& c) {
    counter.fetch_add(1);
    c.barrier();
    EXPECT_EQ(counter.load(), 8);
  });
}

TEST(Windows, ExposeAndGet) {
  Machine m(4);
  m.run([](Comm& c) {
    std::vector<index_t> mine(10);
    std::iota(mine.begin(), mine.end(), c.rank() * 100);
    auto w = c.expose(std::span<const index_t>(mine));
    int target = (c.rank() + 1) % 4;
    EXPECT_EQ(c.window_nelems<index_t>(w, target), 10);
    std::vector<index_t> got(3);
    c.get(w, target, 5, 3, got.data());
    EXPECT_EQ(got, (std::vector<index_t>{target * 100 + 5, target * 100 + 6, target * 100 + 7}));
    c.barrier();  // keep exposed buffers alive until all gets complete
  });
}

TEST(Windows, MultipleWindowsCoexist) {
  Machine m(3);
  m.run([](Comm& c) {
    std::vector<int> a{c.rank()}, b{c.rank() * 2};
    auto wa = c.expose(std::span<const int>(a));
    auto wb = c.expose(std::span<const int>(b));
    int got = -1;
    c.get(wa, 1, 0, 1, &got);
    EXPECT_EQ(got, 1);
    c.get(wb, 2, 0, 1, &got);
    EXPECT_EQ(got, 4);
    c.barrier();  // keep exposed buffers alive until all gets complete
  });
}

TEST(Windows, OutOfRangeGetThrows) {
  Machine m(2);
  EXPECT_THROW(m.run([](Comm& c) {
    std::vector<int> mine(4, c.rank());
    auto w = c.expose(std::span<const int>(mine));
    int dst[8];
    c.get(w, (c.rank() + 1) % 2, 2, 4, dst);  // 2+4 > 4 elems
  }),
               std::invalid_argument);
}

TEST(Stats, RdmaCountsAreExact) {
  Machine m(3);
  auto rep = m.run([](Comm& c) {
    std::vector<double> mine(100, 1.0);
    auto w = c.expose(std::span<const double>(mine));
    if (c.rank() == 0) {
      std::vector<double> buf(50);
      c.get(w, 1, 0, 20, buf.data());  // one remote message, 160 bytes
      c.get(w, 0, 0, 50, buf.data());  // self: local bytes, no message
    }
    c.barrier();
  });
  EXPECT_EQ(rep.ranks[0].rdma_msgs, 1u);
  EXPECT_EQ(rep.ranks[0].rdma_bytes, 160u);
  EXPECT_EQ(rep.ranks[0].bytes_local, 400u);
  EXPECT_EQ(rep.ranks[1].rdma_msgs, 0u);
}

TEST(Stats, IntraVsInterNodeSplit) {
  CostParams p;
  p.ranks_per_node = 2;  // ranks {0,1} node 0, {2,3} node 1
  Machine m(4, p);
  auto rep = m.run([](Comm& c) {
    std::vector<int> mine(8, c.rank());
    auto w = c.expose(std::span<const int>(mine));
    if (c.rank() == 0) {
      int buf[8];
      c.get(w, 1, 0, 8, buf);  // same node
      c.get(w, 2, 0, 8, buf);  // other node
    }
    c.barrier();
  });
  EXPECT_EQ(rep.ranks[0].bytes_intra, 32u);
  EXPECT_EQ(rep.ranks[0].bytes_inter, 32u);
  EXPECT_EQ(rep.ranks[0].msgs_intra, 1u);
  EXPECT_EQ(rep.ranks[0].msgs_inter, 1u);
}

TEST(Stats, PhaseScopesAccumulate) {
  Machine m(2);
  auto rep = m.run([](Comm& c) {
    {
      auto ph = c.phase(Phase::Comp);
      volatile double x = 0;
      for (int i = 0; i < 500000; ++i) x = x + 1;
    }
    {
      auto ph = c.phase(Phase::Plan);
      volatile double x = 0;
      for (int i = 0; i < 200000; ++i) x = x + 1;
    }
    {
      auto ph = c.phase(Phase::Other);
      volatile double x = 0;
      for (int i = 0; i < 100000; ++i) x = x + 1;
    }
  });
  for (const auto& r : rep.ranks) {
    EXPECT_GT(r.comp_s, 0.0);
    EXPECT_GT(r.plan_s, 0.0);
    EXPECT_GT(r.other_s, 0.0);
  }
}

TEST(Split, RowColumnGrids) {
  Machine m(6);  // 2x3 grid: row = rank/3, col = rank%3
  m.run([](Comm& c) {
    Comm row = c.split(c.rank() / 3, c.rank() % 3);
    Comm col = c.split(10 + c.rank() % 3, c.rank() / 3);
    EXPECT_EQ(row.size(), 3);
    EXPECT_EQ(col.size(), 2);
    EXPECT_EQ(row.rank(), c.rank() % 3);
    EXPECT_EQ(col.rank(), c.rank() / 3);
    // Collectives on sub-communicators work independently.
    auto sums = row.allreduce_sum(1);
    EXPECT_EQ(sums, 3);
    // Global ranks recoverable for node mapping.
    EXPECT_EQ(row.global_rank(row.rank()), c.rank());
  });
}

TEST(Split, NestedSplit) {
  Machine m(8);
  m.run([](Comm& c) {
    Comm half = c.split(c.rank() / 4, c.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    EXPECT_EQ(quarter.allreduce_sum(1), 2);
  });
}

TEST(Split, RejectsNegativeColor) {
  Machine m(2);
  EXPECT_THROW(m.run([](Comm& c) { c.split(-1, c.rank()); }), std::invalid_argument);
}

TEST(Failure, RankExceptionPropagatesWithoutDeadlock) {
  Machine m(4);
  EXPECT_THROW(m.run([](Comm& c) {
    if (c.rank() == 2) throw std::runtime_error("injected");
    // Other ranks head into a collective and must not hang.
    c.allgather(c.rank());
    c.allgather(c.rank());
  }),
               std::runtime_error);
}

TEST(Failure, OriginalErrorWins) {
  Machine m(3);
  try {
    m.run([](Comm& c) {
      if (c.rank() == 0) throw std::logic_error("root-cause");
      c.barrier();
      c.barrier();
    });
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "root-cause");
  } catch (const PeerFailure&) {
    FAIL() << "PeerFailure must not mask the original error";
  }
}

TEST(CostModel, CommSecondsLinearInTraffic) {
  CostModel cm{CostParams{}};
  RankReport r1, r2;
  r1.msgs_inter = 10;
  r1.bytes_inter = 1 << 20;
  r2.msgs_inter = 20;
  r2.bytes_inter = 2 << 20;
  EXPECT_NEAR(cm.comm_seconds(r2), 2 * cm.comm_seconds(r1), 1e-12);
}

TEST(CostModel, IntraNodeCheaperThanInter) {
  CostModel cm{CostParams{}};
  RankReport intra, inter;
  intra.msgs_intra = 5;
  intra.bytes_intra = 1 << 22;
  inter.msgs_inter = 5;
  inter.bytes_inter = 1 << 22;
  EXPECT_LT(cm.comm_seconds(intra), cm.comm_seconds(inter));
}

TEST(CostModel, ThreadsShrinkCompOnly) {
  CostModel cm{CostParams{}};
  RankReport r;
  r.comp_s = 8.0;
  r.plan_s = 2.0;
  r.other_s = 1.0;
  auto t1 = cm.rank_time(r, 1);
  auto t8 = cm.rank_time(r, 8);
  EXPECT_DOUBLE_EQ(t8.comp, t1.comp / 8);
  EXPECT_DOUBLE_EQ(t8.plan, t1.plan);  // inspector work is serial
  EXPECT_DOUBLE_EQ(t8.other, t1.other);
}

TEST(CostModel, RunTimeIsMaxOverRanks) {
  CostModel cm{CostParams{}};
  std::vector<RankReport> ranks(3);
  ranks[0].comp_s = 1.0;
  ranks[1].comp_s = 5.0;
  ranks[2].comp_s = 2.0;
  EXPECT_DOUBLE_EQ(cm.run_time(ranks).comp, 5.0);
}

TEST(RunReport, AggregateCounters) {
  Machine m(2);
  auto rep = m.run([](Comm& c) {
    std::vector<int> mine(16, c.rank());
    auto w = c.expose(std::span<const int>(mine));
    int buf[16];
    c.get(w, (c.rank() + 1) % 2, 0, 16, buf);
    c.barrier();
  });
  EXPECT_EQ(rep.total_rdma_msgs(), 2u);
  EXPECT_EQ(rep.total_rdma_bytes(), 128u);
  EXPECT_GT(rep.total_bytes_network(), 0u);
  EXPECT_GT(rep.wall_s, 0.0);
}

TEST(Machine, ManyRanksStressBarrier) {
  Machine m(64);
  auto rep = m.run([](Comm& c) {
    for (int i = 0; i < 5; ++i) c.barrier();
    auto s = c.allreduce_sum(1);
    EXPECT_EQ(s, 64);
  });
  EXPECT_EQ(rep.ranks.size(), 64u);
}

// ---- online cost-parameter refit loop -------------------------------------

TEST(CostParamsFile, LoadOverridesListedKeysOnly) {
  // The file scripts/fit_cost_params.py writes: refitted rates as flat
  // "key": number pairs. Keys present override, keys absent keep their
  // values, unknown keys are ignored.
  const char* path = "cost_params_test_load.json";
  {
    std::ofstream f(path);
    f << "{\"flop_s\": 1.5e-9, \"triple_s\": 2.5e-8, \"records\": 24}\n";
  }
  CostParams p;
  p.alpha_inter = 9.0e-6;
  ASSERT_TRUE(load_cost_params(path, p));
  EXPECT_DOUBLE_EQ(p.flop_s, 1.5e-9);
  EXPECT_DOUBLE_EQ(p.triple_s, 2.5e-8);
  EXPECT_DOUBLE_EQ(p.alpha_inter, 9.0e-6);  // untouched
  std::remove(path);

  CostParams q;
  EXPECT_FALSE(load_cost_params("does_not_exist_cost_params.json", q));
  EXPECT_DOUBLE_EQ(q.flop_s, CostParams{}.flop_s);

  // Files truncated mid-write — value missing entirely, or cut off inside
  // the number ("1.234e" would strtod-parse as 1.234 s/flop, nine orders
  // off) — and negative values must all leave the defaults untouched.
  for (const char* bad : {"{\"flop_s\": ", "{\"flop_s\": 1.234e", "{\"flop_s\": -2.0e-9}"}) {
    std::ofstream(path) << bad;
    CostParams t;
    ASSERT_TRUE(load_cost_params(path, t)) << bad;
    EXPECT_DOUBLE_EQ(t.flop_s, CostParams{}.flop_s) << bad;
  }
  std::remove(path);
}

TEST(CostParamsFile, MachineAppliesSa1dCostParamsEnv) {
  // Machine construction routes through cost_params_from_env, so a refit
  // written to the file named by SA1D_COST_PARAMS reaches every subsequent
  // run without hand-editing CostParams.
  const char* path = "cost_params_test_env.json";
  {
    std::ofstream f(path);
    f << "{\"flop_s\": 4.25e-9, \"triple_s\": 1.75e-8}\n";
  }
  ASSERT_EQ(setenv("SA1D_COST_PARAMS", path, 1), 0);
  Machine m(2);
  EXPECT_DOUBLE_EQ(m.cost().params().flop_s, 4.25e-9);
  EXPECT_DOUBLE_EQ(m.cost().params().triple_s, 1.75e-8);
  unsetenv("SA1D_COST_PARAMS");
  std::remove(path);

  Machine plain(2);
  EXPECT_DOUBLE_EQ(plain.cost().params().flop_s, CostParams{}.flop_s);
}

}  // namespace
}  // namespace sa1d
