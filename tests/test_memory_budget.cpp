// Memory-bounded execution regression suite (DESIGN.md §13): budgeted
// execution — streaming merges, windowed ring hops, bounded stage lookahead,
// and column-panel replay — must be a *footprint-only* transform relative to
// the monolithic call: bit-identical results for every backend × semiring ×
// fresh/replay × panel count; the measured peak-triples gauge must respect
// max_peak_triples whenever the planner deems a budget feasible; divergent
// budgets must raise the identical ValidationError on every rank; the gauge
// must reset per outermost call (high-water of THIS call, not the process);
// and Algo::Auto must route to a feasible budgeted (backend × panelization)
// plan at budgets where the monolithic plan is infeasible.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "dist/dist_plan.hpp"
#include "dist/dist_spgemm.hpp"
#include "runtime/errors.hpp"
#include "runtime/fault.hpp"
#include "runtime/machine.hpp"
#include "runtime/plan_cache.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace sa1d {
namespace {

// Small-integer values keep every ⊕ order exact in doubles, so budgeted and
// monolithic results can be compared *bit-identical*, not approximately.
CscMatrix<double> with_integer_values(CscMatrix<double> a, std::uint64_t seed) {
  SplitMix64 g(seed);
  std::vector<double> v(a.vals().size());
  for (auto& x : v) x = static_cast<double>(1 + g.below(7));
  return CscMatrix<double>(a.nrows(), a.ncols(), a.colptr(), a.rowids(), std::move(v));
}

bool bit_equal(const CscMatrix<double>& got, const CscMatrix<double>& want) {
  return got.nrows() == want.nrows() && got.ncols() == want.ncols() &&
         got.colptr() == want.colptr() && got.rowids() == want.rowids() &&
         got.vals() == want.vals();
}

constexpr Algo kBackends[] = {Algo::SparseAware1D, Algo::Ring1D, Algo::Summa2D, Algo::Split3D};

struct ModeResult {
  CscMatrix<double> fresh, replay;
  RunReport rep;
  DistSpgemmStats fresh_stats, replay_stats;
};

/// Fresh + replay through one cached plan under the given options.
template <typename SRIn>
ModeResult run_mode(int P, const CscMatrix<double>& a, const DistSpgemmOptions& opt) {
  Machine m(P);
  ModeResult out;
  out.rep = m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    DistSpgemmPlan<double, ResolveSemiring<SRIn, double>> plan;
    DistSpgemmStats s1, s2;
    auto c1 = spgemm_dist_cached<SRIn>(c, plan, da, da, opt, &s1);
    auto c2 = spgemm_dist_cached<SRIn>(c, plan, da, da, opt, &s2);
    auto g1 = c1.gather(c);
    auto g2 = c2.gather(c);
    if (c.rank() == 0) {
      out.fresh = std::move(g1);
      out.replay = std::move(g2);
      out.fresh_stats = s1;
      out.replay_stats = s2;
    }
  });
  return out;
}

// ---- differential bit-identity: backends × semirings × modes × panels ------

template <typename SRIn>
void check_panels_bit_identical(const CscMatrix<double>& a, const CscMatrix<double>& want,
                                const char* sr_name) {
  const int P = 4;
  for (Algo algo : kBackends) {
    for (int panels : {1, 2, 8}) {
      SCOPED_TRACE(std::string(algo_name(algo)) + " x " + sr_name + " x panels=" +
                   std::to_string(panels));
      DistSpgemmOptions opt;
      opt.algo = algo;
      opt.panels = panels;
      auto r = run_mode<SRIn>(P, a, opt);
      EXPECT_TRUE(bit_equal(r.fresh, want));
      EXPECT_TRUE(bit_equal(r.replay, want));
      EXPECT_EQ(r.fresh_stats.panels, panels);
      EXPECT_EQ(r.replay_stats.panels, panels);
      EXPECT_GT(r.fresh_stats.peak_triples, 0u);
    }
  }
}

TEST(MemoryBudget, PlusTimesPanelsBitIdenticalAcrossBackendsAndModes) {
  auto a = with_integer_values(erdos_renyi<double>(130, 4.0, 81), 90);
  auto want = spgemm_local<PlusTimes<double>, double>(a, a, LocalKernel::Spa);
  check_panels_bit_identical<void>(a, want, "plus-times");
}

TEST(MemoryBudget, MinPlusPanelsBitIdenticalAcrossBackendsAndModes) {
  auto a = with_integer_values(erdos_renyi<double>(130, 4.0, 82), 91);
  auto want = spgemm_local<MinPlus<double>, double>(a, a, LocalKernel::Spa);
  check_panels_bit_identical<MinPlus<double>>(a, want, "min-plus");
}

// ---- budget sweep: measured peak respects the budget whenever feasible -----

TEST(MemoryBudget, FeasibleBudgetsBoundTheMeasuredPeak) {
  auto a = with_integer_values(erdos_renyi<double>(150, 5.0, 83), 92);
  auto want = spgemm_local<PlusTimes<double>, double>(a, a, LocalKernel::Spa);
  const int P = 4;
  for (Algo algo : kBackends) {
    // Unbudgeted baseline: the measured monolithic peak anchors the sweep.
    DistSpgemmOptions base;
    base.algo = algo;
    auto b0 = run_mode<void>(P, a, base);
    ASSERT_TRUE(bit_equal(b0.fresh, want));
    // Anchor on the machine-lifetime high-water mark: the per-call peak_*
    // fields reset at every outermost call, so after fresh+replay they only
    // describe the replay — hwm_* covers both.
    std::uint64_t peak0 = 0;
    for (const auto& r : b0.rep.ranks) peak0 = std::max(peak0, r.hwm_triples);
    ASSERT_GT(peak0, 0u);

    for (double frac : {4.0, 0.75, 0.5}) {
      const auto budget = static_cast<std::uint64_t>(static_cast<double>(peak0) * frac) + 1;
      SCOPED_TRACE(std::string(algo_name(algo)) + " budget=" + std::to_string(budget) +
                   " (frac " + std::to_string(frac) + " of measured peak " +
                   std::to_string(peak0) + ")");
      DistSpgemmOptions opt;
      opt.algo = algo;
      opt.max_peak_triples = budget;
      bool feasible = true;
      ModeResult r;
      try {
        r = run_mode<void>(P, a, opt);
      } catch (const ValidationError&) {
        feasible = false;  // planner declared every panelization over budget
      }
      if (!feasible) {
        // Infeasibility is only acceptable below the measured monolithic
        // peak; a 4× headroom budget must always be feasible.
        EXPECT_LT(frac, 1.0);
        continue;
      }
      EXPECT_TRUE(bit_equal(r.fresh, want));
      EXPECT_TRUE(bit_equal(r.replay, want));
      for (std::size_t rk = 0; rk < r.rep.ranks.size(); ++rk)
        EXPECT_LE(r.rep.ranks[rk].hwm_triples, budget) << "rank " << rk;
      EXPECT_LE(r.fresh_stats.peak_triples, budget);
      EXPECT_LE(r.replay_stats.peak_triples, budget);
    }
  }
}

// ---- Auto crosses the feasibility cliff via panelization -------------------

TEST(MemoryBudget, AutoPicksFeasiblePanelizedPlanWhereMonolithicIsInfeasible) {
  auto a = with_integer_values(erdos_renyi<double>(150, 5.0, 84), 93);
  auto want = spgemm_local<PlusTimes<double>, double>(a, a, LocalKernel::Spa);
  const int P = 4;
  // Anchor on the SMALLEST monolithic fresh peak across the backends: half
  // of it is a budget no monolithic plan can hold (a calibrated peak model
  // therefore prices every panels=1 cell infeasible), so Auto must cross
  // the cliff by panelizing.
  std::uint64_t min_peak0 = ~std::uint64_t{0};
  for (Algo algo : kBackends) {
    DistSpgemmOptions base;
    base.algo = algo;
    auto b0 = run_mode<void>(P, a, base);
    ASSERT_TRUE(bit_equal(b0.fresh, want));
    std::uint64_t pk = 0;
    for (const auto& r : b0.rep.ranks) pk = std::max(pk, r.hwm_triples);
    min_peak0 = std::min(min_peak0, pk);
  }

  DistSpgemmOptions opt;
  opt.max_peak_triples = min_peak0 / 2 + 1;
  auto r = run_mode<void>(P, a, opt);  // must not throw: Auto finds a slope
  EXPECT_TRUE(bit_equal(r.fresh, want));
  EXPECT_TRUE(bit_equal(r.replay, want));
  EXPECT_GT(r.fresh_stats.panels, 1) << "half the measured peak must force panelization";
  for (std::size_t rk = 0; rk < r.rep.ranks.size(); ++rk)
    EXPECT_LE(r.rep.ranks[rk].hwm_triples, opt.max_peak_triples) << "rank " << rk;
  // The chosen cell's prediction carries the panel count and a modeled peak
  // within budget — the priced slope that replaced the feasibility cliff.
  bool found = false;
  for (const auto& pr : r.fresh_stats.predictions) {
    if (pr.algo == r.fresh_stats.chosen && pr.feasible && pr.panels == r.fresh_stats.panels &&
        (r.fresh_stats.chosen != Algo::Split3D || pr.layers == r.fresh_stats.layers)) {
      EXPECT_LE(pr.peak_triples, opt.max_peak_triples);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---- divergent budgets fail validation everywhere ---------------------------

TEST(MemoryBudget, DivergentBudgetsFailValidationEverywhere) {
  auto a = with_integer_values(erdos_renyi<double>(80, 3.0, 85), 94);
  Machine m(4);
  std::vector<int> validation(4, 0);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    DistSpgemmOptions opt;
    opt.algo = Algo::Summa2D;
    opt.max_peak_triples = c.rank() % 2 == 0 ? 100000 : 200000;  // diverges
    try {
      (void)spgemm_dist(c, da, da, opt);
    } catch (const ValidationError&) {
      validation[static_cast<std::size_t>(c.rank())] = 1;
    }
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(validation[static_cast<std::size_t>(r)], 1) << r;
}

TEST(MemoryBudget, DivergentPanelCountsFailValidationEverywhere) {
  auto a = with_integer_values(erdos_renyi<double>(80, 3.0, 86), 95);
  Machine m(4);
  std::vector<int> validation(4, 0);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    DistSpgemmOptions opt;
    opt.algo = Algo::Ring1D;
    opt.panels = c.rank() % 2 == 0 ? 2 : 4;  // diverges
    try {
      (void)spgemm_dist(c, da, da, opt);
    } catch (const ValidationError&) {
      validation[static_cast<std::size_t>(c.rank())] = 1;
    }
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(validation[static_cast<std::size_t>(r)], 1) << r;
}

// ---- gauge discipline --------------------------------------------------------

TEST(MemoryBudget, PeakGaugeResetsPerOutermostCall) {
  // The high-water mark is per outermost call (MemGaugeScope depth guard):
  // after a big multiply, a small multiply's recorded peak must reflect only
  // its own transients — not the process lifetime maximum.
  auto big = with_integer_values(erdos_renyi<double>(200, 6.0, 87), 96);
  auto small = with_integer_values(erdos_renyi<double>(40, 2.0, 88), 97);
  Machine m(4);
  std::vector<std::uint64_t> peak_big(4, 0), peak_small(4, 0);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, big);
    auto ds = DistMatrix1D<double>::from_global(c, small);
    DistSpgemmOptions opt;
    opt.algo = Algo::Summa2D;
    (void)spgemm_dist(c, da, da, opt);
    peak_big[static_cast<std::size_t>(c.rank())] = c.report().peak_triples;
    (void)spgemm_dist(c, ds, ds, opt);
    peak_small[static_cast<std::size_t>(c.rank())] = c.report().peak_triples;
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_GT(peak_big[static_cast<std::size_t>(r)], 0u) << r;
    EXPECT_LT(peak_small[static_cast<std::size_t>(r)], peak_big[static_cast<std::size_t>(r)])
        << r;
  }
}

TEST(MemoryBudget, CacheResidencyReportsThroughTheSharedGauge) {
  // Plan-cache residency and execution transients share one pressure path:
  // after a cached-serving call, the byte gauge holds the published cache
  // residency (execution transients released), and the call's peak covers
  // at least that residency.
  auto a = with_integer_values(erdos_renyi<double>(100, 4.0, 89), 98);
  Machine m(4);
  std::vector<int> ok(4, 0);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    PlanCache<double> cache;
    DistSpgemmOptions opt;
    opt.algo = Algo::Ring1D;
    (void)spgemm_dist_cached_mt(c, cache, da, da, opt);
    const auto& r = c.report();
    ok[static_cast<std::size_t>(c.rank())] =
        (r.cache_bytes_resident > 0 && r.mem_cur_bytes == r.cache_bytes_resident &&
         r.peak_bytes >= r.cache_bytes_resident)
            ? 1
            : 0;
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << r;
}

// ---- faults mid-panel ---------------------------------------------------------

struct RankOutcome {
  bool ok = false;
  FaultClass cls = FaultClass::None;
  std::string what;
};

TEST(MemoryBudget, ChaosMidPanelContainsOrHealsOnEveryRank) {
  // Inject rank-abort and payload corruption into the middle of a panelized
  // fresh+replay workload (the op window straddles panel boundaries).
  // Contract per cell, same as the lockstep chaos sweep: either every rank
  // completes bit-identically (corruption healed by integrity replay) or
  // every rank raises the same typed error — and the machine never hangs.
  auto a = with_integer_values(erdos_renyi<double>(110, 4.0, 78), 99);
  auto want = spgemm_local<PlusTimes<double>, double>(a, a, LocalKernel::Spa);
  const int P = 4;
  const FaultKind kinds[] = {FaultKind::RankAbort, FaultKind::CollectiveCorrupt};

  for (Algo algo : {Algo::Summa2D, Algo::Ring1D}) {
    DistSpgemmOptions opt;
    opt.algo = algo;
    opt.panels = 2;
    opt.max_recovery_retries = 4;

    std::vector<std::uint64_t> ops(static_cast<std::size_t>(P), 0);
    Machine probe(P);
    probe.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      DistSpgemmPlan<double> plan;
      (void)spgemm_dist_cached(c, plan, da, da, opt);
      (void)spgemm_dist_cached(c, plan, da, da, opt);
      ops[static_cast<std::size_t>(c.rank())] = c.report().comm_ops;
    });

    for (FaultKind kind : kinds) {
      const int victim = 1;
      const std::uint64_t op = ops[static_cast<std::size_t>(victim)] / 2;
      SCOPED_TRACE(std::string(algo_name(algo)) + " x " + fault_kind_name(kind) + " @op " +
                   std::to_string(op));
      MachineOptions o;
      o.integrity = true;
      o.barrier_timeout = std::chrono::milliseconds(20000);
      o.faults.actions.push_back(
          {.kind = kind, .rank = victim, .op_index = op, .byte_offset = 5});
      Machine m(P, {}, o);
      std::vector<RankOutcome> out(static_cast<std::size_t>(P));
      std::vector<int> match(static_cast<std::size_t>(P), 0);
      m.run([&](Comm& c) {
        auto& oc = out[static_cast<std::size_t>(c.rank())];
        try {
          auto da = DistMatrix1D<double>::from_global(c, a);
          DistSpgemmPlan<double> plan;
          auto c1 = spgemm_dist_cached(c, plan, da, da, opt);
          auto c2 = spgemm_dist_cached(c, plan, da, da, opt);
          match[static_cast<std::size_t>(c.rank())] =
              (bit_equal(c1.gather(c), want) && bit_equal(c2.gather(c), want)) ? 1 : 0;
          oc.ok = true;
        } catch (const Sa1dError& e) {
          oc.cls = e.fault_class();
          oc.what = dynamic_cast<const std::exception&>(e).what();
        }
      });

      const bool any_ok = out[0].ok;
      for (int r = 0; r < P; ++r) {
        const auto& o_r = out[static_cast<std::size_t>(r)];
        EXPECT_EQ(o_r.ok, any_ok) << "rank " << r << ": outcome not uniform";
        if (o_r.ok) {
          EXPECT_EQ(match[static_cast<std::size_t>(r)], 1) << "rank " << r;
        } else {
          EXPECT_EQ(o_r.cls, out[0].cls) << "rank " << r;
          if (r != victim) EXPECT_EQ(o_r.what, out[0].what) << "rank " << r;
        }
      }
    }
  }
}

}  // namespace
}  // namespace sa1d
