// Fault injection, failure containment, and self-healing regression suite
// (DESIGN.md §9): seeded FaultPlan replayability, the barrier watchdog,
// rank-abort containment with RDMA windows exposed (including the
// sub-communicator barriers of the grid backends), integrity-mode corruption
// detection with bit-identical recovery through spgemm_dist_cached, the
// chaos sweep over backends × fault kinds × injection points, rank-consistent
// validation, Auto's veto degrade, horizon pricing, and the zero-overhead
// contract of the disabled fault layer.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dist/dist_plan.hpp"
#include "dist/dist_spgemm.hpp"
#include "runtime/errors.hpp"
#include "runtime/fault.hpp"
#include "runtime/machine.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace sa1d {
namespace {

// Small-integer values keep every ⊕ order exact in doubles, so a recovered
// result can be asserted *bit-identical* to the clean reference.
CscMatrix<double> with_integer_values(CscMatrix<double> a, std::uint64_t seed) {
  SplitMix64 g(seed);
  std::vector<double> v(a.vals().size());
  for (auto& x : v) x = static_cast<double>(1 + g.below(7));
  return CscMatrix<double>(a.nrows(), a.ncols(), a.colptr(), a.rowids(), std::move(v));
}

bool bit_equal(const CscMatrix<double>& got, const CscMatrix<double>& want) {
  return got.nrows() == want.nrows() && got.ncols() == want.ncols() &&
         got.colptr() == want.colptr() && got.rowids() == want.rowids() &&
         got.vals() == want.vals();
}

/// What one rank's SPMD body ended with: normal return, or a structured
/// error (class + message). The capture runs inside the body so a test can
/// assert the *per-rank* contract — same class and message everywhere —
/// which Machine::run's rethrow-first-error cannot show.
struct RankOutcome {
  bool ok = false;
  FaultClass cls = FaultClass::None;
  std::string what;
};

template <typename Body>
std::vector<RankOutcome> run_capture(Machine& m, Body&& body) {
  std::vector<RankOutcome> out(static_cast<std::size_t>(m.nranks()));
  m.run([&](Comm& c) {
    auto& o = out[static_cast<std::size_t>(c.rank())];
    try {
      body(c);
      o.ok = true;
    } catch (const Sa1dError& e) {
      o.cls = e.fault_class();
      o.what = dynamic_cast<const std::exception&>(e).what();
    } catch (const std::exception& e) {
      o.what = e.what();
    }
  });
  return out;
}

/// Comm-op counter snapshots around the iterated workload: injection
/// coordinates for "during plan build" ([pre, built)) and "during replay"
/// ([built, replayed)) land between these marks.
struct OpMarks {
  std::uint64_t pre = 0;       ///< after operand distribution
  std::uint64_t built = 0;     ///< after the plan-building first call
  std::uint64_t replayed = 0;  ///< after the value-only replay call
};

/// The iterated workload every containment test runs: distribute, build a
/// plan, replay it, gather, and compare against the serial reference.
bool iterate_backend(Comm& c, const CscMatrix<double>& a, const CscMatrix<double>& b,
                     const CscMatrix<double>& want, const DistSpgemmOptions& opt,
                     OpMarks* marks = nullptr, DistSpgemmStats* build_st = nullptr,
                     DistSpgemmStats* replay_st = nullptr) {
  auto da = DistMatrix1D<double>::from_global(c, a);
  auto db = DistMatrix1D<double>::from_global(c, b);
  if (marks != nullptr) marks->pre = c.report().comm_ops;
  DistSpgemmPlan<double> plan;
  auto c1 = spgemm_dist_cached(c, plan, da, db, opt, build_st);
  if (marks != nullptr) marks->built = c.report().comm_ops;
  auto c2 = spgemm_dist_cached(c, plan, da, db, opt, replay_st);
  if (marks != nullptr) marks->replayed = c.report().comm_ops;
  return bit_equal(c1.gather(c), want) && bit_equal(c2.gather(c), want);
}

// ---- fault plan + taxonomy -------------------------------------------------

TEST(Fault, FaultPlanSeedIsReplayable) {
  auto p1 = FaultPlan::from_seed(42, 8, 16, 10, 500);
  auto p2 = FaultPlan::from_seed(42, 8, 16, 10, 500);
  EXPECT_EQ(p1.actions, p2.actions);  // same seed => identical script
  EXPECT_NE(p1.actions, FaultPlan::from_seed(43, 8, 16, 10, 500).actions);
  ASSERT_EQ(p1.actions.size(), 16u);
  for (const auto& a : p1.actions) {
    EXPECT_GE(a.rank, 0);
    EXPECT_LT(a.rank, 8);
    EXPECT_GE(a.op_index, 10u);
    EXPECT_LT(a.op_index, 500u);
    EXPECT_NE(a.xor_mask, 0);  // a zero mask would be a no-op corruption
  }
}

TEST(Fault, ErrorTaxonomyCarriesClassAndContext) {
  const ErrorContext ctx{3, 17, "allgather"};
  EXPECT_EQ(ValidationError(ctx, "v").fault_class(), FaultClass::Validation);
  EXPECT_EQ(PeerFailure(ctx, "p").fault_class(), FaultClass::Peer);
  EXPECT_EQ(CorruptionDetected(ctx, "c").fault_class(), FaultClass::Corruption);
  EXPECT_EQ(PlanMismatch(ctx, "m").fault_class(), FaultClass::PlanMismatch);
  EXPECT_EQ(InjectedRankAbort(ctx, "a").fault_class(), FaultClass::Peer);
  EXPECT_EQ(CorruptionDetected(ctx, "c").context(), ctx);

  // Dual inheritance: legacy std:: handlers keep catching the new types.
  EXPECT_THROW(throw ValidationError(ctx, "v"), std::invalid_argument);
  EXPECT_THROW(throw CorruptionDetected(ctx, "c"), std::runtime_error);
  EXPECT_STREQ(fault_class_name(FaultClass::Corruption), "corruption");

  // The default PeerFailure keeps the legacy message older tests pin.
  EXPECT_STREQ(PeerFailure().what(), "sa1d: a peer rank failed during a collective");
}

// ---- containment -----------------------------------------------------------

TEST(Fault, BarrierWatchdogConvertsStuckBarrierToPeerFailure) {
  MachineOptions o;
  o.barrier_timeout = std::chrono::milliseconds(250);
  Machine m(4, {}, o);
  auto out = run_capture(m, [](Comm& c) {
    if (c.rank() == 0) return;  // simulated death: never arrives
    c.barrier();
  });
  EXPECT_TRUE(out[0].ok);
  for (int r = 1; r < 4; ++r) {
    EXPECT_FALSE(out[static_cast<std::size_t>(r)].ok) << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].cls, FaultClass::Peer) << r;
    EXPECT_NE(out[static_cast<std::size_t>(r)].what.find("watchdog"), std::string::npos) << r;
  }
  // One coherent machine-wide record: identical message on every survivor.
  EXPECT_EQ(out[1].what, out[2].what);
  EXPECT_EQ(out[2].what, out[3].what);
}

TEST(Fault, RankAbortMidCollectiveWithWindowsExposed) {
  // The satellite regression for the old Comm::sync poison-check window: a
  // rank dies mid-collective while passive-target RDMA windows are exposed
  // and peers are blocked; every survivor must unwind with the identical
  // PeerFailure instead of hanging in the barrier.
  MachineOptions o;
  o.faults.actions.push_back({.kind = FaultKind::RankAbort, .rank = 1, .op_index = 23});
  Machine m(4, {}, o);
  auto out = run_capture(m, [](Comm& c) {
    std::vector<double> mine(32, c.rank() + 1.0);
    auto w = c.expose(std::span<const double>(mine));
    std::vector<double> buf(32);
    for (int i = 0; i < 40; ++i) {
      c.get(w, (c.rank() + 1) % c.size(), 0, 32, buf.data());
      c.barrier();  // window access epoch
      (void)c.allgather(i);
    }
  });
  EXPECT_FALSE(out[1].ok);
  EXPECT_EQ(out[1].cls, FaultClass::Peer);
  EXPECT_NE(out[1].what.find("injected rank abort"), std::string::npos);
  for (int r : {0, 2, 3}) {
    EXPECT_FALSE(out[static_cast<std::size_t>(r)].ok) << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].cls, FaultClass::Peer) << r;
    EXPECT_NE(out[static_cast<std::size_t>(r)].what.find("aborted during"), std::string::npos)
        << r;
  }
  EXPECT_EQ(out[0].what, out[2].what);
  EXPECT_EQ(out[2].what, out[3].what);
}

TEST(Fault, AppExceptionInRankBodyParksAndUnwindsPeers) {
  // A rank body that throws an *application* exception (not a comm-layer
  // Sa1dError — e.g. a require() deep in user code) unwinds past every
  // rendezvous it still owed its peers. Machine::run's boundary handler must
  // convert that into the standard containment: raise the fatal Peer fault so
  // blocked peers wake promptly, park the failing rank until every peer has
  // quiesced, and surface the *original* exception — never a hang, never a
  // watchdog wait.
  MachineOptions o;
  o.barrier_timeout = std::chrono::milliseconds(20000);  // backstop only
  Machine m(4, {}, o);
  std::vector<RankOutcome> out(4);
  try {
    m.run([&](Comm& c) {
      auto& oc = out[static_cast<std::size_t>(c.rank())];
      if (c.rank() == 2) {
        (void)c.allgather(c.rank());  // let every peer start before dying
        throw std::runtime_error("app bug outside the comm layer");
      }
      try {
        (void)c.allgather(c.rank());
        for (int i = 0; i < 20; ++i) {
          c.barrier();
          (void)c.allgather(i);
        }
        oc.ok = true;
      } catch (const Sa1dError& e) {
        oc.cls = e.fault_class();
        oc.what = dynamic_cast<const std::exception&>(e).what();
      }
    });
    FAIL() << "the app exception must surface from Machine::run";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "app bug outside the comm layer");
  }
  for (int r : {0, 1, 3}) {
    EXPECT_FALSE(out[static_cast<std::size_t>(r)].ok) << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].cls, FaultClass::Peer) << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].what, out[0].what) << r;
  }
}

TEST(Fault, SubCommunicatorBarriersUnwindOnAbort) {
  // SUMMA splits the machine into row/col sub-communicators whose barriers
  // the old arrive_and_drop scheme could not poison — kill a rank mid-build
  // and require every rank (whichever sub-barrier it was blocked in) to
  // unwind with the Peer fault.
  auto a = with_integer_values(erdos_renyi<double>(96, 4.0, 5), 1);
  auto b = with_integer_values(erdos_renyi<double>(96, 4.0, 6), 2);
  auto want = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa);
  DistSpgemmOptions opt;
  opt.algo = Algo::Summa2D;

  std::vector<OpMarks> marks(4);
  Machine probe(4);
  probe.run([&](Comm& c) {
    iterate_backend(c, a, b, want, opt, &marks[static_cast<std::size_t>(c.rank())]);
  });

  const int victim = 2;
  const auto& mk = marks[static_cast<std::size_t>(victim)];
  MachineOptions o;
  o.faults.actions.push_back(
      {.kind = FaultKind::RankAbort, .rank = victim, .op_index = (mk.pre + mk.built) / 2});
  Machine m(4, {}, o);
  auto out = run_capture(m, [&](Comm& c) { iterate_backend(c, a, b, want, opt); });
  for (int r = 0; r < 4; ++r) {
    EXPECT_FALSE(out[static_cast<std::size_t>(r)].ok) << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].cls, FaultClass::Peer) << r;
  }
}

TEST(Fault, RecoveryRendezvousTimesOutOnMissingRank) {
  MachineOptions o;
  o.barrier_timeout = std::chrono::milliseconds(250);
  Machine m(2, {}, o);
  auto out = run_capture(m, [](Comm& c) {
    if (c.rank() != 0) return;  // never joins the recovery rendezvous
    try {
      c.fail(FaultClass::Corruption, "test", "sa1d: scripted test corruption");
    } catch (const CorruptionDetected&) {
    }
    c.recover();
  });
  EXPECT_TRUE(out[1].ok);
  EXPECT_FALSE(out[0].ok);
  EXPECT_EQ(out[0].cls, FaultClass::Peer);
  EXPECT_NE(out[0].what.find("recovery rendezvous timed out"), std::string::npos);
}

// ---- integrity + self-healing replay --------------------------------------

TEST(Fault, CollectiveCorruptionDetectedAndHealedBitIdentically) {
  auto a = with_integer_values(erdos_renyi<double>(120, 4.0, 7), 3);
  auto b = with_integer_values(erdos_renyi<double>(120, 4.0, 8), 4);
  auto want = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa);
  DistSpgemmOptions opt;
  opt.algo = Algo::SparseAware1D;

  std::vector<OpMarks> marks(4);
  Machine probe(4);
  probe.run([&](Comm& c) {
    iterate_backend(c, a, b, want, opt, &marks[static_cast<std::size_t>(c.rank())]);
  });

  // Corrupt the victim's received chunk of the replay-vs-rebuild vote (the
  // first counted, payload-carrying op of the replay call).
  const int victim = 1;
  MachineOptions o;
  o.integrity = true;
  o.faults.actions.push_back({.kind = FaultKind::CollectiveCorrupt,
                              .rank = victim,
                              .op_index = marks[static_cast<std::size_t>(victim)].built + 1,
                              .byte_offset = 2});
  Machine m(4, {}, o);
  std::vector<DistSpgemmStats> rst(4);
  std::vector<int> match(4, 0);
  RunReport rep = m.run([&](Comm& c) {
    match[static_cast<std::size_t>(c.rank())] =
        iterate_backend(c, a, b, want, opt, nullptr, nullptr,
                        &rst[static_cast<std::size_t>(c.rank())])
            ? 1
            : 0;
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(match[static_cast<std::size_t>(r)], 1) << r;
    EXPECT_EQ(rst[static_cast<std::size_t>(r)].recoveries, 1) << r;
    EXPECT_EQ(rep.ranks[static_cast<std::size_t>(r)].plan_recoveries, 1u) << r;
  }
}

TEST(Fault, RdmaCorruptionSweepHeals) {
  // Blanket the whole replay window of the RDMA-driven SA-1D backend with
  // scripted get corruptions: integrity mode must detect each one and the
  // bounded retry loop must converge to the bit-identical result, however
  // many recoveries that takes (each action fires at most once).
  auto a = with_integer_values(erdos_renyi<double>(120, 4.0, 9), 5);
  auto b = with_integer_values(erdos_renyi<double>(120, 4.0, 10), 6);
  auto want = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa);
  DistSpgemmOptions opt;
  opt.algo = Algo::SparseAware1D;

  std::vector<OpMarks> marks(4);
  Machine probe(4);
  probe.run([&](Comm& c) {
    iterate_backend(c, a, b, want, opt, &marks[static_cast<std::size_t>(c.rank())]);
  });

  const int victim = 3;
  const auto lo = marks[static_cast<std::size_t>(victim)].built;
  const auto hi = marks[static_cast<std::size_t>(victim)].replayed;
  ASSERT_LT(lo, hi);
  MachineOptions o;
  o.integrity = true;
  for (std::uint64_t k = lo; k < hi; ++k)
    o.faults.actions.push_back(
        {.kind = FaultKind::RdmaCorrupt, .rank = victim, .op_index = k, .byte_offset = k});
  opt.max_recovery_retries = static_cast<int>(hi - lo) + 2;

  Machine m(4, {}, o);
  std::vector<DistSpgemmStats> rst(4);
  std::vector<int> match(4, 0);
  RunReport rep = m.run([&](Comm& c) {
    match[static_cast<std::size_t>(c.rank())] =
        iterate_backend(c, a, b, want, opt, nullptr, nullptr,
                        &rst[static_cast<std::size_t>(c.rank())])
            ? 1
            : 0;
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(match[static_cast<std::size_t>(r)], 1) << r;
    // All ranks recover together, the same number of times, at least once
    // (the SA-1D replay always fetches remote blocks here).
    EXPECT_GE(rst[static_cast<std::size_t>(r)].recoveries, 1) << r;
    EXPECT_EQ(rst[static_cast<std::size_t>(r)].recoveries, rst[0].recoveries) << r;
    EXPECT_EQ(rep.ranks[static_cast<std::size_t>(r)].plan_recoveries,
              static_cast<std::uint64_t>(rst[0].recoveries))
        << r;
  }
}

TEST(Fault, ExecuteVerifiedMismatchRaisesPlanMismatchEverywhere) {
  auto a = with_integer_values(erdos_renyi<double>(96, 4.0, 11), 7);
  auto b = with_integer_values(erdos_renyi<double>(96, 4.0, 12), 8);
  auto a2 = with_integer_values(erdos_renyi<double>(96, 2.0, 13), 9);  // other structure
  Machine m(4);
  auto out = run_capture(m, [&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    auto db = DistMatrix1D<double>::from_global(c, b);
    auto d2 = DistMatrix1D<double>::from_global(c, a2);
    DistSpgemmPlan<double> plan;
    DistSpgemmOptions opt;
    opt.algo = Algo::SparseAware1D;
    (void)plan.build(c, da, db, opt);
    (void)plan.execute_verified(c, d2, db);  // misuse: operands the plan never saw
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_FALSE(out[static_cast<std::size_t>(r)].ok) << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].cls, FaultClass::PlanMismatch) << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].what, out[0].what) << r;
  }
}

// ---- the chaos sweep -------------------------------------------------------

TEST(Fault, ChaosSweepAllBackendsAllFaultsBothPhases) {
  // 4 backends × 4 fault kinds × {plan-build, replay} injection points.
  // Contract per cell: either every rank completes with the bit-identical
  // result (faults absorbed or recovered), or every rank raises the same
  // structured error class — and peers the same message — and the machine
  // never hangs (the barrier watchdog is the backstop; ctest --timeout
  // backs it in CI).
  auto a = with_integer_values(erdos_renyi<double>(110, 4.0, 21), 14);
  auto b = with_integer_values(erdos_renyi<double>(110, 4.0, 22), 15);
  auto want = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa);
  const int P = 4;
  const Algo backends[] = {Algo::SparseAware1D, Algo::Ring1D, Algo::Summa2D, Algo::Split3D};
  const FaultKind kinds[] = {FaultKind::RankAbort, FaultKind::CollectiveCorrupt,
                             FaultKind::RdmaCorrupt, FaultKind::SlowRank};

  for (Algo algo : backends) {
    DistSpgemmOptions opt;
    opt.algo = algo;
    opt.max_recovery_retries = 4;
    std::vector<OpMarks> marks(static_cast<std::size_t>(P));
    Machine probe(P);
    probe.run([&](Comm& c) {
      iterate_backend(c, a, b, want, opt, &marks[static_cast<std::size_t>(c.rank())]);
    });

    for (FaultKind kind : kinds) {
      for (int point = 0; point < 2; ++point) {  // 0 = during build, 1 = during replay
        const int victim = point == 0 ? 1 : P - 1;
        const auto& mk = marks[static_cast<std::size_t>(victim)];
        const std::uint64_t op =
            point == 0 ? (mk.pre + mk.built) / 2 : (mk.built + mk.replayed) / 2;
        SCOPED_TRACE(std::string(algo_name(algo)) + " x " + fault_kind_name(kind) +
                     (point == 0 ? " @build op " : " @replay op ") + std::to_string(op));

        MachineOptions o;
        o.integrity = true;
        o.barrier_timeout = std::chrono::milliseconds(20000);
        o.faults.actions.push_back(
            {.kind = kind, .rank = victim, .op_index = op, .byte_offset = 7,
             .delay_us = 3000});
        Machine m(P, {}, o);
        std::vector<int> match(static_cast<std::size_t>(P), 0);
        auto out = run_capture(m, [&](Comm& c) {
          match[static_cast<std::size_t>(c.rank())] =
              iterate_backend(c, a, b, want, opt) ? 1 : 0;
        });

        const bool any_ok = out[0].ok;
        const int ref = victim == 0 ? 1 : 0;  // peer whose error message is canonical
        for (int r = 0; r < P; ++r) {
          const auto& o_r = out[static_cast<std::size_t>(r)];
          EXPECT_EQ(o_r.ok, any_ok) << "rank " << r << ": outcome not uniform";
          if (o_r.ok) {
            EXPECT_EQ(match[static_cast<std::size_t>(r)], 1) << "rank " << r;
          } else {
            EXPECT_EQ(o_r.cls, out[0].cls) << "rank " << r;
            if (r != victim)
              EXPECT_EQ(o_r.what, out[static_cast<std::size_t>(ref)].what) << "rank " << r;
          }
        }
      }
    }
  }
}

// ---- rank-consistent validation -------------------------------------------

TEST(Fault, ValidationIsRankConsistentAcrossP) {
  auto a = with_integer_values(erdos_renyi<double>(60, 3.0, 31), 20);
  auto bad = with_integer_values(erdos_renyi<double>(50, 3.0, 32), 21);  // inner-dim mismatch
  for (int P : {2, 5, 8}) {
    SCOPED_TRACE("P=" + std::to_string(P));
    Machine m(P);
    auto out = run_capture(m, [&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      auto db = DistMatrix1D<double>::from_global(c, bad);
      (void)spgemm_dist(c, da, db, DistSpgemmOptions{});
    });
    for (int r = 0; r < P; ++r) {
      EXPECT_FALSE(out[static_cast<std::size_t>(r)].ok) << r;
      EXPECT_EQ(out[static_cast<std::size_t>(r)].cls, FaultClass::Validation) << r;
      EXPECT_EQ(out[static_cast<std::size_t>(r)].what, out[0].what) << r;
    }

    // Rank-divergent options would send ranks down different collective
    // sequences — the entry vote must convert that into the identical
    // ValidationError everywhere instead.
    auto out2 = run_capture(m, [&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      DistSpgemmOptions opt;
      opt.expected_iterations = c.rank();  // diverges across ranks
      (void)spgemm_dist(c, da, da, opt);
    });
    for (int r = 0; r < P; ++r) {
      EXPECT_FALSE(out2[static_cast<std::size_t>(r)].ok) << r;
      EXPECT_EQ(out2[static_cast<std::size_t>(r)].cls, FaultClass::Validation) << r;
      EXPECT_NE(out2[static_cast<std::size_t>(r)].what.find("disagree across ranks"),
                std::string::npos)
          << r;
      EXPECT_EQ(out2[static_cast<std::size_t>(r)].what, out2[0].what) << r;
    }
  }
}

// ---- Auto degrade + horizon pricing ---------------------------------------

TEST(Fault, AutoDegradesToNextBackendOnVeto) {
  auto a = with_integer_values(erdos_renyi<double>(140, 5.0, 41), 30);
  auto b = with_integer_values(erdos_renyi<double>(140, 5.0, 42), 31);
  auto want = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa);
  DistSpgemmOptions opt;  // Algo::Auto

  std::vector<Algo> clean(4, Algo::Auto);
  Machine probe(4);
  probe.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    auto db = DistMatrix1D<double>::from_global(c, b);
    DistSpgemmStats st;
    (void)spgemm_dist(c, da, db, opt, &st);
    clean[static_cast<std::size_t>(c.rank())] = st.chosen;
  });
  ASSERT_NE(clean[0], Algo::Auto);

  MachineOptions o;
  o.faults.actions.push_back(
      {.kind = FaultKind::BackendVeto, .veto_algo = static_cast<int>(clean[0])});
  Machine m(4, {}, o);
  std::vector<DistSpgemmStats> st(4);
  std::vector<int> match(4, 0);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    auto db = DistMatrix1D<double>::from_global(c, b);
    auto got = spgemm_dist(c, da, db, opt, &st[static_cast<std::size_t>(c.rank())]);
    match[static_cast<std::size_t>(c.rank())] = bit_equal(got.gather(c), want) ? 1 : 0;
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(match[static_cast<std::size_t>(r)], 1) << r;
    EXPECT_NE(st[static_cast<std::size_t>(r)].chosen, clean[0]) << r;       // degraded away
    EXPECT_EQ(st[static_cast<std::size_t>(r)].chosen, st[0].chosen) << r;   // uniformly
    EXPECT_GE(st[static_cast<std::size_t>(r)].validation_failovers, 1) << r;
  }

  // Explicitly requesting the vetoed backend is a rank-consistent
  // ValidationError, not a hang or a divergent dispatch.
  auto out = run_capture(m, [&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    auto db = DistMatrix1D<double>::from_global(c, b);
    DistSpgemmOptions exp;
    exp.algo = clean[0];
    (void)spgemm_dist(c, da, db, exp);
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_FALSE(out[static_cast<std::size_t>(r)].ok) << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].cls, FaultClass::Validation) << r;
    EXPECT_NE(out[static_cast<std::size_t>(r)].what.find("vetoed by fault injection"),
              std::string::npos)
        << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].what, out[0].what) << r;
  }
}

TEST(Fault, HorizonPricingUsesExpectedIterations) {
  auto a = with_integer_values(erdos_renyi<double>(120, 4.0, 51), 40);
  auto b = with_integer_values(erdos_renyi<double>(120, 4.0, 52), 41);
  auto want = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa);
  DistSpgemmOptions opt;  // Algo::Auto
  opt.expected_iterations = 8;
  Machine m(4);
  std::vector<DistSpgemmStats> bs(4), rs(4);
  std::vector<int> match(4, 0);
  m.run([&](Comm& c) {
    match[static_cast<std::size_t>(c.rank())] =
        iterate_backend(c, a, b, want, opt, nullptr, &bs[static_cast<std::size_t>(c.rank())],
                        &rs[static_cast<std::size_t>(c.rank())])
            ? 1
            : 0;
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(match[static_cast<std::size_t>(r)], 1) << r;
    EXPECT_EQ(bs[static_cast<std::size_t>(r)].horizon_iters, 8) << r;
    EXPECT_EQ(rs[static_cast<std::size_t>(r)].horizon_iters, 8) << r;
    EXPECT_EQ(bs[static_cast<std::size_t>(r)].chosen, bs[0].chosen) << r;
    EXPECT_FALSE(bs[static_cast<std::size_t>(r)].predictions.empty()) << r;
  }
}

// ---- zero-overhead-when-off ------------------------------------------------

std::vector<std::uint64_t> counters_of(const RankReport& r) {
  return {r.bytes_intra,      r.bytes_inter,      r.msgs_intra,      r.msgs_inter,
          r.sent_bytes_intra, r.sent_bytes_inter, r.sent_msgs_intra, r.sent_msgs_inter,
          r.rdma_bytes,       r.rdma_msgs,        r.rdma_bytes_inter, r.rdma_msgs_inter,
          r.bytes_local,      r.comm_ops};
}

TEST(Fault, ZeroOverheadWhenFaultLayerIsOff) {
  // Integrity mode and a benign injector (straggler only) must leave every
  // byte/message/op counter and every result bit-identical to the plain
  // machine: the fault layer's own traffic is strictly uncounted.
  auto a = with_integer_values(erdos_renyi<double>(120, 4.0, 61), 50);
  auto b = with_integer_values(erdos_renyi<double>(120, 4.0, 62), 51);
  auto want = spgemm_local<PlusTimes<double>, double>(a, b, LocalKernel::Spa);

  auto run_one = [&](MachineOptions o) {
    Machine m(4, {}, o);
    std::vector<int> match(4, 0);
    RunReport rep = m.run([&](Comm& c) {
      DistSpgemmOptions sa;
      sa.algo = Algo::SparseAware1D;  // exercises RDMA windows
      DistSpgemmOptions su;
      su.algo = Algo::Summa2D;  // exercises sub-communicators + bcast
      match[static_cast<std::size_t>(c.rank())] =
          (iterate_backend(c, a, b, want, sa) && iterate_backend(c, a, b, want, su)) ? 1 : 0;
    });
    for (int r = 0; r < 4; ++r) EXPECT_EQ(match[static_cast<std::size_t>(r)], 1) << r;
    return rep;
  };

  const RunReport base = run_one(MachineOptions{});
  MachineOptions integ;
  integ.integrity = true;
  const RunReport with_integrity = run_one(integ);
  MachineOptions slow;
  slow.faults.actions.push_back(
      {.kind = FaultKind::SlowRank, .rank = 1, .op_index = 5, .delay_us = 2000});
  const RunReport with_straggler = run_one(slow);

  for (int r = 0; r < 4; ++r) {
    const auto want_c = counters_of(base.ranks[static_cast<std::size_t>(r)]);
    EXPECT_EQ(counters_of(with_integrity.ranks[static_cast<std::size_t>(r)]), want_c)
        << "integrity changed counters on rank " << r;
    EXPECT_EQ(counters_of(with_straggler.ranks[static_cast<std::size_t>(r)]), want_c)
        << "straggler injection changed counters on rank " << r;
    EXPECT_EQ(base.ranks[static_cast<std::size_t>(r)].plan_recoveries, 0u);
  }
}

}  // namespace
}  // namespace sa1d
