// Unit tests for CSC: construction, conversion, accessors, validation.
#include <gtest/gtest.h>

#include "sparse/csc.hpp"

namespace sa1d {
namespace {

CooMatrix<double> small_coo() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  // [ 4 0 5 ]
  CooMatrix<double> m(3, 3);
  m.push(0, 0, 1.0);
  m.push(2, 0, 4.0);
  m.push(1, 1, 3.0);
  m.push(0, 2, 2.0);
  m.push(2, 2, 5.0);
  return m;
}

TEST(Csc, FromCooBasic) {
  auto a = CscMatrix<double>::from_coo(small_coo());
  EXPECT_EQ(a.nrows(), 3);
  EXPECT_EQ(a.ncols(), 3);
  EXPECT_EQ(a.nnz(), 5);
  EXPECT_EQ(a.colptr(), (std::vector<index_t>{0, 2, 3, 5}));
  EXPECT_EQ(a.rowids(), (std::vector<index_t>{0, 2, 1, 0, 2}));
  EXPECT_EQ(a.vals(), (std::vector<double>{1.0, 4.0, 3.0, 2.0, 5.0}));
}

TEST(Csc, FromUnsortedCooCanonicalizes) {
  CooMatrix<double> m(2, 2);
  m.push(1, 1, 4.0);
  m.push(0, 0, 1.0);
  auto a = CscMatrix<double>::from_coo(m);
  EXPECT_EQ(a.col_nnz(0), 1);
  EXPECT_EQ(a.col_nnz(1), 1);
}

TEST(Csc, RoundTripThroughCoo) {
  auto a = CscMatrix<double>::from_coo(small_coo());
  auto back = CscMatrix<double>::from_coo(a.to_coo());
  EXPECT_EQ(a, back);
}

TEST(Csc, ColumnAccessors) {
  auto a = CscMatrix<double>::from_coo(small_coo());
  auto rows = a.col_rows(0);
  auto vals = a.col_vals(0);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 0);
  EXPECT_EQ(rows[1], 2);
  EXPECT_DOUBLE_EQ(vals[0], 1.0);
  EXPECT_DOUBLE_EQ(vals[1], 4.0);
}

TEST(Csc, EmptyColumns) {
  CooMatrix<double> m(3, 4);
  m.push(1, 2, 7.0);
  auto a = CscMatrix<double>::from_coo(m);
  EXPECT_EQ(a.col_nnz(0), 0);
  EXPECT_EQ(a.col_nnz(1), 0);
  EXPECT_EQ(a.col_nnz(2), 1);
  EXPECT_EQ(a.col_nnz(3), 0);
  EXPECT_EQ(a.nzc(), 1);
}

TEST(Csc, NzcCountsNonemptyColumns) {
  auto a = CscMatrix<double>::from_coo(small_coo());
  EXPECT_EQ(a.nzc(), 3);
}

TEST(Csc, RawConstructorValidates) {
  EXPECT_THROW(CscMatrix<double>(2, 2, {0, 1}, {0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CscMatrix<double>(2, 2, {0, 1, 2}, {0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CscMatrix<double>(2, 2, {0, 1, 1}, {0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Csc, DefaultIsEmpty) {
  CscMatrix<double> a;
  EXPECT_EQ(a.nrows(), 0);
  EXPECT_EQ(a.ncols(), 0);
  EXPECT_EQ(a.nnz(), 0);
}

}  // namespace
}  // namespace sa1d
