// Unit tests for structural ops: transpose, permutation, extraction,
// symmetrization, comparison.
#include <gtest/gtest.h>

#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace sa1d {
namespace {

TEST(Transpose, SmallKnown) {
  CooMatrix<double> m(2, 3);
  m.push(0, 1, 5.0);
  m.push(1, 2, 7.0);
  auto a = CscMatrix<double>::from_coo(m);
  auto at = transpose(a);
  EXPECT_EQ(at.nrows(), 3);
  EXPECT_EQ(at.ncols(), 2);
  EXPECT_EQ(at.col_rows(0).size(), 1u);
  EXPECT_EQ(at.col_rows(0)[0], 1);
  EXPECT_DOUBLE_EQ(at.col_vals(1)[0], 7.0);
}

TEST(Transpose, InvolutionOnRandom) {
  auto a = erdos_renyi<double>(150, 5.0, 3);
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Transpose, RowsSortedWithinColumns) {
  auto a = erdos_renyi<double>(100, 8.0, 17);
  auto at = transpose(a);
  for (index_t j = 0; j < at.ncols(); ++j) {
    auto rows = at.col_rows(j);
    EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  }
}

TEST(Permutation, IdentityAndInverse) {
  auto p = Permutation::identity(5);
  for (index_t i = 0; i < 5; ++i) EXPECT_EQ(p(i), i);
  Permutation q({2, 0, 1});
  auto qi = q.inverse();
  for (index_t i = 0; i < 3; ++i) EXPECT_EQ(qi(q(i)), i);
}

TEST(Permute, SymmetricRoundTrip) {
  auto a = erdos_renyi<double>(80, 4.0, 5, /*symmetric=*/true);
  Permutation p = Permutation::identity(80);
  // Reverse permutation.
  std::vector<index_t> rev(80);
  for (index_t i = 0; i < 80; ++i) rev[static_cast<std::size_t>(i)] = 79 - i;
  Permutation r(std::move(rev));
  auto b = permute_symmetric(a, r);
  auto back = permute_symmetric(b, r.inverse());
  EXPECT_EQ(back, a);
}

TEST(Permute, PreservesNnz) {
  auto a = erdos_renyi<double>(60, 3.0, 9);
  std::vector<index_t> v(60);
  SplitMix64 g(4);
  for (index_t i = 0; i < 60; ++i) v[static_cast<std::size_t>(i)] = i;
  for (index_t i = 59; i > 0; --i)
    std::swap(v[static_cast<std::size_t>(i)],
              v[static_cast<std::size_t>(g.below(static_cast<std::uint64_t>(i + 1)))]);
  auto b = permute_symmetric(a, Permutation(std::move(v)));
  EXPECT_EQ(b.nnz(), a.nnz());
}

TEST(Permute, RejectsSizeMismatch) {
  auto a = erdos_renyi<double>(10, 2.0, 1);
  EXPECT_THROW(permute(a, Permutation::identity(5), Permutation::identity(10)),
               std::invalid_argument);
}

TEST(ExtractCols, SliceMatchesOriginal) {
  auto a = erdos_renyi<double>(50, 4.0, 2);
  auto s = extract_cols(a, 10, 30);
  EXPECT_EQ(s.nrows(), 50);
  EXPECT_EQ(s.ncols(), 20);
  for (index_t j = 0; j < 20; ++j) {
    auto want_rows = a.col_rows(10 + j);
    auto got_rows = s.col_rows(j);
    ASSERT_EQ(want_rows.size(), got_rows.size());
    for (std::size_t p = 0; p < want_rows.size(); ++p) EXPECT_EQ(want_rows[p], got_rows[p]);
  }
}

TEST(ExtractCols, EmptyRange) {
  auto a = erdos_renyi<double>(20, 2.0, 8);
  auto s = extract_cols(a, 5, 5);
  EXPECT_EQ(s.ncols(), 0);
  EXPECT_EQ(s.nnz(), 0);
}

TEST(ExtractCols, RejectsBadRange) {
  auto a = erdos_renyi<double>(20, 2.0, 8);
  EXPECT_THROW(extract_cols(a, 5, 30), std::invalid_argument);
  EXPECT_THROW(extract_cols(a, -1, 5), std::invalid_argument);
}

TEST(Symmetrize, PatternIsSymmetric) {
  auto a = erdos_renyi<double>(70, 3.0, 12, /*symmetric=*/false);
  auto s = symmetrize(a);
  auto st = transpose(s);
  EXPECT_EQ(s.colptr(), st.colptr());
  EXPECT_EQ(s.rowids(), st.rowids());
}

TEST(Symmetrize, RejectsRectangular) {
  CooMatrix<double> m(2, 3);
  auto a = CscMatrix<double>::from_coo(m);
  EXPECT_THROW(symmetrize(a), std::invalid_argument);
}

TEST(ApproxEqual, DetectsValueDrift) {
  auto a = erdos_renyi<double>(30, 3.0, 6);
  EXPECT_TRUE(approx_equal(a, a));
  auto coo = a.to_coo();
  coo.triples()[0].val += 1e-3;
  auto b = CscMatrix<double>::from_coo(coo);
  EXPECT_FALSE(approx_equal(a, b));
  coo.triples()[0].val -= 1e-3 - 1e-12;
  auto c = CscMatrix<double>::from_coo(coo);
  EXPECT_TRUE(approx_equal(a, c));
}

TEST(ColNnzVector, MatchesAccessors) {
  auto a = erdos_renyi<double>(40, 4.0, 13);
  auto d = col_nnz_vector(a);
  for (index_t j = 0; j < a.ncols(); ++j)
    EXPECT_EQ(d[static_cast<std::size_t>(j)], a.col_nnz(j));
}

}  // namespace
}  // namespace sa1d
