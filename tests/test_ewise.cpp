// Tests for element-wise sparse operations.
#include <gtest/gtest.h>

#include "sparse/ewise.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace sa1d {
namespace {

CscMatrix<double> from_triples(index_t m, index_t n,
                               std::vector<Triple<double>> t) {
  CooMatrix<double> c(m, n, std::move(t));
  c.canonicalize();
  return CscMatrix<double>::from_coo(c);
}

TEST(EwiseAdd, UnionPatternSummedOverlap) {
  auto a = from_triples(3, 3, {{0, 0, 1.0}, {1, 1, 2.0}});
  auto b = from_triples(3, 3, {{1, 1, 3.0}, {2, 2, 4.0}});
  auto c = ewise_add(a, b);
  EXPECT_EQ(c.nnz(), 3);
  EXPECT_DOUBLE_EQ(c.col_vals(1)[0], 5.0);
  EXPECT_DOUBLE_EQ(c.col_vals(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(c.col_vals(2)[0], 4.0);
}

TEST(EwiseAdd, EmptyOperand) {
  auto a = from_triples(2, 2, {{0, 0, 1.0}});
  CscMatrix<double> z(2, 2);
  EXPECT_EQ(ewise_add(a, z), a);
  EXPECT_EQ(ewise_add(z, a), a);
}

TEST(EwiseAdd, ShapeMismatchThrows) {
  CscMatrix<double> a(2, 2), b(2, 3);
  EXPECT_THROW(ewise_add(a, b), std::invalid_argument);
}

TEST(EwiseAdd, AgreesWithCooMerge) {
  auto a = erdos_renyi<double>(60, 3.0, 1);
  auto b = erdos_renyi<double>(60, 3.0, 2);
  auto want_coo = a.to_coo();
  auto b_coo = b.to_coo();
  for (const auto& t : b_coo.triples()) want_coo.push(t.row, t.col, t.val);
  want_coo.canonicalize();
  EXPECT_TRUE(approx_equal(ewise_add(a, b), CscMatrix<double>::from_coo(want_coo)));
}

TEST(EwiseMaskNot, RemovesMaskedPositions) {
  auto a = from_triples(3, 3, {{0, 0, 1.0}, {1, 0, 2.0}, {2, 2, 3.0}});
  auto mask = from_triples(3, 3, {{1, 0, 9.0}, {0, 1, 9.0}});
  auto c = ewise_mask_not(a, mask);
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_EQ(c.col_rows(0).size(), 1u);
  EXPECT_EQ(c.col_rows(0)[0], 0);
  EXPECT_EQ(c.col_rows(2)[0], 2);
}

TEST(EwiseMaskNot, FullMaskYieldsEmpty) {
  auto a = erdos_renyi<double>(40, 3.0, 4);
  EXPECT_EQ(ewise_mask_not(a, a).nnz(), 0);
}

TEST(EwiseMaskNot, EmptyMaskIsIdentity) {
  auto a = erdos_renyi<double>(40, 3.0, 4);
  CscMatrix<double> z(40, 40);
  EXPECT_EQ(ewise_mask_not(a, z), a);
}

TEST(EwiseIntersect, MultipliesOnOverlap) {
  auto a = from_triples(3, 3, {{0, 0, 2.0}, {1, 1, 3.0}});
  auto b = from_triples(3, 3, {{1, 1, 4.0}, {2, 2, 5.0}});
  auto c = ewise_intersect(a, b, [](double x, double y) { return x * y; });
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_DOUBLE_EQ(c.col_vals(1)[0], 12.0);
}

TEST(EwiseIntersect, DisjointYieldsEmpty) {
  auto a = from_triples(2, 2, {{0, 0, 1.0}});
  auto b = from_triples(2, 2, {{1, 1, 1.0}});
  EXPECT_EQ(ewise_intersect(a, b, [](double x, double) { return x; }).nnz(), 0);
}

TEST(EwiseApply, TransformsValuesKeepsPattern) {
  auto a = erdos_renyi<double>(30, 3.0, 7);
  auto c = ewise_apply(a, [](double v) { return 2.0 * v; });
  EXPECT_EQ(c.colptr(), a.colptr());
  EXPECT_EQ(c.rowids(), a.rowids());
  for (std::size_t i = 0; i < c.vals().size(); ++i)
    EXPECT_DOUBLE_EQ(c.vals()[i], 2.0 * a.vals()[i]);
}

TEST(RowSums, MatchesDense) {
  auto a = erdos_renyi<double>(25, 4.0, 9);
  auto rs = row_sums(a);
  std::vector<double> want(25, 0.0);
  for (index_t j = 0; j < 25; ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_vals(j);
    for (std::size_t p = 0; p < rows.size(); ++p)
      want[static_cast<std::size_t>(rows[p])] += vals[p];
  }
  for (std::size_t i = 0; i < 25; ++i) EXPECT_NEAR(rs[i], want[i], 1e-12);
}

}  // namespace
}  // namespace sa1d
