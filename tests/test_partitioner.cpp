// Tests for the multilevel graph partitioner (METIS substitute) and the
// partition-to-distribution plumbing.
#include <gtest/gtest.h>

#include <numeric>

#include "core/spgemm1d.hpp"
#include "part/partitioner.hpp"
#include "part/permutation.hpp"
#include "sparse/generators.hpp"

namespace sa1d {
namespace {

std::vector<double> unit_weights(index_t n) { return std::vector<double>(static_cast<std::size_t>(n), 1.0); }

TEST(GraphFromMatrix, DropsDiagonalAndSymmetrizes) {
  CooMatrix<double> m(4, 4);
  m.push(0, 0, 1.0);  // diagonal: dropped
  m.push(1, 0, 1.0);  // edge {0,1}
  m.push(0, 1, 1.0);  // duplicate of {0,1}: merged
  m.push(3, 2, 1.0);  // edge {2,3}
  auto g = graph_from_matrix(CscMatrix<double>::from_coo(m));
  EXPECT_EQ(g.n, 4);
  EXPECT_EQ(g.adj.size(), 4u);  // two undirected edges
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_EQ(g.degree(3), 1);
}

TEST(GraphFromMatrix, RejectsRectangular) {
  CscMatrix<double> a(3, 4);
  EXPECT_THROW(graph_from_matrix(a), std::invalid_argument);
}

TEST(FlopsWeights, SquaresColumnCounts) {
  auto a = mesh2d<double>(5);
  auto w = flops_vertex_weights(a);
  for (index_t j = 0; j < a.ncols(); ++j) {
    auto d = static_cast<double>(a.col_nnz(j));
    EXPECT_DOUBLE_EQ(w[static_cast<std::size_t>(j)], d * d);
  }
}

TEST(EdgeCut, HandComputed) {
  // Path 0-1-2-3 split {0,1} vs {2,3}: cut = 1 edge.
  CooMatrix<double> m(4, 4);
  m.push(1, 0, 1);
  m.push(2, 1, 1);
  m.push(3, 2, 1);
  auto g = graph_from_matrix(symmetrize(CscMatrix<double>::from_coo(m)));
  std::vector<int> part{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(edge_cut(g, part), 1.0);
  std::vector<int> bad{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(edge_cut(g, bad), 3.0);
}

void check_partition(const Graph& g, const std::vector<double>& w, int nparts,
                     double max_imbalance) {
  PartitionOptions opt;
  opt.nparts = nparts;
  auto res = partition_graph(g, w, opt);
  ASSERT_EQ(res.part.size(), static_cast<std::size_t>(g.n));
  // All parts used and within range.
  std::vector<int> seen(static_cast<std::size_t>(nparts), 0);
  for (auto p : res.part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, nparts);
    seen[static_cast<std::size_t>(p)] = 1;
  }
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), nparts);
  // Balance.
  double total = std::accumulate(w.begin(), w.end(), 0.0);
  double perfect = total / nparts;
  for (auto pw : res.part_weights) EXPECT_LE(pw, perfect * max_imbalance);
  // Reported cut matches recomputation.
  EXPECT_DOUBLE_EQ(res.edge_cut, edge_cut(g, res.part));
}

TEST(Partitioner, Mesh2dBalanced) {
  auto a = mesh2d<double>(24);
  auto g = graph_from_matrix(a);
  check_partition(g, unit_weights(g.n), 4, 1.30);
}

TEST(Partitioner, Mesh2dCutNearOptimal) {
  // A k x k mesh bisected optimally cuts ~k edges; we allow 3x slack.
  index_t k = 24;
  auto g = graph_from_matrix(mesh2d<double>(k));
  PartitionOptions opt;
  opt.nparts = 2;
  auto res = partition_graph(g, unit_weights(g.n), opt);
  EXPECT_LE(res.edge_cut, 3.0 * static_cast<double>(k));
}

TEST(Partitioner, BeatsRandomPartitionOnMesh) {
  auto g = graph_from_matrix(mesh2d<double>(20));
  PartitionOptions opt;
  opt.nparts = 8;
  auto res = partition_graph(g, unit_weights(g.n), opt);
  // Random assignment cuts ~ (1 - 1/8) of all edges.
  SplitMix64 rng(5);
  std::vector<int> rnd(static_cast<std::size_t>(g.n));
  for (auto& p : rnd) p = static_cast<int>(rng.below(8));
  EXPECT_LT(res.edge_cut, 0.4 * edge_cut(g, rnd));
}

TEST(Partitioner, WeightedBalance) {
  auto a = rmat<double>(9, 8, 3);
  auto g = graph_from_matrix(a);
  auto w = flops_vertex_weights(a);
  PartitionOptions opt;
  opt.nparts = 4;
  auto res = partition_graph(g, w, opt);
  double total = std::accumulate(w.begin(), w.end(), 0.0);
  for (auto pw : res.part_weights) EXPECT_LE(pw, 0.55 * total);  // no hoarding
}

TEST(Partitioner, NpartsOneIsTrivial) {
  auto g = graph_from_matrix(mesh2d<double>(6));
  auto res = partition_graph(g, unit_weights(g.n), {.nparts = 1});
  for (auto p : res.part) EXPECT_EQ(p, 0);
  EXPECT_DOUBLE_EQ(res.edge_cut, 0.0);
}

TEST(Partitioner, NonPowerOfTwoParts) {
  auto g = graph_from_matrix(mesh2d<double>(18));
  check_partition(g, unit_weights(g.n), 5, 1.4);
  check_partition(g, unit_weights(g.n), 7, 1.45);
}

TEST(Partitioner, Deterministic) {
  auto g = graph_from_matrix(mesh2d<double>(15));
  PartitionOptions opt;
  opt.nparts = 4;
  opt.seed = 12;
  auto a = partition_graph(g, unit_weights(g.n), opt);
  auto b = partition_graph(g, unit_weights(g.n), opt);
  EXPECT_EQ(a.part, b.part);
}

TEST(Partitioner, ThreadedBitIdenticalToSequential) {
  // The threaded hot loops (coarse-edge accumulation, FM boundary scan)
  // must reproduce the sequential partition exactly — including the
  // floating-point edge-weight sums, which feed the FM gains.
  auto a = rmat<double>(10, 6, 17);
  auto g = graph_from_matrix(a);
  auto w = flops_vertex_weights(a);
  PartitionOptions opt;
  opt.nparts = 6;
  opt.seed = 9;
  opt.threads = 1;
  auto seq = partition_graph(g, w, opt);
  for (int threads : {2, 3, 4, 7}) {
    opt.threads = threads;
    auto par = partition_graph(g, w, opt);
    EXPECT_EQ(seq.part, par.part) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(seq.edge_cut, par.edge_cut) << "threads=" << threads;
  }
}

TEST(Partitioner, RejectsBadArgs) {
  auto g = graph_from_matrix(mesh2d<double>(4));
  EXPECT_THROW(partition_graph(g, unit_weights(g.n), {.nparts = 0}), std::invalid_argument);
  EXPECT_THROW(partition_graph(g, unit_weights(3), {.nparts = 2}), std::invalid_argument);
  PartitionOptions opt;
  opt.nparts = 2;
  opt.imbalance = 0.9;
  EXPECT_THROW(partition_graph(g, unit_weights(g.n), opt), std::invalid_argument);
}

TEST(PartitionLayout, PermutationGroupsParts) {
  std::vector<int> part{1, 0, 1, 0, 2};
  auto layout = partition_to_layout(part, 3);
  EXPECT_EQ(layout.bounds, (std::vector<index_t>{0, 2, 4, 5}));
  // Vertices of part 0 land in [0,2), part 1 in [2,4), part 2 in [4,5).
  for (std::size_t v = 0; v < part.size(); ++v) {
    index_t nv = layout.perm(static_cast<index_t>(v));
    int p = part[v];
    EXPECT_GE(nv, layout.bounds[static_cast<std::size_t>(p)]);
    EXPECT_LT(nv, layout.bounds[static_cast<std::size_t>(p) + 1]);
  }
}

TEST(PartitionLayout, StableWithinPart) {
  std::vector<int> part{0, 1, 0, 1, 0};
  auto layout = partition_to_layout(part, 2);
  // Part-0 vertices 0,2,4 must keep their relative order.
  EXPECT_LT(layout.perm(0), layout.perm(2));
  EXPECT_LT(layout.perm(2), layout.perm(4));
}

TEST(PartitionLayout, RejectsOutOfRangeIds) {
  std::vector<int> part{0, 5};
  EXPECT_THROW(partition_to_layout(part, 2), std::invalid_argument);
}

TEST(PartitionPipeline, ReducesCommVolumeOnScatteredMatrix) {
  // The eukarya scenario: no natural-order locality, but hidden communities
  // a partitioner can recover (the paper's 2× METIS gain).
  auto a = hidden_community<double>(512, 16, 8.0, 0.5, 8);
  auto g = graph_from_matrix(a);
  auto w = flops_vertex_weights(a);
  PartitionOptions opt;
  opt.nparts = 8;
  auto res = partition_graph(g, w, opt);
  auto layout = partition_to_layout(res.part, 8);
  auto apart = permute_symmetric(a, layout.perm);

  Machine m(8);
  auto natural = m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    spgemm_1d(c, da, da);
  });
  auto parted = m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, apart, layout.bounds);
    spgemm_1d(c, da, da);
  });
  EXPECT_LT(parted.total_rdma_bytes(), natural.total_rdma_bytes());
}

TEST(RandomPermutation, IsAPermutation) {
  auto p = random_permutation(100, 3);
  std::vector<bool> seen(100, false);
  for (index_t i = 0; i < 100; ++i) {
    index_t v = p(i);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(PermuteSymmetricDist, MatchesSerialPermute) {
  auto a = erdos_renyi<double>(80, 4.0, 5, true);
  auto perm = random_permutation(80, 17);
  auto want = permute_symmetric(a, perm);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    auto dp = permute_symmetric_dist(c, da, perm);
    EXPECT_EQ(dp.gather(c), want);
  });
}

TEST(PermuteSymmetricDist, LandsOnRequestedBounds) {
  auto a = erdos_renyi<double>(60, 3.0, 6, true);
  auto perm = random_permutation(60, 4);
  Machine m(3);
  m.run([&](Comm& c) {
    std::vector<index_t> bounds{0, 10, 40, 60};
    auto dp = permute_symmetric_dist(c, DistMatrix1D<double>::from_global(c, a), perm, bounds);
    EXPECT_EQ(dp.bounds(), bounds);
    EXPECT_EQ(dp.gather(c), permute_symmetric(a, perm));
  });
}

}  // namespace
}  // namespace sa1d
