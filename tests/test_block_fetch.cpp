// Property tests for Algorithm 2 (block fetch): coverage, message bound,
// monotonicity in K.
#include <gtest/gtest.h>

#include "core/block_fetch.hpp"
#include "util/rng.hpp"

namespace sa1d {
namespace {

std::vector<bool> random_needed(index_t n, double density, std::uint64_t seed) {
  SplitMix64 g(seed);
  std::vector<bool> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = g.uniform() < density;
  return v;
}

void check_plan_invariants(const std::vector<FetchRange>& plan, index_t nzc, index_t k,
                           const std::vector<bool>& needed) {
  // Ranges disjoint, ascending, within bounds.
  index_t prev_end = 0;
  for (const auto& r : plan) {
    EXPECT_LE(prev_end, r.begin);
    EXPECT_LT(r.begin, r.end);
    EXPECT_LE(r.end, nzc);
    prev_end = r.end;
  }
  // Message bound: M <= K.
  EXPECT_LE(static_cast<index_t>(plan.size()), k);
  // Coverage: every needed position is inside some range.
  std::vector<bool> covered(static_cast<std::size_t>(nzc), false);
  for (const auto& r : plan)
    for (index_t p = r.begin; p < r.end; ++p) covered[static_cast<std::size_t>(p)] = true;
  for (index_t p = 0; p < nzc; ++p)
    if (needed[static_cast<std::size_t>(p)]) EXPECT_TRUE(covered[static_cast<std::size_t>(p)]);
}

TEST(BlockFetch, EmptyOwner) {
  auto plan = block_fetch_plan(0, 16, {});
  EXPECT_TRUE(plan.empty());
}

TEST(BlockFetch, NothingNeeded) {
  auto plan = block_fetch_plan(100, 8, std::vector<bool>(100, false));
  EXPECT_TRUE(plan.empty());
}

TEST(BlockFetch, EverythingNeededYieldsKGroups) {
  auto plan = block_fetch_plan(100, 8, std::vector<bool>(100, true));
  EXPECT_EQ(plan.size(), 8u);
  check_plan_invariants(plan, 100, 8, std::vector<bool>(100, true));
}

TEST(BlockFetch, KLargerThanNzc) {
  std::vector<bool> needed(5, true);
  auto plan = block_fetch_plan(5, 100, needed);
  EXPECT_EQ(plan.size(), 5u);  // one group per column at most
  check_plan_invariants(plan, 5, 100, needed);
}

TEST(BlockFetch, SingleColumnNeeded) {
  std::vector<bool> needed(1000, false);
  needed[537] = true;
  auto plan = block_fetch_plan(1000, 10, needed);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_LE(plan[0].begin, 537);
  EXPECT_GT(plan[0].end, 537);
  // One group of ~100 columns: the overshoot the paper trades for latency.
  EXPECT_EQ(plan[0].end - plan[0].begin, 100);
}

TEST(BlockFetch, PaperExampleK2) {
  // Fig 1: 2 blocks per owner; needing only the 2nd column of a 2-col block
  // still fetches the whole block.
  std::vector<bool> needed{false, true};
  auto plan = block_fetch_plan(2, 2, needed);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], (FetchRange{1, 2}));
  // With K=1 (one block), the unneeded first column rides along.
  plan = block_fetch_plan(2, 1, needed);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], (FetchRange{0, 2}));
}

/// Reference for the merge_adjacent extension: back-to-back ranges of the
/// unmerged plan collapse into one message; nothing else changes.
std::vector<FetchRange> coalesce(const std::vector<FetchRange>& plan) {
  std::vector<FetchRange> out;
  for (const auto& r : plan) {
    if (!out.empty() && out.back().end == r.begin)
      out.back().end = r.end;
    else
      out.push_back(r);
  }
  return out;
}

TEST(BlockFetch, MergeAdjacentCoalescesAcrossGroups) {
  // 100 columns in 10 groups of 10. Needed: a run spanning groups 1-3 and
  // an isolated hit in group 7 — merging must fuse the run into one message
  // while keeping the isolated group separate.
  std::vector<bool> needed(100, false);
  for (int i = 12; i <= 38; ++i) needed[static_cast<std::size_t>(i)] = true;  // groups 1,2,3
  needed[75] = true;                                                          // group 7
  auto unmerged = block_fetch_plan(100, 10, needed, false);
  auto merged = block_fetch_plan(100, 10, needed, true);
  ASSERT_EQ(unmerged.size(), 4u);
  ASSERT_EQ(merged.size(), 2u);  // strictly below the unmerged count
  EXPECT_EQ(merged[0], (FetchRange{10, 40}));
  EXPECT_EQ(merged[1], (FetchRange{70, 80}));
  check_plan_invariants(merged, 100, 10, needed);
}

TEST(BlockFetch, MergedPlanIsExactlyTheCoalescedUnmergedPlan) {
  // Merging is precisely "coalesce adjacent chosen groups": same coverage,
  // same element volume, strictly fewer messages whenever any two chosen
  // groups touch. Swept across sizes, K, densities, seeds.
  for (index_t nzc : {7, 64, 1000}) {
    for (index_t k : {2, 10, 64}) {
      for (double density : {0.05, 0.4, 0.95}) {
        for (std::uint64_t seed = 0; seed < 4; ++seed) {
          auto needed = random_needed(nzc, density, seed);
          auto unmerged = block_fetch_plan(nzc, k, needed, false);
          auto merged = block_fetch_plan(nzc, k, needed, true);
          EXPECT_EQ(merged, coalesce(unmerged)) << "nzc=" << nzc << " k=" << k;
          check_plan_invariants(merged, nzc, k, needed);
          bool any_adjacent = coalesce(unmerged).size() < unmerged.size();
          if (any_adjacent)
            EXPECT_LT(merged.size(), unmerged.size()) << "nzc=" << nzc << " k=" << k;
          else
            EXPECT_EQ(merged.size(), unmerged.size()) << "nzc=" << nzc << " k=" << k;
          // Identical coverage -> identical moved volume for any cp.
          std::vector<index_t> cp(static_cast<std::size_t>(nzc) + 1);
          SplitMix64 g(seed + 101);
          for (std::size_t i = 1; i < cp.size(); ++i)
            cp[i] = cp[i - 1] + 1 + static_cast<index_t>(g.below(8));
          EXPECT_EQ(plan_elements(merged, cp), plan_elements(unmerged, cp));
        }
      }
    }
  }
}

TEST(BlockFetch, MergeAdjacentReducesMessageCount) {
  std::vector<bool> needed(100, true);
  auto unmerged = block_fetch_plan(100, 10, needed, false);
  auto merged = block_fetch_plan(100, 10, needed, true);
  EXPECT_EQ(unmerged.size(), 10u);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (FetchRange{0, 100}));
}

TEST(BlockFetch, RejectsBadArgs) {
  EXPECT_THROW(block_fetch_plan(10, 0, std::vector<bool>(10)), std::invalid_argument);
  EXPECT_THROW(block_fetch_plan(10, 4, std::vector<bool>(9)), std::invalid_argument);
}

TEST(BlockFetch, PlanElements) {
  // cp = prefix of per-column nnz {3, 1, 4, 1}.
  std::vector<index_t> cp{0, 3, 4, 8, 9};
  std::vector<FetchRange> plan{{0, 2}, {3, 4}};
  EXPECT_EQ(plan_elements(plan, cp), 4 + 1);
}

class BlockFetchSweep : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(BlockFetchSweep, InvariantsHold) {
  auto [nzc, k, density] = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto needed = random_needed(nzc, density, seed);
    auto plan = block_fetch_plan(nzc, k, needed);
    check_plan_invariants(plan, nzc, k, needed);
    // Merged variant covers the same set with fewer or equal messages.
    auto merged = block_fetch_plan(nzc, k, needed, true);
    check_plan_invariants(merged, nzc, k, needed);
    EXPECT_LE(merged.size(), plan.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlockFetchSweep,
                         ::testing::Combine(::testing::Values(1, 7, 64, 1000),
                                            ::testing::Values(1, 4, 64, 2048),
                                            ::testing::Values(0.01, 0.3, 0.9)));

TEST(BlockFetch, LargerKNeverFetchesMoreElements) {
  // With finer granularity (larger K) the plan's element volume shrinks or
  // stays equal — the communication-volume half of the Fig 6 tradeoff.
  auto needed = random_needed(4096, 0.05, 99);
  std::vector<index_t> cp(4097);
  SplitMix64 g(3);
  for (std::size_t i = 1; i < cp.size(); ++i)
    cp[i] = cp[i - 1] + 1 + static_cast<index_t>(g.below(16));
  index_t prev = -1;
  for (index_t k : {1, 4, 16, 64, 256, 1024, 4096}) {
    auto plan = block_fetch_plan(4096, k, needed);
    index_t elems = plan_elements(plan, cp);
    if (prev >= 0) EXPECT_LE(elems, prev) << "K=" << k;
    prev = elems;
  }
}

}  // namespace
}  // namespace sa1d
