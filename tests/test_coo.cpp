// Unit tests for the COO triples format.
#include <gtest/gtest.h>

#include "sparse/coo.hpp"

namespace sa1d {
namespace {

TEST(Coo, EmptyMatrix) {
  CooMatrix<double> m(3, 4);
  EXPECT_EQ(m.nrows(), 3);
  EXPECT_EQ(m.ncols(), 4);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.is_canonical());
}

TEST(Coo, RejectsNegativeDims) {
  EXPECT_THROW(CooMatrix<double>(-1, 2), std::invalid_argument);
}

TEST(Coo, PushAndCanonicalizeSortsColumnMajor) {
  CooMatrix<double> m(4, 4);
  m.push(3, 1, 1.0);
  m.push(0, 1, 2.0);
  m.push(2, 0, 3.0);
  EXPECT_FALSE(m.is_canonical());
  m.canonicalize();
  ASSERT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.triples()[0], (Triple<double>{2, 0, 3.0}));
  EXPECT_EQ(m.triples()[1], (Triple<double>{0, 1, 2.0}));
  EXPECT_EQ(m.triples()[2], (Triple<double>{3, 1, 1.0}));
  EXPECT_TRUE(m.is_canonical());
}

TEST(Coo, CanonicalizeMergesDuplicatesByAddition) {
  CooMatrix<double> m(2, 2);
  m.push(1, 1, 2.5);
  m.push(1, 1, 0.5);
  m.push(0, 0, 1.0);
  m.canonicalize();
  ASSERT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.triples()[1].val, 3.0);
}

TEST(Coo, CanonicalizeKeepsExplicitZerosByDefault) {
  CooMatrix<double> m(2, 2);
  m.push(0, 0, 1.0);
  m.push(0, 0, -1.0);
  m.canonicalize();
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.triples()[0].val, 0.0);
}

TEST(Coo, CanonicalizeDropZeros) {
  CooMatrix<double> m(2, 2);
  m.push(0, 0, 1.0);
  m.push(0, 0, -1.0);
  m.push(1, 0, 2.0);
  m.canonicalize(/*drop_zeros=*/true);
  ASSERT_EQ(m.nnz(), 1);
  EXPECT_EQ(m.triples()[0].row, 1);
}

TEST(Coo, EqualityComparesDimsAndTriples) {
  CooMatrix<double> a(2, 2), b(2, 2), c(3, 2);
  a.push(0, 0, 1.0);
  b.push(0, 0, 1.0);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Coo, ConstructFromTripleVector) {
  std::vector<Triple<double>> t{{0, 0, 1.0}, {1, 1, 2.0}};
  CooMatrix<double> m(2, 2, t);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_TRUE(m.is_canonical());
}

}  // namespace
}  // namespace sa1d
