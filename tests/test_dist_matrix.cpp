// Tests for the 1D distributed matrix container.
#include <gtest/gtest.h>

#include "dist/dist_matrix.hpp"
#include "sparse/generators.hpp"

namespace sa1d {
namespace {

TEST(DistMatrix1D, FromGlobalEvenSplitRoundTrips) {
  auto a = erdos_renyi<double>(97, 5.0, 3);  // odd size: uneven slices
  for (int p : {1, 2, 4, 7}) {
    Machine m(p);
    m.run([&](Comm& c) {
      auto d = DistMatrix1D<double>::from_global(c, a);
      EXPECT_EQ(d.nrows(), 97);
      EXPECT_EQ(d.ncols(), 97);
      EXPECT_EQ(d.global_nnz(c), a.nnz());
      auto back = d.gather(c);
      EXPECT_EQ(back, a);
    });
  }
}

TEST(DistMatrix1D, CustomBounds) {
  auto a = erdos_renyi<double>(50, 4.0, 9);
  Machine m(3);
  m.run([&](Comm& c) {
    std::vector<index_t> bounds{0, 5, 40, 50};
    auto d = DistMatrix1D<double>::from_global(c, a, bounds);
    EXPECT_EQ(d.local_ncols(), bounds[static_cast<std::size_t>(c.rank()) + 1] -
                                   bounds[static_cast<std::size_t>(c.rank())]);
    EXPECT_EQ(d.gather(c), a);
  });
}

TEST(DistMatrix1D, EmptySliceIsFine) {
  auto a = erdos_renyi<double>(20, 3.0, 5);
  Machine m(3);
  m.run([&](Comm& c) {
    std::vector<index_t> bounds{0, 20, 20, 20};  // ranks 1,2 own nothing
    auto d = DistMatrix1D<double>::from_global(c, a, bounds);
    if (c.rank() > 0) EXPECT_EQ(d.local().nnz(), 0);
    EXPECT_EQ(d.gather(c), a);
  });
}

TEST(DistMatrix1D, GlobalColIds) {
  auto a = mesh2d<double>(6);
  Machine m(4);
  m.run([&](Comm& c) {
    auto d = DistMatrix1D<double>::from_global(c, a);
    for (index_t k = 0; k < d.local().nzc(); ++k) {
      index_t g = d.global_col(k);
      EXPECT_GE(g, d.col_lo());
      EXPECT_LT(g, d.col_hi());
    }
  });
}

TEST(DistMatrix1D, ValidatesConstruction) {
  Machine m(2);
  m.run([&](Comm& c) {
    DcscMatrix<double> empty(10, 5);
    // bounds not covering ncols
    EXPECT_THROW(DistMatrix1D<double>(10, 10, {0, 5, 9}, c.rank(), empty),
                 std::invalid_argument);
    // local width mismatch
    EXPECT_THROW(DistMatrix1D<double>(10, 10, {0, 6, 10}, 0, empty), std::invalid_argument);
  });
}

TEST(WeightedSplit, BalancesWeights) {
  std::vector<double> w(100, 1.0);
  for (std::size_t i = 0; i < 50; ++i) w[i] = 9.0;  // heavy first half
  auto b = weighted_split(w, 4);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), 100);
  // Parts of the heavy half must be narrower than parts of the light half.
  EXPECT_LT(b[1], 25);
  double total = 9 * 50 + 50;
  for (int p = 0; p < 4; ++p) {
    double pw = 0;
    for (index_t j = b[static_cast<std::size_t>(p)]; j < b[static_cast<std::size_t>(p) + 1]; ++j)
      pw += w[static_cast<std::size_t>(j)];
    EXPECT_LT(pw, 0.5 * total);  // no part hoards half the weight
  }
}

TEST(WeightedSplit, MonotoneBounds) {
  std::vector<double> w{5, 1, 1, 1, 1, 1, 1, 5};
  auto b = weighted_split(w, 3);
  for (std::size_t i = 0; i + 1 < b.size(); ++i) EXPECT_LE(b[i], b[i + 1]);
  EXPECT_EQ(b.back(), 8);
}

}  // namespace
}  // namespace sa1d
