// Tests for the Markov Cluster application (expansion via distributed
// squaring — the paper's flagship SpGEMM workload).
#include <gtest/gtest.h>

#include <set>

#include "apps/mcl.hpp"
#include "sparse/generators.hpp"

namespace sa1d {
namespace {

/// Two cliques joined by a single bridge edge: MCL must split them.
CscMatrix<double> two_cliques(index_t k) {
  CooMatrix<double> m(2 * k, 2 * k);
  for (index_t i = 0; i < k; ++i)
    for (index_t j = i + 1; j < k; ++j) {
      m.push(i, j, 1.0);
      m.push(j, i, 1.0);
      m.push(k + i, k + j, 1.0);
      m.push(k + j, k + i, 1.0);
    }
  m.push(0, k, 0.5);
  m.push(k, 0, 0.5);
  m.canonicalize();
  return CscMatrix<double>::from_coo(m);
}

TEST(Mcl, SplitsTwoCliques) {
  auto a = two_cliques(8);
  Machine m(4);
  m.run([&](Comm& c) {
    auto res = mcl_cluster(c, a);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.nclusters, 2);
    // Every vertex of the first clique shares a cluster; likewise second.
    for (index_t v = 1; v < 8; ++v) EXPECT_EQ(res.cluster[0], res.cluster[static_cast<std::size_t>(v)]);
    for (index_t v = 9; v < 16; ++v)
      EXPECT_EQ(res.cluster[8], res.cluster[static_cast<std::size_t>(v)]);
    EXPECT_NE(res.cluster[0], res.cluster[8]);
  });
}

TEST(Mcl, RecoverHiddenCommunitiesApproximately) {
  // 4 communities with weak coupling; MCL should find >= 3 clusters and
  // place most vertex pairs of a community together.
  auto a = hidden_community<double>(96, 4, 10.0, 0.08, 7);
  Machine m(3);
  m.run([&](Comm& c) {
    auto res = mcl_cluster(c, a);
    EXPECT_GE(res.nclusters, 3);
    EXPECT_LE(res.nclusters, 24);  // not shattered into singletons
  });
}

TEST(Mcl, DisconnectedComponentsStaySeparate) {
  CooMatrix<double> m(6, 6);
  m.push(0, 1, 1.0);
  m.push(1, 0, 1.0);
  m.push(2, 3, 1.0);
  m.push(3, 2, 1.0);
  // 4, 5 isolated
  m.canonicalize();
  auto a = CscMatrix<double>::from_coo(m);
  Machine machine(2);
  machine.run([&](Comm& c) {
    auto res = mcl_cluster(c, a);
    EXPECT_EQ(res.nclusters, 4);
    EXPECT_EQ(res.cluster[0], res.cluster[1]);
    EXPECT_EQ(res.cluster[2], res.cluster[3]);
    EXPECT_NE(res.cluster[0], res.cluster[2]);
    EXPECT_NE(res.cluster[4], res.cluster[5]);
  });
}

TEST(Mcl, DeterministicAcrossP) {
  auto a = hidden_community<double>(64, 4, 8.0, 0.1, 9);
  std::vector<index_t> ref;
  for (int P : {1, 2, 4}) {
    Machine m(P);
    m.run([&](Comm& c) {
      auto res = mcl_cluster(c, a);
      if (c.rank() == 0) {
        if (ref.empty())
          ref = res.cluster;
        else
          EXPECT_EQ(res.cluster, ref) << "P=" << P;
      }
    });
  }
}

TEST(Mcl, RejectsBadArguments) {
  Machine m(2);
  CscMatrix<double> rect(3, 4);
  EXPECT_THROW(m.run([&](Comm& c) { mcl_cluster(c, rect); }), std::invalid_argument);
  auto a = two_cliques(4);
  MclOptions opt;
  opt.inflation = 1.0;
  EXPECT_THROW(m.run([&](Comm& c) { mcl_cluster(c, a, opt); }), std::invalid_argument);
}

TEST(Mcl, InflatePruneNormalizesColumns) {
  auto a = erdos_renyi<double>(40, 4.0, 11);
  auto m = mcldetail::inflate_prune(a, 2.0, 0.0);
  for (index_t j = 0; j < m.ncols(); ++j) {
    if (m.col_nnz(j) == 0) continue;
    double sum = 0;
    for (auto v : m.col_vals(j)) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace sa1d
