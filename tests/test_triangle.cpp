// Tests for triangle counting (serial reference and distributed 1D).
#include <gtest/gtest.h>

#include "apps/triangle.hpp"
#include "sparse/generators.hpp"

namespace sa1d {
namespace {

CscMatrix<double> from_edges(index_t n, std::vector<std::pair<index_t, index_t>> edges) {
  CooMatrix<double> m(n, n);
  for (auto [u, v] : edges) {
    m.push(u, v, 1.0);
    m.push(v, u, 1.0);
  }
  m.canonicalize();
  return CscMatrix<double>::from_coo(m);
}

TEST(LowerTriangle, KeepsStrictlyBelowDiagonal) {
  CooMatrix<double> m(3, 3);
  m.push(0, 0, 1.0);
  m.push(2, 1, 2.0);
  m.push(1, 2, 3.0);
  auto l = lower_triangle(CscMatrix<double>::from_coo(m));
  ASSERT_EQ(l.nnz(), 1);
  EXPECT_EQ(l.col_rows(1)[0], 2);
}

TEST(TrianglesSerial, SingleTriangle) {
  auto a = from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(count_triangles_serial(a), 1);
}

TEST(TrianglesSerial, K4HasFourTriangles) {
  auto a = from_edges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(count_triangles_serial(a), 4);
}

TEST(TrianglesSerial, TreeHasNone) {
  auto a = from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_EQ(count_triangles_serial(a), 0);
}

TEST(TrianglesSerial, CompleteGraphBinomial) {
  // K_n has n-choose-3 triangles.
  index_t n = 9;
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  EXPECT_EQ(count_triangles_serial(from_edges(n, edges)), 84);  // C(9,3)
}

TEST(TrianglesDistributed, MatchesSerialAcrossGraphsAndP) {
  std::vector<CscMatrix<double>> graphs;
  graphs.push_back(erdos_renyi<double>(200, 6.0, 3, /*symmetric=*/true));
  graphs.push_back(mesh2d<double>(12, /*nine_point=*/true));
  graphs.push_back(hidden_community<double>(256, 8, 8.0, 0.5, 5));
  for (const auto& g : graphs) {
    auto want = count_triangles_serial(g);
    for (int P : {1, 3, 8}) {
      Machine m(P);
      m.run([&](Comm& c) { EXPECT_EQ(count_triangles_1d(c, g), want) << "P=" << P; });
    }
  }
}

TEST(TrianglesDistributed, MeshHasKnownCount) {
  // 9-point k x k mesh: each interior 2x2 cell contributes 4 triangles.
  auto a = mesh2d<double>(6, /*nine_point=*/true);
  auto serial = count_triangles_serial(a);
  EXPECT_GT(serial, 0);
  Machine m(4);
  m.run([&](Comm& c) { EXPECT_EQ(count_triangles_1d(c, a), serial); });
}

}  // namespace
}  // namespace sa1d
