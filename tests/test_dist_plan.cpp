// Tests for the backend-generic inspector–executor layer (DistSpgemmPlan):
// cached replay of every backend — SA-1D, ring-1D, SUMMA-2D, split-3D, and
// Auto-dispatched — is bit-identical to the fresh spgemm_dist call over the
// iterated app shapes (MCL squaring, BC rectangular frontiers, AMG Galerkin
// refreshes), records zero metadata-collective bytes and exactly zero
// Phase::Plan seconds on reuse, and moves strictly less collective volume
// than the fresh call for the collective backends. Also: redistribute.hpp
// edge cases (empty-rank operands, rectangular matrices, single-rank
// degenerate grids) through the cached-route replay path, Auto's cached
// cost decision + the single-allgather AMeta handoff into SpgemmPlan1D
// (regression via the DistSpgemmStats collective-byte counters), the
// rebuild-on-change rules of spgemm_dist_cached, and the per-backend
// plan-reuse counters in RankReport.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/amg.hpp"
#include "dist/dist_spgemm.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace sa1d {
namespace {

/// Same sparsity pattern, values re-derived from (position, t): the
/// value-refresh shape of iterated app loops. Deliberately non-integer so
/// bit-identity genuinely pins the ⊕-fold order of every replay program.
CscMatrix<double> with_values(const CscMatrix<double>& base, int t) {
  std::vector<double> vals(base.vals().size());
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = 0.3 + 0.17 * static_cast<double>(t) + 0.013 * static_cast<double>(i % 89);
  return CscMatrix<double>(base.nrows(), base.ncols(), base.colptr(), base.rowids(),
                           std::move(vals));
}

CscMatrix<double> random_rect(index_t m, index_t n, int edges, std::uint64_t seed) {
  CooMatrix<double> c(m, n);
  SplitMix64 g(seed);
  for (int e = 0; e < edges; ++e)
    c.push(static_cast<index_t>(g.below(static_cast<std::uint64_t>(m))),
           static_cast<index_t>(g.below(static_cast<std::uint64_t>(n))),
           0.5 + g.uniform());
  c.canonicalize();
  return CscMatrix<double>::from_coo(c);
}

/// Hypersparse: all nonzeros in the first third of the index space, so the
/// trailing ranks hold structurally empty slices under even bounds.
CscMatrix<double> hypersparse(index_t n, int edges, std::uint64_t seed) {
  CooMatrix<double> c(n, n);
  SplitMix64 g(seed);
  for (int e = 0; e < edges; ++e)
    c.push(static_cast<index_t>(g.below(static_cast<std::uint64_t>(n) / 3)),
           static_cast<index_t>(g.below(static_cast<std::uint64_t>(n) / 3)),
           0.5 + g.uniform());
  c.canonicalize();
  return CscMatrix<double>::from_coo(c);
}

// Every backend is feasible at every P now that the 2D/3D grids may be
// rectangular (primes run 1 × P grids).
std::vector<Algo> feasible_backends(int) {
  return {Algo::SparseAware1D, Algo::Ring1D, Algo::Summa2D, Algo::Split3D};
}

using LocalsPerIter = std::vector<std::vector<DcscMatrix<double>>>;  // [rank][iter]

/// The acceptance loop: for one backend and one operand-pair shape, a
/// cached DistSpgemmPlan replayed across value refreshes must be
/// bit-identical to fresh spgemm_dist calls, with zero metadata-collective
/// bytes and exactly zero Phase::Plan seconds on every reuse — and, for the
/// collective backends, strictly less collective volume than the build.
void expect_replay_bit_identical(int P, Algo algo, const CscMatrix<double>& a_pat,
                                 const CscMatrix<double>& b_pat, int iters) {
  Machine m(P);
  LocalsPerIter fresh(static_cast<std::size_t>(P)), reused(static_cast<std::size_t>(P));
  DistSpgemmOptions opt;
  opt.algo = algo;
  m.run([&](Comm& c) {
    for (int t = 0; t < iters; ++t) {
      auto da = DistMatrix1D<double>::from_global(c, with_values(a_pat, t));
      auto db = DistMatrix1D<double>::from_global(c, with_values(b_pat, t));
      auto dc = spgemm_dist(c, da, db, opt);
      fresh[static_cast<std::size_t>(c.rank())].push_back(dc.local());
    }
  });
  m.run([&](Comm& c) {
    DistSpgemmPlan<double> plan;
    std::uint64_t build_coll = 0;
    for (int t = 0; t < iters; ++t) {
      auto da = DistMatrix1D<double>::from_global(c, with_values(a_pat, t));
      auto db = DistMatrix1D<double>::from_global(c, with_values(b_pat, t));
      DistSpgemmStats st;
      auto dc = t == 0 ? plan.build(c, da, db, opt, &st) : plan.execute(c, da, db, &st);
      reused[static_cast<std::size_t>(c.rank())].push_back(dc.local());
      EXPECT_EQ(st.chosen, algo);
      if (t == 0) {
        build_coll = st.coll_recv_bytes;
        EXPECT_FALSE(st.plan_reused);
      } else {
        EXPECT_TRUE(st.plan_reused);
        // The replay must move only the known value payload: zero metadata
        // collectives, zero inspector time.
        EXPECT_EQ(st.meta_coll_bytes, 0u) << "metadata bytes on iteration " << t;
        EXPECT_EQ(st.coll_recv_bytes, plan.replay_coll_recv_bytes());
        EXPECT_DOUBLE_EQ(st.plan_seconds, 0.0) << "inspector time on iteration " << t;
        if (algo != Algo::SparseAware1D && c.size() > 1) {
          // Triples in, bare values out: the collective backends must
          // replay strictly below their fresh collective volume (a rank
          // that received nothing in the build — empty slices — stays at
          // zero).
          EXPECT_LE(st.coll_recv_bytes, build_coll);
          if (build_coll > 0) EXPECT_LT(st.coll_recv_bytes, build_coll);
        }
      }
    }
    EXPECT_EQ(plan.builds(), 1);
    EXPECT_EQ(plan.replays(), iters - 1);
  });
  for (int r = 0; r < P; ++r) {
    ASSERT_EQ(fresh[static_cast<std::size_t>(r)].size(), static_cast<std::size_t>(iters));
    for (int t = 0; t < iters; ++t)
      EXPECT_TRUE(fresh[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)] ==
                  reused[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)])
          << algo_name(algo) << " rank " << r << " iter " << t;
  }
}

// ---- cached replay of every backend over the app iteration shapes --------

TEST(DistPlanReplay, MclSquaringAllBackendsP4) {
  auto mpat = block_clustered<double>(160, 8, 5.0, 0.4, 11);
  for (Algo algo : feasible_backends(4)) expect_replay_bit_identical(4, algo, mpat, mpat, 4);
}

TEST(DistPlanReplay, MclSquaringSumma9Split8) {
  auto mpat = block_clustered<double>(180, 9, 4.0, 0.4, 13);
  expect_replay_bit_identical(9, Algo::Summa2D, mpat, mpat, 3);
  expect_replay_bit_identical(8, Algo::Split3D, mpat, mpat, 3);  // 8 = 2·(2×2)
}

TEST(DistPlanReplay, RectangularGridsPrimeAndCompositeP) {
  // The rectangular-grid plan-replay acceptance: value-only replays must
  // stay bit-identical on 1 × P prime grids (2, 3, 5), the 2×3 grid at
  // P = 6, the 2×4 at 8 (covered above), and the 3×4 at 12 — including the
  // uneven fine-block tails 170 leaves at those stage counts.
  auto mpat = block_clustered<double>(170, 10, 4.0, 0.4, 19);
  for (int P : {2, 3, 5, 6, 12}) {
    expect_replay_bit_identical(P, Algo::Summa2D, mpat, mpat, 3);
    expect_replay_bit_identical(P, Algo::Split3D, mpat, mpat, 3);
  }
}

TEST(DistPlanReplay, BcStyleRectangularFrontier) {
  // BC level shape: fixed square A, rectangular frontier operand.
  auto a = mesh2d<double>(12);  // 144 x 144
  auto fr = random_rect(144, 24, 160, 17);
  for (Algo algo : feasible_backends(4)) expect_replay_bit_identical(4, algo, a, fr, 3);
}

TEST(DistPlanReplay, RectangularOperandsBothSides) {
  auto a = random_rect(90, 60, 400, 31);
  auto b = random_rect(60, 75, 350, 32);
  for (Algo algo : feasible_backends(9)) expect_replay_bit_identical(9, algo, a, b, 3);
}

TEST(DistPlanReplay, EmptyRankSlicesThroughCachedRoutes) {
  auto a = hypersparse(600, 60, 41);
  auto b = hypersparse(600, 45, 42);
  for (Algo algo : feasible_backends(4)) expect_replay_bit_identical(4, algo, a, b, 3);
}

TEST(DistPlanReplay, SingleRankDegenerateGrids) {
  // P = 1: the 1×1 SUMMA grid, the 1·1² split-3D layering, a hop-free
  // ring — every route is a self-route and must still replay bit-exactly.
  auto a = block_clustered<double>(96, 4, 4.0, 0.4, 43);
  for (Algo algo : feasible_backends(1)) expect_replay_bit_identical(1, algo, a, a, 3);
}

TEST(DistPlanReplay, MinPlusSemiringFoldProgram) {
  // The ⊕-fold programs must replay the *semiring's* add — min-plus picks
  // different winners than plus-times wherever partials collide.
  auto a = block_clustered<double>(140, 7, 4.0, 0.4, 47);
  Machine m(4);
  DistSpgemmOptions opt;
  opt.algo = Algo::Summa2D;
  m.run([&](Comm& c) {
    DistSpgemmPlan<double, MinPlus<double>> plan;
    for (int t = 0; t < 3; ++t) {
      auto da = DistMatrix1D<double>::from_global(c, with_values(a, t));
      auto fresh = spgemm_dist<MinPlus<double>>(c, da, da, opt);
      auto got = spgemm_dist_cached<MinPlus<double>>(c, plan, da, da, opt);
      EXPECT_TRUE(fresh.local() == got.local()) << "iter " << t;
    }
    EXPECT_EQ(plan.builds(), 1);
    EXPECT_EQ(plan.replays(), 2);
  });
}

// ---- AMG Galerkin refresh loop through a grid backend ---------------------

TEST(DistPlanReplay, AmgGalerkinRefreshOnSumma) {
  // RᵀAR across setup refreshes: values change, hierarchy frozen — the
  // GalerkinOperator's DistSpgemmPlans must replay the 2D backend with no
  // inspector time after the first compute.
  auto a_pat = mesh2d<double>(10);
  auto r = restriction_operator(a_pat, 5);
  const int P = 4, iters = 3;
  Machine m(P);
  LocalsPerIter fresh_rtar(P), reused_rtar(P);
  m.run([&](Comm& c) {
    for (int t = 0; t < iters; ++t) {
      auto res = galerkin_product(c, with_values(a_pat, t), r, {},
                                  RightMultAlgo::SparsityAware1d, Algo::Summa2D);
      fresh_rtar[static_cast<std::size_t>(c.rank())].push_back(res.rtar.local());
    }
  });
  m.run([&](Comm& c) {
    GalerkinOperator op(c, r, {}, RightMultAlgo::SparsityAware1d, Algo::Summa2D);
    for (int t = 0; t < iters; ++t) {
      RankReport before = c.report();
      auto res = op.compute(c, with_values(a_pat, t));
      RankReport after = c.report();
      reused_rtar[static_cast<std::size_t>(c.rank())].push_back(res.rtar.local());
      if (t >= 1) EXPECT_DOUBLE_EQ(after.plan_s, before.plan_s) << "iter " << t;
    }
  });
  for (int r2 = 0; r2 < P; ++r2)
    for (int t = 0; t < iters; ++t)
      EXPECT_TRUE(fresh_rtar[static_cast<std::size_t>(r2)][static_cast<std::size_t>(t)] ==
                  reused_rtar[static_cast<std::size_t>(r2)][static_cast<std::size_t>(t)])
          << "rank " << r2 << " iter " << t;
}

// ---- Auto: cached decision + single-allgather AMeta handoff ---------------

TEST(DistPlanAuto, CachedDecisionSkipsTheMetadataRegather) {
  auto a = block_clustered<double>(200, 8, 5.0, 0.3, 51);
  Machine m(4);
  m.run([&](Comm& c) {
    DistSpgemmPlan<double> plan;
    DistSpgemmStats st1, st2;
    auto da0 = DistMatrix1D<double>::from_global(c, with_values(a, 0));
    auto c1 = plan.build(c, da0, da0, {}, &st1);
    EXPECT_EQ(st1.requested, Algo::Auto);
    ASSERT_EQ(st1.predictions.size(), 4u);
    EXPECT_GT(st1.meta_coll_bytes, 0u);  // the build gathered cost inputs

    auto da1 = DistMatrix1D<double>::from_global(c, with_values(a, 1));
    auto c2 = plan.execute(c, da1, da1, &st2);
    // The cached decision is reported without any re-gather: same choice,
    // same prediction trace, zero metadata bytes, zero inspector seconds.
    EXPECT_TRUE(st2.plan_reused);
    EXPECT_EQ(st2.chosen, st1.chosen);
    EXPECT_EQ(st2.predictions.size(), st1.predictions.size());
    EXPECT_EQ(st2.meta_coll_bytes, 0u);
    EXPECT_DOUBLE_EQ(st2.plan_seconds, 0.0);
    // Auto's decision-cache slot and the concrete backend's slot both count.
    EXPECT_EQ(c.report().plan_builds[0], 1u);
    EXPECT_EQ(c.report().plan_replays[0], 1u);
    EXPECT_EQ(c.report().plan_replays[static_cast<std::size_t>(st1.chosen)], 1u);
    (void)c1;
    (void)c2;
  });
}

TEST(DistPlanAuto, ReplayRepricingRecordedAlongsideBuildDecision) {
  // Plan-aware Auto: a cached Auto plan must carry *both* decision traces —
  // the one-shot pricing that chose the build, and the replay repricing
  // (zero plan term, value-only volume) reported on every execute, derived
  // from the cached inputs with no extra communication or Plan time.
  auto a = block_clustered<double>(200, 8, 5.0, 0.3, 57);
  Machine m(6);  // non-square: the repriced trace covers rectangular grids
  m.run([&](Comm& c) {
    DistSpgemmPlan<double> plan;
    DistSpgemmStats st1, st2;
    auto da0 = DistMatrix1D<double>::from_global(c, with_values(a, 0));
    plan.build(c, da0, da0, {}, &st1);
    ASSERT_EQ(st1.predictions.size(), 4u);
    ASSERT_EQ(st1.replay_predictions.size(), 4u);
    EXPECT_NE(st1.replay_choice, Algo::Auto);
    EXPECT_EQ(plan.replay_choice(), st1.replay_choice);
    // Replay pricing strips plan-side volume: every feasible backend's
    // repriced total undercuts its one-shot prediction.
    double best = -1.0;
    Algo argmin = Algo::SparseAware1D;
    for (std::size_t i = 0; i < 4; ++i) {
      const auto& one_shot = st1.predictions[i];
      const auto& replay = st1.replay_predictions[i];
      EXPECT_EQ(one_shot.algo, replay.algo);
      if (!replay.feasible) continue;
      EXPECT_LT(replay.total_s(), one_shot.total_s()) << algo_name(replay.algo);
      if (best < 0.0 || replay.total_s() < best) {
        best = replay.total_s();
        argmin = replay.algo;
      }
    }
    EXPECT_EQ(st1.replay_choice, argmin);

    auto da1 = DistMatrix1D<double>::from_global(c, with_values(a, 1));
    plan.execute(c, da1, da1, &st2);
    // The replay reports the same repriced trace verbatim — no re-gather,
    // no metadata bytes, no inspector seconds.
    EXPECT_TRUE(st2.plan_reused);
    EXPECT_EQ(st2.replay_choice, st1.replay_choice);
    ASSERT_EQ(st2.replay_predictions.size(), 4u);
    EXPECT_DOUBLE_EQ(st2.replay_predictions[0].total_s(), st1.replay_predictions[0].total_s());
    EXPECT_EQ(st2.meta_coll_bytes, 0u);
    EXPECT_DOUBLE_EQ(st2.plan_seconds, 0.0);
  });
}

TEST(DistPlanAuto, SingleMetadataAllgatherWhenAutoPicksSa1d) {
  // Regression for the AMeta handoff, via the collective-byte counters:
  // coll bytes(Auto build) == coll bytes(cost inputs) + coll bytes(explicit
  // SA-1D build) − coll bytes(one metadata allgather) — i.e. the shared
  // gather is performed exactly once, not twice.
  auto a = block_clustered<double>(240, 8, 5.0, 0.25, 53);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    auto coll_recv = [&] { return c.report().bytes_network() - c.report().rdma_bytes; };

    std::uint64_t b0 = coll_recv();
    detail1d::gather_a_metadata(c, da);
    const std::uint64_t meta_gather = coll_recv() - b0;
    EXPECT_GT(meta_gather, 0u);

    b0 = coll_recv();
    gather_algo_cost_inputs(c, da, da);
    const std::uint64_t cost_inputs = coll_recv() - b0;

    b0 = coll_recv();
    DistSpgemmPlan<double> explicit_plan;
    DistSpgemmOptions sa1d_opt;
    sa1d_opt.algo = Algo::SparseAware1D;
    explicit_plan.build(c, da, da, sa1d_opt);
    const std::uint64_t explicit_sa1d = coll_recv() - b0;

    b0 = coll_recv();
    DistSpgemmPlan<double> auto_plan;
    DistSpgemmStats st;
    auto_plan.build(c, da, da, {}, &st);
    const std::uint64_t auto_build = coll_recv() - b0;

    ASSERT_EQ(st.chosen, Algo::SparseAware1D)
        << "clustered operands must dispatch to SA-1D for this regression";
    EXPECT_EQ(auto_build, cost_inputs + explicit_sa1d - meta_gather);
    EXPECT_LT(auto_build, cost_inputs + explicit_sa1d);
  });
}

// ---- OrAnd reachability through the semiring-generic backends -------------

TEST(DistPlanSemiring, OrAndReachabilityReplaysAcrossBackends) {
  // Boolean closure through every cached backend: the ⊕-fold programs must
  // replay ∨ (not +), and the replay must agree with the local reference.
  auto a = hidden_community<double>(128, 8, 6.0, 0.5, 3);
  auto want = spgemm_local<OrAnd, double>(a, a, LocalKernel::Spa);
  const int P = 4;
  Machine m(P);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    for (Algo algo : feasible_backends(P)) {
      DistSpgemmOptions opt;
      opt.algo = algo;
      DistSpgemmPlan<double, OrAnd> plan;
      auto c1 = spgemm_dist_cached<OrAnd>(c, plan, da, da, opt);
      auto c2 = spgemm_dist_cached<OrAnd>(c, plan, da, da, opt);
      EXPECT_TRUE(c1.gather(c) == want) << algo_name(algo);
      EXPECT_TRUE(c2.local() == c1.local()) << algo_name(algo);
      EXPECT_EQ(plan.replays(), 1) << algo_name(algo);
    }
  });
}

// ---- spgemm_dist_cached rebuild rules -------------------------------------

TEST(DistPlanCached, RebuildsOnStructureChangeAndReusesOnMatch) {
  auto pat1 = block_clustered<double>(128, 8, 4.0, 0.4, 61);
  auto pat2 = erdos_renyi<double>(128, 3.0, 62);  // different structure
  Machine m(4);
  DistSpgemmOptions opt;
  opt.algo = Algo::Summa2D;
  m.run([&](Comm& c) {
    DistSpgemmPlan<double> plan;
    const CscMatrix<double>* pats[] = {&pat1, &pat1, &pat2, &pat2, &pat1};
    for (int t = 0; t < 5; ++t) {
      auto cur = with_values(*pats[t], t);
      auto dm = DistMatrix1D<double>::from_global(c, cur);
      auto got = spgemm_dist_cached(c, plan, dm, dm, opt);
      auto fresh = spgemm_dist(c, dm, dm, opt);
      EXPECT_TRUE(got.local() == fresh.local()) << "iter " << t;
    }
    // Rebuilds at t=0, t=2, t=4; replays at t=1 and t=3.
    EXPECT_EQ(plan.builds(), 3);
    EXPECT_EQ(plan.replays(), 2);
  });
}

TEST(DistPlanCached, RebuildsOnOptionChange) {
  auto pat = block_clustered<double>(120, 6, 4.0, 0.4, 63);
  Machine m(4);
  m.run([&](Comm& c) {
    auto dm = DistMatrix1D<double>::from_global(c, pat);
    DistSpgemmPlan<double> plan;
    DistSpgemmOptions ring;
    ring.algo = Algo::Ring1D;
    DistSpgemmOptions summa;
    summa.algo = Algo::Summa2D;
    spgemm_dist_cached(c, plan, dm, dm, ring);
    EXPECT_EQ(plan.chosen(), Algo::Ring1D);
    spgemm_dist_cached(c, plan, dm, dm, summa);  // option change: new backend
    EXPECT_EQ(plan.chosen(), Algo::Summa2D);
    spgemm_dist_cached(c, plan, dm, dm, summa);
    EXPECT_EQ(plan.builds(), 2);
    EXPECT_EQ(plan.replays(), 1);
  });
}

TEST(DistPlanCached, ExecuteRejectsStructureMismatchAndEmptyPlan) {
  Machine m(2);
  EXPECT_THROW(m.run([](Comm& c) {
    auto a = DistMatrix1D<double>::from_global(c, erdos_renyi<double>(60, 4.0, 7));
    auto b = DistMatrix1D<double>::from_global(c, erdos_renyi<double>(60, 4.0, 8));
    DistSpgemmPlan<double> plan;
    DistSpgemmOptions opt;
    opt.algo = Algo::Ring1D;
    plan.build(c, a, a, opt);
    plan.execute(c, b, b);  // different structure -> fingerprint mismatch
  }),
               std::invalid_argument);
  EXPECT_THROW(m.run([](Comm& c) {
    auto a = DistMatrix1D<double>::from_global(c, erdos_renyi<double>(40, 3.0, 9));
    DistSpgemmPlan<double> empty;
    empty.execute(c, a, a);
  }),
               std::invalid_argument);
}

}  // namespace
}  // namespace sa1d
