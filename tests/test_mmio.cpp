// Unit tests for Matrix Market I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/generators.hpp"
#include "sparse/mmio.hpp"

namespace sa1d {
namespace {

TEST(Mmio, ReadGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 1 1.5\n"
      "3 2 -2.0\n");
  auto m = read_matrix_market(in);
  EXPECT_EQ(m.nrows(), 3);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.triples()[0], (Triple<double>{0, 0, 1.5}));
  EXPECT_EQ(m.triples()[1], (Triple<double>{2, 1, -2.0}));
}

TEST(Mmio, SymmetricExpansion) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 4.0\n"
      "2 2 5.0\n");
  auto m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 3);  // off-diagonal mirrored, diagonal not
}

TEST(Mmio, SkewSymmetricNegatesMirror) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  auto m = read_matrix_market(in);
  ASSERT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.triples()[0].val, 3.0);   // (1,0)
  EXPECT_DOUBLE_EQ(m.triples()[1].val, -3.0);  // (0,1)
}

TEST(Mmio, PatternGetsOnes) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 2\n");
  auto m = read_matrix_market(in);
  ASSERT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.triples()[0].val, 1.0);
}

TEST(Mmio, RejectsBadBanner) {
  std::istringstream in("%%NotMatrixMarket matrix coordinate real general\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(Mmio, RejectsArrayFormat) {
  std::istringstream in("%%MatrixMarket matrix array real general\n1 1\n1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(Mmio, RejectsOutOfRangeIndex) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(Mmio, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(Mmio, WriteReadRoundTrip) {
  auto a = erdos_renyi<double>(40, 3.0, 21);
  auto coo = a.to_coo();
  std::ostringstream out;
  write_matrix_market(out, coo);
  std::istringstream in(out.str());
  auto back = read_matrix_market(in);
  EXPECT_EQ(back.nrows(), coo.nrows());
  ASSERT_EQ(back.nnz(), coo.nnz());
  for (index_t i = 0; i < coo.nnz(); ++i) {
    EXPECT_EQ(back.triples()[static_cast<std::size_t>(i)].row,
              coo.triples()[static_cast<std::size_t>(i)].row);
    EXPECT_NEAR(back.triples()[static_cast<std::size_t>(i)].val,
                coo.triples()[static_cast<std::size_t>(i)].val, 1e-6);
  }
}

TEST(Mmio, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"), std::invalid_argument);
}

// ---- hardening against malformed inputs ------------------------------------

TEST(Mmio, RejectsDuplicateEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "1 1 2.0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(Mmio, RejectsSymmetricDuplicateAcrossDiagonal) {
  // Both (2,1) and (1,2) listed: their symmetric expansions collide.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "2 1 1.0\n"
      "1 2 1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(Mmio, RejectsNonFiniteValues) {
  for (const char* bad : {"nan", "inf", "-inf"}) {
    std::istringstream in(std::string("%%MatrixMarket matrix coordinate real general\n"
                                      "2 2 1\n"
                                      "1 1 ") +
                          bad + "\n");
    EXPECT_THROW(read_matrix_market(in), std::invalid_argument) << bad;
  }
}

TEST(Mmio, RejectsMissingValueToken) {
  // The old parser silently defaulted a missing value to 1.0.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(Mmio, RejectsGarbageValueToken) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 abc\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(Mmio, RejectsTrailingGarbageOnEntryLine) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 1.0 junk\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(Mmio, RejectsMalformedDimensionsLine) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 two 1\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(Mmio, RejectsOverflowingDimensions) {
  // Overflows index_t: must be a parse error, not silently-zero dims.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "99999999999999999999999999 2 1\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(Mmio, RejectsNnzBeyondMatrixCells) {
  // 4 declared entries cannot fit a 1x3 matrix; also guards the
  // nrows*ncols overflow path (checked without forming the product).
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "1 3 4\n"
      "1 1 1.0\n"
      "1 2 1.0\n"
      "1 3 1.0\n"
      "1 1 2.0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(Mmio, RejectsSkewSymmetricDiagonal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "1 1 3.0\n");
  EXPECT_THROW(read_matrix_market(in), std::invalid_argument);
}

TEST(Mmio, AcceptsEntriesWithExtraWhitespace) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "  1   2   4.5  \n");
  auto m = read_matrix_market(in);
  ASSERT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.triples()[0].val, 4.5);
}

}  // namespace
}  // namespace sa1d
