// Tests for the serving runtime: the multi-tenant LRU plan cache
// (runtime/plan_cache.hpp) and the batched fused executor
// (dist/batch_spgemm.hpp). The acceptance bar is bit-identity — every
// batched member must equal the fresh spgemm_dist result for its operands,
// across all four backends, both semirings, and batch sizes 1/2/8/32
// (cold: misses + within-batch deferred hits; hot: fused replay groups) —
// plus the LRU/budget mechanics (eviction order, forced rebuilds, the
// windowed-ring demotion fallback staying replayable), the structure-hash
// negative (equal quick fingerprints must not alias), the coherence guard
// (a rank-divergent cache decision surfaces as the identical typed
// ValidationError on every rank, never a hang), chaos (RankAbort mid-batch
// fails every rank with the same Peer error), and mode-invariance of the
// cache counters across overlap on/off.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dist/batch_spgemm.hpp"
#include "sparse/generators.hpp"

namespace sa1d {
namespace {

/// Same sparsity pattern, values re-derived from (position, t): the request
/// stream of a serving workload — structure per tenant frozen, values fresh
/// per request. Non-integer so bit-identity genuinely pins ⊕-fold order.
CscMatrix<double> with_values(const CscMatrix<double>& base, int t) {
  std::vector<double> vals(base.vals().size());
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = 0.3 + 0.17 * static_cast<double>(t) + 0.013 * static_cast<double>(i % 89);
  return CscMatrix<double>(base.nrows(), base.ncols(), base.colptr(), base.rowids(),
                           std::move(vals));
}

/// k-shifted circulant: every column holds rows {j, j+shift mod n}, so two
/// different shifts have identical dims, nnz, per-rank nzc and column
/// counts — the quick fingerprint fields collide and only the structure
/// hash can tell them apart.
CscMatrix<double> circulant(index_t n, index_t shift, double base) {
  CooMatrix<double> c(n, n);
  for (index_t j = 0; j < n; ++j) {
    c.push(j, j, base + 0.01 * static_cast<double>(j));
    c.push((j + shift) % n, j, base + 0.02 * static_cast<double>(j));
  }
  c.canonicalize();
  return CscMatrix<double>::from_coo(c);
}

std::vector<Algo> all_backends() {
  return {Algo::SparseAware1D, Algo::Ring1D, Algo::Summa2D, Algo::Split3D};
}

struct RankOutcome {
  bool ok = false;
  FaultClass cls = FaultClass::None;
  std::string what;
};

template <typename Body>
std::vector<RankOutcome> run_capture(Machine& m, Body&& body) {
  std::vector<RankOutcome> out(static_cast<std::size_t>(m.nranks()));
  m.run([&](Comm& c) {
    auto& o = out[static_cast<std::size_t>(c.rank())];
    try {
      body(c);
      o.ok = true;
    } catch (const Sa1dError& e) {
      o.cls = e.fault_class();
      o.what = dynamic_cast<const std::exception&>(e).what();
    } catch (const std::exception& e) {
      o.what = e.what();
    }
  });
  return out;
}

using Items = std::vector<std::pair<const DistMatrix1D<double>*, const DistMatrix1D<double>*>>;

// ---- batched bit-identity: cold, hot, all backends, both semirings --------

/// One serving trace against one backend: a tenant set with frozen
/// structures, request batches of the given sizes (tenants cycled, so sizes
/// above the tenant count exercise within-batch deferred hits), every
/// member compared bit-identically against its fresh spgemm_dist result.
template <typename SR>
void expect_batched_bit_identical(int P, Algo algo, bool overlap,
                                  const std::vector<CscMatrix<double>>& tenants,
                                  const std::vector<int>& batch_sizes) {
  Machine m(P);
  DistSpgemmOptions opt;
  opt.algo = algo;
  opt.overlap = overlap;
  m.run([&](Comm& c) {
    PlanCache<double, SR> cache;
    int t = 0;
    std::uint64_t want_hits = 0, want_misses = 0;
    std::vector<bool> seen(tenants.size(), false);
    for (int bs : batch_sizes) {
      // Materialize the batch: tenant i%T, fresh values per request.
      std::vector<DistMatrix1D<double>> ops;
      ops.reserve(static_cast<std::size_t>(bs));
      std::vector<std::size_t> tenant_of;
      for (int i = 0; i < bs; ++i, ++t) {
        const auto tn = static_cast<std::size_t>(i) % tenants.size();
        tenant_of.push_back(tn);
        seen[tn] = true;
        ops.push_back(DistMatrix1D<double>::from_global(c, with_values(tenants[tn], t)));
      }
      Items items;
      for (const auto& op : ops) items.push_back({&op, &op});
      std::vector<DistSpgemmStats> st;
      auto got = spgemm_dist_batched<SR>(c, cache, items, opt, &st);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(bs));
      ASSERT_EQ(st.size(), static_cast<std::size_t>(bs));
      for (int i = 0; i < bs; ++i) {
        auto fresh = spgemm_dist<SR>(c, ops[static_cast<std::size_t>(i)],
                                     ops[static_cast<std::size_t>(i)], opt);
        EXPECT_TRUE(got[static_cast<std::size_t>(i)].local() == fresh.local())
            << algo_name(algo) << (overlap ? " overlap" : " lockstep") << " batch " << bs
            << " member " << i;
      }
      // Counter contract: a tenant's first-ever request is the only miss;
      // everything else (later batches AND within-batch duplicates) hits.
      for (int i = 0; i < bs; ++i) {
        if (st[static_cast<std::size_t>(i)].cache_misses == 1)
          ++want_misses;
        else
          ++want_hits;
      }
      EXPECT_EQ(cache.stats().misses, want_misses) << algo_name(algo) << " batch " << bs;
      EXPECT_EQ(cache.stats().hits, want_hits) << algo_name(algo) << " batch " << bs;
      std::size_t distinct = 0;
      for (bool s : seen) distinct += s ? 1u : 0u;
      EXPECT_EQ(cache.size(), distinct) << algo_name(algo) << " batch " << bs;
      EXPECT_EQ(cache.stats().misses, distinct) << algo_name(algo) << " batch " << bs;
    }
    EXPECT_EQ(c.report().cache_hits, want_hits);
    EXPECT_EQ(c.report().cache_misses, want_misses);
    EXPECT_GT(c.report().cache_hits_by_algo[distdetail::algo_slot(algo)], 0u);
    EXPECT_EQ(c.report().cache_bytes_resident, cache.stats().bytes_resident);
  });
}

TEST(PlanCacheBatched, BitIdenticalAllBackendsPlusTimes) {
  // Three tenants (two square cluster shapes, one rectangular BC-style
  // frontier) so batch sizes 8/32 carry within-batch duplicates of every
  // tenant; batch 1/2 cover the singleton and smallest fused groups.
  std::vector<CscMatrix<double>> tenants;
  tenants.push_back(block_clustered<double>(120, 6, 4.0, 0.4, 11));
  tenants.push_back(erdos_renyi<double>(120, 3.0, 13));
  tenants.push_back(block_clustered<double>(120, 8, 5.0, 0.3, 17));
  for (Algo algo : all_backends())
    expect_batched_bit_identical<PlusTimes<double>>(4, algo, /*overlap=*/false, tenants,
                                                    {1, 2, 8, 32});
}

TEST(PlanCacheBatched, BitIdenticalAllBackendsOverlapped) {
  // The same trace through the overlapped fused paths (ialltoallv hop
  // shifts, up-front ibcast stage pipelines, SA-1D prefetch waves).
  std::vector<CscMatrix<double>> tenants;
  tenants.push_back(block_clustered<double>(120, 6, 4.0, 0.4, 19));
  tenants.push_back(erdos_renyi<double>(120, 3.0, 23));
  for (Algo algo : all_backends())
    expect_batched_bit_identical<PlusTimes<double>>(4, algo, /*overlap=*/true, tenants,
                                                    {2, 8});
}

TEST(PlanCacheBatched, BitIdenticalMinPlusFoldPrograms) {
  // The fused replays must fold with the *semiring's* ⊕ — min-plus picks
  // different winners than plus-times wherever partials collide, so an
  // accidental plus-fold in any fused path fails here.
  std::vector<CscMatrix<double>> tenants;
  tenants.push_back(block_clustered<double>(100, 5, 4.0, 0.4, 29));
  tenants.push_back(erdos_renyi<double>(100, 3.0, 31));
  for (Algo algo : all_backends())
    expect_batched_bit_identical<MinPlus<double>>(4, algo, /*overlap=*/false, tenants,
                                                  {1, 2, 8});
}

TEST(PlanCacheBatched, RectangularGridAndPrimeRankCounts) {
  std::vector<CscMatrix<double>> tenants;
  tenants.push_back(block_clustered<double>(120, 6, 4.0, 0.4, 37));
  tenants.push_back(erdos_renyi<double>(120, 3.0, 41));
  // P = 3: prime (1×3 grids); P = 6: rectangular 2×3 grid + 3-layer 3D.
  for (int P : {3, 6}) {
    expect_batched_bit_identical<PlusTimes<double>>(P, Algo::Summa2D, false, tenants, {2, 8});
    expect_batched_bit_identical<PlusTimes<double>>(P, Algo::Split3D, false, tenants, {2, 8});
  }
}

TEST(PlanCacheBatched, SequentialCachedEntryPointMatchesFresh) {
  // The one-at-a-time serving entry point (spgemm_dist_cached_mt): miss,
  // hit, and per-call stats wiring.
  auto pat = block_clustered<double>(120, 6, 4.0, 0.4, 43);
  Machine m(4);
  m.run([&](Comm& c) {
    PlanCache<double> cache;
    DistSpgemmOptions opt;
    opt.algo = Algo::Summa2D;
    for (int t = 0; t < 3; ++t) {
      auto da = DistMatrix1D<double>::from_global(c, with_values(pat, t));
      DistSpgemmStats st;
      auto got = spgemm_dist_cached_mt(c, cache, da, da, opt, &st);
      auto fresh = spgemm_dist(c, da, da, opt);
      EXPECT_TRUE(got.local() == fresh.local()) << "iter " << t;
      EXPECT_EQ(st.cache_misses, t == 0 ? 1u : 0u);
      EXPECT_EQ(st.cache_hits, t == 0 ? 0u : 1u);
      EXPECT_GT(st.cache_bytes_resident, 0u);
    }
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
  });
}

// ---- LRU order, budget-forced eviction, rebuild ---------------------------

TEST(PlanCacheLru, EvictionOrderAndForcedRebuild) {
  std::vector<CscMatrix<double>> tenants;
  tenants.push_back(block_clustered<double>(110, 5, 4.0, 0.4, 47));
  tenants.push_back(erdos_renyi<double>(110, 3.0, 53));
  tenants.push_back(block_clustered<double>(110, 11, 5.0, 0.3, 59));
  DistSpgemmOptions opt;
  opt.algo = Algo::Summa2D;

  // Pass 1 (unbounded): capture each tenant plan's agreed residency.
  std::vector<std::uint64_t> bytes(3, 0);
  {
    Machine m(4);
    m.run([&](Comm& c) {
      PlanCache<double> cache;
      for (int i = 0; i < 3; ++i) {
        auto da = DistMatrix1D<double>::from_global(
            c, with_values(tenants[static_cast<std::size_t>(i)], i));
        spgemm_dist_cached_mt(c, cache, da, da, opt);
        if (c.rank() == 0) bytes[static_cast<std::size_t>(i)] = cache.entries().front().bytes;
      }
    });
  }
  for (auto b : bytes) ASSERT_GT(b, 0u);

  // Pass 2: budget one byte short of all three — the LRU victim (tenant 0)
  // must be evicted when tenant 2 is admitted, deterministically on every
  // rank; re-requesting tenant 0 is then a miss that rebuilds correctly and
  // evicts the new tail (tenant 1).
  const std::uint64_t budget = bytes[0] + bytes[1] + bytes[2] - 1;
  Machine m(4);
  m.run([&](Comm& c) {
    PlanCache<double> cache(budget, /*demote_window=*/0);
    std::vector<DistMatrix1D<double>> ops;
    for (int i = 0; i < 3; ++i)
      ops.push_back(DistMatrix1D<double>::from_global(
          c, with_values(tenants[static_cast<std::size_t>(i)], i)));
    spgemm_dist_cached_mt(c, cache, ops[0], ops[0], opt);
    spgemm_dist_cached_mt(c, cache, ops[1], ops[1], opt);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    DistSpgemmStats st;
    spgemm_dist_cached_mt(c, cache, ops[2], ops[2], opt, &st);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(st.cache_evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_FALSE(cache.contains(ops[0], ops[0], opt)) << "LRU victim must be tenant 0";
    EXPECT_TRUE(cache.contains(ops[1], ops[1], opt));
    EXPECT_TRUE(cache.contains(ops[2], ops[2], opt));
    EXPECT_LE(cache.stats().bytes_resident, budget);
    EXPECT_EQ(c.report().cache_evictions, 1u);
    EXPECT_GT(c.report().cache_evictions_by_algo[distdetail::algo_slot(Algo::Summa2D)], 0u);

    // Forced rebuild: tenant 0 again is a miss, result still correct.
    DistSpgemmStats st0;
    auto got = spgemm_dist_cached_mt(c, cache, ops[0], ops[0], opt, &st0);
    auto fresh = spgemm_dist(c, ops[0], ops[0], opt);
    EXPECT_TRUE(got.local() == fresh.local());
    EXPECT_EQ(st0.cache_misses, 1u);
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_FALSE(cache.contains(ops[1], ops[1], opt)) << "new tail must be tenant 1";
  });
}

TEST(PlanCacheLru, TouchOrderIsMruFirst) {
  auto p0 = block_clustered<double>(100, 5, 4.0, 0.4, 61);
  auto p1 = erdos_renyi<double>(100, 3.0, 67);
  Machine m(2);
  m.run([&](Comm& c) {
    PlanCache<double> cache;
    auto d0 = DistMatrix1D<double>::from_global(c, p0);
    auto d1 = DistMatrix1D<double>::from_global(c, p1);
    spgemm_dist_cached_mt(c, cache, d0, d0);
    spgemm_dist_cached_mt(c, cache, d1, d1);
    // MRU-first after [miss 0, miss 1]: front is tenant 1.
    const auto fp0 = detail1d::fingerprint_of(d0, d0);
    EXPECT_FALSE(cachedetail::fp_equal(cache.entries().front().fp, fp0));
    spgemm_dist_cached_mt(c, cache, d0, d0);  // hit re-orders
    EXPECT_TRUE(cachedetail::fp_equal(cache.entries().front().fp, fp0));
  });
}

// ---- windowed-hop demotion: shed bytes, stay replayable -------------------

TEST(PlanCacheLru, RingDemotionFallbackStaysBitIdentical) {
  auto pat = block_clustered<double>(120, 6, 4.0, 0.4, 71);
  DistSpgemmOptions opt;
  opt.algo = Algo::Ring1D;

  std::uint64_t full_bytes = 0;
  {
    Machine m(4);
    m.run([&](Comm& c) {
      PlanCache<double> cache;
      auto da = DistMatrix1D<double>::from_global(c, with_values(pat, 0));
      spgemm_dist_cached_mt(c, cache, da, da, opt);
      if (c.rank() == 0) full_bytes = cache.entries().front().bytes;
    });
  }
  ASSERT_GT(full_bytes, 0u);

  Machine m(4);
  m.run([&](Comm& c) {
    // Budget one byte short of the full ring program: the end-of-batch
    // eviction pass must *demote* the plan to its hop window instead of
    // dropping it — bytes shrink, the entry stays, and later requests hit
    // it through the windowed replay path, still bit-identical.
    PlanCache<double> cache(full_bytes - 1, /*demote_window=*/2);
    auto d0 = DistMatrix1D<double>::from_global(c, with_values(pat, 0));
    Items items{{&d0, &d0}};
    auto got0 = spgemm_dist_batched(c, cache, items, opt);
    auto fresh0 = spgemm_dist(c, d0, d0, opt);
    EXPECT_TRUE(got0[0].local() == fresh0.local());
    EXPECT_EQ(cache.stats().demotions, 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_LT(cache.stats().bytes_resident, full_bytes);
    EXPECT_EQ(c.report().cache_demotions, 1u);

    for (int t = 1; t < 3; ++t) {
      auto da = DistMatrix1D<double>::from_global(c, with_values(pat, t));
      DistSpgemmStats st;
      auto got = spgemm_dist_cached_mt(c, cache, da, da, opt, &st);
      auto fresh = spgemm_dist(c, da, da, opt);
      EXPECT_TRUE(got.local() == fresh.local()) << "windowed replay iter " << t;
      EXPECT_EQ(st.cache_hits, 1u) << "demoted plan must still be a hit";
    }
    EXPECT_EQ(cache.stats().demotions, 1u) << "demotion happens once, not per request";
  });
}

// ---- structure-hash negative: equal quick fingerprints must not alias -----

TEST(PlanCacheNegative, QuickFingerprintCollisionIsNotAHit) {
  // Shift-1 vs shift-2 circulants: identical dims, nnz, and per-rank
  // nzc/nnz — only the structure hashes differ. The second tenant must be
  // a miss with its own entry, and both results must stay correct.
  auto c1 = circulant(96, 1, 0.5);
  auto c2 = circulant(96, 2, 0.5);
  Machine m(4);
  m.run([&](Comm& c) {
    auto d1 = DistMatrix1D<double>::from_global(c, c1);
    auto d2 = DistMatrix1D<double>::from_global(c, c2);
    // Preconditions for the negative: the cheap fields really do collide.
    const auto f1 = detail1d::fingerprint_of(d1, d1);
    const auto f2 = detail1d::fingerprint_of(d2, d2);
    ASSERT_TRUE(f1.quick_equals(f2));
    ASSERT_FALSE(cachedetail::fp_equal(f1, f2));

    PlanCache<double> cache;
    DistSpgemmOptions opt;
    opt.algo = Algo::Ring1D;
    auto r1 = spgemm_dist_cached_mt(c, cache, d1, d1, opt);
    DistSpgemmStats st;
    auto r2 = spgemm_dist_cached_mt(c, cache, d2, d2, opt, &st);
    EXPECT_EQ(st.cache_misses, 1u) << "hash collision would have replayed the wrong plan";
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(r1.local() == spgemm_dist(c, d1, d1, opt).local());
    EXPECT_TRUE(r2.local() == spgemm_dist(c, d2, d2, opt).local());
  });
}

// ---- coherence guard: divergent decisions fail typed, never hang ----------

TEST(PlanCacheCoherence, DivergentDecisionIsUniformValidationError) {
  auto pat = block_clustered<double>(100, 5, 4.0, 0.4, 73);
  DistSpgemmOptions opt;
  opt.algo = Algo::Summa2D;
  Machine m(4);
  auto out = run_capture(m, [&](Comm& c) {
    PlanCache<double> cache;
    auto d0 = DistMatrix1D<double>::from_global(c, with_values(pat, 0));
    spgemm_dist_cached_mt(c, cache, d0, d0, opt);
    // Rank 1 silently loses the entry (the rank-local test hook): the next
    // request's vote diverges (h... vs m) and must throw the identical
    // ValidationError on every rank instead of hanging in mismatched
    // collectives.
    if (c.rank() == 1) EXPECT_TRUE(cache.erase_local(d0, d0, opt));
    auto d1 = DistMatrix1D<double>::from_global(c, with_values(pat, 1));
    spgemm_dist_cached_mt(c, cache, d1, d1, opt);
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_FALSE(out[static_cast<std::size_t>(r)].ok) << "rank " << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].cls, FaultClass::Validation) << "rank " << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].what, out[0].what)
        << "rank " << r << " must see the same message";
  }
  EXPECT_NE(out[0].what.find("spgemm_dist_cached_mt"), std::string::npos);
}

TEST(PlanCacheCoherence, DivergentBatchVoteIsUniformValidationError) {
  auto pat = block_clustered<double>(100, 5, 4.0, 0.4, 79);
  DistSpgemmOptions opt;
  opt.algo = Algo::Ring1D;
  Machine m(4);
  auto out = run_capture(m, [&](Comm& c) {
    PlanCache<double> cache;
    auto d0 = DistMatrix1D<double>::from_global(c, with_values(pat, 0));
    Items warm{{&d0, &d0}};
    spgemm_dist_batched(c, cache, warm, opt);
    if (c.rank() == 2) EXPECT_TRUE(cache.erase_local(d0, d0, opt));
    auto d1 = DistMatrix1D<double>::from_global(c, with_values(pat, 1));
    auto d2 = DistMatrix1D<double>::from_global(c, with_values(pat, 2));
    Items batch{{&d1, &d1}, {&d2, &d2}};
    spgemm_dist_batched(c, cache, batch, opt);
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_FALSE(out[static_cast<std::size_t>(r)].ok) << "rank " << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].cls, FaultClass::Validation) << "rank " << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].what, out[0].what) << "rank " << r;
  }
  EXPECT_NE(out[0].what.find("spgemm_dist_batched"), std::string::npos);
}

// ---- chaos: RankAbort mid-batch --------------------------------------------

TEST(PlanCacheChaos, RankAbortMidBatchFailsEveryRankTyped) {
  auto pat = block_clustered<double>(110, 5, 4.0, 0.4, 83);
  DistSpgemmOptions opt;
  opt.algo = Algo::Summa2D;

  // Clean pass: mark the comm-op interval the hot fused batch occupies.
  std::uint64_t batch_lo = 0, batch_hi = 0;
  {
    Machine m(4);
    m.run([&](Comm& c) {
      PlanCache<double> cache;
      std::vector<DistMatrix1D<double>> ops;
      for (int t = 0; t < 4; ++t)
        ops.push_back(DistMatrix1D<double>::from_global(c, with_values(pat, t)));
      Items warm{{&ops[0], &ops[0]}};
      spgemm_dist_batched(c, cache, warm, opt);
      if (c.rank() == 0) batch_lo = c.report().comm_ops;
      Items batch{{&ops[1], &ops[1]}, {&ops[2], &ops[2]}, {&ops[3], &ops[3]}};
      spgemm_dist_batched(c, cache, batch, opt);
      if (c.rank() == 0) batch_hi = c.report().comm_ops;
    });
  }
  ASSERT_GT(batch_hi, batch_lo);

  // Chaos pass: rank 2 dies in the middle of the fused replay. Peer faults
  // are not recoverable — every rank must unwind with the same typed error,
  // and the pinned-entry bookkeeping must not corrupt the unwind (ASan job
  // runs this test too).
  MachineOptions o;
  o.faults.actions.push_back(
      {.kind = FaultKind::RankAbort, .rank = 2, .op_index = (batch_lo + batch_hi) / 2});
  Machine m(4, {}, o);
  auto out = run_capture(m, [&](Comm& c) {
    PlanCache<double> cache;
    std::vector<DistMatrix1D<double>> ops;
    for (int t = 0; t < 4; ++t)
      ops.push_back(DistMatrix1D<double>::from_global(c, with_values(pat, t)));
    Items warm{{&ops[0], &ops[0]}};
    spgemm_dist_batched(c, cache, warm, opt);
    Items batch{{&ops[1], &ops[1]}, {&ops[2], &ops[2]}, {&ops[3], &ops[3]}};
    spgemm_dist_batched(c, cache, batch, opt);
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_FALSE(out[static_cast<std::size_t>(r)].ok) << "rank " << r;
    EXPECT_EQ(out[static_cast<std::size_t>(r)].cls, FaultClass::Peer) << "rank " << r;
    // Surviving ranks agree on the peer-failure message; the victim itself
    // reports the injected abort.
    if (r != 2) EXPECT_EQ(out[static_cast<std::size_t>(r)].what, out[0].what) << "rank " << r;
  }
}

// ---- counters are mode-invariant across overlap ---------------------------

TEST(PlanCacheCounters, InvariantAcrossOverlapModes) {
  auto p0 = block_clustered<double>(110, 5, 4.0, 0.4, 89);
  auto p1 = erdos_renyi<double>(110, 3.0, 97);
  auto trace = [&](bool overlap, std::uint64_t* hits, std::uint64_t* misses,
                   std::uint64_t* evictions) {
    Machine m(4);
    DistSpgemmOptions opt;
    opt.algo = Algo::Summa2D;
    opt.overlap = overlap;
    m.run([&](Comm& c) {
      PlanCache<double> cache;
      std::vector<DistMatrix1D<double>> ops;
      for (int t = 0; t < 4; ++t)
        ops.push_back(DistMatrix1D<double>::from_global(
            c, with_values(t % 2 == 0 ? p0 : p1, t)));
      spgemm_dist_cached_mt(c, cache, ops[0], ops[0], opt);
      Items batch{{&ops[1], &ops[1]}, {&ops[2], &ops[2]}, {&ops[3], &ops[3]}};
      spgemm_dist_batched(c, cache, batch, opt);
      if (c.rank() == 0) {
        *hits = c.report().cache_hits;
        *misses = c.report().cache_misses;
        *evictions = c.report().cache_evictions;
      }
    });
  };
  std::uint64_t h0 = 0, m0 = 0, e0 = 0, h1 = 0, m1 = 0, e1 = 0;
  trace(false, &h0, &m0, &e0);
  trace(true, &h1, &m1, &e1);
  // The cache's observable behavior must not depend on the comm engine
  // mode: same trace, same hit/miss/eviction counts either way.
  EXPECT_EQ(h0, h1);
  EXPECT_EQ(m0, m1);
  EXPECT_EQ(e0, e1);
  EXPECT_EQ(m0, 2u);  // two tenants, first touch each
  EXPECT_EQ(h0, 2u);  // the other two requests hit
}

}  // namespace
}  // namespace sa1d
