// Unit tests for the DCSC hypersparse format (the paper's local format).
#include <gtest/gtest.h>

#include "sparse/dcsc.hpp"
#include "sparse/generators.hpp"

namespace sa1d {
namespace {

CooMatrix<double> hypersparse_coo() {
  // 6x8 matrix with only columns 1 and 6 nonzero.
  CooMatrix<double> m(6, 8);
  m.push(2, 1, 1.0);
  m.push(5, 1, 2.0);
  m.push(0, 6, 3.0);
  return m;
}

TEST(Dcsc, FromCooStoresOnlyNonzeroColumns) {
  auto d = DcscMatrix<double>::from_coo(hypersparse_coo());
  EXPECT_EQ(d.nrows(), 6);
  EXPECT_EQ(d.ncols(), 8);
  EXPECT_EQ(d.nnz(), 3);
  EXPECT_EQ(d.nzc(), 2);
  EXPECT_EQ(d.col_id(0), 1);
  EXPECT_EQ(d.col_id(1), 6);
  EXPECT_TRUE(d.check_invariants());
}

TEST(Dcsc, ColumnAccessors) {
  auto d = DcscMatrix<double>::from_coo(hypersparse_coo());
  EXPECT_EQ(d.col_nnz_at(0), 2);
  EXPECT_EQ(d.col_nnz_at(1), 1);
  auto rows = d.col_rows_at(0);
  EXPECT_EQ(rows[0], 2);
  EXPECT_EQ(rows[1], 5);
  EXPECT_DOUBLE_EQ(d.col_vals_at(1)[0], 3.0);
}

TEST(Dcsc, FindCol) {
  auto d = DcscMatrix<double>::from_coo(hypersparse_coo());
  EXPECT_EQ(d.find_col(1), 0);
  EXPECT_EQ(d.find_col(6), 1);
  EXPECT_EQ(d.find_col(0), -1);
  EXPECT_EQ(d.find_col(7), -1);
}

TEST(Dcsc, RoundTripThroughCsc) {
  auto csc = CscMatrix<double>::from_coo(hypersparse_coo());
  auto d = DcscMatrix<double>::from_csc(csc);
  EXPECT_EQ(d.to_csc(), csc);
}

TEST(Dcsc, RoundTripOnGeneratedMatrix) {
  auto a = erdos_renyi<double>(200, 4.0, 11);
  auto d = DcscMatrix<double>::from_csc(a);
  EXPECT_TRUE(d.check_invariants());
  EXPECT_EQ(d.to_csc(), a);
}

TEST(Dcsc, EmptyMatrix) {
  DcscMatrix<double> d(5, 5);
  EXPECT_EQ(d.nnz(), 0);
  EXPECT_EQ(d.nzc(), 0);
  EXPECT_TRUE(d.check_invariants());
  EXPECT_EQ(d.to_csc().nnz(), 0);
}

TEST(Dcsc, InvariantCheckerCatchesUnsortedJc) {
  DcscMatrix<double> d(4, 4, /*jc=*/{2, 1}, /*cp=*/{0, 1, 2}, /*ir=*/{0, 0},
                       /*vals=*/{1.0, 1.0});
  EXPECT_FALSE(d.check_invariants());
}

TEST(Dcsc, InvariantCheckerCatchesEmptyStoredColumn) {
  DcscMatrix<double> d(4, 4, /*jc=*/{1, 2}, /*cp=*/{0, 0, 2}, /*ir=*/{0, 1},
                       /*vals=*/{1.0, 1.0});
  EXPECT_FALSE(d.check_invariants());
}

TEST(Dcsc, ConstructorValidatesShape) {
  EXPECT_THROW(DcscMatrix<double>(2, 2, {0}, {0}, {0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(DcscMatrix<double>(2, 2, {0}, {0, 2}, {0}, {1.0}), std::invalid_argument);
}

TEST(Dcsc, StorageIsNzcNotNcols) {
  // A 1e6-column matrix with 2 nonzeros must not allocate per-column arrays.
  CooMatrix<double> m(10, 1000000);
  m.push(1, 999999, 1.0);
  m.push(0, 500000, 2.0);
  auto d = DcscMatrix<double>::from_coo(m);
  EXPECT_EQ(d.nzc(), 2);
  EXPECT_EQ(d.cp().size(), 3u);
}

}  // namespace
}  // namespace sa1d
