// Unit tests for synthetic matrix generators and the dataset registry.
#include <gtest/gtest.h>

#include "sparse/datasets.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace sa1d {
namespace {

TEST(ErdosRenyi, Deterministic) {
  auto a = erdos_renyi<double>(100, 4.0, 7);
  auto b = erdos_renyi<double>(100, 4.0, 7);
  EXPECT_EQ(a, b);
}

TEST(ErdosRenyi, ApproxDensity) {
  auto a = erdos_renyi<double>(2000, 8.0, 3);
  double per_col = static_cast<double>(a.nnz()) / 2000.0;
  EXPECT_GT(per_col, 6.0);
  EXPECT_LT(per_col, 9.0);  // duplicates get merged, so <= 8
}

TEST(ErdosRenyi, SymmetricFlag) {
  auto a = erdos_renyi<double>(300, 3.0, 5, /*symmetric=*/true);
  EXPECT_TRUE(is_pattern_symmetric(a));
}

TEST(ErdosRenyi, RejectsBadParams) {
  EXPECT_THROW(erdos_renyi<double>(0, 4.0, 1), std::invalid_argument);
  EXPECT_THROW(erdos_renyi<double>(10, -1.0, 1), std::invalid_argument);
}

TEST(Rmat, DimensionsAndDeterminism) {
  auto a = rmat<double>(10, 8, 9);
  EXPECT_EQ(a.nrows(), 1024);
  EXPECT_EQ(a, rmat<double>(10, 8, 9));
  EXPECT_TRUE(is_pattern_symmetric(a));
}

TEST(Rmat, SkewedDegrees) {
  auto a = rmat<double>(12, 16, 4);
  index_t maxdeg = 0;
  for (index_t j = 0; j < a.ncols(); ++j) maxdeg = std::max(maxdeg, a.col_nnz(j));
  double avg = static_cast<double>(a.nnz()) / static_cast<double>(a.ncols());
  EXPECT_GT(static_cast<double>(maxdeg), 8.0 * avg);  // power-law head
}

TEST(Mesh2d, FivePointStencilCounts) {
  auto a = mesh2d<double>(10);
  EXPECT_EQ(a.nrows(), 100);
  // Interior vertex: self + 4 neighbours.
  index_t interior = 5 * 10 + 5;
  EXPECT_EQ(a.col_nnz(interior), 5);
  // Corner: self + 2 neighbours.
  EXPECT_EQ(a.col_nnz(0), 3);
  EXPECT_TRUE(is_pattern_symmetric(a));
}

TEST(Mesh2d, NinePoint) {
  auto a = mesh2d<double>(8, /*nine_point=*/true);
  index_t interior = 3 * 8 + 3;
  EXPECT_EQ(a.col_nnz(interior), 9);
}

TEST(Mesh3d, TwentySevenPointStencil) {
  auto a = mesh3d<double>(6);
  EXPECT_EQ(a.nrows(), 216);
  index_t interior = (2 * 6 + 2) * 6 + 2;
  EXPECT_EQ(a.col_nnz(interior), 27);
  EXPECT_TRUE(is_pattern_symmetric(a));
}

TEST(Banded, NonzerosInsideBand) {
  auto a = banded<double>(200, 5, 0.5, 31);
  for (index_t j = 0; j < a.ncols(); ++j)
    for (auto r : a.col_rows(j)) EXPECT_LE(std::abs(r - j), 5);
  EXPECT_GE(a.nnz(), 200);  // at least the diagonal
}

TEST(BlockClustered, MostNnzInsideBlocks) {
  index_t n = 1024, nb = 8;
  auto a = block_clustered<double>(n, nb, 8.0, 0.25, 17);
  auto bounds = even_split(n, static_cast<int>(nb));
  index_t inside = 0;
  for (index_t j = 0; j < n; ++j) {
    int bj = find_owner(bounds, j);
    for (auto r : a.col_rows(j))
      if (find_owner(bounds, r) == bj) ++inside;
  }
  EXPECT_GT(static_cast<double>(inside) / static_cast<double>(a.nnz()), 0.85);
}

TEST(KktSaddle, StructureAndSymmetry) {
  auto a = kkt_saddle<double>(20, 0.3, 3);
  EXPECT_GT(a.nrows(), 400);
  EXPECT_TRUE(is_pattern_symmetric(a));
  // Constraint block (bottom-right) has an empty diagonal block: entries in
  // constraint columns must all point back at primal rows.
  index_t na = 400;
  for (index_t j = na; j < a.ncols(); ++j)
    for (auto r : a.col_rows(j)) EXPECT_LT(r, na);
}

TEST(Datasets, AllBuildAtTinyScaleAndAreDeterministic) {
  for (auto d : all_datasets()) {
    auto m = make_dataset(d, 0.1);
    auto m2 = make_dataset(d, 0.1);
    EXPECT_GT(m.nnz(), 0) << dataset_name(d);
    EXPECT_EQ(m, m2) << dataset_name(d);
    EXPECT_EQ(m.nrows(), m.ncols()) << dataset_name(d);
  }
}

TEST(Datasets, StatsMatchMatrix) {
  auto m = make_dataset(Dataset::QueenLike, 0.1);
  auto s = dataset_stats(Dataset::QueenLike, m);
  EXPECT_EQ(s.rows, m.nrows());
  EXPECT_EQ(s.nnz, m.nnz());
  EXPECT_TRUE(s.symmetric);
}

TEST(Datasets, SymmetryMatchesPaperTable2) {
  // Table II: queen/eukarya/nlpkkt symmetric; stokes/hv15r not.
  EXPECT_TRUE(dataset_stats(Dataset::QueenLike, make_dataset(Dataset::QueenLike, 0.1)).symmetric);
  EXPECT_TRUE(
      dataset_stats(Dataset::EukaryaLike, make_dataset(Dataset::EukaryaLike, 0.1)).symmetric);
  EXPECT_TRUE(
      dataset_stats(Dataset::NlpkktLike, make_dataset(Dataset::NlpkktLike, 0.1)).symmetric);
  EXPECT_FALSE(dataset_stats(Dataset::Hv15rLike, make_dataset(Dataset::Hv15rLike, 0.1)).symmetric);
  EXPECT_FALSE(dataset_stats(Dataset::StokesLike, make_dataset(Dataset::StokesLike, 0.1)).symmetric);
}

TEST(Datasets, HasStructureFlag) {
  EXPECT_TRUE(dataset_has_structure(Dataset::QueenLike));
  EXPECT_FALSE(dataset_has_structure(Dataset::EukaryaLike));
}

}  // namespace
}  // namespace sa1d
