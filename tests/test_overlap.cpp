// Overlapped-execution regression suite (DESIGN.md §10): the nonblocking
// engine must be an *attribution-only* transform — same collective sequence,
// same byte/message/op counters, bit-identical results — relative to the
// seed's lockstep execution, for every backend × semiring × fresh/replay
// combination; overlap accounting must split the same modeled comm total
// into waited (comm_s) + hidden (overlap_s); and faults injected mid-overlap
// must contain exactly like their lockstep counterparts (typed error on
// every rank, never a hang).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "dist/dist_plan.hpp"
#include "dist/dist_spgemm.hpp"
#include "runtime/errors.hpp"
#include "runtime/fault.hpp"
#include "runtime/machine.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace sa1d {
namespace {

// Small-integer values keep every ⊕ order exact in doubles, so overlapped
// and lockstep results can be compared *bit-identical*, not approximately.
CscMatrix<double> with_integer_values(CscMatrix<double> a, std::uint64_t seed) {
  SplitMix64 g(seed);
  std::vector<double> v(a.vals().size());
  for (auto& x : v) x = static_cast<double>(1 + g.below(7));
  return CscMatrix<double>(a.nrows(), a.ncols(), a.colptr(), a.rowids(), std::move(v));
}

bool bit_equal(const CscMatrix<double>& got, const CscMatrix<double>& want) {
  return got.nrows() == want.nrows() && got.ncols() == want.ncols() &&
         got.colptr() == want.colptr() && got.rowids() == want.rowids() &&
         got.vals() == want.vals();
}

std::vector<std::uint64_t> counters_of(const RankReport& r) {
  return {r.bytes_intra,      r.bytes_inter,      r.msgs_intra,       r.msgs_inter,
          r.sent_bytes_intra, r.sent_bytes_inter, r.sent_msgs_intra,  r.sent_msgs_inter,
          r.rdma_bytes,       r.rdma_msgs,        r.rdma_bytes_inter, r.rdma_msgs_inter,
          r.bytes_local,      r.comm_ops};
}

constexpr Algo kBackends[] = {Algo::SparseAware1D, Algo::Ring1D, Algo::Summa2D, Algo::Split3D};

/// Fresh + replay through one cached plan; returns the two gathered results.
template <typename SRIn>
struct ModeResult {
  CscMatrix<double> fresh, replay;
  RunReport rep;
};

template <typename SRIn>
ModeResult<SRIn> run_mode(int P, const CscMatrix<double>& a, Algo algo, bool overlap) {
  Machine m(P);
  ModeResult<SRIn> out;
  out.rep = m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    DistSpgemmOptions opt;
    opt.algo = algo;
    opt.overlap = overlap;
    DistSpgemmPlan<double, ResolveSemiring<SRIn, double>> plan;
    auto c1 = spgemm_dist_cached<SRIn>(c, plan, da, da, opt);
    auto c2 = spgemm_dist_cached<SRIn>(c, plan, da, da, opt);
    auto g1 = c1.gather(c);
    auto g2 = c2.gather(c);
    if (c.rank() == 0) {
      out.fresh = std::move(g1);
      out.replay = std::move(g2);
    }
  });
  return out;
}

template <typename SRIn>
void check_backend_semiring(const CscMatrix<double>& a, const CscMatrix<double>& want,
                            const char* sr_name) {
  const int P = 4;
  for (Algo algo : kBackends) {
    SCOPED_TRACE(std::string(algo_name(algo)) + " x " + sr_name);
    auto ov = run_mode<SRIn>(P, a, algo, /*overlap=*/true);
    auto lk = run_mode<SRIn>(P, a, algo, /*overlap=*/false);

    // Correctness + determinism: fresh == replay == lockstep == reference.
    EXPECT_TRUE(bit_equal(ov.fresh, want));
    EXPECT_TRUE(bit_equal(ov.replay, want));
    EXPECT_TRUE(bit_equal(lk.fresh, want));
    EXPECT_TRUE(bit_equal(lk.replay, want));

    // The engine is attribution-only: overlapped execution issues the exact
    // same op sequence and traffic as lockstep, rank by rank — this is also
    // what keeps FaultPlan op_index coordinates comparable across modes.
    for (int r = 0; r < P; ++r) {
      const auto& ro = ov.rep.ranks[static_cast<std::size_t>(r)];
      const auto& rl = lk.rep.ranks[static_cast<std::size_t>(r)];
      EXPECT_EQ(counters_of(ro), counters_of(rl)) << "rank " << r;
      // Same messages → same modeled comm total; overlap only re-attributes
      // it between waited (comm_s) and hidden (overlap_s).
      const double tot_ov = ro.comm_s + ro.overlap_s;
      EXPECT_NEAR(tot_ov, rl.comm_s, 1e-9 + 1e-6 * rl.comm_s) << "rank " << r;
      EXPECT_DOUBLE_EQ(rl.overlap_s, 0.0) << "rank " << r;
      EXPECT_GE(ro.overlap_s, 0.0) << "rank " << r;
    }
  }
}

// ---- differential bit-identity: backends × semirings × fresh/replay --------

TEST(Overlap, PlusTimesBitIdenticalAcrossBackendsAndModes) {
  auto a = with_integer_values(erdos_renyi<double>(130, 4.0, 71), 60);
  auto want = spgemm_local<PlusTimes<double>, double>(a, a, LocalKernel::Spa);
  check_backend_semiring<void>(a, want, "plus-times");
}

TEST(Overlap, MinPlusBitIdenticalAcrossBackendsAndModes) {
  auto a = with_integer_values(erdos_renyi<double>(130, 4.0, 72), 61);
  auto want = spgemm_local<MinPlus<double>, double>(a, a, LocalKernel::Spa);
  check_backend_semiring<MinPlus<double>>(a, want, "min-plus");
}

TEST(Overlap, OrAndBitIdenticalAcrossBackendsAndModes) {
  auto a = with_integer_values(erdos_renyi<double>(130, 4.0, 73), 62);
  auto want = spgemm_local<OrAnd, double>(a, a, LocalKernel::Spa);
  check_backend_semiring<OrAnd>(a, want, "or-and");
}

// ---- overlap accounting ----------------------------------------------------

TEST(Overlap, StagePipelinedBackendsHideCommBehindCompute) {
  // The double-buffered SUMMA stages and the pipelined split fold must
  // actually hide time: some rank's overlap_s > 0, and hidden time must
  // never appear in the waited column too (no double counting — checked
  // against lockstep totals in the differential tests above).
  auto a = with_integer_values(erdos_renyi<double>(160, 5.0, 74), 63);
  for (Algo algo : {Algo::Summa2D, Algo::Split3D}) {
    SCOPED_TRACE(algo_name(algo));
    auto ov = run_mode<void>(4, a, algo, /*overlap=*/true);
    double hidden = 0.0;
    for (const auto& r : ov.rep.ranks) hidden += r.overlap_s;
    EXPECT_GT(hidden, 0.0);
  }
}

TEST(Overlap, Sa1dPrefetchRespectsInflightBudgetAndStaysBitIdentical) {
  // Sweep the prefetch depth (1 = fully serialized ring, large = everything
  // in flight): the result must be bit-identical at every depth, and a
  // depth change must alter the plan digest (option-coherent validation).
  auto a = with_integer_values(erdos_renyi<double>(130, 4.0, 75), 64);
  auto want = spgemm_local<PlusTimes<double>, double>(a, a, LocalKernel::Spa);
  for (int depth : {1, 2, 8, 64}) {
    SCOPED_TRACE("prefetch_inflight=" + std::to_string(depth));
    Machine m(4);
    std::vector<int> match(4, 0);
    m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      DistSpgemmOptions opt;
      opt.algo = Algo::SparseAware1D;
      opt.sa1d.prefetch_inflight = depth;
      auto got = spgemm_dist(c, da, da, opt);
      match[static_cast<std::size_t>(c.rank())] = bit_equal(got.gather(c), want) ? 1 : 0;
    });
    for (int r = 0; r < 4; ++r) EXPECT_EQ(match[static_cast<std::size_t>(r)], 1) << r;
  }
}

TEST(Overlap, DivergentOverlapOptionsFailValidationEverywhere) {
  // The overlap switches are part of the option digest: ranks disagreeing
  // on them would issue different op sequences, so the entry vote must
  // raise the identical ValidationError on every rank instead.
  auto a = with_integer_values(erdos_renyi<double>(80, 3.0, 76), 65);
  Machine m(4);
  std::vector<int> validation(4, 0);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    DistSpgemmOptions opt;
    opt.algo = Algo::Summa2D;
    opt.overlap = c.rank() % 2 == 0;  // diverges across ranks
    try {
      (void)spgemm_dist(c, da, da, opt);
    } catch (const ValidationError&) {
      validation[static_cast<std::size_t>(c.rank())] = 1;
    }
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(validation[static_cast<std::size_t>(r)], 1) << r;
}

// ---- faults mid-overlap ----------------------------------------------------

/// One rank's outcome under injected faults (mirrors test_fault.cpp).
struct RankOutcome {
  bool ok = false;
  FaultClass cls = FaultClass::None;
  std::string what;
};

TEST(Overlap, ChaosMidOverlapContainsOrHealsOnEveryRank) {
  // Inject rank-abort and payload corruption *while nonblocking requests are
  // in flight* (overlap on, op coordinates probed from a clean overlapped
  // run). Contract per cell, same as the lockstep chaos sweep: either every
  // rank completes bit-identically (corruption healed by integrity replay)
  // or every rank raises the same typed error — and the machine never hangs.
  auto a = with_integer_values(erdos_renyi<double>(110, 4.0, 77), 66);
  auto want = spgemm_local<PlusTimes<double>, double>(a, a, LocalKernel::Spa);
  const int P = 4;
  const FaultKind kinds[] = {FaultKind::RankAbort, FaultKind::CollectiveCorrupt,
                             FaultKind::RdmaCorrupt};

  for (Algo algo : kBackends) {
    DistSpgemmOptions opt;
    opt.algo = algo;
    opt.overlap = true;
    opt.max_recovery_retries = 4;

    // Probe the op-count window of the fresh+replay workload on a clean
    // machine; inject into the middle of it (mid-overlap on the stage-
    // pipelined backends: requests for later stages are already posted).
    std::vector<std::uint64_t> ops(static_cast<std::size_t>(P), 0);
    Machine probe(P);
    probe.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      DistSpgemmPlan<double> plan;
      (void)spgemm_dist_cached(c, plan, da, da, opt);
      (void)spgemm_dist_cached(c, plan, da, da, opt);
      ops[static_cast<std::size_t>(c.rank())] = c.report().comm_ops;
    });

    for (FaultKind kind : kinds) {
      const int victim = 1;
      const std::uint64_t op = ops[static_cast<std::size_t>(victim)] / 2;
      SCOPED_TRACE(std::string(algo_name(algo)) + " x " + fault_kind_name(kind) + " @op " +
                   std::to_string(op));
      MachineOptions o;
      o.integrity = true;
      o.barrier_timeout = std::chrono::milliseconds(20000);
      o.faults.actions.push_back(
          {.kind = kind, .rank = victim, .op_index = op, .byte_offset = 5});
      Machine m(P, {}, o);
      std::vector<RankOutcome> out(static_cast<std::size_t>(P));
      std::vector<int> match(static_cast<std::size_t>(P), 0);
      m.run([&](Comm& c) {
        auto& oc = out[static_cast<std::size_t>(c.rank())];
        try {
          auto da = DistMatrix1D<double>::from_global(c, a);
          DistSpgemmPlan<double> plan;
          auto c1 = spgemm_dist_cached(c, plan, da, da, opt);
          auto c2 = spgemm_dist_cached(c, plan, da, da, opt);
          match[static_cast<std::size_t>(c.rank())] =
              (bit_equal(c1.gather(c), want) && bit_equal(c2.gather(c), want)) ? 1 : 0;
          oc.ok = true;
        } catch (const Sa1dError& e) {
          oc.cls = e.fault_class();
          oc.what = dynamic_cast<const std::exception&>(e).what();
        }
      });

      const bool any_ok = out[0].ok;
      for (int r = 0; r < P; ++r) {
        const auto& o_r = out[static_cast<std::size_t>(r)];
        EXPECT_EQ(o_r.ok, any_ok) << "rank " << r << ": outcome not uniform";
        if (o_r.ok) {
          EXPECT_EQ(match[static_cast<std::size_t>(r)], 1) << "rank " << r;
        } else {
          EXPECT_EQ(o_r.cls, out[0].cls) << "rank " << r;
          if (r != victim) EXPECT_EQ(o_r.what, out[0].what) << "rank " << r;
        }
      }
    }
  }
}

}  // namespace
}  // namespace sa1d
