// Tests for Algorithm 1: the sparsity-aware 1D SpGEMM. Correctness against
// the serial reference across datasets, P, K, kernels; sparsity-awareness
// properties (volume reduction, Ã compaction); the CV/memA advisor.
#include <gtest/gtest.h>

#include <tuple>

#include "core/spgemm1d.hpp"
#include "kernels/spgemm_local.hpp"
#include "part/permutation.hpp"
#include "sparse/datasets.hpp"
#include "sparse/generators.hpp"

namespace sa1d {
namespace {

void expect_dist_equals_serial(int P, const CscMatrix<double>& a, const CscMatrix<double>& b,
                               const Spgemm1dOptions& opt = {}) {
  auto want = spgemm(a, b, LocalKernel::Spa);
  Machine m(P);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    auto db = DistMatrix1D<double>::from_global(c, b);
    auto dc = spgemm_1d(c, da, db, opt);
    auto got = dc.gather(c);
    EXPECT_TRUE(approx_equal(got, want, 1e-9));
  });
}

TEST(Spgemm1d, SquareSmallKnown) {
  // C = A*A for the 2D mesh; compare to serial.
  expect_dist_equals_serial(4, mesh2d<double>(8), mesh2d<double>(8));
}

TEST(Spgemm1d, SingleRankDegenerate) {
  auto a = erdos_renyi<double>(60, 4.0, 7);
  expect_dist_equals_serial(1, a, a);
}

TEST(Spgemm1d, RectangularOperands) {
  // A: 40x30, B: 30x20.
  CooMatrix<double> ca(40, 30), cb(30, 20);
  SplitMix64 g(8);
  for (int e = 0; e < 200; ++e)
    ca.push(static_cast<index_t>(g.below(40)), static_cast<index_t>(g.below(30)),
            1.0 + g.uniform());
  for (int e = 0; e < 150; ++e)
    cb.push(static_cast<index_t>(g.below(30)), static_cast<index_t>(g.below(20)),
            1.0 + g.uniform());
  ca.canonicalize();
  cb.canonicalize();
  expect_dist_equals_serial(3, CscMatrix<double>::from_coo(ca), CscMatrix<double>::from_coo(cb));
}

TEST(Spgemm1d, EmptyB) {
  auto a = erdos_renyi<double>(30, 3.0, 2);
  CscMatrix<double> b(30, 30);
  expect_dist_equals_serial(4, a, b);
}

TEST(Spgemm1d, EmptyA) {
  CscMatrix<double> a(30, 30);
  auto b = erdos_renyi<double>(30, 3.0, 2);
  expect_dist_equals_serial(4, a, b);
}

TEST(Spgemm1d, DimensionMismatchThrows) {
  Machine m(2);
  EXPECT_THROW(m.run([&](Comm& c) {
    auto a = DistMatrix1D<double>::from_global(c, erdos_renyi<double>(10, 2.0, 1));
    auto b = DistMatrix1D<double>::from_global(c, erdos_renyi<double>(12, 2.0, 1));
    spgemm_1d(c, a, b);
  }),
               std::invalid_argument);
}

TEST(Spgemm1d, RejectsNonPositiveK) {
  Machine m(2);
  EXPECT_THROW(m.run([&](Comm& c) {
    auto a = DistMatrix1D<double>::from_global(c, erdos_renyi<double>(10, 2.0, 1));
    Spgemm1dOptions opt;
    opt.block_fetch_k = 0;
    spgemm_1d(c, a, a, opt);
  }),
               std::invalid_argument);
}

using SweepCase = std::tuple<int /*P*/, index_t /*K*/, LocalKernel, int /*gen*/>;
class Spgemm1dSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(Spgemm1dSweep, MatchesSerial) {
  auto [P, K, kernel, gen] = GetParam();
  CscMatrix<double> a;
  switch (gen) {
    case 0: a = erdos_renyi<double>(150, 4.0, 7); break;
    case 1: a = block_clustered<double>(160, 8, 5.0, 0.5, 11); break;
    case 2: a = mesh2d<double>(13); break;
    default: FAIL();
  }
  Spgemm1dOptions opt;
  opt.block_fetch_k = K;
  opt.kernel = kernel;
  expect_dist_equals_serial(P, a, a, opt);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Spgemm1dSweep,
    ::testing::Combine(::testing::Values(2, 4, 7), ::testing::Values<index_t>(1, 8, 2048),
                       ::testing::Values(LocalKernel::Heap, LocalKernel::Hash,
                                         LocalKernel::Hybrid),
                       ::testing::Values(0, 1, 2)));

TEST(Spgemm1d, ObliviousModeMatchesToo) {
  auto a = block_clustered<double>(120, 6, 5.0, 0.5, 4);
  Spgemm1dOptions opt;
  opt.sparsity_aware = false;
  expect_dist_equals_serial(4, a, a, opt);
}

TEST(Spgemm1d, MergeAdjacentBlocksMatches) {
  auto a = mesh2d<double>(12);
  Spgemm1dOptions opt;
  opt.merge_adjacent_blocks = true;
  opt.block_fetch_k = 16;
  expect_dist_equals_serial(4, a, a, opt);
}

TEST(Spgemm1d, ThreadedLocalKernelMatches) {
  auto a = erdos_renyi<double>(200, 5.0, 19);
  Spgemm1dOptions opt;
  opt.threads = 3;
  expect_dist_equals_serial(4, a, a, opt);
}

TEST(Spgemm1d, SparsityAwareFetchesLessOnClusteredMatrix) {
  // On a block-clustered matrix in natural order, H ∩ D pruning must fetch
  // far fewer elements than the oblivious variant (the paper's core claim).
  auto a = block_clustered<double>(512, 16, 6.0, 0.25, 5);
  Machine m(8);
  std::uint64_t aware_bytes = 0, oblivious_bytes = 0;
  {
    auto rep = m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      spgemm_1d(c, da, da, {.block_fetch_k = 64});
    });
    aware_bytes = rep.total_rdma_bytes();
  }
  {
    auto rep = m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      spgemm_1d(c, da, da, {.block_fetch_k = 64, .sparsity_aware = false});
    });
    oblivious_bytes = rep.total_rdma_bytes();
  }
  EXPECT_LT(static_cast<double>(aware_bytes), 0.5 * static_cast<double>(oblivious_bytes));
}

TEST(Spgemm1d, RandomPermutationInflatesCommVolume) {
  // Fig 5's effect: random permutation destroys the clustered structure and
  // inflates RDMA volume.
  auto a = block_clustered<double>(512, 16, 6.0, 0.25, 6);
  auto perm = random_permutation(512, 99);
  auto aperm = permute_symmetric(a, perm);
  Machine m(8);
  std::uint64_t natural = 0, randomized = 0;
  natural = m.run([&](Comm& c) {
             auto da = DistMatrix1D<double>::from_global(c, a);
             spgemm_1d(c, da, da);
           }).total_rdma_bytes();
  randomized = m.run([&](Comm& c) {
                auto da = DistMatrix1D<double>::from_global(c, aperm);
                spgemm_1d(c, da, da);
              }).total_rdma_bytes();
  EXPECT_LT(static_cast<double>(natural), 0.6 * static_cast<double>(randomized));
}

TEST(Spgemm1d, InfoReportsCompaction) {
  auto a = block_clustered<double>(256, 8, 6.0, 0.25, 7);
  Machine m(4);
  m.run([&](Comm& c) {
    auto da = DistMatrix1D<double>::from_global(c, a);
    Spgemm1dInfo info;
    spgemm_1d(c, da, da, {}, &info);
    // Ã kept columns are a subset of fetched + local columns.
    EXPECT_GT(info.atilde_ncols, 0);
    EXPECT_LE(info.atilde_nnz, a.nnz());
    // 2 RDMA calls (ir + vals) per fetched block.
    EXPECT_EQ(info.rdma_calls % 2, 0);
    EXPECT_EQ(static_cast<std::uint64_t>(info.rdma_calls), c.report().rdma_msgs);
  });
}

TEST(Spgemm1d, BlockFetchKControlsMessageCount) {
  auto a = erdos_renyi<double>(400, 6.0, 23);  // scattered: most cols needed
  Machine m(4);
  auto msgs_at = [&](index_t k) {
    return m.run([&](Comm& c) {
              auto da = DistMatrix1D<double>::from_global(c, a);
              spgemm_1d(c, da, da, {.block_fetch_k = k});
            }).total_rdma_msgs();
  };
  auto m1 = msgs_at(1);
  auto m16 = msgs_at(16);
  auto m4096 = msgs_at(4096);
  EXPECT_LT(m1, m16);
  EXPECT_LT(m16, m4096);
  // K=1: one block (2 gets) per remote owner per rank = 2*P*(P-1).
  EXPECT_EQ(m1, 2u * 4u * 3u);
}

TEST(Spgemm1d, CvOverMemAAdvisor) {
  // Scattered matrix: every process needs nearly all of A -> ratio near 1.
  auto scattered = erdos_renyi<double>(300, 8.0, 31);
  // Clustered matrix in natural order: ratio far below the 0.3 threshold.
  auto clustered = block_clustered<double>(512, 16, 6.0, 0.1, 31);
  Machine m(8);
  m.run([&](Comm& c) {
    auto ds = DistMatrix1D<double>::from_global(c, scattered);
    double cv_s = cv_over_mem_a(c, ds, ds, {.block_fetch_k = 4096});
    EXPECT_GT(cv_s, 0.45);  // well above the paper's 0.3 partition threshold
    auto dc = DistMatrix1D<double>::from_global(c, clustered);
    double cv_c = cv_over_mem_a(c, dc, dc, {.block_fetch_k = 4096});
    EXPECT_LT(cv_c, 0.3);
  });
}

TEST(Spgemm1d, WorksOnAllDatasetsTiny) {
  for (auto d : all_datasets()) {
    auto a = make_dataset(d, 0.05);
    auto want = spgemm(a, a, LocalKernel::Spa);
    Machine m(4);
    m.run([&](Comm& c) {
      auto da = DistMatrix1D<double>::from_global(c, a);
      auto got = spgemm_1d(c, da, da).gather(c);
      EXPECT_TRUE(approx_equal(got, want, 1e-9)) << dataset_name(d);
    });
  }
}

}  // namespace
}  // namespace sa1d
