// Tests for the AMG substrate: MIS-2, aggregation, restriction operator,
// and the distributed Galerkin product.
#include <gtest/gtest.h>

#include <set>

#include "apps/amg.hpp"
#include "sparse/generators.hpp"

namespace sa1d {
namespace {

/// Checks the two MIS-2 defining properties on the pattern of `a`.
template <typename VT>
void check_mis2(const CscMatrix<VT>& a, const std::vector<index_t>& roots) {
  std::set<index_t> rootset(roots.begin(), roots.end());
  const index_t n = a.ncols();
  // Independence: no two roots within distance 2 (no common neighbour, no edge).
  std::vector<int> near_root(static_cast<std::size_t>(n), 0);
  for (auto r : roots) {
    for (auto u : a.col_rows(r)) {
      if (u != r && rootset.count(u)) FAIL() << "roots " << r << "," << u << " adjacent";
    }
  }
  // Common-neighbour check: each vertex may neighbour at most one root.
  for (index_t v = 0; v < n; ++v) {
    int cnt = 0;
    for (auto u : a.col_rows(v))
      if (u != v && rootset.count(u)) ++cnt;
    EXPECT_LE(cnt, 1) << "vertex " << v << " neighbours " << cnt << " roots";
  }
  // Maximality: every non-root must be within distance 2 of some root.
  std::vector<char> covered(static_cast<std::size_t>(n), 0);
  for (auto r : roots) {
    covered[static_cast<std::size_t>(r)] = 1;
    for (auto u : a.col_rows(r)) {
      covered[static_cast<std::size_t>(u)] = 1;
      for (auto w : a.col_rows(u)) covered[static_cast<std::size_t>(w)] = 1;
    }
  }
  for (index_t v = 0; v < n; ++v) EXPECT_TRUE(covered[static_cast<std::size_t>(v)]) << v;
}

TEST(Mis2, PathGraph) {
  // Path of 7 vertices: a valid MIS-2 spaces roots >= 3 apart.
  CooMatrix<double> m(7, 7);
  for (index_t i = 0; i + 1 < 7; ++i) {
    m.push(i, i + 1, 1.0);
    m.push(i + 1, i, 1.0);
  }
  auto a = CscMatrix<double>::from_coo(m);
  auto roots = mis2(a, 3);
  check_mis2(a, roots);
  EXPECT_GE(roots.size(), 2u);
}

TEST(Mis2, MeshAndRandomGraphs) {
  check_mis2(mesh2d<double>(15), mis2(mesh2d<double>(15), 1));
  auto er = erdos_renyi<double>(300, 4.0, 7, /*symmetric=*/true);
  check_mis2(er, mis2(er, 1));
  auto m3 = mesh3d<double>(7);
  check_mis2(m3, mis2(m3, 2));
}

TEST(Mis2, Deterministic) {
  auto a = mesh2d<double>(10);
  EXPECT_EQ(mis2(a, 5), mis2(a, 5));
}

TEST(Mis2, RejectsRectangular) {
  CscMatrix<double> a(3, 4);
  EXPECT_THROW(mis2(a), std::invalid_argument);
}

TEST(Aggregate, CoversEveryVertexWithValidRoot) {
  auto a = mesh2d<double>(12);
  auto roots = mis2(a, 9);
  auto agg = aggregate_mis2(a, roots);
  for (index_t v = 0; v < a.ncols(); ++v) {
    EXPECT_GE(agg[static_cast<std::size_t>(v)], 0);
  }
  // Roots map to their own aggregate ids.
  for (std::size_t r = 0; r < roots.size(); ++r)
    EXPECT_EQ(agg[static_cast<std::size_t>(roots[r])], static_cast<index_t>(r));
}

TEST(Aggregate, IsolatedVerticesGetSingletons) {
  CooMatrix<double> m(5, 5);
  m.push(0, 1, 1.0);
  m.push(1, 0, 1.0);  // vertices 2,3,4 isolated
  auto a = CscMatrix<double>::from_coo(m);
  auto roots = mis2(a, 1);
  auto agg = aggregate_mis2(a, roots);
  std::set<index_t> ids(agg.begin(), agg.end());
  for (auto v : agg) EXPECT_GE(v, 0);
  // Each isolated vertex must sit alone or be a root itself.
  EXPECT_GE(ids.size(), 3u);
}

TEST(Restriction, OneNonzeroPerRow) {
  // Table III's structural property.
  auto a = mesh3d<double>(6);
  auto r = restriction_operator(a, 11);
  EXPECT_EQ(r.nrows(), a.ncols());
  EXPECT_EQ(r.nnz(), r.nrows());
  auto rt = transpose(r);
  for (index_t row = 0; row < rt.ncols(); ++row) EXPECT_EQ(rt.col_nnz(row), 1);
  // Tall and skinny: many fewer aggregates than vertices.
  EXPECT_LT(r.ncols(), r.nrows() / 3);
  // Every aggregate non-empty (columns of R).
  for (index_t j = 0; j < r.ncols(); ++j) EXPECT_GE(r.col_nnz(j), 1);
}

TEST(Restriction, ValuesAreOnes) {
  auto r = restriction_operator(mesh2d<double>(10), 2);
  for (auto v : r.vals()) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Galerkin, MatchesSerialTripleProduct) {
  auto a = mesh2d<double>(10);
  auto r = restriction_operator(a, 3);
  auto want = spgemm(spgemm(transpose(r), a, LocalKernel::Spa), r, LocalKernel::Spa);
  for (auto right : {RightMultAlgo::SparsityAware1d, RightMultAlgo::OuterProduct1d}) {
    Machine m(4);
    m.run([&](Comm& c) {
      auto res = galerkin_product(c, a, r, {}, right);
      EXPECT_TRUE(approx_equal(res.rtar.gather(c), want, 1e-9));
      EXPECT_TRUE(approx_equal(res.rta.gather(c),
                               spgemm(transpose(r), a, LocalKernel::Spa), 1e-9));
    });
  }
}

TEST(Galerkin, CoarseOperatorKeepsSymmetry) {
  auto a = mesh2d<double>(12);  // symmetric operator
  auto r = restriction_operator(a, 5);
  Machine m(4);
  m.run([&](Comm& c) {
    auto res = galerkin_product(c, a, r);
    auto coarse = res.rtar.gather(c);
    EXPECT_TRUE(approx_equal(coarse, transpose(coarse), 1e-9));
    EXPECT_EQ(coarse.nrows(), r.ncols());
  });
}

TEST(Galerkin, RejectsMismatchedR) {
  auto a = mesh2d<double>(6);
  auto r = restriction_operator(mesh2d<double>(5), 1);
  Machine m(2);
  EXPECT_THROW(m.run([&](Comm& c) { galerkin_product(c, a, r); }), std::invalid_argument);
}

// Small symmetric clustered matrix standing in for the queen dataset.
static CscMatrix<double> make_dataset_for_test() { return mesh3d<double>(5); }

TEST(Galerkin, GalerkinOfDatasetAnalogueRunsAtTinyScale) {
  auto a = make_dataset_for_test();
  auto r = restriction_operator(a, 7);
  auto want = spgemm(spgemm(transpose(r), a, LocalKernel::Spa), r, LocalKernel::Spa);
  Machine m(4);
  m.run([&](Comm& c) {
    auto res = galerkin_product(c, a, r);
    EXPECT_TRUE(approx_equal(res.rtar.gather(c), want, 1e-9));
  });
}

}  // namespace
}  // namespace sa1d
