#!/usr/bin/env bash
# Builds the Release microbench and writes BENCH_local_spgemm.json at the
# repo root (GFLOP/s per kernel × dataset × threads; schema in
# EXPERIMENTS.md). Usage: scripts/bench_local.sh [SA1D_SCALE]
set -euo pipefail

cd "$(dirname "$0")/.."
SCALE="${1:-${SA1D_SCALE:-1}}"
BUILD_DIR=build-bench

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target microbench_local_kernels -j "$(nproc)"

SA1D_SCALE="$SCALE" "./$BUILD_DIR/microbench_local_kernels" \
  --json="$(pwd)/BENCH_local_spgemm.json"
echo "BENCH_local_spgemm.json written (SA1D_SCALE=$SCALE)"
