#!/usr/bin/env bash
# Builds the Release benches and writes the machine-readable perf artifacts
# at the repo root:
#   BENCH_local_spgemm.json    — local-kernel GFLOP/s (microbench; needs
#                                google-benchmark; schema in EXPERIMENTS.md)
#   BENCH_comm_1d.json         — communication trajectory of the 1D pipeline:
#                                fig05 (comm volume / CV / iterated plan-reuse)
#                                + fig06 (block-fetch K sweep), each with exact
#                                RDMA byte+call counts and the plan-vs-execute
#                                time split
#   BENCH_dist_backends.json   — the unified spgemm_dist backend comparison:
#                                fig08 (per-backend phase breakdown + comm
#                                volumes) + fig09 (per-dataset backend ranking,
#                                Auto's pick and per-algo cost predictions vs
#                                the measured winner)
#   BENCH_throughput.json      — fig15 serving throughput: multi-tenant plan
#                                cache + batched small-multiply fusion vs
#                                one-at-a-time, hot/cold hit rate, and the
#                                budget-forced eviction/demotion sections
#   BENCH_memory.json          — fig16 memory-bounded execution: per-backend
#                                peak-triples budget sweep (feasibility, panel
#                                counts, measured peaks, slowdown, bit-identity)
#                                + the Auto feasibility-cliff cell
#   BENCH_partition.json       — partition-aware planning (DESIGN.md §12):
#                                fig04 (per-backend identity-vs-partitioned
#                                iterated totals with reorder cost, edge cut,
#                                amortization series, joint Auto pick,
#                                bit-identity) + fig10 (RᵀA ordering study +
#                                the rectangular-degrade record)
# --refit skips the benches and refits CostParams.flop_s/triple_s from the
# accumulated prediction-vs-measured records already in
# BENCH_dist_backends.json (scripts/fit_cost_params.py). The fitted rates
# land in cost_params.json, which every subsequent bench run here applies
# automatically (exported as SA1D_COST_PARAMS; Machine loads it at
# startup) — the refit loop is closed, no hand-editing. Record refits in
# EXPERIMENTS.md.
# Usage: scripts/bench_local.sh [--comm-only|--local-only|--dist-only|--throughput-only|--partition-only|--memory-only|--refit] [SA1D_SCALE]
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=all
case "${1:-}" in
  --comm-only) MODE=comm; shift ;;
  --local-only) MODE=local; shift ;;
  --dist-only) MODE=dist; shift ;;
  --throughput-only) MODE=throughput; shift ;;
  --partition-only) MODE=partition; shift ;;
  --memory-only) MODE=memory; shift ;;
  --refit) exec python3 scripts/fit_cost_params.py BENCH_dist_backends.json ;;
esac
SCALE="${1:-${SA1D_SCALE:-1}}"
BUILD_DIR=build-bench

# A previous --refit left fitted rates behind: apply them to every bench
# run (Machine reads SA1D_COST_PARAMS at construction).
if [ -z "${SA1D_COST_PARAMS:-}" ] && [ -f cost_params.json ]; then
  export SA1D_COST_PARAMS="$(pwd)/cost_params.json"
  echo "applying refitted cost params from cost_params.json"
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release

if [ "$MODE" = all ] || [ "$MODE" = local ]; then
  cmake --build "$BUILD_DIR" --target microbench_local_kernels -j "$(nproc)"
  SA1D_SCALE="$SCALE" "./$BUILD_DIR/microbench_local_kernels" \
    --json="$(pwd)/BENCH_local_spgemm.json"
  echo "BENCH_local_spgemm.json written (SA1D_SCALE=$SCALE)"
fi

if [ "$MODE" = all ] || [ "$MODE" = comm ]; then
  cmake --build "$BUILD_DIR" --target fig05_comm_volume --target fig06_block_fetch -j "$(nproc)"
  tmpdir="$(mktemp -d)"
  trap 'rm -rf "$tmpdir"' EXIT
  SA1D_SCALE="$SCALE" "./$BUILD_DIR/fig05_comm_volume" --json="$tmpdir/fig05.json"
  SA1D_SCALE="$SCALE" "./$BUILD_DIR/fig06_block_fetch" --json="$tmpdir/fig06.json"
  {
    printf '{\n"bench": "comm_1d",\n"scale": %s,\n"fig05_comm_volume": ' "$SCALE"
    cat "$tmpdir/fig05.json"
    printf ',\n"fig06_block_fetch": '
    cat "$tmpdir/fig06.json"
    printf '}\n'
  } > BENCH_comm_1d.json
  echo "BENCH_comm_1d.json written (SA1D_SCALE=$SCALE)"
fi

if [ "$MODE" = all ] || [ "$MODE" = dist ]; then
  cmake --build "$BUILD_DIR" --target fig08_strong_scaling_breakdown \
    --target fig09_squaring_scaling -j "$(nproc)"
  tmpdir2="$(mktemp -d)"
  trap 'rm -rf "${tmpdir:-}" "$tmpdir2"' EXIT
  SA1D_SCALE="$SCALE" "./$BUILD_DIR/fig08_strong_scaling_breakdown" --json="$tmpdir2/fig08.json"
  SA1D_SCALE="$SCALE" "./$BUILD_DIR/fig09_squaring_scaling" --json="$tmpdir2/fig09.json"
  {
    printf '{\n"bench": "dist_backends",\n"scale": %s,\n"fig08_backend_breakdown": ' "$SCALE"
    cat "$tmpdir2/fig08.json"
    printf ',\n"fig09_backend_compare": '
    cat "$tmpdir2/fig09.json"
    printf '}\n'
  } > BENCH_dist_backends.json
  echo "BENCH_dist_backends.json written (SA1D_SCALE=$SCALE)"
fi

if [ "$MODE" = all ] || [ "$MODE" = partition ]; then
  cmake --build "$BUILD_DIR" --target fig04_permutation_breakdown \
    --target fig10_rta_permutation -j "$(nproc)"
  tmpdir3="$(mktemp -d)"
  trap 'rm -rf "${tmpdir:-}" "${tmpdir2:-}" "$tmpdir3"' EXIT
  SA1D_SCALE="$SCALE" "./$BUILD_DIR/fig04_permutation_breakdown" --json="$tmpdir3/fig04.json"
  SA1D_SCALE="$SCALE" "./$BUILD_DIR/fig10_rta_permutation" --json="$tmpdir3/fig10.json"
  {
    printf '{\n"bench": "partition",\n"scale": %s,\n"fig04_partition_study": ' "$SCALE"
    cat "$tmpdir3/fig04.json"
    printf ',\n"fig10_rta_ordering": '
    cat "$tmpdir3/fig10.json"
    printf '}\n'
  } > BENCH_partition.json
  echo "BENCH_partition.json written (SA1D_SCALE=$SCALE)"
fi

if [ "$MODE" = all ] || [ "$MODE" = throughput ]; then
  cmake --build "$BUILD_DIR" --target fig15_throughput -j "$(nproc)"
  SA1D_SCALE="$SCALE" "./$BUILD_DIR/fig15_throughput" --json="$(pwd)/BENCH_throughput.json"
  echo "BENCH_throughput.json written (SA1D_SCALE=$SCALE)"
fi

if [ "$MODE" = all ] || [ "$MODE" = memory ]; then
  cmake --build "$BUILD_DIR" --target fig16_memory -j "$(nproc)"
  SA1D_SCALE="$SCALE" "./$BUILD_DIR/fig16_memory" --json="$(pwd)/BENCH_memory.json"
  echo "BENCH_memory.json written (SA1D_SCALE=$SCALE)"
fi
