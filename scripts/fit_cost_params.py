#!/usr/bin/env python3
"""Refit CostParams.flop_s / triple_s from accumulated prediction-vs-measured
records in BENCH_dist_backends.json (the cost-model learning loop from
ROADMAP, replacing one-shot calibration).

The cost model's compute terms are linear in the rates —
    predicted comp_s  = flop_s   * comp_coeff(backend, inputs)
    predicted other_s = triple_s * other_coeff(backend, inputs)
— and fig09 --json records both the coefficients (auto.predicted_coeffs)
and the measured comp_ms / other_ms per backend and dataset. Each rate is
then a one-dimensional least-squares problem over all (dataset, backend)
records. The objective is *relative* error — minimize
sum(((rate*coeff_i - measured_i) / measured_i)**2) — because Auto ranks
backends per multiply, so a 2x misprediction on a 1 ms row hurts exactly
as much as on a 1 s row; the closed form is
    rate* = sum(coeff_i/measured_i) / sum((coeff_i/measured_i)**2)

Prints the fitted rates next to the calibration defaults, the before/after
mean relative error of the modeled compute terms, and a CostParams-ready
snippet — and writes them to cost_params.json (--out=PATH overrides,
--no-write skips), which Machine loads at startup when the
SA1D_COST_PARAMS environment variable names it (cost_params_from_env in
runtime/cost_model.hpp). bench_local.sh exports that automatically, so the
refit loop is closed: fit -> cost_params.json -> every subsequent run.
Record refits in EXPERIMENTS.md.

Two more parameters ride the same records:

  imb_scale — the grid backends' compute term is multiplied by an analytic
  even-split imbalance factor; fig09 records the *measured* max/mean
  per-rank compute imbalance (imb_measured) next to the unscaled analytic
  prediction (imb_predicted, CostModel::predicted_imbalance — imb_scale is
  NOT baked in, so the fit is idempotent). Fitting is the same
  relative-LSQ slope, on the excess-over-1 of each: measured-1 =
  imb_scale * (analytic-1). Rows carrying a per-ordering "orderings"
  section (partitioned/random permuted runs) feed the same fit.

  overlap_discount — the fraction of modeled comm time the nonblocking
  engine hides behind compute. Each backend row records overlap_ms (hidden)
  and comm_ms (waited); the discount is the comm-volume-weighted mean of
  overlap_ms/(comm_ms+overlap_ms) across records, i.e. the measured
  overlap efficiency Auto should assume when ranking backends with
  overlap enabled.

Usage: scripts/fit_cost_params.py [BENCH_dist_backends.json]
                                  [--out=cost_params.json] [--no-write]
"""
import json
import sys

# Defaults from runtime/cost_model.hpp (the one-shot calibration targets).
DEFAULT_FLOP_S = 6.0e-9
DEFAULT_TRIPLE_S = 3.0e-8
DEFAULT_IMB_SCALE = 1.0
DEFAULT_OVERLAP_DISCOUNT = 0.0


def collect_records(doc):
    """(dataset, backend, coeff_comp, coeff_other, meas_comp_s, meas_other_s)."""
    rows = doc["fig09_backend_compare"]["rows"]
    records = []
    for row in rows:
        coeffs = row.get("auto", {}).get("predicted_coeffs", {})
        for backend, meas in row["backends"].items():
            co = coeffs.get(backend)
            if not co or co["comp"] < 0:
                continue  # infeasible prediction: nothing to pair
            records.append((row["dataset"], backend, co["comp"], co["other"],
                            meas["comp_ms"] * 1e-3, meas["other_ms"] * 1e-3))
    return records


def fit_rate(pairs):
    """Relative-least-squares slope through the origin for
    measured = rate * coeff (rows with no measurement carry no signal)."""
    scaled = [(c / m) for c, m in pairs if m > 0 and c > 0]
    num = sum(scaled)
    den = sum(s * s for s in scaled)
    return num / den if den > 0 else None


def mean_rel_err(pairs, rate):
    errs = [abs(rate * c - m) / m for c, m in pairs if m > 0]
    return sum(errs) / len(errs) if errs else float("nan")


def fit_imb_scale(doc):
    """Relative-LSQ slope of measured-excess vs analytic-excess imbalance
    over the fig09 grid-backend records (rows predating the overlap series
    lack the fields and carry no signal). Rows with an "orderings" section
    (PR 9) contribute the permuted runs too — partitioned/random orderings
    shift the analytic excess, so they widen the fit's lever arm beyond
    what identity-ordering rows alone provide."""
    pairs = []

    def collect(meas):
        a = meas.get("imb_predicted", 0.0) - 1.0
        m = meas.get("imb_measured", 0.0) - 1.0
        if a > 1e-6 and m > 1e-6:
            pairs.append((a, m))

    for row in doc["fig09_backend_compare"]["rows"]:
        for meas in row["backends"].values():
            collect(meas)
        for per_algo in row.get("orderings", {}).values():
            for meas in per_algo.values():
                collect(meas)
    scale = fit_rate(pairs)
    # Mirror the CostParams clamp so the printed snippet matches what the
    # runtime will actually apply.
    return (max(0.25, min(8.0, scale)), len(pairs)) if scale else (None, 0)


def fit_overlap_discount(doc):
    """Comm-weighted mean measured overlap efficiency across every backend
    record that carries the overlap series."""
    hidden = waited = 0.0
    n = 0
    for row in doc["fig09_backend_compare"]["rows"]:
        for meas in row["backends"].values():
            if "overlap_ms" not in meas:
                continue
            hidden += meas["overlap_ms"]
            waited += meas["comm_ms"]
            n += 1
    tot = hidden + waited
    if n == 0 or tot <= 0:
        return None, 0
    return max(0.0, min(0.95, hidden / tot)), n


def main():
    out_path = "cost_params.json"
    write = True
    args = []
    for a in sys.argv[1:]:
        if a.startswith("--out="):
            out_path = a[len("--out="):]
        elif a == "--no-write":
            write = False
        else:
            args.append(a)
    path = args[0] if args else "BENCH_dist_backends.json"
    with open(path) as f:
        doc = json.load(f)
    records = collect_records(doc)
    if not records:
        sys.exit(f"{path}: no prediction-vs-measured records "
                 "(need fig09 rows with auto.predicted_coeffs)")

    comp_pairs = [(c, m) for _, _, c, _, m, _ in records]
    other_pairs = [(c, m) for _, _, _, c, _, m in records]
    flop_s = fit_rate(comp_pairs)
    triple_s = fit_rate(other_pairs)
    if flop_s is None or triple_s is None:
        sys.exit(f"{path}: every record has a zero-valued measurement or "
                 "coefficient — re-run the bench at a larger SA1D_SCALE so "
                 "the phase times do not round to 0.000 ms")

    print(f"records: {len(records)} (dataset x feasible backend)")
    for name, fitted, default, pairs in (
            ("flop_s", flop_s, DEFAULT_FLOP_S, comp_pairs),
            ("triple_s", triple_s, DEFAULT_TRIPLE_S, other_pairs)):
        before = mean_rel_err(pairs, default)
        after = mean_rel_err(pairs, fitted)
        print(f"{name}: fitted {fitted:.3e}  (default {default:.3e}; "
              f"mean rel err {before:.2%} -> {after:.2%})")

    imb_scale, imb_n = fit_imb_scale(doc)
    discount, ov_n = fit_overlap_discount(doc)
    if imb_scale is not None:
        print(f"imb_scale: fitted {imb_scale:.3f} from {imb_n} grid-backend "
              f"records (default {DEFAULT_IMB_SCALE:.3f})")
    else:
        print("imb_scale: no measured-vs-analytic imbalance records "
              "(re-run bench_local.sh --dist-only); keeping default")
    if discount is not None:
        print(f"overlap_discount: fitted {discount:.3f} from {ov_n} overlap "
              f"records (default {DEFAULT_OVERLAP_DISCOUNT:.3f})")
    else:
        print("overlap_discount: no overlap_ms records "
              "(re-run bench_local.sh --dist-only); keeping default")

    print("\nCostParams snippet:")
    print(f"  params.flop_s = {flop_s:.6e};")
    print(f"  params.triple_s = {triple_s:.6e};")
    fitted = {"flop_s": flop_s, "triple_s": triple_s, "records": len(records)}
    if imb_scale is not None:
        print(f"  params.imb_scale = {imb_scale:.6f};")
        fitted["imb_scale"] = imb_scale
    if discount is not None:
        print(f"  params.overlap_discount = {discount:.6f};")
        fitted["overlap_discount"] = discount
    print(json.dumps(fitted))
    if write:
        with open(out_path, "w") as f:
            json.dump(fitted, f)
            f.write("\n")
        print(f"wrote {out_path} (set SA1D_COST_PARAMS={out_path} to apply; "
              "bench_local.sh exports it automatically)")


if __name__ == "__main__":
    main()
