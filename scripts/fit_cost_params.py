#!/usr/bin/env python3
"""Refit CostParams.flop_s / triple_s from accumulated prediction-vs-measured
records in BENCH_dist_backends.json (the cost-model learning loop from
ROADMAP, replacing one-shot calibration).

The cost model's compute terms are linear in the rates —
    predicted comp_s  = flop_s   * comp_coeff(backend, inputs)
    predicted other_s = triple_s * other_coeff(backend, inputs)
— and fig09 --json records both the coefficients (auto.predicted_coeffs)
and the measured comp_ms / other_ms per backend and dataset. Each rate is
then a one-dimensional least-squares problem over all (dataset, backend)
records. The objective is *relative* error — minimize
sum(((rate*coeff_i - measured_i) / measured_i)**2) — because Auto ranks
backends per multiply, so a 2x misprediction on a 1 ms row hurts exactly
as much as on a 1 s row; the closed form is
    rate* = sum(coeff_i/measured_i) / sum((coeff_i/measured_i)**2)

Prints the fitted rates next to the calibration defaults, the before/after
mean relative error of the modeled compute terms, and a CostParams-ready
snippet — and writes them to cost_params.json (--out=PATH overrides,
--no-write skips), which Machine loads at startup when the
SA1D_COST_PARAMS environment variable names it (cost_params_from_env in
runtime/cost_model.hpp). bench_local.sh exports that automatically, so the
refit loop is closed: fit -> cost_params.json -> every subsequent run.
Record refits in EXPERIMENTS.md.

Usage: scripts/fit_cost_params.py [BENCH_dist_backends.json]
                                  [--out=cost_params.json] [--no-write]
"""
import json
import sys

# Defaults from runtime/cost_model.hpp (the one-shot calibration targets).
DEFAULT_FLOP_S = 6.0e-9
DEFAULT_TRIPLE_S = 3.0e-8


def collect_records(doc):
    """(dataset, backend, coeff_comp, coeff_other, meas_comp_s, meas_other_s)."""
    rows = doc["fig09_backend_compare"]["rows"]
    records = []
    for row in rows:
        coeffs = row.get("auto", {}).get("predicted_coeffs", {})
        for backend, meas in row["backends"].items():
            co = coeffs.get(backend)
            if not co or co["comp"] < 0:
                continue  # infeasible prediction: nothing to pair
            records.append((row["dataset"], backend, co["comp"], co["other"],
                            meas["comp_ms"] * 1e-3, meas["other_ms"] * 1e-3))
    return records


def fit_rate(pairs):
    """Relative-least-squares slope through the origin for
    measured = rate * coeff (rows with no measurement carry no signal)."""
    scaled = [(c / m) for c, m in pairs if m > 0 and c > 0]
    num = sum(scaled)
    den = sum(s * s for s in scaled)
    return num / den if den > 0 else None


def mean_rel_err(pairs, rate):
    errs = [abs(rate * c - m) / m for c, m in pairs if m > 0]
    return sum(errs) / len(errs) if errs else float("nan")


def main():
    out_path = "cost_params.json"
    write = True
    args = []
    for a in sys.argv[1:]:
        if a.startswith("--out="):
            out_path = a[len("--out="):]
        elif a == "--no-write":
            write = False
        else:
            args.append(a)
    path = args[0] if args else "BENCH_dist_backends.json"
    with open(path) as f:
        doc = json.load(f)
    records = collect_records(doc)
    if not records:
        sys.exit(f"{path}: no prediction-vs-measured records "
                 "(need fig09 rows with auto.predicted_coeffs)")

    comp_pairs = [(c, m) for _, _, c, _, m, _ in records]
    other_pairs = [(c, m) for _, _, _, c, _, m in records]
    flop_s = fit_rate(comp_pairs)
    triple_s = fit_rate(other_pairs)
    if flop_s is None or triple_s is None:
        sys.exit(f"{path}: every record has a zero-valued measurement or "
                 "coefficient — re-run the bench at a larger SA1D_SCALE so "
                 "the phase times do not round to 0.000 ms")

    print(f"records: {len(records)} (dataset x feasible backend)")
    for name, fitted, default, pairs in (
            ("flop_s", flop_s, DEFAULT_FLOP_S, comp_pairs),
            ("triple_s", triple_s, DEFAULT_TRIPLE_S, other_pairs)):
        before = mean_rel_err(pairs, default)
        after = mean_rel_err(pairs, fitted)
        print(f"{name}: fitted {fitted:.3e}  (default {default:.3e}; "
              f"mean rel err {before:.2%} -> {after:.2%})")

    print("\nCostParams snippet:")
    print(f"  params.flop_s = {flop_s:.6e};")
    print(f"  params.triple_s = {triple_s:.6e};")
    fitted = {"flop_s": flop_s, "triple_s": triple_s, "records": len(records)}
    print(json.dumps(fitted))
    if write:
        with open(out_path, "w") as f:
            json.dump(fitted, f)
            f.write("\n")
        print(f"wrote {out_path} (set SA1D_COST_PARAMS={out_path} to apply; "
              "bench_local.sh exports it automatically)")


if __name__ == "__main__":
    main()
