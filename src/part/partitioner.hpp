// Multilevel k-way graph partitioner — the from-scratch METIS substitute
// (DESIGN.md §1). Pipeline: heavy-edge-matching coarsening → BFS-grown
// bisection of the coarsest graph → Fiduccia–Mattheyses boundary refinement
// during uncoarsening → recursive bisection for k parts.
//
// The paper feeds METIS vertex weights equal to the *square* of each
// column's nonzero count to balance sparse flops (§III-B); helpers below
// construct exactly that weighting.
#pragma once

#include <span>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/ops.hpp"
#include "util/common.hpp"

namespace sa1d {

/// Undirected graph in CSR adjacency form. No self loops; edges appear in
/// both endpoints' lists with identical weights.
struct Graph {
  index_t n = 0;
  std::vector<index_t> xadj;  // size n+1
  std::vector<index_t> adj;   // neighbour lists
  std::vector<double> ewgt;   // parallel to adj

  [[nodiscard]] index_t degree(index_t v) const {
    return xadj[static_cast<std::size_t>(v) + 1] - xadj[static_cast<std::size_t>(v)];
  }
};

/// Builds the undirected graph of a sparse matrix pattern (A ∪ Aᵀ,
/// diagonal dropped, duplicate edges merged with summed weights).
Graph graph_from_matrix(const CscMatrix<double>& a);

/// The paper's flops-balancing vertex weights: (nnz of column j)².
std::vector<double> flops_vertex_weights(const CscMatrix<double>& a);

struct PartitionOptions {
  int nparts = 2;
  double imbalance = 1.05;    ///< max part weight over perfect balance
  /// Stop coarsening below this many vertices. A larger coarsest graph is
  /// both cheaper (fewer levels) and better for the BFS-grown initial
  /// bisection, which recovers clustered structure more reliably when the
  /// clusters are not collapsed to single vertices.
  index_t coarsen_limit = 256;
  int refine_passes = 4;      ///< FM passes per uncoarsening level
  std::uint64_t seed = 1;
  /// Threads for the two hot loops (coarse-edge accumulation, FM boundary
  /// scan), split by the same degree-prefix idiom as the local engine's
  /// flop_balanced_split. Results are bit-identical for any thread count —
  /// the order-dependent matching and move loops stay sequential.
  int threads = 1;
};

struct PartitionResult {
  std::vector<int> part;             ///< part id per vertex, in [0, nparts)
  double edge_cut = 0;               ///< total weight of cut edges
  std::vector<double> part_weights;  ///< vertex weight per part
};

/// Partitions `g` into nparts balanced-by-vweight parts minimizing edge cut.
PartitionResult partition_graph(const Graph& g, std::span<const double> vweights,
                                const PartitionOptions& opt);

/// Cut weight of an assignment (for tests and diagnostics).
double edge_cut(const Graph& g, std::span<const int> part);

/// Converts a partition into the 1D distribution it induces: a symmetric
/// permutation that makes each part's vertices contiguous (stable within a
/// part to preserve local structure) plus the matching slice boundaries.
struct PartitionLayout {
  Permutation perm;              ///< old id -> new id
  std::vector<index_t> bounds;   ///< P+1 column slice boundaries
};
PartitionLayout partition_to_layout(std::span<const int> part, int nparts);

}  // namespace sa1d
