// Random symmetric permutation (the 2D/3D algorithms' load-balancing
// preprocessing) and the distributed permutation apply used to charge its
// true communication cost. The capture/replay pair below is the ordering
// stage's inspector–executor split: a fresh permute records, per peer, which
// local value slots it ships and where each received value lands in the
// permuted slice, so later calls with the same structure move bare values
// through the cached route — no triples, no canonicalize, no re-partition.
#pragma once

#include "dist/dist_matrix.hpp"
#include "runtime/machine.hpp"
#include "sparse/ops.hpp"
#include "util/rng.hpp"

namespace sa1d {

/// Fisher–Yates random permutation of [0, n).
inline Permutation random_permutation(index_t n, std::uint64_t seed) {
  std::vector<index_t> p(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
  SplitMix64 g(seed);
  for (index_t i = n - 1; i > 0; --i) {
    auto j = static_cast<index_t>(g.below(static_cast<std::uint64_t>(i + 1)));
    std::swap(p[static_cast<std::size_t>(i)], p[static_cast<std::size_t>(j)]);
  }
  return Permutation(std::move(p));
}

/// The cached value-only route of one distributed symmetric permute: for
/// each destination the flat value slots of the source slice it ships (in
/// send order), and for each source the flat slots of the permuted slice
/// its values land in. Structure is a bijection on entries, so the route is
/// exact — replaying it on same-structure operands is bit-identical to a
/// fresh permute.
struct PermuteRoute {
  std::vector<std::vector<index_t>> send_src;  ///< per dest: source value slots
  std::vector<std::vector<index_t>> recv_dst;  ///< per src: destination value slots
  bool captured = false;

  [[nodiscard]] std::uint64_t bytes_resident() const {
    std::uint64_t b = 0;
    for (const auto& v : send_src) b += v.size() * sizeof(index_t);
    for (const auto& v : recv_dst) b += v.size() * sizeof(index_t);
    return b;
  }
};

/// Applies a symmetric permutation to a 1D-distributed matrix by real
/// all-to-all movement (PAPᵀ), landing on `new_bounds` (defaults to an even
/// split). This is the instrumented "permutation time" the paper includes
/// when reporting 2D/3D algorithms with preprocessing cost. Pack/unpack CPU
/// is charged to Phase::Reorder (the ordering stage), the movement itself to
/// the collective's own accounting. `route` non-null captures the value-only
/// replay program (permute_symmetric_replay).
template <typename VT>
DistMatrix1D<VT> permute_symmetric_dist(Comm& comm, const DistMatrix1D<VT>& a,
                                        const Permutation& perm,
                                        std::vector<index_t> new_bounds = {},
                                        PermuteRoute* route = nullptr) {
  require(a.nrows() == a.ncols(), "permute_symmetric_dist: matrix must be square");
  require(perm.size() == a.ncols(), "permute_symmetric_dist: permutation size mismatch");
  const int P = comm.size();
  if (new_bounds.empty()) new_bounds = even_split(a.ncols(), P);

  std::vector<std::vector<Triple<VT>>> send(static_cast<std::size_t>(P));
  std::vector<std::vector<index_t>> send_src;
  if (route != nullptr) send_src.assign(static_cast<std::size_t>(P), {});
  {
    auto ph = comm.phase(Phase::Reorder);
    const auto& al = a.local();
    for (index_t k = 0; k < al.nzc(); ++k) {
      index_t gj = perm(a.col_lo() + al.col_id(k));
      int owner = find_owner(std::span<const index_t>(new_bounds), gj);
      auto rows = al.col_rows_at(k);
      auto vals = al.col_vals_at(k);
      const index_t base = al.cp()[static_cast<std::size_t>(k)];
      for (std::size_t p = 0; p < rows.size(); ++p) {
        send[static_cast<std::size_t>(owner)].push_back({perm(rows[p]), gj, vals[p]});
        if (route != nullptr)
          send_src[static_cast<std::size_t>(owner)].push_back(base + static_cast<index_t>(p));
      }
    }
  }
  auto recv = comm.alltoallv(send);

  auto ph = comm.phase(Phase::Reorder);
  index_t lo = new_bounds[static_cast<std::size_t>(comm.rank())];
  index_t hi = new_bounds[static_cast<std::size_t>(comm.rank()) + 1];
  CooMatrix<VT> coo(a.nrows(), hi - lo);
  for (auto& chunk : recv)
    for (auto& t : chunk) coo.push(t.row, t.col - lo, t.val);
  coo.canonicalize();
  auto out = DistMatrix1D<VT>(a.nrows(), a.ncols(), std::move(new_bounds), comm.rank(),
                              DcscMatrix<VT>::from_coo(coo));
  if (route != nullptr) {
    // Resolve each received triple to its flat value slot in the assembled
    // slice by structural lookup — independent of canonicalize's internal
    // sort order, so the route stays exact even if that changes.
    route->send_src = std::move(send_src);
    route->recv_dst.assign(static_cast<std::size_t>(P), {});
    const auto& ol = out.local();
    for (int s = 0; s < P; ++s) {
      auto& dst = route->recv_dst[static_cast<std::size_t>(s)];
      dst.reserve(recv[static_cast<std::size_t>(s)].size());
      for (const auto& t : recv[static_cast<std::size_t>(s)]) {
        const index_t k = ol.find_col(t.col - out.col_lo());
        require(k >= 0, "permute_symmetric_dist: capture lost a column");
        auto rows = ol.col_rows_at(k);
        auto it = std::lower_bound(rows.begin(), rows.end(), t.row);
        require(it != rows.end() && *it == t.row,
                "permute_symmetric_dist: capture lost an entry");
        dst.push_back(ol.cp()[static_cast<std::size_t>(k)] +
                      static_cast<index_t>(it - rows.begin()));
      }
    }
    route->captured = true;
  }
  return out;
}

/// Value-only replay of a captured permute: packs the source slice's values
/// in the recorded send order, moves bare VT payloads, and overwrites the
/// cached permuted slice's value array in place. Precondition: `src` has
/// the structure the route was captured from (guarded by a cheap count
/// check that fails machine-wide as PlanMismatch — a diverged rank must not
/// enter the alltoallv alone).
template <typename VT>
void permute_symmetric_replay(Comm& comm, const DistMatrix1D<VT>& src,
                              const PermuteRoute& route, DistMatrix1D<VT>& cached) {
  std::uint64_t total = 0;
  for (const auto& v : route.send_src) total += v.size();
  if (!route.captured || total != static_cast<std::uint64_t>(src.local_nnz()))
    comm.fail(FaultClass::PlanMismatch, "permute_replay",
              "permute_symmetric_replay: operand structure diverged from the captured route "
              "(rank " + std::to_string(comm.global_rank(comm.rank())) + ")");
  const int P = comm.size();
  std::vector<std::vector<VT>> send(static_cast<std::size_t>(P));
  {
    auto ph = comm.phase(Phase::Reorder);
    const auto& vals = src.local().vals();
    for (int d = 0; d < P; ++d) {
      const auto& slots = route.send_src[static_cast<std::size_t>(d)];
      auto& out = send[static_cast<std::size_t>(d)];
      out.reserve(slots.size());
      for (auto s : slots) out.push_back(vals[static_cast<std::size_t>(s)]);
    }
  }
  auto recv = comm.alltoallv(send);
  auto ph = comm.phase(Phase::Reorder);
  auto& dst = cached.mutable_local().mutable_vals();
  for (int s = 0; s < P; ++s) {
    const auto& slots = route.recv_dst[static_cast<std::size_t>(s)];
    const auto& chunk = recv[static_cast<std::size_t>(s)];
    require(slots.size() == chunk.size(), "permute_symmetric_replay: route/payload mismatch");
    for (std::size_t i = 0; i < chunk.size(); ++i)
      dst[static_cast<std::size_t>(slots[i])] = chunk[i];
  }
}

}  // namespace sa1d
