// Random symmetric permutation (the 2D/3D algorithms' load-balancing
// preprocessing) and the distributed permutation apply used to charge its
// true communication cost.
#pragma once

#include "dist/dist_matrix.hpp"
#include "runtime/machine.hpp"
#include "sparse/ops.hpp"
#include "util/rng.hpp"

namespace sa1d {

/// Fisher–Yates random permutation of [0, n).
inline Permutation random_permutation(index_t n, std::uint64_t seed) {
  std::vector<index_t> p(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
  SplitMix64 g(seed);
  for (index_t i = n - 1; i > 0; --i) {
    auto j = static_cast<index_t>(g.below(static_cast<std::uint64_t>(i + 1)));
    std::swap(p[static_cast<std::size_t>(i)], p[static_cast<std::size_t>(j)]);
  }
  return Permutation(std::move(p));
}

/// Applies a symmetric permutation to a 1D-distributed matrix by real
/// all-to-all movement (PAPᵀ), landing on `new_bounds` (defaults to an even
/// split). This is the instrumented "permutation time" the paper includes
/// when reporting 2D/3D algorithms with preprocessing cost.
template <typename VT>
DistMatrix1D<VT> permute_symmetric_dist(Comm& comm, const DistMatrix1D<VT>& a,
                                        const Permutation& perm,
                                        std::vector<index_t> new_bounds = {}) {
  require(a.nrows() == a.ncols(), "permute_symmetric_dist: matrix must be square");
  require(perm.size() == a.ncols(), "permute_symmetric_dist: permutation size mismatch");
  const int P = comm.size();
  if (new_bounds.empty()) new_bounds = even_split(a.ncols(), P);

  std::vector<std::vector<Triple<VT>>> send(static_cast<std::size_t>(P));
  {
    auto ph = comm.phase(Phase::Other);
    const auto& al = a.local();
    for (index_t k = 0; k < al.nzc(); ++k) {
      index_t gj = perm(a.col_lo() + al.col_id(k));
      int owner = find_owner(std::span<const index_t>(new_bounds), gj);
      auto rows = al.col_rows_at(k);
      auto vals = al.col_vals_at(k);
      for (std::size_t p = 0; p < rows.size(); ++p)
        send[static_cast<std::size_t>(owner)].push_back({perm(rows[p]), gj, vals[p]});
    }
  }
  auto recv = comm.alltoallv(send);

  auto ph = comm.phase(Phase::Other);
  index_t lo = new_bounds[static_cast<std::size_t>(comm.rank())];
  index_t hi = new_bounds[static_cast<std::size_t>(comm.rank()) + 1];
  CooMatrix<VT> coo(a.nrows(), hi - lo);
  for (auto& chunk : recv)
    for (auto& t : chunk) coo.push(t.row, t.col - lo, t.val);
  coo.canonicalize();
  return DistMatrix1D<VT>(a.nrows(), a.ncols(), std::move(new_bounds), comm.rank(),
                          DcscMatrix<VT>::from_coo(coo));
}

}  // namespace sa1d
