// The reordering plan stage (DESIGN.md §12): replicates the operand's
// structure, runs the multilevel partitioner with the paper's nnz²-weighted
// flops balance (§III-B), and distills the result into the two features the
// cost model prices a partitioned ordering with — the cut fraction (the
// share of adjacency that still crosses rank boundaries after reordering)
// and the measured max/mean part-weight imbalance that replaces the
// analytic even-split term. Everything is SPMD-replicated and deterministic,
// so every rank derives the identical layout with no result broadcast.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "dist/dist_matrix.hpp"
#include "part/partitioner.hpp"
#include "runtime/machine.hpp"
#include "util/timer.hpp"

namespace sa1d {

/// What the ordering stage learned from partitioning the operand structure:
/// the cost-model features of the partitioned ordering (AlgoCostInputs
/// carries them into CostModel::predict).
struct ReorderFeatures {
  double cut_fraction = 1.0;      ///< cut edge weight / total edge weight (1 = no savings)
  double part_imbalance = 1.0;    ///< max/mean part vertex weight (the flops proxy)
  double partition_seconds = 0.0; ///< measured partitioner CPU, max-reduced over ranks
  double edge_cut = 0.0;          ///< absolute cut weight (diagnostics / benches)
};

/// A built reordering plan: the partition-induced 1D layout plus its
/// features. `valid` is false when the operands are ineligible (not square,
/// or fewer columns than ranks) — callers fall back to identity ordering.
struct ReorderPlan {
  PartitionLayout layout;  ///< perm (old id → new id) + P+1 slice bounds
  ReorderFeatures features;
  bool valid = false;
};

/// Builds the ReorderPlan for the square operand `a`. Collective: one
/// pattern allgather (2 index words per nonzero) replicates the structure,
/// then every rank runs the identical deterministic partition. The measured
/// partition seconds are max-reduced so the cost inputs — and therefore the
/// joint (backend × ordering) decision derived from them — are rank-uniform.
/// CPU is charged to Phase::Reorder.
template <typename VT>
ReorderPlan build_reorder_plan(Comm& comm, const DistMatrix1D<VT>& a, int threads,
                               std::uint64_t seed) {
  ReorderPlan plan;
  if (a.nrows() != a.ncols() || a.ncols() < static_cast<index_t>(comm.size())) return plan;

  std::vector<index_t> packed;
  {
    auto ph = comm.phase(Phase::Reorder);
    const auto& al = a.local();
    packed.reserve(2 * static_cast<std::size_t>(al.nnz()));
    for (index_t k = 0; k < al.nzc(); ++k) {
      const index_t gj = a.col_lo() + al.col_id(k);
      for (auto r : al.col_rows_at(k)) {
        packed.push_back(r);
        packed.push_back(gj);
      }
    }
  }
  auto chunks = comm.allgatherv(std::span<const index_t>(packed));

  auto ph = comm.phase(Phase::Reorder);
  CooMatrix<double> coo(a.nrows(), a.ncols());
  for (const auto& ch : chunks)
    for (std::size_t i = 0; i + 1 < ch.size(); i += 2) coo.push(ch[i], ch[i + 1], 1.0);
  coo.canonicalize();
  const auto pattern = CscMatrix<double>::from_coo(coo);

  CpuTimer pt;
  const Graph g = graph_from_matrix(pattern);
  const auto w = flops_vertex_weights(pattern);
  PartitionOptions popt;
  popt.nparts = comm.size();
  popt.seed = seed;
  popt.threads = threads;
  const PartitionResult res = partition_graph(g, w, popt);
  plan.layout = partition_to_layout(res.part, popt.nparts);
  const double local_seconds = pt.seconds();

  double total_ew = 0.0;
  for (auto e : g.ewgt) total_ew += e;
  total_ew /= 2.0;  // each undirected edge appears in both adjacency lists
  plan.features.edge_cut = res.edge_cut;
  plan.features.cut_fraction = total_ew > 0.0 ? res.edge_cut / total_ew : 1.0;
  double mx = 0.0, sum = 0.0;
  for (double pw : res.part_weights) {
    mx = std::max(mx, pw);
    sum += pw;
  }
  plan.features.part_imbalance =
      sum > 0.0 ? mx * static_cast<double>(popt.nparts) / sum : 1.0;
  plan.valid = true;
  plan.features.partition_seconds = comm.allreduce_max(local_seconds);
  return plan;
}

}  // namespace sa1d
