#include "part/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "kernels/spgemm_local.hpp"
#include "util/rng.hpp"

namespace sa1d {

Graph graph_from_matrix(const CscMatrix<double>& a) {
  require(a.nrows() == a.ncols(), "graph_from_matrix: matrix must be square");
  const index_t n = a.ncols();
  // Symmetrize by counting sort — both directions of every off-diagonal
  // entry bucketed by source vertex, then per-vertex duplicate merge with a
  // mark array. O(nnz + n), no comparison sort; neighbour lists come out in
  // first-encounter order, which every consumer treats as opaque.
  std::vector<index_t> cnt(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j)
    for (auto r : a.col_rows(j))
      if (r != j) {
        ++cnt[static_cast<std::size_t>(j) + 1];
        ++cnt[static_cast<std::size_t>(r) + 1];
      }
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) cnt[i + 1] += cnt[i];
  std::vector<index_t> raw(static_cast<std::size_t>(cnt[static_cast<std::size_t>(n)]));
  {
    std::vector<index_t> cursor(cnt.begin(), cnt.end() - 1);
    for (index_t j = 0; j < n; ++j)
      for (auto r : a.col_rows(j))
        if (r != j) {
          raw[static_cast<std::size_t>(cursor[static_cast<std::size_t>(j)]++)] = r;
          raw[static_cast<std::size_t>(cursor[static_cast<std::size_t>(r)]++)] = j;
        }
  }
  Graph g;
  g.n = n;
  g.xadj.assign(static_cast<std::size_t>(n) + 1, 0);
  g.adj.reserve(raw.size());
  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
  for (index_t v = 0; v < n; ++v) {
    for (index_t e = cnt[static_cast<std::size_t>(v)]; e < cnt[static_cast<std::size_t>(v) + 1]; ++e) {
      index_t u = raw[static_cast<std::size_t>(e)];
      if (mark[static_cast<std::size_t>(u)] != v) {
        mark[static_cast<std::size_t>(u)] = v;
        g.adj.push_back(u);
      }
    }
    g.xadj[static_cast<std::size_t>(v) + 1] = static_cast<index_t>(g.adj.size());
  }
  g.ewgt.assign(g.adj.size(), 1.0);
  return g;
}

std::vector<double> flops_vertex_weights(const CscMatrix<double>& a) {
  std::vector<double> w(static_cast<std::size_t>(a.ncols()));
  for (index_t j = 0; j < a.ncols(); ++j) {
    auto d = static_cast<double>(a.col_nnz(j));
    w[static_cast<std::size_t>(j)] = std::max(1.0, d * d);
  }
  return w;
}

double edge_cut(const Graph& g, std::span<const int> part) {
  double cut = 0;
  for (index_t v = 0; v < g.n; ++v)
    for (index_t e = g.xadj[static_cast<std::size_t>(v)];
         e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      index_t u = g.adj[static_cast<std::size_t>(e)];
      if (u > v && part[static_cast<std::size_t>(u)] != part[static_cast<std::size_t>(v)])
        cut += g.ewgt[static_cast<std::size_t>(e)];
    }
  return cut;
}

namespace {

/// One coarsening level: the coarse graph plus the fine→coarse vertex map.
struct Level {
  Graph graph;
  std::vector<double> vwgt;
  std::vector<index_t> fine_to_coarse;
};

/// Heavy-edge matching coarsening step. Returns false if the graph barely
/// shrank (time to stop). The matching itself is order-dependent and stays
/// sequential; the coarse-edge accumulation and per-coarse-vertex merge —
/// the hot loop — run on `threads` threads over contiguous coarse-vertex
/// ranges split by fine-degree prefix, bit-identical for any thread count.
bool coarsen_once(const Graph& g, const std::vector<double>& vwgt, SplitMix64& rng, int threads,
                  Graph& coarse, std::vector<double>& cwgt, std::vector<index_t>& map) {
  const index_t n = g.n;
  std::vector<index_t> match(static_cast<std::size_t>(n), -1);
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  for (index_t i = n - 1; i > 0; --i)
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(i + 1)))]);

  for (index_t oi = 0; oi < n; ++oi) {
    index_t v = order[static_cast<std::size_t>(oi)];
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    index_t best = -1;
    double best_w = -1;
    for (index_t e = g.xadj[static_cast<std::size_t>(v)];
         e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      index_t u = g.adj[static_cast<std::size_t>(e)];
      if (match[static_cast<std::size_t>(u)] != -1) continue;
      if (g.ewgt[static_cast<std::size_t>(e)] > best_w) {
        best_w = g.ewgt[static_cast<std::size_t>(e)];
        best = u;
      }
    }
    match[static_cast<std::size_t>(v)] = (best == -1) ? v : best;
    if (best != -1) match[static_cast<std::size_t>(best)] = v;
  }

  map.assign(static_cast<std::size_t>(n), -1);
  index_t nc = 0;
  for (index_t v = 0; v < n; ++v) {
    if (map[static_cast<std::size_t>(v)] != -1) continue;
    index_t u = match[static_cast<std::size_t>(v)];
    map[static_cast<std::size_t>(v)] = nc;
    map[static_cast<std::size_t>(u)] = nc;
    ++nc;
  }
  if (nc > static_cast<index_t>(0.95 * static_cast<double>(n))) return false;

  cwgt.assign(static_cast<std::size_t>(nc), 0.0);
  for (index_t v = 0; v < n; ++v)
    cwgt[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])] +=
        vwgt[static_cast<std::size_t>(v)];

  // Accumulate coarse edges, merging multi-edges per coarse vertex with a
  // slot-marker table (first-encounter order, O(degree) per coarse vertex —
  // no per-vertex sort). Members of each coarse vertex are listed in
  // ascending fine id — the same visit order as a sequential fine-vertex
  // sweep — so each thread reproduces the serial encounter order and the
  // result is independent of `threads`.
  std::vector<index_t> cstart(static_cast<std::size_t>(nc) + 1, 0);
  for (index_t v = 0; v < n; ++v) ++cstart[static_cast<std::size_t>(map[static_cast<std::size_t>(v)]) + 1];
  for (index_t c = 0; c < nc; ++c) cstart[static_cast<std::size_t>(c) + 1] += cstart[static_cast<std::size_t>(c)];
  std::vector<index_t> members(static_cast<std::size_t>(n));
  {
    std::vector<index_t> cursor(cstart.begin(), cstart.end() - 1);
    for (index_t v = 0; v < n; ++v)
      members[static_cast<std::size_t>(cursor[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])]++)] = v;
  }
  std::vector<index_t> cdeg(static_cast<std::size_t>(nc), 0);
  for (index_t cv = 0; cv < nc; ++cv)
    for (index_t mi = cstart[static_cast<std::size_t>(cv)]; mi < cstart[static_cast<std::size_t>(cv) + 1]; ++mi) {
      index_t v = members[static_cast<std::size_t>(mi)];
      cdeg[static_cast<std::size_t>(cv)] +=
          g.xadj[static_cast<std::size_t>(v) + 1] - g.xadj[static_cast<std::size_t>(v)];
    }

  const int nt = std::max(1, threads);
  const std::vector<index_t> tb = flop_balanced_split(std::span<const index_t>(cdeg), nt);
  struct ThreadOut {
    std::vector<index_t> adj;
    std::vector<double> ewgt;
    std::vector<index_t> cnt;  // merged neighbour count per owned coarse vertex
  };
  std::vector<ThreadOut> outs(static_cast<std::size_t>(nt));
  detail::parallel_for_parts(nt, [&](int t) {
    auto& o = outs[static_cast<std::size_t>(t)];
    const index_t clo = tb[static_cast<std::size_t>(t)], chi = tb[static_cast<std::size_t>(t) + 1];
    o.cnt.assign(static_cast<std::size_t>(chi - clo), 0);
    std::vector<std::pair<index_t, double>> lst;
    std::vector<index_t> slot(static_cast<std::size_t>(nc), -1);
    for (index_t cv = clo; cv < chi; ++cv) {
      lst.clear();
      for (index_t mi = cstart[static_cast<std::size_t>(cv)]; mi < cstart[static_cast<std::size_t>(cv) + 1]; ++mi) {
        index_t v = members[static_cast<std::size_t>(mi)];
        for (index_t e = g.xadj[static_cast<std::size_t>(v)];
             e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
          index_t cu = map[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(e)])];
          if (cu == cv) continue;
          index_t& s = slot[static_cast<std::size_t>(cu)];
          if (s == -1) {
            s = static_cast<index_t>(lst.size());
            lst.emplace_back(cu, g.ewgt[static_cast<std::size_t>(e)]);
          } else {
            lst[static_cast<std::size_t>(s)].second += g.ewgt[static_cast<std::size_t>(e)];
          }
        }
      }
      o.cnt[static_cast<std::size_t>(cv - clo)] = static_cast<index_t>(lst.size());
      for (const auto& [u, sum] : lst) {
        o.adj.push_back(u);
        o.ewgt.push_back(sum);
        slot[static_cast<std::size_t>(u)] = -1;
      }
    }
  });

  coarse.n = nc;
  coarse.xadj.assign(static_cast<std::size_t>(nc) + 1, 0);
  coarse.adj.clear();
  coarse.ewgt.clear();
  std::size_t pos = 0;
  for (int t = 0; t < nt; ++t) {
    const auto& o = outs[static_cast<std::size_t>(t)];
    const index_t clo = tb[static_cast<std::size_t>(t)];
    coarse.adj.insert(coarse.adj.end(), o.adj.begin(), o.adj.end());
    coarse.ewgt.insert(coarse.ewgt.end(), o.ewgt.begin(), o.ewgt.end());
    for (std::size_t i = 0; i < o.cnt.size(); ++i) {
      pos += static_cast<std::size_t>(o.cnt[i]);
      coarse.xadj[static_cast<std::size_t>(clo) + i + 1] = static_cast<index_t>(pos);
    }
  }
  return true;
}

/// BFS region-growing bisection aiming for `target_frac` of total weight
/// on side 0, started from a pseudo-peripheral vertex.
std::vector<int> grow_bisection(const Graph& g, const std::vector<double>& vwgt,
                                double target_frac, SplitMix64& rng) {
  const index_t n = g.n;
  std::vector<int> side(static_cast<std::size_t>(n), 1);
  if (n == 0) return side;
  double total = std::accumulate(vwgt.begin(), vwgt.end(), 0.0);

  auto bfs_far = [&](index_t s) {
    std::vector<int> dist(static_cast<std::size_t>(n), -1);
    std::queue<index_t> q;
    q.push(s);
    dist[static_cast<std::size_t>(s)] = 0;
    index_t last = s;
    while (!q.empty()) {
      index_t v = q.front();
      q.pop();
      last = v;
      for (index_t e = g.xadj[static_cast<std::size_t>(v)];
           e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
        index_t u = g.adj[static_cast<std::size_t>(e)];
        if (dist[static_cast<std::size_t>(u)] == -1) {
          dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
          q.push(u);
        }
      }
    }
    return last;
  };
  index_t start =
      bfs_far(bfs_far(static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)))));

  double goal = target_frac * total;
  double grown = 0;
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::queue<index_t> q;
  q.push(start);
  visited[static_cast<std::size_t>(start)] = 1;
  while (!q.empty() && grown < goal) {
    index_t v = q.front();
    q.pop();
    side[static_cast<std::size_t>(v)] = 0;
    grown += vwgt[static_cast<std::size_t>(v)];
    for (index_t e = g.xadj[static_cast<std::size_t>(v)];
         e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      index_t u = g.adj[static_cast<std::size_t>(e)];
      if (!visited[static_cast<std::size_t>(u)]) {
        visited[static_cast<std::size_t>(u)] = 1;
        q.push(u);
      }
    }
  }
  // Disconnected leftovers: keep growing from unvisited components.
  for (index_t v = 0; v < n && grown < goal; ++v)
    if (side[static_cast<std::size_t>(v)] == 1 && !visited[static_cast<std::size_t>(v)]) {
      side[static_cast<std::size_t>(v)] = 0;
      grown += vwgt[static_cast<std::size_t>(v)];
    }
  return side;
}

/// One FM boundary-refinement pass: greedily moves vertices with positive
/// gain (or balance-restoring moves) between the two sides. The boundary
/// scan — the hot loop on fine levels — runs on `threads` threads over
/// contiguous vertex ranges split by degree prefix; each thread emits its
/// candidates in ascending vertex order and the in-order concatenation
/// reproduces the serial candidate list exactly, so the sorted move order
/// (and hence the partition) is independent of the thread count. The move
/// loop itself is order-dependent and stays sequential.
/// Returns true if any move was made; a pass that moves nothing leaves
/// `side` untouched, so further passes would be identical no-ops and the
/// caller can stop early.
bool fm_refine(const Graph& g, const std::vector<double>& vwgt, std::vector<int>& side,
               double target_frac, double imbalance, int threads) {
  const index_t n = g.n;
  double total = std::accumulate(vwgt.begin(), vwgt.end(), 0.0);
  double w0 = 0;
  for (index_t v = 0; v < n; ++v)
    if (side[static_cast<std::size_t>(v)] == 0) w0 += vwgt[static_cast<std::size_t>(v)];
  const double max0 = target_frac * total * imbalance;
  const double min0 = total - (1.0 - target_frac) * total * imbalance;

  auto gain = [&](index_t v) {
    double ext = 0, in = 0;
    int s = side[static_cast<std::size_t>(v)];
    for (index_t e = g.xadj[static_cast<std::size_t>(v)];
         e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      if (side[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(e)])] == s)
        in += g.ewgt[static_cast<std::size_t>(e)];
      else
        ext += g.ewgt[static_cast<std::size_t>(e)];
    }
    return ext - in;
  };

  const int nt = std::max(1, threads);
  std::vector<index_t> deg(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v)
    deg[static_cast<std::size_t>(v)] =
        g.xadj[static_cast<std::size_t>(v) + 1] - g.xadj[static_cast<std::size_t>(v)];
  const std::vector<index_t> tb = flop_balanced_split(std::span<const index_t>(deg), nt);
  std::vector<std::vector<std::pair<double, index_t>>> parts(static_cast<std::size_t>(nt));
  detail::parallel_for_parts(nt, [&](int t) {
    auto& out = parts[static_cast<std::size_t>(t)];
    for (index_t v = tb[static_cast<std::size_t>(t)]; v < tb[static_cast<std::size_t>(t) + 1]; ++v) {
      bool boundary = false;
      for (index_t e = g.xadj[static_cast<std::size_t>(v)];
           e < g.xadj[static_cast<std::size_t>(v) + 1] && !boundary; ++e)
        boundary = side[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(e)])] !=
                   side[static_cast<std::size_t>(v)];
      if (boundary) out.emplace_back(gain(v), v);
    }
  });
  std::vector<std::pair<double, index_t>> cand;
  for (auto& p : parts) cand.insert(cand.end(), p.begin(), p.end());
  std::sort(cand.begin(), cand.end(), std::greater<>());

  bool moved = false;
  for (const auto& [g0, v] : cand) {
    double cur_gain = gain(v);  // earlier moves may have changed it
    int s = side[static_cast<std::size_t>(v)];
    double wv = vwgt[static_cast<std::size_t>(v)];
    double new_w0 = s == 0 ? w0 - wv : w0 + wv;
    bool balanced = new_w0 <= max0 && new_w0 >= min0;
    bool balance_improves =
        std::abs(new_w0 - target_frac * total) < std::abs(w0 - target_frac * total);
    if ((cur_gain > 0 && balanced) || (cur_gain >= 0 && balance_improves)) {
      side[static_cast<std::size_t>(v)] = 1 - s;
      w0 = new_w0;
      moved = true;
    }
  }
  return moved;
}

/// Multilevel bisection with `target_frac` of weight on side 0.
std::vector<int> multilevel_bisect(const Graph& g, const std::vector<double>& vwgt,
                                   double target_frac, const PartitionOptions& opt,
                                   SplitMix64& rng) {
  std::vector<Level> levels;
  const Graph* cur_g = &g;
  const std::vector<double>* cur_w = &vwgt;
  while (cur_g->n > opt.coarsen_limit) {
    Level lvl;
    if (!coarsen_once(*cur_g, *cur_w, rng, opt.threads, lvl.graph, lvl.vwgt, lvl.fine_to_coarse))
      break;
    levels.push_back(std::move(lvl));
    cur_g = &levels.back().graph;
    cur_w = &levels.back().vwgt;
  }

  std::vector<int> side = grow_bisection(*cur_g, *cur_w, target_frac, rng);
  for (int pass = 0; pass < opt.refine_passes; ++pass)
    if (!fm_refine(*cur_g, *cur_w, side, target_frac, opt.imbalance, opt.threads)) break;

  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const Graph* fine_g = (it + 1 == levels.rend()) ? &g : &(it + 1)->graph;
    const std::vector<double>* fine_w = (it + 1 == levels.rend()) ? &vwgt : &(it + 1)->vwgt;
    std::vector<int> fine_side(static_cast<std::size_t>(fine_g->n));
    for (index_t v = 0; v < fine_g->n; ++v)
      fine_side[static_cast<std::size_t>(v)] =
          side[static_cast<std::size_t>(it->fine_to_coarse[static_cast<std::size_t>(v)])];
    side = std::move(fine_side);
    for (int pass = 0; pass < opt.refine_passes; ++pass)
      if (!fm_refine(*fine_g, *fine_w, side, target_frac, opt.imbalance, opt.threads)) break;
  }
  return side;
}

/// Induced subgraph of vertices with side[v]==which, with parent-id map.
struct SubGraph {
  Graph graph;
  std::vector<double> vwgt;
  std::vector<index_t> to_parent;
};

SubGraph induced_subgraph(const Graph& g, const std::vector<double>& vwgt,
                          const std::vector<int>& side, int which) {
  SubGraph s;
  std::vector<index_t> to_sub(static_cast<std::size_t>(g.n), -1);
  for (index_t v = 0; v < g.n; ++v)
    if (side[static_cast<std::size_t>(v)] == which) {
      to_sub[static_cast<std::size_t>(v)] = static_cast<index_t>(s.to_parent.size());
      s.to_parent.push_back(v);
      s.vwgt.push_back(vwgt[static_cast<std::size_t>(v)]);
    }
  s.graph.n = static_cast<index_t>(s.to_parent.size());
  s.graph.xadj.assign(static_cast<std::size_t>(s.graph.n) + 1, 0);
  for (index_t sv = 0; sv < s.graph.n; ++sv) {
    index_t v = s.to_parent[static_cast<std::size_t>(sv)];
    for (index_t e = g.xadj[static_cast<std::size_t>(v)];
         e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      index_t u = g.adj[static_cast<std::size_t>(e)];
      if (to_sub[static_cast<std::size_t>(u)] != -1) {
        s.graph.adj.push_back(to_sub[static_cast<std::size_t>(u)]);
        s.graph.ewgt.push_back(g.ewgt[static_cast<std::size_t>(e)]);
      }
    }
    s.graph.xadj[static_cast<std::size_t>(sv) + 1] = static_cast<index_t>(s.graph.adj.size());
  }
  return s;
}

void partition_recursive(const Graph& g, const std::vector<double>& vwgt, int nparts,
                         int first_part, const PartitionOptions& opt, SplitMix64& rng,
                         std::span<const index_t> to_parent, std::vector<int>& out) {
  if (nparts == 1) {
    for (index_t v = 0; v < g.n; ++v)
      out[static_cast<std::size_t>(to_parent[static_cast<std::size_t>(v)])] = first_part;
    return;
  }
  int left = nparts / 2;
  double frac = static_cast<double>(left) / static_cast<double>(nparts);
  auto side = multilevel_bisect(g, vwgt, frac, opt, rng);
  for (int which = 0; which < 2; ++which) {
    auto sub = induced_subgraph(g, vwgt, side, which);
    std::vector<index_t> parent_ids(sub.to_parent.size());
    for (std::size_t i = 0; i < sub.to_parent.size(); ++i)
      parent_ids[i] = to_parent[static_cast<std::size_t>(sub.to_parent[i])];
    partition_recursive(sub.graph, sub.vwgt, which == 0 ? left : nparts - left,
                        which == 0 ? first_part : first_part + left, opt, rng, parent_ids, out);
  }
}

}  // namespace

PartitionResult partition_graph(const Graph& g, std::span<const double> vweights,
                                const PartitionOptions& opt) {
  require(opt.nparts >= 1, "partition_graph: nparts must be positive");
  require(static_cast<index_t>(vweights.size()) == g.n,
          "partition_graph: vertex weight size mismatch");
  require(opt.imbalance >= 1.0, "partition_graph: imbalance must be >= 1");

  PartitionResult res;
  res.part.assign(static_cast<std::size_t>(g.n), 0);
  std::vector<double> vw(vweights.begin(), vweights.end());
  SplitMix64 rng(opt.seed);
  std::vector<index_t> ids(static_cast<std::size_t>(g.n));
  std::iota(ids.begin(), ids.end(), index_t{0});
  partition_recursive(g, vw, opt.nparts, 0, opt, rng, ids, res.part);

  res.edge_cut = edge_cut(g, res.part);
  res.part_weights.assign(static_cast<std::size_t>(opt.nparts), 0.0);
  for (index_t v = 0; v < g.n; ++v)
    res.part_weights[static_cast<std::size_t>(res.part[static_cast<std::size_t>(v)])] +=
        vweights[static_cast<std::size_t>(v)];
  return res;
}

PartitionLayout partition_to_layout(std::span<const int> part, int nparts) {
  require(nparts >= 1, "partition_to_layout: nparts must be positive");
  const auto n = static_cast<index_t>(part.size());
  std::vector<index_t> count(static_cast<std::size_t>(nparts) + 1, 0);
  for (auto p : part) {
    require(p >= 0 && p < nparts, "partition_to_layout: part id out of range");
    ++count[static_cast<std::size_t>(p) + 1];
  }
  for (int p = 0; p < nparts; ++p)
    count[static_cast<std::size_t>(p) + 1] += count[static_cast<std::size_t>(p)];
  std::vector<index_t> bounds = count;

  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::vector<index_t> cursor(count.begin(), count.end() - 1);
  for (index_t v = 0; v < n; ++v)
    perm[static_cast<std::size_t>(v)] =
        cursor[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])]++;
  return PartitionLayout{Permutation(std::move(perm)), std::move(bounds)};
}

}  // namespace sa1d
