// Common small utilities shared across sa1d modules.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace sa1d {

/// Default index type. 64-bit throughout, matching the paper's ParMETIS
/// configuration (64-bit indices, double values).
using index_t = std::int64_t;

/// Throws std::invalid_argument with `msg` if `cond` is false.
/// Used for validating public-API arguments (C++ Core Guidelines I.6).
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

/// Checked narrowing conversion for sizes/indices.
template <typename To, typename From>
To checked_cast(From v) {
  auto r = static_cast<To>(v);
  if (static_cast<From>(r) != v) throw std::overflow_error("checked_cast: value out of range");
  return r;
}

/// Exclusive prefix sum: out[i] = sum of in[0..i), out has size in.size()+1.
template <typename T>
std::vector<T> exclusive_scan_vec(std::span<const T> in) {
  std::vector<T> out(in.size() + 1, T{0});
  for (std::size_t i = 0; i < in.size(); ++i) out[i + 1] = out[i] + in[i];
  return out;
}

/// ceil(a / b) for positive integers.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

/// Splits `n` items into `parts` contiguous ranges as evenly as possible.
/// Returns boundaries of size parts+1 with boundaries[0]=0, back()=n.
inline std::vector<index_t> even_split(index_t n, int parts) {
  require(parts > 0, "even_split: parts must be positive");
  std::vector<index_t> b(static_cast<std::size_t>(parts) + 1);
  index_t base = n / parts, rem = n % parts;
  b[0] = 0;
  for (int i = 0; i < parts; ++i) b[i + 1] = b[i] + base + (i < rem ? 1 : 0);
  return b;
}

/// Returns the index of the range in `boundaries` containing `x`
/// (boundaries as produced by even_split; boundaries[i] <= x < boundaries[i+1]).
inline int find_owner(std::span<const index_t> boundaries, index_t x) {
  assert(!boundaries.empty() && x >= boundaries.front() && x < boundaries.back());
  // Binary search over the boundary array.
  std::size_t lo = 0, hi = boundaries.size() - 1;
  while (hi - lo > 1) {
    std::size_t mid = (lo + hi) / 2;
    if (boundaries[mid] <= x)
      lo = mid;
    else
      hi = mid;
  }
  return static_cast<int>(lo);
}

}  // namespace sa1d
