// Dense boolean vector used for the paper's H-vector (nonzero rows of B_i).
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace sa1d {

/// Packed bit vector with O(1) set/test; word-level scan helpers.
/// Represents the dense boolean vector H_i of Algorithm 1.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(index_t n) : n_(n), words_((static_cast<std::size_t>(n) + 63) / 64, 0) {}

  [[nodiscard]] index_t size() const { return n_; }

  void set(index_t i) { words_[static_cast<std::size_t>(i) >> 6] |= 1ULL << (i & 63); }
  void clear(index_t i) { words_[static_cast<std::size_t>(i) >> 6] &= ~(1ULL << (i & 63)); }
  [[nodiscard]] bool test(index_t i) const {
    return (words_[static_cast<std::size_t>(i) >> 6] >> (i & 63)) & 1ULL;
  }

  /// Number of set bits.
  [[nodiscard]] index_t count() const {
    index_t c = 0;
    for (auto w : words_) c += __builtin_popcountll(w);
    return c;
  }

  /// True if any bit in [lo, hi) is set.
  [[nodiscard]] bool any_in_range(index_t lo, index_t hi) const {
    for (index_t i = lo; i < hi; ++i)
      if (test(i)) return true;  // simple; ranges here are short block spans
    return false;
  }

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<index_t> to_indices() const {
    std::vector<index_t> out;
    out.reserve(static_cast<std::size_t>(count()));
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits) {
        int b = __builtin_ctzll(bits);
        out.push_back(static_cast<index_t>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
    return out;
  }

 private:
  index_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace sa1d
