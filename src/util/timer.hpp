// Wall-clock and per-thread CPU timers used for phase breakdowns.
#pragma once

#include <chrono>
#include <ctime>

namespace sa1d {

/// Monotonic wall-clock stopwatch (seconds).
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (seconds). Unlike wall time, this is
/// meaningful when many simulated ranks share one physical core: each
/// rank-thread is only charged for cycles it actually consumed.
class CpuTimer {
 public:
  CpuTimer() : start_(now()) {}
  void reset() { start_ = now(); }
  [[nodiscard]] double seconds() const { return now() - start_; }

  /// Current thread-CPU clock reading (seconds since an arbitrary origin).
  /// The overlap accounting in runtime/machine.hpp timestamps nonblocking
  /// issue/completion pairs on this clock: it only advances while the thread
  /// actually runs, so time spent blocked in a wait is never credited as
  /// compute that hid communication.
  [[nodiscard]] static double now_s() { return now(); }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }
  double start_;
};

}  // namespace sa1d
