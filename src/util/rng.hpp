// Deterministic random number generation. All sa1d generators and
// randomized algorithms take explicit seeds so experiments are reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace sa1d {

/// SplitMix64: tiny, fast, high-quality seeding/stateless hash generator.
/// Used both as an RNG and to derive independent streams from one seed.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Derives an independent child seed (e.g. one stream per rank).
  [[nodiscard]] std::uint64_t fork(std::uint64_t salt) const {
    SplitMix64 g(state_ ^ (salt * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
    return g();
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return (*this)() % n; }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

}  // namespace sa1d
