// Batched approximate betweenness centrality (Brandes 2001, Bader-style
// sampling) in the language of linear algebra, as in the paper's §IV-C:
// the forward multi-source BFS and the backward dependency sweep are both
// SpGEMM calls (the paper's Fig 13/14 workload), with element-wise masking
// between levels. A serial Brandes reference is included for validation.
//
// Edge convention: A(i, j) ≠ 0 is the edge j → i, so frontier expansion is
// F' = A·F and the backward sweep uses Aᵀ — A is always the *fetched*
// operand of the 1D algorithm, F stays stationary.
#pragma once

#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "dist/dist_spgemm.hpp"
#include "sparse/ewise.hpp"
#include "sparse/ops.hpp"
#include "util/rng.hpp"

namespace sa1d {

/// `count` distinct source vertices, deterministic in the seed.
inline std::vector<index_t> pick_sources(index_t n, index_t count, std::uint64_t seed) {
  require(count >= 1 && count <= n, "pick_sources: bad count");
  std::vector<index_t> ids(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  SplitMix64 g(seed);
  for (index_t i = 0; i < count; ++i) {
    auto j = i + static_cast<index_t>(g.below(static_cast<std::uint64_t>(n - i)));
    std::swap(ids[static_cast<std::size_t>(i)], ids[static_cast<std::size_t>(j)]);
  }
  ids.resize(static_cast<std::size_t>(count));
  return ids;
}

/// Serial Brandes from the given sources (unnormalized BC contributions).
template <typename VT>
std::vector<double> brandes_serial(const CscMatrix<VT>& a, std::span<const index_t> sources) {
  require(a.nrows() == a.ncols(), "brandes_serial: matrix must be square");
  const index_t n = a.ncols();
  std::vector<double> bc(static_cast<std::size_t>(n), 0.0);
  std::vector<index_t> dist(static_cast<std::size_t>(n));
  std::vector<double> sigma(static_cast<std::size_t>(n));
  std::vector<double> delta(static_cast<std::size_t>(n));
  std::vector<index_t> stack;
  for (index_t s : sources) {
    std::fill(dist.begin(), dist.end(), index_t{-1});
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    stack.clear();
    std::queue<index_t> q;
    dist[static_cast<std::size_t>(s)] = 0;
    sigma[static_cast<std::size_t>(s)] = 1.0;
    q.push(s);
    while (!q.empty()) {
      index_t v = q.front();
      q.pop();
      stack.push_back(v);
      for (auto w : a.col_rows(v)) {  // edges v -> w
        if (dist[static_cast<std::size_t>(w)] == -1) {
          dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
          q.push(w);
        }
        if (dist[static_cast<std::size_t>(w)] == dist[static_cast<std::size_t>(v)] + 1)
          sigma[static_cast<std::size_t>(w)] += sigma[static_cast<std::size_t>(v)];
      }
    }
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      index_t w = *it;
      for (auto v : a.col_rows(w)) {  // consider edge w -> v; predecessor test below
        // In the reverse direction we need predecessors of w: vertices u with
        // edge u -> w and dist[u] = dist[w] - 1. For symmetric patterns
        // col_rows(w) enumerates both; check the level condition.
        if (dist[static_cast<std::size_t>(v)] + 1 == dist[static_cast<std::size_t>(w)])
          delta[static_cast<std::size_t>(v)] +=
              sigma[static_cast<std::size_t>(v)] / sigma[static_cast<std::size_t>(w)] *
              (1.0 + delta[static_cast<std::size_t>(w)]);
      }
      if (w != s) bc[static_cast<std::size_t>(w)] += delta[static_cast<std::size_t>(w)];
    }
  }
  return bc;
}

/// Per-level transport/compute deltas recorded around each SpGEMM of the
/// BC traversals (one entry per level; rank-local). Fig 13/14's series.
struct BcLevelStat {
  int level = 0;
  bool forward = true;
  double comp_s = 0.0;
  double plan_s = 0.0;  ///< inspector time; 0 when the cached plan was reused
  double other_s = 0.0;
  std::uint64_t rdma_bytes = 0;
  std::uint64_t rdma_msgs = 0;
  std::uint64_t rdma_bytes_inter = 0;
  std::uint64_t rdma_msgs_inter = 0;
  std::uint64_t coll_bytes = 0;  ///< non-RDMA collective traffic
};

namespace bcdetail {

inline BcLevelStat level_delta(int level, bool forward, const RankReport& before,
                               const RankReport& after) {
  BcLevelStat s;
  s.level = level;
  s.forward = forward;
  s.comp_s = after.comp_s - before.comp_s;
  s.plan_s = after.plan_s - before.plan_s;
  s.other_s = after.other_s - before.other_s;
  s.rdma_bytes = after.rdma_bytes - before.rdma_bytes;
  s.rdma_msgs = after.rdma_msgs - before.rdma_msgs;
  s.rdma_bytes_inter = after.rdma_bytes_inter - before.rdma_bytes_inter;
  s.rdma_msgs_inter = after.rdma_msgs_inter - before.rdma_msgs_inter;
  s.coll_bytes = (after.bytes_network() - after.rdma_bytes) -
                 (before.bytes_network() - before.rdma_bytes);
  return s;
}

/// Applies a local CSC transform to a distributed matrix (same bounds).
template <typename F>
DistMatrix1D<double> local_map(const DistMatrix1D<double>& m, F&& f) {
  auto csc = m.local().to_csc();
  return DistMatrix1D<double>(m.nrows(), m.ncols(), m.bounds(), m.rank(),
                              DcscMatrix<double>::from_csc(f(csc)));
}

}  // namespace bcdetail

struct BcOptions {
  Spgemm1dOptions mult;        ///< options for every SpGEMM inside BC
  index_t max_levels = 1000;   ///< safety bound on BFS depth
  /// Distributed backend for the traversal SpGEMMs; every backend keeps the
  /// per-direction cached plans through spgemm_dist_cached.
  Algo backend = Algo::SparseAware1D;
  int layers = 0;              ///< Split3D layer count; 0 = auto
  /// Legacy traversal semiring. The BFS path-count propagation is
  /// PlusSelect2nd (⊗ ignores the 0/1 adjacency value and selects the
  /// frontier value) — the default; setting this runs the original masked
  /// plus-times formulation, which is numerically identical because A is a
  /// pattern (1.0 ⊗ x == x) — the differential test in test_bc.cpp pins
  /// the bit-equality.
  bool plus_times_traversal = false;
};

struct BcResult {
  std::vector<double> scores;          ///< unnormalized BC per vertex
  std::vector<BcLevelStat> level_stats;  ///< per-SpGEMM deltas (rank-local)
  int nlevels = 0;
};

/// One batch of multi-source BFS + backward sweep over the distributed
/// pattern of `a_global`. Collective; sources are replicated. The batch
/// (column) dimension is 1D-distributed; A is the fetched operand.
inline BcResult betweenness_batch(Comm& comm, const CscMatrix<double>& a_global,
                                  std::span<const index_t> sources, const BcOptions& opt = {}) {
  require(a_global.nrows() == a_global.ncols(), "betweenness_batch: matrix must be square");
  const index_t n = a_global.ncols();
  const auto b = static_cast<index_t>(sources.size());
  require(b >= 1, "betweenness_batch: need at least one source");

  BcResult res;
  auto a_pat = to_pattern(a_global);
  auto at_pat = transpose(a_pat);
  auto da = DistMatrix1D<double>::from_global(comm, a_pat);
  auto dat = DistMatrix1D<double>::from_global(comm, at_pat);

  // Seed frontier F(s_j, j) = 1 on the batch columns this rank owns.
  auto fbounds = even_split(b, comm.size());
  index_t blo = fbounds[static_cast<std::size_t>(comm.rank())];
  index_t bhi = fbounds[static_cast<std::size_t>(comm.rank()) + 1];
  CooMatrix<double> seed(n, bhi - blo);
  for (index_t j = blo; j < bhi; ++j) seed.push(sources[static_cast<std::size_t>(j)], j - blo, 1.0);
  seed.canonicalize();
  DistMatrix1D<double> f(n, b, fbounds, comm.rank(), DcscMatrix<double>::from_coo(seed));

  DistMatrix1D<double> sigma = f;    // path counts
  DistMatrix1D<double> visited = f;  // pattern of discovered (v, batch) pairs
  std::vector<DistMatrix1D<double>> frontiers{f};

  // ---- forward multi-source BFS ----
  // One plan slot per traversal direction and semiring: A (resp. Aᵀ) is
  // fixed, so the plan replays whenever consecutive frontiers keep the same
  // structure (saturated levels); structure changes rebuild via the
  // fingerprint vote — through any backend. The traversal semiring is
  // PlusSelect2nd (path counts propagate by summing frontier values along
  // edges; the adjacency value is structural), with the masked plus-times
  // formulation retained behind BcOptions::plus_times_traversal.
  DistSpgemmPlan<double, PlusSelect2nd<double>> fwd_plan, bwd_plan;
  DistSpgemmPlan<double> fwd_plan_pt, bwd_plan_pt;
  DistSpgemmOptions mult{opt.backend, opt.mult, opt.layers};
  int level = 0;
  while (f.global_nnz(comm) > 0 && level < opt.max_levels) {
    ++level;
    RankReport before = comm.report();
    auto next = opt.plus_times_traversal
                    ? spgemm_dist_cached(comm, fwd_plan_pt, da, f, mult)
                    : spgemm_dist_cached<PlusSelect2nd<double>>(comm, fwd_plan, da, f, mult);
    res.level_stats.push_back(bcdetail::level_delta(level, true, before, comm.report()));

    auto ph = comm.phase(Phase::Other);
    // Mask out already-visited vertices, then fold into sigma/visited.
    auto nl = next.local().to_csc();
    auto vl = visited.local().to_csc();
    auto fl = ewise_mask_not(nl, vl);
    f = DistMatrix1D<double>(n, b, fbounds, comm.rank(), DcscMatrix<double>::from_csc(fl));
    sigma = bcdetail::local_map(sigma, [&](const CscMatrix<double>& s) {
      return ewise_add(s, fl);
    });
    visited = bcdetail::local_map(visited, [&](const CscMatrix<double>& v) {
      return ewise_add(v, to_pattern(fl));
    });
    frontiers.push_back(f);
  }
  res.nlevels = level;

  // ---- backward dependency sweep ----
  // Delta starts empty; walk levels deep -> shallow.
  CscMatrix<double> delta_l(n, bhi - blo);  // local slice of Delta
  for (int l = res.nlevels; l >= 1; --l) {
    // W = frontier_l ⊙ (1 + Delta) / Sigma  (on frontier_l's pattern).
    DistMatrix1D<double> w;
    {
      auto ph = comm.phase(Phase::Other);
      auto fl = frontiers[static_cast<std::size_t>(l)].local().to_csc();
      auto sl = sigma.local().to_csc();
      // (1 + delta) on frontier pattern:
      auto one_plus = ewise_apply(fl, [](double) { return 1.0; });
      auto with_delta = ewise_add(one_plus, ewise_intersect(fl, delta_l, [](double, double d) {
                                    return d;
                                  }));
      // Numerators only exist on frontier pattern; divide by sigma there.
      auto wloc = ewise_intersect(with_delta, sl,
                                  [](double num, double sg) { return num / sg; });
      w = DistMatrix1D<double>(n, b, fbounds, comm.rank(), DcscMatrix<double>::from_csc(wloc));
    }

    RankReport before = comm.report();
    // Pull backward: U = Aᵀ · W sums W over edges — PlusSelect2nd again.
    auto u = opt.plus_times_traversal
                 ? spgemm_dist_cached(comm, bwd_plan_pt, dat, w, mult)
                 : spgemm_dist_cached<PlusSelect2nd<double>>(comm, bwd_plan, dat, w, mult);
    res.level_stats.push_back(bcdetail::level_delta(l, false, before, comm.report()));

    auto ph = comm.phase(Phase::Other);
    // Delta += frontier_{l-1} ⊙ Sigma ⊙ U.
    auto fprev = frontiers[static_cast<std::size_t>(l - 1)].local().to_csc();
    auto sl = sigma.local().to_csc();
    auto ul = u.local().to_csc();
    auto masked = ewise_intersect(ewise_intersect(ul, fprev, [](double uu, double) { return uu; }),
                                  sl, [](double uu, double sg) { return uu * sg; });
    delta_l = ewise_add(delta_l, masked);
  }

  // ---- accumulate scores (Brandes excludes each source's own delta) ----
  std::vector<double> local_scores(static_cast<std::size_t>(n), 0.0);
  {
    auto ph = comm.phase(Phase::Other);
    for (index_t j = 0; j < bhi - blo; ++j) {
      index_t s = sources[static_cast<std::size_t>(blo + j)];
      auto rows = delta_l.col_rows(j);
      auto vals = delta_l.col_vals(j);
      for (std::size_t p = 0; p < rows.size(); ++p)
        if (rows[p] != s) local_scores[static_cast<std::size_t>(rows[p])] += vals[p];
    }
  }
  auto all = comm.allgatherv(std::span<const double>(local_scores));
  res.scores.assign(static_cast<std::size_t>(n), 0.0);
  for (const auto& part : all)
    for (std::size_t i = 0; i < part.size(); ++i) res.scores[i] += part[i];
  return res;
}

}  // namespace sa1d
