// Triangle counting in the language of linear algebra (Azad, Buluç,
// Gilbert, IPDPSW 2015 — cited by the paper as an early 1D SpGEMM use case
// whose performance motivated this work). For an undirected graph with
// strict lower-triangular part L, the triangle count is
//     sum( (L · L) .* L )
// each triangle (i > j > k) being counted exactly once by the wedge
// j←k→? ... composed through the masked product.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/dist_spgemm.hpp"
#include "sparse/ewise.hpp"
#include "sparse/ops.hpp"

namespace sa1d {

/// Strict lower-triangular part of a square matrix (pattern-preserving).
template <typename VT>
CscMatrix<VT> lower_triangle(const CscMatrix<VT>& a) {
  require(a.nrows() == a.ncols(), "lower_triangle: matrix must be square");
  std::vector<index_t> colptr{0};
  std::vector<index_t> rows;
  std::vector<VT> vals;
  colptr.reserve(static_cast<std::size_t>(a.ncols()) + 1);
  rows.reserve(static_cast<std::size_t>(a.nnz()) / 2 + 1);
  vals.reserve(static_cast<std::size_t>(a.nnz()) / 2 + 1);
  for (index_t j = 0; j < a.ncols(); ++j) {
    auto r = a.col_rows(j);
    auto v = a.col_vals(j);
    for (std::size_t p = 0; p < r.size(); ++p) {
      if (r[p] > j) {
        rows.push_back(r[p]);
        vals.push_back(v[p]);
      }
    }
    colptr.push_back(static_cast<index_t>(rows.size()));
  }
  return CscMatrix<VT>(a.nrows(), a.ncols(), std::move(colptr), std::move(rows),
                       std::move(vals));
}

/// Serial reference: per-edge sorted-neighbour intersection.
template <typename VT>
std::int64_t count_triangles_serial(const CscMatrix<VT>& a) {
  require(a.nrows() == a.ncols(), "count_triangles_serial: matrix must be square");
  auto l = lower_triangle(to_pattern(a));
  std::int64_t count = 0;
  for (index_t j = 0; j < l.ncols(); ++j) {
    auto nj = l.col_rows(j);  // neighbours of j with id > j
    for (auto k : nj) {
      auto nk = l.col_rows(k);  // neighbours of k with id > k
      // |nj ∩ nk| closes triangles j < k < i.
      std::size_t p = 0, q = 0;
      while (p < nj.size() && q < nk.size()) {
        if (nj[p] < nk[q]) {
          ++p;
        } else if (nk[q] < nj[p]) {
          ++q;
        } else {
          ++count;
          ++p;
          ++q;
        }
      }
    }
  }
  return count;
}

/// Distributed triangle count on any spgemm_dist backend: B = L·L, then
/// the L-masked sum. Collective; every rank returns the global count.
template <typename VT>
std::int64_t count_triangles_dist(Comm& comm, const CscMatrix<VT>& a,
                                  const DistSpgemmOptions& opt = {}) {
  require(a.nrows() == a.ncols(), "count_triangles_dist: matrix must be square");
  auto l = lower_triangle(to_pattern(a));
  auto dl = DistMatrix1D<double>::from_global(comm, l);
  // Triangle counting multiplies exactly once per graph, and the count is a
  // pure function of the pattern — there is no value-refresh iteration for
  // a DistSpgemmPlan to amortize, so unlike the MCL/BC/AMG loops this stays
  // on the one-shot dispatch.
  auto db = spgemm_dist(comm, dl, dl, opt);

  // Local masked sum: entries of B = L·L that are also edges of L.
  double local = 0;
  {
    auto ph = comm.phase(Phase::Other);
    auto b_local = db.local().to_csc();
    auto l_slice = extract_cols(l, db.col_lo(), db.col_hi());
    auto masked =
        ewise_intersect(b_local, l_slice, [](double wedges, double) { return wedges; });
    for (auto v : masked.vals()) local += v;
  }
  double total = comm.allreduce_sum(local);
  return static_cast<std::int64_t>(total + 0.5);
}

/// Sparsity-aware-1D convenience wrapper (the original entry point).
template <typename VT>
std::int64_t count_triangles_1d(Comm& comm, const CscMatrix<VT>& a,
                                const Spgemm1dOptions& opt = {}) {
  return count_triangles_dist(comm, a, DistSpgemmOptions{Algo::SparseAware1D, opt, 0});
}

}  // namespace sa1d
