// Markov Cluster algorithm (van Dongen 2000; HipMCL is the paper's flagship
// squaring workload): alternate expansion (M ← M², the distributed SpGEMM
// bottleneck), inflation (entry-wise power + column normalization), and
// pruning, until the matrix reaches a (near-)idempotent attractor state;
// clusters are the weakly connected components of the attractor pattern.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "dist/dist_spgemm.hpp"
#include "sparse/ewise.hpp"
#include "sparse/ops.hpp"

namespace sa1d {

struct MclOptions {
  double inflation = 2.0;       ///< entry-wise exponent (MCL's r parameter)
  double prune_threshold = 1e-4;///< drop entries below this after inflation
  int max_iterations = 64;
  double convergence_eps = 1e-6;///< max |M - M_prev| entry change to stop
  Spgemm1dOptions mult;         ///< options for the expansion SpGEMM
  /// Distributed backend for the expansion (the paper's comparative knob);
  /// SparseAware1D keeps the cached-plan fast path.
  Algo backend = Algo::SparseAware1D;
  int layers = 0;               ///< Split3D layer count; 0 = auto
};

struct MclResult {
  std::vector<index_t> cluster;  ///< cluster id per vertex
  index_t nclusters = 0;
  int iterations = 0;
  bool converged = false;
};

namespace mcldetail {

/// Column-stochastic normalization with inflation and pruning (local op).
template <typename VT>
CscMatrix<VT> inflate_prune(const CscMatrix<VT>& m, double r, double prune) {
  std::vector<index_t> colptr{0};
  std::vector<index_t> rows;
  std::vector<VT> vals;
  colptr.reserve(static_cast<std::size_t>(m.ncols()) + 1);
  rows.reserve(static_cast<std::size_t>(m.nnz()));
  vals.reserve(static_cast<std::size_t>(m.nnz()));
  for (index_t j = 0; j < m.ncols(); ++j) {
    auto cr = m.col_rows(j);
    auto cv = m.col_vals(j);
    double sum = 0;
    for (std::size_t p = 0; p < cr.size(); ++p) sum += std::pow(std::abs(cv[p]), r);
    if (sum > 0) {
      for (std::size_t p = 0; p < cr.size(); ++p) {
        double v = std::pow(std::abs(cv[p]), r) / sum;
        if (v >= prune) {
          rows.push_back(cr[p]);
          vals.push_back(static_cast<VT>(v));
        }
      }
    }
    colptr.push_back(static_cast<index_t>(rows.size()));
  }
  return CscMatrix<VT>(m.nrows(), m.ncols(), std::move(colptr), std::move(rows),
                       std::move(vals));
}

/// Weakly connected components of a pattern (union-find).
inline std::vector<index_t> components(const CscMatrix<double>& m, index_t* count) {
  const index_t n = m.ncols();
  std::vector<index_t> parent(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
  std::function<index_t(index_t)> find = [&](index_t x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (index_t j = 0; j < n; ++j)
    for (auto r : m.col_rows(j)) {
      index_t a = find(r), b = find(j);
      if (a != b) parent[static_cast<std::size_t>(a)] = b;
    }
  std::vector<index_t> label(static_cast<std::size_t>(n), -1);
  index_t next = 0;
  std::vector<index_t> out(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    index_t root = find(i);
    if (label[static_cast<std::size_t>(root)] == -1) label[static_cast<std::size_t>(root)] = next++;
    out[static_cast<std::size_t>(i)] = label[static_cast<std::size_t>(root)];
  }
  if (count != nullptr) *count = next;
  return out;
}

}  // namespace mcldetail

/// Distributed MCL on the pattern of `a_global` (self-loops added as the
/// algorithm requires). Expansion runs on the sparsity-aware 1D SpGEMM;
/// inflation/pruning are local to each rank's column slice. Collective;
/// all ranks return the same clustering.
inline MclResult mcl_cluster(Comm& comm, const CscMatrix<double>& a_global,
                             const MclOptions& opt = {}) {
  require(a_global.nrows() == a_global.ncols(), "mcl_cluster: matrix must be square");
  require(opt.inflation > 1.0, "mcl_cluster: inflation must exceed 1");
  const index_t n = a_global.ncols();

  // Initial stochastic matrix: pattern + self loops, column-normalized.
  CscMatrix<double> m0;
  {
    auto coo = to_pattern(a_global).to_coo();
    for (index_t i = 0; i < n; ++i) coo.push(i, i, 1.0);
    coo.canonicalize();
    m0 = mcldetail::inflate_prune(CscMatrix<double>::from_coo(coo), 1.0, 0.0);
  }

  auto dm = DistMatrix1D<double>::from_global(comm, m0);
  MclResult res;
  // Expansion plan, reused across rounds *whichever backend runs*: pruning
  // changes M's structure in early rounds (each change rebuilds), but as
  // the iteration approaches its attractor the pattern freezes and the
  // cached plan replays value-only — zero metadata collectives, zero
  // Phase::Plan work, for SA-1D and the grid backends alike.
  DistSpgemmPlan<double> expansion;
  DistSpgemmOptions mult{opt.backend, opt.mult, opt.layers};
  // MCL declares its round budget: under Algo::Auto the expansion plan is
  // priced over the whole horizon (one build + max_iterations−1 value-only
  // replays), so the build lands on the replay-optimal backend.
  mult.expected_iterations = opt.max_iterations;
  for (int it = 0; it < opt.max_iterations; ++it) {
    res.iterations = it + 1;
    auto expanded = spgemm_dist_cached(comm, expansion, dm, dm, mult);
    CscMatrix<double> next_local;
    double local_change = 0;
    {
      auto ph = comm.phase(Phase::Other);
      next_local = mcldetail::inflate_prune(expanded.local().to_csc(), opt.inflation,
                                            opt.prune_threshold);
      // Convergence: max entry-wise change vs. the previous iterate.
      auto prev_local = dm.local().to_csc();
      auto diff = ewise_add(next_local, ewise_apply(prev_local, [](double v) { return -v; }));
      for (auto v : diff.vals()) local_change = std::max(local_change, std::abs(v));
    }
    dm = DistMatrix1D<double>(n, n, dm.bounds(), comm.rank(),
                              DcscMatrix<double>::from_csc(next_local));
    double change = comm.allreduce_max(local_change);
    if (change < opt.convergence_eps) {
      res.converged = true;
      break;
    }
  }

  // Clusters = weakly connected components of the attractor pattern.
  auto attractor = dm.gather(comm);
  res.cluster = mcldetail::components(attractor, &res.nclusters);
  return res;
}

}  // namespace sa1d
