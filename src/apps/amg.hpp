// Algebraic-multigrid substrate (paper §II-C.2 and §IV-B): distance-2
// maximal independent set, aggregation, the restriction operator R, and the
// Galerkin product RᵀA·R computed with the distributed 1D algorithms.
//
// R follows the paper's Table III convention: R is n×nagg and every row has
// exactly one nonzero (each fine vertex belongs to exactly one aggregate).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/outer_product.hpp"
#include "dist/dist_spgemm.hpp"
#include "sparse/csc.hpp"
#include "sparse/ops.hpp"
#include "util/rng.hpp"

namespace sa1d {

/// Greedy distance-2 maximal independent set on the graph of A (pattern,
/// diagonal ignored): no two selected vertices share a neighbour, and no
/// further vertex can be added. Deterministic given the seed.
template <typename VT>
std::vector<index_t> mis2(const CscMatrix<VT>& a, std::uint64_t seed = 1) {
  require(a.nrows() == a.ncols(), "mis2: matrix must be square");
  const index_t n = a.ncols();
  std::vector<index_t> order(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  SplitMix64 rng(seed);
  for (index_t i = n - 1; i > 0; --i)
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(i + 1)))]);

  std::vector<char> blocked(static_cast<std::size_t>(n), 0);
  std::vector<index_t> roots;
  for (index_t oi = 0; oi < n; ++oi) {
    index_t v = order[static_cast<std::size_t>(oi)];
    if (blocked[static_cast<std::size_t>(v)]) continue;
    roots.push_back(v);
    blocked[static_cast<std::size_t>(v)] = 1;
    // Block everything within distance 2.
    for (auto u : a.col_rows(v)) {
      blocked[static_cast<std::size_t>(u)] = 1;
      for (auto w : a.col_rows(u)) blocked[static_cast<std::size_t>(w)] = 1;
    }
  }
  std::sort(roots.begin(), roots.end());
  return roots;
}

/// Aggregates every vertex to its nearest MIS-2 root (two BFS rounds; MIS-2
/// maximality guarantees full coverage). Returns agg[v] in [0, nroots).
template <typename VT>
std::vector<index_t> aggregate_mis2(const CscMatrix<VT>& a, const std::vector<index_t>& roots) {
  const index_t n = a.ncols();
  std::vector<index_t> agg(static_cast<std::size_t>(n), -1);
  for (std::size_t r = 0; r < roots.size(); ++r)
    agg[static_cast<std::size_t>(roots[r])] = static_cast<index_t>(r);
  // Round 1: distance-1 neighbours; Round 2: distance-2.
  for (int round = 0; round < 2; ++round) {
    std::vector<index_t> next = agg;
    for (index_t v = 0; v < n; ++v) {
      if (agg[static_cast<std::size_t>(v)] != -1) continue;
      for (auto u : a.col_rows(v)) {
        if (agg[static_cast<std::size_t>(u)] != -1) {
          next[static_cast<std::size_t>(v)] = agg[static_cast<std::size_t>(u)];
          break;
        }
      }
    }
    agg = std::move(next);
  }
  // Isolated leftovers (no edges at all): make singleton aggregates.
  index_t extra = static_cast<index_t>(roots.size());
  for (index_t v = 0; v < n; ++v)
    if (agg[static_cast<std::size_t>(v)] == -1) agg[static_cast<std::size_t>(v)] = extra++;
  return agg;
}

/// Builds the restriction operator from an aggregation map: R is n×nagg
/// with R(v, agg[v]) = 1 — one nonzero per row (Table III's property).
inline CscMatrix<double> restriction_from_aggregates(const std::vector<index_t>& agg) {
  const auto n = static_cast<index_t>(agg.size());
  index_t nagg = 0;
  for (auto a : agg) nagg = std::max(nagg, a + 1);
  CooMatrix<double> coo(n, nagg);
  for (index_t v = 0; v < n; ++v) coo.push(v, agg[static_cast<std::size_t>(v)], 1.0);
  coo.canonicalize();
  return CscMatrix<double>::from_coo(coo);
}

/// Convenience: MIS-2 → aggregation → R for a symmetric matrix.
template <typename VT>
CscMatrix<double> restriction_operator(const CscMatrix<VT>& a, std::uint64_t seed = 1) {
  auto roots = mis2(a, seed);
  return restriction_from_aggregates(aggregate_mis2(a, roots));
}

/// Which algorithm computes the right multiplication (RᵀA)·R.
enum class RightMultAlgo { SparsityAware1d, OuterProduct1d };

struct GalerkinResult {
  DistMatrix1D<double> rta;   ///< RᵀA  (nagg × n), 1D distributed
  DistMatrix1D<double> rtar;  ///< RᵀAR (nagg × nagg), 1D distributed
};

/// Cached-plan Galerkin product. The restriction operator R is fixed per
/// AMG setup, and the symbolic structure of RᵀA (and of (RᵀA)·R) depends
/// only on the sparsity patterns of Rᵀ, A, R — so both sparsity-aware
/// multiplies hold one SpgemmPlan1D each and replay it every time the
/// operator is recomputed over an unchanged pattern (time-stepping,
/// Newton/Jacobian refresh: new values, frozen hierarchy). A structure
/// change is detected by the plans' fingerprints and triggers a replan.
class GalerkinOperator {
 public:
  /// Collective. Distributes Rᵀ and R; no multiply happens yet. `backend`
  /// selects the distributed algorithm for the SpGEMM-routed multiplies
  /// (the left multiply always, the right one unless RightMultAlgo says
  /// outer-product); SparseAware1D keeps the cached-plan fast path.
  /// `expected_refreshes` (optional) declares how many operator recomputes
  /// the caller expects over an unchanged hierarchy (time steps, Jacobian
  /// refreshes): > 1 makes an Auto backend price the cached plans over that
  /// horizon and build onto the replay-optimal backend.
  GalerkinOperator(Comm& comm, const CscMatrix<double>& r_global,
                   const Spgemm1dOptions& opt = {},
                   RightMultAlgo right = RightMultAlgo::OuterProduct1d,
                   Algo backend = Algo::SparseAware1D, int layers = 0,
                   int expected_refreshes = 0)
      : opt_{backend, opt, layers}, right_(right) {
    opt_.expected_iterations = expected_refreshes;
    rt_ = DistMatrix1D<double>::from_global(comm, transpose(r_global));
    r_ = DistMatrix1D<double>::from_global(comm, r_global);
  }

  /// Computes RᵀAR for the given A (collective). First call builds the
  /// plans; later calls with the same A pattern replay them value-only —
  /// through whichever backend `opt_.algo` selects.
  GalerkinResult compute(Comm& comm, const CscMatrix<double>& a_global) {
    require(a_global.nrows() == a_global.ncols(), "GalerkinOperator: A must be square");
    require(rt_.ncols() == a_global.nrows(), "GalerkinOperator: R/A dimension mismatch");
    auto a = DistMatrix1D<double>::from_global(comm, a_global);

    GalerkinResult res;
    res.rta = spgemm_dist_cached(comm, plan_rta_, rt_, a, opt_);
    if (right_ == RightMultAlgo::SparsityAware1d) {
      res.rtar = spgemm_dist_cached(comm, plan_rtar_, res.rta, r_, opt_);
    } else {
      // Forward the local-kernel configuration: the outer product runs the
      // same two-phase local engine as the sparsity-aware path.
      res.rtar = spgemm_outer_product_1d(comm, res.rta, r_,
                                         OuterProductOptions{opt_.sa1d.kernel,
                                                             opt_.sa1d.threads});
    }
    return res;
  }

 private:
  DistSpgemmOptions opt_;
  RightMultAlgo right_;
  DistMatrix1D<double> rt_, r_;
  DistSpgemmPlan<double> plan_rta_, plan_rtar_;
};

/// Distributed Galerkin product RᵀAR (the AMG bottleneck the paper targets).
/// `backend` selects the distributed algorithm for the SpGEMM-routed
/// multiplies (left always; right too unless RightMultAlgo picks the
/// outer product — Fig 12 compares the two right-multiply algorithms).
/// One-shot wrapper over GalerkinOperator; setups that recompute the
/// product should hold the operator and call compute() per refresh.
inline GalerkinResult galerkin_product(Comm& comm, const CscMatrix<double>& a_global,
                                       const CscMatrix<double>& r_global,
                                       const Spgemm1dOptions& opt = {},
                                       RightMultAlgo right = RightMultAlgo::OuterProduct1d,
                                       Algo backend = Algo::SparseAware1D, int layers = 0) {
  require(r_global.nrows() == a_global.ncols(), "galerkin_product: R/A dimension mismatch");
  GalerkinOperator op(comm, r_global, opt, right, backend, layers);
  return op.compute(comm, a_global);
}

}  // namespace sa1d
