// Compressed Sparse Column format: the workhorse local format for kernels.
#pragma once

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "util/common.hpp"

namespace sa1d {

/// CSC sparse matrix. Rows within each column are sorted ascending.
template <typename VT = double>
class CscMatrix {
 public:
  using value_type = VT;

  CscMatrix() : colptr_(1, 0) {}
  CscMatrix(index_t nrows, index_t ncols)
      : nrows_(nrows), ncols_(ncols), colptr_(static_cast<std::size_t>(ncols) + 1, 0) {
    require(nrows >= 0 && ncols >= 0, "CscMatrix: negative dimension");
  }

  /// Builds from raw arrays (takes ownership). Validates structure.
  CscMatrix(index_t nrows, index_t ncols, std::vector<index_t> colptr,
            std::vector<index_t> rowids, std::vector<VT> vals)
      : nrows_(nrows),
        ncols_(ncols),
        colptr_(std::move(colptr)),
        rowids_(std::move(rowids)),
        vals_(std::move(vals)) {
    require(colptr_.size() == static_cast<std::size_t>(ncols) + 1, "CscMatrix: bad colptr size");
    require(rowids_.size() == vals_.size(), "CscMatrix: rowids/vals size mismatch");
    require(colptr_.front() == 0 && colptr_.back() == static_cast<index_t>(rowids_.size()),
            "CscMatrix: bad colptr bounds");
  }

  /// Conversion from canonical COO (sorts a copy if needed).
  static CscMatrix from_coo(const CooMatrix<VT>& coo) {
    CooMatrix<VT> c = coo;
    if (!c.is_canonical()) c.canonicalize();
    CscMatrix out(c.nrows(), c.ncols());
    out.rowids_.reserve(static_cast<std::size_t>(c.nnz()));
    out.vals_.reserve(static_cast<std::size_t>(c.nnz()));
    for (const auto& t : c.triples()) {
      ++out.colptr_[static_cast<std::size_t>(t.col) + 1];
      out.rowids_.push_back(t.row);
      out.vals_.push_back(t.val);
    }
    for (std::size_t j = 0; j < static_cast<std::size_t>(c.ncols()); ++j)
      out.colptr_[j + 1] += out.colptr_[j];
    return out;
  }

  [[nodiscard]] CooMatrix<VT> to_coo() const {
    CooMatrix<VT> out(nrows_, ncols_);
    for (index_t j = 0; j < ncols_; ++j)
      for (index_t p = colptr_[static_cast<std::size_t>(j)];
           p < colptr_[static_cast<std::size_t>(j) + 1]; ++p)
        out.push(rowids_[static_cast<std::size_t>(p)], j, vals_[static_cast<std::size_t>(p)]);
    return out;
  }

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] index_t nnz() const { return static_cast<index_t>(rowids_.size()); }

  /// Number of columns containing at least one nonzero (paper: nzc(A)).
  [[nodiscard]] index_t nzc() const {
    index_t c = 0;
    for (index_t j = 0; j < ncols_; ++j)
      if (col_nnz(j) > 0) ++c;
    return c;
  }

  [[nodiscard]] index_t col_nnz(index_t j) const {
    return colptr_[static_cast<std::size_t>(j) + 1] - colptr_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] std::span<const index_t> col_rows(index_t j) const {
    return {rowids_.data() + colptr_[static_cast<std::size_t>(j)],
            static_cast<std::size_t>(col_nnz(j))};
  }
  [[nodiscard]] std::span<const VT> col_vals(index_t j) const {
    return {vals_.data() + colptr_[static_cast<std::size_t>(j)],
            static_cast<std::size_t>(col_nnz(j))};
  }

  [[nodiscard]] const std::vector<index_t>& colptr() const { return colptr_; }
  [[nodiscard]] const std::vector<index_t>& rowids() const { return rowids_; }
  [[nodiscard]] const std::vector<VT>& vals() const { return vals_; }
  /// Mutable view of the value array only — the structure (colptr/rowids)
  /// stays fixed. Lets the inspector–executor replay overwrite values in
  /// place between numeric passes instead of rebuilding the matrix.
  [[nodiscard]] std::vector<VT>& mutable_vals() { return vals_; }

  friend bool operator==(const CscMatrix& a, const CscMatrix& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ && a.colptr_ == b.colptr_ &&
           a.rowids_ == b.rowids_ && a.vals_ == b.vals_;
  }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<index_t> colptr_;
  std::vector<index_t> rowids_;
  std::vector<VT> vals_;
};

}  // namespace sa1d
