// Element-wise sparse matrix operations (CombBLAS-style EWiseMult/Apply):
// the masking and scaling primitives the betweenness-centrality traversals
// are built from. All operate column-by-column on sorted CSC.
#pragma once

#include <functional>

#include "sparse/csc.hpp"
#include "util/common.hpp"

namespace sa1d {

/// C = A + B (union of patterns, values added where both present).
template <typename VT>
CscMatrix<VT> ewise_add(const CscMatrix<VT>& a, const CscMatrix<VT>& b) {
  require(a.nrows() == b.nrows() && a.ncols() == b.ncols(), "ewise_add: shape mismatch");
  std::vector<index_t> colptr{0};
  std::vector<index_t> rows;
  std::vector<VT> vals;
  for (index_t j = 0; j < a.ncols(); ++j) {
    auto ar = a.col_rows(j);
    auto av = a.col_vals(j);
    auto br = b.col_rows(j);
    auto bv = b.col_vals(j);
    std::size_t i = 0, k = 0;
    while (i < ar.size() || k < br.size()) {
      if (k == br.size() || (i < ar.size() && ar[i] < br[k])) {
        rows.push_back(ar[i]);
        vals.push_back(av[i]);
        ++i;
      } else if (i == ar.size() || br[k] < ar[i]) {
        rows.push_back(br[k]);
        vals.push_back(bv[k]);
        ++k;
      } else {
        rows.push_back(ar[i]);
        vals.push_back(av[i] + bv[k]);
        ++i;
        ++k;
      }
    }
    colptr.push_back(static_cast<index_t>(rows.size()));
  }
  return CscMatrix<VT>(a.nrows(), a.ncols(), std::move(colptr), std::move(rows),
                       std::move(vals));
}

/// C = A restricted to positions NOT present in `mask` (pattern difference).
/// The BFS "remove already-visited vertices" step.
template <typename VT, typename MT>
CscMatrix<VT> ewise_mask_not(const CscMatrix<VT>& a, const CscMatrix<MT>& mask) {
  require(a.nrows() == mask.nrows() && a.ncols() == mask.ncols(),
          "ewise_mask_not: shape mismatch");
  std::vector<index_t> colptr{0};
  std::vector<index_t> rows;
  std::vector<VT> vals;
  for (index_t j = 0; j < a.ncols(); ++j) {
    auto ar = a.col_rows(j);
    auto av = a.col_vals(j);
    auto mr = mask.col_rows(j);
    std::size_t k = 0;
    for (std::size_t i = 0; i < ar.size(); ++i) {
      while (k < mr.size() && mr[k] < ar[i]) ++k;
      if (k < mr.size() && mr[k] == ar[i]) continue;
      rows.push_back(ar[i]);
      vals.push_back(av[i]);
    }
    colptr.push_back(static_cast<index_t>(rows.size()));
  }
  return CscMatrix<VT>(a.nrows(), a.ncols(), std::move(colptr), std::move(rows),
                       std::move(vals));
}

/// C = f(A, B) on the pattern intersection (EWiseMult-style).
template <typename VT, typename F>
CscMatrix<VT> ewise_intersect(const CscMatrix<VT>& a, const CscMatrix<VT>& b, F&& f) {
  require(a.nrows() == b.nrows() && a.ncols() == b.ncols(), "ewise_intersect: shape mismatch");
  std::vector<index_t> colptr{0};
  std::vector<index_t> rows;
  std::vector<VT> vals;
  for (index_t j = 0; j < a.ncols(); ++j) {
    auto ar = a.col_rows(j);
    auto av = a.col_vals(j);
    auto br = b.col_rows(j);
    auto bv = b.col_vals(j);
    std::size_t i = 0, k = 0;
    while (i < ar.size() && k < br.size()) {
      if (ar[i] < br[k]) {
        ++i;
      } else if (br[k] < ar[i]) {
        ++k;
      } else {
        rows.push_back(ar[i]);
        vals.push_back(f(av[i], bv[k]));
        ++i;
        ++k;
      }
    }
    colptr.push_back(static_cast<index_t>(rows.size()));
  }
  return CscMatrix<VT>(a.nrows(), a.ncols(), std::move(colptr), std::move(rows),
                       std::move(vals));
}

/// In-pattern value transform: C has A's pattern with values f(value).
template <typename VT, typename F>
CscMatrix<VT> ewise_apply(const CscMatrix<VT>& a, F&& f) {
  std::vector<VT> vals(a.vals());
  for (auto& v : vals) v = f(v);
  return CscMatrix<VT>(a.nrows(), a.ncols(), a.colptr(), a.rowids(), std::move(vals));
}

/// Row sums: out[i] = Σ_j A(i, j).
template <typename VT>
std::vector<VT> row_sums(const CscMatrix<VT>& a) {
  std::vector<VT> out(static_cast<std::size_t>(a.nrows()), VT{0});
  for (index_t j = 0; j < a.ncols(); ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_vals(j);
    for (std::size_t p = 0; p < rows.size(); ++p)
      out[static_cast<std::size_t>(rows[p])] += vals[p];
  }
  return out;
}

}  // namespace sa1d
