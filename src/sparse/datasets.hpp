// Dataset registry: named, seeded analogues of the paper's five SuiteSparse
// matrices (Table II), at laptop scale. `scale` linearly grows the instance.
#pragma once

#include <string>
#include <vector>

#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace sa1d {

/// Which paper matrix a generated instance stands in for.
enum class Dataset {
  QueenLike,    // queen_4147: 3D structural mesh, symmetric, clustered
  StokesLike,   // stokes: saddle-point, unsymmetric-ish block structure
  EukaryaLike,  // eukarya: protein network, symmetric, no locality
  Hv15rLike,    // hv15r: CFD, unsymmetric, strongly clustered blocks
  NlpkktLike,   // nlpkkt200: KKT optimization, symmetric nested blocks
};

inline const char* dataset_name(Dataset d) {
  switch (d) {
    case Dataset::QueenLike: return "queen-like";
    case Dataset::StokesLike: return "stokes-like";
    case Dataset::EukaryaLike: return "eukarya-like";
    case Dataset::Hv15rLike: return "hv15r-like";
    case Dataset::NlpkktLike: return "nlpkkt-like";
  }
  return "?";
}

inline std::vector<Dataset> all_datasets() {
  return {Dataset::QueenLike, Dataset::StokesLike, Dataset::EukaryaLike, Dataset::Hv15rLike,
          Dataset::NlpkktLike};
}

/// Whether the paper treats this dataset as having exploitable structure
/// (if not, METIS-style partitioning is the recommended preprocessing).
inline bool dataset_has_structure(Dataset d) { return d != Dataset::EukaryaLike; }

/// Builds the dataset at the given scale (scale=1 targets ~20-60k rows so a
/// full squaring on a single simulated machine finishes in seconds; benches
/// honour the SA1D_SCALE environment variable).
namespace detail_ds {
/// Adds directed (one-way) near-diagonal entries — a convection-like term
/// that breaks symmetry while preserving locality (stokes is unsymmetric).
inline CscMatrix<double> add_directed_band(const CscMatrix<double>& a, double frac,
                                           std::uint64_t seed) {
  SplitMix64 rng(seed);
  auto coo = a.to_coo();
  auto extra = static_cast<index_t>(frac * static_cast<double>(a.nnz()));
  for (index_t e = 0; e < extra; ++e) {
    auto r = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(a.nrows())));
    auto c = std::min<index_t>(a.ncols() - 1, r + 1 + static_cast<index_t>(rng.below(16)));
    coo.push(r, c, 0.5 + rng.uniform());
  }
  coo.canonicalize();
  return CscMatrix<double>::from_coo(coo);
}
}  // namespace detail_ds

inline CscMatrix<double> make_dataset(Dataset d, double scale = 1.0, std::uint64_t seed = 42) {
  auto s = [scale](double base) { return static_cast<index_t>(base * scale); };
  switch (d) {
    case Dataset::QueenLike:
      return mesh3d<double>(std::max<index_t>(8, s(28.0)));
    case Dataset::StokesLike:
      return detail_ds::add_directed_band(
          kkt_saddle<double>(std::max<index_t>(16, s(150.0)), 0.35, seed), 0.05, seed + 9);
    case Dataset::EukaryaLike:
      // Hidden community structure: no natural-order locality, but a graph
      // partitioner recovers the clusters (matching the paper's 2× METIS
      // gain on eukarya).
      return hidden_community<double>(std::max<index_t>(256, s(20000.0)),
                                      std::max<index_t>(8, s(64.0)), 16.0, 1.0, seed);
    case Dataset::Hv15rLike:
      return block_clustered<double>(std::max<index_t>(256, s(24000.0)),
                                     std::max<index_t>(8, s(64.0)), 24.0, 0.5, seed,
                                     /*symmetric=*/false);
    case Dataset::NlpkktLike:
      return kkt_saddle<double>(std::max<index_t>(16, s(160.0)), 0.5, seed + 1);
  }
  throw std::logic_error("make_dataset: unknown dataset");
}

/// Statistics row for Table II.
struct DatasetStats {
  std::string name;
  index_t rows = 0;
  index_t cols = 0;
  index_t nnz = 0;
  bool symmetric = false;
};

template <typename VT>
bool is_pattern_symmetric(const CscMatrix<VT>& a) {
  if (a.nrows() != a.ncols()) return false;
  auto at = transpose(a);
  return a.colptr() == at.colptr() && a.rowids() == at.rowids();
}

inline DatasetStats dataset_stats(Dataset d, const CscMatrix<double>& m) {
  return {dataset_name(d), m.nrows(), m.ncols(), m.nnz(), is_pattern_symmetric(m)};
}

}  // namespace sa1d
