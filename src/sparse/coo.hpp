// Coordinate (triples) format: the assembly/interchange format of sa1d.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/common.hpp"

namespace sa1d {

/// One nonzero element.
template <typename VT = double>
struct Triple {
  index_t row = 0;
  index_t col = 0;
  VT val{};

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// Sparse matrix in coordinate form. Triples may be unsorted and contain
/// duplicates until canonicalize() is called.
template <typename VT = double>
class CooMatrix {
 public:
  using value_type = VT;

  CooMatrix() = default;
  CooMatrix(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {
    require(nrows >= 0 && ncols >= 0, "CooMatrix: negative dimension");
  }
  CooMatrix(index_t nrows, index_t ncols, std::vector<Triple<VT>> triples)
      : nrows_(nrows), ncols_(ncols), t_(std::move(triples)) {
    require(nrows >= 0 && ncols >= 0, "CooMatrix: negative dimension");
  }

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] index_t nnz() const { return static_cast<index_t>(t_.size()); }

  void push(index_t r, index_t c, VT v) {
    assert(r >= 0 && r < nrows_ && c >= 0 && c < ncols_);
    t_.push_back({r, c, v});
  }

  [[nodiscard]] const std::vector<Triple<VT>>& triples() const { return t_; }
  std::vector<Triple<VT>>& triples() { return t_; }

  /// Sorts column-major (col, then row) and merges duplicates with `add`
  /// (any associative/commutative ⊕ — the distributed backends pass their
  /// semiring's add so partial-product merges keep semiring semantics).
  /// Drops explicit zeros produced by cancellation only if `drop_zeros`.
  template <typename Add>
  void canonicalize_with(Add add, bool drop_zeros = false) {
    std::sort(t_.begin(), t_.end(), [](const Triple<VT>& a, const Triple<VT>& b) {
      return a.col != b.col ? a.col < b.col : a.row < b.row;
    });
    std::size_t w = 0;
    for (std::size_t i = 0; i < t_.size();) {
      Triple<VT> acc = t_[i++];
      while (i < t_.size() && t_[i].row == acc.row && t_[i].col == acc.col)
        acc.val = add(acc.val, t_[i++].val);
      if (!drop_zeros || acc.val != VT{}) t_[w++] = acc;
    }
    t_.resize(w);
  }

  /// canonicalize_with over plain addition (the numeric semiring's merge).
  void canonicalize(bool drop_zeros = false) {
    canonicalize_with([](VT a, VT b) { return a + b; }, drop_zeros);
  }

  /// True if triples are column-major sorted with no duplicates.
  [[nodiscard]] bool is_canonical() const {
    for (std::size_t i = 1; i < t_.size(); ++i) {
      const auto& a = t_[i - 1];
      const auto& b = t_[i];
      if (a.col > b.col || (a.col == b.col && a.row >= b.row)) return false;
    }
    return true;
  }

  friend bool operator==(const CooMatrix& a, const CooMatrix& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ && a.t_ == b.t_;
  }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<Triple<VT>> t_;
};

/// Sorts `t` by (col, row) breaking ties by original position and ⊕-merges
/// duplicates left to right — a *deterministic* merge (std::sort's tie order
/// is unspecified, so canonicalize_with cannot be replayed bit-exactly).
/// `dst`/`first` (optional, but only together) capture the fold program:
/// original triple i lands in output slot (*dst)[i], assigning when
/// (*first)[i] and ⊕-accumulating otherwise — replaying the program in
/// original order reproduces the merged values bit for bit.
template <typename Add, typename VT>
void merge_triples_stable(std::vector<Triple<VT>>& t, Add add,
                          std::vector<index_t>* dst = nullptr,
                          std::vector<std::uint8_t>* first = nullptr) {
  require((dst == nullptr) == (first == nullptr),
          "merge_triples_stable: dst and first capture the fold program together — "
          "pass both or neither");
  std::vector<index_t> perm(t.size());
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::sort(perm.begin(), perm.end(), [&](index_t x, index_t y) {
    const auto& a = t[static_cast<std::size_t>(x)];
    const auto& b = t[static_cast<std::size_t>(y)];
    if (a.col != b.col) return a.col < b.col;
    if (a.row != b.row) return a.row < b.row;
    return x < y;
  });
  if (dst != nullptr) {
    dst->assign(t.size(), 0);
    first->assign(t.size(), 0);
  }
  std::vector<Triple<VT>> out;
  out.reserve(t.size());
  for (auto i : perm) {
    const auto& ti = t[static_cast<std::size_t>(i)];
    if (out.empty() || out.back().col != ti.col || out.back().row != ti.row) {
      out.push_back(ti);
      if (dst != nullptr) {
        (*dst)[static_cast<std::size_t>(i)] = static_cast<index_t>(out.size() - 1);
        (*first)[static_cast<std::size_t>(i)] = 1;
      }
    } else {
      out.back().val = add(out.back().val, ti.val);
      if (dst != nullptr) (*dst)[static_cast<std::size_t>(i)] = static_cast<index_t>(out.size() - 1);
    }
  }
  t = std::move(out);
}

/// Incremental (streaming) variant of merge_triples_stable: call round()
/// after appending each batch of partial triples — a ring hop, a SUMMA
/// stage, one scatter chunk — and the vector collapses to canonical form
/// after every round instead of holding all pushes until a terminal merge.
/// The peak footprint drops from Σ pushes to (merged so far + one round's
/// pushes), which is what the peak-triples budget bounds.
///
/// Bit-identity and program equivalence: the merged array AND the composed
/// dst/first fold program after the last round are byte-identical to one
/// terminal merge_triples_stable over the same pushes in the same order.
/// Per key, the fold is the left fold in push order both ways — a
/// previously-merged entry is canonical (unique key, lowest index), so it
/// sorts before any same-key triple appended later under the
/// (col, row, original-index) tie-break, and composing each round's capture
/// through the previous rounds' slots preserves every push's final slot and
/// assign/accumulate flag. Replay programs captured through either path are
/// therefore interchangeable.
template <typename VT>
class StreamingTripleMerge {
 public:
  /// Canonical prefix length of the vector after the last round().
  [[nodiscard]] std::size_t merged() const { return merged_; }
  void reset() { merged_ = 0; }

  /// Merges the triples appended since the previous round (positions
  /// [merged(), t.size())) into the canonical prefix. `dst`/`first`
  /// (optional, but only together) hold the composed fold program across
  /// all rounds so far: entries for earlier pushes are remapped through
  /// this round's slot movement, entries for this round's pushes appended.
  template <typename Add>
  void round(std::vector<Triple<VT>>& t, Add add, std::vector<index_t>* dst = nullptr,
             std::vector<std::uint8_t>* first = nullptr) {
    require((dst == nullptr) == (first == nullptr),
            "StreamingTripleMerge::round: dst and first capture the fold program "
            "together — pass both or neither");
    const std::size_t m_prev = merged_;
    if (t.size() == m_prev) return;  // nothing appended this round
    if (dst == nullptr) {
      merge_triples_stable(t, add);
    } else {
      std::vector<index_t> rdst;
      std::vector<std::uint8_t> rfirst;
      merge_triples_stable(t, add, &rdst, &rfirst);
      // Compose: earlier pushes' slots move with their canonical entry
      // (always an "accumulate into existing" from this round's viewpoint,
      // so their first flags are untouched); this round's pushes append.
      for (auto& d : *dst) d = rdst[static_cast<std::size_t>(d)];
      dst->insert(dst->end(), rdst.begin() + static_cast<std::ptrdiff_t>(m_prev), rdst.end());
      first->insert(first->end(), rfirst.begin() + static_cast<std::ptrdiff_t>(m_prev),
                    rfirst.end());
    }
    merged_ = t.size();
  }

 private:
  std::size_t merged_ = 0;
};

}  // namespace sa1d
