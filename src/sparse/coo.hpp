// Coordinate (triples) format: the assembly/interchange format of sa1d.
#pragma once

#include <algorithm>
#include <vector>

#include "util/common.hpp"

namespace sa1d {

/// One nonzero element.
template <typename VT = double>
struct Triple {
  index_t row = 0;
  index_t col = 0;
  VT val{};

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// Sparse matrix in coordinate form. Triples may be unsorted and contain
/// duplicates until canonicalize() is called.
template <typename VT = double>
class CooMatrix {
 public:
  using value_type = VT;

  CooMatrix() = default;
  CooMatrix(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {
    require(nrows >= 0 && ncols >= 0, "CooMatrix: negative dimension");
  }
  CooMatrix(index_t nrows, index_t ncols, std::vector<Triple<VT>> triples)
      : nrows_(nrows), ncols_(ncols), t_(std::move(triples)) {
    require(nrows >= 0 && ncols >= 0, "CooMatrix: negative dimension");
  }

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] index_t nnz() const { return static_cast<index_t>(t_.size()); }

  void push(index_t r, index_t c, VT v) {
    assert(r >= 0 && r < nrows_ && c >= 0 && c < ncols_);
    t_.push_back({r, c, v});
  }

  [[nodiscard]] const std::vector<Triple<VT>>& triples() const { return t_; }
  std::vector<Triple<VT>>& triples() { return t_; }

  /// Sorts column-major (col, then row) and merges duplicates with `add`
  /// (any associative/commutative ⊕ — the distributed backends pass their
  /// semiring's add so partial-product merges keep semiring semantics).
  /// Drops explicit zeros produced by cancellation only if `drop_zeros`.
  template <typename Add>
  void canonicalize_with(Add add, bool drop_zeros = false) {
    std::sort(t_.begin(), t_.end(), [](const Triple<VT>& a, const Triple<VT>& b) {
      return a.col != b.col ? a.col < b.col : a.row < b.row;
    });
    std::size_t w = 0;
    for (std::size_t i = 0; i < t_.size();) {
      Triple<VT> acc = t_[i++];
      while (i < t_.size() && t_[i].row == acc.row && t_[i].col == acc.col)
        acc.val = add(acc.val, t_[i++].val);
      if (!drop_zeros || acc.val != VT{}) t_[w++] = acc;
    }
    t_.resize(w);
  }

  /// canonicalize_with over plain addition (the numeric semiring's merge).
  void canonicalize(bool drop_zeros = false) {
    canonicalize_with([](VT a, VT b) { return a + b; }, drop_zeros);
  }

  /// True if triples are column-major sorted with no duplicates.
  [[nodiscard]] bool is_canonical() const {
    for (std::size_t i = 1; i < t_.size(); ++i) {
      const auto& a = t_[i - 1];
      const auto& b = t_[i];
      if (a.col > b.col || (a.col == b.col && a.row >= b.row)) return false;
    }
    return true;
  }

  friend bool operator==(const CooMatrix& a, const CooMatrix& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ && a.t_ == b.t_;
  }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<Triple<VT>> t_;
};

}  // namespace sa1d
