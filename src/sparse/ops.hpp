// Structural operations on sparse matrices: transpose, permutation,
// sub-matrix extraction, comparison, symmetrization, degree statistics.
#pragma once

#include <cmath>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/dcsc.hpp"
#include "util/common.hpp"

namespace sa1d {

/// Transpose via counting sort: O(nnz + nrows).
template <typename VT>
CscMatrix<VT> transpose(const CscMatrix<VT>& a) {
  std::vector<index_t> rowptr(static_cast<std::size_t>(a.nrows()) + 1, 0);
  for (index_t j = 0; j < a.ncols(); ++j)
    for (auto r : a.col_rows(j)) ++rowptr[static_cast<std::size_t>(r) + 1];
  for (std::size_t i = 0; i < static_cast<std::size_t>(a.nrows()); ++i) rowptr[i + 1] += rowptr[i];

  std::vector<index_t> rowids(static_cast<std::size_t>(a.nnz()));
  std::vector<VT> vals(static_cast<std::size_t>(a.nnz()));
  std::vector<index_t> cursor(rowptr.begin(), rowptr.end() - 1);
  for (index_t j = 0; j < a.ncols(); ++j) {
    auto rows = a.col_rows(j);
    auto vls = a.col_vals(j);
    for (std::size_t p = 0; p < rows.size(); ++p) {
      index_t pos = cursor[static_cast<std::size_t>(rows[p])]++;
      rowids[static_cast<std::size_t>(pos)] = j;
      vals[static_cast<std::size_t>(pos)] = vls[p];
    }
  }
  return CscMatrix<VT>(a.ncols(), a.nrows(), std::move(rowptr), std::move(rowids),
                       std::move(vals));
}

/// A permutation is new_id[old_id]; identity() and inverse() helpers.
class Permutation {
 public:
  Permutation() = default;
  explicit Permutation(std::vector<index_t> new_of_old) : p_(std::move(new_of_old)) {
#ifndef NDEBUG
    std::vector<bool> seen(p_.size(), false);
    for (auto v : p_) {
      assert(v >= 0 && v < static_cast<index_t>(p_.size()) && !seen[static_cast<std::size_t>(v)]);
      seen[static_cast<std::size_t>(v)] = true;
    }
#endif
  }

  static Permutation identity(index_t n) {
    std::vector<index_t> p(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
    return Permutation(std::move(p));
  }

  [[nodiscard]] index_t size() const { return static_cast<index_t>(p_.size()); }
  [[nodiscard]] index_t operator()(index_t old_id) const {
    return p_[static_cast<std::size_t>(old_id)];
  }

  [[nodiscard]] Permutation inverse() const {
    std::vector<index_t> inv(p_.size());
    for (std::size_t i = 0; i < p_.size(); ++i)
      inv[static_cast<std::size_t>(p_[i])] = static_cast<index_t>(i);
    return Permutation(std::move(inv));
  }

  [[nodiscard]] const std::vector<index_t>& vec() const { return p_; }

 private:
  std::vector<index_t> p_;
};

/// Symmetric permutation: returns P A Pᵀ, i.e. row i → rowperm(i), col j → colperm(j).
template <typename VT>
CscMatrix<VT> permute(const CscMatrix<VT>& a, const Permutation& rowperm,
                      const Permutation& colperm) {
  require(rowperm.size() == a.nrows() && colperm.size() == a.ncols(),
          "permute: permutation size mismatch");
  CooMatrix<VT> coo(a.nrows(), a.ncols());
  for (index_t j = 0; j < a.ncols(); ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_vals(j);
    for (std::size_t p = 0; p < rows.size(); ++p) coo.push(rowperm(rows[p]), colperm(j), vals[p]);
  }
  coo.canonicalize();
  return CscMatrix<VT>::from_coo(coo);
}

template <typename VT>
CscMatrix<VT> permute_symmetric(const CscMatrix<VT>& a, const Permutation& p) {
  require(a.nrows() == a.ncols(), "permute_symmetric: matrix must be square");
  return permute(a, p, p);
}

/// Extracts columns [lo, hi) as a standalone matrix (global row ids kept).
template <typename VT>
CscMatrix<VT> extract_cols(const CscMatrix<VT>& a, index_t lo, index_t hi) {
  require(0 <= lo && lo <= hi && hi <= a.ncols(), "extract_cols: bad range");
  std::vector<index_t> colptr(static_cast<std::size_t>(hi - lo) + 1, 0);
  std::vector<index_t> rowids;
  std::vector<VT> vals;
  for (index_t j = lo; j < hi; ++j) {
    auto rows = a.col_rows(j);
    auto vls = a.col_vals(j);
    rowids.insert(rowids.end(), rows.begin(), rows.end());
    vals.insert(vals.end(), vls.begin(), vls.end());
    colptr[static_cast<std::size_t>(j - lo) + 1] = static_cast<index_t>(rowids.size());
  }
  return CscMatrix<VT>(a.nrows(), hi - lo, std::move(colptr), std::move(rowids), std::move(vals));
}

/// Pattern symmetrization: returns A ∪ Aᵀ with values summed where both exist.
template <typename VT>
CscMatrix<VT> symmetrize(const CscMatrix<VT>& a) {
  require(a.nrows() == a.ncols(), "symmetrize: matrix must be square");
  CooMatrix<VT> coo(a.nrows(), a.ncols());
  for (index_t j = 0; j < a.ncols(); ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_vals(j);
    for (std::size_t p = 0; p < rows.size(); ++p) {
      coo.push(rows[p], j, vals[p]);
      if (rows[p] != j) coo.push(j, rows[p], vals[p]);
    }
  }
  coo.canonicalize();
  // Summation double-counts symmetric pairs; halve off-diagonal duplicates is
  // not meaningful for pattern use, so keep sum semantics (documented).
  return CscMatrix<VT>::from_coo(coo);
}

/// Approximate equality: same pattern, values within abs/rel tolerance.
template <typename VT>
bool approx_equal(const CscMatrix<VT>& a, const CscMatrix<VT>& b, double tol = 1e-9) {
  if (a.nrows() != b.nrows() || a.ncols() != b.ncols() || a.nnz() != b.nnz()) return false;
  if (a.colptr() != b.colptr() || a.rowids() != b.rowids()) return false;
  for (std::size_t i = 0; i < a.vals().size(); ++i) {
    double x = static_cast<double>(a.vals()[i]);
    double y = static_cast<double>(b.vals()[i]);
    if (std::abs(x - y) > tol * std::max({1.0, std::abs(x), std::abs(y)})) return false;
  }
  return true;
}

/// Pattern copy: same structure, all values 1.0.
template <typename VT>
CscMatrix<double> to_pattern(const CscMatrix<VT>& a) {
  std::vector<double> ones(static_cast<std::size_t>(a.nnz()), 1.0);
  return CscMatrix<double>(a.nrows(), a.ncols(), a.colptr(), a.rowids(), std::move(ones));
}

/// Per-column nonzero counts (the degree vector in the graph view).
template <typename VT>
std::vector<index_t> col_nnz_vector(const CscMatrix<VT>& a) {
  std::vector<index_t> d(static_cast<std::size_t>(a.ncols()));
  for (index_t j = 0; j < a.ncols(); ++j) d[static_cast<std::size_t>(j)] = a.col_nnz(j);
  return d;
}

}  // namespace sa1d
