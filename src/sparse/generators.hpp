// Seeded synthetic sparse-matrix generators. These stand in for the paper's
// SuiteSparse inputs (no network access in this environment); each generator
// reproduces the *structure class* that drives the paper's results:
// clustered vs. scattered nonzeros. See DESIGN.md §1/§4.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csc.hpp"
#include "sparse/ops.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace sa1d {

/// Erdős–Rényi G(n, d/n): ~d nonzeros per column, uniformly scattered.
/// The paper identifies random graphs as the worst case for 1D SpGEMM.
template <typename VT = double>
CscMatrix<VT> erdos_renyi(index_t n, double avg_nnz_per_col, std::uint64_t seed,
                          bool symmetric = false) {
  require(n > 0 && avg_nnz_per_col > 0, "erdos_renyi: bad parameters");
  SplitMix64 rng(seed);
  CooMatrix<VT> coo(n, n);
  auto expected = static_cast<index_t>(avg_nnz_per_col * static_cast<double>(n));
  for (index_t k = 0; k < expected; ++k) {
    auto r = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    auto c = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    VT v = static_cast<VT>(1.0 + rng.uniform());
    coo.push(r, c, v);
    if (symmetric && r != c) coo.push(c, r, v);
  }
  coo.canonicalize();
  return CscMatrix<VT>::from_coo(coo);
}

/// R-MAT (Chakrabarti et al.): power-law degree distribution with no spatial
/// locality — our stand-in for protein-interaction networks (eukarya).
template <typename VT = double>
CscMatrix<VT> rmat(int scale, index_t edge_factor, std::uint64_t seed, double a = 0.57,
                   double b = 0.19, double c = 0.19, bool symmetric = true) {
  require(scale > 0 && scale < 31 && edge_factor > 0, "rmat: bad parameters");
  index_t n = index_t{1} << scale;
  SplitMix64 rng(seed);
  CooMatrix<VT> coo(n, n);
  index_t edges = n * edge_factor;
  for (index_t e = 0; e < edges; ++e) {
    index_t r = 0, col = 0;
    for (int bit = 0; bit < scale; ++bit) {
      double u = rng.uniform();
      int quad = u < a ? 0 : (u < a + b ? 1 : (u < a + b + c ? 2 : 3));
      r = (r << 1) | (quad >> 1);
      col = (col << 1) | (quad & 1);
    }
    VT v = static_cast<VT>(1.0 + rng.uniform());
    coo.push(r, col, v);
    if (symmetric && r != col) coo.push(col, r, v);
  }
  coo.canonicalize();
  return CscMatrix<VT>::from_coo(coo);
}

/// 2D 5-point (or 9-point) finite-difference mesh on a k×k grid, natural order.
template <typename VT = double>
CscMatrix<VT> mesh2d(index_t k, bool nine_point = false) {
  require(k > 0, "mesh2d: k must be positive");
  index_t n = k * k;
  CooMatrix<VT> coo(n, n);
  auto id = [k](index_t x, index_t y) { return x * k + y; };
  for (index_t x = 0; x < k; ++x) {
    for (index_t y = 0; y < k; ++y) {
      index_t v = id(x, y);
      coo.push(v, v, static_cast<VT>(4.0));
      for (index_t dx = -1; dx <= 1; ++dx) {
        for (index_t dy = -1; dy <= 1; ++dy) {
          if (dx == 0 && dy == 0) continue;
          if (!nine_point && dx != 0 && dy != 0) continue;
          index_t nx = x + dx, ny = y + dy;
          if (nx < 0 || nx >= k || ny < 0 || ny >= k) continue;
          coo.push(v, id(nx, ny), static_cast<VT>(-1.0));
        }
      }
    }
  }
  coo.canonicalize();
  return CscMatrix<VT>::from_coo(coo);
}

/// 3D 27-point stencil mesh on a k×k×k grid, natural order — the stand-in
/// for queen_4147 (3D structural problem with strong natural locality).
template <typename VT = double>
CscMatrix<VT> mesh3d(index_t k) {
  require(k > 0, "mesh3d: k must be positive");
  index_t n = k * k * k;
  CooMatrix<VT> coo(n, n);
  auto id = [k](index_t x, index_t y, index_t z) { return (x * k + y) * k + z; };
  for (index_t x = 0; x < k; ++x)
    for (index_t y = 0; y < k; ++y)
      for (index_t z = 0; z < k; ++z) {
        index_t v = id(x, y, z);
        for (index_t dx = -1; dx <= 1; ++dx)
          for (index_t dy = -1; dy <= 1; ++dy)
            for (index_t dz = -1; dz <= 1; ++dz) {
              index_t nx = x + dx, ny = y + dy, nz = z + dz;
              if (nx < 0 || nx >= k || ny < 0 || ny >= k || nz < 0 || nz >= k) continue;
              VT val = (dx == 0 && dy == 0 && dz == 0) ? static_cast<VT>(26.0)
                                                       : static_cast<VT>(-1.0);
              coo.push(v, id(nx, ny, nz), val);
            }
      }
  coo.canonicalize();
  return CscMatrix<VT>::from_coo(coo);
}

/// Banded matrix with uniformly random nonzeros inside the band.
template <typename VT = double>
CscMatrix<VT> banded(index_t n, index_t bandwidth, double density, std::uint64_t seed) {
  require(n > 0 && bandwidth > 0 && density > 0 && density <= 1, "banded: bad parameters");
  SplitMix64 rng(seed);
  CooMatrix<VT> coo(n, n);
  for (index_t j = 0; j < n; ++j) {
    index_t lo = std::max<index_t>(0, j - bandwidth);
    index_t hi = std::min<index_t>(n, j + bandwidth + 1);
    for (index_t i = lo; i < hi; ++i)
      if (i == j || rng.uniform() < density) coo.push(i, j, static_cast<VT>(1.0 + rng.uniform()));
  }
  coo.canonicalize();
  return CscMatrix<VT>::from_coo(coo);
}

/// Block-clustered matrix: `nblocks` diagonal blocks that are dense-ish
/// (intra_density) with sparse random coupling between neighbouring blocks
/// (inter_density). Mimics hv15r's clustered CFD structure.
template <typename VT = double>
CscMatrix<VT> block_clustered(index_t n, index_t nblocks, double intra_avg_deg,
                              double inter_avg_deg, std::uint64_t seed, bool symmetric = false) {
  require(n > 0 && nblocks > 0 && nblocks <= n, "block_clustered: bad parameters");
  SplitMix64 rng(seed);
  CooMatrix<VT> coo(n, n);
  auto bounds = even_split(n, static_cast<int>(nblocks));
  for (index_t b = 0; b < nblocks; ++b) {
    index_t lo = bounds[static_cast<std::size_t>(b)], hi = bounds[static_cast<std::size_t>(b) + 1];
    index_t bn = hi - lo;
    auto intra = static_cast<index_t>(intra_avg_deg * static_cast<double>(bn));
    for (index_t k = 0; k < intra; ++k) {
      auto r = lo + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(bn)));
      auto c = lo + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(bn)));
      VT v = static_cast<VT>(1.0 + rng.uniform());
      coo.push(r, c, v);
      if (symmetric && r != c) coo.push(c, r, v);
    }
    // Coupling to the next block only (keeps clustering strong).
    if (b + 1 < nblocks) {
      index_t nlo = hi, nhi = bounds[static_cast<std::size_t>(b) + 2];
      auto inter = static_cast<index_t>(inter_avg_deg * static_cast<double>(bn));
      for (index_t k = 0; k < inter; ++k) {
        auto r = nlo + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(nhi - nlo)));
        auto c = lo + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(bn)));
        VT v = static_cast<VT>(rng.uniform());
        coo.push(r, c, v);
        if (symmetric) coo.push(c, r, v);
      }
    }
    // Diagonal for nonsingularity.
    for (index_t i = lo; i < hi; ++i) coo.push(i, i, static_cast<VT>(4.0));
  }
  coo.canonicalize();
  return CscMatrix<VT>::from_coo(coo);
}

/// Community graph with the structure *hidden* behind a random relabeling:
/// strong clusters exist (a partitioner can recover them) but the natural
/// ordering shows no locality. This mimics eukarya, where the paper finds
/// no exploitable natural structure yet a 2× gain from METIS partitioning.
template <typename VT = double>
CscMatrix<VT> hidden_community(index_t n, index_t ncommunities, double intra_avg_deg,
                               double inter_avg_deg, std::uint64_t seed) {
  require(n > 0 && ncommunities > 0 && ncommunities <= n, "hidden_community: bad parameters");
  SplitMix64 rng(seed);
  CooMatrix<VT> coo(n, n);
  auto bounds = even_split(n, static_cast<int>(ncommunities));
  // Dense-ish intra-community edges.
  for (index_t b = 0; b < ncommunities; ++b) {
    index_t lo = bounds[static_cast<std::size_t>(b)], hi = bounds[static_cast<std::size_t>(b) + 1];
    index_t bn = hi - lo;
    auto intra = static_cast<index_t>(intra_avg_deg * static_cast<double>(bn));
    for (index_t k = 0; k < intra; ++k) {
      auto r = lo + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(bn)));
      auto c = lo + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(bn)));
      VT v = static_cast<VT>(1.0 + rng.uniform());
      coo.push(r, c, v);
      if (r != c) coo.push(c, r, v);
    }
  }
  // Sparse inter-community edges between *random* community pairs: keeps the
  // small-world diameter of real protein networks (unlike a block chain).
  auto inter = static_cast<index_t>(inter_avg_deg * static_cast<double>(n));
  for (index_t k = 0; k < inter; ++k) {
    auto r = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    auto c = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    if (r == c) continue;
    VT v = static_cast<VT>(rng.uniform());
    coo.push(r, c, v);
    coo.push(c, r, v);
  }
  coo.canonicalize();
  auto clustered = CscMatrix<VT>::from_coo(coo);
  // Random symmetric relabeling (Fisher–Yates on vertex ids).
  SplitMix64 prng(seed ^ 0xabcdef1234567ULL);
  std::vector<index_t> p(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
  for (index_t i = n - 1; i > 0; --i)
    std::swap(p[static_cast<std::size_t>(i)],
              p[static_cast<std::size_t>(prng.below(static_cast<std::uint64_t>(i + 1)))]);
  Permutation perm(std::move(p));
  return permute_symmetric(clustered, perm);
}

/// KKT / saddle-point structure [A  B; Bᵀ 0] where A is a 2D mesh Laplacian
/// and B is a sparse tall coupling block. Mimics stokes / nlpkkt structure.
template <typename VT = double>
CscMatrix<VT> kkt_saddle(index_t mesh_k, double coupling_frac, std::uint64_t seed) {
  require(mesh_k > 1 && coupling_frac > 0 && coupling_frac <= 1, "kkt_saddle: bad parameters");
  CscMatrix<VT> a = mesh2d<VT>(mesh_k);
  index_t na = a.nrows();
  auto nb = static_cast<index_t>(coupling_frac * static_cast<double>(na));
  index_t n = na + nb;
  SplitMix64 rng(seed);
  CooMatrix<VT> coo(n, n);
  for (index_t j = 0; j < na; ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_vals(j);
    for (std::size_t p = 0; p < rows.size(); ++p) coo.push(rows[p], j, vals[p]);
  }
  // Each constraint row couples to ~3 primal variables, clustered around a
  // position proportional to the constraint index (preserves locality).
  for (index_t c = 0; c < nb; ++c) {
    index_t center = (c * na) / std::max<index_t>(nb, 1);
    for (int k = 0; k < 3; ++k) {
      index_t r = std::min<index_t>(
          na - 1, center + static_cast<index_t>(rng.below(32)));
      VT v = static_cast<VT>(1.0 + rng.uniform());
      coo.push(r, na + c, v);
      coo.push(na + c, r, v);
    }
  }
  coo.canonicalize();
  return CscMatrix<VT>::from_coo(coo);
}

}  // namespace sa1d
