// Minimal Matrix Market (.mtx) reader/writer for `coordinate real general /
// symmetric / pattern` matrices — enough to interoperate with SuiteSparse
// downloads when they are available.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"

namespace sa1d {

/// Reads a Matrix Market coordinate matrix. Symmetric/skew-symmetric storage
/// is expanded to full; `pattern` entries get value 1.0.
CooMatrix<double> read_matrix_market(std::istream& in);
CooMatrix<double> read_matrix_market_file(const std::string& path);

/// Writes in `coordinate real general` form (1-based indices).
void write_matrix_market(std::ostream& out, const CooMatrix<double>& m);
void write_matrix_market_file(const std::string& path, const CooMatrix<double>& m);

}  // namespace sa1d
