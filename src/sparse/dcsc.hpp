// Double Compressed Sparse Column (Buluç & Gilbert, IPDPS 2008): the format
// the paper uses for local submatrices. Column pointers are stored only for
// the nzc nonzero columns, making storage O(nnz + nzc) instead of
// O(nnz + ncols) — essential for hypersparse 1D/2D slices.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "sparse/csc.hpp"
#include "util/common.hpp"

namespace sa1d {

/// DCSC sparse matrix.
///   jc : global/local ids of nonzero columns, ascending (size nzc)
///   cp : prefix offsets into ir/vals per nonzero column (size nzc+1)
///   ir : row ids, sorted within each column
template <typename VT = double>
class DcscMatrix {
 public:
  using value_type = VT;

  DcscMatrix() : cp_(1, 0) {}
  DcscMatrix(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols), cp_(1, 0) {
    require(nrows >= 0 && ncols >= 0, "DcscMatrix: negative dimension");
  }
  DcscMatrix(index_t nrows, index_t ncols, std::vector<index_t> jc, std::vector<index_t> cp,
             std::vector<index_t> ir, std::vector<VT> vals)
      : nrows_(nrows),
        ncols_(ncols),
        jc_(std::move(jc)),
        cp_(std::move(cp)),
        ir_(std::move(ir)),
        vals_(std::move(vals)) {
    require(cp_.size() == jc_.size() + 1, "DcscMatrix: cp/jc size mismatch");
    require(ir_.size() == vals_.size(), "DcscMatrix: ir/vals size mismatch");
    require(cp_.front() == 0 && cp_.back() == static_cast<index_t>(ir_.size()),
            "DcscMatrix: bad cp bounds");
  }

  static DcscMatrix from_csc(const CscMatrix<VT>& a) {
    DcscMatrix out(a.nrows(), a.ncols());
    for (index_t j = 0; j < a.ncols(); ++j) {
      if (a.col_nnz(j) == 0) continue;
      out.jc_.push_back(j);
      auto rows = a.col_rows(j);
      auto vals = a.col_vals(j);
      out.ir_.insert(out.ir_.end(), rows.begin(), rows.end());
      out.vals_.insert(out.vals_.end(), vals.begin(), vals.end());
      out.cp_.push_back(static_cast<index_t>(out.ir_.size()));
    }
    return out;
  }

  static DcscMatrix from_coo(const CooMatrix<VT>& coo) {
    return from_csc(CscMatrix<VT>::from_coo(coo));
  }

  [[nodiscard]] CscMatrix<VT> to_csc() const {
    std::vector<index_t> colptr(static_cast<std::size_t>(ncols_) + 1, 0);
    for (std::size_t k = 0; k < jc_.size(); ++k)
      colptr[static_cast<std::size_t>(jc_[k]) + 1] = cp_[k + 1] - cp_[k];
    for (std::size_t j = 0; j < static_cast<std::size_t>(ncols_); ++j) colptr[j + 1] += colptr[j];
    return CscMatrix<VT>(nrows_, ncols_, std::move(colptr), ir_, vals_);
  }

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] index_t nnz() const { return static_cast<index_t>(ir_.size()); }
  /// Number of nonzero columns.
  [[nodiscard]] index_t nzc() const { return static_cast<index_t>(jc_.size()); }

  /// Column id of the k-th nonzero column.
  [[nodiscard]] index_t col_id(index_t k) const { return jc_[static_cast<std::size_t>(k)]; }
  [[nodiscard]] index_t col_nnz_at(index_t k) const {
    return cp_[static_cast<std::size_t>(k) + 1] - cp_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::span<const index_t> col_rows_at(index_t k) const {
    return {ir_.data() + cp_[static_cast<std::size_t>(k)], static_cast<std::size_t>(col_nnz_at(k))};
  }
  [[nodiscard]] std::span<const VT> col_vals_at(index_t k) const {
    return {vals_.data() + cp_[static_cast<std::size_t>(k)],
            static_cast<std::size_t>(col_nnz_at(k))};
  }

  /// Position of column id `j` among nonzero columns, or -1 if structurally empty.
  [[nodiscard]] index_t find_col(index_t j) const {
    auto it = std::lower_bound(jc_.begin(), jc_.end(), j);
    if (it == jc_.end() || *it != j) return -1;
    return static_cast<index_t>(it - jc_.begin());
  }

  [[nodiscard]] const std::vector<index_t>& jc() const { return jc_; }
  [[nodiscard]] const std::vector<index_t>& cp() const { return cp_; }
  [[nodiscard]] const std::vector<index_t>& ir() const { return ir_; }
  [[nodiscard]] const std::vector<VT>& vals() const { return vals_; }
  /// Mutable view of the value array only — the structure (jc/cp/ir) stays
  /// fixed. Lets the inspector–executor replay overwrite values in place
  /// (same contract as CscMatrix::mutable_vals).
  [[nodiscard]] std::vector<VT>& mutable_vals() { return vals_; }

  /// Structural invariants (used by tests): jc ascending, cp monotone,
  /// rows sorted in-column, every stored column nonempty.
  [[nodiscard]] bool check_invariants() const {
    if (cp_.size() != jc_.size() + 1 || cp_.front() != 0) return false;
    if (cp_.back() != static_cast<index_t>(ir_.size())) return false;
    for (std::size_t k = 0; k + 1 < jc_.size(); ++k)
      if (jc_[k] >= jc_[k + 1]) return false;
    for (std::size_t k = 0; k < jc_.size(); ++k) {
      if (cp_[k] >= cp_[k + 1]) return false;  // stored columns must be nonempty
      for (index_t p = cp_[k] + 1; p < cp_[k + 1]; ++p)
        if (ir_[static_cast<std::size_t>(p) - 1] >= ir_[static_cast<std::size_t>(p)]) return false;
    }
    for (auto j : jc_)
      if (j < 0 || j >= ncols_) return false;
    for (auto r : ir_)
      if (r < 0 || r >= nrows_) return false;
    return true;
  }

  friend bool operator==(const DcscMatrix& a, const DcscMatrix& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ && a.jc_ == b.jc_ && a.cp_ == b.cp_ &&
           a.ir_ == b.ir_ && a.vals_ == b.vals_;
  }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<index_t> jc_;
  std::vector<index_t> cp_;
  std::vector<index_t> ir_;
  std::vector<VT> vals_;
};

}  // namespace sa1d
