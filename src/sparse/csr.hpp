// Compressed Sparse Row format — the row-major dual of CSC. Used by the
// SpMV kernels and by consumers (e.g. PETSc-style solvers) whose 1D row
// distribution the paper's algorithm is designed to slot into.
#pragma once

#include "sparse/csc.hpp"
#include "sparse/ops.hpp"

namespace sa1d {

template <typename VT = double>
class CsrMatrix {
 public:
  using value_type = VT;

  CsrMatrix() : rowptr_(1, 0) {}
  CsrMatrix(index_t nrows, index_t ncols, std::vector<index_t> rowptr,
            std::vector<index_t> colids, std::vector<VT> vals)
      : nrows_(nrows),
        ncols_(ncols),
        rowptr_(std::move(rowptr)),
        colids_(std::move(colids)),
        vals_(std::move(vals)) {
    require(rowptr_.size() == static_cast<std::size_t>(nrows) + 1, "CsrMatrix: bad rowptr size");
    require(colids_.size() == vals_.size(), "CsrMatrix: colids/vals size mismatch");
    require(rowptr_.front() == 0 && rowptr_.back() == static_cast<index_t>(colids_.size()),
            "CsrMatrix: bad rowptr bounds");
  }

  /// CSC -> CSR: transpose the CSC structure (cols of Aᵀ are rows of A).
  static CsrMatrix from_csc(const CscMatrix<VT>& a) {
    auto at = transpose(a);
    return CsrMatrix(a.nrows(), a.ncols(), at.colptr(), at.rowids(), at.vals());
  }

  [[nodiscard]] CscMatrix<VT> to_csc() const {
    // Our rows are the columns of Aᵀ in CSC form; transpose back.
    CscMatrix<VT> at(ncols_, nrows_, rowptr_, colids_, vals_);
    return transpose(at);
  }

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] index_t nnz() const { return static_cast<index_t>(colids_.size()); }

  [[nodiscard]] index_t row_nnz(index_t i) const {
    return rowptr_[static_cast<std::size_t>(i) + 1] - rowptr_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const {
    return {colids_.data() + rowptr_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(row_nnz(i))};
  }
  [[nodiscard]] std::span<const VT> row_vals(index_t i) const {
    return {vals_.data() + rowptr_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(row_nnz(i))};
  }

  [[nodiscard]] const std::vector<index_t>& rowptr() const { return rowptr_; }
  [[nodiscard]] const std::vector<index_t>& colids() const { return colids_; }
  [[nodiscard]] const std::vector<VT>& vals() const { return vals_; }

  friend bool operator==(const CsrMatrix& a, const CsrMatrix& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ && a.rowptr_ == b.rowptr_ &&
           a.colids_ == b.colids_ && a.vals_ == b.vals_;
  }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<index_t> rowptr_;
  std::vector<index_t> colids_;
  std::vector<VT> vals_;
};

}  // namespace sa1d
