#include "sparse/mmio.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace sa1d {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// True iff the stream's extractions all succeeded and only whitespace
/// remains — rejects both short lines ("1 2" where a value is required,
/// which the old parser silently defaulted to 1.0) and trailing garbage.
bool consumed_cleanly(std::istringstream& s) {
  if (s.fail()) return false;
  s >> std::ws;
  return s.eof();
}

}  // namespace

CooMatrix<double> read_matrix_market(std::istream& in) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)), "mmio: empty stream");

  std::istringstream hdr(line);
  std::string banner, object, format, field, symmetry;
  hdr >> banner >> object >> format >> field >> symmetry;
  require(banner == "%%MatrixMarket", "mmio: missing MatrixMarket banner");
  require(lower(object) == "matrix" && lower(format) == "coordinate",
          "mmio: only coordinate matrices supported");
  field = lower(field);
  symmetry = lower(symmetry);
  require(field == "real" || field == "integer" || field == "pattern",
          "mmio: unsupported field type: " + field);
  require(symmetry == "general" || symmetry == "symmetric" || symmetry == "skew-symmetric",
          "mmio: unsupported symmetry: " + symmetry);

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  index_t nrows = 0, ncols = 0, nnz = 0;
  dims >> nrows >> ncols >> nnz;
  // A malformed or overflowing size line must not silently parse as zeros:
  // istream overflow sets failbit, which consumed_cleanly rejects.
  require(consumed_cleanly(dims), "mmio: bad dimensions line: " + line);
  require(nrows >= 0 && ncols >= 0 && nnz >= 0, "mmio: bad dimensions line");
  // Overflow-safe nnz <= nrows*ncols: a coordinate file cannot declare more
  // entries than the matrix has cells ((nnz-1)/ncols < nrows avoids the
  // nrows*ncols product, which can exceed the index range).
  require(nnz == 0 || (nrows > 0 && ncols > 0 && (nnz - 1) / ncols < nrows),
          "mmio: declared nnz exceeds nrows*ncols");

  CooMatrix<double> out(nrows, ncols);
  const bool pattern = field == "pattern";
  const double skew = symmetry == "skew-symmetric" ? -1.0 : 1.0;
  for (index_t k = 0; k < nnz; ++k) {
    require(static_cast<bool>(std::getline(in, line)), "mmio: truncated entry list");
    std::istringstream e(line);
    index_t r = 0, c = 0;
    double v = 1.0;
    e >> r >> c;
    if (!pattern) e >> v;
    require(consumed_cleanly(e), "mmio: malformed entry line: " + line);
    require(r >= 1 && r <= nrows && c >= 1 && c <= ncols, "mmio: index out of range");
    require(std::isfinite(v), "mmio: non-finite value in entry line: " + line);
    require(symmetry != "skew-symmetric" || r != c,
            "mmio: skew-symmetric matrix lists a diagonal entry: " + line);
    out.push(r - 1, c - 1, v);
    if (symmetry != "general" && r != c) out.push(c - 1, r - 1, skew * v);
  }

  // Reject duplicate coordinates (the format forbids them; canonicalize
  // would otherwise silently sum them into a wrong matrix). Covers both
  // repeated explicit entries and a symmetric file redundantly listing
  // both (i,j) and (j,i), whose expansions collide.
  {
    std::vector<std::pair<index_t, index_t>> seen;
    seen.reserve(out.triples().size());
    for (const auto& t : out.triples()) seen.emplace_back(t.row, t.col);
    std::sort(seen.begin(), seen.end());
    auto dup = std::adjacent_find(seen.begin(), seen.end());
    if (dup != seen.end())
      require(false, "mmio: duplicate entry at row " + std::to_string(dup->first + 1) +
                         ", col " + std::to_string(dup->second + 1));
  }
  out.canonicalize();
  return out;
}

CooMatrix<double> read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  require(f.good(), "mmio: cannot open file: " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const CooMatrix<double>& m) {
  out.precision(17);  // round-trip exact for double
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.nrows() << " " << m.ncols() << " " << m.nnz() << "\n";
  for (const auto& t : m.triples())
    out << (t.row + 1) << " " << (t.col + 1) << " " << t.val << "\n";
}

void write_matrix_market_file(const std::string& path, const CooMatrix<double>& m) {
  std::ofstream f(path);
  require(f.good(), "mmio: cannot open file for writing: " + path);
  write_matrix_market(f, m);
}

}  // namespace sa1d
