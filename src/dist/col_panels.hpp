// Column-panel helpers for memory-bounded execution (DESIGN.md §13): a
// budgeted spgemm_dist multiplies C in k column panels, replaying one plan
// per panel over B restricted to a global column window, then concatenates
// the panel outputs. Both operations are rank-local and exact:
//   C(:, [lo,hi)) = A · B(:, [lo,hi))
// and every backend folds a C column's partials independently of every
// other column, so panel-wise execution is bit-identical to the monolithic
// multiply for any semiring ⊕ — the panels partition C's columns, and
// within each column the fold order (push order) is untouched.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "dist/dist_matrix.hpp"
#include "sparse/dcsc.hpp"
#include "util/common.hpp"

namespace sa1d {

/// B restricted to the global column window [plo, phi): same dimensions,
/// bounds, and rank — the local DCSC keeps exactly the stored columns whose
/// global id falls in the window (whole columns, so the nonempty-stored-
/// columns invariant is preserved). Rank-local, no communication.
template <typename VT>
DistMatrix1D<VT> restrict_columns(const DistMatrix1D<VT>& b, index_t plo, index_t phi) {
  require(plo <= phi, "restrict_columns: inverted panel window");
  const DcscMatrix<VT>& m = b.local();
  const index_t base = b.col_lo();
  // Stored column ids are slice-local and ascending; the window maps to a
  // contiguous jc range.
  const index_t llo = plo > base ? plo - base : 0;
  const index_t lhi = phi > base ? phi - base : 0;
  const auto& jc = m.jc();
  const auto k0 = static_cast<std::size_t>(
      std::lower_bound(jc.begin(), jc.end(), llo) - jc.begin());
  const auto k1 = static_cast<std::size_t>(
      std::lower_bound(jc.begin(), jc.end(), lhi) - jc.begin());
  std::vector<index_t> njc(jc.begin() + static_cast<std::ptrdiff_t>(k0),
                           jc.begin() + static_cast<std::ptrdiff_t>(k1));
  const index_t p0 = m.cp()[k0];
  const index_t p1 = m.cp()[k1];
  std::vector<index_t> ncp;
  ncp.reserve(k1 - k0 + 1);
  for (std::size_t k = k0; k <= k1; ++k) ncp.push_back(m.cp()[k] - p0);
  std::vector<index_t> nir(m.ir().begin() + p0, m.ir().begin() + p1);
  std::vector<VT> nvals(m.vals().begin() + p0, m.vals().begin() + p1);
  DcscMatrix<VT> slice(m.nrows(), m.ncols(), std::move(njc), std::move(ncp), std::move(nir),
                       std::move(nvals));
  return DistMatrix1D<VT>(b.nrows(), b.ncols(), b.bounds(), b.rank(), std::move(slice));
}

/// Concatenates per-panel C outputs (same distribution, disjoint stored
/// columns ascending across panels — panel p covers global columns
/// [panel_bounds[p], panel_bounds[p+1])) into the monolithic C. The
/// deterministic panel-concatenation order IS ascending panel order, which
/// reproduces the monolithic call's column order exactly. Rank-local.
template <typename VT>
DistMatrix1D<VT> concat_column_panels(std::vector<DistMatrix1D<VT>>& panels) {
  require(!panels.empty(), "concat_column_panels: no panels");
  if (panels.size() == 1) return std::move(panels.front());
  const DistMatrix1D<VT>& first = panels.front();
  std::size_t nzc = 0, nnz = 0;
  for (const auto& p : panels) {
    nzc += p.local().jc().size();
    nnz += p.local().ir().size();
  }
  std::vector<index_t> jc, cp, ir;
  std::vector<VT> vals;
  jc.reserve(nzc);
  cp.reserve(nzc + 1);
  cp.push_back(0);
  ir.reserve(nnz);
  vals.reserve(nnz);
  index_t off = 0;
  for (const auto& p : panels) {
    const DcscMatrix<VT>& m = p.local();
    require(jc.empty() || m.jc().empty() || m.jc().front() > jc.back(),
            "concat_column_panels: panels must cover ascending disjoint columns");
    jc.insert(jc.end(), m.jc().begin(), m.jc().end());
    for (std::size_t k = 1; k < m.cp().size(); ++k) cp.push_back(m.cp()[k] + off);
    ir.insert(ir.end(), m.ir().begin(), m.ir().end());
    vals.insert(vals.end(), m.vals().begin(), m.vals().end());
    off += static_cast<index_t>(m.ir().size());
  }
  DcscMatrix<VT> merged(first.local().nrows(), first.local().ncols(), std::move(jc),
                        std::move(cp), std::move(ir), std::move(vals));
  return DistMatrix1D<VT>(first.nrows(), first.ncols(), first.bounds(), first.rank(),
                          std::move(merged));
}

}  // namespace sa1d
