// Split-3D SpGEMM (Azad et al. 2016's third dimension): P = c·q² ranks form
// c layers of q×q grids. The inner dimension is split across layers; each
// layer runs 2D sparse SUMMA on its slice pair A(:,K_l)·B(K_l,:), and the
// per-layer partial C's are merged during gather (the "split" reduction).
#pragma once

#include <cmath>
#include <vector>

#include "dist/summa2d.hpp"

namespace sa1d {

/// Layer counts c for which P = c·q² with integral q, ascending.
inline std::vector<int> valid_layer_counts(int P) {
  std::vector<int> out;
  for (int c = 1; c <= P; ++c) {
    if (P % c != 0) continue;
    int q2 = P / c;
    int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(q2))));
    if (q * q == q2) out.push_back(c);
  }
  return out;
}

/// Split-3D SpGEMM. Collective; requires P = layers·q². Returns this rank's
/// partial C as COO in global coordinates (partials of the same entry live
/// on different layers; gather_coo merges them by addition).
template <typename VT>
CooMatrix<VT> spgemm_split_3d(Comm& comm, const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                              int layers, LocalKernel kernel = LocalKernel::Hybrid,
                              int threads = 1) {
  require(a.ncols() == b.nrows(), "spgemm_split_3d: inner dimension mismatch");
  const int P = comm.size();
  require(layers >= 1 && layers <= P && P % layers == 0,
          "spgemm_split_3d: layer count must divide P");
  const int q2 = P / layers;
  const int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(q2))));
  require(q * q == q2, "spgemm_split_3d: P/layers must be a perfect square");

  const int layer = comm.rank() / q2;
  Comm layer_comm = comm.split(layer, comm.rank());

  auto kb = even_split(a.ncols(), layers);
  const index_t klo = kb[static_cast<std::size_t>(layer)];
  const index_t khi = kb[static_cast<std::size_t>(layer) + 1];

  // My layer's inner-dimension slice pair: A(:, K_l) and B(K_l, :).
  CscMatrix<VT> a_l, b_l;
  {
    auto ph = comm.phase(Phase::Other);
    a_l = extract_cols(a, klo, khi);
    CooMatrix<VT> brows(khi - klo, b.ncols());
    for (index_t j = 0; j < b.ncols(); ++j) {
      auto rows = b.col_rows(j);
      auto vals = b.col_vals(j);
      for (std::size_t p = 0; p < rows.size(); ++p)
        if (rows[p] >= klo && rows[p] < khi) brows.push(rows[p] - klo, j, vals[p]);
    }
    b_l = CscMatrix<VT>::from_coo(brows);
  }

  auto part = spgemm_summa_2d(layer_comm, a_l, b_l, kernel, threads);
  // Re-dimension the partial to the full product shape (row ids are already
  // global; the layer only narrowed the contracted dimension).
  return CooMatrix<VT>(a.nrows(), b.ncols(), std::move(part.triples()));
}

}  // namespace sa1d
