// Split-3D SpGEMM (Azad et al. 2016's third dimension): P = c·(q_r·q_c)
// ranks form c layers of q_r × q_c grids — any divisor of P is a valid
// layer count, since every quotient factors into a rectangular grid
// (nearest-square by default, or a pinned grid_rows × grid_cols). The inner
// dimension is split across layers; each layer runs 2D sparse SUMMA on its
// slice pair A(:,K_l)·B(K_l,:), and the per-layer partial C's are merged by
// the semiring's ⊕ while scattering the result back into B's column
// distribution (the "split" reduction) — one all-to-all, no rank-0 gather.
// Operands arrive 1D-distributed and are routed straight to their
// (layer, grid) owners: each nonzero has exactly one target, so the inbound
// redistribution is also a single all-to-all per operand.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "dist/summa2d.hpp"

namespace sa1d {

/// Cached structural program of one full Split-3D multiply on this rank:
/// both inbound (layer, grid)-routes, the layer's stage schedule (which
/// remembers its q_r × q_c grid), and the cross-layer scatter/merge
/// program. Captured by spgemm_split_3d_dist, replayed (values only) by
/// spgemm_split_3d_replay.
template <typename VT, typename SR>
struct Split3dPlan {
  int layers = 1;
  GridRoute<VT> route_a, route_b;
  summadetail::SummaSched<VT, SR> sched;
  ScatterRoute<VT> out;
  std::vector<VT> acc_vals;  ///< replay scratch: this layer's merged partials

  [[nodiscard]] std::uint64_t replay_recv_bytes(int me) const {
    return route_a.replay_recv_bytes(me) + route_b.replay_recv_bytes(me) +
           sched.bcast_recv_bytes + out.replay_recv_bytes(me);
  }

  /// Byte-accurate residency of the full cached program on this rank.
  [[nodiscard]] std::uint64_t bytes_resident() const {
    return route_a.bytes_resident() + route_b.bytes_resident() + sched.bytes_resident() +
           out.bytes_resident() + acc_vals.size() * sizeof(VT);
  }
};

/// Split-3D SpGEMM over 1D-distributed operands. Collective; requires only
/// that `layers` divides P (require_split3d_layers lists the valid counts
/// otherwise) — each layer grid is the nearest-square factorization of
/// P/layers unless `grid_rows`/`grid_cols` pin a shape. C is returned in
/// B's column distribution. `plan` (optional) captures the full value-only
/// replay program while this fresh call runs.
template <typename SRIn = void, typename VT>
DistMatrix1D<VT> spgemm_split_3d_dist(
    Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b, int layers,
    LocalKernel kernel = LocalKernel::Hybrid, int threads = 1,
    std::type_identity_t<Split3dPlan<VT, ResolveSemiring<SRIn, VT>>*> plan = nullptr,
    int grid_rows = 0, int grid_cols = 0, bool overlap = false, int lookahead = 0) {
  using SR = ResolveSemiring<SRIn, VT>;
  require(a.ncols() == b.nrows(), "spgemm_split_3d_dist: inner dimension mismatch");
  const int P = comm.size();
  require_split3d_layers(P, layers, "spgemm_split_3d_dist");
  const int q2 = P / layers;
  const GridShape grid = require_grid_shape(q2, grid_rows, grid_cols, "spgemm_split_3d_dist");
  const int layer = comm.rank() / q2;
  const int gi = (comm.rank() % q2) / grid.cols;
  const int gj = (comm.rank() % q2) % grid.cols;
  if (plan != nullptr) plan->layers = layers;

  auto rb = even_split(a.nrows(), grid.rows);  // row blocks (shared by every layer)
  auto cb = even_split(b.ncols(), grid.cols);  // C/B column blocks (shared too)
  auto kl = even_split(a.ncols(), layers);     // inner dimension across layers
  const int spc = grid.stages / grid.cols;
  const int spr = grid.stages / grid.rows;

  // Flat coarse inner tilings, layer-major: within each layer the inner
  // slice is split into `stages` fine blocks, of which grid column j owns
  // the contiguous run [j·s/q_c, (j+1)·s/q_c) for A and grid row i owns
  // [i·s/q_r, (i+1)·s/q_r) for B — so A has c·q_c coarse tiles and B has
  // c·q_r (they differ on rectangular grids). A tile's flat index decodes
  // to (layer, within-layer grid coordinate), which lets the generic
  // 1D→grid primitive route both operands in one all-to-all each, straight
  // to their (layer, gi, gj) owners.
  std::vector<std::vector<index_t>> kb_layer(static_cast<std::size_t>(layers));
  std::vector<index_t> kflat_a{0}, kflat_b{0};
  kflat_a.reserve(static_cast<std::size_t>(layers) * static_cast<std::size_t>(grid.cols) + 1);
  kflat_b.reserve(static_cast<std::size_t>(layers) * static_cast<std::size_t>(grid.rows) + 1);
  for (int l = 0; l < layers; ++l) {
    const index_t klo = kl[static_cast<std::size_t>(l)];
    const index_t khi = kl[static_cast<std::size_t>(l) + 1];
    kb_layer[static_cast<std::size_t>(l)] = even_split(khi - klo, grid.stages);
    const auto& fine = kb_layer[static_cast<std::size_t>(l)];
    for (int t = 1; t <= grid.cols; ++t)
      kflat_a.push_back(klo + fine[static_cast<std::size_t>(t * spc)]);
    for (int t = 1; t <= grid.rows; ++t)
      kflat_b.push_back(klo + fine[static_cast<std::size_t>(t * spr)]);
  }

  // A block (rb[bi] × inner tile): tile owner is (layer of tile, row bi,
  // grid column = tile position within the layer).
  auto rank_of_a = [qc = grid.cols, q2](int bi, int bjflat) {
    return (bjflat / qc) * q2 + bi * qc + (bjflat % qc);
  };
  // B block (inner tile × cb[bj]): tile owner is (layer, grid row = tile
  // position, column bj).
  auto rank_of_b = [qr = grid.rows, qc = grid.cols, q2](int biflat, int bj) {
    return (biflat / qr) * q2 + (biflat % qr) * qc + bj;
  };
  auto my_a = redistribute_1d_to_2d_grid(comm, a, std::span<const index_t>(rb),
                                         std::span<const index_t>(kflat_a), rank_of_a, gi,
                                         layer * grid.cols + gj,
                                         plan != nullptr ? &plan->route_a : nullptr, overlap);
  auto my_b = redistribute_1d_to_2d_grid(comm, b, std::span<const index_t>(kflat_b),
                                         std::span<const index_t>(cb), rank_of_b,
                                         layer * grid.rows + gi, gj,
                                         plan != nullptr ? &plan->route_b : nullptr, overlap);

  // Each layer's q_r × q_c grid runs SUMMA on its inner slice; partials
  // land in `acc` with global coordinates, and the final scatter merges
  // across both stages and layers with ⊕.
  Comm layer_comm = comm.split(layer, comm.rank());
  CooMatrix<VT> acc(a.nrows(), b.ncols());
  summadetail::summa_stages<SR>(
      layer_comm, grid, my_a, my_b, std::span<const index_t>(rb),
      std::span<const index_t>(kb_layer[static_cast<std::size_t>(layer)]),
      std::span<const index_t>(cb), kernel, threads, acc,
      plan != nullptr ? &plan->sched : nullptr, overlap, lookahead);
  // Pipelined cross-layer "split" reduction: the scatter's ⊕-fold consumes
  // each layer's partial-C chunk as it arrives (streaming rounds-merge in
  // redistribute_coo_to_1d), so the cross-layer merge never holds all
  // arrivals plus the merged copy at once.
  auto c = redistribute_coo_to_1d<SR>(comm, acc, a.nrows(), b.ncols(), b.bounds(),
                                      plan != nullptr ? &plan->out : nullptr, overlap);
  // This layer's merged partials (charged stage by stage in summa_stages)
  // die here: the scatter has folded them into C's canonical distribution.
  comm.report().mem_release(acc.triples().size(),
                            acc.triples().size() * sizeof(Triple<VT>));
  return c;
}

/// Replays a captured Split-3D plan for a structurally identical operand
/// pair: value-only routes in, value-only stage broadcasts + numeric local
/// passes on this rank's layer, value-only cross-layer scatter out.
/// Bit-identical to the fresh call; records zero Phase::Plan time and moves
/// no structural metadata. Collective.
template <typename SR, typename VT>
DistMatrix1D<VT> spgemm_split_3d_replay(Comm& comm, Split3dPlan<VT, SR>& plan,
                                        const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                                        bool overlap = false, int lookahead = 0) {
  const int q2 = comm.size() / plan.layers;
  const int layer = comm.rank() / q2;
  const auto& my_a = replay_1d_to_2d_grid(comm, plan.route_a, a, overlap);
  const auto& my_b = replay_1d_to_2d_grid(comm, plan.route_b, b, overlap);
  Comm layer_comm = comm.split(layer, comm.rank());
  summadetail::summa_stages_replay<SR>(layer_comm, my_a, my_b, plan.sched, plan.acc_vals,
                                       overlap, lookahead);
  return replay_coo_to_1d<SR>(comm, plan.out, std::span<const VT>(plan.acc_vals), overlap);
}

/// Replicated-operand wrapper (the original baseline API): distributes the
/// globals, runs the 1D-in/1D-out Split-3D, and returns this rank's C
/// column slice as COO in global coordinates — gather_coo() reassembles.
/// Layer partials are already merged, so the COO parts are disjoint.
template <typename VT>
CooMatrix<VT> spgemm_split_3d(Comm& comm, const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                              int layers, LocalKernel kernel = LocalKernel::Hybrid,
                              int threads = 1) {
  require(a.ncols() == b.nrows(), "spgemm_split_3d: inner dimension mismatch");
  require_split3d_layers(comm.size(), layers, "spgemm_split_3d");
  auto da = DistMatrix1D<VT>::from_global(comm, a);
  auto db = DistMatrix1D<VT>::from_global(comm, b);
  auto dc = spgemm_split_3d_dist(comm, da, db, layers, kernel, threads);
  auto ph = comm.phase(Phase::Other);
  return dc.local_to_coo_global();
}

}  // namespace sa1d
