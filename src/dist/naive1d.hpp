// Naive ring 1D SpGEMM (Ballard et al.'s "1D block column" baseline): every
// rank needs all of A, so the A slices are circulated around a ring and each
// rank multiplies every slice against its stationary B_i. Communication is
// ~(P-1)·nnz(A) triples regardless of sparsity structure — the volume the
// sparsity-aware Algorithm 1 exists to avoid.
//
// The circulated *structure* (each slice's rows and column grouping) and the
// accumulator's merge program are value-independent, so a RingPlan captured
// alongside one fresh call lets later calls circulate bare value arrays
// (sizeof(VT) per element instead of a full Triple) — the ring still pays
// its (P-1)·nnz(A) element volume, but a third of the bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "dist/dist_matrix.hpp"
#include "dist/redistribute.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spgemm_local.hpp"
#include "runtime/machine.hpp"

namespace sa1d {

/// Cached structural program of one ring-1D multiply on this rank: per hop,
/// the circulating slice's rows and column grouping; plus the deterministic
/// ⊕-merge program of the accumulated partial products and the final local
/// C structure. Captured by spgemm_naive_ring_1d, replayed (values only) by
/// spgemm_naive_ring_1d_replay.
template <typename VT, typename SR>
struct RingPlan {
  struct Hop {
    index_t nnz = 0;                    ///< elements of the circulating slice
    std::vector<index_t> gcol_ids;      ///< distinct global column ids, ascending
    std::vector<std::size_t> starts;    ///< column ranges within the slice, size |gcol_ids|+1
  };
  /// Circulating element of a windowed replay's post-window hops: once the
  /// resident structures run out, the column id travels with the value (row
  /// ids are never needed on replay — every push folds through acc_dst).
  struct ColVal {
    index_t col;
    VT val;
  };
  std::vector<Hop> hops;                ///< hop s = the slice this rank multiplies at step s
  /// Windowed-hop residency (the plan cache's eviction fallback, ROADMAP
  /// item 3): 0 = every hop structure resident (full replay). w ∈ [1, P):
  /// only hops[0..w) keep their gcol_ids/starts; later hops re-derive the
  /// grouping on the fly from circulated (col, val) pairs — ~1/3 more shift
  /// bytes past the window, but the resident footprint drops from ≈nnz(A)
  /// indices to the windowed prefix. Replay stays bit-identical.
  int window = 0;
  std::vector<index_t> acc_dst;         ///< flat push idx -> merged local slot
  std::vector<std::uint8_t> acc_first;  ///< 1 = assign, 0 = ⊕-accumulate
  std::size_t acc_nnz = 0;
  DcscMatrix<VT> c_shell;               ///< merged local C structure (values are scratch)
  std::vector<VT> acc_vals;             ///< replay scratch

  [[nodiscard]] bool windowed() const {
    return window > 0 && static_cast<std::size_t>(window) < hops.size();
  }

  /// Frees the hop structures at positions ≥ w (keeping the element counts,
  /// which the replay guards need), turning this into a windowed plan. Hop 0
  /// (this rank's own slice) is always retained, so w clamps to [1, P].
  /// Idempotent; a second call can only shrink the window further.
  void demote_to_window(int w) {
    if (w < 1) w = 1;
    if (static_cast<std::size_t>(w) >= hops.size()) return;  // nothing to drop
    if (window != 0 && w >= window) return;                  // already at least this small
    window = w;
    for (std::size_t s = static_cast<std::size_t>(w); s < hops.size(); ++s) {
      std::vector<index_t>().swap(hops[s].gcol_ids);
      std::vector<std::size_t>().swap(hops[s].starts);
    }
  }

  /// Exact per-rank collective bytes one value-only replay receives: each
  /// of the (P-1) hop shifts delivers the next slice's value array — bare
  /// values inside the resident window, (col, val) pairs past it.
  [[nodiscard]] std::uint64_t replay_recv_bytes() const {
    std::uint64_t b = 0;
    for (std::size_t s = 1; s < hops.size(); ++s) {
      const bool paired = windowed() && static_cast<int>(s) >= window;
      b += static_cast<std::uint64_t>(hops[s].nnz) * (paired ? sizeof(ColVal) : sizeof(VT));
    }
    return b;
  }

  /// Byte-accurate residency of the cached structural program on this rank
  /// (major arrays only) — what the plan cache's budget accounts against.
  [[nodiscard]] std::uint64_t bytes_resident() const {
    std::uint64_t b = 0;
    for (const auto& h : hops)
      b += h.gcol_ids.size() * sizeof(index_t) + h.starts.size() * sizeof(std::size_t);
    b += acc_dst.size() * sizeof(index_t) + acc_first.size();
    b += acc_vals.size() * sizeof(VT);
    b += c_shell.jc().size() * sizeof(index_t) + c_shell.cp().size() * sizeof(index_t) +
         c_shell.ir().size() * sizeof(index_t) + c_shell.vals().size() * sizeof(VT);
    return b;
  }
};

/// Ring 1D SpGEMM baseline. Collective. C inherits B's column distribution;
/// products and partial merges run over the chosen semiring (the merge is
/// deterministic — ties fold in push order — so a captured plan replays
/// bit-exactly). `plan` (optional) captures the value-only replay program;
/// `window` > 0 captures it *windowed from birth* — only the first `window`
/// hops keep their column structures (the bounded-hop-window execution mode
/// a peak-triples budget selects; PR 8's demotion produced the same shape
/// after the fact) — replays dispatch to ring_replay_windowed automatically.
template <typename SRIn = void, typename VT>
DistMatrix1D<VT> spgemm_naive_ring_1d(
    Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
    std::type_identity_t<RingPlan<VT, ResolveSemiring<SRIn, VT>>*> plan = nullptr,
    bool overlap = false, int window = 0) {
  using SR = ResolveSemiring<SRIn, VT>;
  require(a.ncols() == b.nrows(), "spgemm_naive_ring_1d: inner dimension mismatch");
  const int P = comm.size();
  const int me = comm.rank();
  auto& rep = comm.report();
  constexpr std::uint64_t tb = sizeof(Triple<VT>);

  // Circulating payload: my A slice as triples with global column ids,
  // column-major sorted (DCSC order) so each hop can rebuild column ranges
  // with one scan.
  std::vector<Triple<VT>> circ;
  {
    auto ph = comm.phase(Phase::Other);
    circ.reserve(static_cast<std::size_t>(a.local_nnz()));
    for (index_t k = 0; k < a.local().nzc(); ++k) {
      index_t gcol = a.global_col(k);
      auto rows = a.local().col_rows_at(k);
      auto vals = a.local().col_vals_at(k);
      for (std::size_t p = 0; p < rows.size(); ++p) circ.push_back({rows[p], gcol, vals[p]});
    }
  }
  rep.mem_charge(circ.size(), circ.size() * tb);

  if (plan != nullptr) plan->hops.assign(static_cast<std::size_t>(P), {});
  CooMatrix<VT> acc(a.nrows(), b.local_ncols());
  StreamingTripleMerge<VT> smerge;
  const auto& bl = b.local();
  const int succ = (me + 1) % P, pred = (me - 1 + P) % P;
  for (int step = 0; step < P; ++step) {
    // Overlapped mode posts the hop shift *before* the local multiply and
    // computes from the request's stable view of the shifted-away slice, so
    // the slice travels while this rank multiplies. The shift is the same
    // comm op either way (multiplies record none), so op indices and
    // byte/message counters match the lockstep path exactly.
    std::optional<AlltoallvRequest<Triple<VT>>> shift;
    std::span<const Triple<VT>> cs(circ);
    if (overlap && step + 1 < P) {
      std::vector<std::vector<Triple<VT>>> send(static_cast<std::size_t>(P));
      {
        auto ph = comm.phase(Phase::Other);
        send[static_cast<std::size_t>(succ)] = std::move(circ);
      }
      shift.emplace(comm.ialltoallv(std::move(send)));
      cs = shift->sent_chunk(succ);
    }
    std::vector<index_t> gcol_ids;
    std::vector<std::size_t> starts;
    {
      auto ph = comm.phase(Phase::Comp);
      // Group the circulating slice into columns (triples are column-major).
      for (std::size_t p = 0; p < cs.size(); ++p) {
        if (p == 0 || cs[p].col != cs[p - 1].col) {
          gcol_ids.push_back(cs[p].col);
          starts.push_back(p);
        }
      }
      starts.push_back(cs.size());
      // C_i += A_slice · B_i restricted to B rows matching the slice columns.
      const std::size_t pre = acc.triples().size();
      for (index_t j = 0; j < bl.nzc(); ++j) {
        auto brows = bl.col_rows_at(j);
        auto bvals = bl.col_vals_at(j);
        for (std::size_t p = 0; p < brows.size(); ++p) {
          auto it = std::lower_bound(gcol_ids.begin(), gcol_ids.end(), brows[p]);
          if (it == gcol_ids.end() || *it != brows[p]) continue;
          auto kpos = static_cast<std::size_t>(it - gcol_ids.begin());
          for (std::size_t q = starts[kpos]; q < starts[kpos + 1]; ++q)
            acc.push(cs[q].row, bl.col_id(j), SR::multiply(cs[q].val, bvals[p]));
        }
      }
      const std::uint64_t grew = acc.triples().size() - pre;
      rep.mem_charge(grew, grew * tb);
    }
    if (plan != nullptr) {
      // Structural capture — work a replay skips, accounted like the
      // SUMMA/3D captures so the plan-vs-execute breakdown is comparable
      // across backends. A window > 0 keeps only the first `window` hop
      // structures (hop.nnz is always recorded — the replay guards need it),
      // capturing the plan already demoted.
      auto ph = comm.phase(Phase::Plan);
      auto& hop = plan->hops[static_cast<std::size_t>(step)];
      hop.nnz = static_cast<index_t>(cs.size());
      if (window <= 0 || step < window) {
        hop.gcol_ids = std::move(gcol_ids);
        hop.starts = std::move(starts);
      }
    }
    {
      // Streaming per-hop merge: collapse the accumulator after every hop
      // instead of caching every hop's partials until a terminal merge —
      // bit-identical, and the composed fold program equals the terminal
      // capture (see StreamingTripleMerge in sparse/coo.hpp).
      auto ph = comm.phase(plan != nullptr ? Phase::Plan : Phase::Other);
      const std::uint64_t before = acc.triples().size();
      rep.mem_charge(before, before * tb);  // merge out-buffer transient
      smerge.round(acc.triples(), [](VT x, VT y) { return SR::add(x, y); },
                   plan != nullptr ? &plan->acc_dst : nullptr,
                   plan != nullptr ? &plan->acc_first : nullptr);
      const std::uint64_t after = acc.triples().size();
      rep.mem_release(2 * before - after, (2 * before - after) * tb);
    }
    if (step + 1 < P) {
      const std::uint64_t outgoing = cs.size();
      if (shift.has_value()) {
        circ = shift->take_from(pred);
        shift->wait();  // drain the (empty) remaining chunks so the op retires
      } else {
        // Shift the slice one hop around the ring.
        std::vector<std::vector<Triple<VT>>> send(static_cast<std::size_t>(P));
        {
          auto ph = comm.phase(Phase::Other);
          send[static_cast<std::size_t>(succ)] = std::move(circ);
        }
        auto recv = comm.alltoallv(send);
        circ = std::move(recv[static_cast<std::size_t>(pred)]);
      }
      rep.mem_charge(circ.size(), circ.size() * tb);  // the arriving slice...
      rep.mem_release(outgoing, outgoing * tb);       // ...replaces the shifted-away one
    } else {
      rep.mem_release(cs.size(), cs.size() * tb);  // last hop: the slice dies here
    }
  }

  DcscMatrix<VT> c_local;
  {
    // The per-hop rounds leave `acc` already merged; a capturing build
    // charged each round + program capture to Plan, like the SUMMA/3D
    // captures, so the breakdown is comparable per backend.
    auto ph = comm.phase(plan != nullptr ? Phase::Plan : Phase::Other);
    c_local = DcscMatrix<VT>::from_coo(acc);
    if (plan != nullptr) {
      plan->acc_nnz = acc.triples().size();
      plan->c_shell = c_local;
      if (window > 0) plan->demote_to_window(window);
    }
  }
  // The merged accumulator dies with this frame; c_local is the output.
  rep.mem_release(acc.triples().size(), acc.triples().size() * tb);
  return DistMatrix1D<VT>(a.nrows(), b.ncols(), b.bounds(), me, std::move(c_local));
}

namespace ringdetail {

/// Windowed replay body (RingPlan::windowed()): hops inside the resident
/// window shift bare value arrays against cached structures exactly like the
/// full replay. At the window boundary the sender expands its (still cached)
/// column grouping into circulating (col, val) pairs, and every later hop
/// re-derives the grouping by the same consecutive-equal-columns scan the
/// fresh call ran over its triples — identical push order through the same
/// acc_dst/acc_first fold program, so the result stays bit-identical. This is
/// the memory-demoted fallback the plan cache uses instead of eviction; it
/// exists to shed resident bytes, not to hide latency, so it is always
/// lockstep (callers' overlap flag is ignored).
template <typename SR, typename VT>
DistMatrix1D<VT> ring_replay_windowed(Comm& comm, RingPlan<VT, SR>& plan,
                                      const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b) {
  using CV = typename RingPlan<VT, SR>::ColVal;
  const int P = comm.size();
  const int me = comm.rank();
  const int w = plan.window;
  auto& rep = comm.report();
  std::vector<VT> circ_vals;
  std::vector<CV> circ_pairs;
  {
    auto ph = comm.phase(Phase::Other);
    circ_vals = a.local().vals();
    plan.acc_vals.assign(plan.acc_nnz, VT{});
  }
  rep.mem_charge(circ_vals.size(), circ_vals.size() * sizeof(VT));

  const auto& bl = b.local();
  const int succ = (me + 1) % P, pred = (me - 1 + P) % P;
  std::size_t flat = 0;
  std::vector<index_t> derived_cols;
  std::vector<std::size_t> derived_starts;
  for (int step = 0; step < P; ++step) {
    const bool paired = step >= w;  // this hop's structure was demoted away
    const auto& hop = plan.hops[static_cast<std::size_t>(step)];
    {
      auto ph = comm.phase(Phase::Comp);
      const std::size_t have = paired ? circ_pairs.size() : circ_vals.size();
      if (have != static_cast<std::size_t>(hop.nnz))
        comm.fail(FaultClass::PlanMismatch, "ring_replay",
                  "ring_replay_windowed: hop " + std::to_string(step) + " carries " +
                      std::to_string(have) + " values where the cached slice structure holds " +
                      std::to_string(hop.nnz) + " (rank " +
                      std::to_string(comm.global_rank(comm.rank())) + ")");
      const std::vector<index_t>* gcols = &hop.gcol_ids;
      const std::vector<std::size_t>* starts = &hop.starts;
      if (paired) {
        // Re-derive the column grouping from the circulated pairs — the same
        // scan the fresh call ran (pairs preserve the column-major order).
        derived_cols.clear();
        derived_starts.clear();
        for (std::size_t p = 0; p < circ_pairs.size(); ++p) {
          if (p == 0 || circ_pairs[p].col != circ_pairs[p - 1].col) {
            derived_cols.push_back(circ_pairs[p].col);
            derived_starts.push_back(p);
          }
        }
        derived_starts.push_back(circ_pairs.size());
        gcols = &derived_cols;
        starts = &derived_starts;
      }
      for (index_t j = 0; j < bl.nzc(); ++j) {
        auto brows = bl.col_rows_at(j);
        auto bvals = bl.col_vals_at(j);
        for (std::size_t p = 0; p < brows.size(); ++p) {
          auto it = std::lower_bound(gcols->begin(), gcols->end(), brows[p]);
          if (it == gcols->end() || *it != brows[p]) continue;
          auto kpos = static_cast<std::size_t>(it - gcols->begin());
          for (std::size_t q = (*starts)[kpos]; q < (*starts)[kpos + 1]; ++q) {
            const VT v = SR::multiply(paired ? circ_pairs[q].val : circ_vals[q], bvals[p]);
            const auto slot = static_cast<std::size_t>(plan.acc_dst[flat]);
            plan.acc_vals[slot] =
                plan.acc_first[flat] != 0 ? v : SR::add(plan.acc_vals[slot], v);
            ++flat;
          }
        }
      }
    }
    const std::uint64_t out_elems = paired ? circ_pairs.size() : circ_vals.size();
    const std::uint64_t out_bytes = out_elems * (paired ? sizeof(CV) : sizeof(VT));
    if (step + 1 < P) {
      if (step + 1 < w) {
        // Still inside the window: bare value shift, like the full replay.
        std::vector<std::vector<VT>> send(static_cast<std::size_t>(P));
        {
          auto ph = comm.phase(Phase::Other);
          send[static_cast<std::size_t>(succ)] = std::move(circ_vals);
        }
        auto recv = comm.alltoallv(send);
        circ_vals = std::move(recv[static_cast<std::size_t>(pred)]);
        rep.mem_charge(circ_vals.size(), circ_vals.size() * sizeof(VT));
        rep.mem_release(out_elems, out_bytes);
      } else {
        // Crossing or past the boundary: the receiver holds no structure for
        // the next hop, so the column ids travel with the values.
        std::vector<CV> out;
        {
          auto ph = comm.phase(Phase::Other);
          if (!paired) {
            // Boundary hop: expand this step's cached grouping per element.
            out.reserve(circ_vals.size());
            for (std::size_t kpos = 0; kpos + 1 < hop.starts.size(); ++kpos)
              for (std::size_t q = hop.starts[kpos]; q < hop.starts[kpos + 1]; ++q)
                out.push_back({hop.gcol_ids[kpos], circ_vals[q]});
            circ_vals.clear();
          } else {
            out = std::move(circ_pairs);
          }
        }
        std::vector<std::vector<CV>> send(static_cast<std::size_t>(P));
        {
          auto ph = comm.phase(Phase::Other);
          send[static_cast<std::size_t>(succ)] = std::move(out);
        }
        auto recv = comm.alltoallv(send);
        circ_pairs = std::move(recv[static_cast<std::size_t>(pred)]);
        rep.mem_charge(circ_pairs.size(), circ_pairs.size() * sizeof(CV));
        rep.mem_release(out_elems, out_bytes);
      }
    } else {
      rep.mem_release(out_elems, out_bytes);  // last hop: the slice dies here
    }
  }

  auto ph = comm.phase(Phase::Other);
  DcscMatrix<VT> c_local = plan.c_shell;
  c_local.mutable_vals() = plan.acc_vals;
  return DistMatrix1D<VT>(a.nrows(), b.ncols(), b.bounds(), me, std::move(c_local));
}

}  // namespace ringdetail

/// Replays a captured ring plan for a structurally identical operand pair:
/// the (P-1) hop shifts carry bare value arrays, the per-hop multiplies run
/// against the cached slice structures, and the partials ⊕-fold through the
/// cached merge program. Bit-identical to the fresh call; zero Phase::Plan
/// time, no structural metadata moved. Collective. A demoted (windowed) plan
/// takes the ring_replay_windowed path instead.
template <typename SR, typename VT>
DistMatrix1D<VT> spgemm_naive_ring_1d_replay(Comm& comm, RingPlan<VT, SR>& plan,
                                             const DistMatrix1D<VT>& a,
                                             const DistMatrix1D<VT>& b,
                                             bool overlap = false) {
  if (plan.windowed()) return ringdetail::ring_replay_windowed<SR, VT>(comm, plan, a, b);
  const int P = comm.size();
  const int me = comm.rank();
  auto& rep = comm.report();
  std::vector<VT> circ_vals;
  {
    auto ph = comm.phase(Phase::Other);
    circ_vals = a.local().vals();
    plan.acc_vals.assign(plan.acc_nnz, VT{});
  }
  rep.mem_charge(circ_vals.size(), circ_vals.size() * sizeof(VT));

  const auto& bl = b.local();
  const int succ = (me + 1) % P, pred = (me - 1 + P) % P;
  std::size_t flat = 0;
  for (int step = 0; step < P; ++step) {
    // Same overlapped-shift structure as the fresh call: post the hop, then
    // multiply from the request's view of the outgoing value array.
    std::optional<AlltoallvRequest<VT>> shift;
    std::span<const VT> cv(circ_vals);
    if (overlap && step + 1 < P) {
      std::vector<std::vector<VT>> send(static_cast<std::size_t>(P));
      {
        auto ph = comm.phase(Phase::Other);
        send[static_cast<std::size_t>(succ)] = std::move(circ_vals);
      }
      shift.emplace(comm.ialltoallv(std::move(send)));
      cv = shift->sent_chunk(succ);
    }
    {
      auto ph = comm.phase(Phase::Comp);
      const auto& hop = plan.hops[static_cast<std::size_t>(step)];
      // Replay guard: the circulating value array must match the cached hop
      // structure (its column ranges index into it); a diverged slice —
      // this rank's own A at step 0, a mis-sized shift afterwards — raises
      // machine-wide instead of reading out of range.
      if (cv.size() != static_cast<std::size_t>(hop.nnz))
        comm.fail(FaultClass::PlanMismatch, "ring_replay",
                  "spgemm_naive_ring_1d_replay: hop " + std::to_string(step) + " carries " +
                      std::to_string(cv.size()) + " values where the cached slice "
                      "structure holds " + std::to_string(hop.nnz) + " (rank " +
                      std::to_string(comm.global_rank(comm.rank())) + ")");
      for (index_t j = 0; j < bl.nzc(); ++j) {
        auto brows = bl.col_rows_at(j);
        auto bvals = bl.col_vals_at(j);
        for (std::size_t p = 0; p < brows.size(); ++p) {
          auto it = std::lower_bound(hop.gcol_ids.begin(), hop.gcol_ids.end(), brows[p]);
          if (it == hop.gcol_ids.end() || *it != brows[p]) continue;
          auto kpos = static_cast<std::size_t>(it - hop.gcol_ids.begin());
          for (std::size_t q = hop.starts[kpos]; q < hop.starts[kpos + 1]; ++q) {
            const VT v = SR::multiply(cv[q], bvals[p]);
            const auto slot = static_cast<std::size_t>(plan.acc_dst[flat]);
            plan.acc_vals[slot] =
                plan.acc_first[flat] != 0 ? v : SR::add(plan.acc_vals[slot], v);
            ++flat;
          }
        }
      }
    }
    if (step + 1 < P) {
      const std::uint64_t outgoing = cv.size();
      if (shift.has_value()) {
        circ_vals = shift->take_from(pred);
        shift->wait();
      } else {
        std::vector<std::vector<VT>> send(static_cast<std::size_t>(P));
        {
          auto ph = comm.phase(Phase::Other);
          send[static_cast<std::size_t>(succ)] = std::move(circ_vals);
        }
        auto recv = comm.alltoallv(send);
        circ_vals = std::move(recv[static_cast<std::size_t>(pred)]);
      }
      rep.mem_charge(circ_vals.size(), circ_vals.size() * sizeof(VT));
      rep.mem_release(outgoing, outgoing * sizeof(VT));
    } else {
      rep.mem_release(cv.size(), cv.size() * sizeof(VT));  // last hop
    }
  }

  auto ph = comm.phase(Phase::Other);
  DcscMatrix<VT> c_local = plan.c_shell;
  c_local.mutable_vals() = plan.acc_vals;
  return DistMatrix1D<VT>(a.nrows(), b.ncols(), b.bounds(), me, std::move(c_local));
}

}  // namespace sa1d
