// Naive ring 1D SpGEMM (Ballard et al.'s "1D block column" baseline): every
// rank needs all of A, so the A slices are circulated around a ring and each
// rank multiplies every slice against its stationary B_i. Communication is
// ~(P-1)·nnz(A) triples regardless of sparsity structure — the volume the
// sparsity-aware Algorithm 1 exists to avoid.
#pragma once

#include <vector>

#include "dist/dist_matrix.hpp"
#include "kernels/semiring.hpp"
#include "kernels/spgemm_local.hpp"
#include "runtime/machine.hpp"

namespace sa1d {

/// Ring 1D SpGEMM baseline. Collective. C inherits B's column distribution;
/// products and partial merges run over the chosen semiring.
template <typename SRIn = void, typename VT>
DistMatrix1D<VT> spgemm_naive_ring_1d(Comm& comm, const DistMatrix1D<VT>& a,
                                      const DistMatrix1D<VT>& b) {
  using SR = ResolveSemiring<SRIn, VT>;
  require(a.ncols() == b.nrows(), "spgemm_naive_ring_1d: inner dimension mismatch");
  const int P = comm.size();
  const int me = comm.rank();

  // Circulating payload: my A slice as triples with global column ids,
  // column-major sorted (DCSC order) so each hop can rebuild column ranges
  // with one scan.
  std::vector<Triple<VT>> circ;
  {
    auto ph = comm.phase(Phase::Other);
    circ.reserve(static_cast<std::size_t>(a.local_nnz()));
    for (index_t k = 0; k < a.local().nzc(); ++k) {
      index_t gcol = a.global_col(k);
      auto rows = a.local().col_rows_at(k);
      auto vals = a.local().col_vals_at(k);
      for (std::size_t p = 0; p < rows.size(); ++p) circ.push_back({rows[p], gcol, vals[p]});
    }
  }

  CooMatrix<VT> acc(a.nrows(), b.local_ncols());
  const auto& bl = b.local();
  for (int step = 0; step < P; ++step) {
    {
      auto ph = comm.phase(Phase::Comp);
      // Group the circulating slice into columns (triples are column-major).
      std::vector<index_t> gcol_ids;
      std::vector<std::size_t> starts;
      for (std::size_t p = 0; p < circ.size(); ++p) {
        if (p == 0 || circ[p].col != circ[p - 1].col) {
          gcol_ids.push_back(circ[p].col);
          starts.push_back(p);
        }
      }
      starts.push_back(circ.size());
      // C_i += A_slice · B_i restricted to B rows matching the slice columns.
      for (index_t j = 0; j < bl.nzc(); ++j) {
        auto brows = bl.col_rows_at(j);
        auto bvals = bl.col_vals_at(j);
        for (std::size_t p = 0; p < brows.size(); ++p) {
          auto it = std::lower_bound(gcol_ids.begin(), gcol_ids.end(), brows[p]);
          if (it == gcol_ids.end() || *it != brows[p]) continue;
          auto kpos = static_cast<std::size_t>(it - gcol_ids.begin());
          for (std::size_t q = starts[kpos]; q < starts[kpos + 1]; ++q)
            acc.push(circ[q].row, bl.col_id(j), SR::multiply(circ[q].val, bvals[p]));
        }
      }
    }
    if (step + 1 < P) {
      // Shift the slice one hop around the ring.
      std::vector<std::vector<Triple<VT>>> send(static_cast<std::size_t>(P));
      {
        auto ph = comm.phase(Phase::Other);
        send[static_cast<std::size_t>((me + 1) % P)] = std::move(circ);
      }
      auto recv = comm.alltoallv(send);
      circ = std::move(recv[static_cast<std::size_t>((me - 1 + P) % P)]);
    }
  }

  DcscMatrix<VT> c_local;
  {
    auto ph = comm.phase(Phase::Other);
    acc.canonicalize_with([](VT x, VT y) { return SR::add(x, y); });
    c_local = DcscMatrix<VT>::from_coo(acc);
  }
  return DistMatrix1D<VT>(a.nrows(), b.ncols(), b.bounds(), me, std::move(c_local));
}

}  // namespace sa1d
