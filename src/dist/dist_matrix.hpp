// 1D column-distributed sparse matrix: the data layout of the paper's
// Algorithm 1. Rank i owns the contiguous global column range
// [bounds[i], bounds[i+1]) as a local DCSC slice whose column ids are
// 0-based within the slice; global_col() maps them back. Bounds may be
// uneven (flops-balanced or partitioner-induced layouts).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "runtime/machine.hpp"
#include "sparse/dcsc.hpp"
#include "sparse/ops.hpp"
#include "util/common.hpp"

namespace sa1d {

/// Splits `n = w.size()` items into `parts` contiguous ranges whose summed
/// weights are as even as prefix cuts allow (the continuous analogue of the
/// paper's flops-balanced METIS objective). Returns boundaries of size
/// parts+1 with boundaries[0] = 0 and boundaries.back() = n.
inline std::vector<index_t> weighted_split(std::span<const double> w, int parts) {
  require(parts > 0, "weighted_split: parts must be positive");
  std::vector<double> prefix(w.size() + 1, 0.0);
  for (std::size_t i = 0; i < w.size(); ++i) prefix[i + 1] = prefix[i] + w[i];
  const double total = prefix.back();
  std::vector<index_t> bounds(static_cast<std::size_t>(parts) + 1, 0);
  bounds.back() = static_cast<index_t>(w.size());
  for (int p = 1; p < parts; ++p) {
    double target = total * static_cast<double>(p) / static_cast<double>(parts);
    auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    auto cut = static_cast<index_t>(it - prefix.begin());
    bounds[static_cast<std::size_t>(p)] =
        std::max(bounds[static_cast<std::size_t>(p) - 1],
                 std::min(cut, static_cast<index_t>(w.size())));
  }
  return bounds;
}

/// 1D column-distributed matrix over a Comm. Each rank holds its slice and
/// the replicated bounds vector; the handle is rank-local (SPMD style).
template <typename VT = double>
class DistMatrix1D {
 public:
  using value_type = VT;

  DistMatrix1D() = default;

  DistMatrix1D(index_t nrows, index_t ncols, std::vector<index_t> bounds, int rank,
               DcscMatrix<VT> local)
      : nrows_(nrows), ncols_(ncols), bounds_(std::move(bounds)), rank_(rank),
        local_(std::move(local)) {
    require(nrows >= 0 && ncols >= 0, "DistMatrix1D: negative dimension");
    require(bounds_.size() >= 2 && bounds_.front() == 0 && bounds_.back() == ncols,
            "DistMatrix1D: bounds must cover [0, ncols]");
    require(std::is_sorted(bounds_.begin(), bounds_.end()),
            "DistMatrix1D: bounds must be non-decreasing");
    require(rank >= 0 && static_cast<std::size_t>(rank) + 1 < bounds_.size(),
            "DistMatrix1D: rank outside bounds");
    require(local_.ncols() == col_hi() - col_lo(),
            "DistMatrix1D: local slice width does not match bounds");
    require(local_.nrows() == nrows, "DistMatrix1D: local slice row count mismatch");
  }

  /// Distributes a replicated global matrix: every rank keeps its column
  /// slice. No communication (the global operand is already everywhere);
  /// the paper charges real distribution as preprocessing where relevant.
  static DistMatrix1D from_global(Comm& comm, const CscMatrix<VT>& a,
                                  std::vector<index_t> bounds = {}) {
    if (bounds.empty()) bounds = even_split(a.ncols(), comm.size());
    require(bounds.size() == static_cast<std::size_t>(comm.size()) + 1,
            "DistMatrix1D::from_global: bounds size must be P+1");
    index_t lo = bounds[static_cast<std::size_t>(comm.rank())];
    index_t hi = bounds[static_cast<std::size_t>(comm.rank()) + 1];
    auto slice = DcscMatrix<VT>::from_csc(extract_cols(a, lo, hi));
    return DistMatrix1D(a.nrows(), a.ncols(), std::move(bounds), comm.rank(), std::move(slice));
  }

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] const std::vector<index_t>& bounds() const { return bounds_; }
  [[nodiscard]] int rank() const { return rank_; }

  [[nodiscard]] index_t col_lo() const { return bounds_[static_cast<std::size_t>(rank_)]; }
  [[nodiscard]] index_t col_hi() const { return bounds_[static_cast<std::size_t>(rank_) + 1]; }
  [[nodiscard]] index_t local_ncols() const { return col_hi() - col_lo(); }
  [[nodiscard]] index_t local_nnz() const { return local_.nnz(); }

  [[nodiscard]] const DcscMatrix<VT>& local() const { return local_; }
  /// Mutable slice access for value-only replay programs (the structure
  /// contract is the caller's: overwrite vals in place, never jc/cp/ir —
  /// same rule as DcscMatrix::mutable_vals).
  [[nodiscard]] DcscMatrix<VT>& mutable_local() { return local_; }

  /// Global column id of the k-th *nonzero* local column.
  [[nodiscard]] index_t global_col(index_t k) const { return col_lo() + local_.col_id(k); }

  /// Total nonzeros across all slices. Collective.
  [[nodiscard]] index_t global_nnz(Comm& comm) const {
    return comm.allreduce_sum(local_.nnz());
  }

  /// This rank's slice as COO triples in *global* coordinates (rank-local,
  /// no communication). The interchange form of the slice: gather() and
  /// the replicated-operand baseline wrappers are built on it.
  [[nodiscard]] CooMatrix<VT> local_to_coo_global() const {
    CooMatrix<VT> out(nrows_, ncols_);
    for (index_t k = 0; k < local_.nzc(); ++k) {
      index_t gcol = global_col(k);
      auto rows = local_.col_rows_at(k);
      auto vals = local_.col_vals_at(k);
      for (std::size_t p = 0; p < rows.size(); ++p) out.push(rows[p], gcol, vals[p]);
    }
    return out;
  }

  /// Reassembles the full matrix on every rank. Collective; O(nnz) traffic.
  [[nodiscard]] CscMatrix<VT> gather(Comm& comm) const {
    auto coo = local_to_coo_global();
    auto mine = std::move(coo.triples());
    auto chunks = comm.allgatherv(std::span<const Triple<VT>>(mine));
    CooMatrix<VT> all(nrows_, ncols_);
    for (auto& chunk : chunks)
      for (auto& t : chunk) all.push(t.row, t.col, t.val);
    all.canonicalize();
    return CscMatrix<VT>::from_coo(all);
  }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<index_t> bounds_{0, 0};
  int rank_ = 0;
  DcscMatrix<VT> local_;
};

}  // namespace sa1d
