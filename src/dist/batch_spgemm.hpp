// Batched small-multiply fusion: spgemm_dist_batched admits k multiplies
// against the multi-tenant plan cache (runtime/plan_cache.hpp) and fuses
// their per-phase collectives — one concatenated alltoallv per ring hop /
// route exchange instead of k, one fused row/column broadcast per SUMMA
// stage, one interleaved RDMA fetch wave (and one barrier) for the whole
// SA-1D group — so k small multiplies pay ~1× the per-message latency
// (alpha) per phase instead of k×, while each member's byte volume, compute
// order, and ⊕-fold program are untouched.
//
// Bit-identity contract: every member's result equals its own sequential
// spgemm_dist_cached call, bit for bit. Fusion only concatenates message
// payloads (member-major within each destination chunk, consumed in
// ascending-source-then-member order); each member's multiply loops and
// fold programs run unchanged with per-member flat counters, so no
// floating-point operation is reordered.
//
// Ordering model (DESIGN.md §11): lookups, votes, admissions, builds, and
// fusion groups are all derived in item order by every rank from agreed
// state, so the collective sequence is identical machine-wide. Members are
// grouped by fuse key (backend + grid shape + layer count); a plan may
// appear at most once per group (members of the same tenant share scratch),
// and windowed ring plans always replay solo (their lockstep fallback path
// does not fuse). A recoverable fault (CorruptionDetected / PlanMismatch)
// during the batch unwinds every rank identically; the batch-level retry
// drops the touched entries, recovers collectively, and re-runs the whole
// batch as uniform misses — bounded by max_recovery_retries.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "runtime/plan_cache.hpp"

namespace sa1d {

namespace batchdetail {

/// One batch member after cache resolution: its position in the request
/// list, the cache entry whose plan it replays, and its operands.
template <typename VT, typename SR>
struct Member {
  std::size_t idx = 0;
  typename PlanCache<VT, SR>::Entry* entry = nullptr;
  const DistMatrix1D<VT>* a = nullptr;
  const DistMatrix1D<VT>* b = nullptr;
};

// ---- fused ring replay ---------------------------------------------------

/// Replays k ring plans with fused hop shifts: per step, ONE alltoallv whose
/// successor chunk is the member-major concatenation of every member's
/// circulating value array — (P-1) messages per rank for the whole group
/// instead of k·(P-1). Each member's multiply/fold body is the sequential
/// replay's, with its own flat counter, so each result is bit-identical.
template <typename SR, typename VT>
void fused_ring_replay(Comm& comm, std::vector<Member<VT, SR>>& ms, bool overlap,
                       std::vector<DistMatrix1D<VT>>& results) {
  const int P = comm.size();
  const int me = comm.rank();
  const int succ = (me + 1) % P, pred = (me - 1 + P) % P;
  const std::size_t k = ms.size();
  std::vector<std::vector<VT>> circ(k);
  std::vector<std::size_t> flat(k, 0);
  {
    auto ph = comm.phase(Phase::Other);
    for (std::size_t m = 0; m < k; ++m) {
      auto& plan = ms[m].entry->plan->ring_plan();
      circ[m] = ms[m].a->local().vals();
      plan.acc_vals.assign(plan.acc_nnz, VT{});
    }
  }

  // Splits one received concatenated chunk back into per-member circulating
  // arrays using the cached next-hop element counts.
  auto split_chunk = [&](std::vector<VT>& chunk, int next_step) {
    auto ph = comm.phase(Phase::Other);
    std::size_t need = 0;
    for (std::size_t m = 0; m < k; ++m)
      need += static_cast<std::size_t>(
          ms[m].entry->plan->ring_plan().hops[static_cast<std::size_t>(next_step)].nnz);
    if (chunk.size() != need)
      comm.fail(FaultClass::PlanMismatch, "ring_replay",
                "fused ring replay: hop " + std::to_string(next_step) + " shift delivered " +
                    std::to_string(chunk.size()) + " values where the cached slices hold " +
                    std::to_string(need) + " (rank " +
                    std::to_string(comm.global_rank(comm.rank())) + ")");
    std::size_t off = 0;
    for (std::size_t m = 0; m < k; ++m) {
      const auto n = static_cast<std::size_t>(
          ms[m].entry->plan->ring_plan().hops[static_cast<std::size_t>(next_step)].nnz);
      circ[m].assign(chunk.begin() + static_cast<std::ptrdiff_t>(off),
                     chunk.begin() + static_cast<std::ptrdiff_t>(off + n));
      off += n;
    }
  };

  for (int step = 0; step < P; ++step) {
    // Same overlapped-shift structure as the sequential replay: post the
    // fused hop first, multiply from the request's stable view.
    std::optional<AlltoallvRequest<VT>> shift;
    std::vector<std::span<const VT>> views(k);
    if (overlap && step + 1 < P) {
      std::vector<std::size_t> lens(k);
      for (std::size_t m = 0; m < k; ++m) lens[m] = circ[m].size();
      std::vector<std::vector<VT>> send(static_cast<std::size_t>(P));
      {
        auto ph = comm.phase(Phase::Other);
        auto& chunk = send[static_cast<std::size_t>(succ)];
        std::size_t total = 0;
        for (auto l : lens) total += l;
        chunk.reserve(total);
        for (std::size_t m = 0; m < k; ++m) {
          chunk.insert(chunk.end(), circ[m].begin(), circ[m].end());
          circ[m].clear();
        }
      }
      shift.emplace(comm.ialltoallv(std::move(send)));
      std::span<const VT> all = shift->sent_chunk(succ);
      std::size_t off = 0;
      for (std::size_t m = 0; m < k; ++m) {
        views[m] = all.subspan(off, lens[m]);
        off += lens[m];
      }
    } else {
      for (std::size_t m = 0; m < k; ++m) views[m] = std::span<const VT>(circ[m]);
    }

    for (std::size_t m = 0; m < k; ++m) {
      auto ph = comm.phase(Phase::Comp);
      auto& plan = ms[m].entry->plan->ring_plan();
      const auto& hop = plan.hops[static_cast<std::size_t>(step)];
      const auto cv = views[m];
      if (cv.size() != static_cast<std::size_t>(hop.nnz))
        comm.fail(FaultClass::PlanMismatch, "ring_replay",
                  "fused ring replay: member " + std::to_string(m) + " hop " +
                      std::to_string(step) + " carries " + std::to_string(cv.size()) +
                      " values where the cached slice structure holds " +
                      std::to_string(hop.nnz) + " (rank " +
                      std::to_string(comm.global_rank(comm.rank())) + ")");
      const auto& bl = ms[m].b->local();
      std::size_t& fl = flat[m];
      for (index_t j = 0; j < bl.nzc(); ++j) {
        auto brows = bl.col_rows_at(j);
        auto bvals = bl.col_vals_at(j);
        for (std::size_t p = 0; p < brows.size(); ++p) {
          auto it = std::lower_bound(hop.gcol_ids.begin(), hop.gcol_ids.end(), brows[p]);
          if (it == hop.gcol_ids.end() || *it != brows[p]) continue;
          auto kpos = static_cast<std::size_t>(it - hop.gcol_ids.begin());
          for (std::size_t q = hop.starts[kpos]; q < hop.starts[kpos + 1]; ++q) {
            const VT v = SR::multiply(cv[q], bvals[p]);
            const auto slot = static_cast<std::size_t>(plan.acc_dst[fl]);
            plan.acc_vals[slot] =
                plan.acc_first[fl] != 0 ? v : SR::add(plan.acc_vals[slot], v);
            ++fl;
          }
        }
      }
    }

    if (step + 1 < P) {
      if (shift.has_value()) {
        auto chunk = shift->take_from(pred);
        shift->wait();
        split_chunk(chunk, step + 1);
      } else {
        std::vector<std::vector<VT>> send(static_cast<std::size_t>(P));
        {
          auto ph = comm.phase(Phase::Other);
          auto& chunk = send[static_cast<std::size_t>(succ)];
          std::size_t total = 0;
          for (const auto& c : circ) total += c.size();
          chunk.reserve(total);
          for (std::size_t m = 0; m < k; ++m) {
            chunk.insert(chunk.end(), circ[m].begin(), circ[m].end());
            circ[m].clear();
          }
        }
        auto recv = comm.alltoallv(send);
        split_chunk(recv[static_cast<std::size_t>(pred)], step + 1);
      }
    }
  }

  auto ph = comm.phase(Phase::Other);
  for (std::size_t m = 0; m < k; ++m) {
    auto& plan = ms[m].entry->plan->ring_plan();
    DcscMatrix<VT> c_local = plan.c_shell;
    c_local.mutable_vals() = plan.acc_vals;
    results[ms[m].idx] = DistMatrix1D<VT>(ms[m].a->nrows(), ms[m].b->ncols(),
                                          ms[m].b->bounds(), me, std::move(c_local));
  }
}

// ---- fused grid (SUMMA-2D / Split-3D) replay -----------------------------

/// Backend-neutral view of one grid-family member's cached program pieces.
template <typename VT, typename SR>
struct GridView {
  std::size_t idx = 0;
  DistSpgemmPlan<VT, SR>* plan = nullptr;
  GridRoute<VT>* route_a = nullptr;
  GridRoute<VT>* route_b = nullptr;
  summadetail::SummaSched<VT, SR>* sched = nullptr;
  ScatterRoute<VT>* out = nullptr;
  std::vector<VT>* acc_vals = nullptr;
  const DistMatrix1D<VT>* a = nullptr;
  const DistMatrix1D<VT>* b = nullptr;
};

/// Replays every member's inbound A+B routes in ONE fused alltoallv: each
/// destination chunk is the member-major concatenation of [member's route_a
/// values, member's route_b values]; receive side consumes sources in
/// ascending rank order and splits each chunk the same way, scattering into
/// each route's cached block with per-member-per-route flat counters — the
/// exact flat order each sequential replay_1d_to_2d_grid produces.
template <typename SR, typename VT>
void fused_grid_routes(Comm& comm, std::vector<GridView<VT, SR>>& gs, bool overlap) {
  const int P = comm.size();
  const std::size_t k = gs.size();
  std::vector<std::vector<VT>> send(static_cast<std::size_t>(P));
  {
    auto ph = comm.phase(Phase::Other);
    for (std::size_t m = 0; m < k; ++m) {
      for (int which = 0; which < 2; ++which) {
        const GridRoute<VT>& route = which == 0 ? *gs[m].route_a : *gs[m].route_b;
        const auto& local =
            which == 0 ? gs[m].a->local() : gs[m].b->local();
        std::size_t expect = 0;
        for (const auto& src : route.send_src) expect += src.size();
        if (local.vals().size() != expect)
          comm.fail(FaultClass::PlanMismatch, "replay_1d_to_2d_grid",
                    "fused grid routes: member " + std::to_string(m) + " operand has " +
                        std::to_string(local.vals().size()) +
                        " values but the cached route packs " + std::to_string(expect) +
                        " (rank " + std::to_string(comm.global_rank(comm.rank())) + ")");
      }
    }
    for (int p = 0; p < P; ++p) {
      auto& chunk = send[static_cast<std::size_t>(p)];
      for (std::size_t m = 0; m < k; ++m) {
        for (int which = 0; which < 2; ++which) {
          const GridRoute<VT>& route = which == 0 ? *gs[m].route_a : *gs[m].route_b;
          const VT* vals = (which == 0 ? gs[m].a->local() : gs[m].b->local()).vals().data();
          for (auto i : route.send_src[static_cast<std::size_t>(p)])
            chunk.push_back(vals[static_cast<std::size_t>(i)]);
        }
      }
    }
  }
  std::vector<std::size_t> flat_a(k, 0), flat_b(k, 0);
  auto scatter_chunk = [&](int p, const std::vector<VT>& chunk) {
    auto ph = comm.phase(Phase::Other);
    std::size_t off = 0;
    for (std::size_t m = 0; m < k; ++m) {
      for (int which = 0; which < 2; ++which) {
        GridRoute<VT>& route = which == 0 ? *gs[m].route_a : *gs[m].route_b;
        std::size_t& fl = which == 0 ? flat_a[m] : flat_b[m];
        const auto n =
            static_cast<std::size_t>(route.recv_counts[static_cast<std::size_t>(p)]);
        if (off + n > chunk.size())
          comm.fail(FaultClass::PlanMismatch, "replay_1d_to_2d_grid",
                    "fused grid routes: chunk from rank " +
                        std::to_string(comm.global_rank(p)) +
                        " is shorter than the cached routes expect");
        VT* bv = route.block.mutable_vals().data();
        for (std::size_t i = 0; i < n; ++i)
          bv[static_cast<std::size_t>(route.recv_place[fl++])] = chunk[off + i];
        off += n;
      }
    }
    if (off != chunk.size())
      comm.fail(FaultClass::PlanMismatch, "replay_1d_to_2d_grid",
                "fused grid routes: chunk from rank " + std::to_string(comm.global_rank(p)) +
                    " carries " + std::to_string(chunk.size()) +
                    " values where the cached routes expect " + std::to_string(off));
  };
  if (overlap) {
    auto req = comm.ialltoallv(std::move(send));
    for (int p = 0; p < P; ++p) scatter_chunk(p, req.take_from(p));
  } else {
    auto recv = comm.alltoallv(send);
    for (int p = 0; p < P; ++p) scatter_chunk(p, recv[static_cast<std::size_t>(p)]);
  }
}

/// The fused stage loop over one shared q_r × q_c grid: per stage, ONE row
/// broadcast and ONE column broadcast carrying the member-major
/// concatenation of every member's block values (every member shares the
/// stage's roots, since they share the grid). Per-member stage bodies —
/// shell fill, numeric pass, ⊕-fold — run in member order with per-member
/// flat counters, mirroring summa_stages_replay exactly.
template <typename SR, typename VT>
void fused_summa_stages(Comm& grid_comm, std::vector<GridView<VT, SR>>& gs, bool overlap) {
  const std::size_t k = gs.size();
  auto& sched0 = *gs[0].sched;
  const int s = static_cast<int>(sched0.stages.size());
  const int spc = s / sched0.grid_cols;
  const int spr = s / sched0.grid_rows;
  const int gi = grid_comm.rank() / sched0.grid_cols;
  const int gj = grid_comm.rank() % sched0.grid_cols;
  Comm row_comm = grid_comm.split(gi, gj);
  Comm col_comm = grid_comm.split(gj, gi);

  std::vector<std::size_t> flat(k, 0);
  for (std::size_t m = 0; m < k; ++m) gs[m].acc_vals->assign(gs[m].sched->acc_nnz, VT{});

  // Root-side gathers, concatenated member-major (roots are shared).
  auto extract = [&](int st, std::vector<VT>& aall, std::vector<VT>& ball) {
    for (std::size_t m = 0; m < k; ++m) {
      auto& stage = gs[m].sched->stages[static_cast<std::size_t>(st)];
      if (gj == st / spc) {
        const auto& av = gs[m].route_a->block.vals();
        aall.insert(aall.end(), av.begin() + stage.a_val_lo, av.begin() + stage.a_val_hi);
      }
      if (gi == st / spr) {
        const VT* bv = gs[m].route_b->block.vals().data();
        ball.reserve(ball.size() + stage.b_src.size());
        for (auto i : stage.b_src) ball.push_back(bv[static_cast<std::size_t>(i)]);
      }
    }
  };

  // Post-broadcast fused stage body: split by the cached shell sizes, then
  // run each member's guard + shell fill + numeric pass + fold in order.
  auto run_stage = [&](int st, std::vector<VT> aall, std::vector<VT> ball) {
    std::size_t aneed = 0, bneed = 0;
    for (std::size_t m = 0; m < k; ++m) {
      aneed += gs[m].sched->stages[static_cast<std::size_t>(st)].a_blk.vals().size();
      bneed += gs[m].sched->stages[static_cast<std::size_t>(st)].b_blk.vals().size();
    }
    if (aall.size() != aneed || ball.size() != bneed)
      grid_comm.fail(FaultClass::PlanMismatch, "summa_stages_replay",
                     "fused stage " + std::to_string(st) + " broadcast delivered " +
                         std::to_string(aall.size()) + "/" + std::to_string(ball.size()) +
                         " values where the cached shells hold " + std::to_string(aneed) +
                         "/" + std::to_string(bneed));
    std::size_t aoff = 0, boff = 0;
    for (std::size_t m = 0; m < k; ++m) {
      auto& stage = gs[m].sched->stages[static_cast<std::size_t>(st)];
      CscMatrix<VT> c_blk;
      {
        auto ph = grid_comm.phase(Phase::Other);
        const auto an = stage.a_blk.vals().size();
        const auto bn = stage.b_blk.vals().size();
        stage.a_blk.mutable_vals().assign(aall.begin() + static_cast<std::ptrdiff_t>(aoff),
                                          aall.begin() + static_cast<std::ptrdiff_t>(aoff + an));
        stage.b_blk.mutable_vals().assign(ball.begin() + static_cast<std::ptrdiff_t>(boff),
                                          ball.begin() + static_cast<std::ptrdiff_t>(boff + bn));
        aoff += an;
        boff += bn;
      }
      {
        auto ph = grid_comm.phase(Phase::Comp);
        c_blk = spgemm_local_numeric<SR, VT>(stage.a_blk, stage.b_blk, stage.sym,
                                             &gs[m].sched->ws);
      }
      {
        auto ph = grid_comm.phase(Phase::Other);
        std::size_t& fl = flat[m];
        auto& acc = *gs[m].acc_vals;
        auto& sched = *gs[m].sched;
        for (const auto& v : c_blk.vals()) {
          const auto slot = static_cast<std::size_t>(sched.acc_dst[fl]);
          acc[slot] = sched.acc_first[fl] != 0 ? v : SR::add(acc[slot], v);
          ++fl;
        }
      }
    }
  };

  if (!overlap) {
    for (int st = 0; st < s; ++st) {
      std::vector<VT> aall, ball;
      {
        auto ph = grid_comm.phase(Phase::Other);
        extract(st, aall, ball);
      }
      row_comm.bcast(aall, st / spc);
      col_comm.bcast(ball, st / spr);
      run_stage(st, std::move(aall), std::move(ball));
    }
  } else {
    // Full-lookahead fused broadcasts: all stage payloads posted up front
    // in the lockstep issue order, drained ascending.
    std::vector<std::vector<VT>> aalls(static_cast<std::size_t>(s));
    std::vector<std::vector<VT>> balls(static_cast<std::size_t>(s));
    {
      auto ph = grid_comm.phase(Phase::Other);
      for (int st = 0; st < s; ++st)
        extract(st, aalls[static_cast<std::size_t>(st)], balls[static_cast<std::size_t>(st)]);
    }
    std::vector<CommRequest> areq, breq;
    areq.reserve(static_cast<std::size_t>(s));
    breq.reserve(static_cast<std::size_t>(s));
    for (int st = 0; st < s; ++st) {
      areq.push_back(row_comm.ibcast(aalls[static_cast<std::size_t>(st)], st / spc));
      breq.push_back(col_comm.ibcast(balls[static_cast<std::size_t>(st)], st / spr));
    }
    for (int st = 0; st < s; ++st) {
      const auto sk = static_cast<std::size_t>(st);
      areq[sk].wait();
      breq[sk].wait();
      run_stage(st, std::move(aalls[sk]), std::move(balls[sk]));
    }
  }
}

/// Replays every member's outbound scatter/merge in ONE fused alltoallv
/// (member-major concatenation per destination; folds consume ascending
/// source then member order with per-member flat counters — the captured
/// rank-major fold order of each sequential replay_coo_to_1d).
template <typename SR, typename VT>
void fused_scatter_out(Comm& comm, std::vector<GridView<VT, SR>>& gs,
                       std::vector<DistMatrix1D<VT>>& results) {
  const int P = comm.size();
  const std::size_t k = gs.size();
  std::vector<std::vector<VT>> send(static_cast<std::size_t>(P));
  {
    auto ph = comm.phase(Phase::Other);
    for (int p = 0; p < P; ++p) {
      auto& chunk = send[static_cast<std::size_t>(p)];
      for (std::size_t m = 0; m < k; ++m) {
        const auto& route = *gs[m].out;
        const VT* pv = gs[m].acc_vals->data();
        for (auto i : route.send_src[static_cast<std::size_t>(p)])
          chunk.push_back(pv[static_cast<std::size_t>(i)]);
      }
    }
  }
  std::vector<DcscMatrix<VT>> c_locals(k);
  std::vector<std::size_t> flat(k, 0);
  {
    auto ph = comm.phase(Phase::Other);
    for (std::size_t m = 0; m < k; ++m) c_locals[m] = gs[m].out->c_shell;
  }
  auto fold_chunk = [&](int p, const std::vector<VT>& chunk) {
    auto ph = comm.phase(Phase::Other);
    std::size_t off = 0;
    for (std::size_t m = 0; m < k; ++m) {
      const auto& route = *gs[m].out;
      const auto n = static_cast<std::size_t>(route.recv_counts[static_cast<std::size_t>(p)]);
      if (off + n > chunk.size())
        comm.fail(FaultClass::PlanMismatch, "replay_coo_to_1d",
                  "fused scatter: chunk from rank " + std::to_string(comm.global_rank(p)) +
                      " is shorter than the cached scatter programs expect");
      VT* cv = c_locals[m].mutable_vals().data();
      std::size_t& fl = flat[m];
      for (std::size_t i = 0; i < n; ++i) {
        const auto slot = static_cast<std::size_t>(route.recv_dst[fl]);
        cv[slot] = route.recv_first[fl] != 0 ? chunk[off + i] : SR::add(cv[slot], chunk[off + i]);
        ++fl;
      }
      off += n;
    }
    if (off != chunk.size())
      comm.fail(FaultClass::PlanMismatch, "replay_coo_to_1d",
                "fused scatter: chunk from rank " + std::to_string(comm.global_rank(p)) +
                    " carries " + std::to_string(chunk.size()) +
                    " values where the cached programs expect " + std::to_string(off));
  };
  auto recv = comm.alltoallv(send);
  for (int p = 0; p < P; ++p) fold_chunk(p, recv[static_cast<std::size_t>(p)]);
  auto ph = comm.phase(Phase::Other);
  for (std::size_t m = 0; m < k; ++m) {
    const auto& route = *gs[m].out;
    results[gs[m].idx] = DistMatrix1D<VT>(route.nrows, route.ncols, route.out_bounds,
                                          comm.rank(), std::move(c_locals[m]));
  }
}

/// Full fused replay of one grid-family group (same backend, same grid,
/// same layer count): fused routes in, fused stage broadcasts (over the
/// layer communicator for Split-3D), fused scatter out.
template <typename SR, typename VT>
void fused_grid_replay(Comm& comm, std::vector<GridView<VT, SR>>& gs, int layers,
                       bool overlap, std::vector<DistMatrix1D<VT>>& results) {
  fused_grid_routes<SR>(comm, gs, overlap);
  if (layers <= 1) {
    fused_summa_stages<SR>(comm, gs, overlap);
  } else {
    const int q2 = comm.size() / layers;
    const int layer = comm.rank() / q2;
    Comm layer_comm = comm.split(layer, comm.rank());
    fused_summa_stages<SR>(layer_comm, gs, overlap);
  }
  fused_scatter_out<SR>(comm, gs, results);
}

}  // namespace batchdetail

/// Batched multi-tenant SpGEMM: resolves every item against the plan cache
/// with ONE fused validation exchange and ONE fused coherence vote, builds
/// the misses in item order, then replays the hits in fused groups (one set
/// of collectives per group instead of per member). Results are returned in
/// item order and are bit-identical to sequential spgemm_dist_cached_mt
/// calls; `stats` (optional) is resized to the item count.
template <typename SRIn = void, typename VT>
std::vector<DistMatrix1D<VT>> spgemm_dist_batched(
    Comm& comm, PlanCache<VT, ResolveSemiring<SRIn, VT>>& cache,
    const std::vector<std::pair<const DistMatrix1D<VT>*, const DistMatrix1D<VT>*>>& items,
    const DistSpgemmOptions& opt = {}, std::vector<DistSpgemmStats>* stats = nullptr) {
  using SR = ResolveSemiring<SRIn, VT>;
  using Entry = typename PlanCache<VT, SR>::Entry;
  using Member = batchdetail::Member<VT, SR>;
  const std::size_t n = items.size();
  std::vector<DistMatrix1D<VT>> results(n);
  if (stats != nullptr) stats->assign(n, DistSpgemmStats{});
  if (n == 0) return results;
  ++comm.report().toplevel_calls;
  // Outermost gauge scope: the batch's peak covers plan residency plus every
  // member's build/replay transients.
  MemGaugeScope gauge(comm.report());

  // (1) Fused batch validation: one control exchange covers the options
  // digest, every item's shape, and the first local validation failure —
  // the same rank-consistency contract as validate_collective, paid once.
  {
    std::string digest;
    std::string verdict;
    {
      auto ph = comm.phase(Phase::Other);
      digest = std::to_string(static_cast<int>(opt.algo)) + "," + std::to_string(opt.layers) +
               "," + std::to_string(opt.grid_rows) + "," + std::to_string(opt.grid_cols) +
               "," + std::to_string(opt.expected_iterations) + "," +
               std::to_string(opt.expected_batch) + "," +
               std::to_string(opt.max_recovery_retries) + "," +
               std::to_string(static_cast<int>(opt.overlap)) + "," +
               std::to_string(opt.max_peak_triples) + "," + std::to_string(opt.panels) +
               "," + std::to_string(opt.ring_window);
      for (std::size_t i = 0; i < n; ++i) {
        digest += "|" + std::to_string(items[i].first->nrows()) + "x" +
                  std::to_string(items[i].first->ncols()) + "," +
                  std::to_string(items[i].second->nrows()) + "x" +
                  std::to_string(items[i].second->ncols());
        const std::string e = distdetail::local_validation_error(
            comm.size(), opt.algo, *items[i].first, *items[i].second, opt, comm.injector());
        if (!e.empty() && verdict.empty())
          verdict = "batch item " + std::to_string(i) + ": " + e;
      }
    }
    auto all = comm.exchange_control(digest + "\n" + verdict);
    for (int p = 0; p < comm.size(); ++p) {
      const auto& s = all[static_cast<std::size_t>(p)];
      if (s.substr(0, s.find('\n')) != all[0].substr(0, all[0].find('\n')))
        throw ValidationError(
            ErrorContext{comm.global_rank(p), comm.report().comm_ops, "validate"},
            "spgemm_dist_batched: options/operands disagree across ranks (rank " +
                std::to_string(comm.global_rank(p)) + " has [" +
                s.substr(0, s.find('\n')) + "], rank " + std::to_string(comm.global_rank(0)) +
                " has [" + all[0].substr(0, all[0].find('\n')) + "])");
    }
    for (int p = 0; p < comm.size(); ++p) {
      const auto& s = all[static_cast<std::size_t>(p)];
      const std::string v = s.substr(s.find('\n') + 1);
      if (!v.empty())
        throw ValidationError(
            ErrorContext{comm.global_rank(p), comm.report().comm_ops, "validate"}, v);
    }
  }

  // Fingerprints are structure-only: compute once per item, reused across
  // retries.
  std::vector<StructureFingerprint> fps(n);
  {
    auto ph = comm.phase(Phase::Other);
    for (std::size_t i = 0; i < n; ++i)
      fps[i] = detail1d::fingerprint_of(*items[i].first, *items[i].second);
  }

  // Batch-level self-healing: a recoverable fault unwinds every rank with
  // the identical typed error; drop the touched entries, recover, re-run
  // the whole batch as uniform misses.
  int attempts = 0;
  for (;;) {
    std::vector<Entry*> touched;
    try {
      // (2) Cache resolution + ONE fused coherence vote. An item whose key
      // was already missed earlier in this batch is a *deferred hit*: it
      // replays the entry the earlier item is about to build.
      std::vector<Member> members(n);
      std::vector<std::size_t> miss_items;
      std::string vote;
      for (std::size_t i = 0; i < n; ++i) {
        members[i] = Member{i, nullptr, items[i].first, items[i].second};
        Entry* e = cache.find(fps[i], opt);
        bool hit = e != nullptr;
        if (!hit) {
          // Within-batch duplicate? Defer onto the pending admission.
          for (auto j : miss_items) {
            if (cachedetail::fp_equal(fps[j], fps[i])) {
              e = members[j].entry;
              hit = true;
              vote += "d" + std::to_string(j) + ";";
              break;
            }
          }
        } else {
          vote += "h" + std::to_string(e->seq) + ";";
        }
        if (!hit) {
          e = &cache.admit(fps[i], opt);
          miss_items.push_back(i);
          vote += "m;";
        }
        members[i].entry = e;
        bool known = false;
        for (auto* t : touched) known = known || t == e;
        if (!known) touched.push_back(e);
      }
      cachedetail::vote_uniform(comm, vote + "/b" + std::to_string(cache.budget()),
                                "spgemm_dist_batched");

      // ONE counted reuse-check collective for the whole batch — the
      // data-plane twin of the per-call matches() allreduce the sequential
      // path pays per multiply (this is the verification alpha the batch
      // amortizes k×). Local verdict: every hit member's full fingerprint
      // must equal its entry's; misses verify through build() itself.
      {
        int ok = 1;
        {
          auto ph = comm.phase(Phase::Other);
          for (std::size_t i = 0; i < n; ++i) {
            const Entry* e = members[i].entry;
            if (e->plan != nullptr && !e->plan->empty() &&
                !cachedetail::fp_equal(e->fp, fps[i]))
              ok = 0;
          }
        }
        if (comm.allreduce(ok, [](int x, int y) { return x < y ? x : y; }) != 1)
          comm.fail(FaultClass::PlanMismatch, "spgemm_dist_batched",
                    "spgemm_dist_batched: a rank's operands diverged from the "
                    "batch's cached plans after the coherence vote");
      }

      // Pin every batch entry: building or evicting for one member must not
      // drop a plan another member is about to replay. Mirror the
      // sequential LRU order (touch in item order; admissions are already
      // at the front in admission order).
      for (std::size_t i = 0; i < n; ++i) {
        members[i].entry->pinned = true;
        cache.touch(members[i].entry);
      }

      // (3) Build the misses sequentially in item order (each build is the
      // member's own result — the fresh multiply IS its execution).
      for (auto i : miss_items) {
        Entry& e = *members[i].entry;
        results[i] = e.plan->build(comm, *items[i].first, *items[i].second, opt,
                                   stats != nullptr ? &(*stats)[i] : nullptr);
        e.bytes = cachedetail::agree_max_bytes(comm, e.plan->bytes_resident());
        cache.record_miss(comm);
        if (stats != nullptr) (*stats)[i].cache_misses = 1;
      }

      // (4) Group the hit members by fuse key. A plan appears at most once
      // per group (same-tenant members share replay scratch), and windowed
      // ring plans replay solo (their demoted fallback path does not fuse).
      struct Group {
        std::string key;
        std::vector<Member> ms;
      };
      std::vector<Group> groups;
      for (std::size_t i = 0; i < n; ++i) {
        bool was_miss = false;
        for (auto j : miss_items) was_miss = was_miss || j == i;
        if (was_miss) continue;
        Entry* e = members[i].entry;
        std::string key;
        if (e->plan->panels() > 1) {
          // Panelized plans replay solo: their execution is a sequence of
          // per-panel sub-plan replays (bounded-footprint loop), which does
          // not interleave with another member's fused collectives.
          key = "panel#" + std::to_string(i);
        } else
        switch (e->plan->chosen()) {
          case Algo::Auto: break;  // unreachable: plans are built
          case Algo::SparseAware1D: key = "sa"; break;
          case Algo::Ring1D:
            key = e->plan->ring_plan().windowed() ? "ringw#" + std::to_string(i) : "ring";
            break;
          case Algo::Summa2D:
            key = "s2:" + std::to_string(e->plan->summa_plan().sched.grid_rows) + "x" +
                  std::to_string(e->plan->summa_plan().sched.grid_cols);
            break;
          case Algo::Split3D:
            key = "s3:" + std::to_string(e->plan->layers()) + ":" +
                  std::to_string(e->plan->split3d_plan().sched.grid_rows) + "x" +
                  std::to_string(e->plan->split3d_plan().sched.grid_cols);
            break;
        }
        Group* g = nullptr;
        for (auto& cand : groups) {
          if (cand.key != key) continue;
          bool has_plan = false;
          for (const auto& m : cand.ms) has_plan = has_plan || m.entry == e;
          if (!has_plan) {
            g = &cand;
            break;
          }
        }
        if (g == nullptr) {
          groups.push_back(Group{key, {}});
          g = &groups.back();
        }
        g->ms.push_back(members[i]);
      }

      // (5) Execute the groups in first-occurrence order. Singletons run
      // the sequential verified replay; larger groups run the fused one.
      for (auto& g : groups) {
        if (g.ms.size() == 1) {
          const auto& m = g.ms[0];
          results[m.idx] = m.entry->plan->execute_verified(
              comm, *m.a, *m.b, stats != nullptr ? &(*stats)[m.idx] : nullptr);
        } else {
          const Algo algo = g.ms[0].entry->plan->chosen();
          if (algo == Algo::Ring1D) {
            batchdetail::fused_ring_replay<SR>(comm, g.ms, opt.overlap, results);
          } else if (algo == Algo::SparseAware1D) {
            using Plan1D = SpgemmPlan1D<VT, SR>;
            std::vector<typename Plan1D::FusedArg> args;
            args.reserve(g.ms.size());
            for (auto& m : g.ms)
              args.push_back({&m.entry->plan->sa1d_plan(), m.a, m.b});
            auto cs = Plan1D::execute_fused(
                comm, std::span<const typename Plan1D::FusedArg>(args));
            for (std::size_t m = 0; m < g.ms.size(); ++m)
              results[g.ms[m].idx] = std::move(cs[m]);
          } else {
            std::vector<batchdetail::GridView<VT, SR>> gv;
            gv.reserve(g.ms.size());
            int layers = 1;
            for (auto& m : g.ms) {
              auto* plan = m.entry->plan.get();
              if (algo == Algo::Summa2D) {
                auto& p2 = plan->summa_plan();
                gv.push_back({m.idx, plan, &p2.route_a, &p2.route_b, &p2.sched, &p2.out,
                              &p2.acc_vals, m.a, m.b});
              } else {
                auto& p3 = plan->split3d_plan();
                layers = p3.layers;
                gv.push_back({m.idx, plan, &p3.route_a, &p3.route_b, &p3.sched, &p3.out,
                              &p3.acc_vals, m.a, m.b});
              }
            }
            batchdetail::fused_grid_replay<SR>(comm, gv, layers, opt.overlap, results);
          }
          // Reuse + minimal stats bookkeeping for the fused members (the
          // fused paths bypass execute_verified's counters).
          for (auto& m : g.ms) {
            m.entry->plan->record_batched_replay(comm);
            if (stats != nullptr) {
              auto& st = (*stats)[m.idx];
              st.requested = opt.algo;
              st.chosen = m.entry->plan->chosen();
              st.layers = m.entry->plan->layers();
              st.plan_reused = true;
            }
          }
        }
        for (auto& m : g.ms) {
          cache.record_hit(comm, m.entry->plan->chosen());
          if (stats != nullptr) (*stats)[m.idx].cache_hits = 1;
        }
      }

      // (6) Release the pins, then run the deferred eviction pass once for
      // the whole batch.
      const std::uint64_t ev_before = cache.stats().evictions;
      for (std::size_t i = 0; i < n; ++i) members[i].entry->pinned = false;
      cache.enforce_budget(comm);
      cache.publish_gauge(comm);
      if (stats != nullptr) {
        for (std::size_t i = 0; i < n; ++i) {
          (*stats)[i].recoveries = attempts;
          (*stats)[i].cache_evictions = cache.stats().evictions - ev_before;
          (*stats)[i].cache_bytes_resident = cache.stats().bytes_resident;
        }
      }
      return results;
    } catch (const Sa1dError& e) {
      const bool recoverable = e.fault_class() == FaultClass::Corruption ||
                               e.fault_class() == FaultClass::PlanMismatch;
      // Errors unwind machine-wide with identical state, so every rank
      // unpins/erases the same entries whether or not it can retry. Every
      // batch entry is dropped — a hit's cached plan may be the corrupt
      // one — so the retry re-runs the whole batch as uniform misses.
      cache.unpin_all();
      for (auto* t : touched) cache.erase_entry(t);
      if (!recoverable || attempts >= opt.max_recovery_retries) throw;
      ++attempts;
      comm.recover();  // collective; rethrows if the fault turned fatal
      distdetail::vote_recovery_alignment(comm, "spgemm_dist_batched");
      ++comm.report().plan_recoveries;
    }
  }
}

}  // namespace sa1d
