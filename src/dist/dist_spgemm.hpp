// The unified distributed SpGEMM front-end: one entry point over the
// sparsity-aware 1D algorithm (paper Algorithm 1), the naive ring-1D
// baseline, 2D sparse SUMMA, and Split-3D. Every backend takes 1D
// column-distributed operands and returns C in B's column distribution
// (the 2D/3D backends redistribute through dist/redistribute.hpp), so the
// paper's comparative experiments — and the applications — can switch
// algorithms with one enum.
//
// Algo::Auto gathers cheap structural statistics (replicated metadata from
// the inspector's Algorithm 2 machinery: nnz, nzc, needed-fraction, planned
// fetch volume) and asks CostModel::predict to rank the concrete backends;
// the decision and the per-algorithm predictions are recorded in
// DistSpgemmStats. DESIGN.md §7 documents the dispatcher, the
// redistribution data flow, and the cost-model features.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/spgemm1d.hpp"
#include "dist/col_panels.hpp"
#include "dist/naive1d.hpp"
#include "dist/spgemm3d.hpp"
#include "dist/summa2d.hpp"
#include "part/permutation.hpp"
#include "part/reorder.hpp"
#include "runtime/cost_model.hpp"
#include "sparse/generators.hpp"
#include "util/timer.hpp"

namespace sa1d {

struct DistSpgemmOptions {
  /// Which backend runs; Auto lets the cost model decide.
  Algo algo = Algo::Auto;
  /// Sparsity-aware 1D knobs; `sa1d.kernel` and `sa1d.threads` also drive
  /// the local multiplies of every other backend.
  Spgemm1dOptions sa1d;
  /// Split-3D layer count; 0 = pick the best valid layering (cost model
  /// under Auto, smallest non-trivial one otherwise).
  int layers = 0;
  /// Process-grid shape for the 2D/3D backends (the per-layer grid for
  /// Split-3D): 0 = the nearest-square q_r × q_c factorization of the
  /// (sub-)communicator size; a pinned shape must factor it exactly
  /// (require_grid_shape names the divisors otherwise).
  int grid_rows = 0;
  int grid_cols = 0;
  /// Iterations the application expects to run against one cached plan (MCL
  /// declares its round budget, AMG its refresh interval). > 1 makes Auto
  /// price each backend over the whole horizon — one build plus (h−1)
  /// value-only replays — so the build lands on the *replay-optimal*
  /// backend instead of merely recording the replay_choice disagreement.
  /// 0/1 = one-shot pricing (the pre-horizon behavior).
  int expected_iterations = 0;
  /// Multiplies the caller expects to fuse per spgemm_dist_batched call
  /// (dist/batch_spgemm.hpp): > 1 makes Auto price replays with the
  /// per-phase latency amortized over the batch (AlgoCostInputs::batch), so
  /// a serving workload's plans are built onto the backend that is optimal
  /// *under fusion*. 0/1 = unbatched pricing.
  int expected_batch = 0;
  /// Bounded self-healing: how many times spgemm_dist_cached may collectively
  /// invalidate the plan and rebuild after a recoverable fault
  /// (CorruptionDetected / PlanMismatch) before the error propagates.
  int max_recovery_retries = 2;
  /// Master switch for overlapped (nonblocking) execution: double-buffered
  /// SUMMA stage broadcasts, pipelined redistribution/fold all-to-alls, the
  /// ring's early hop shift, and the SA-1D value-get prefetch (gated
  /// together with sa1d.overlap). Off = the seed's lockstep collectives;
  /// results are bit-identical either way.
  bool overlap = true;
  /// Ordering policy (the reorder plan stage, DESIGN.md §12): Identity runs
  /// in the caller's ordering; Partitioned/Random force a symmetric
  /// relabeling of both operands (the multiply runs as P·A·Pᵀ · P·B·Pᵀ and
  /// C is returned in the caller's original ordering); Auto prices every
  /// backend under all three orderings and picks the (backend × ordering)
  /// pair jointly. Non-identity orderings require square operands on
  /// identical bounds with at least P columns — anything else degrades to
  /// Identity, recorded in DistSpgemmStats::ordering.
  Ordering reorder = Ordering::Identity;
  /// Seed of the partitioner / random relabeling (part of the plan identity:
  /// same structure + same seed ⇒ the identical permutation on every call).
  std::uint64_t reorder_seed = 1;
  /// Peak-triples budget for the execution's transient memory (DESIGN.md
  /// §13): the per-rank high-water RankReport::peak_triples gauge of one
  /// call must stay under this. 0 = unbounded (the pre-budget behavior).
  /// A positive budget switches every backend to its bounded variant
  /// (streaming rounds-merges, bounded overlap lookahead, windowed ring
  /// capture) and makes the dispatch resolve a column panelization whose
  /// modeled peak fits — or raise a rank-uniform ValidationError when none
  /// does. Part of the collective options digest: divergent budgets across
  /// ranks fail validation before any data collective.
  std::uint64_t max_peak_triples = 0;
  /// Column-panel count: 0 = resolve from the budget (1 when unbudgeted,
  /// else the smallest feasible count); 1 = pinned monolithic; k > 1 = run
  /// exactly k panels. Panel execution multiplies C in k global column
  /// windows of B and concatenates in ascending panel order — bit-identical
  /// to the monolithic call for any semiring.
  int panels = 0;
  /// Ring hop-window for budgeted plan capture: > 0 captures RingPlan
  /// structure for only the first `ring_window` hops (the demotion twin of
  /// PR 8, now a first-class execution mode — replays stream the remaining
  /// hops recomputing per-hop metadata). 0 = full capture when unbudgeted,
  /// a bounded default window when max_peak_triples > 0.
  int ring_window = 0;

  friend bool operator==(const DistSpgemmOptions&, const DistSpgemmOptions&) = default;
};

/// What one spgemm_dist call decided and why. `predictions` (one entry per
/// concrete backend, infeasible ones marked) and `inputs` are filled when
/// the cost model ran, i.e. under Algo::Auto (for plan-cached calls the
/// cached decision trace is reported, gathered once at build time).
///
/// Plan-aware Auto: `replay_predictions`/`replay_choice` reprice the same
/// inputs for *cached replays* (CostModel::predict_replay — zero plan
/// term, value-only collective volume). A replay still executes the
/// build-time `chosen` backend; the replay trace is the repricing under
/// the replay cost regime, recorded next to the one-shot trace so
/// iterated callers can see when the two horizons disagree (acting on the
/// disagreement is a ROADMAP follow-on). Both are derived from the cached
/// inputs with no extra communication.
///
/// The per-call counters below are rank-local deltas measured around the
/// call by the DistSpgemmPlan entry points (dist/dist_plan.hpp); the plain
/// one-shot spgemm_dist leaves them zero. `meta_coll_bytes` is the
/// collective traffic beyond the pure value payload a cached replay moves —
/// structural metadata (D/cp gathers, triple-borne structure), exactly zero
/// on a plan reuse.
struct DistSpgemmStats {
  Algo requested = Algo::Auto;
  Algo chosen = Algo::Auto;
  int layers = 1;  ///< layer count used when chosen == Split3D
  AlgoCostInputs inputs{};
  std::vector<AlgoPrediction> predictions;
  std::vector<AlgoPrediction> replay_predictions;  ///< replay-priced trace (plan-cached Auto)
  Algo replay_choice = Algo::Auto;  ///< argmin of replay_predictions; Auto = not computed
  int replay_layers = 1;  ///< layer count the replay-priced Split3D choice assumed

  // Joint ordering decision + reorder accounting (DESIGN.md §12).
  // `ordering` is what the call actually ran under — a requested
  // non-identity ordering degrades to Identity for ineligible operands
  // (non-square, mismatched bounds, fewer columns than ranks) or when the
  // partitioner produced no valid layout.
  Ordering requested_ordering = Ordering::Identity;
  Ordering ordering = Ordering::Identity;
  double reorder_cut_fraction = 1.0;    ///< measured cut fraction (when a partition was built)
  double reorder_part_imbalance = 1.0;  ///< measured max/mean part weight
  double partition_seconds = 0.0;       ///< partitioner CPU this call (0 on a plan replay)
  /// Collective bytes the ordering stage received this call: the structure
  /// gather feeding the partitioner plus the forward operand permutes.
  /// Exactly 0 on a value-matched plan replay; the inverse scatter that
  /// returns C in the caller's ordering counts as regular execution comm.
  std::uint64_t reorder_coll_bytes = 0;

  bool plan_reused = false;            ///< this call replayed a cached plan
  double plan_seconds = 0.0;           ///< Phase::Plan CPU delta (this rank)
  std::uint64_t coll_recv_bytes = 0;   ///< collective bytes received (this rank)
  std::uint64_t meta_coll_bytes = 0;   ///< coll_recv_bytes beyond the value-replay volume

  // Overlap accounting (this rank's deltas, filled by the DistSpgemmPlan
  // entry points like the counters above): modeled comm seconds the rank
  // actually waited for vs. seconds hidden behind concurrent compute.
  double comm_wait_s = 0.0;    ///< RankReport::comm_s delta
  double comm_hidden_s = 0.0;  ///< RankReport::overlap_s delta
  /// Fraction of modeled comm time hidden behind compute; 0 when nothing
  /// was hidden (including every lockstep run).
  [[nodiscard]] double overlap_efficiency() const {
    const double tot = comm_wait_s + comm_hidden_s;
    return tot > 0.0 ? comm_hidden_s / tot : 0.0;
  }

  // Robustness accounting (DESIGN.md §9).
  int horizon_iters = 1;          ///< pricing horizon Auto used (from expected_iterations)
  int recoveries = 0;             ///< recoverable-fault plan rebuilds this call performed
  int validation_failovers = 0;   ///< Auto candidates skipped (dispatch validation / veto)

  // Memory-bounded execution accounting (DESIGN.md §13).
  int panels = 1;  ///< column panels the call executed (1 = monolithic)
  /// This rank's high-water transient gauge over the call (triples and the
  /// byte equivalent) — the measured counterpart of the modeled
  /// AlgoPrediction::peak_triples, asserted ≤ max_peak_triples by the
  /// budget tests whenever a feasible plan exists.
  std::uint64_t peak_triples = 0;
  std::uint64_t peak_bytes = 0;

  // Plan-cache accounting (runtime/plan_cache.hpp; DESIGN.md §11): what the
  // multi-tenant cache did for *this* call. hits + misses == 1 for a call
  // routed through the cache, both 0 otherwise; `cache_bytes_resident` is
  // the cache's agreed residency gauge after the call.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;       ///< evictions this call's admission forced
  std::uint64_t cache_bytes_resident = 0;
};

/// Measures this host's local-SpGEMM flop rate and COO triple-processing
/// rate once (cached) and returns `base` with the calibrated compute rates
/// filled in, so CostModel::predict shares a unit system with the measured
/// phase times. ~10 ms on first call.
inline CostParams calibrate_cost_params(CostParams base = {}) {
  struct Rates {
    double flop_s;
    double triple_s;
  };
  static const Rates r = [] {
    Rates out{};
    auto a = erdos_renyi<double>(2000, 12.0, 987);
    std::vector<detail::Workspace<PlusTimes<double>>> ws;
    auto sym = spgemm_local_symbolic<PlusTimes<double>, double>(a, a, LocalKernel::Hybrid, 1, &ws);
    spgemm_local_numeric<PlusTimes<double>, double>(a, a, sym, &ws);  // warm caches
    CpuTimer tf;
    auto c = spgemm_local_numeric<PlusTimes<double>, double>(a, a, sym, &ws);
    out.flop_s = tf.seconds() / static_cast<double>(std::max<index_t>(total_flops(a, a), 1));

    auto triples = c.to_coo().triples();
    SplitMix64 g(13);
    for (std::size_t i = triples.size(); i > 1; --i)
      std::swap(triples[i - 1], triples[static_cast<std::size_t>(g.below(i))]);
    CooMatrix<double> m(c.nrows(), c.ncols(), std::move(triples));
    CpuTimer tt;
    m.canonicalize();
    out.triple_s = tt.seconds() / static_cast<double>(std::max<index_t>(m.nnz(), 1));
    return out;
  }();
  base.flop_s = r.flop_s;
  base.triple_s = r.triple_s;
  return base;
}

/// Gathers the structural statistics CostModel::predict consumes: one
/// metadata allgather (the same D/cp exchange the SA-1D inspector performs)
/// plus local scans, then global reductions — every field is a global
/// aggregate, so all ranks derive the identical Auto decision. Collective;
/// CPU time is accounted as Phase::Plan. `meta_out` (optional) receives the
/// gathered AMeta so an Auto → SA-1D dispatch can hand it straight to the
/// SpgemmPlan1D inspector instead of re-allgathering the same metadata.
template <typename VT>
AlgoCostInputs gather_algo_cost_inputs(Comm& comm, const DistMatrix1D<VT>& a,
                                       const DistMatrix1D<VT>& b,
                                       const Spgemm1dOptions& opt = {},
                                       detail1d::AMeta<VT>* meta_out = nullptr) {
  AlgoCostInputs in;
  in.P = comm.size();
  in.threads = opt.threads;
  in.m = a.nrows();
  in.k = a.ncols();
  in.n = b.ncols();
  in.value_bytes = sizeof(VT);
  in.index_bytes = sizeof(index_t);

  auto meta = detail1d::gather_a_metadata(comm, a);

  std::uint64_t local_flops = 0, fetch_elems = 0, fetch_msgs = 0;
  std::uint64_t needed = 0, remote_nzc = 0;
  {
    auto ph = comm.phase(Phase::Plan);
    BitVector h = detail1d::nonzero_rows(b.local(), a.ncols());

    // Structural flops of this rank's C columns: Σ nnz(A(:,k)) over the
    // nonzeros B(k, j) of the local B slice, looked up in the replicated
    // metadata.
    const auto& bounds = a.bounds();
    for (auto rk : b.local().ir()) {
      const int owner = find_owner(std::span<const index_t>(bounds), rk);
      const auto& gids = meta.gids[static_cast<std::size_t>(owner)];
      const auto& cp = meta.cp[static_cast<std::size_t>(owner)];
      auto it = std::lower_bound(gids.begin(), gids.end(), rk);
      if (it == gids.end() || *it != rk) continue;
      const auto pos = static_cast<std::size_t>(it - gids.begin());
      local_flops += static_cast<std::uint64_t>(cp[pos + 1] - cp[pos]);
    }

    // The SA-1D fetch plan this rank would execute (Algorithm 2 over the
    // H∩D masks) — volume and message counts without moving any data.
    for (int r = 0; r < comm.size(); ++r) {
      if (r == comm.rank()) continue;
      const auto& gids = meta.gids[static_cast<std::size_t>(r)];
      const auto nzc = static_cast<index_t>(gids.size());
      if (nzc == 0) continue;
      remote_nzc += static_cast<std::uint64_t>(nzc);
      std::vector<bool> need(static_cast<std::size_t>(nzc), !opt.sparsity_aware);
      if (opt.sparsity_aware) {
        for (index_t p = 0; p < nzc; ++p)
          if (h.test(gids[static_cast<std::size_t>(p)])) need[static_cast<std::size_t>(p)] = true;
      }
      for (index_t p = 0; p < nzc; ++p)
        if (need[static_cast<std::size_t>(p)]) ++needed;
      auto plan = block_fetch_plan(nzc, opt.block_fetch_k, need, opt.merge_adjacent_blocks);
      fetch_msgs += static_cast<std::uint64_t>(plan.size());
      fetch_elems += static_cast<std::uint64_t>(
          plan_elements(plan, std::span<const index_t>(meta.cp[static_cast<std::size_t>(r)])));
    }
  }

  in.nnz_a = static_cast<std::uint64_t>(comm.allreduce_sum(a.local_nnz()));
  in.nnz_b = static_cast<std::uint64_t>(comm.allreduce_sum(b.local_nnz()));
  in.nzc_a = static_cast<std::uint64_t>(comm.allreduce_sum(a.local().nzc()));
  in.flops = comm.allreduce_sum(local_flops);
  in.max_rank_flops = comm.allreduce_max(local_flops);
  in.max_rank_nnz_a = static_cast<std::uint64_t>(comm.allreduce_max(a.local_nnz()));
  in.max_rank_nnz_b = static_cast<std::uint64_t>(comm.allreduce_max(b.local_nnz()));
  in.max_rank_fetch_elems = comm.allreduce_max(fetch_elems);
  in.sa1d_fetch_elems = comm.allreduce_sum(fetch_elems);
  in.sa1d_fetch_msgs = comm.allreduce_sum(fetch_msgs);
  const std::uint64_t needed_total = comm.allreduce_sum(needed);
  const std::uint64_t remote_total = comm.allreduce_sum(remote_nzc);
  in.needed_fraction = remote_total == 0
                           ? 0.0
                           : static_cast<double>(needed_total) / static_cast<double>(remote_total);
  if (meta_out != nullptr) *meta_out = std::move(meta);
  return in;
}

/// Ranks the concrete backends on `in` and returns the cheapest feasible
/// one. Split-3D is scored at its best valid layer count (or `layers_opt`
/// when the caller pinned one); the count used lands in `layers_out`.
/// `replay` prices cached-plan replays (CostModel::predict_replay — zero
/// plan term, value-only volume) instead of one-shot multiplies.
/// `horizon_iters` > 1 prices the declared iteration horizon instead: one
/// build plus (horizon−1) replays per backend, so an iterated caller's
/// build is chosen by total horizon cost (acting on the replay_choice
/// disagreement the pure one-shot pricing only recorded).
/// Deterministic in the inputs — no communication.
inline Algo choose_algo(const CostModel& cm, AlgoCostInputs in, int layers_opt, int* layers_out,
                        std::vector<AlgoPrediction>* predictions, bool replay = false,
                        int horizon_iters = 1) {
  auto price = [&cm, replay, horizon_iters](const AlgoCostInputs& i, Algo a) {
    AlgoPrediction pr = replay ? cm.predict_replay(i, a) : cm.predict(i, a);
    if (!replay && horizon_iters > 1 && pr.feasible) {
      const AlgoPrediction rp = cm.predict_replay(i, a);
      const double h = static_cast<double>(horizon_iters - 1);
      pr.comm_s += h * rp.comm_s;
      pr.comp_s += h * rp.comp_s;
      pr.other_s += h * rp.other_s;
      pr.comp_coeff += h * rp.comp_coeff;
      pr.other_coeff += h * rp.other_coeff;
    }
    pr.layers = i.layers;
    return pr;
  };
  std::vector<AlgoPrediction> preds;

  in.layers = 1;
  preds.push_back(price(in, Algo::SparseAware1D));
  preds.push_back(price(in, Algo::Ring1D));
  preds.push_back(price(in, Algo::Summa2D));

  // Split-3D: try every non-trivial layering (c = 1 is SUMMA) and keep the
  // best; an explicit layer request pins the candidate.
  AlgoPrediction best3d;
  best3d.algo = Algo::Split3D;
  best3d.ordering = in.ordering;
  best3d.note = layers_opt > 0 ? "the requested layer count does not divide P"
                               : "P is prime: the only layerings are the trivial c=1 and c=P";
  int best_layers = 1;
  for (int c : valid_layer_counts(in.P)) {
    if (layers_opt > 0) {
      if (c != layers_opt) continue;  // pinned: score exactly the request
    } else if (c == 1 || c == in.P) {
      continue;  // c=1 is SUMMA; c=P collapses layers to single ranks
    }
    in.layers = c;
    auto pr = price(in, Algo::Split3D);
    if (pr.feasible && (!best3d.feasible || pr.total_s() < best3d.total_s())) {
      best3d = pr;
      best_layers = c;
    } else if (!pr.feasible && !best3d.feasible) {
      // Surface the real obstacle: a layer count that divides P can still
      // fail on a pinned grid shape that does not factor P/layers.
      best3d.note = pr.note;
    }
  }
  best3d.layers = best_layers;
  preds.push_back(best3d);

  Algo chosen = Algo::SparseAware1D;
  double best = -1.0;
  for (const auto& pr : preds) {
    if (!pr.feasible) continue;
    if (best < 0.0 || pr.total_s() < best) {
      best = pr.total_s();
      chosen = pr.algo;
    }
  }
  if (layers_out != nullptr) *layers_out = chosen == Algo::Split3D ? best_layers : 1;
  if (predictions != nullptr) *predictions = std::move(preds);
  return chosen;
}

/// Joint (backend × ordering) decision (DESIGN.md §12): prices every
/// concrete backend under each candidate ordering — all three under the
/// Auto policy, else exactly the forced one — by running choose_algo once
/// per ordering, then argmins over the union. `partitioned_ok` gates the
/// Partitioned candidate on a valid ReorderPlan; `pinned` restricts the
/// backend argmin to one algorithm (Algo::Auto = free choice), so an
/// explicit-backend caller can still let the model pick its ordering.
/// Deterministic in the inputs — no communication.
inline std::pair<Algo, Ordering> choose_algo_ordered(
    const CostModel& cm, AlgoCostInputs in, Ordering policy, bool partitioned_ok, Algo pinned,
    int layers_opt, int* layers_out, std::vector<AlgoPrediction>* predictions,
    int horizon_iters = 1) {
  std::vector<Ordering> cands;
  if (policy == Ordering::Auto) {
    cands.push_back(Ordering::Identity);
    if (partitioned_ok) cands.push_back(Ordering::Partitioned);
    cands.push_back(Ordering::Random);
  } else {
    cands.push_back(policy == Ordering::Partitioned && !partitioned_ok ? Ordering::Identity
                                                                       : policy);
  }
  std::vector<AlgoPrediction> all;
  for (Ordering o : cands) {
    in.ordering = o;
    std::vector<AlgoPrediction> preds;
    int lyr = 1;
    choose_algo(cm, in, layers_opt, &lyr, &preds, /*replay=*/false, horizon_iters);
    all.insert(all.end(), preds.begin(), preds.end());
  }
  Algo best_algo = pinned != Algo::Auto ? pinned : Algo::SparseAware1D;
  Ordering best_ord = cands.front();
  int best_layers = 1;
  double best = -1.0;
  for (const auto& pr : all) {
    if (!pr.feasible) continue;
    if (pinned != Algo::Auto && pr.algo != pinned) continue;
    if (best < 0.0 || pr.total_s() < best) {
      best = pr.total_s();
      best_algo = pr.algo;
      best_ord = pr.ordering;
      best_layers = pr.layers;
    }
  }
  // Nothing feasible (e.g. a pinned backend the grid rejects): run plain —
  // the dispatch's own validation raises the real diagnostic.
  if (best < 0.0 && policy == Ordering::Auto) best_ord = Ordering::Identity;
  if (layers_out != nullptr) *layers_out = best_algo == Algo::Split3D ? best_layers : 1;
  if (predictions != nullptr) *predictions = std::move(all);
  return {best_algo, best_ord};
}

/// Whether a non-identity ordering can run on this operand pair: symmetric
/// permutation needs square operands living on identical bounds, and the
/// partitioner needs at least one column per rank. Rank-uniform (bounds are
/// replicated), so every rank takes the same degrade branch.
template <typename VT>
bool reorder_eligible(const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b, int P) {
  return a.nrows() == a.ncols() && b.nrows() == b.ncols() && a.ncols() == b.ncols() &&
         a.bounds() == b.bounds() && a.ncols() >= static_cast<index_t>(P);
}

namespace distdetail {

/// Layer count for an explicit Split3D request with layers = 0: the
/// smallest *non-degenerate* layering (1 < c < P — the smallest prime
/// factor of P), falling back to 1 (= SUMMA on one layer) when P is prime
/// or 1 and no middle option exists.
inline int default_split3d_layers(int P) {
  for (int c : valid_layer_counts(P))
    if (c > 1 && c < P) return c;
  return 1;
}

/// Local validation of one dispatch to `algo` against the options: returns
/// the empty string when valid, else the exact message the backend's entry
/// require would raise (same require_grid_shape / require_split3d_layers
/// text, so callers see identical diagnostics whichever rank detects it).
/// `inj` non-null adds the fault injector's backend vetoes. Pure.
template <typename VT>
std::string local_validation_error(int P, Algo algo, const DistMatrix1D<VT>& a,
                                   const DistMatrix1D<VT>& b, const DistSpgemmOptions& opt,
                                   const FaultInjector* inj) {
  try {
    require(a.ncols() == b.nrows(), "spgemm_dist: inner dimension mismatch");
    require(opt.max_recovery_retries >= 0,
            "spgemm_dist: max_recovery_retries must be non-negative");
    if (inj != nullptr && algo != Algo::Auto)
      require(!inj->vetoes(static_cast<int>(algo)),
              std::string("spgemm_dist: backend ") + algo_name(algo) +
                  " vetoed by fault injection");
    if (algo == Algo::Summa2D)
      require_grid_shape(P, opt.grid_rows, opt.grid_cols, "spgemm_summa_2d_dist");
    if (algo == Algo::Split3D) {
      const int layers = opt.layers > 0 ? opt.layers : default_split3d_layers(P);
      require_split3d_layers(P, layers, "spgemm_dist(Algo::Split3D)");
      require_grid_shape(P / layers, opt.grid_rows, opt.grid_cols, "spgemm_split_3d_dist");
    }
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

/// Rank-consistent input validation (collective): every rank publishes its
/// local verdict plus a digest of everything the dispatch branches on
/// through the *uncounted* control exchange (Comm::exchange_control — no
/// byte/message counter changes), and the lowest-rank failure is thrown as
/// the byte-identical ValidationError on every rank. Divergent options or
/// operand shapes across ranks — which would send ranks down different
/// collective sequences — are themselves a validation error. Guarantees no
/// rank proceeds into a data collective alone.
template <typename VT>
void validate_collective(Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                         const DistSpgemmOptions& opt) {
  std::string digest;
  {
    auto ph = comm.phase(Phase::Other);
    digest = std::to_string(static_cast<int>(opt.algo)) + "," +
             std::to_string(opt.layers) + "," + std::to_string(opt.grid_rows) + "," +
             std::to_string(opt.grid_cols) + "," + std::to_string(opt.expected_iterations) +
             "," + std::to_string(opt.expected_batch) + "," +
             std::to_string(opt.max_recovery_retries) + "," +
             std::to_string(opt.sa1d.block_fetch_k) + "," +
             std::to_string(static_cast<int>(opt.sa1d.kernel)) + "," +
             std::to_string(opt.sa1d.threads) + "," +
             std::to_string(static_cast<int>(opt.sa1d.sparsity_aware)) + "," +
             std::to_string(static_cast<int>(opt.sa1d.merge_adjacent_blocks)) + "," +
             std::to_string(static_cast<int>(opt.overlap)) + "," +
             std::to_string(static_cast<int>(opt.sa1d.overlap)) + "," +
             std::to_string(opt.sa1d.prefetch_inflight) + "," +
             std::to_string(static_cast<int>(opt.reorder)) + "," +
             std::to_string(opt.reorder_seed) + "," +
             std::to_string(opt.max_peak_triples) + "," + std::to_string(opt.panels) + "," +
             std::to_string(opt.ring_window) + "|" +
             std::to_string(a.nrows()) + "x" + std::to_string(a.ncols()) + "," +
             std::to_string(b.nrows()) + "x" + std::to_string(b.ncols());
  }
  const std::string verdict =
      local_validation_error(comm.size(), opt.algo, a, b, opt, comm.injector());
  auto all = comm.exchange_control(digest + "\n" + verdict);
  // Every rank holds the identical `all`, so every throw below constructs
  // the byte-identical error on every rank — the rank-consistency contract.
  for (int p = 0; p < comm.size(); ++p) {
    const auto& s = all[static_cast<std::size_t>(p)];
    const std::string d = s.substr(0, s.find('\n'));
    if (d != all[0].substr(0, all[0].find('\n')))
      throw ValidationError(
          ErrorContext{comm.global_rank(p), comm.report().comm_ops, "validate"},
          "spgemm_dist: options/operands disagree across ranks (rank " +
              std::to_string(comm.global_rank(p)) + " has [" + d + "], rank " +
              std::to_string(comm.global_rank(0)) + " has [" +
              all[0].substr(0, all[0].find('\n')) + "]); every rank must pass identical "
              "options and globally consistent operands");
  }
  for (int p = 0; p < comm.size(); ++p) {
    const auto& s = all[static_cast<std::size_t>(p)];
    const std::string v = s.substr(s.find('\n') + 1);
    if (!v.empty())
      throw ValidationError(
          ErrorContext{comm.global_rank(p), comm.report().comm_ops, "validate"}, v);
  }
}

/// Auto's degrade order: the feasible predictions ranked by modeled total
/// cost — the dispatch loop walks this, skipping candidates a backend's
/// validation (or an injected veto) rejects.
inline std::vector<AlgoPrediction> ranked_candidates(std::vector<AlgoPrediction> preds) {
  std::erase_if(preds, [](const AlgoPrediction& p) { return !p.feasible; });
  std::stable_sort(preds.begin(), preds.end(), [](const AlgoPrediction& x,
                                                  const AlgoPrediction& y) {
    return x.total_s() < y.total_s();
  });
  return preds;
}

}  // namespace distdetail

/// The unified distributed SpGEMM: C = A ⊕.⊗ B with A, B, C all 1D
/// column-distributed; C inherits B's column distribution whichever backend
/// runs. Collective. `stats` (optional) receives the dispatch decision and,
/// under Auto, the inputs and per-backend predictions. `plan` (optional)
/// caches the SA-1D inspector across iterated calls exactly like
/// spgemm_1d_cached — ignored by the other backends.
template <typename SRIn = void, typename VT>
DistMatrix1D<VT> spgemm_dist(Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                             const DistSpgemmOptions& opt = {}, DistSpgemmStats* stats = nullptr,
                             SpgemmPlan1D<VT, ResolveSemiring<SRIn, VT>>* plan = nullptr) {
  distdetail::validate_collective(comm, a, b, opt);
  // High-water gauge scope: the outermost call of the turn resets the peak
  // to the current residency, so DistSpgemmStats reports a per-call peak;
  // nested panel sub-calls observe the parent scope (their charges roll up).
  MemGaugeScope gauge(comm.report());

  Algo algo = opt.algo;
  int layers = opt.layers;
  DistSpgemmStats scratch;
  DistSpgemmStats& st = stats != nullptr ? *stats : scratch;
  st = DistSpgemmStats{};
  st.requested = opt.algo;
  st.requested_ordering = opt.reorder;
  st.horizon_iters = std::max(1, opt.expected_iterations);

  // Ordering policy resolution (DESIGN.md §12): ineligible operands degrade
  // to Identity before any collective, so every rank takes the same path.
  Ordering policy = opt.reorder;
  if (policy != Ordering::Identity && !reorder_eligible(a, b, comm.size()))
    policy = Ordering::Identity;
  // A budget with an unresolved panel count needs the cost model to find
  // the smallest feasible panelization even for a pinned backend; a pinned
  // panel count is trusted verbatim (panel sub-calls run with panels = 1).
  const bool need_cost = algo == Algo::Auto || policy == Ordering::Auto ||
                         (opt.max_peak_triples > 0 && opt.panels == 0);
  const bool need_rplan = policy == Ordering::Auto || policy == Ordering::Partitioned;

  if (need_cost) {
    st.inputs = gather_algo_cost_inputs(comm, a, b, opt.sa1d);
    st.inputs.grid_rows = opt.grid_rows;
    st.inputs.grid_cols = opt.grid_cols;
    st.inputs.overlap = opt.overlap;
    st.inputs.max_peak_triples = opt.max_peak_triples;
    st.inputs.panels = opt.panels;
  }

  const RankReport before_reorder = comm.report();
  ReorderPlan rplan;
  if (need_rplan) {
    rplan = build_reorder_plan(comm, a, opt.sa1d.threads, opt.reorder_seed);
    st.partition_seconds = rplan.features.partition_seconds;
    st.reorder_cut_fraction = rplan.features.cut_fraction;
    st.reorder_part_imbalance = rplan.features.part_imbalance;
    if (!rplan.valid && policy == Ordering::Partitioned) policy = Ordering::Identity;
  }

  Ordering ordering = policy == Ordering::Auto ? Ordering::Identity : policy;
  if (need_cost) {
    if (rplan.valid) {
      st.inputs.reorder_cut_fraction = rplan.features.cut_fraction;
      st.inputs.reorder_part_imbalance = rplan.features.part_imbalance;
      st.inputs.reorder_seconds = rplan.features.partition_seconds;
    }
    st.inputs.reorder_move_elems = st.inputs.nnz_a + (&a == &b ? 0 : st.inputs.nnz_b);
    auto ph = comm.phase(Phase::Plan);
    auto [ch, ord] = choose_algo_ordered(comm.cost(), st.inputs, policy, rplan.valid, opt.algo,
                                         opt.layers, &layers, &st.predictions,
                                         st.horizon_iters);
    if (opt.algo == Algo::Auto) algo = ch;
    ordering = ord;
    st.inputs.ordering = ordering;
  } else if (algo == Algo::Split3D && layers == 0) {
    layers = distdetail::default_split3d_layers(comm.size());
  }
  st.ordering = ordering;

  // The SA-1D prefetch rides the master switch: both must be on.
  Spgemm1dOptions sa = opt.sa1d;
  sa.overlap = opt.sa1d.overlap && opt.overlap;

  // Non-identity orderings run the multiply in permuted coordinates — both
  // operands symmetrically relabeled onto the partition layout (or the
  // original bounds for Random) — then scatter C back below.
  Permutation perm;
  const DistMatrix1D<VT>* ra = &a;
  const DistMatrix1D<VT>* rb = &b;
  DistMatrix1D<VT> pa, pb;
  if (ordering != Ordering::Identity) {
    std::vector<index_t> pbounds;
    if (ordering == Ordering::Partitioned) {
      perm = rplan.layout.perm;
      pbounds = rplan.layout.bounds;
    } else {
      perm = random_permutation(a.ncols(), opt.reorder_seed);
      pbounds = a.bounds();
    }
    pa = permute_symmetric_dist(comm, a, perm, pbounds);
    ra = &pa;
    if (&a == &b) {
      rb = &pa;
    } else {
      pb = permute_symmetric_dist(comm, b, perm, std::move(pbounds));
      rb = &pb;
    }
  }
  st.reorder_coll_bytes =
      comm.report().coll_bytes_received() - before_reorder.coll_bytes_received();

  // Budgeted runs bound the overlap pipeline's staging: at most 2 stage
  // broadcasts posted beyond the one in flight (the comm-op sequence is
  // identical for every lookahead, so fault-plan coordinates are stable).
  const int lookahead = opt.max_peak_triples > 0 ? 2 : 0;
  auto dispatch = [&](Algo which, int lyr) -> DistMatrix1D<VT> {
    st.chosen = which;
    st.layers = which == Algo::Split3D ? lyr : 1;
    switch (which) {
      case Algo::Auto: break;  // unreachable: resolved above
      case Algo::SparseAware1D:
        if (plan != nullptr) return spgemm_1d_cached(comm, *plan, *ra, *rb, sa);
        return spgemm_1d<SRIn>(comm, *ra, *rb, sa);
      case Algo::Ring1D:
        return spgemm_naive_ring_1d<SRIn>(comm, *ra, *rb, nullptr, opt.overlap);
      case Algo::Summa2D:
        return spgemm_summa_2d_dist<SRIn>(comm, *ra, *rb, opt.sa1d.kernel, opt.sa1d.threads,
                                          nullptr, opt.grid_rows, opt.grid_cols, opt.overlap,
                                          lookahead);
      case Algo::Split3D:
        require_split3d_layers(comm.size(), lyr, "spgemm_dist(Algo::Split3D)");
        return spgemm_split_3d_dist<SRIn>(comm, *ra, *rb, lyr, opt.sa1d.kernel,
                                          opt.sa1d.threads, nullptr, opt.grid_rows,
                                          opt.grid_cols, opt.overlap, lookahead);
    }
    require(false, "spgemm_dist: unknown algorithm");
    return {};
  };
  // Column-panel execution (DESIGN.md §13): k > 1 multiplies C in k global
  // column windows of B — one recursive spgemm_dist per panel with the
  // backend, layers, and ordering pinned (the operands are already
  // permuted) — and concatenates in ascending panel order. Bit-identical to
  // the monolithic dispatch: panels partition C's columns and every backend
  // folds a column's partials independently of every other column.
  auto run_panels = [&](Algo which, int lyr, int k) -> DistMatrix1D<VT> {
    if (k <= 1) {
      st.panels = 1;
      return dispatch(which, lyr);
    }
    st.chosen = which;
    st.layers = which == Algo::Split3D ? lyr : 1;
    st.panels = k;
    DistSpgemmOptions sub = opt;
    sub.algo = which;
    sub.layers = which == Algo::Split3D ? lyr : opt.layers;
    sub.reorder = Ordering::Identity;
    sub.panels = 1;  // panel sub-calls are monolithic: no re-resolution
    const auto pb_bounds = even_split(rb->ncols(), k);
    std::vector<DistMatrix1D<VT>> outs;
    outs.reserve(static_cast<std::size_t>(k));
    for (int pi = 0; pi < k; ++pi) {
      auto bp = restrict_columns(*rb, pb_bounds[static_cast<std::size_t>(pi)],
                                 pb_bounds[static_cast<std::size_t>(pi) + 1]);
      outs.push_back(spgemm_dist<SRIn>(comm, *ra, bp, sub));
    }
    auto ph = comm.phase(Phase::Other);
    return concat_column_panels(outs);
  };
  // C of the permuted multiply is P·C·Pᵀ of the caller's: the inverse
  // symmetric permute lands it back on the original ordering and bounds.
  // Also the single exit point, so the measured per-call peak lands in the
  // stats whatever path produced C.
  auto finish = [&](DistMatrix1D<VT> c) -> DistMatrix1D<VT> {
    if (ordering != Ordering::Identity)
      c = permute_symmetric_dist(comm, c, perm.inverse(), a.bounds());
    st.peak_triples = comm.report().peak_triples;
    st.peak_bytes = comm.report().peak_bytes;
    return c;
  };
  // Panel resolution for a non-Auto dispatch: a pinned count is trusted
  // verbatim; panels = 0 with a budget reads the cost model's smallest
  // feasible panelization for the (backend × ordering × layers) cell, or
  // raises rank-uniformly (the predictions derive from global aggregates,
  // so every rank throws the identical error).
  int panels = opt.panels >= 1 ? opt.panels : 1;
  if (opt.panels == 0 && opt.max_peak_triples > 0 && opt.algo != Algo::Auto) {
    const AlgoPrediction* cell = nullptr;
    for (const auto& pr : st.predictions)
      if (pr.algo == algo && pr.ordering == ordering &&
          (algo != Algo::Split3D || pr.layers == layers)) {
        cell = &pr;
        break;
      }
    if (cell == nullptr || !cell->feasible)
      throw ValidationError(
          ErrorContext{comm.global_rank(comm.rank()), comm.report().comm_ops, "spgemm_dist"},
          std::string("spgemm_dist: no column panelization of backend ") + algo_name(algo) +
              " fits max_peak_triples=" + std::to_string(opt.max_peak_triples) +
              " (modeled peak exceeds the budget at every panel count)");
    panels = cell->panels;
  }

  if (opt.algo != Algo::Auto) return finish(run_panels(algo, layers, panels));

  // Auto degrade policy: walk the cost-ranked feasible candidates *of the
  // chosen ordering* (the operands are already permuted for it); a
  // candidate whose dispatch fails validation (or that the fault injector
  // vetoes — both are deterministic and rank-symmetric, so every rank skips
  // the same cells) falls through to the next-ranked backend. Every backend
  // validates at entry, before any collective, so the fallthrough never
  // desynchronizes the ranks.
  std::vector<AlgoPrediction> walk = st.predictions;
  std::erase_if(walk, [&](const AlgoPrediction& p) { return p.ordering != ordering; });
  for (const auto& cand : distdetail::ranked_candidates(std::move(walk))) {
    if (comm.injector() != nullptr && comm.injector()->vetoes(static_cast<int>(cand.algo))) {
      ++st.validation_failovers;
      continue;
    }
    try {
      return finish(run_panels(cand.algo, cand.layers, cand.panels));
    } catch (const std::invalid_argument&) {
      ++st.validation_failovers;
    }
  }
  throw ValidationError(ErrorContext{comm.global_rank(comm.rank()), comm.report().comm_ops,
                                     "spgemm_dist"},
                        "spgemm_dist: Auto found no dispatchable backend (all cost-feasible "
                        "candidates failed validation or were vetoed)");
}

}  // namespace sa1d

// The backend-generic inspector–executor layer (DistSpgemmPlan +
// spgemm_dist_cached) builds on the declarations above; including it here
// makes the cached entry point part of the spgemm_dist front-end.
#include "dist/dist_plan.hpp"  // IWYU pragma: export
