// The backend-generic inspector–executor layer of the unified distributed
// SpGEMM: one DistSpgemmPlan caches, behind the same StructureFingerprint
// the SA-1D inspector uses, everything structural a spgemm_dist call
// computes —
//
//   SA-1D     the SpgemmPlan1D inspector (metadata, H∩D masks, fetch plan,
//             Ã/B̃ shells, symbolic result);
//   ring-1D   every hop's slice structure + the deterministic ⊕-merge
//             program (RingPlan);
//   SUMMA-2D  the 1D→grid alltoallv routes, the per-stage broadcast-block
//             shells + symbolic results, and the partial-C→1D
//             scatter/merge program (Summa2dPlan);
//   split-3D  the same with layer-aware routes and the cross-layer merge
//             (Split3dPlan);
//   Auto      the gathered AlgoCostInputs and the chosen backend, so
//             iterated Algo::Auto calls skip the metadata re-gather — and
//             when Auto picks SA-1D, the gathered AMeta is handed to the
//             SpgemmPlan1D constructor, so the dispatch performs exactly
//             one metadata allgather.
//
// execute() replays the cached program for any operand pair with matching
// structure: only values move (value alltoallvs, value broadcasts, value
// window gets), only numeric local passes run — bit-identical to the fresh
// call, zero Phase::Plan seconds, zero metadata-collective bytes.
// spgemm_dist_cached() is the iterated-caller entry point (one collective
// match vote per call decides replay-vs-rebuild, like spgemm_1d_cached).
// DESIGN.md §8 documents the layer.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "dist/dist_spgemm.hpp"

namespace sa1d {

namespace distdetail {

/// RankReport slot of one Algo for the plan-reuse counters.
inline std::size_t algo_slot(Algo a) { return static_cast<std::size_t>(a); }

/// FNV-1a over a value array's bytes: the cheap "operand values unchanged"
/// check that lets an ordered plan's replay reuse the cached permuted
/// operands outright (zero reorder movement — the iterated-squaring case).
template <typename VT>
std::uint64_t value_hash(const DcscMatrix<VT>& m) {
  const auto& v = m.vals();
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < v.size() * sizeof(VT); ++i) h = (h ^ p[i]) * 0x100000001b3ULL;
  return h;
}

/// Approximate resident bytes of one DCSC slice (vals + ir per nonzero,
/// jc + cp per nonzero column) — the ordered-plan residency the plan cache
/// accounts for its cached permuted operands and C template.
template <typename VT>
std::uint64_t matrix_bytes_resident(const DcscMatrix<VT>& m) {
  return static_cast<std::uint64_t>(m.nnz()) * (sizeof(VT) + sizeof(index_t)) +
         static_cast<std::uint64_t>(m.nzc()) * 2 * sizeof(index_t);
}

/// Post-recovery alignment vote (DESIGN.md §9/§13). recover() only proves
/// every rank unwound — not that they unwound from the SAME logical call.
/// Panelized plans skew rank progress enough that in an iterated workload a
/// peer's recoverable fault can interrupt rank A inside call #n while rank B
/// already entered call #n+1; if each restarted its own call the collective
/// sequences would desync into a barrier-watchdog hang. Voting the top-level
/// call ordinal (control plane, 1 string/rank) right after the rendezvous
/// converts that hang into the identical non-recoverable ValidationError on
/// every rank — deliberately NOT Corruption/PlanMismatch, which the retry
/// loop would swallow and re-enter. The message is built only from the vote
/// vector (identical on all ranks), never from rank-local state.
inline void vote_recovery_alignment(Comm& comm, const char* where) {
  const auto votes = comm.exchange_control(std::to_string(comm.report().toplevel_calls));
  bool uniform = true;
  for (const auto& v : votes) uniform = uniform && v == votes.front();
  if (uniform) return;
  std::string seen;
  for (const auto& v : votes) seen += (seen.empty() ? "" : ",") + v;
  throw ValidationError(
      ErrorContext{comm.global_rank(comm.rank()), comm.report().comm_ops, "recover"},
      std::string(where) +
          ": recovery rendezvous spans different iterated top-level calls across ranks "
          "(ordinals " +
          seen + ") — the replay streams cannot resynchronize; rerun the workload");
}

}  // namespace distdetail

/// The cached plan of one distributed SpGEMM through any backend. The
/// handle is rank-local (SPMD style, like SpgemmPlan1D); construction is
/// lazy — build() runs the fresh multiply while capturing the replay
/// program, execute() replays it. Plans hold communicator-independent state
/// only, but cached routes are laid out for the communicator size and rank
/// they were built on, so reuse a plan within one Machine::run / MPI job.
template <typename VT, typename SR = PlusTimes<VT>>
class DistSpgemmPlan {
 public:
  DistSpgemmPlan() = default;

  [[nodiscard]] bool empty() const { return !built_; }
  [[nodiscard]] const DistSpgemmOptions& options() const { return opt_; }
  /// The concrete backend this plan runs (Auto's cached decision).
  [[nodiscard]] Algo chosen() const { return chosen_; }
  /// The ordering this plan runs under (the joint decision's other half —
  /// Identity when the request degraded or the model preferred it).
  [[nodiscard]] Ordering ordering() const { return ordering_; }
  /// Measured partition features of the build (defaults when no partition
  /// was built this plan).
  [[nodiscard]] const ReorderFeatures& reorder_features() const { return rfeatures_; }
  [[nodiscard]] int layers() const { return layers_; }
  [[nodiscard]] int builds() const { return builds_; }
  [[nodiscard]] int replays() const { return replays_; }
  [[nodiscard]] const StructureFingerprint& fingerprint() const { return fp_; }
  /// Auto's cached cost decision trace (valid when options().algo == Auto).
  [[nodiscard]] bool has_cost_inputs() const { return have_inputs_; }
  [[nodiscard]] const AlgoCostInputs& cost_inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<AlgoPrediction>& predictions() const { return predictions_; }
  /// The replay-priced decision trace (plan-aware Auto): what the cost
  /// model would pick if every call were a cached value-only replay.
  [[nodiscard]] const std::vector<AlgoPrediction>& replay_predictions() const {
    return replay_predictions_;
  }
  [[nodiscard]] Algo replay_choice() const { return replay_choice_; }
  /// Layer count the replay-priced choice assumed (1 unless it is Split3D).
  [[nodiscard]] int replay_layers() const { return replay_layers_; }
  /// Column panels this plan executes (1 = monolithic). A panelized plan
  /// holds one sub-plan per panel and replays them in ascending panel order
  /// (DESIGN.md §13); the batched executor replays panelized plans solo.
  [[nodiscard]] int panels() const { return panels_; }

  /// Exact per-rank collective bytes one execute() receives — the pure
  /// value payload of the cached routes/broadcasts, plus (for ordered
  /// plans) the value-only inverse scatter returning C to the caller's
  /// ordering. The metadata-byte counter in DistSpgemmStats is the measured
  /// delta beyond this.
  [[nodiscard]] std::uint64_t replay_coll_recv_bytes() const {
    std::uint64_t bytes = 0;
    if (panels_ > 1) {
      for (const auto& p : panel_plans_) bytes += p->replay_coll_recv_bytes();
      return bytes + inverse_scatter_recv_bytes();
    }
    switch (chosen_) {
      case Algo::Auto: break;
      case Algo::SparseAware1D: break;  // replay is RDMA value gets only
      case Algo::Ring1D: bytes = ring_.replay_recv_bytes(); break;
      case Algo::Summa2D: bytes = summa_.replay_recv_bytes(me_); break;
      case Algo::Split3D: bytes = split3d_.replay_recv_bytes(me_); break;
    }
    return bytes + inverse_scatter_recv_bytes();
  }

  /// Network bytes this rank receives from the cached inverse-scatter route
  /// (self chunks land in bytes_local, so they are excluded).
  [[nodiscard]] std::uint64_t inverse_scatter_recv_bytes() const {
    if (ordering_ == Ordering::Identity) return 0;
    std::uint64_t n = 0;
    for (std::size_t s = 0; s < route_c_inv_.recv_dst.size(); ++s)
      if (static_cast<int>(s) != me_) n += route_c_inv_.recv_dst[s].size();
    return n * sizeof(VT);
  }

  /// Byte-accurate residency of the cached replay program on this rank —
  /// what the plan cache (runtime/plan_cache.hpp) accounts against its
  /// budget. A RingPlan is the heavyweight: ≈nnz(A) resident indices. An
  /// ordered plan additionally holds the permuted operands, the C template,
  /// the three value routes, and the permutation itself.
  [[nodiscard]] std::uint64_t bytes_resident() const {
    std::uint64_t bytes = 0;
    switch (chosen_) {
      case Algo::Auto: break;
      case Algo::SparseAware1D: bytes = sa1d_.bytes_resident(); break;
      case Algo::Ring1D: bytes = ring_.bytes_resident(); break;
      case Algo::Summa2D: bytes = summa_.bytes_resident(); break;
      case Algo::Split3D: bytes = split3d_.bytes_resident(); break;
    }
    // Panel sub-plans carry the real residency of a panelized plan (the
    // parent's backend members stay empty); panel bounds are noise-level.
    for (const auto& p : panel_plans_) bytes += p->bytes_resident();
    bytes += static_cast<std::uint64_t>(panel_bounds_.size()) * sizeof(index_t);
    if (ordering_ != Ordering::Identity) {
      bytes += route_a_.bytes_resident() + route_b_.bytes_resident() +
               route_c_inv_.bytes_resident();
      bytes += distdetail::matrix_bytes_resident(pa_.local());
      if (!pb_aliases_pa_) bytes += distdetail::matrix_bytes_resident(pb_.local());
      bytes += distdetail::matrix_bytes_resident(c_tmpl_.local());
      bytes += static_cast<std::uint64_t>(perm_.size()) * sizeof(index_t);
    }
    return bytes;
  }

  /// Direct access to the chosen backend's cached program — the batched
  /// executor (dist/batch_spgemm.hpp) drives the fused replays through
  /// these. Valid only when chosen() names that backend.
  [[nodiscard]] SpgemmPlan1D<VT, SR>& sa1d_plan() { return sa1d_; }
  [[nodiscard]] RingPlan<VT, SR>& ring_plan() { return ring_; }
  [[nodiscard]] Summa2dPlan<VT, SR>& summa_plan() { return summa_; }
  [[nodiscard]] Split3dPlan<VT, SR>& split3d_plan() { return split3d_; }

  /// The plan cache's eviction fallback: a Ring1D plan sheds its resident
  /// hop structures beyond a w-hop window (RingPlan::demote_to_window)
  /// instead of being dropped outright. No-op for other backends; returns
  /// true iff the plan is now windowed.
  bool demote_ring_to_window(int w) {
    if (!built_ || chosen_ != Algo::Ring1D) return false;
    if (panels_ > 1) {
      bool any = false;
      for (auto& p : panel_plans_) any = p->demote_ring_to_window(w) || any;
      return any;
    }
    ring_.demote_to_window(w);
    return ring_.windowed();
  }

  /// Reuse bookkeeping for a fused replay the batched executor ran through
  /// the backend accessors above (it bypasses execute_verified, so the
  /// counters are bumped here).
  void record_batched_replay(Comm& comm) {
    ++replays_;
    ++comm.report().plan_replays[distdetail::algo_slot(chosen_)];
    if (opt_.algo == Algo::Auto) ++comm.report().plan_replays[distdetail::algo_slot(Algo::Auto)];
  }

  /// Exact rank-local reuse check: O(1) fields first, then the structure
  /// hashes (no communication).
  [[nodiscard]] bool matches_local(const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b) const {
    if (!built_ || !fp_.quick_equals(detail1d::quick_fingerprint_of(a, b))) return false;
    const std::uint64_t ah = detail1d::structure_hash(a.local());
    if (ah != fp_.a_hash) return false;
    const std::uint64_t bh = &a == &b ? ah : detail1d::structure_hash(b.local());
    return bh == fp_.b_hash;
  }

  /// Collective reuse check: true iff every rank's slice matches its plan.
  [[nodiscard]] bool matches(Comm& comm, const DistMatrix1D<VT>& a,
                             const DistMatrix1D<VT>& b) const {
    int ok;
    {
      auto ph = comm.phase(Phase::Other);
      ok = matches_local(a, b) ? 1 : 0;
    }
    return comm.allreduce(ok, [](int x, int y) { return x < y ? x : y; }) == 1;
  }

  /// Inspector + first execute (collective): resolves Auto, runs the fresh
  /// multiply through the chosen backend while capturing its value-only
  /// replay program, and fingerprints the operands. Replaces any previous
  /// plan state.
  DistMatrix1D<VT> build(Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                         const DistSpgemmOptions& opt = {}, DistSpgemmStats* stats = nullptr) {
    distdetail::validate_collective(comm, a, b, opt);
    // Per-call high-water gauge: outermost scope of the turn resets the
    // peak; panel sub-plan builds nest and roll their charges up.
    MemGaugeScope gauge(comm.report());
    reset_keep_counters();
    opt_ = opt;
    me_ = comm.rank();
    horizon_ = std::max(1, opt.expected_iterations);
    const RankReport before = comm.report();

    Algo algo = opt.algo;
    int layers = opt.layers;
    detail1d::AMeta<VT> meta;
    bool have_meta = false;

    // Ordering policy resolution (DESIGN.md §12), mirroring spgemm_dist:
    // ineligible operands degrade to Identity before any collective.
    Ordering policy = opt.reorder;
    if (policy != Ordering::Identity && !reorder_eligible(a, b, comm.size()))
      policy = Ordering::Identity;
    const bool need_cost = algo == Algo::Auto || policy == Ordering::Auto ||
                           (opt.max_peak_triples > 0 && opt.panels == 0);
    const bool need_rplan = policy == Ordering::Auto || policy == Ordering::Partitioned;

    if (need_cost) {
      inputs_ = gather_algo_cost_inputs(comm, a, b, opt.sa1d, &meta);
      inputs_.grid_rows = opt.grid_rows;
      inputs_.grid_cols = opt.grid_cols;
      inputs_.overlap = opt.overlap;
      inputs_.max_peak_triples = opt.max_peak_triples;
      inputs_.panels = opt.panels;
      // Serving workloads declare the fusion width they expect: replays are
      // then priced with per-phase latency amortized across the batch, so
      // Auto builds onto the backend that is optimal *under fusion*.
      inputs_.batch = std::max(1, opt.expected_batch);
      have_meta = true;
      have_inputs_ = true;
    }

    const RankReport before_reorder = comm.report();
    ReorderPlan rplan;
    if (need_rplan) {
      rplan = build_reorder_plan(comm, a, opt.sa1d.threads, opt.reorder_seed);
      rfeatures_ = rplan.features;
      last_partition_seconds_ = rplan.features.partition_seconds;
      if (!rplan.valid && policy == Ordering::Partitioned) policy = Ordering::Identity;
    }

    ordering_ = policy == Ordering::Auto ? Ordering::Identity : policy;
    if (need_cost) {
      if (rplan.valid) {
        inputs_.reorder_cut_fraction = rplan.features.cut_fraction;
        inputs_.reorder_part_imbalance = rplan.features.part_imbalance;
        inputs_.reorder_seconds = rplan.features.partition_seconds;
      }
      inputs_.reorder_move_elems = inputs_.nnz_a + (&a == &b ? 0 : inputs_.nnz_b);
      auto ph = comm.phase(Phase::Plan);
      // Horizon-aware joint Auto: with a declared iteration count the build
      // is priced as one fresh multiply plus (h−1) value-only replays per
      // (backend × ordering) cell, so the one-shot reorder cost is
      // amortized over the horizon exactly once.
      auto [ch, ord] = choose_algo_ordered(comm.cost(), inputs_, policy, rplan.valid, opt.algo,
                                           opt.layers, &layers, &predictions_, horizon_);
      if (opt.algo == Algo::Auto) algo = ch;
      ordering_ = ord;
      inputs_.ordering = ordering_;
      // Plan-aware Auto (ROADMAP): the decision above is what this build
      // runs; also reprice the same inputs for pure value-only replays
      // (zero plan term) so every later execute() can report the decision
      // horizon that matches what it did, with no re-gather.
      replay_choice_ = choose_algo(comm.cost(), inputs_, opt.layers, &replay_layers_,
                                   &replay_predictions_, /*replay=*/true);
    } else if (algo == Algo::Split3D && layers == 0) {
      layers = distdetail::default_split3d_layers(comm.size());
    }

    // Apply the ordering: permute both operands onto the partition layout
    // (Random keeps the original bounds), capturing the value-only forward
    // routes, and cache the operand value hashes so replays can skip the
    // movement entirely when only structure — not values — must match.
    const DistMatrix1D<VT>* ra = &a;
    const DistMatrix1D<VT>* rb = &b;
    if (ordering_ != Ordering::Identity) {
      have_meta = false;  // the gathered AMeta describes the unpermuted A
      std::vector<index_t> pbounds;
      if (ordering_ == Ordering::Partitioned) {
        perm_ = rplan.layout.perm;
        pbounds = rplan.layout.bounds;
      } else {
        perm_ = random_permutation(a.ncols(), opt.reorder_seed);
        pbounds = a.bounds();
      }
      pa_ = permute_symmetric_dist(comm, a, perm_, pbounds, &route_a_);
      pb_aliases_pa_ = &a == &b;
      if (!pb_aliases_pa_)
        pb_ = permute_symmetric_dist(comm, b, perm_, std::move(pbounds), &route_b_);
      ra = &pa_;
      rb = pb_aliases_pa_ ? &pa_ : &pb_;
      a_val_hash_ = distdetail::value_hash(a.local());
      b_val_hash_ = pb_aliases_pa_ ? a_val_hash_ : distdetail::value_hash(b.local());
    }
    last_reorder_bytes_ =
        comm.report().coll_bytes_received() - before_reorder.coll_bytes_received();

    // The SA-1D prefetch rides the master switch: both must be on.
    Spgemm1dOptions sa = opt.sa1d;
    sa.overlap = opt.sa1d.overlap && opt.overlap;

    // Budgeted builds bound the overlap staging and capture the ring plan
    // with a bounded hop window (first-class windowed execution: replays
    // stream post-window hops, recomputing per-hop metadata).
    const int lookahead = opt.max_peak_triples > 0 ? 2 : 0;
    const int ring_window =
        opt.ring_window > 0 ? opt.ring_window
                            : (opt.max_peak_triples > 0 ? std::min(2, comm.size() - 1) : 0);
    auto run_fresh = [&](Algo which, int lyr) -> DistMatrix1D<VT> {
      chosen_ = which;
      layers_ = which == Algo::Split3D ? lyr : 1;
      switch (which) {
        case Algo::Auto: break;  // unreachable: resolved above
        case Algo::SparseAware1D:
          // Auto hands its gathered AMeta to the inspector: exactly one
          // metadata allgather for the whole dispatch.
          sa1d_ = have_meta ? SpgemmPlan1D<VT, SR>(comm, *ra, *rb, sa, std::move(meta))
                            : SpgemmPlan1D<VT, SR>(comm, *ra, *rb, sa);
          return sa1d_.execute_verified(comm, *ra, *rb);
        case Algo::Ring1D:
          return spgemm_naive_ring_1d<SR>(comm, *ra, *rb, &ring_, opt.overlap, ring_window);
        case Algo::Summa2D:
          return spgemm_summa_2d_dist<SR>(comm, *ra, *rb, opt.sa1d.kernel, opt.sa1d.threads,
                                          &summa_, opt.grid_rows, opt.grid_cols, opt.overlap,
                                          lookahead);
        case Algo::Split3D:
          require_split3d_layers(comm.size(), lyr, "DistSpgemmPlan(Algo::Split3D)");
          return spgemm_split_3d_dist<SR>(comm, *ra, *rb, lyr, opt.sa1d.kernel,
                                          opt.sa1d.threads, &split3d_, opt.grid_rows,
                                          opt.grid_cols, opt.overlap, lookahead);
      }
      require(false, "DistSpgemmPlan::build: unknown algorithm");
      return {};
    };
    // Panelized build (DESIGN.md §13): one sub-plan per global column
    // window of (the possibly permuted) B, built in ascending panel order;
    // replays recompute each panel restriction and replay its sub-plan.
    auto run_panels = [&](Algo which, int lyr, int k) -> DistMatrix1D<VT> {
      if (k <= 1) {
        panels_ = 1;
        return run_fresh(which, lyr);
      }
      chosen_ = which;
      layers_ = which == Algo::Split3D ? lyr : 1;
      panels_ = k;
      panel_bounds_ = even_split(rb->ncols(), k);
      DistSpgemmOptions sub = opt;
      sub.algo = which;
      sub.layers = which == Algo::Split3D ? lyr : opt.layers;
      sub.reorder = Ordering::Identity;  // the operands are already permuted
      sub.panels = 1;
      panel_plans_.clear();
      panel_plans_.reserve(static_cast<std::size_t>(k));
      std::vector<DistMatrix1D<VT>> outs;
      outs.reserve(static_cast<std::size_t>(k));
      for (int pi = 0; pi < k; ++pi) {
        auto bp = restrict_columns(*rb, panel_bounds_[static_cast<std::size_t>(pi)],
                                   panel_bounds_[static_cast<std::size_t>(pi) + 1]);
        auto sp = std::make_shared<DistSpgemmPlan>();
        outs.push_back(sp->build(comm, *ra, bp, sub));
        panel_plans_.push_back(std::move(sp));
      }
      auto ph = comm.phase(Phase::Other);
      return concat_column_panels(outs);
    };
    // Panel resolution, mirroring spgemm_dist: pinned counts are trusted;
    // panels = 0 with a budget reads the model's smallest feasible
    // panelization for this (backend × ordering × layers) cell, raising the
    // identical ValidationError on every rank when none fits.
    int panels = opt.panels >= 1 ? opt.panels : 1;
    if (opt.panels == 0 && opt.max_peak_triples > 0 && opt.algo != Algo::Auto) {
      const AlgoPrediction* cell = nullptr;
      for (const auto& pr : predictions_)
        if (pr.algo == algo && pr.ordering == ordering_ &&
            (algo != Algo::Split3D || pr.layers == layers)) {
          cell = &pr;
          break;
        }
      if (cell == nullptr || !cell->feasible)
        throw ValidationError(
            ErrorContext{comm.global_rank(comm.rank()), comm.report().comm_ops,
                         "DistSpgemmPlan::build"},
            std::string("spgemm_dist: no column panelization of backend ") + algo_name(algo) +
                " fits max_peak_triples=" + std::to_string(opt.max_peak_triples) +
                " (modeled peak exceeds the budget at every panel count)");
      panels = cell->panels;
    }

    DistMatrix1D<VT> c;
    int failovers = 0;
    if (opt.algo != Algo::Auto) {
      c = run_panels(algo, layers, panels);
    } else {
      // Same degrade policy as spgemm_dist: walk the cost-ranked feasible
      // candidates *of the chosen ordering* (the operands are already
      // permuted for it), skipping any a backend's entry validation or the
      // fault injector's veto rejects (both deterministic and
      // rank-symmetric).
      std::vector<AlgoPrediction> walk = predictions_;
      std::erase_if(walk,
                    [&](const AlgoPrediction& p) { return p.ordering != ordering_; });
      bool done = false;
      for (const auto& cand : distdetail::ranked_candidates(std::move(walk))) {
        if (comm.injector() != nullptr &&
            comm.injector()->vetoes(static_cast<int>(cand.algo))) {
          ++failovers;
          continue;
        }
        try {
          c = run_panels(cand.algo, cand.layers, cand.panels);
          done = true;
          break;
        } catch (const std::invalid_argument&) {
          ++failovers;
        }
      }
      if (!done)
        throw ValidationError(ErrorContext{comm.global_rank(comm.rank()),
                                           comm.report().comm_ops, "DistSpgemmPlan::build"},
                              "spgemm_dist: Auto found no dispatchable backend (all "
                              "cost-feasible candidates failed validation or were vetoed)");
    }
    const Algo algo_run = chosen_;

    if (ordering_ != Ordering::Identity) {
      // Scatter C back to the caller's ordering and bounds, capturing the
      // value-only inverse route; the returned matrix doubles as the
      // template every replay writes its scattered values into.
      c = permute_symmetric_dist(comm, c, perm_.inverse(), a.bounds(), &route_c_inv_);
      c_tmpl_ = c;
    }

    if (algo_run == Algo::SparseAware1D && ordering_ == Ordering::Identity && panels_ == 1) {
      fp_ = sa1d_.fingerprint();  // the inspector already hashed the slices
    } else {
      // Ordered plans must fingerprint the ORIGINAL operands — matches()
      // compares against what the caller passes; the SA-1D sub-plan hashes
      // the permuted pair internally for its own replay guard.
      auto ph = comm.phase(Phase::Plan);
      fp_ = detail1d::fingerprint_of(a, b);
    }
    built_ = true;
    ++builds_;
    ++comm.report().plan_builds[distdetail::algo_slot(chosen_)];
    if (opt_.algo == Algo::Auto) ++comm.report().plan_builds[distdetail::algo_slot(Algo::Auto)];
    fill_stats(stats, comm, before, /*reused=*/false);
    if (stats != nullptr) stats->validation_failovers = failovers;
    return c;
  }

  /// Discards the cached program (keeping the lifetime counters) so the
  /// next call through spgemm_dist_cached rebuilds — the recovery policy's
  /// response to CorruptionDetected/PlanMismatch during a replay.
  void invalidate() { reset_keep_counters(); }

  /// Executor (collective): replays the cached program — values only, no
  /// metadata collectives, no Phase::Plan work. The full local fingerprint
  /// is verified on every call; iterated callers with evolving structure
  /// should go through spgemm_dist_cached.
  DistMatrix1D<VT> execute(Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                           DistSpgemmStats* stats = nullptr) {
    {
      auto ph = comm.phase(Phase::Other);
      require(built_, "DistSpgemmPlan::execute: plan was never built");
      require(matches_local(a, b),
              "DistSpgemmPlan::execute: operand structure does not match the plan fingerprint "
              "(iterated callers should use spgemm_dist_cached, which decides replay-vs-rebuild "
              "with the collective matches())");
    }
    return execute_verified(comm, a, b, stats);
  }

  /// Executor without the O(nnz) hash re-check. Precondition: the operand
  /// pair was just verified against this plan (a successful collective
  /// matches(), or the plan was built from these operands).
  DistMatrix1D<VT> execute_verified(Comm& comm, const DistMatrix1D<VT>& a,
                                    const DistMatrix1D<VT>& b,
                                    DistSpgemmStats* stats = nullptr) {
    // Structured (not a bare require): a rank whose operands diverged from
    // the verified plan must not enter the replay collectives while peers
    // do — comm.fail raises PlanMismatch machine-wide so every rank unwinds
    // with the identical recoverable error, and spgemm_dist_cached's retry
    // loop can rebuild.
    if (!built_ || !fp_.quick_equals(detail1d::quick_fingerprint_of(a, b)))
      comm.fail(FaultClass::PlanMismatch, "execute_verified",
                "DistSpgemmPlan::execute_verified: operand/plan mismatch (rank " +
                    std::to_string(comm.global_rank(comm.rank())) +
                    "'s operand dims/nnz diverged from the plan fingerprint)");
    // Per-call high-water gauge: nested panel sub-plan replays roll up.
    MemGaugeScope gauge(comm.report());
    const RankReport before = comm.report();
    last_partition_seconds_ = 0.0;  // replays never re-partition
    last_reorder_bytes_ = 0;
    const DistMatrix1D<VT>* ra = &a;
    const DistMatrix1D<VT>* rb = &b;
    if (ordering_ != Ordering::Identity) {
      // The cached permuted operands already hold the right values when the
      // caller's values are unchanged since they were filled (iterated
      // squaring replays the same plan on the same matrix) — vote on the
      // hash match through the uncounted control plane so the branch is
      // rank-uniform, and only on a miss replay the value-only forward
      // routes (the documented changed-values contract: nonzero reorder
      // bytes, still zero partition work).
      std::uint64_t ah, bh;
      bool same_local;
      {
        auto ph = comm.phase(Phase::Reorder);
        ah = distdetail::value_hash(a.local());
        bh = pb_aliases_pa_ ? ah : distdetail::value_hash(b.local());
        same_local = ah == a_val_hash_ && bh == b_val_hash_;
      }
      bool same = true;
      for (const auto& v : comm.exchange_control(same_local ? "1" : "0"))
        if (v == "0") same = false;
      if (!same) {
        const RankReport br = comm.report();
        permute_symmetric_replay(comm, a, route_a_, pa_);
        if (!pb_aliases_pa_) permute_symmetric_replay(comm, b, route_b_, pb_);
        a_val_hash_ = ah;
        b_val_hash_ = bh;
        last_reorder_bytes_ =
            comm.report().coll_bytes_received() - br.coll_bytes_received();
      }
      ra = &pa_;
      rb = pb_aliases_pa_ ? &pa_ : &pb_;
    }
    DistMatrix1D<VT> c;
    const int lookahead = opt_.max_peak_triples > 0 ? 2 : 0;
    if (panels_ > 1) {
      // Panelized replay: recompute each panel's B restriction (values are
      // this call's — the restriction copies them) and replay its sub-plan
      // in ascending panel order; concatenation order is deterministic, so
      // the result is bit-identical to the monolithic replay.
      std::vector<DistMatrix1D<VT>> outs;
      outs.reserve(panel_plans_.size());
      for (std::size_t pi = 0; pi < panel_plans_.size(); ++pi) {
        auto bp = restrict_columns(*rb, panel_bounds_[pi], panel_bounds_[pi + 1]);
        outs.push_back(panel_plans_[pi]->execute_verified(comm, *ra, bp));
      }
      auto ph = comm.phase(Phase::Other);
      c = concat_column_panels(outs);
    } else {
      switch (chosen_) {
        case Algo::Auto: break;  // unreachable: build resolved the dispatch
        case Algo::SparseAware1D:
          c = sa1d_.execute_verified(comm, *ra, *rb);
          break;
        case Algo::Ring1D:
          c = spgemm_naive_ring_1d_replay<SR>(comm, ring_, *ra, *rb, opt_.overlap);
          break;
        case Algo::Summa2D:
          c = spgemm_summa_2d_replay<SR>(comm, summa_, *ra, *rb, opt_.overlap, lookahead);
          break;
        case Algo::Split3D:
          c = spgemm_split_3d_replay<SR>(comm, split3d_, *ra, *rb, opt_.overlap, lookahead);
          break;
      }
    }
    if (ordering_ != Ordering::Identity) {
      // Value-only inverse scatter through the cached route: C comes back
      // in the caller's ordering. Regular execution comm, not reorder.
      permute_symmetric_replay(comm, c, route_c_inv_, c_tmpl_);
      c = c_tmpl_;
    }
    ++replays_;
    ++comm.report().plan_replays[distdetail::algo_slot(chosen_)];
    if (opt_.algo == Algo::Auto) ++comm.report().plan_replays[distdetail::algo_slot(Algo::Auto)];
    fill_stats(stats, comm, before, /*reused=*/true);
    return c;
  }

 private:
  /// Clears plan state but keeps the lifetime build/replay counters.
  void reset_keep_counters() {
    const int b = builds_, r = replays_;
    *this = DistSpgemmPlan();
    builds_ = b;
    replays_ = r;
  }

  void fill_stats(DistSpgemmStats* stats, Comm& comm, const RankReport& before,
                  bool reused) const {
    if (stats == nullptr) return;
    *stats = DistSpgemmStats{};
    stats->requested = opt_.algo;
    stats->chosen = chosen_;
    stats->layers = layers_;
    stats->requested_ordering = opt_.reorder;
    stats->ordering = ordering_;
    stats->reorder_cut_fraction = rfeatures_.cut_fraction;
    stats->reorder_part_imbalance = rfeatures_.part_imbalance;
    stats->partition_seconds = last_partition_seconds_;
    stats->reorder_coll_bytes = last_reorder_bytes_;
    if (have_inputs_) {
      stats->inputs = inputs_;
      stats->predictions = predictions_;
      // Plan-aware Auto: both decision horizons are recorded — the
      // one-shot trace that chose the build, and the replay repricing
      // (zero plan term, value-only volume) that matches cached executes.
      stats->replay_predictions = replay_predictions_;
      stats->replay_choice = replay_choice_;
      stats->replay_layers = replay_layers_;
    }
    stats->plan_reused = reused;
    stats->horizon_iters = horizon_;
    stats->panels = panels_;
    const RankReport& after = comm.report();
    stats->peak_triples = after.peak_triples;
    stats->peak_bytes = after.peak_bytes;
    stats->plan_seconds = after.plan_s - before.plan_s;
    stats->comm_wait_s = after.comm_s - before.comm_s;
    stats->comm_hidden_s = after.overlap_s - before.overlap_s;
    stats->coll_recv_bytes = (after.bytes_network() - after.rdma_bytes) -
                             (before.bytes_network() - before.rdma_bytes);
    // A reused ordered plan's value traffic includes the inverse scatter
    // (inside replay_coll_recv_bytes) and, when operand values changed, the
    // forward value routes (the measured reorder bytes) — neither is
    // structural metadata.
    const std::uint64_t value_payload =
        reused ? replay_coll_recv_bytes() + last_reorder_bytes_ : 0;
    stats->meta_coll_bytes =
        stats->coll_recv_bytes > value_payload ? stats->coll_recv_bytes - value_payload : 0;
  }

  bool built_ = false;
  DistSpgemmOptions opt_;
  Algo chosen_ = Algo::SparseAware1D;
  int layers_ = 1;
  int me_ = 0;
  StructureFingerprint fp_{};
  bool have_inputs_ = false;
  AlgoCostInputs inputs_{};
  std::vector<AlgoPrediction> predictions_;
  std::vector<AlgoPrediction> replay_predictions_;
  Algo replay_choice_ = Algo::Auto;
  int replay_layers_ = 1;
  int horizon_ = 1;
  int builds_ = 0;
  int replays_ = 0;

  // Ordered-plan cache (ordering_ != Identity): the symmetric permutation
  // and its layout, the permuted operands with their forward value routes,
  // the inverse route + C template returning results to the caller's
  // ordering, and FNV hashes of the original operands' value arrays. A
  // replay whose operands still hash-match reuses pa_/pb_ outright — zero
  // partition work, zero reorder collective bytes (DESIGN.md §12).
  Ordering ordering_ = Ordering::Identity;
  Permutation perm_;
  ReorderFeatures rfeatures_{};
  DistMatrix1D<VT> pa_, pb_;
  bool pb_aliases_pa_ = false;
  PermuteRoute route_a_, route_b_, route_c_inv_;
  DistMatrix1D<VT> c_tmpl_;
  std::uint64_t a_val_hash_ = 0, b_val_hash_ = 0;
  // Per-call reorder accounting the next fill_stats reports.
  double last_partition_seconds_ = 0.0;
  std::uint64_t last_reorder_bytes_ = 0;

  // Exactly one of these is populated, per chosen_.
  SpgemmPlan1D<VT, SR> sa1d_;
  RingPlan<VT, SR> ring_;
  Summa2dPlan<VT, SR> summa_;
  Split3dPlan<VT, SR> split3d_;

  // Panelized plans (panels_ > 1, DESIGN.md §13): the backend members above
  // stay empty and each panel's replay program lives in its own sub-plan
  // over (A, B restricted to [panel_bounds_[i], panel_bounds_[i+1]))).
  // shared_ptr because reset_keep_counters() copy-assigns a fresh plan.
  int panels_ = 1;
  std::vector<index_t> panel_bounds_;
  std::vector<std::shared_ptr<DistSpgemmPlan>> panel_plans_;
};

/// Iterated-caller entry point over any backend: reuses `plan` when every
/// rank's operand structure still matches it and the options are unchanged
/// (one collective vote — 4 bytes/rank — keeps the replay-vs-rebuild branch
/// uniform and deadlock-free), rebuilds otherwise. The app loops (MCL
/// rounds, BC levels, AMG setup refreshes) all go through this; the replay
/// moves only values whichever backend the plan holds, and under Algo::Auto
/// the cached cost decision short-circuits the metadata re-gather entirely.
template <typename SRIn = void, typename VT>
DistMatrix1D<VT> spgemm_dist_cached(Comm& comm,
                                    DistSpgemmPlan<VT, ResolveSemiring<SRIn, VT>>& plan,
                                    const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                                    const DistSpgemmOptions& opt = {},
                                    DistSpgemmStats* stats = nullptr) {
  // Self-healing replay (recovery policy, DESIGN.md §9): a recoverable
  // fault — CorruptionDetected from integrity mode, PlanMismatch from a
  // replay guard — unwinds every rank with the identical typed error; all
  // ranks meet in the collective recover() rendezvous (clearing the fault
  // and resetting every barrier), invalidate the plan, and rebuild fresh.
  // Bounded by max_recovery_retries; fatal faults (a dead rank) and
  // validation errors propagate immediately.
  ++comm.report().toplevel_calls;
  int attempts = 0;
  for (;;) {
    try {
      // Validate before the replay-vs-rebuild branch: if options or operand
      // shapes diverged across ranks, some ranks would enter matches()'s
      // allreduce while others enter build()'s gathers — the validation vote
      // throws the identical ValidationError on every rank first. It runs
      // INSIDE the retry scope: in an iterated workload a peer's recoverable
      // fault can poison this rank while it sits in the next call's
      // validation exchange (panelized plans skew rank progress enough to
      // hit this), and surfacing that Corruption here instead of joining
      // recover() would strand the peers' rendezvous until the watchdog.
      distdetail::validate_collective(comm, a, b, opt);
      DistMatrix1D<VT> c;
      if (!plan.empty() && plan.options() == opt && plan.matches(comm, a, b)) {
        c = plan.execute_verified(comm, a, b, stats);
      } else {
        c = plan.build(comm, a, b, opt, stats);
      }
      if (stats != nullptr) stats->recoveries = attempts;
      return c;
    } catch (const Sa1dError& e) {
      const bool recoverable = e.fault_class() == FaultClass::Corruption ||
                               e.fault_class() == FaultClass::PlanMismatch;
      if (!recoverable || attempts >= opt.max_recovery_retries) throw;
      ++attempts;
      comm.recover();  // collective; rethrows if the fault turned fatal
      distdetail::vote_recovery_alignment(comm, "spgemm_dist_cached");
      plan.invalidate();
      ++comm.report().plan_recoveries;
    }
  }
}

}  // namespace sa1d
