// 2D sparse SUMMA (Buluç & Gilbert; the CombBLAS algorithm the paper
// benchmarks against): ranks form a √P×√P grid, C(i,j) is accumulated over
// √P stages of row-broadcast A(i,k) and column-broadcast B(k,j) block
// multiplies.
//
// The primary entry point is 1D-in/1D-out: operands arrive in the library's
// canonical column distribution, are scattered onto the grid by one
// all-to-all (dist/redistribute.hpp), and the per-stage partials are
// scattered back into B's column distribution with a semiring-⊕ merge — no
// global gather anywhere, and every byte moves through Phase-scoped,
// instrumented collectives so the RankReport breakdown is comparable with
// the other spgemm_dist backends. The replicated-operand wrapper of the
// original baseline API remains for one-shot comparisons.
#pragma once

#include <vector>

#include "dist/dist_matrix.hpp"
#include "dist/redistribute.hpp"
#include "kernels/spgemm_local.hpp"
#include "runtime/machine.hpp"

namespace sa1d {

/// Reassembles a replicated CSC matrix from per-rank partial COO blocks
/// (global coordinates); duplicates across ranks are merged by addition.
/// Collective.
template <typename VT>
CscMatrix<VT> gather_coo(Comm& comm, const CooMatrix<VT>& part) {
  auto chunks = comm.allgatherv(std::span<const Triple<VT>>(part.triples()));
  CooMatrix<VT> all(part.nrows(), part.ncols());
  for (auto& chunk : chunks)
    for (auto& t : chunk) all.push(t.row, t.col, t.val);
  all.canonicalize();
  return CscMatrix<VT>::from_coo(all);
}

namespace summadetail {

/// All triples of a CSC block (block-local coordinates, column-major).
template <typename VT>
std::vector<Triple<VT>> csc_triples(const CscMatrix<VT>& m) {
  std::vector<Triple<VT>> out;
  out.reserve(static_cast<std::size_t>(m.nnz()));
  for (index_t j = 0; j < m.ncols(); ++j) {
    auto rows = m.col_rows(j);
    auto vals = m.col_vals(j);
    for (std::size_t p = 0; p < rows.size(); ++p) out.push_back({rows[p], j, vals[p]});
  }
  return out;
}

template <typename VT>
CscMatrix<VT> csc_from_block(index_t nrows, index_t ncols, std::vector<Triple<VT>> triples) {
  return CscMatrix<VT>::from_coo(CooMatrix<VT>(nrows, ncols, std::move(triples)));
}

/// The SUMMA stage loop over one q×q grid: accumulates this rank's partial
/// C(gi, gj) into `acc` in *global* coordinates (rb/cb are global bounds).
/// The grid owns A blocks split by (rb, kb) and B blocks by (kb, cb);
/// `comm` is the grid communicator (a layer of the 3D backend, or
/// everything for 2D). Stage partials of the same entry are merged with ⊕
/// before `acc` is handed back, so the caller ships post-merge volume.
template <typename SR, typename VT>
void summa_stages(Comm& comm, const CscMatrix<VT>& my_a, const CscMatrix<VT>& my_b,
                  std::span<const index_t> rb, std::span<const index_t> kb,
                  std::span<const index_t> cb, LocalKernel kernel, int threads,
                  CooMatrix<VT>& acc) {
  const int q = summa_grid_side(comm.size());
  const int gi = comm.rank() / q;
  const int gj = comm.rank() % q;
  Comm row_comm = comm.split(gi, gj);  // sub-rank within a row == grid column
  Comm col_comm = comm.split(gj, gi);  // sub-rank within a column == grid row

  const index_t rlo = rb[static_cast<std::size_t>(gi)];
  const index_t clo = cb[static_cast<std::size_t>(gj)];

  for (int k = 0; k < q; ++k) {
    const index_t klo = kb[static_cast<std::size_t>(k)], khi = kb[static_cast<std::size_t>(k) + 1];

    std::vector<Triple<VT>> abuf, bbuf;
    {
      auto ph = comm.phase(Phase::Other);
      if (gj == k) abuf = csc_triples(my_a);
      if (gi == k) bbuf = csc_triples(my_b);
    }
    row_comm.bcast(abuf, k);  // A(gi, k) along grid row gi
    col_comm.bcast(bbuf, k);  // B(k, gj) along grid column gj

    CscMatrix<VT> c_blk;
    {
      auto ph = comm.phase(Phase::Comp);
      auto a_blk = csc_from_block(rb[static_cast<std::size_t>(gi) + 1] -
                                      rb[static_cast<std::size_t>(gi)],
                                  khi - klo, std::move(abuf));
      auto b_blk = csc_from_block(khi - klo,
                                  cb[static_cast<std::size_t>(gj) + 1] -
                                      cb[static_cast<std::size_t>(gj)],
                                  std::move(bbuf));
      c_blk = spgemm_local<SR, VT>(a_blk, b_blk, kernel, threads);
    }
    {
      auto ph = comm.phase(Phase::Other);
      for (index_t j = 0; j < c_blk.ncols(); ++j) {
        auto rows = c_blk.col_rows(j);
        auto vals = c_blk.col_vals(j);
        for (std::size_t p = 0; p < rows.size(); ++p)
          acc.push(rows[p] + rlo, j + clo, vals[p]);
      }
    }
  }
  {
    // Merge the up-to-q per-stage partials of each C entry locally before
    // the scatter: the all-to-all then carries post-merge volume (what the
    // cost model prices), not q× duplicates.
    auto ph = comm.phase(Phase::Other);
    acc.canonicalize_with([](VT x, VT y) { return SR::add(x, y); });
  }
}

}  // namespace summadetail

/// 2D sparse SUMMA over 1D-distributed operands. Collective; requires a
/// perfect-square process count (require_summa_grid explains the options
/// otherwise). C is returned in B's column distribution; partial entries
/// across the √P stages are merged with the semiring's ⊕.
template <typename SRIn = void, typename VT>
DistMatrix1D<VT> spgemm_summa_2d_dist(Comm& comm, const DistMatrix1D<VT>& a,
                                      const DistMatrix1D<VT>& b,
                                      LocalKernel kernel = LocalKernel::Hybrid,
                                      int threads = 1) {
  using SR = ResolveSemiring<SRIn, VT>;
  require(a.ncols() == b.nrows(), "spgemm_summa_2d_dist: inner dimension mismatch");
  const int P = comm.size();
  require_summa_grid(P, "spgemm_summa_2d_dist");
  const int q = summa_grid_side(P);
  const int gi = comm.rank() / q;
  const int gj = comm.rank() % q;

  auto rb = even_split(a.nrows(), q);  // row blocks of A and C
  auto kb = even_split(a.ncols(), q);  // inner-dimension blocks
  auto cb = even_split(b.ncols(), q);  // column blocks of B and C

  auto rank_of = [q](int bi, int bj) { return bi * q + bj; };
  auto my_a = redistribute_1d_to_2d_grid(comm, a, std::span<const index_t>(rb),
                                         std::span<const index_t>(kb), rank_of, gi, gj);
  auto my_b = redistribute_1d_to_2d_grid(comm, b, std::span<const index_t>(kb),
                                         std::span<const index_t>(cb), rank_of, gi, gj);

  CooMatrix<VT> acc(a.nrows(), b.ncols());
  summadetail::summa_stages<SR>(comm, my_a, my_b, std::span<const index_t>(rb),
                                std::span<const index_t>(kb), std::span<const index_t>(cb),
                                kernel, threads, acc);
  return redistribute_coo_to_1d<SR>(comm, acc, a.nrows(), b.ncols(), b.bounds());
}

/// Replicated-operand wrapper (the original baseline API): distributes the
/// globals, runs the 1D-in/1D-out SUMMA, and returns this rank's C column
/// slice as COO in global coordinates — gather_coo() reassembles.
template <typename VT>
CooMatrix<VT> spgemm_summa_2d(Comm& comm, const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                              LocalKernel kernel = LocalKernel::Hybrid, int threads = 1) {
  require(a.ncols() == b.nrows(), "spgemm_summa_2d: inner dimension mismatch");
  require_summa_grid(comm.size(), "spgemm_summa_2d");
  auto da = DistMatrix1D<VT>::from_global(comm, a);
  auto db = DistMatrix1D<VT>::from_global(comm, b);
  auto dc = spgemm_summa_2d_dist(comm, da, db, kernel, threads);
  auto ph = comm.phase(Phase::Other);
  return dc.local_to_coo_global();
}

}  // namespace sa1d
