// 2D sparse SUMMA (Buluç & Gilbert; the CombBLAS algorithm the paper
// benchmarks against), generalized to rectangular q_r × q_c process grids:
// any rank count factors into a grid (nearest-square by default, or a
// pinned grid_rows × grid_cols), the inner dimension is split into
// lcm(q_r, q_c) fine blocks so each rank's A piece (stages/q_c blocks) and
// B piece (stages/q_r blocks) stay contiguous, and C(i,j) accumulates over
// the stage loop of row-broadcast A sub-blocks and column-broadcast B
// sub-blocks. On a square grid this is the classic √P×√P algorithm with q
// whole-block stages.
//
// The primary entry point is 1D-in/1D-out: operands arrive in the library's
// canonical column distribution, are scattered onto the grid by one
// all-to-all (dist/redistribute.hpp), and the per-stage partials are
// scattered back into B's column distribution with a semiring-⊕ merge — no
// global gather anywhere, and every byte moves through Phase-scoped,
// instrumented collectives so the RankReport breakdown is comparable with
// the other spgemm_dist backends. The replicated-operand wrapper of the
// original baseline API remains for one-shot comparisons.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "dist/dist_matrix.hpp"
#include "dist/redistribute.hpp"
#include "kernels/spgemm_local.hpp"
#include "runtime/machine.hpp"

namespace sa1d {

/// Reassembles a replicated CSC matrix from per-rank partial COO blocks
/// (global coordinates); duplicates across ranks are merged by addition.
/// Collective.
template <typename VT>
CscMatrix<VT> gather_coo(Comm& comm, const CooMatrix<VT>& part) {
  auto chunks = comm.allgatherv(std::span<const Triple<VT>>(part.triples()));
  CooMatrix<VT> all(part.nrows(), part.ncols());
  for (auto& chunk : chunks)
    for (auto& t : chunk) all.push(t.row, t.col, t.val);
  all.canonicalize();
  return CscMatrix<VT>::from_coo(all);
}

namespace summadetail {

/// Cached SUMMA stage schedule of one rank on its q_r × q_c grid: per
/// stage, the broadcast blocks' structure (shells whose values are
/// overwritten per replay), the root-side value extraction (a contiguous
/// A-column span; a B row-filter gather map), the local engine's symbolic
/// result with warm workspaces, and the ⊕-fold program from the stage's
/// partial-C values into the merged per-rank accumulator. Captured by
/// summa_stages while the fresh loop runs; summa_stages_replay moves only
/// values (row/column broadcasts of bare val arrays) and runs numeric-only
/// local passes.
template <typename VT, typename SR>
struct SummaSched {
  struct Stage {
    CscMatrix<VT> a_blk, b_blk;  ///< received block structure (cached shells)
    LocalSymbolic sym;           ///< symbolic result of a_blk · b_blk
    /// Root-side value sources for the replay broadcasts (meaningful only
    /// on the stage's roots): the fine A block is a contiguous val span of
    /// this rank's A piece; the fine B block is a row filter, so its values
    /// are gathered through an index map.
    index_t a_val_lo = 0, a_val_hi = 0;
    std::vector<index_t> b_src;
  };
  int grid_rows = 1, grid_cols = 1;  ///< the grid the schedule was captured on
  std::vector<Stage> stages;
  /// Flat ⊕-fold program: push i (stage order, column-major within each
  /// stage's c_blk) lands in merged slot acc_dst[i].
  std::vector<index_t> acc_dst;
  std::vector<std::uint8_t> acc_first;
  std::size_t acc_nnz = 0;  ///< merged partial-C count on this rank
  std::vector<detail::Workspace<SR>> ws;
  std::uint64_t bcast_recv_bytes = 0;  ///< value-only replay broadcast volume (this rank)

  /// Byte-accurate residency of the cached schedule on this rank (major
  /// arrays only; warm workspaces are scratch, not plan state) — what the
  /// plan cache's budget accounts against.
  [[nodiscard]] std::uint64_t bytes_resident() const {
    auto csc = [](const CscMatrix<VT>& m) {
      return m.colptr().size() * sizeof(index_t) + m.rowids().size() * sizeof(index_t) +
             m.vals().size() * sizeof(VT);
    };
    std::uint64_t b = 0;
    for (const auto& st : stages) {
      b += csc(st.a_blk) + csc(st.b_blk);
      b += st.sym.bounds.size() * sizeof(index_t) + st.sym.colptr.size() * sizeof(index_t) +
           st.sym.klass.size();
      b += st.b_src.size() * sizeof(index_t);
    }
    b += acc_dst.size() * sizeof(index_t) + acc_first.size();
    return b;
  }
};

template <typename VT>
CscMatrix<VT> csc_from_block(index_t nrows, index_t ncols, std::vector<Triple<VT>> triples) {
  return CscMatrix<VT>::from_coo(CooMatrix<VT>(nrows, ncols, std::move(triples)));
}

/// The SUMMA stage loop over one q_r × q_c grid (`grid.rows · grid.cols ==
/// comm.size()`): accumulates this rank's partial C(gi, gj) into `acc` in
/// *global* coordinates (rb/cb are global bounds). `kb` is the grid's
/// *fine* inner split into `grid.stages = lcm(q_r, q_c)` blocks (local to
/// this grid's inner range): grid column j owns A's fine blocks
/// [j·s/q_c, (j+1)·s/q_c) and grid row i owns B's fine blocks
/// [i·s/q_r, (i+1)·s/q_r), both contiguous, so each stage's roots extract
/// one sub-block of their piece and broadcast it along their row/column
/// team. `comm` is the grid communicator (a layer of the 3D backend, or
/// everything for 2D). Stage partials of the same entry are merged with ⊕
/// before `acc` is handed back, so the caller ships post-merge volume. The
/// merge is deterministic (ties fold in stage order), so a schedule
/// captured via `sched` replays bit-exactly.
template <typename SR, typename VT>
void summa_stages(Comm& comm, GridShape grid, const CscMatrix<VT>& my_a,
                  const CscMatrix<VT>& my_b, std::span<const index_t> rb,
                  std::span<const index_t> kb, std::span<const index_t> cb, LocalKernel kernel,
                  int threads, CooMatrix<VT>& acc, SummaSched<VT, SR>* sched = nullptr,
                  bool overlap = false, int lookahead = 0) {
  const int s = grid.stages;
  const int spc = s / grid.cols;  // fine blocks per grid column (A ownership)
  const int spr = s / grid.rows;  // fine blocks per grid row (B ownership)
  const int gi = comm.rank() / grid.cols;
  const int gj = comm.rank() % grid.cols;
  Comm row_comm = comm.split(gi, gj);  // sub-rank within a row == grid column
  Comm col_comm = comm.split(gj, gi);  // sub-rank within a column == grid row

  const index_t rlo = rb[static_cast<std::size_t>(gi)];
  const index_t clo = cb[static_cast<std::size_t>(gj)];
  const index_t a_clo = kb[static_cast<std::size_t>(gj * spc)];  // my A piece's inner base
  const index_t b_rlo = kb[static_cast<std::size_t>(gi * spr)];  // my B piece's inner base
  if (sched != nullptr) {
    sched->grid_rows = grid.rows;
    sched->grid_cols = grid.cols;
  }

  auto& rep = comm.report();
  constexpr std::uint64_t tb = sizeof(Triple<VT>);
  StreamingTripleMerge<VT> smerge;

  // Root-side payload extraction for stage k. Caller wraps in Phase::Other.
  auto extract = [&](int k, std::vector<Triple<VT>>& abuf, std::vector<Triple<VT>>& bbuf,
                     index_t& a_lo, index_t& a_hi, std::vector<index_t>& b_src) {
    const index_t klo = kb[static_cast<std::size_t>(k)], khi = kb[static_cast<std::size_t>(k) + 1];
    if (gj == k / spc) {
      // Fine A block k = columns [klo−a_clo, khi−a_clo) of my piece:
      // triples in canonical order with stage-local columns. The value
      // payload is the contiguous span vals[colptr[lo], colptr[hi]).
      const auto lo = static_cast<std::size_t>(klo - a_clo);
      const auto hi = static_cast<std::size_t>(khi - a_clo);
      a_lo = my_a.colptr()[lo];
      a_hi = my_a.colptr()[hi];
      abuf.reserve(static_cast<std::size_t>(a_hi - a_lo));
      for (std::size_t j = lo; j < hi; ++j) {
        auto rows = my_a.col_rows(static_cast<index_t>(j));
        auto vals = my_a.col_vals(static_cast<index_t>(j));
        for (std::size_t p = 0; p < rows.size(); ++p)
          abuf.push_back({rows[p], static_cast<index_t>(j - lo), vals[p]});
      }
    }
    if (gi == k / spr) {
      // Fine B block k = rows [klo−b_rlo, khi−b_rlo) of my piece,
      // emitted column-major with rows ascending — canonical order, so
      // the rebuilt block's val array equals this payload and the
      // recorded gather map replays bare values.
      const index_t blk_rlo = klo - b_rlo, blk_rhi = khi - b_rlo;
      for (index_t j = 0; j < my_b.ncols(); ++j) {
        auto rows = my_b.col_rows(j);
        auto vals = my_b.col_vals(j);
        const index_t base = my_b.colptr()[static_cast<std::size_t>(j)];
        auto first = static_cast<std::size_t>(
            std::lower_bound(rows.begin(), rows.end(), blk_rlo) - rows.begin());
        for (std::size_t p = first; p < rows.size() && rows[p] < blk_rhi; ++p) {
          bbuf.push_back({rows[p] - blk_rlo, j, vals[p]});
          if (sched != nullptr) b_src.push_back(base + static_cast<index_t>(p));
        }
      }
    }
  };

  // Everything after the broadcast of stage k — block rebuild, local
  // multiply, partial-C accumulation. Shared verbatim by the lockstep and
  // overlapped paths, so the two stay bit-identical by construction.
  auto run_stage = [&](int k, std::vector<Triple<VT>> abuf, std::vector<Triple<VT>> bbuf,
                       index_t a_lo, index_t a_hi, std::vector<index_t> b_src) {
    const index_t klo = kb[static_cast<std::size_t>(k)], khi = kb[static_cast<std::size_t>(k) + 1];
    const int a_root = k / spc;  // grid column owning fine A block k
    const int b_root = k / spr;  // grid row owning fine B block k
    // Broadcast staging charged by the caller at delivery; dies when the
    // triples are rebuilt into CSC blocks below.
    const std::uint64_t payload = abuf.size() + bbuf.size();

    // The broadcast triples arrive in canonical (col-major, row-ascending)
    // order, so the rebuilt blocks' val order equals the payload order — a
    // replay can broadcast the bare values and write them straight in.
    CscMatrix<VT> a_blk, b_blk, c_blk;
    {
      auto ph = comm.phase(sched != nullptr ? Phase::Plan : Phase::Comp);
      a_blk = csc_from_block(rb[static_cast<std::size_t>(gi) + 1] -
                                 rb[static_cast<std::size_t>(gi)],
                             khi - klo, std::move(abuf));
      b_blk = csc_from_block(khi - klo,
                             cb[static_cast<std::size_t>(gj) + 1] -
                                 cb[static_cast<std::size_t>(gj)],
                             std::move(bbuf));
    }
    rep.mem_release(payload, payload * tb);
    if (sched != nullptr) {
      // Capturing build: run the split engine so the symbolic result (and
      // the warm workspaces) are kept for numeric-only replays.
      typename SummaSched<VT, SR>::Stage st;
      {
        auto ph = comm.phase(Phase::Plan);
        st.sym = spgemm_local_symbolic<SR, VT>(a_blk, b_blk, kernel, threads, &sched->ws);
      }
      {
        auto ph = comm.phase(Phase::Comp);
        c_blk = spgemm_local_numeric<SR, VT>(a_blk, b_blk, st.sym, &sched->ws);
      }
      if (gj != a_root) sched->bcast_recv_bytes += a_blk.vals().size() * sizeof(VT);
      if (gi != b_root) sched->bcast_recv_bytes += b_blk.vals().size() * sizeof(VT);
      st.a_blk = std::move(a_blk);
      st.b_blk = std::move(b_blk);
      st.a_val_lo = a_lo;
      st.a_val_hi = a_hi;
      st.b_src = std::move(b_src);
      sched->stages.push_back(std::move(st));
    } else {
      auto ph = comm.phase(Phase::Comp);
      c_blk = spgemm_local<SR, VT>(a_blk, b_blk, kernel, threads);
    }
    {
      auto ph = comm.phase(Phase::Other);
      const std::size_t pre = acc.triples().size();
      for (index_t j = 0; j < c_blk.ncols(); ++j) {
        auto rows = c_blk.col_rows(j);
        auto vals = c_blk.col_vals(j);
        for (std::size_t p = 0; p < rows.size(); ++p)
          acc.push(rows[p] + rlo, j + clo, vals[p]);
      }
      const std::uint64_t grew = acc.triples().size() - pre;
      rep.mem_charge(grew, grew * tb);
    }
    {
      // Streaming per-stage merge: collapse the accumulator after every
      // stage instead of holding all stage partials until one terminal
      // merge, bounding the resident footprint at (merged so far + one
      // stage's pushes). Bit-identical to the terminal merge, and the
      // composed fold program equals the terminal capture — see
      // StreamingTripleMerge in sparse/coo.hpp.
      auto ph = comm.phase(sched != nullptr ? Phase::Plan : Phase::Other);
      const std::uint64_t before = acc.triples().size();
      rep.mem_charge(before, before * tb);  // merge out-buffer transient
      smerge.round(acc.triples(), [](VT x, VT y) { return SR::add(x, y); },
                   sched != nullptr ? &sched->acc_dst : nullptr,
                   sched != nullptr ? &sched->acc_first : nullptr);
      const std::uint64_t after = acc.triples().size();
      rep.mem_release(2 * before - after, (2 * before - after) * tb);
    }
  };

  if (!overlap) {
    for (int k = 0; k < s; ++k) {
      std::vector<Triple<VT>> abuf, bbuf;
      index_t a_lo = 0, a_hi = 0;
      std::vector<index_t> b_src;
      {
        auto ph = comm.phase(Phase::Other);
        extract(k, abuf, bbuf, a_lo, a_hi, b_src);
      }
      row_comm.bcast(abuf, k / spc);  // fine A(gi, k) along grid row gi
      col_comm.bcast(bbuf, k / spr);  // fine B(k, gj) along grid column gj
      const std::uint64_t payload = abuf.size() + bbuf.size();
      rep.mem_charge(payload, payload * tb);  // delivered stage staging
      run_stage(k, std::move(abuf), std::move(bbuf), a_lo, a_hi, std::move(b_src));
    }
  } else {
    // Double-buffered pipeline with a bounded lookahead window: stage k's
    // A/B payload is extracted and its broadcasts posted nonblocking `la`
    // stages before the local multiply consumes it, so later payloads
    // travel while earlier stages compute. la == s (the default when
    // `lookahead` is 0) posts everything up front — the previous
    // full-lookahead behavior; a budgeted call passes a small window so at
    // most la+1 stage payloads are staged at once. Issue order (a then b,
    // ascending stages) matches the lockstep call order exactly, keeping
    // per-rank comm_ops indices and byte/message counters — and therefore
    // FaultPlan coordinates — identical across modes and window sizes.
    const int la = lookahead > 0 ? std::min(lookahead, s) : s;
    std::vector<std::vector<Triple<VT>>> abufs(static_cast<std::size_t>(s));
    std::vector<std::vector<Triple<VT>>> bbufs(static_cast<std::size_t>(s));
    std::vector<index_t> alos(static_cast<std::size_t>(s), 0);
    std::vector<index_t> ahis(static_cast<std::size_t>(s), 0);
    std::vector<std::vector<index_t>> bsrcs(static_cast<std::size_t>(s));
    std::vector<std::uint64_t> staged(static_cast<std::size_t>(s), 0);
    std::vector<std::optional<CommRequest>> areq(static_cast<std::size_t>(s));
    std::vector<std::optional<CommRequest>> breq(static_cast<std::size_t>(s));
    auto post = [&](int k) {
      const auto sk = static_cast<std::size_t>(k);
      {
        auto ph = comm.phase(Phase::Other);
        extract(k, abufs[sk], bbufs[sk], alos[sk], ahis[sk], bsrcs[sk]);
      }
      staged[sk] = abufs[sk].size() + bbufs[sk].size();  // root-side extraction
      rep.mem_charge(staged[sk], staged[sk] * tb);
      areq[sk].emplace(row_comm.ibcast(abufs[sk], k / spc));
      breq[sk].emplace(col_comm.ibcast(bbufs[sk], k / spr));
    };
    for (int k = 0; k < la; ++k) post(k);
    for (int k = 0; k < s; ++k) {
      const auto sk = static_cast<std::size_t>(k);
      areq[sk]->wait();
      breq[sk]->wait();
      // Top up to the delivered payload (non-roots held nothing until now).
      const std::uint64_t tot = abufs[sk].size() + bbufs[sk].size();
      if (tot > staged[sk]) rep.mem_charge(tot - staged[sk], (tot - staged[sk]) * tb);
      if (k + la < s) post(k + la);
      run_stage(k, std::move(abufs[sk]), std::move(bbufs[sk]), alos[sk], ahis[sk],
                std::move(bsrcs[sk]));
    }
  }
  // The per-stage streaming rounds leave `acc` already merged — the scatter
  // carries post-merge volume (what the cost model prices), not duplicates
  // per stage — and the composed fold program equals a terminal
  // merge_triples_stable capture, so replays are interchangeable.
  if (sched != nullptr) sched->acc_nnz = acc.triples().size();
}

/// Replays a captured stage schedule: per stage, value-only row/column
/// broadcasts (the roots gather from their pieces through the recorded
/// span/map) into the cached block shells, the numeric-only local pass,
/// and the ⊕-fold into `acc_vals` (resized to the merged count; slot order
/// matches the fresh call's merged accumulator). Collective over the same
/// grid communicator the schedule was captured on.
template <typename SR, typename VT>
void summa_stages_replay(Comm& comm, const CscMatrix<VT>& my_a, const CscMatrix<VT>& my_b,
                         SummaSched<VT, SR>& sched, std::vector<VT>& acc_vals,
                         bool overlap = false, int lookahead = 0) {
  const int s = static_cast<int>(sched.stages.size());
  const int spc = s / sched.grid_cols;
  const int spr = s / sched.grid_rows;
  const int gi = comm.rank() / sched.grid_cols;
  const int gj = comm.rank() % sched.grid_cols;
  Comm row_comm = comm.split(gi, gj);
  Comm col_comm = comm.split(gj, gi);

  auto& rep = comm.report();
  acc_vals.assign(sched.acc_nnz, VT{});
  std::size_t flat = 0;

  // Root-side value gathers for stage k (contiguous A span; B index map).
  // Caller wraps in Phase::Other.
  auto extract = [&](int k, std::vector<VT>& abuf, std::vector<VT>& bbuf) {
    auto& st = sched.stages[static_cast<std::size_t>(k)];
    if (gj == k / spc)
      abuf.assign(my_a.vals().begin() + st.a_val_lo, my_a.vals().begin() + st.a_val_hi);
    if (gi == k / spr) {
      bbuf.reserve(st.b_src.size());
      const VT* bv = my_b.vals().data();
      for (auto i : st.b_src) bbuf.push_back(bv[static_cast<std::size_t>(i)]);
    }
  };

  // Post-broadcast stage body: guard, shell fill, numeric pass, ⊕-fold.
  // Shared by both paths; the fold consumes stages in ascending order either
  // way, so overlapped replay stays bit-identical to lockstep replay.
  auto run_stage = [&](int k, std::vector<VT> abuf, std::vector<VT> bbuf) {
    auto& st = sched.stages[static_cast<std::size_t>(k)];
    // Value-only staging (charged at delivery, element-equivalents): dies
    // when the values move into the cached shells below.
    const std::uint64_t payload = abuf.size() + bbuf.size();
    CscMatrix<VT> c_blk;
    {
      auto ph = comm.phase(Phase::Other);
      // Replay guard: the broadcast value arrays must fill the cached stage
      // shells exactly; a diverged root operand raises machine-wide instead
      // of running the numeric pass on a torn block.
      if (abuf.size() != st.a_blk.vals().size() || bbuf.size() != st.b_blk.vals().size())
        comm.fail(FaultClass::PlanMismatch, "summa_stages_replay",
                  "summa_stages_replay: stage " + std::to_string(k) + " broadcast delivered " +
                      std::to_string(abuf.size()) + "/" + std::to_string(bbuf.size()) +
                      " values where the cached shells hold " +
                      std::to_string(st.a_blk.vals().size()) + "/" +
                      std::to_string(st.b_blk.vals().size()));
      st.a_blk.mutable_vals() = std::move(abuf);
      st.b_blk.mutable_vals() = std::move(bbuf);
    }
    rep.mem_release(payload, payload * sizeof(VT));
    {
      auto ph = comm.phase(Phase::Comp);
      c_blk = spgemm_local_numeric<SR, VT>(st.a_blk, st.b_blk, st.sym, &sched.ws);
    }
    {
      auto ph = comm.phase(Phase::Other);
      for (const auto& v : c_blk.vals()) {
        const auto slot = static_cast<std::size_t>(sched.acc_dst[flat]);
        acc_vals[slot] = sched.acc_first[flat] != 0 ? v : SR::add(acc_vals[slot], v);
        ++flat;
      }
    }
  };

  if (!overlap) {
    for (int k = 0; k < s; ++k) {
      std::vector<VT> abuf, bbuf;
      {
        auto ph = comm.phase(Phase::Other);
        extract(k, abuf, bbuf);
      }
      row_comm.bcast(abuf, k / spc);
      col_comm.bcast(bbuf, k / spr);
      const std::uint64_t payload = abuf.size() + bbuf.size();
      rep.mem_charge(payload, payload * sizeof(VT));
      run_stage(k, std::move(abuf), std::move(bbuf));
    }
  } else {
    // Bounded-lookahead value broadcasts (la == s, the default, posts every
    // stage payload up front — the previous behavior); same issue order as
    // lockstep, numeric passes drain them ascending either way.
    const int la = lookahead > 0 ? std::min(lookahead, s) : s;
    std::vector<std::vector<VT>> abufs(static_cast<std::size_t>(s));
    std::vector<std::vector<VT>> bbufs(static_cast<std::size_t>(s));
    std::vector<std::uint64_t> staged(static_cast<std::size_t>(s), 0);
    std::vector<std::optional<CommRequest>> areq(static_cast<std::size_t>(s));
    std::vector<std::optional<CommRequest>> breq(static_cast<std::size_t>(s));
    auto post = [&](int k) {
      const auto sk = static_cast<std::size_t>(k);
      {
        auto ph = comm.phase(Phase::Other);
        extract(k, abufs[sk], bbufs[sk]);
      }
      staged[sk] = abufs[sk].size() + bbufs[sk].size();
      rep.mem_charge(staged[sk], staged[sk] * sizeof(VT));
      areq[sk].emplace(row_comm.ibcast(abufs[sk], k / spc));
      breq[sk].emplace(col_comm.ibcast(bbufs[sk], k / spr));
    };
    for (int k = 0; k < la; ++k) post(k);
    for (int k = 0; k < s; ++k) {
      const auto sk = static_cast<std::size_t>(k);
      areq[sk]->wait();
      breq[sk]->wait();
      const std::uint64_t tot = abufs[sk].size() + bbufs[sk].size();
      if (tot > staged[sk]) rep.mem_charge(tot - staged[sk], (tot - staged[sk]) * sizeof(VT));
      if (k + la < s) post(k + la);
      run_stage(k, std::move(abufs[sk]), std::move(bbufs[sk]));
    }
  }
}

}  // namespace summadetail

/// Cached structural program of one full 2D-SUMMA multiply on this rank:
/// both inbound grid routes, the stage schedule (which remembers its
/// q_r × q_c grid), and the outbound scatter/merge program. Captured by
/// spgemm_summa_2d_dist, replayed (values only) by spgemm_summa_2d_replay.
template <typename VT, typename SR>
struct Summa2dPlan {
  GridRoute<VT> route_a, route_b;
  summadetail::SummaSched<VT, SR> sched;
  ScatterRoute<VT> out;
  std::vector<VT> acc_vals;  ///< replay scratch: merged partial-C values

  /// Exact per-rank collective bytes one value-only replay receives.
  [[nodiscard]] std::uint64_t replay_recv_bytes(int me) const {
    return route_a.replay_recv_bytes(me) + route_b.replay_recv_bytes(me) +
           sched.bcast_recv_bytes + out.replay_recv_bytes(me);
  }

  /// Byte-accurate residency of the full cached program on this rank.
  [[nodiscard]] std::uint64_t bytes_resident() const {
    return route_a.bytes_resident() + route_b.bytes_resident() + sched.bytes_resident() +
           out.bytes_resident() + acc_vals.size() * sizeof(VT);
  }
};

/// 2D sparse SUMMA over 1D-distributed operands on a q_r × q_c grid.
/// Collective; any process count works — the grid is the nearest-square
/// factorization of P unless `grid_rows`/`grid_cols` pin a shape
/// (require_grid_shape validates a pinned shape against P). C is returned
/// in B's column distribution; partial entries across the stages are merged
/// with the semiring's ⊕. `plan` (optional) captures the full value-only
/// replay program while this fresh call runs.
template <typename SRIn = void, typename VT>
DistMatrix1D<VT> spgemm_summa_2d_dist(
    Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
    LocalKernel kernel = LocalKernel::Hybrid, int threads = 1,
    std::type_identity_t<Summa2dPlan<VT, ResolveSemiring<SRIn, VT>>*> plan = nullptr,
    int grid_rows = 0, int grid_cols = 0, bool overlap = false, int lookahead = 0) {
  using SR = ResolveSemiring<SRIn, VT>;
  require(a.ncols() == b.nrows(), "spgemm_summa_2d_dist: inner dimension mismatch");
  const int P = comm.size();
  const GridShape grid = require_grid_shape(P, grid_rows, grid_cols, "spgemm_summa_2d_dist");
  const int gi = comm.rank() / grid.cols;
  const int gj = comm.rank() % grid.cols;

  auto rb = even_split(a.nrows(), grid.rows);    // row blocks of A and C
  auto kb = even_split(a.ncols(), grid.stages);  // fine inner-dimension blocks
  auto cb = even_split(b.ncols(), grid.cols);    // column blocks of B and C

  // Coarse per-rank inner tilings: grid column j owns A's fine blocks
  // [j·s/q_c, (j+1)·s/q_c), grid row i owns B's [i·s/q_r, (i+1)·s/q_r) —
  // contiguous runs, so each operand routes through the generic 1D→grid
  // primitive with its own coarse bounds (they differ on rectangular
  // grids).
  const int spc = grid.stages / grid.cols;
  const int spr = grid.stages / grid.rows;
  std::vector<index_t> ka(static_cast<std::size_t>(grid.cols) + 1);
  std::vector<index_t> kbt(static_cast<std::size_t>(grid.rows) + 1);
  for (int j = 0; j <= grid.cols; ++j)
    ka[static_cast<std::size_t>(j)] = kb[static_cast<std::size_t>(j * spc)];
  for (int i = 0; i <= grid.rows; ++i)
    kbt[static_cast<std::size_t>(i)] = kb[static_cast<std::size_t>(i * spr)];

  auto rank_of = [qc = grid.cols](int bi, int bj) { return bi * qc + bj; };
  auto my_a = redistribute_1d_to_2d_grid(comm, a, std::span<const index_t>(rb),
                                         std::span<const index_t>(ka), rank_of, gi, gj,
                                         plan != nullptr ? &plan->route_a : nullptr, overlap);
  auto my_b = redistribute_1d_to_2d_grid(comm, b, std::span<const index_t>(kbt),
                                         std::span<const index_t>(cb), rank_of, gi, gj,
                                         plan != nullptr ? &plan->route_b : nullptr, overlap);

  CooMatrix<VT> acc(a.nrows(), b.ncols());
  summadetail::summa_stages<SR>(comm, grid, my_a, my_b, std::span<const index_t>(rb),
                                std::span<const index_t>(kb), std::span<const index_t>(cb),
                                kernel, threads, acc,
                                plan != nullptr ? &plan->sched : nullptr, overlap, lookahead);
  auto c = redistribute_coo_to_1d<SR>(comm, acc, a.nrows(), b.ncols(), b.bounds(),
                                      plan != nullptr ? &plan->out : nullptr, overlap);
  // The merged partial-C accumulator (charged stage by stage above) dies
  // here: the scatter has folded it into C's canonical distribution.
  comm.report().mem_release(acc.triples().size(),
                            acc.triples().size() * sizeof(Triple<VT>));
  return c;
}

/// Replays a captured 2D-SUMMA plan for a structurally identical operand
/// pair: value-only routes in, value-only stage broadcasts + numeric local
/// passes, value-only scatter out. Bit-identical to the fresh call; records
/// zero Phase::Plan time and moves no structural metadata. Collective.
template <typename SR, typename VT>
DistMatrix1D<VT> spgemm_summa_2d_replay(Comm& comm, Summa2dPlan<VT, SR>& plan,
                                        const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                                        bool overlap = false, int lookahead = 0) {
  const auto& my_a = replay_1d_to_2d_grid(comm, plan.route_a, a, overlap);
  const auto& my_b = replay_1d_to_2d_grid(comm, plan.route_b, b, overlap);
  summadetail::summa_stages_replay<SR>(comm, my_a, my_b, plan.sched, plan.acc_vals, overlap,
                                       lookahead);
  return replay_coo_to_1d<SR>(comm, plan.out, std::span<const VT>(plan.acc_vals), overlap);
}

/// Replicated-operand wrapper (the original baseline API): distributes the
/// globals, runs the 1D-in/1D-out SUMMA, and returns this rank's C column
/// slice as COO in global coordinates — gather_coo() reassembles.
template <typename VT>
CooMatrix<VT> spgemm_summa_2d(Comm& comm, const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                              LocalKernel kernel = LocalKernel::Hybrid, int threads = 1) {
  require(a.ncols() == b.nrows(), "spgemm_summa_2d: inner dimension mismatch");
  auto da = DistMatrix1D<VT>::from_global(comm, a);
  auto db = DistMatrix1D<VT>::from_global(comm, b);
  auto dc = spgemm_summa_2d_dist(comm, da, db, kernel, threads);
  auto ph = comm.phase(Phase::Other);
  return dc.local_to_coo_global();
}

}  // namespace sa1d
