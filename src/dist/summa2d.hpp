// 2D sparse SUMMA (Buluç & Gilbert; the CombBLAS algorithm the paper
// benchmarks against): ranks form a √P×√P grid, C(i,j) is accumulated over
// √P stages of row-broadcast A(i,k) and column-broadcast B(k,j) block
// multiplies. Operands are replicated on entry (block distribution is
// internal); the result is returned as each rank's local partial COO with
// global coordinates — gather_coo() reassembles and merges.
#pragma once

#include <cmath>
#include <vector>

#include "dist/dist_matrix.hpp"
#include "kernels/spgemm_local.hpp"
#include "runtime/machine.hpp"

namespace sa1d {

/// Reassembles a replicated CSC matrix from per-rank partial COO blocks
/// (global coordinates); duplicates across ranks are merged by addition.
/// Collective.
template <typename VT>
CscMatrix<VT> gather_coo(Comm& comm, const CooMatrix<VT>& part) {
  auto chunks = comm.allgatherv(std::span<const Triple<VT>>(part.triples()));
  CooMatrix<VT> all(part.nrows(), part.ncols());
  for (auto& chunk : chunks)
    for (auto& t : chunk) all.push(t.row, t.col, t.val);
  all.canonicalize();
  return CscMatrix<VT>::from_coo(all);
}

namespace summadetail {

/// Triples of m's block [rlo,rhi)×[clo,chi) with block-local coordinates,
/// column-major sorted.
template <typename VT>
std::vector<Triple<VT>> block_triples(const CscMatrix<VT>& m, index_t rlo, index_t rhi,
                                      index_t clo, index_t chi) {
  std::vector<Triple<VT>> out;
  for (index_t j = clo; j < chi; ++j) {
    auto rows = m.col_rows(j);
    auto vals = m.col_vals(j);
    for (std::size_t p = 0; p < rows.size(); ++p)
      if (rows[p] >= rlo && rows[p] < rhi) out.push_back({rows[p] - rlo, j - clo, vals[p]});
  }
  return out;
}

template <typename VT>
CscMatrix<VT> csc_from_block(index_t nrows, index_t ncols, std::vector<Triple<VT>> triples) {
  return CscMatrix<VT>::from_coo(CooMatrix<VT>(nrows, ncols, std::move(triples)));
}

}  // namespace summadetail

/// 2D sparse SUMMA. Collective; requires a perfect-square process count.
/// Returns this rank's C block as COO in global coordinates.
template <typename VT>
CooMatrix<VT> spgemm_summa_2d(Comm& comm, const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                              LocalKernel kernel = LocalKernel::Hybrid, int threads = 1) {
  require(a.ncols() == b.nrows(), "spgemm_summa_2d: inner dimension mismatch");
  const int P = comm.size();
  const int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(P))));
  require(q * q == P, "spgemm_summa_2d: process count must be a perfect square");
  const int gi = comm.rank() / q;
  const int gj = comm.rank() % q;

  auto rb = even_split(a.nrows(), q);  // row blocks of A and C
  auto kb = even_split(a.ncols(), q);  // inner-dimension blocks
  auto cb = even_split(b.ncols(), q);  // column blocks of B and C

  Comm row_comm = comm.split(gi, gj);  // sub-rank within a row == grid column
  Comm col_comm = comm.split(gj, gi);  // sub-rank within a column == grid row

  const index_t rlo = rb[static_cast<std::size_t>(gi)], rhi = rb[static_cast<std::size_t>(gi) + 1];
  const index_t clo = cb[static_cast<std::size_t>(gj)], chi = cb[static_cast<std::size_t>(gj) + 1];

  CooMatrix<VT> acc(a.nrows(), b.ncols());
  for (int k = 0; k < q; ++k) {
    const index_t klo = kb[static_cast<std::size_t>(k)], khi = kb[static_cast<std::size_t>(k) + 1];

    std::vector<Triple<VT>> abuf, bbuf;
    {
      auto ph = comm.phase(Phase::Other);
      if (gj == k) abuf = summadetail::block_triples(a, rlo, rhi, klo, khi);
      if (gi == k) bbuf = summadetail::block_triples(b, klo, khi, clo, chi);
    }
    row_comm.bcast(abuf, k);  // A(gi, k) along grid row gi
    col_comm.bcast(bbuf, k);  // B(k, gj) along grid column gj

    CscMatrix<VT> c_blk;
    {
      auto ph = comm.phase(Phase::Comp);
      auto a_blk = summadetail::csc_from_block(rhi - rlo, khi - klo, std::move(abuf));
      auto b_blk = summadetail::csc_from_block(khi - klo, chi - clo, std::move(bbuf));
      c_blk = spgemm_local<PlusTimes<VT>, VT>(a_blk, b_blk, kernel, threads);
    }
    {
      auto ph = comm.phase(Phase::Other);
      for (index_t j = 0; j < c_blk.ncols(); ++j) {
        auto rows = c_blk.col_rows(j);
        auto vals = c_blk.col_vals(j);
        for (std::size_t p = 0; p < rows.size(); ++p)
          acc.push(rows[p] + rlo, j + clo, vals[p]);
      }
    }
  }
  {
    auto ph = comm.phase(Phase::Other);
    acc.canonicalize();  // merge contributions across the q stages
  }
  return acc;
}

}  // namespace sa1d
