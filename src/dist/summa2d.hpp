// 2D sparse SUMMA (Buluç & Gilbert; the CombBLAS algorithm the paper
// benchmarks against): ranks form a √P×√P grid, C(i,j) is accumulated over
// √P stages of row-broadcast A(i,k) and column-broadcast B(k,j) block
// multiplies.
//
// The primary entry point is 1D-in/1D-out: operands arrive in the library's
// canonical column distribution, are scattered onto the grid by one
// all-to-all (dist/redistribute.hpp), and the per-stage partials are
// scattered back into B's column distribution with a semiring-⊕ merge — no
// global gather anywhere, and every byte moves through Phase-scoped,
// instrumented collectives so the RankReport breakdown is comparable with
// the other spgemm_dist backends. The replicated-operand wrapper of the
// original baseline API remains for one-shot comparisons.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "dist/dist_matrix.hpp"
#include "dist/redistribute.hpp"
#include "kernels/spgemm_local.hpp"
#include "runtime/machine.hpp"

namespace sa1d {

/// Reassembles a replicated CSC matrix from per-rank partial COO blocks
/// (global coordinates); duplicates across ranks are merged by addition.
/// Collective.
template <typename VT>
CscMatrix<VT> gather_coo(Comm& comm, const CooMatrix<VT>& part) {
  auto chunks = comm.allgatherv(std::span<const Triple<VT>>(part.triples()));
  CooMatrix<VT> all(part.nrows(), part.ncols());
  for (auto& chunk : chunks)
    for (auto& t : chunk) all.push(t.row, t.col, t.val);
  all.canonicalize();
  return CscMatrix<VT>::from_coo(all);
}

namespace summadetail {

/// Cached SUMMA stage schedule of one rank: per stage, the broadcast
/// blocks' structure (shells whose values are overwritten per replay), the
/// local engine's symbolic result with warm workspaces, and the ⊕-fold
/// program from the stage's partial-C values into the merged per-rank
/// accumulator. Captured by summa_stages while the fresh loop runs;
/// summa_stages_replay moves only values (row/column broadcasts of the val
/// arrays) and runs numeric-only local passes.
template <typename VT, typename SR>
struct SummaSched {
  struct Stage {
    CscMatrix<VT> a_blk, b_blk;  ///< received block structure (cached shells)
    LocalSymbolic sym;           ///< symbolic result of a_blk · b_blk
  };
  std::vector<Stage> stages;
  /// Flat ⊕-fold program: push i (stage order, column-major within each
  /// stage's c_blk) lands in merged slot acc_dst[i].
  std::vector<index_t> acc_dst;
  std::vector<std::uint8_t> acc_first;
  std::size_t acc_nnz = 0;  ///< merged partial-C count on this rank
  std::vector<detail::Workspace<SR>> ws;
  std::uint64_t bcast_recv_bytes = 0;  ///< value-only replay broadcast volume (this rank)
};

/// All triples of a CSC block (block-local coordinates, column-major).
template <typename VT>
std::vector<Triple<VT>> csc_triples(const CscMatrix<VT>& m) {
  std::vector<Triple<VT>> out;
  out.reserve(static_cast<std::size_t>(m.nnz()));
  for (index_t j = 0; j < m.ncols(); ++j) {
    auto rows = m.col_rows(j);
    auto vals = m.col_vals(j);
    for (std::size_t p = 0; p < rows.size(); ++p) out.push_back({rows[p], j, vals[p]});
  }
  return out;
}

template <typename VT>
CscMatrix<VT> csc_from_block(index_t nrows, index_t ncols, std::vector<Triple<VT>> triples) {
  return CscMatrix<VT>::from_coo(CooMatrix<VT>(nrows, ncols, std::move(triples)));
}

/// The SUMMA stage loop over one q×q grid: accumulates this rank's partial
/// C(gi, gj) into `acc` in *global* coordinates (rb/cb are global bounds).
/// The grid owns A blocks split by (rb, kb) and B blocks by (kb, cb);
/// `comm` is the grid communicator (a layer of the 3D backend, or
/// everything for 2D). Stage partials of the same entry are merged with ⊕
/// before `acc` is handed back, so the caller ships post-merge volume. The
/// merge is deterministic (ties fold in stage order), so a schedule
/// captured via `sched` replays bit-exactly.
template <typename SR, typename VT>
void summa_stages(Comm& comm, const CscMatrix<VT>& my_a, const CscMatrix<VT>& my_b,
                  std::span<const index_t> rb, std::span<const index_t> kb,
                  std::span<const index_t> cb, LocalKernel kernel, int threads,
                  CooMatrix<VT>& acc, SummaSched<VT, SR>* sched = nullptr) {
  const int q = summa_grid_side(comm.size());
  const int gi = comm.rank() / q;
  const int gj = comm.rank() % q;
  Comm row_comm = comm.split(gi, gj);  // sub-rank within a row == grid column
  Comm col_comm = comm.split(gj, gi);  // sub-rank within a column == grid row

  const index_t rlo = rb[static_cast<std::size_t>(gi)];
  const index_t clo = cb[static_cast<std::size_t>(gj)];

  for (int k = 0; k < q; ++k) {
    const index_t klo = kb[static_cast<std::size_t>(k)], khi = kb[static_cast<std::size_t>(k) + 1];

    std::vector<Triple<VT>> abuf, bbuf;
    {
      auto ph = comm.phase(Phase::Other);
      if (gj == k) abuf = csc_triples(my_a);
      if (gi == k) bbuf = csc_triples(my_b);
    }
    row_comm.bcast(abuf, k);  // A(gi, k) along grid row gi
    col_comm.bcast(bbuf, k);  // B(k, gj) along grid column gj

    // The broadcast triples arrive column-major (csc_triples of a canonical
    // CSC), so the rebuilt blocks' val order equals the root's val array —
    // a replay can broadcast the bare values and write them straight in.
    CscMatrix<VT> a_blk, b_blk, c_blk;
    {
      auto ph = comm.phase(sched != nullptr ? Phase::Plan : Phase::Comp);
      a_blk = csc_from_block(rb[static_cast<std::size_t>(gi) + 1] -
                                 rb[static_cast<std::size_t>(gi)],
                             khi - klo, std::move(abuf));
      b_blk = csc_from_block(khi - klo,
                             cb[static_cast<std::size_t>(gj) + 1] -
                                 cb[static_cast<std::size_t>(gj)],
                             std::move(bbuf));
    }
    if (sched != nullptr) {
      // Capturing build: run the split engine so the symbolic result (and
      // the warm workspaces) are kept for numeric-only replays.
      typename SummaSched<VT, SR>::Stage st;
      {
        auto ph = comm.phase(Phase::Plan);
        st.sym = spgemm_local_symbolic<SR, VT>(a_blk, b_blk, kernel, threads, &sched->ws);
      }
      {
        auto ph = comm.phase(Phase::Comp);
        c_blk = spgemm_local_numeric<SR, VT>(a_blk, b_blk, st.sym, &sched->ws);
      }
      if (gj != k) sched->bcast_recv_bytes += a_blk.vals().size() * sizeof(VT);
      if (gi != k) sched->bcast_recv_bytes += b_blk.vals().size() * sizeof(VT);
      st.a_blk = std::move(a_blk);
      st.b_blk = std::move(b_blk);
      sched->stages.push_back(std::move(st));
    } else {
      auto ph = comm.phase(Phase::Comp);
      c_blk = spgemm_local<SR, VT>(a_blk, b_blk, kernel, threads);
    }
    {
      auto ph = comm.phase(Phase::Other);
      for (index_t j = 0; j < c_blk.ncols(); ++j) {
        auto rows = c_blk.col_rows(j);
        auto vals = c_blk.col_vals(j);
        for (std::size_t p = 0; p < rows.size(); ++p)
          acc.push(rows[p] + rlo, j + clo, vals[p]);
      }
    }
  }
  {
    // Merge the up-to-q per-stage partials of each C entry locally before
    // the scatter: the all-to-all then carries post-merge volume (what the
    // cost model prices), not q× duplicates.
    auto ph = comm.phase(sched != nullptr ? Phase::Plan : Phase::Other);
    merge_triples_stable(acc.triples(), [](VT x, VT y) { return SR::add(x, y); },
                         sched != nullptr ? &sched->acc_dst : nullptr,
                         sched != nullptr ? &sched->acc_first : nullptr);
    if (sched != nullptr) sched->acc_nnz = acc.triples().size();
  }
}

/// Replays a captured stage schedule: per stage, value-only row/column
/// broadcasts into the cached block shells, the numeric-only local pass,
/// and the ⊕-fold into `acc_vals` (resized to the merged count; slot order
/// matches the fresh call's merged accumulator). Collective over the same
/// grid communicator the schedule was captured on.
template <typename SR, typename VT>
void summa_stages_replay(Comm& comm, const CscMatrix<VT>& my_a, const CscMatrix<VT>& my_b,
                         SummaSched<VT, SR>& sched, std::vector<VT>& acc_vals) {
  const int q = summa_grid_side(comm.size());
  const int gi = comm.rank() / q;
  const int gj = comm.rank() % q;
  Comm row_comm = comm.split(gi, gj);
  Comm col_comm = comm.split(gj, gi);

  acc_vals.assign(sched.acc_nnz, VT{});
  std::size_t flat = 0;
  for (int k = 0; k < q; ++k) {
    auto& st = sched.stages[static_cast<std::size_t>(k)];
    std::vector<VT> abuf, bbuf;
    {
      auto ph = comm.phase(Phase::Other);
      if (gj == k) abuf = my_a.vals();
      if (gi == k) bbuf = my_b.vals();
    }
    row_comm.bcast(abuf, k);
    col_comm.bcast(bbuf, k);
    CscMatrix<VT> c_blk;
    {
      auto ph = comm.phase(Phase::Other);
      st.a_blk.mutable_vals() = std::move(abuf);
      st.b_blk.mutable_vals() = std::move(bbuf);
    }
    {
      auto ph = comm.phase(Phase::Comp);
      c_blk = spgemm_local_numeric<SR, VT>(st.a_blk, st.b_blk, st.sym, &sched.ws);
    }
    {
      auto ph = comm.phase(Phase::Other);
      for (const auto& v : c_blk.vals()) {
        const auto slot = static_cast<std::size_t>(sched.acc_dst[flat]);
        acc_vals[slot] = sched.acc_first[flat] != 0 ? v : SR::add(acc_vals[slot], v);
        ++flat;
      }
    }
  }
}

}  // namespace summadetail

/// Cached structural program of one full 2D-SUMMA multiply on this rank:
/// both inbound grid routes, the stage schedule, and the outbound
/// scatter/merge program. Captured by spgemm_summa_2d_dist, replayed
/// (values only) by spgemm_summa_2d_replay.
template <typename VT, typename SR>
struct Summa2dPlan {
  GridRoute<VT> route_a, route_b;
  summadetail::SummaSched<VT, SR> sched;
  ScatterRoute<VT> out;
  std::vector<VT> acc_vals;  ///< replay scratch: merged partial-C values

  /// Exact per-rank collective bytes one value-only replay receives.
  [[nodiscard]] std::uint64_t replay_recv_bytes(int me) const {
    return route_a.replay_recv_bytes(me) + route_b.replay_recv_bytes(me) +
           sched.bcast_recv_bytes + out.replay_recv_bytes(me);
  }
};

/// 2D sparse SUMMA over 1D-distributed operands. Collective; requires a
/// perfect-square process count (require_summa_grid explains the options
/// otherwise). C is returned in B's column distribution; partial entries
/// across the √P stages are merged with the semiring's ⊕. `plan` (optional)
/// captures the full value-only replay program while this fresh call runs.
template <typename SRIn = void, typename VT>
DistMatrix1D<VT> spgemm_summa_2d_dist(
    Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
    LocalKernel kernel = LocalKernel::Hybrid, int threads = 1,
    Summa2dPlan<VT, ResolveSemiring<SRIn, VT>>* plan = nullptr) {
  using SR = ResolveSemiring<SRIn, VT>;
  require(a.ncols() == b.nrows(), "spgemm_summa_2d_dist: inner dimension mismatch");
  const int P = comm.size();
  require_summa_grid(P, "spgemm_summa_2d_dist");
  const int q = summa_grid_side(P);
  const int gi = comm.rank() / q;
  const int gj = comm.rank() % q;

  auto rb = even_split(a.nrows(), q);  // row blocks of A and C
  auto kb = even_split(a.ncols(), q);  // inner-dimension blocks
  auto cb = even_split(b.ncols(), q);  // column blocks of B and C

  auto rank_of = [q](int bi, int bj) { return bi * q + bj; };
  auto my_a = redistribute_1d_to_2d_grid(comm, a, std::span<const index_t>(rb),
                                         std::span<const index_t>(kb), rank_of, gi, gj,
                                         plan != nullptr ? &plan->route_a : nullptr);
  auto my_b = redistribute_1d_to_2d_grid(comm, b, std::span<const index_t>(kb),
                                         std::span<const index_t>(cb), rank_of, gi, gj,
                                         plan != nullptr ? &plan->route_b : nullptr);

  CooMatrix<VT> acc(a.nrows(), b.ncols());
  summadetail::summa_stages<SR>(comm, my_a, my_b, std::span<const index_t>(rb),
                                std::span<const index_t>(kb), std::span<const index_t>(cb),
                                kernel, threads, acc,
                                plan != nullptr ? &plan->sched : nullptr);
  return redistribute_coo_to_1d<SR>(comm, acc, a.nrows(), b.ncols(), b.bounds(),
                                    plan != nullptr ? &plan->out : nullptr);
}

/// Replays a captured 2D-SUMMA plan for a structurally identical operand
/// pair: value-only routes in, value-only stage broadcasts + numeric local
/// passes, value-only scatter out. Bit-identical to the fresh call; records
/// zero Phase::Plan time and moves no structural metadata. Collective.
template <typename SR, typename VT>
DistMatrix1D<VT> spgemm_summa_2d_replay(Comm& comm, Summa2dPlan<VT, SR>& plan,
                                        const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b) {
  const auto& my_a = replay_1d_to_2d_grid(comm, plan.route_a, a);
  const auto& my_b = replay_1d_to_2d_grid(comm, plan.route_b, b);
  summadetail::summa_stages_replay<SR>(comm, my_a, my_b, plan.sched, plan.acc_vals);
  return replay_coo_to_1d<SR>(comm, plan.out, std::span<const VT>(plan.acc_vals));
}

/// Replicated-operand wrapper (the original baseline API): distributes the
/// globals, runs the 1D-in/1D-out SUMMA, and returns this rank's C column
/// slice as COO in global coordinates — gather_coo() reassembles.
template <typename VT>
CooMatrix<VT> spgemm_summa_2d(Comm& comm, const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                              LocalKernel kernel = LocalKernel::Hybrid, int threads = 1) {
  require(a.ncols() == b.nrows(), "spgemm_summa_2d: inner dimension mismatch");
  require_summa_grid(comm.size(), "spgemm_summa_2d");
  auto da = DistMatrix1D<VT>::from_global(comm, a);
  auto db = DistMatrix1D<VT>::from_global(comm, b);
  auto dc = spgemm_summa_2d_dist(comm, da, db, kernel, threads);
  auto ph = comm.phase(Phase::Other);
  return dc.local_to_coo_global();
}

}  // namespace sa1d
