// Redistribution primitives between the 1D column distribution (the
// library's canonical layout) and the 2D/3D process-grid block layouts the
// SUMMA-family backends compute on. Every primitive is a single
// personalized all-to-all — O(nnz/P) per rank, no rank-0 gather — and is
// Phase-scoped so the cost shows up in the comparable RankReport breakdown.
#pragma once

#include <string>
#include <vector>

#include "dist/dist_matrix.hpp"
#include "runtime/machine.hpp"
#include "sparse/coo.hpp"

namespace sa1d {

/// Validates that P ranks can form the √P×√P SUMMA grid; the error names
/// the nearest usable rank counts and the any-P alternatives.
inline void require_summa_grid(int P, const char* who) {
  if (summa_grid_side(P) > 0) return;
  int lo = 1;
  while ((lo + 1) * (lo + 1) <= P) ++lo;
  std::string msg = std::string(who) + ": P=" + std::to_string(P) +
                    " ranks cannot form a square process grid; run with a perfect-square rank"
                    " count (nearest: " +
                    std::to_string(lo * lo) + " or " + std::to_string((lo + 1) * (lo + 1)) +
                    "), or use Algo::SparseAware1D / Algo::Ring1D / Algo::Auto, which accept"
                    " any P";
  require(false, msg);
}

/// Validates that P = layers·q² with integral q; the error lists every
/// valid layer count for this P (or says none exists).
inline void require_split3d_layers(int P, int layers, const char* who) {
  if (layers >= 1 && layers <= P && P % layers == 0 && summa_grid_side(P / layers) > 0) return;
  // P = P·1² always holds, so at least one (possibly degenerate) layer
  // count exists for every P; list them all.
  auto valid = valid_layer_counts(P);
  std::string msg = std::string(who) + ": layers=" + std::to_string(layers) + " with P=" +
                    std::to_string(P) + " ranks cannot form layers x q x q grids (P must equal"
                    " layers*q*q); valid layer counts for P=" +
                    std::to_string(P) + " are {";
  for (std::size_t i = 0; i < valid.size(); ++i)
    msg += (i != 0U ? ", " : "") + std::to_string(valid[i]);
  msg += "}; Algo::SparseAware1D / Algo::Ring1D / Algo::Auto accept any P";
  require(false, msg);
}

/// Redistributes a 1D column-distributed matrix into the blocks of a
/// process grid: the rank `rank_of(bi, bj)` receives block
/// [row_bounds[bi], row_bounds[bi+1]) × [col_bounds[bj], col_bounds[bj+1])
/// in block-local coordinates; this rank's own block (`my_bi`, `my_bj`) is
/// returned as CSC. The bounds arrays may describe any rectangular tiling
/// (the 3D backend passes layer-concatenated inner bounds), so one
/// primitive serves both grid shapes. Collective.
template <typename VT, typename RankOf>
CscMatrix<VT> redistribute_1d_to_2d_grid(Comm& comm, const DistMatrix1D<VT>& m,
                                         std::span<const index_t> row_bounds,
                                         std::span<const index_t> col_bounds, RankOf rank_of,
                                         int my_bi, int my_bj) {
  const int P = comm.size();
  std::vector<std::vector<Triple<VT>>> send(static_cast<std::size_t>(P));
  {
    auto ph = comm.phase(Phase::Other);
    const auto& ml = m.local();
    for (index_t k = 0; k < ml.nzc(); ++k) {
      const index_t gcol = m.global_col(k);
      const int bj = find_owner(col_bounds, gcol);
      const index_t clo = col_bounds[static_cast<std::size_t>(bj)];
      auto rows = ml.col_rows_at(k);
      auto vals = ml.col_vals_at(k);
      for (std::size_t p = 0; p < rows.size(); ++p) {
        const int bi = find_owner(row_bounds, rows[p]);
        send[static_cast<std::size_t>(rank_of(bi, bj))].push_back(
            {rows[p] - row_bounds[static_cast<std::size_t>(bi)], gcol - clo, vals[p]});
      }
    }
  }
  auto recv = comm.alltoallv(send);
  auto ph = comm.phase(Phase::Other);
  const index_t nr = row_bounds[static_cast<std::size_t>(my_bi) + 1] -
                     row_bounds[static_cast<std::size_t>(my_bi)];
  const index_t nc = col_bounds[static_cast<std::size_t>(my_bj) + 1] -
                     col_bounds[static_cast<std::size_t>(my_bj)];
  CooMatrix<VT> blk(nr, nc);
  for (auto& chunk : recv)
    for (auto& t : chunk) blk.push(t.row, t.col, t.val);
  // The source was canonical and each nonzero has one target, so this only
  // sorts — no duplicate can arise, and the merge is semiring-neutral.
  blk.canonicalize();
  return CscMatrix<VT>::from_coo(blk);
}

/// Scatters per-rank partial products (COO, global coordinates) into the 1D
/// column distribution given by `out_bounds`, merging duplicates — partials
/// of the same entry from different SUMMA stages or 3D layers — with the
/// semiring's ⊕. One all-to-all by column owner; the result is born
/// distributed (no global gather). Collective.
template <typename SR, typename VT>
DistMatrix1D<VT> redistribute_coo_to_1d(Comm& comm, const CooMatrix<VT>& part, index_t nrows,
                                        index_t ncols, std::vector<index_t> out_bounds) {
  const int P = comm.size();
  require(out_bounds.size() == static_cast<std::size_t>(P) + 1,
          "redistribute_coo_to_1d: out_bounds size must be P+1");
  std::vector<std::vector<Triple<VT>>> send(static_cast<std::size_t>(P));
  {
    auto ph = comm.phase(Phase::Other);
    for (const auto& t : part.triples())
      send[static_cast<std::size_t>(find_owner(std::span<const index_t>(out_bounds), t.col))]
          .push_back(t);
  }
  auto recv = comm.alltoallv(send);
  auto ph = comm.phase(Phase::Other);
  const index_t lo = out_bounds[static_cast<std::size_t>(comm.rank())];
  const index_t hi = out_bounds[static_cast<std::size_t>(comm.rank()) + 1];
  CooMatrix<VT> local(nrows, hi - lo);
  for (auto& chunk : recv)
    for (auto& t : chunk) local.push(t.row, t.col - lo, t.val);
  local.canonicalize_with([](typename SR::value_type x, typename SR::value_type y) {
    return SR::add(x, y);
  });
  return DistMatrix1D<VT>(nrows, ncols, std::move(out_bounds), comm.rank(),
                          DcscMatrix<VT>::from_coo(local));
}

}  // namespace sa1d
