// Redistribution primitives between the 1D column distribution (the
// library's canonical layout) and the 2D/3D process-grid block layouts the
// SUMMA-family backends compute on. Every primitive is a single
// personalized all-to-all — O(nnz/P) per rank, no rank-0 gather — and is
// Phase-scoped so the cost shows up in the comparable RankReport breakdown.
//
// Both primitives are *routes*: which nonzero goes to which rank, and where
// it lands in the receiver's block, depends only on the operands' sparsity
// structure. Passing a GridRoute/ScatterRoute capture pointer records the
// value-gather maps and the receiver-side placement/merge program while the
// fresh call runs; replay_* then re-executes the same exchange moving only
// values (sizeof(VT) per element instead of a full Triple), bit-identical
// to the fresh result. DistSpgemmPlan (dist/dist_plan.hpp) builds on this.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "dist/dist_matrix.hpp"
#include "runtime/machine.hpp"
#include "sparse/coo.hpp"

namespace sa1d {

// merge_triples_stable and its streaming round-by-round twin
// (StreamingTripleMerge) live in sparse/coo.hpp next to the triple type;
// every consumer here reaches them through the include above.

/// Resolves and validates the q_r × q_c process grid for P ranks: auto
/// shape when both overrides are 0 (nearest-square factorization — always
/// exists, so every P ≥ 1 is feasible), a pinned shape otherwise. Throws
/// with an actionable message naming the divisors of P when a pinned shape
/// does not factor P.
inline GridShape require_grid_shape(int P, int grid_rows, int grid_cols, const char* who) {
  GridShape g = summa_grid_shape(P, grid_rows, grid_cols);
  if (g.rows >= 1 && g.cols >= 1 && g.rows * g.cols == P) return g;
  std::string msg = std::string(who) + ": grid_rows=" + std::to_string(grid_rows) +
                    " grid_cols=" + std::to_string(grid_cols) +
                    " cannot tile P=" + std::to_string(P) +
                    " ranks (grid_rows*grid_cols must equal P); usable side lengths are {";
  auto divs = valid_layer_counts(P);  // the divisors of P
  for (std::size_t i = 0; i < divs.size(); ++i)
    msg += (i != 0U ? ", " : "") + std::to_string(divs[i]);
  msg += "}, or leave both 0 for the nearest-square factorization";
  require(false, msg);
  return g;  // unreachable
}

/// Validates that the layer count divides P (each layer then runs on any
/// rectangular factorization of P/layers, so every divisor is usable); the
/// error lists the valid layer counts.
inline void require_split3d_layers(int P, int layers, const char* who) {
  if (layers >= 1 && layers <= P && P % layers == 0) return;
  auto valid = valid_layer_counts(P);
  std::string msg = std::string(who) + ": layers=" + std::to_string(layers) + " with P=" +
                    std::to_string(P) +
                    " ranks cannot form layers x (q_r x q_c) grids (layers must divide P);"
                    " valid layer counts for P=" +
                    std::to_string(P) + " are {";
  for (std::size_t i = 0; i < valid.size(); ++i)
    msg += (i != 0U ? ", " : "") + std::to_string(valid[i]);
  msg += "}";
  require(false, msg);
}

/// Cached 1D→grid route: the structural half of one
/// redistribute_1d_to_2d_grid call, captured while the fresh exchange runs.
/// replay_1d_to_2d_grid re-executes it moving only values.
template <typename VT>
struct GridRoute {
  /// Per destination rank: positions into the local slice's val array, in
  /// the exact order the fresh call packed triples.
  std::vector<std::vector<index_t>> send_src;
  /// recv_place[flat] = slot in `block`'s val array for the flat-th
  /// received value (ranks in order, chunk order within each rank).
  std::vector<index_t> recv_place;
  /// Per source rank: element count of its chunk (replay sizes + accounting).
  std::vector<index_t> recv_counts;
  /// This rank's cached block: structure final, values overwritten per replay.
  CscMatrix<VT> block;

  /// Exact per-rank collective bytes a value-only replay receives over the
  /// network (self-chunks are local copies, not messages).
  [[nodiscard]] std::uint64_t replay_recv_bytes(int me) const {
    std::uint64_t b = 0;
    for (std::size_t r = 0; r < recv_counts.size(); ++r)
      if (static_cast<int>(r) != me)
        b += static_cast<std::uint64_t>(recv_counts[r]) * sizeof(VT);
    return b;
  }

  /// Byte-accurate residency of the cached route on this rank (major arrays
  /// only) — what the plan cache's budget accounts against.
  [[nodiscard]] std::uint64_t bytes_resident() const {
    std::uint64_t b = 0;
    for (const auto& src : send_src) b += src.size() * sizeof(index_t);
    b += recv_place.size() * sizeof(index_t) + recv_counts.size() * sizeof(index_t);
    b += block.colptr().size() * sizeof(index_t) + block.rowids().size() * sizeof(index_t) +
         block.vals().size() * sizeof(VT);
    return b;
  }
};

/// Redistributes a 1D column-distributed matrix into the blocks of a
/// process grid: the rank `rank_of(bi, bj)` receives block
/// [row_bounds[bi], row_bounds[bi+1]) × [col_bounds[bj], col_bounds[bj+1])
/// in block-local coordinates; this rank's own block (`my_bi`, `my_bj`) is
/// returned as CSC. The bounds arrays may describe any rectangular tiling
/// (the 3D backend passes layer-concatenated inner bounds), so one
/// primitive serves both grid shapes. Collective. `route` (optional)
/// captures the value-only replay program; the returned block is identical
/// either way.
template <typename VT, typename RankOf>
CscMatrix<VT> redistribute_1d_to_2d_grid(Comm& comm, const DistMatrix1D<VT>& m,
                                         std::span<const index_t> row_bounds,
                                         std::span<const index_t> col_bounds, RankOf rank_of,
                                         int my_bi, int my_bj, GridRoute<VT>* route = nullptr,
                                         bool overlap = false) {
  const int P = comm.size();
  std::vector<std::vector<Triple<VT>>> send(static_cast<std::size_t>(P));
  {
    auto ph = comm.phase(Phase::Other);
    if (route != nullptr) route->send_src.assign(static_cast<std::size_t>(P), {});
    const auto& ml = m.local();
    for (index_t k = 0; k < ml.nzc(); ++k) {
      const index_t gcol = m.global_col(k);
      const int bj = find_owner(col_bounds, gcol);
      const index_t clo = col_bounds[static_cast<std::size_t>(bj)];
      const index_t base = ml.cp()[static_cast<std::size_t>(k)];
      auto rows = ml.col_rows_at(k);
      auto vals = ml.col_vals_at(k);
      for (std::size_t p = 0; p < rows.size(); ++p) {
        const int bi = find_owner(row_bounds, rows[p]);
        const auto dest = static_cast<std::size_t>(rank_of(bi, bj));
        send[dest].push_back(
            {rows[p] - row_bounds[static_cast<std::size_t>(bi)], gcol - clo, vals[p]});
        if (route != nullptr) route->send_src[dest].push_back(base + static_cast<index_t>(p));
      }
    }
  }
  const index_t nr = row_bounds[static_cast<std::size_t>(my_bi) + 1] -
                     row_bounds[static_cast<std::size_t>(my_bi)];
  const index_t nc = col_bounds[static_cast<std::size_t>(my_bj) + 1] -
                     col_bounds[static_cast<std::size_t>(my_bj)];
  CooMatrix<VT> blk(nr, nc);
  std::vector<std::vector<Triple<VT>>> recv(static_cast<std::size_t>(P));
  auto& rep = comm.report();
  constexpr std::uint64_t tb = sizeof(Triple<VT>);
  if (overlap) {
    // Pipelined receive: fold each source's chunk into the block as it
    // arrives, in ascending rank order — the same flat order the blocking
    // path consumes, so the block (and any captured route) is bit-identical;
    // later chunks' modeled transfer time hides behind earlier chunks' push
    // work.
    auto req = comm.ialltoallv(std::move(send));
    for (int p = 0; p < P; ++p) {
      recv[static_cast<std::size_t>(p)] = req.take_from(p);
      auto ph_push = comm.phase(Phase::Other);
      rep.mem_charge(recv[static_cast<std::size_t>(p)].size(),
                     recv[static_cast<std::size_t>(p)].size() * tb);  // block assembly
      for (auto& t : recv[static_cast<std::size_t>(p)]) blk.push(t.row, t.col, t.val);
    }
  } else {
    recv = comm.alltoallv(send);
    auto ph_push = comm.phase(Phase::Other);
    for (auto& chunk : recv) {
      rep.mem_charge(chunk.size(), chunk.size() * tb);  // block assembly
      for (auto& t : chunk) blk.push(t.row, t.col, t.val);
    }
  }
  auto ph = comm.phase(Phase::Other);
  // The source was canonical and each nonzero has one target, so this only
  // sorts — no duplicate can arise, and the merge is semiring-neutral.
  blk.canonicalize();
  auto out = CscMatrix<VT>::from_coo(blk);
  // The COO assembly buffer dies here; the CSC block it became is a
  // resident operand block, outside the transient-triples budget.
  rep.mem_release(blk.triples().size(), blk.triples().size() * tb);
  if (route != nullptr) {
    // Receiver placement: (col, row) keys are unique, so each flat incoming
    // position maps to exactly one slot of the canonical block — structural
    // work, accounted as Plan.
    auto ph_plan = comm.phase(Phase::Plan);
    route->recv_counts.assign(static_cast<std::size_t>(P), 0);
    std::vector<Triple<index_t>> keyed;  // (row, col, flat) in arrival order
    index_t flat = 0;
    for (std::size_t r = 0; r < recv.size(); ++r) {
      route->recv_counts[r] = static_cast<index_t>(recv[r].size());
      for (const auto& t : recv[r]) keyed.push_back({t.row, t.col, flat++});
    }
    std::sort(keyed.begin(), keyed.end(), [](const Triple<index_t>& a, const Triple<index_t>& b) {
      return a.col != b.col ? a.col < b.col : a.row < b.row;
    });
    route->recv_place.assign(keyed.size(), 0);
    for (std::size_t i = 0; i < keyed.size(); ++i)
      route->recv_place[static_cast<std::size_t>(keyed[i].val)] = static_cast<index_t>(i);
    route->block = out;
  }
  return out;
}

/// Replays a captured 1D→grid route for a structurally identical operand:
/// one value-only all-to-all, written in place into the cached block.
/// Collective; returns the refreshed block (owned by the route).
template <typename VT>
CscMatrix<VT>& replay_1d_to_2d_grid(Comm& comm, GridRoute<VT>& route,
                                    const DistMatrix1D<VT>& m, bool overlap = false) {
  const int P = comm.size();
  std::vector<std::vector<VT>> send(static_cast<std::size_t>(P));
  {
    auto ph = comm.phase(Phase::Other);
    // Replay guard: the cached positions index the local val array the
    // route was captured on (the capture packed every local triple, so the
    // per-destination sizes sum to that array's length). A diverged operand
    // must raise machine-wide, not read out of range while peers proceed.
    std::size_t expect = 0;
    for (const auto& src : route.send_src) expect += src.size();
    if (m.local().vals().size() != expect)
      comm.fail(FaultClass::PlanMismatch, "replay_1d_to_2d_grid",
                "replay_1d_to_2d_grid: local operand has " +
                    std::to_string(m.local().vals().size()) +
                    " values but the cached route packs " + std::to_string(expect) +
                    " (rank " + std::to_string(comm.global_rank(comm.rank())) + ")");
    const VT* vals = m.local().vals().data();
    for (int p = 0; p < P; ++p) {
      const auto& src = route.send_src[static_cast<std::size_t>(p)];
      auto& out = send[static_cast<std::size_t>(p)];
      out.reserve(src.size());
      for (auto i : src) out.push_back(vals[static_cast<std::size_t>(i)]);
    }
  }
  auto scatter_chunk = [&](int p, const std::vector<VT>& chunk, std::size_t& flat) {
    if (chunk.size() != static_cast<std::size_t>(route.recv_counts[static_cast<std::size_t>(p)]))
      comm.fail(FaultClass::PlanMismatch, "replay_1d_to_2d_grid",
                "replay_1d_to_2d_grid: received " + std::to_string(chunk.size()) +
                    " values from rank " + std::to_string(comm.global_rank(p)) +
                    " where the cached route expects " +
                    std::to_string(route.recv_counts[static_cast<std::size_t>(p)]));
    VT* bv = route.block.mutable_vals().data();
    for (const auto& v : chunk) bv[static_cast<std::size_t>(route.recv_place[flat++])] = v;
  };
  std::size_t flat = 0;
  if (overlap) {
    // Pipelined scatter: chunks land in the cached block as each source
    // publishes, in ascending rank order (slots are disjoint, so order only
    // matters for matching the captured flat indexing).
    auto req = comm.ialltoallv(std::move(send));
    auto ph = comm.phase(Phase::Other);
    for (int p = 0; p < P; ++p) scatter_chunk(p, req.take_from(p), flat);
  } else {
    auto recv = comm.alltoallv(send);
    auto ph = comm.phase(Phase::Other);
    for (int p = 0; p < P; ++p) scatter_chunk(p, recv[static_cast<std::size_t>(p)], flat);
  }
  return route.block;
}

/// Cached partial-C→1D scatter/merge program: the structural half of one
/// redistribute_coo_to_1d call (which partial goes to which rank, and which
/// slot of the merged 1D slice it ⊕-folds into), captured while the fresh
/// exchange runs. replay_coo_to_1d re-executes it moving only values.
template <typename VT>
struct ScatterRoute {
  std::vector<std::vector<index_t>> send_src;  ///< per dest: positions in the partial's val order
  std::vector<index_t> recv_counts;            ///< per source rank, element counts
  std::vector<index_t> recv_dst;               ///< flat recv idx -> merged local slot
  std::vector<std::uint8_t> recv_first;        ///< 1 = assign, 0 = ⊕-accumulate
  DcscMatrix<VT> c_shell;                      ///< merged local structure (values are scratch)
  index_t nrows = 0, ncols = 0;
  std::vector<index_t> out_bounds;

  [[nodiscard]] std::uint64_t replay_recv_bytes(int me) const {
    std::uint64_t b = 0;
    for (std::size_t r = 0; r < recv_counts.size(); ++r)
      if (static_cast<int>(r) != me)
        b += static_cast<std::uint64_t>(recv_counts[r]) * sizeof(VT);
    return b;
  }

  /// Byte-accurate residency of the cached scatter/merge program (major
  /// arrays only) — what the plan cache's budget accounts against.
  [[nodiscard]] std::uint64_t bytes_resident() const {
    std::uint64_t b = 0;
    for (const auto& src : send_src) b += src.size() * sizeof(index_t);
    b += recv_counts.size() * sizeof(index_t) + recv_dst.size() * sizeof(index_t) +
         recv_first.size() + out_bounds.size() * sizeof(index_t);
    b += c_shell.jc().size() * sizeof(index_t) + c_shell.cp().size() * sizeof(index_t) +
         c_shell.ir().size() * sizeof(index_t) + c_shell.vals().size() * sizeof(VT);
    return b;
  }
};

/// Scatters per-rank partial products (COO, global coordinates) into the 1D
/// column distribution given by `out_bounds`, merging duplicates — partials
/// of the same entry from different SUMMA stages or 3D layers — with the
/// semiring's ⊕ (deterministically: ties fold in arrival order, so a
/// captured program replays bit-exactly). One all-to-all by column owner;
/// the result is born distributed (no global gather). Collective. `route`
/// (optional) captures the value-only replay program.
template <typename SR, typename VT>
DistMatrix1D<VT> redistribute_coo_to_1d(Comm& comm, const CooMatrix<VT>& part, index_t nrows,
                                        index_t ncols, std::vector<index_t> out_bounds,
                                        ScatterRoute<VT>* route = nullptr,
                                        bool overlap = false) {
  const int P = comm.size();
  require(out_bounds.size() == static_cast<std::size_t>(P) + 1,
          "redistribute_coo_to_1d: out_bounds size must be P+1");
  std::vector<std::vector<Triple<VT>>> send(static_cast<std::size_t>(P));
  {
    auto ph = comm.phase(Phase::Other);
    if (route != nullptr) route->send_src.assign(static_cast<std::size_t>(P), {});
    index_t pos = 0;
    for (const auto& t : part.triples()) {
      const auto dest = static_cast<std::size_t>(
          find_owner(std::span<const index_t>(out_bounds), t.col));
      send[dest].push_back(t);
      if (route != nullptr) route->send_src[dest].push_back(pos);
      ++pos;
    }
  }
  const index_t lo = out_bounds[static_cast<std::size_t>(comm.rank())];
  const index_t hi = out_bounds[static_cast<std::size_t>(comm.rank()) + 1];
  CooMatrix<VT> local(nrows, hi - lo);
  std::vector<index_t> dst;
  std::vector<std::uint8_t> first;
  std::vector<index_t> counts(static_cast<std::size_t>(P), 0);
  StreamingTripleMerge<VT> smerge;
  auto& rep = comm.report();
  constexpr std::uint64_t tb = sizeof(Triple<VT>);
  auto add = [](typename SR::value_type x, typename SR::value_type y) { return SR::add(x, y); };
  // Streaming rounds-merge: the accumulator collapses to canonical form
  // after every source's chunk, so its footprint never exceeds (merged C
  // slice + one chunk + that round's merge scratch). The terminal merge
  // this replaces held every layer's/stage-owner's partials at once *plus*
  // an equally sized merge output buffer — ~2x the final partial-C slice on
  // the split-3D cross-layer fold. Bit-identical either way, in both comm
  // modes: the per-key fold is the left fold in flat (rank-major) arrival
  // order regardless of where the round boundaries fall.
  auto fold_chunk = [&](int p, std::vector<Triple<VT>>& chunk) {
    counts[static_cast<std::size_t>(p)] = static_cast<index_t>(chunk.size());
    auto ph_push = comm.phase(Phase::Other);
    rep.mem_charge(chunk.size(), chunk.size() * tb);  // accumulator growth
    for (auto& t : chunk) local.push(t.row, t.col - lo, t.val);
    const std::uint64_t before = local.triples().size();
    rep.mem_charge(before, before * tb);  // merge output buffer
    smerge.round(local.triples(), add, route != nullptr ? &dst : nullptr,
                 route != nullptr ? &first : nullptr);
    const std::uint64_t after = local.triples().size();
    rep.mem_release(2 * before - after, (2 * before - after) * tb);
  };
  if (overlap) {
    // Pipelined fold: each chunk is pushed and merged as it arrives, in
    // ascending rank order — the identical flat order the blocking path
    // consumes; later chunks' modeled transfer time hides behind earlier
    // chunks' fold work, and only one chunk is ever staged.
    auto req = comm.ialltoallv(std::move(send));
    for (int p = 0; p < P; ++p) {
      auto chunk = req.take_from(p);
      rep.mem_charge(chunk.size(), chunk.size() * tb);  // arrival staging
      fold_chunk(p, chunk);
      rep.mem_release(chunk.size(), chunk.size() * tb);
    }
  } else {
    auto recv = comm.alltoallv(send);
    std::uint64_t staged = 0;
    for (const auto& chunk : recv) staged += chunk.size();
    rep.mem_charge(staged, staged * tb);  // every chunk lands at once
    for (int p = 0; p < P; ++p) {
      auto& chunk = recv[static_cast<std::size_t>(p)];
      fold_chunk(p, chunk);
      rep.mem_release(chunk.size(), chunk.size() * tb);
      chunk.clear();
      chunk.shrink_to_fit();
    }
  }
  auto ph = comm.phase(Phase::Other);
  auto c_local = DcscMatrix<VT>::from_coo(local);
  rep.mem_release(local.triples().size(), local.triples().size() * tb);
  if (route != nullptr) {
    auto ph_plan = comm.phase(Phase::Plan);
    route->recv_counts = std::move(counts);
    route->recv_dst = std::move(dst);
    route->recv_first = std::move(first);
    route->c_shell = c_local;
    route->nrows = nrows;
    route->ncols = ncols;
    route->out_bounds = out_bounds;
  }
  return DistMatrix1D<VT>(nrows, ncols, std::move(out_bounds), comm.rank(),
                          std::move(c_local));
}

/// Replays a captured scatter/merge program over fresh partial values
/// (`part_vals` in the captured partial's val order): one value-only
/// all-to-all, ⊕-folded into a copy of the cached 1D structure. Collective.
template <typename SR, typename VT>
DistMatrix1D<VT> replay_coo_to_1d(Comm& comm, const ScatterRoute<VT>& route,
                                  std::span<const VT> part_vals, bool overlap = false) {
  const int P = comm.size();
  std::vector<std::vector<VT>> send(static_cast<std::size_t>(P));
  {
    auto ph = comm.phase(Phase::Other);
    for (int p = 0; p < P; ++p) {
      const auto& src = route.send_src[static_cast<std::size_t>(p)];
      auto& out = send[static_cast<std::size_t>(p)];
      out.reserve(src.size());
      for (auto i : src) out.push_back(part_vals[static_cast<std::size_t>(i)]);
    }
  }
  auto fold_chunk = [&](int p, const std::vector<VT>& chunk, VT* cv, std::size_t& flat) {
    if (chunk.size() != static_cast<std::size_t>(route.recv_counts[static_cast<std::size_t>(p)]))
      comm.fail(FaultClass::PlanMismatch, "replay_coo_to_1d",
                "replay_coo_to_1d: received " + std::to_string(chunk.size()) +
                    " partial values from rank " + std::to_string(comm.global_rank(p)) +
                    " where the cached scatter program expects " +
                    std::to_string(route.recv_counts[static_cast<std::size_t>(p)]));
    for (const auto& v : chunk) {
      const auto slot = static_cast<std::size_t>(route.recv_dst[flat]);
      cv[slot] = route.recv_first[flat] != 0 ? v : SR::add(cv[slot], v);
      ++flat;
    }
  };
  std::size_t flat = 0;
  if (overlap) {
    // Pipelined ⊕-fold: partial-C chunks fold into the shell as each
    // source publishes. Consuming in ascending rank order preserves the
    // captured program's flat (rank-major) fold order, so a non-commutative
    // or non-associative ⊕ still reproduces the fresh result bit for bit;
    // the structure-copy of the shell runs while chunks are in flight.
    auto req = comm.ialltoallv(std::move(send));
    auto ph = comm.phase(Phase::Other);
    DcscMatrix<VT> c_local = route.c_shell;
    VT* cv = c_local.mutable_vals().data();
    for (int p = 0; p < P; ++p) fold_chunk(p, req.take_from(p), cv, flat);
    return DistMatrix1D<VT>(route.nrows, route.ncols, route.out_bounds, comm.rank(),
                            std::move(c_local));
  }
  auto recv = comm.alltoallv(send);
  auto ph = comm.phase(Phase::Other);
  DcscMatrix<VT> c_local = route.c_shell;
  VT* cv = c_local.mutable_vals().data();
  for (int p = 0; p < P; ++p) fold_chunk(p, recv[static_cast<std::size_t>(p)], cv, flat);
  return DistMatrix1D<VT>(route.nrows, route.ncols, route.out_bounds, comm.rank(),
                          std::move(c_local));
}

}  // namespace sa1d
