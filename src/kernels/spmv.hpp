// Sparse matrix–vector products: the CSC gather/scatter kernel, the CSR
// row-dot kernel, and a sparsity-aware distributed SpMV on the same 1D
// layout as Algorithm 1 (y = A·x with x/A column-distributed; only the x
// entries matching A's nonzero columns ever move — the SpMV analogue of
// the paper's H∩D filter, and the integration story for PETSc-style users).
#pragma once

#include <vector>

#include "dist/dist_matrix.hpp"
#include "kernels/semiring.hpp"
#include "runtime/machine.hpp"
#include "sparse/csr.hpp"

namespace sa1d {

/// y = A·x (CSC: scatter columns scaled by x).
template <SemiringConcept SR = PlusTimes<double>, typename VT = double>
std::vector<VT> spmv(const CscMatrix<VT>& a, std::span<const VT> x) {
  require(static_cast<index_t>(x.size()) == a.ncols(), "spmv: x size mismatch");
  using T = typename SR::value_type;
  std::vector<T> y(static_cast<std::size_t>(a.nrows()), SR::zero());
  for (index_t j = 0; j < a.ncols(); ++j) {
    if (x[static_cast<std::size_t>(j)] == VT{}) continue;
    auto rows = a.col_rows(j);
    auto vals = a.col_vals(j);
    for (std::size_t p = 0; p < rows.size(); ++p) {
      auto& acc = y[static_cast<std::size_t>(rows[p])];
      acc = SR::add(acc, SR::multiply(static_cast<T>(vals[p]),
                                      static_cast<T>(x[static_cast<std::size_t>(j)])));
    }
  }
  std::vector<VT> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = static_cast<VT>(y[i]);
  return out;
}

/// y = A·x (CSR: per-row dot products).
template <SemiringConcept SR = PlusTimes<double>, typename VT = double>
std::vector<VT> spmv(const CsrMatrix<VT>& a, std::span<const VT> x) {
  require(static_cast<index_t>(x.size()) == a.ncols(), "spmv: x size mismatch");
  using T = typename SR::value_type;
  std::vector<VT> y(static_cast<std::size_t>(a.nrows()));
  for (index_t i = 0; i < a.nrows(); ++i) {
    auto cols = a.row_cols(i);
    auto vals = a.row_vals(i);
    T acc = SR::zero();
    for (std::size_t p = 0; p < cols.size(); ++p)
      acc = SR::add(acc, SR::multiply(static_cast<T>(vals[p]),
                                      static_cast<T>(x[static_cast<std::size_t>(cols[p])])));
    y[static_cast<std::size_t>(i)] = static_cast<VT>(acc);
  }
  return y;
}

/// Distributed y = A·x. A is 1D column-distributed; x is distributed with
/// A's column slices (each rank passes its local slice of x). The local
/// partial products y_i = A_i·x_i are combined by a dense all-reduce, so no
/// remote x entries are fetched at all — the 1D-layout property that makes
/// this algorithm composable with Algorithm 1's data placement.
/// Returns the full y on every rank.
template <typename VT>
std::vector<VT> spmv_1d(Comm& comm, const DistMatrix1D<VT>& a, std::span<const VT> x_local) {
  require(static_cast<index_t>(x_local.size()) == a.local_ncols(),
          "spmv_1d: x slice width mismatch");
  std::vector<VT> partial(static_cast<std::size_t>(a.nrows()), VT{});
  {
    auto ph = comm.phase(Phase::Comp);
    const auto& al = a.local();
    for (index_t k = 0; k < al.nzc(); ++k) {
      VT xv = x_local[static_cast<std::size_t>(al.col_id(k))];
      if (xv == VT{}) continue;
      auto rows = al.col_rows_at(k);
      auto vals = al.col_vals_at(k);
      for (std::size_t p = 0; p < rows.size(); ++p)
        partial[static_cast<std::size_t>(rows[p])] += vals[p] * xv;
    }
  }
  // Dense combine: sum the per-rank partials (tree allreduce analogue).
  auto all = comm.allgatherv(std::span<const VT>(partial));
  std::vector<VT> y(static_cast<std::size_t>(a.nrows()), VT{});
  {
    auto ph = comm.phase(Phase::Other);
    for (const auto& part : all)
      for (std::size_t i = 0; i < part.size(); ++i) y[i] += part[i];
  }
  return y;
}

}  // namespace sa1d
