// Shared-memory SpGEMM kernels, column-by-column formulation (paper Fig 1):
// column j of C is the ⊕-combination of A's columns selected by the nonzeros
// of B(:, j). Four accumulators are provided:
//   - SPA   : dense sparse-accumulator, the O(m) reference
//   - Heap  : k-way merge of the selected A columns (Azad et al. 2016)
//   - Hash  : open-addressing per-column table (Nagasaka et al. 2019)
//   - Hybrid: per-column choice of heap vs hash by estimated flops —
//             the configuration the paper uses for its local multiplies.
#pragma once

#include <algorithm>
#include <queue>
#include <thread>
#include <vector>

#include "kernels/semiring.hpp"
#include "sparse/csc.hpp"
#include "util/common.hpp"

namespace sa1d {

enum class LocalKernel { Spa, Heap, Hash, Hybrid };

inline const char* kernel_name(LocalKernel k) {
  switch (k) {
    case LocalKernel::Spa: return "spa";
    case LocalKernel::Heap: return "heap";
    case LocalKernel::Hash: return "hash";
    case LocalKernel::Hybrid: return "hybrid";
  }
  return "?";
}

/// Per-column multiply work: flops(j) = Σ_{k : B(k,j)≠0} nnz(A(:,k)).
/// This is the "sparse flops" quantity the paper balances with METIS weights.
template <typename VT>
std::vector<index_t> symbolic_flops(const CscMatrix<VT>& a, const CscMatrix<VT>& b) {
  require(a.ncols() == b.nrows(), "symbolic_flops: inner dimension mismatch");
  std::vector<index_t> flops(static_cast<std::size_t>(b.ncols()), 0);
  for (index_t j = 0; j < b.ncols(); ++j)
    for (auto k : b.col_rows(j)) flops[static_cast<std::size_t>(j)] += a.col_nnz(k);
  return flops;
}

template <typename VT>
index_t total_flops(const CscMatrix<VT>& a, const CscMatrix<VT>& b) {
  auto f = symbolic_flops(a, b);
  index_t t = 0;
  for (auto x : f) t += x;
  return t;
}

namespace detail {

/// Output assembly buffer for one contiguous range of C's columns.
template <typename VT>
struct ColRangeResult {
  std::vector<index_t> colptr;  // local, size = range length + 1
  std::vector<index_t> rowids;
  std::vector<VT> vals;
};

/// SPA accumulator for columns [jlo, jhi).
template <SemiringConcept SR, typename VT>
ColRangeResult<VT> spa_range(const CscMatrix<VT>& a, const CscMatrix<VT>& b, index_t jlo,
                             index_t jhi) {
  using T = typename SR::value_type;
  ColRangeResult<VT> out;
  out.colptr.assign(static_cast<std::size_t>(jhi - jlo) + 1, 0);
  std::vector<T> acc(static_cast<std::size_t>(a.nrows()), SR::zero());
  std::vector<index_t> stamp(static_cast<std::size_t>(a.nrows()), -1);
  std::vector<index_t> touched;
  for (index_t j = jlo; j < jhi; ++j) {
    touched.clear();
    auto bks = b.col_rows(j);
    auto bvs = b.col_vals(j);
    for (std::size_t p = 0; p < bks.size(); ++p) {
      index_t k = bks[p];
      auto ars = a.col_rows(k);
      auto avs = a.col_vals(k);
      for (std::size_t q = 0; q < ars.size(); ++q) {
        index_t r = ars[q];
        T prod = SR::multiply(static_cast<T>(avs[q]), static_cast<T>(bvs[p]));
        if (stamp[static_cast<std::size_t>(r)] != j) {
          stamp[static_cast<std::size_t>(r)] = j;
          acc[static_cast<std::size_t>(r)] = prod;
          touched.push_back(r);
        } else {
          acc[static_cast<std::size_t>(r)] = SR::add(acc[static_cast<std::size_t>(r)], prod);
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    for (auto r : touched) {
      out.rowids.push_back(r);
      out.vals.push_back(static_cast<VT>(acc[static_cast<std::size_t>(r)]));
    }
    out.colptr[static_cast<std::size_t>(j - jlo) + 1] = static_cast<index_t>(out.rowids.size());
  }
  return out;
}

/// Heap accumulator: k-way merge of the selected A columns.
template <SemiringConcept SR, typename VT>
ColRangeResult<VT> heap_range(const CscMatrix<VT>& a, const CscMatrix<VT>& b, index_t jlo,
                              index_t jhi) {
  using T = typename SR::value_type;
  ColRangeResult<VT> out;
  out.colptr.assign(static_cast<std::size_t>(jhi - jlo) + 1, 0);
  // Heap entry: current row id in list `l`, position within that list.
  struct Entry {
    index_t row;
    index_t list;
    index_t pos;
  };
  auto cmp = [](const Entry& x, const Entry& y) { return x.row > y.row; };
  std::vector<Entry> heap;
  for (index_t j = jlo; j < jhi; ++j) {
    auto bks = b.col_rows(j);
    auto bvs = b.col_vals(j);
    heap.clear();
    for (std::size_t l = 0; l < bks.size(); ++l) {
      if (a.col_nnz(bks[l]) > 0)
        heap.push_back({a.col_rows(bks[l])[0], static_cast<index_t>(l), 0});
    }
    std::make_heap(heap.begin(), heap.end(), cmp);
    index_t cur_row = -1;
    T cur_val = SR::zero();
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      Entry e = heap.back();
      heap.pop_back();
      index_t k = bks[static_cast<std::size_t>(e.list)];
      T prod = SR::multiply(static_cast<T>(a.col_vals(k)[static_cast<std::size_t>(e.pos)]),
                            static_cast<T>(bvs[static_cast<std::size_t>(e.list)]));
      if (e.row == cur_row) {
        cur_val = SR::add(cur_val, prod);
      } else {
        if (cur_row >= 0) {
          out.rowids.push_back(cur_row);
          out.vals.push_back(static_cast<VT>(cur_val));
        }
        cur_row = e.row;
        cur_val = prod;
      }
      if (e.pos + 1 < a.col_nnz(k)) {
        heap.push_back({a.col_rows(k)[static_cast<std::size_t>(e.pos) + 1], e.list, e.pos + 1});
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
    if (cur_row >= 0) {
      out.rowids.push_back(cur_row);
      out.vals.push_back(static_cast<VT>(cur_val));
    }
    out.colptr[static_cast<std::size_t>(j - jlo) + 1] = static_cast<index_t>(out.rowids.size());
  }
  return out;
}

/// Hash accumulator: open-addressing table sized per column.
template <SemiringConcept SR, typename VT>
ColRangeResult<VT> hash_range(const CscMatrix<VT>& a, const CscMatrix<VT>& b, index_t jlo,
                              index_t jhi) {
  using T = typename SR::value_type;
  ColRangeResult<VT> out;
  out.colptr.assign(static_cast<std::size_t>(jhi - jlo) + 1, 0);
  std::vector<index_t> keys;
  std::vector<T> tvals;
  std::vector<std::pair<index_t, VT>> extracted;
  for (index_t j = jlo; j < jhi; ++j) {
    auto bks = b.col_rows(j);
    auto bvs = b.col_vals(j);
    index_t flops = 0;
    for (auto k : bks) flops += a.col_nnz(k);
    // Distinct output rows are bounded by min(flops, nrows); sizing the
    // table by flops alone wastes cache on dense-ish columns.
    index_t distinct_bound = std::min<index_t>(std::max<index_t>(flops, 1), a.nrows());
    std::size_t cap = 8;
    while (cap < 2 * static_cast<std::size_t>(distinct_bound)) cap <<= 1;
    keys.assign(cap, -1);
    tvals.assign(cap, SR::zero());
    const std::size_t mask = cap - 1;
    for (std::size_t p = 0; p < bks.size(); ++p) {
      index_t k = bks[p];
      auto ars = a.col_rows(k);
      auto avs = a.col_vals(k);
      for (std::size_t q = 0; q < ars.size(); ++q) {
        index_t r = ars[q];
        T prod = SR::multiply(static_cast<T>(avs[q]), static_cast<T>(bvs[p]));
        std::size_t h = (static_cast<std::size_t>(r) * 0x9e3779b97f4a7c15ULL) & mask;
        while (true) {
          if (keys[h] == -1) {
            keys[h] = r;
            tvals[h] = prod;
            break;
          }
          if (keys[h] == r) {
            tvals[h] = SR::add(tvals[h], prod);
            break;
          }
          h = (h + 1) & mask;
        }
      }
    }
    extracted.clear();
    for (std::size_t h = 0; h < cap; ++h)
      if (keys[h] != -1) extracted.emplace_back(keys[h], static_cast<VT>(tvals[h]));
    std::sort(extracted.begin(), extracted.end());
    for (auto& [r, v] : extracted) {
      out.rowids.push_back(r);
      out.vals.push_back(v);
    }
    out.colptr[static_cast<std::size_t>(j - jlo) + 1] = static_cast<index_t>(out.rowids.size());
  }
  return out;
}

/// Hybrid: short merges go to the heap kernel, flop-heavy columns to hash,
/// and columns whose accumulation is dense relative to the row dimension
/// use the dense accumulator (the heap/hash/SPA mix of the paper's local
/// multiply, after Nagasaka et al. / Azad et al.).
template <SemiringConcept SR, typename VT>
ColRangeResult<VT> hybrid_range(const CscMatrix<VT>& a, const CscMatrix<VT>& b, index_t jlo,
                                index_t jhi, index_t flops_threshold = 256) {
  ColRangeResult<VT> out;
  out.colptr.assign(static_cast<std::size_t>(jhi - jlo) + 1, 0);
  // Group consecutive columns of the same class so the SPA accumulator is
  // reused across adjacent dense columns instead of reallocated per column.
  auto class_of = [&](index_t j) {
    index_t flops = 0;
    for (auto k : b.col_rows(j)) flops += a.col_nnz(k);
    if (flops <= flops_threshold) return 0;           // heap
    if (flops >= a.nrows() / 4) return 2;             // dense-ish: SPA
    return 1;                                         // hash
  };
  index_t j = jlo;
  while (j < jhi) {
    index_t cls = class_of(j);
    index_t end = j + 1;
    while (end < jhi && class_of(end) == cls) ++end;
    ColRangeResult<VT> one = cls == 0   ? heap_range<SR, VT>(a, b, j, end)
                             : cls == 1 ? hash_range<SR, VT>(a, b, j, end)
                                        : spa_range<SR, VT>(a, b, j, end);
    out.rowids.insert(out.rowids.end(), one.rowids.begin(), one.rowids.end());
    out.vals.insert(out.vals.end(), one.vals.begin(), one.vals.end());
    index_t base = out.colptr[static_cast<std::size_t>(j - jlo)];
    for (std::size_t jj = 1; jj < one.colptr.size(); ++jj)
      out.colptr[static_cast<std::size_t>(j - jlo) + jj] = base + one.colptr[jj];
    j = end;
  }
  return out;
}

template <SemiringConcept SR, typename VT>
ColRangeResult<VT> run_range(const CscMatrix<VT>& a, const CscMatrix<VT>& b, index_t jlo,
                             index_t jhi, LocalKernel kernel) {
  switch (kernel) {
    case LocalKernel::Spa: return spa_range<SR, VT>(a, b, jlo, jhi);
    case LocalKernel::Heap: return heap_range<SR, VT>(a, b, jlo, jhi);
    case LocalKernel::Hash: return hash_range<SR, VT>(a, b, jlo, jhi);
    case LocalKernel::Hybrid: return hybrid_range<SR, VT>(a, b, jlo, jhi);
  }
  throw std::logic_error("run_range: unknown kernel");
}

}  // namespace detail

/// C = A ⊕.⊗ B with the chosen accumulator. `threads` > 1 splits C's columns
/// across std::threads (each thread builds a contiguous column range).
template <SemiringConcept SR, typename VT>
CscMatrix<VT> spgemm_local(const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                           LocalKernel kernel = LocalKernel::Hybrid, int threads = 1) {
  require(a.ncols() == b.nrows(), "spgemm_local: inner dimension mismatch");
  require(threads >= 1, "spgemm_local: threads must be >= 1");

  std::vector<detail::ColRangeResult<VT>> parts;
  if (threads == 1 || b.ncols() < 2 * threads) {
    parts.push_back(detail::run_range<SR, VT>(a, b, 0, b.ncols(), kernel));
  } else {
    auto bounds = even_split(b.ncols(), threads);
    parts.resize(static_cast<std::size_t>(threads));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        parts[static_cast<std::size_t>(t)] = detail::run_range<SR, VT>(
            a, b, bounds[static_cast<std::size_t>(t)], bounds[static_cast<std::size_t>(t) + 1],
            kernel);
      });
    }
    for (auto& th : pool) th.join();
  }

  // Concatenate ranges into one CSC.
  std::vector<index_t> colptr;
  colptr.reserve(static_cast<std::size_t>(b.ncols()) + 1);
  colptr.push_back(0);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.rowids.size();
  std::vector<index_t> rowids;
  std::vector<VT> vals;
  rowids.reserve(total);
  vals.reserve(total);
  for (const auto& p : parts) {
    index_t base = static_cast<index_t>(rowids.size());
    for (std::size_t j = 1; j < p.colptr.size(); ++j) colptr.push_back(base + p.colptr[j]);
    rowids.insert(rowids.end(), p.rowids.begin(), p.rowids.end());
    vals.insert(vals.end(), p.vals.begin(), p.vals.end());
  }
  return CscMatrix<VT>(a.nrows(), b.ncols(), std::move(colptr), std::move(rowids),
                       std::move(vals));
}

/// Convenience numeric wrapper over plus-times.
template <typename VT>
CscMatrix<VT> spgemm(const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                     LocalKernel kernel = LocalKernel::Hybrid, int threads = 1) {
  return spgemm_local<PlusTimes<VT>, VT>(a, b, kernel, threads);
}

}  // namespace sa1d
