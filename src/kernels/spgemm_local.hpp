// Shared-memory SpGEMM engine, column-by-column formulation (paper Fig 1):
// column j of C is the ⊕-combination of A's columns selected by the nonzeros
// of B(:, j). Four accumulators are provided:
//   - SPA   : dense sparse-accumulator, the O(m) reference
//   - Heap  : k-way merge of the selected A columns (Azad et al. 2016)
//   - Hash  : open-addressing per-column table (Nagasaka et al. 2019)
//   - Hybrid: per-column choice among the three by flops and density —
//             the configuration the paper uses for its local multiplies.
//
// The multiply runs in two phases:
//   1. symbolic — per-column flops and *exact* output nnz, computed once.
//      The flop counts drive a flop-prefix-balanced partition of C's columns
//      across threads (skewed column distributions no longer serialize on
//      one thread), and the accumulator class of every column is decided
//      here exactly once.
//   2. numeric — with C's colptr known exactly, row ids and values are
//      written straight into the final CscMatrix arrays at precomputed
//      offsets: no per-range staging buffers, no concatenation copy, and
//      the output is byte-identical for every thread count.
// Both phases run on persistent per-thread workspaces: a grow-only
// open-addressing table cleared in O(1) by bumping a generation tag (no
// O(capacity) reset per column), a combined stamp+value dense accumulator
// (one cache line per touched row instead of two), and reusable
// heap/extraction buffers.
//
// All four accumulators apply ⊕ to each output row's products in the same
// order (B-column position, then A-row position; the heap breaks row ties by
// B-column position), so their outputs are bit-identical even for
// non-associative floating-point ⊕.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "kernels/semiring.hpp"
#include "sparse/csc.hpp"
#include "util/common.hpp"

namespace sa1d {

enum class LocalKernel { Spa, Heap, Hash, Hybrid };

inline const char* kernel_name(LocalKernel k) {
  switch (k) {
    case LocalKernel::Spa: return "spa";
    case LocalKernel::Heap: return "heap";
    case LocalKernel::Hash: return "hash";
    case LocalKernel::Hybrid: return "hybrid";
  }
  return "?";
}

/// Per-column multiply work: flops(j) = Σ_{k : B(k,j)≠0} nnz(A(:,k)).
/// This is the "sparse flops" quantity the paper balances with METIS weights.
template <typename VT>
std::vector<index_t> symbolic_flops(const CscMatrix<VT>& a, const CscMatrix<VT>& b) {
  require(a.ncols() == b.nrows(), "symbolic_flops: inner dimension mismatch");
  std::vector<index_t> flops(static_cast<std::size_t>(b.ncols()), 0);
  for (index_t j = 0; j < b.ncols(); ++j)
    for (auto k : b.col_rows(j)) flops[static_cast<std::size_t>(j)] += a.col_nnz(k);
  return flops;
}

template <typename VT>
index_t total_flops(const CscMatrix<VT>& a, const CscMatrix<VT>& b) {
  auto f = symbolic_flops(a, b);
  index_t t = 0;
  for (auto x : f) t += x;
  return t;
}

/// Splits columns [0, flops.size()) into `parts` contiguous ranges whose
/// flop sums are as even as prefix cuts allow (each column is charged
/// flops+1 so ranges of all-empty columns still spread out). Replaces
/// even_split for the thread partition: on skewed (RMAT-like) inputs an
/// even column split puts nearly all multiply work on one thread.
inline std::vector<index_t> flop_balanced_split(std::span<const index_t> flops, int parts) {
  require(parts > 0, "flop_balanced_split: parts must be positive");
  const auto n = static_cast<index_t>(flops.size());
  std::vector<std::uint64_t> prefix(flops.size() + 1, 0);
  for (std::size_t i = 0; i < flops.size(); ++i)
    prefix[i + 1] = prefix[i] + static_cast<std::uint64_t>(flops[i]) + 1;
  const std::uint64_t total = prefix.back();
  std::vector<index_t> bounds(static_cast<std::size_t>(parts) + 1, 0);
  bounds.back() = n;
  for (int p = 1; p < parts; ++p) {
    std::uint64_t target =
        total / static_cast<std::uint64_t>(parts) * static_cast<std::uint64_t>(p);
    auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    auto cut = static_cast<index_t>(it - prefix.begin());
    bounds[static_cast<std::size_t>(p)] =
        std::clamp(cut, bounds[static_cast<std::size_t>(p) - 1], n);
  }
  return bounds;
}

namespace detail {

/// Accumulator class of one output column, decided once in the symbolic
/// phase (the seed recomputed this per column per probe in hybrid_range).
/// The dense accumulator has two extraction strategies: kClassSpa walks the
/// occupancy bitmap (rows come out sorted for free; right when the column's
/// flops amortize the O(nrows/64) word scan), kClassSpaSort keeps a touched
/// list and sorts it (right for small-distinct columns on a small row
/// dimension, where the word scan would dominate).
enum ColClass : std::uint8_t {
  kClassHeap = 0,
  kClassHash = 1,
  kClassSpa = 2,
  kClassSpaSort = 3,
};

/// Hybrid thresholds. A merge of ≤1 lists is a scaled copy (heap fast
/// path); tiny merges stay on the heap; dense accumulation wins whenever
/// the bitmap scan is amortized or the row dimension is cache-resident; the
/// hash table covers the hypersparse remainder (large m, scattered small
/// columns — the Ã·B̃ shape of Algorithm 1).
constexpr index_t kHeapFlopsThreshold = 16;
constexpr index_t kSpaResidentRows = index_t{1} << 13;

inline ColClass classify(index_t col_flops, index_t blists, index_t nrows, LocalKernel kernel) {
  switch (kernel) {
    case LocalKernel::Spa:
      return col_flops >= nrows / 64 ? kClassSpa : kClassSpaSort;
    case LocalKernel::Heap: return kClassHeap;
    case LocalKernel::Hash: return kClassHash;
    case LocalKernel::Hybrid: break;
  }
  if (blists <= 1 || col_flops <= kHeapFlopsThreshold) return kClassHeap;
  if (col_flops >= nrows / 64) return kClassSpa;
  if (nrows <= kSpaResidentRows) return kClassSpaSort;
  return kClassHash;
}

/// Inert filler for unoccupied hash slots. Slot validity is decided by the
/// generation tag alone, so no row id — including -1 or any value an
/// index_t can take on large inputs — can ever collide with "empty".
inline constexpr index_t kHashEmptyKey = std::numeric_limits<index_t>::min();

inline std::size_t hash_mix(index_t r) {
  return static_cast<std::size_t>(static_cast<std::uint64_t>(r) * 0x9e3779b97f4a7c15ULL);
}

/// Persistent per-thread workspace: every buffer is allocated (and grown)
/// at most a handful of times per multiply instead of once per column.
template <SemiringConcept SR>
struct Workspace {
  using T = typename SR::value_type;
  // bool accumulators (OrAnd) are stored as uint8_t: vector<bool> has no
  // data() and its proxy references defeat the raw-pointer inner loops.
  using StoredT = std::conditional_t<std::is_same_v<T, bool>, std::uint8_t, T>;

  // Grow-only open-addressing table shared by the symbolic count and the
  // numeric hash accumulator. A slot is occupied iff its generation tag
  // equals `gen`; bumping `gen` clears the whole table in O(1), replacing
  // the seed's O(capacity) keys.assign per column. Key and tag share a
  // 16-byte slot so a probe touches one cache line.
  struct HSlot {
    index_t key;
    std::uint64_t gen;
  };
  std::vector<HSlot> hslots;
  std::vector<StoredT> hvals;
  std::uint64_t gen = 0;

  // Bitmap-SPA accumulator (SPA class; lazily sized to the row dimension):
  // the occupancy bitmap (1 bit/row, L1-resident) replaces per-row stamps,
  // and extraction walks the bitmap words in order — output rows come out
  // already sorted, so the SPA class needs no per-column sort at all.
  // Invariant: `bits` is all-zero between columns.
  std::vector<StoredT> accum;
  std::vector<std::uint64_t> bits;

  // Stamp-SPA state (kClassSpaSort): per-row stamps mark occupancy and a
  // touched list is sorted at extraction — cheaper than the bitmap word
  // scan when the column's distinct rows are few and the row dim is small.
  std::vector<index_t> stamp;
  index_t spa_token = 0;
  std::vector<index_t> touched;

  // (row, slot) extraction pairs for hash columns.
  std::vector<std::pair<index_t, index_t>> extracted;

  // Heap-merge entries: current row of list `list` at position `pos`.
  struct HeapEntry {
    index_t row;
    index_t list;
    index_t pos;
  };
  std::vector<HeapEntry> heap;

  /// Grows the table to hold `distinct_bound` distinct rows at ≤0.5 load.
  /// bit_ceil cannot loop the way the seed's `while (cap <<= 1)` could; the
  /// bound is clamped to the row dimension by callers, so the doubled value
  /// stays far below SIZE_MAX/2.
  void ensure_hash_capacity(index_t distinct_bound) {
    std::size_t want = std::bit_ceil(std::max<std::size_t>(
        16, 2 * static_cast<std::size_t>(std::max<index_t>(distinct_bound, 1))));
    if (want > hslots.size()) {
      hslots.assign(want, {kHashEmptyKey, 0});
      hvals.assign(want, static_cast<StoredT>(SR::zero()));
      gen = 0;  // all tags are 0 → every slot reads as empty once gen > 0
    }
  }

  void ensure_dense(index_t nrows) {
    // accum needs no initialization: a slot is only read after the column's
    // first store to it (guarded by the bitmap or the stamp).
    if (accum.size() < static_cast<std::size_t>(nrows))
      accum.resize(static_cast<std::size_t>(nrows));
    const auto words = static_cast<std::size_t>((nrows + 63) / 64);
    if (bits.size() < words) bits.resize(words, 0);
  }

  void ensure_stamp(index_t nrows) {
    ensure_dense(nrows);
    if (stamp.size() < static_cast<std::size_t>(nrows)) {
      stamp.assign(static_cast<std::size_t>(nrows), -1);
      spa_token = 0;
    }
  }
};

/// Exact number of distinct output rows of column j, via the generation-
/// stamped table (no O(nrows) state needed for sparse columns).
template <SemiringConcept SR, typename VT>
index_t symbolic_count_hash(Workspace<SR>& ws, const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                            index_t j, index_t col_flops) {
  ws.ensure_hash_capacity(std::min<index_t>(col_flops, a.nrows()));
  ++ws.gen;
  const std::uint64_t gen = ws.gen;
  auto* slots = ws.hslots.data();
  const std::size_t mask = ws.hslots.size() - 1;
  const index_t* acp = a.colptr().data();
  const index_t* arw = a.rowids().data();
  index_t count = 0;
  for (auto k : b.col_rows(j)) {
    for (index_t q = acp[k]; q < acp[k + 1]; ++q) {
      const index_t r = arw[q];
      std::size_t h = hash_mix(r) & mask;
      while (slots[h].gen == gen && slots[h].key != r) h = (h + 1) & mask;
      if (slots[h].gen != gen) {
        slots[h] = {r, gen};
        ++count;
      }
    }
  }
  return count;
}

/// Exact distinct-row count for dense-ish columns via the row bitmap (the
/// probes stay L1-resident; the closing popcount scan is amortized by the
/// classify() thresholds) .
template <SemiringConcept SR, typename VT>
index_t symbolic_count_dense(Workspace<SR>& ws, const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                             index_t j) {
  ws.ensure_dense(a.nrows());
  auto* bits = ws.bits.data();
  const index_t* acp = a.colptr().data();
  const index_t* arw = a.rowids().data();
  for (auto k : b.col_rows(j)) {
    for (index_t q = acp[k]; q < acp[k + 1]; ++q) {
      const index_t r = arw[q];
      bits[static_cast<std::size_t>(r) >> 6] |= std::uint64_t{1} << (r & 63);
    }
  }
  const auto words = static_cast<std::size_t>((a.nrows() + 63) / 64);
  index_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    count += std::popcount(bits[w]);
    bits[w] = 0;
  }
  return count;
}

/// Exact distinct-row count via per-row stamps (small-distinct columns on a
/// cache-resident row dimension: a direct indexed probe beats hashing).
template <SemiringConcept SR, typename VT>
index_t symbolic_count_stamp(Workspace<SR>& ws, const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                             index_t j) {
  ws.ensure_stamp(a.nrows());
  const index_t token = ++ws.spa_token;
  index_t* stamp = ws.stamp.data();
  const index_t* acp = a.colptr().data();
  const index_t* arw = a.rowids().data();
  index_t count = 0;
  for (auto k : b.col_rows(j)) {
    for (index_t q = acp[k]; q < acp[k + 1]; ++q) {
      const index_t r = arw[q];
      if (stamp[r] != token) {
        stamp[r] = token;
        ++count;
      }
    }
  }
  return count;
}

/// Symbolic pass over columns [jlo, jhi): classifies each column and
/// records its exact output nnz in counts[j].
template <SemiringConcept SR, typename VT>
void symbolic_range(const CscMatrix<VT>& a, const CscMatrix<VT>& b, index_t jlo, index_t jhi,
                    LocalKernel kernel, std::span<const index_t> flops, Workspace<SR>& ws,
                    std::span<index_t> counts, std::span<std::uint8_t> klass) {
  for (index_t j = jlo; j < jhi; ++j) {
    const index_t f = flops[static_cast<std::size_t>(j)];
    const index_t lists = b.col_nnz(j);
    ColClass cls = classify(f, lists, a.nrows(), kernel);
    klass[static_cast<std::size_t>(j)] = cls;
    if (lists <= 1) {
      // 0 or 1 selected A columns: the output is that column (scaled), so
      // the count is known without touching A's row ids at all.
      counts[static_cast<std::size_t>(j)] = f;
    } else if (cls == kClassSpa) {
      counts[static_cast<std::size_t>(j)] = symbolic_count_dense(ws, a, b, j);
    } else if (cls == kClassSpaSort) {
      counts[static_cast<std::size_t>(j)] = symbolic_count_stamp(ws, a, b, j);
    } else {
      counts[static_cast<std::size_t>(j)] = symbolic_count_hash(ws, a, b, j, f);
    }
  }
}

/// Numeric SPA column: bitmap-guarded dense accumulate, then an in-order
/// walk of the bitmap words emits rows already sorted — no per-column sort.
template <SemiringConcept SR, typename VT>
void numeric_spa_col(Workspace<SR>& ws, const CscMatrix<VT>& a, const CscMatrix<VT>& b, index_t j,
                     index_t* out_rows, VT* out_vals) {
  using T = typename SR::value_type;
  using StoredT = typename Workspace<SR>::StoredT;
  ws.ensure_dense(a.nrows());
  auto* bits = ws.bits.data();
  StoredT* accum = ws.accum.data();
  const index_t* acp = a.colptr().data();
  const index_t* arw = a.rowids().data();
  const VT* avl = a.vals().data();
  auto bks = b.col_rows(j);
  auto bvs = b.col_vals(j);
  for (std::size_t p = 0; p < bks.size(); ++p) {
    const index_t k = bks[p];
    const T bv = static_cast<T>(bvs[p]);
    for (index_t q = acp[k]; q < acp[k + 1]; ++q) {
      const index_t r = arw[q];
      const T prod = SR::multiply(static_cast<T>(avl[q]), bv);
      const auto w = static_cast<std::size_t>(r) >> 6;
      const std::uint64_t bit = std::uint64_t{1} << (r & 63);
      if ((bits[w] & bit) == 0) {
        bits[w] |= bit;
        accum[r] = static_cast<StoredT>(prod);
      } else {
        accum[r] = static_cast<StoredT>(SR::add(static_cast<T>(accum[r]), prod));
      }
    }
  }
  const auto words = static_cast<std::size_t>((a.nrows() + 63) / 64);
  std::size_t out = 0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t word = bits[w];
    if (word == 0) continue;
    bits[w] = 0;
    const auto base = static_cast<index_t>(w << 6);
    do {
      const index_t r = base + std::countr_zero(word);
      word &= word - 1;
      out_rows[out] = r;
      out_vals[out] = static_cast<VT>(accum[r]);
      ++out;
    } while (word != 0);
  }
}

/// Numeric stamp-SPA column: dense accumulate behind per-row stamps, then
/// sort the touched rows (small-distinct columns: the sort is cheaper than
/// walking the whole bitmap word range).
template <SemiringConcept SR, typename VT>
void numeric_spa_sort_col(Workspace<SR>& ws, const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                          index_t j, index_t* out_rows, VT* out_vals) {
  using T = typename SR::value_type;
  using StoredT = typename Workspace<SR>::StoredT;
  ws.ensure_stamp(a.nrows());
  const index_t token = ++ws.spa_token;
  index_t* stamp = ws.stamp.data();
  StoredT* accum = ws.accum.data();
  const index_t* acp = a.colptr().data();
  const index_t* arw = a.rowids().data();
  const VT* avl = a.vals().data();
  ws.touched.clear();
  auto bks = b.col_rows(j);
  auto bvs = b.col_vals(j);
  for (std::size_t p = 0; p < bks.size(); ++p) {
    const index_t k = bks[p];
    const T bv = static_cast<T>(bvs[p]);
    for (index_t q = acp[k]; q < acp[k + 1]; ++q) {
      const index_t r = arw[q];
      const T prod = SR::multiply(static_cast<T>(avl[q]), bv);
      if (stamp[r] != token) {
        stamp[r] = token;
        accum[r] = static_cast<StoredT>(prod);
        ws.touched.push_back(r);
      } else {
        accum[r] = static_cast<StoredT>(SR::add(static_cast<T>(accum[r]), prod));
      }
    }
  }
  std::sort(ws.touched.begin(), ws.touched.end());
  for (std::size_t i = 0; i < ws.touched.size(); ++i) {
    out_rows[i] = ws.touched[i];
    out_vals[i] = static_cast<VT>(accum[ws.touched[i]]);
  }
}

/// Numeric hash column: generation-stamped open addressing; products are
/// inserted in (B-position, A-position) order so per-row ⊕ order matches
/// the SPA reference bit for bit.
template <SemiringConcept SR, typename VT>
void numeric_hash_col(Workspace<SR>& ws, const CscMatrix<VT>& a, const CscMatrix<VT>& b, index_t j,
                      index_t col_nnz, index_t* out_rows, VT* out_vals) {
  using T = typename SR::value_type;
  using StoredT = typename Workspace<SR>::StoredT;
  ws.ensure_hash_capacity(col_nnz);
  ++ws.gen;
  const std::uint64_t gen = ws.gen;
  auto* slots = ws.hslots.data();
  StoredT* hvals = ws.hvals.data();
  const std::size_t mask = ws.hslots.size() - 1;
  const index_t* acp = a.colptr().data();
  const index_t* arw = a.rowids().data();
  const VT* avl = a.vals().data();
  ws.extracted.clear();
  auto bks = b.col_rows(j);
  auto bvs = b.col_vals(j);
  for (std::size_t p = 0; p < bks.size(); ++p) {
    const index_t k = bks[p];
    const T bv = static_cast<T>(bvs[p]);
    for (index_t q = acp[k]; q < acp[k + 1]; ++q) {
      const index_t r = arw[q];
      const T prod = SR::multiply(static_cast<T>(avl[q]), bv);
      std::size_t h = hash_mix(r) & mask;
      while (true) {
        if (slots[h].gen != gen) {
          slots[h] = {r, gen};
          hvals[h] = static_cast<StoredT>(prod);
          ws.extracted.emplace_back(r, static_cast<index_t>(h));
          break;
        }
        if (slots[h].key == r) {
          hvals[h] = static_cast<StoredT>(SR::add(static_cast<T>(hvals[h]), prod));
          break;
        }
        h = (h + 1) & mask;
      }
    }
  }
  std::sort(ws.extracted.begin(), ws.extracted.end());
  for (std::size_t i = 0; i < ws.extracted.size(); ++i) {
    out_rows[i] = ws.extracted[i].first;
    out_vals[i] = static_cast<VT>(hvals[static_cast<std::size_t>(ws.extracted[i].second)]);
  }
}

/// Numeric heap column: k-way merge of the selected A columns. Row ties pop
/// in ascending B-position (`list`) order, which makes the per-row ⊕ order
/// identical to the SPA reference. Merges of one list degenerate to a
/// scaled copy.
template <SemiringConcept SR, typename VT>
void numeric_heap_col(Workspace<SR>& ws, const CscMatrix<VT>& a, const CscMatrix<VT>& b, index_t j,
                      index_t* out_rows, VT* out_vals) {
  using T = typename SR::value_type;
  using Entry = typename Workspace<SR>::HeapEntry;
  auto bks = b.col_rows(j);
  auto bvs = b.col_vals(j);
  if (bks.size() == 1) {
    const index_t k = bks[0];
    const T bv = static_cast<T>(bvs[0]);
    auto ars = a.col_rows(k);
    auto avs = a.col_vals(k);
    for (std::size_t q = 0; q < ars.size(); ++q) {
      out_rows[q] = ars[q];
      out_vals[q] = static_cast<VT>(SR::multiply(static_cast<T>(avs[q]), bv));
    }
    return;
  }
  auto cmp = [](const Entry& x, const Entry& y) {
    return x.row != y.row ? x.row > y.row : x.list > y.list;
  };
  ws.heap.clear();
  for (std::size_t l = 0; l < bks.size(); ++l) {
    if (a.col_nnz(bks[l]) > 0)
      ws.heap.push_back({a.col_rows(bks[l])[0], static_cast<index_t>(l), 0});
  }
  std::make_heap(ws.heap.begin(), ws.heap.end(), cmp);
  index_t cur_row = -1;
  T cur_val = SR::zero();
  std::size_t w = 0;
  while (!ws.heap.empty()) {
    std::pop_heap(ws.heap.begin(), ws.heap.end(), cmp);
    Entry e = ws.heap.back();
    ws.heap.pop_back();
    index_t k = bks[static_cast<std::size_t>(e.list)];
    T prod = SR::multiply(static_cast<T>(a.col_vals(k)[static_cast<std::size_t>(e.pos)]),
                          static_cast<T>(bvs[static_cast<std::size_t>(e.list)]));
    if (e.row == cur_row) {
      cur_val = SR::add(cur_val, prod);
    } else {
      if (cur_row >= 0) {
        out_rows[w] = cur_row;
        out_vals[w] = static_cast<VT>(cur_val);
        ++w;
      }
      cur_row = e.row;
      cur_val = prod;
    }
    if (e.pos + 1 < a.col_nnz(k)) {
      ws.heap.push_back({a.col_rows(k)[static_cast<std::size_t>(e.pos) + 1], e.list, e.pos + 1});
      std::push_heap(ws.heap.begin(), ws.heap.end(), cmp);
    }
  }
  if (cur_row >= 0) {
    out_rows[w] = cur_row;
    out_vals[w] = static_cast<VT>(cur_val);
  }
}

/// Numeric pass over columns [jlo, jhi): each column writes its rows/values
/// directly into the final CSC arrays at the offsets the symbolic phase
/// fixed — zero-copy assembly, no per-range staging.
template <SemiringConcept SR, typename VT>
void run_range(const CscMatrix<VT>& a, const CscMatrix<VT>& b, index_t jlo, index_t jhi,
               std::span<const index_t> colptr, std::span<const std::uint8_t> klass,
               Workspace<SR>& ws, index_t* rowids, VT* vals) {
  for (index_t j = jlo; j < jhi; ++j) {
    const index_t off = colptr[static_cast<std::size_t>(j)];
    const index_t cnt = colptr[static_cast<std::size_t>(j) + 1] - off;
    if (cnt == 0) continue;
    index_t* out_rows = rowids + off;
    VT* out_vals = vals + off;
    switch (klass[static_cast<std::size_t>(j)]) {
      case kClassHeap: numeric_heap_col<SR, VT>(ws, a, b, j, out_rows, out_vals); break;
      case kClassHash: numeric_hash_col<SR, VT>(ws, a, b, j, cnt, out_rows, out_vals); break;
      case kClassSpaSort: numeric_spa_sort_col<SR, VT>(ws, a, b, j, out_rows, out_vals); break;
      default: numeric_spa_col<SR, VT>(ws, a, b, j, out_rows, out_vals); break;
    }
  }
}

/// Runs fn(t) on `parts` threads (inline when parts == 1).
template <typename F>
void parallel_for_parts(int parts, F&& fn) {
  if (parts == 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(parts));
  for (int t = 0; t < parts; ++t) pool.emplace_back(fn, t);
  for (auto& th : pool) th.join();
}

}  // namespace detail

/// Exact per-column output nnz of C = A·B (structural; semiring-independent).
/// This is the symbolic phase of the two-phase engine exposed on its own —
/// useful for exact output pre-sizing and for validating that the numeric
/// pass produced precisely the predicted structure.
template <typename VT>
std::vector<index_t> symbolic_nnz(const CscMatrix<VT>& a, const CscMatrix<VT>& b) {
  require(a.ncols() == b.nrows(), "symbolic_nnz: inner dimension mismatch");
  auto flops = symbolic_flops(a, b);
  std::vector<index_t> counts(static_cast<std::size_t>(b.ncols()), 0);
  std::vector<std::uint8_t> klass(static_cast<std::size_t>(b.ncols()), 0);
  detail::Workspace<PlusTimes<double>> ws;
  detail::symbolic_range<PlusTimes<double>, VT>(a, b, 0, b.ncols(), LocalKernel::Hybrid, flops,
                                                ws, counts, klass);
  return counts;
}

/// Cached symbolic result of one local multiply: everything the numeric
/// pass needs that depends only on the operands' *structure*. Reusable
/// across value changes (the inspector–executor split of the 1D pipeline
/// caches one of these inside SpgemmPlan1D).
struct LocalSymbolic {
  index_t nrows = 0;                ///< C's row dimension (= a.nrows())
  index_t ncols = 0;                ///< C's column dimension (= b.ncols())
  int nt = 1;                       ///< resolved thread count
  std::vector<index_t> bounds;      ///< flop-balanced thread boundaries, size nt+1
  std::vector<index_t> colptr;      ///< exact C colptr, size ncols+1
  std::vector<std::uint8_t> klass;  ///< per-column accumulator class
};

/// Symbolic phase on its own: exact per-column output nnz, accumulator
/// class, and the flop-balanced thread partition. Structural only — valid
/// for any value assignment over the same sparsity pattern. `workspaces`
/// (optional) lets callers keep the per-thread scratch warm across calls;
/// it is resized to the resolved thread count.
template <SemiringConcept SR, typename VT>
LocalSymbolic spgemm_local_symbolic(const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                                    LocalKernel kernel = LocalKernel::Hybrid, int threads = 1,
                                    std::vector<detail::Workspace<SR>>* workspaces = nullptr) {
  require(a.ncols() == b.nrows(), "spgemm_local_symbolic: inner dimension mismatch");
  require(threads >= 1, "spgemm_local_symbolic: threads must be >= 1");
  const index_t n = b.ncols();

  // Per-column flops, O(nnz(B)) — drives both the thread partition and the
  // per-column accumulator choice.
  auto flops = symbolic_flops(a, b);
  index_t work = 0;
  for (auto f : flops) work += f;
  // Small-multiply serial fallback: both phases spawn/join a thread round,
  // so each extra thread must bring enough flops to amortize that (~0.1 ms)
  // churn. The output is bit-identical for every thread count, so this is
  // purely a cost choice — distributed callers hit tiny local blocks in hot
  // loops (coarse AMG levels, BC frontiers) with opt.threads > 1.
  constexpr index_t kMinFlopsPerThread = index_t{1} << 14;
  const int nt = static_cast<int>(std::clamp<index_t>(
      std::min<index_t>(work / kMinFlopsPerThread + 1, std::max<index_t>(n, 1)), 1, threads));

  LocalSymbolic sym;
  sym.nrows = a.nrows();
  sym.ncols = n;
  sym.nt = nt;
  sym.bounds = flop_balanced_split(flops, nt);
  sym.colptr.assign(static_cast<std::size_t>(n) + 1, 0);
  sym.klass.assign(static_cast<std::size_t>(n), 0);

  std::vector<detail::Workspace<SR>> local_ws;
  auto& ws = workspaces != nullptr ? *workspaces : local_ws;
  if (ws.size() < static_cast<std::size_t>(nt)) ws.resize(static_cast<std::size_t>(nt));

  detail::parallel_for_parts(nt, [&](int t) {
    detail::symbolic_range<SR, VT>(
        a, b, sym.bounds[static_cast<std::size_t>(t)], sym.bounds[static_cast<std::size_t>(t) + 1],
        kernel, flops, ws[static_cast<std::size_t>(t)],
        std::span<index_t>(sym.colptr).subspan(1), sym.klass);
  });
  for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j)
    sym.colptr[j + 1] += sym.colptr[j];
  return sym;
}

/// Numeric phase replaying a cached symbolic result: writes row ids and
/// values straight into the exactly pre-sized output. The operands must
/// have the structure the symbolic pass analyzed (values may differ).
template <SemiringConcept SR, typename VT>
CscMatrix<VT> spgemm_local_numeric(const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                                   const LocalSymbolic& sym,
                                   std::vector<detail::Workspace<SR>>* workspaces = nullptr) {
  require(a.nrows() == sym.nrows && b.ncols() == sym.ncols,
          "spgemm_local_numeric: operand dimensions do not match the symbolic plan");
  require(a.ncols() == b.nrows(), "spgemm_local_numeric: inner dimension mismatch");
  const auto total = static_cast<std::size_t>(sym.colptr.back());

  std::vector<detail::Workspace<SR>> local_ws;
  auto& ws = workspaces != nullptr ? *workspaces : local_ws;
  if (ws.size() < static_cast<std::size_t>(sym.nt))
    ws.resize(static_cast<std::size_t>(sym.nt));

  std::vector<index_t> rowids(total);
  std::vector<VT> vals(total);
  detail::parallel_for_parts(sym.nt, [&](int t) {
    detail::run_range<SR, VT>(a, b, sym.bounds[static_cast<std::size_t>(t)],
                              sym.bounds[static_cast<std::size_t>(t) + 1], sym.colptr, sym.klass,
                              ws[static_cast<std::size_t>(t)], rowids.data(), vals.data());
  });
  return CscMatrix<VT>(sym.nrows, sym.ncols, sym.colptr, std::move(rowids), std::move(vals));
}

/// C = A ⊕.⊗ B with the chosen accumulator. `threads` > 1 splits C's columns
/// across std::threads on flop-balanced boundaries; the output is identical
/// (bit for bit) for every thread count and every accumulator choice.
/// One-shot convenience over the symbolic/numeric split; the per-thread
/// workspaces stay warm between the two phases.
template <SemiringConcept SR, typename VT>
CscMatrix<VT> spgemm_local(const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                           LocalKernel kernel = LocalKernel::Hybrid, int threads = 1) {
  require(a.ncols() == b.nrows(), "spgemm_local: inner dimension mismatch");
  require(threads >= 1, "spgemm_local: threads must be >= 1");
  std::vector<detail::Workspace<SR>> workspaces;
  auto sym = spgemm_local_symbolic<SR, VT>(a, b, kernel, threads, &workspaces);
  return spgemm_local_numeric<SR, VT>(a, b, sym, &workspaces);
}

/// Convenience numeric wrapper over plus-times.
template <typename VT>
CscMatrix<VT> spgemm(const CscMatrix<VT>& a, const CscMatrix<VT>& b,
                     LocalKernel kernel = LocalKernel::Hybrid, int threads = 1) {
  return spgemm_local<PlusTimes<VT>, VT>(a, b, kernel, threads);
}

}  // namespace sa1d
