// Semiring abstractions: SpGEMM is computed over a configurable (⊕, ⊗)
// pair so the same kernels serve numeric multiplication (plus-times),
// reachability (or-and), shortest paths (min-plus), and the BC traversals.
#pragma once

#include <algorithm>
#include <concepts>
#include <limits>
#include <type_traits>

namespace sa1d {

/// A semiring provides: value_type, zero() (⊕-identity and annihilator),
/// add(a,b) = a ⊕ b, multiply(a,b) = a ⊗ b.
template <typename SR>
concept SemiringConcept = requires(typename SR::value_type a, typename SR::value_type b) {
  { SR::zero() } -> std::convertible_to<typename SR::value_type>;
  { SR::add(a, b) } -> std::convertible_to<typename SR::value_type>;
  { SR::multiply(a, b) } -> std::convertible_to<typename SR::value_type>;
};

/// Standard arithmetic semiring (+, ×). The numeric SpGEMM of the paper.
template <typename T = double>
struct PlusTimes {
  using value_type = T;
  static constexpr T zero() { return T{0}; }
  static T add(T a, T b) { return a + b; }
  static T multiply(T a, T b) { return a * b; }
};

/// Boolean reachability semiring (∨, ∧).
struct OrAnd {
  using value_type = bool;
  static constexpr bool zero() { return false; }
  static bool add(bool a, bool b) { return a || b; }
  static bool multiply(bool a, bool b) { return a && b; }
};

/// Tropical semiring (min, +) for shortest paths.
template <typename T = double>
struct MinPlus {
  using value_type = T;
  static constexpr T zero() { return std::numeric_limits<T>::infinity(); }
  static T add(T a, T b) { return std::min(a, b); }
  static T multiply(T a, T b) { return a + b; }
};

/// Resolves the semiring of a distributed entry point: callers omit the
/// argument (void) to get plus-times over their value type, or name any
/// semiring explicitly — spgemm_dist<MinPlus<double>>(…).
template <typename SR, typename VT>
using ResolveSemiring = std::conditional_t<std::is_void_v<SR>, PlusTimes<VT>, SR>;

/// (+, select-second): multiply ignores the A value. With a 0/1 adjacency
/// pattern this propagates and sums B values along edges — the multi-source
/// BFS path-counting step of betweenness centrality.
template <typename T = double>
struct PlusSelect2nd {
  using value_type = T;
  static constexpr T zero() { return T{0}; }
  static T add(T a, T b) { return a + b; }
  static T multiply(T /*a*/, T b) { return b; }
};

}  // namespace sa1d
