// Umbrella header: the full public API of the sa1d library.
//
// sa1d reproduces "A sparsity-aware distributed-memory algorithm for
// sparse-sparse matrix multiplication" (Hong & Buluç, SC 2024) — the
// sparsity-aware 1D SpGEMM with RDMA block fetching — together with every
// substrate it needs: sparse formats, local kernels, a simulated MPI/RDMA
// runtime with exact communication accounting, 2D/3D baselines, a
// multilevel graph partitioner, and the AMG / betweenness-centrality
// applications the paper evaluates.
#pragma once

#include "util/bitvector.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

#include "sparse/coo.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/datasets.hpp"
#include "sparse/dcsc.hpp"
#include "sparse/ewise.hpp"
#include "sparse/generators.hpp"
#include "sparse/mmio.hpp"
#include "sparse/ops.hpp"

#include "kernels/semiring.hpp"
#include "kernels/spgemm_local.hpp"
#include "kernels/spmv.hpp"

#include "runtime/cost_model.hpp"
#include "runtime/machine.hpp"
#include "runtime/stats.hpp"

#include "dist/dist_matrix.hpp"
#include "dist/naive1d.hpp"
#include "dist/redistribute.hpp"
#include "dist/spgemm3d.hpp"
#include "dist/summa2d.hpp"

#include "core/block_fetch.hpp"
#include "core/outer_product.hpp"
#include "core/spgemm1d.hpp"

#include "dist/dist_spgemm.hpp"

#include "runtime/plan_cache.hpp"

#include "dist/batch_spgemm.hpp"

#include "part/partitioner.hpp"
#include "part/permutation.hpp"

#include "apps/amg.hpp"
#include "apps/bc.hpp"
#include "apps/mcl.hpp"
#include "apps/triangle.hpp"
