#include "runtime/fault.hpp"

#include <algorithm>
#include <thread>

#include "util/rng.hpp"

namespace sa1d {

namespace detail {

FaultBarrier::Outcome FaultBarrier::arrive_and_wait() {
  std::unique_lock lk(mu_);
  if (poisoned_) return Outcome::Poisoned;
  if (++arrived_ == expected_) {
    arrived_ = 0;
    ++gen_;
    cv_.notify_all();
    return Outcome::Completed;
  }
  const std::uint64_t g = gen_;
  const auto deadline = std::chrono::steady_clock::now() + watchdog_;
  while (gen_ == g && !poisoned_) {
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout && gen_ == g && !poisoned_) {
      // Watchdog: a participant stopped arriving. Poison so every other
      // waiter wakes too; the caller converts this into a PeerFailure.
      poisoned_ = true;
      cv_.notify_all();
      return Outcome::TimedOut;
    }
  }
  if (gen_ != g) return Outcome::Completed;  // completed before the poison landed
  return Outcome::Poisoned;
}

void FaultBarrier::poison() {
  std::scoped_lock lk(mu_);
  poisoned_ = true;
  cv_.notify_all();
}

void FaultBarrier::reset() {
  std::scoped_lock lk(mu_);
  arrived_ = 0;
  poisoned_ = false;
}

}  // namespace detail

std::shared_ptr<detail::FaultBarrier> FailureHub::make_barrier(int expected) {
  auto bar = std::make_shared<detail::FaultBarrier>(expected, watchdog_);
  std::scoped_lock lk(mu_);
  // Compact dead registrations so long runs with many sub-communicators
  // don't grow the registry without bound.
  std::erase_if(barriers_, [](const std::weak_ptr<detail::FaultBarrier>& w) {
    return w.expired();
  });
  barriers_.push_back(bar);
  return bar;
}

void FailureHub::raise(FaultClass cls, ErrorContext ctx, std::string msg, bool recoverable) {
  std::vector<std::shared_ptr<detail::FaultBarrier>> live;
  {
    std::scoped_lock lk(mu_);
    // First raise wins so every rank reports one coherent fault; a fatal
    // raise upgrades a pending recoverable record (a rank died while the
    // machine was trying to recover — recovery is off the table).
    if (!faulted_ || (recoverable_ && !recoverable)) {
      faulted_ = true;
      recoverable_ = recoverable;
      cls_ = cls;
      ctx_ = std::move(ctx);
      msg_ = std::move(msg);
    }
    live.reserve(barriers_.size());
    for (auto& w : barriers_)
      if (auto b = w.lock()) live.push_back(std::move(b));
    cv_.notify_all();  // recovery waiters must re-examine the record
  }
  for (auto& b : live) b->poison();
}

bool FailureHub::faulted() const {
  std::scoped_lock lk(mu_);
  return faulted_;
}

void FailureHub::throw_fault_locked() const {
  switch (cls_) {
    case FaultClass::Validation: throw ValidationError(ctx_, msg_);
    case FaultClass::Corruption: throw CorruptionDetected(ctx_, msg_);
    case FaultClass::PlanMismatch: throw PlanMismatch(ctx_, msg_);
    case FaultClass::Peer:
    case FaultClass::None: break;
  }
  throw PeerFailure(ctx_, msg_);
}

void FailureHub::throw_fault() const {
  std::scoped_lock lk(mu_);
  throw_fault_locked();
}

void FailureHub::check() const {
  std::scoped_lock lk(mu_);
  if (faulted_) throw_fault_locked();
}

void FailureHub::park_unwind() {
  std::unique_lock lk(mu_);
  ++park_count_;
  if (park_count_ + done_count_ >= n_) {
    park_count_ = 0;
    ++park_gen_;
    cv_.notify_all();
    return;
  }
  const std::uint64_t g = park_gen_;
  const auto deadline = std::chrono::steady_clock::now() + watchdog_;
  while (park_gen_ == g) {
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout && park_gen_ == g) {
      // Best effort: a rank never joined (stuck outside the comm layer, so
      // it is not reading anyone's buffers either). Unwind anyway.
      --park_count_;
      return;
    }
  }
}

void FailureHub::rank_done() {
  std::scoped_lock lk(mu_);
  ++done_count_;
  if (park_count_ > 0 && park_count_ + done_count_ >= n_) {
    park_count_ = 0;
    ++park_gen_;
  }
  cv_.notify_all();
}

void FailureHub::recover() {
  std::unique_lock lk(mu_);
  if (faulted_ && !recoverable_) {
    lk.unlock();
    park_unwind();
    throw_fault();
  }
  if (++rec_arrived_ == n_) {
    faulted_ = false;
    recoverable_ = false;
    cls_ = FaultClass::None;
    ctx_ = {};
    msg_.clear();
    std::vector<std::shared_ptr<detail::FaultBarrier>> live;
    live.reserve(barriers_.size());
    for (auto& w : barriers_)
      if (auto b = w.lock()) live.push_back(std::move(b));
    lk.unlock();
    // Every rank has unwound (they are all inside recover()), so barrier
    // resets cannot race an arrive_and_wait. Reset BEFORE announcing
    // completion: a waiter released early could re-enter a still-poisoned
    // barrier with the fault record already cleared and misread the stale
    // poison as a fresh peer failure.
    for (auto& b : live) b->reset();
    lk.lock();
    rec_arrived_ = 0;
    ++rec_gen_;
    cv_.notify_all();
    return;
  }
  const std::uint64_t g = rec_gen_;
  const auto deadline = std::chrono::steady_clock::now() + watchdog_;
  while (rec_gen_ == g) {
    // A fatal raise while we wait (a rank died instead of joining the
    // recovery) must abort the rendezvous.
    if (faulted_ && !recoverable_) {
      --rec_arrived_;
      lk.unlock();
      park_unwind();
      throw_fault();
    }
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout && rec_gen_ == g) {
      --rec_arrived_;
      lk.unlock();
      park_unwind();
      throw PeerFailure({-1, 0, "recover"},
                        "sa1d: recovery rendezvous timed out — a rank never unwound");
    }
  }
}

FaultPlan FaultPlan::from_seed(std::uint64_t seed, int nranks, int nfaults, std::uint64_t op_lo,
                               std::uint64_t op_hi, const std::vector<FaultKind>& kinds) {
  FaultPlan plan;
  if (nranks <= 0 || nfaults <= 0 || kinds.empty() || op_hi <= op_lo) return plan;
  SplitMix64 g(seed);
  plan.actions.reserve(static_cast<std::size_t>(nfaults));
  for (int i = 0; i < nfaults; ++i) {
    FaultAction a;
    a.kind = kinds[static_cast<std::size_t>(g.below(kinds.size()))];
    a.rank = static_cast<int>(g.below(static_cast<std::uint64_t>(nranks)));
    a.op_index = op_lo + g.below(op_hi - op_lo);
    a.byte_offset = g.below(1u << 20);
    a.xor_mask = static_cast<std::uint8_t>(1 + g.below(255));  // never zero
    a.delay_us = static_cast<int>(g.below(2000));
    plan.actions.push_back(a);
  }
  return plan;
}

void FaultInjector::on_op(int rank, std::uint64_t op_index, const char* opname,
                          FailureHub& hub) {
  for (const auto& a : plan_.actions) {
    if (a.rank != rank || a.op_index != op_index) continue;
    if (a.kind == FaultKind::SlowRank && a.delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(a.delay_us));
    } else if (a.kind == FaultKind::RankAbort) {
      ErrorContext ctx{rank, op_index, opname};
      hub.raise(FaultClass::Peer, ctx,
                "sa1d: rank " + std::to_string(rank) + " aborted during " + opname +
                    " (op " + std::to_string(op_index) + ")",
                /*recoverable=*/false);
      // Quiesce before unwinding: the aborting rank's frames hold exposed
      // windows and published payloads that peers may still be copying.
      hub.park_unwind();
      throw InjectedRankAbort(std::move(ctx), "sa1d: injected rank abort at op " +
                                                  std::to_string(op_index) + " (" + opname +
                                                  ")");
    }
  }
}

bool FaultInjector::maybe_corrupt(int rank, std::uint64_t op_index, void* data,
                                  std::size_t bytes, bool rdma) {
  const FaultKind want = rdma ? FaultKind::RdmaCorrupt : FaultKind::CollectiveCorrupt;
  bool changed = false;
  for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
    const auto& a = plan_.actions[i];
    // Match rank before touching fired_[i]: the flag is only ever written
    // by the action's own victim rank, so checking it last keeps each slot
    // single-threaded (rank threads overlap in here once ops are async).
    if (a.kind != want || a.rank != rank || a.op_index != op_index || fired_[i] != 0) continue;
    if (bytes == 0) continue;  // fire on the first non-empty chunk of the op
    fired_[i] = 1;
    static_cast<unsigned char*>(data)[a.byte_offset % bytes] ^= a.xor_mask;
    changed = true;
  }
  return changed;
}

bool FaultInjector::vetoes(int algo) const {
  return std::any_of(plan_.actions.begin(), plan_.actions.end(), [&](const FaultAction& a) {
    return a.kind == FaultKind::BackendVeto && a.veto_algo == algo;
  });
}

}  // namespace sa1d
