// Per-rank communication and computation accounting. Byte and message
// counts are exact properties of the executed algorithm; times are split
// into measured CPU phases and (separately) model-derived network time.
#pragma once

#include <array>
#include <cstdint>

#include "util/timer.hpp"

namespace sa1d {

/// Phase classification mirroring the paper's Fig 4 breakdown, refined by
/// the inspector–executor split: the one-time planning work (metadata
/// exchange, H∩D masks, block-fetch planning, symbolic analysis) is
/// accounted separately from per-execute bookkeeping, so iterated
/// multiplies can show the plan cost amortizing to zero.
enum class Phase {
  Comp,     // local SpGEMM numeric pass (parallelizable across threads)
  Plan,     // inspector: metadata, needed masks, fetch plan, symbolic pass
  Other,    // per-execute bookkeeping: value copies, DCSC assembly, merges
  Comm,     // time attributed to waiting on communication (modeled + measured)
  Reorder,  // ordering stage: graph partitioning + permutation pack/unpack
};

/// Everything one simulated rank did during a Machine::run.
struct RankReport {
  // Measured thread-CPU seconds per phase.
  double comp_s = 0.0;
  double plan_s = 0.0;
  double other_s = 0.0;
  // Ordering-stage CPU: partitioner runs and permutation pack/unpack (the
  // paper's "permutation time" when it reports 2D/3D with preprocessing).
  // One-shot per plan — replays of a cached permuted plan charge nothing
  // here beyond the inverse value scatter.
  double reorder_s = 0.0;

  // Modeled network seconds, split by whether the rank actually waited for
  // the message or hid it behind useful work. Every received message costs
  // alpha + beta*bytes on the model clock (the same formula as
  // CostModel::comm_seconds, so comm_s + overlap_s always reconciles with
  // the counter-derived total). Blocking ops charge the full message to
  // comm_s; nonblocking ops charge min(model cost, thread-CPU time elapsed
  // between issue and completion) to overlap_s — communication the rank
  // provably covered with its own work — and only the remainder to comm_s.
  double comm_s = 0.0;
  double overlap_s = 0.0;
  // Internal high-water mark of the thread-CPU clock up to which overlap
  // credit has been granted; concurrent in-flight requests cannot claim the
  // same compute window twice. Not a reportable statistic.
  double overlap_mark_s = 0.0;

  // Exact transport counters (receiver side).
  std::uint64_t bytes_inter = 0;  // from ranks on other nodes
  std::uint64_t bytes_intra = 0;  // from ranks on the same node
  std::uint64_t bytes_local = 0;  // self-access (not a network message)
  std::uint64_t msgs_inter = 0;
  std::uint64_t msgs_intra = 0;

  // Sender-side counters for two-sided collectives (allgather/alltoallv/
  // bcast): the per-destination payload this rank injected into the
  // network. One-sided window gets have no active sender, so machine-wide
  // collective sent bytes must equal collective received bytes
  // (bytes_network() - rdma_bytes); test_runtime asserts this invariant.
  std::uint64_t sent_bytes_inter = 0;
  std::uint64_t sent_bytes_intra = 0;
  std::uint64_t sent_msgs_inter = 0;
  std::uint64_t sent_msgs_intra = 0;

  // RDMA-only counters (subset of the above; Figs 5/6 report these).
  std::uint64_t rdma_bytes = 0;
  std::uint64_t rdma_msgs = 0;
  std::uint64_t rdma_bytes_inter = 0;
  std::uint64_t rdma_msgs_inter = 0;

  // Ordinal of communication operations this rank has started (barriers,
  // collectives, window exposes/gets, splits). Not a transport counter —
  // it is the replay coordinate system for fault injection (runtime/
  // fault.hpp): deterministic SPMD programs hit identical (rank, comm_ops)
  // sequences on every run, so a FaultAction at (rank, op_index) is exactly
  // reproducible from a seed.
  std::uint64_t comm_ops = 0;

  // Self-healing replay accounting: times this rank abandoned a cached plan
  // after CorruptionDetected/PlanMismatch, ran the collective recovery
  // rendezvous, and rebuilt (dist/dist_plan.hpp's bounded retry loop).
  std::uint64_t plan_recoveries = 0;

  // Ordinal of top-level iterated entry points (spgemm_dist_cached /
  // spgemm_dist_batched) this rank has started. Read only by the
  // post-recovery alignment vote: recover() proves every rank unwound, not
  // that they unwound from the SAME logical call, and an iterated workload
  // can have one rank faulted mid-call #n while a peer already sits in call
  // #n+1 — each would restart its own call and the collective sequences
  // would desync into a watchdog hang. Comparing these ordinals right after
  // the rendezvous turns that hang into a uniform typed error.
  std::uint64_t toplevel_calls = 0;

  // Inspector–executor reuse accounting, indexed by the Algo enum's integer
  // value (runtime/cost_model.hpp; 0 = Auto counts cached cost-decision
  // reuses, the concrete backends count their plan builds vs. value-only
  // replays). Incremented by DistSpgemmPlan (dist/dist_plan.hpp).
  std::array<std::uint64_t, 5> plan_builds{};
  std::array<std::uint64_t, 5> plan_replays{};

  // Multi-tenant plan-cache accounting (runtime/plan_cache.hpp). Counters
  // are pure functions of the SPMD request sequence — independent of the
  // overlap mode, thread timing, and the cost model — so every rank of a
  // deterministic program reports identical values (the mode-invariance
  // contract test_plan_cache asserts). `cache_bytes_resident` is a gauge:
  // the cache's agreed residency after the last cache operation.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_demotions = 0;  ///< evictions softened to a windowed demote
  std::uint64_t cache_bytes_resident = 0;
  // Per-backend split, indexed like plan_builds (slot 0 = Auto unused).
  std::array<std::uint64_t, 5> cache_hits_by_algo{};
  std::array<std::uint64_t, 5> cache_evictions_by_algo{};

  // Peak-memory gauge (DESIGN.md §13). The execution layer charges its
  // transient triple-shaped allocations — COO accumulators, circulating ring
  // slices, stage-broadcast staging, redistribution receive chunks, merge
  // scratch — as it makes them and releases them as they die; the high-water
  // marks are what DistSpgemmOptions::max_peak_triples budgets against.
  // mem_cur_* are the live gauges, peak_* the high-water since the last
  // outermost budget scope opened (MemGaugeScope resets the peaks to the
  // current level per top-level call, so each DistSpgemmStats reports its
  // own call's peak, not the session maximum). hwm_* are the machine-
  // lifetime high-water marks — never reset by any scope — so a RunReport
  // read after several calls (e.g. a fresh build followed by replays)
  // bounds ALL of them: a budgeted run holds iff hwm_triples ≤ budget.
  std::uint64_t mem_cur_triples = 0;
  std::uint64_t mem_cur_bytes = 0;
  std::uint64_t peak_triples = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t hwm_triples = 0;
  std::uint64_t hwm_bytes = 0;
  // Nesting depth of open MemGaugeScopes: only the outermost scope resets
  // the peaks, so panel sub-calls cannot erase their parent's high water.
  int mem_scope_depth = 0;

  void mem_charge(std::uint64_t triples, std::uint64_t bytes) {
    mem_cur_triples += triples;
    mem_cur_bytes += bytes;
    if (mem_cur_triples > peak_triples) peak_triples = mem_cur_triples;
    if (mem_cur_bytes > peak_bytes) peak_bytes = mem_cur_bytes;
    if (mem_cur_triples > hwm_triples) hwm_triples = mem_cur_triples;
    if (mem_cur_bytes > hwm_bytes) hwm_bytes = mem_cur_bytes;
  }
  void mem_release(std::uint64_t triples, std::uint64_t bytes) {
    mem_cur_triples -= triples < mem_cur_triples ? triples : mem_cur_triples;
    mem_cur_bytes -= bytes < mem_cur_bytes ? bytes : mem_cur_bytes;
  }

  [[nodiscard]] std::uint64_t bytes_network() const { return bytes_inter + bytes_intra; }
  [[nodiscard]] std::uint64_t msgs_network() const { return msgs_inter + msgs_intra; }
  [[nodiscard]] std::uint64_t sent_bytes_network() const {
    return sent_bytes_inter + sent_bytes_intra;
  }
  [[nodiscard]] std::uint64_t sent_msgs_network() const {
    return sent_msgs_inter + sent_msgs_intra;
  }
  /// Receiver-side bytes that arrived through two-sided collectives (the
  /// counterpart of the sent_* counters).
  [[nodiscard]] std::uint64_t coll_bytes_received() const { return bytes_network() - rdma_bytes; }
  [[nodiscard]] std::uint64_t coll_msgs_received() const { return msgs_network() - rdma_msgs; }
};

/// RAII phase timer: accumulates thread-CPU time into the report on exit.
class PhaseScope {
 public:
  PhaseScope(RankReport& r, Phase p) : report_(r), phase_(p) {}
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope() {
    double s = timer_.seconds();
    switch (phase_) {
      case Phase::Comp: report_.comp_s += s; break;
      case Phase::Plan: report_.plan_s += s; break;
      case Phase::Other: report_.other_s += s; break;
      case Phase::Comm: report_.comm_s += s; break;
      case Phase::Reorder: report_.reorder_s += s; break;
    }
  }

 private:
  RankReport& report_;
  Phase phase_;
  CpuTimer timer_;
};

/// RAII peak-gauge scope: the outermost instance resets the high-water
/// marks to the current gauge level, so peak_triples/peak_bytes describe
/// exactly one top-level distributed call (monotone within the call, reset
/// at the next). Nested scopes — panel sub-multiplies, plan builds inside
/// cached entry points — are no-ops, so inner calls accumulate into their
/// parent's peak instead of erasing it.
class MemGaugeScope {
 public:
  explicit MemGaugeScope(RankReport& r) : report_(r) {
    if (report_.mem_scope_depth++ == 0) {
      report_.peak_triples = report_.mem_cur_triples;
      report_.peak_bytes = report_.mem_cur_bytes;
    }
  }
  MemGaugeScope(const MemGaugeScope&) = delete;
  MemGaugeScope& operator=(const MemGaugeScope&) = delete;
  ~MemGaugeScope() { --report_.mem_scope_depth; }

 private:
  RankReport& report_;
};

}  // namespace sa1d
