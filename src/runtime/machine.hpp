// Simulated distributed-memory machine: P ranks, one std::thread each,
// running an SPMD body. Substitutes for MPI + RDMA in this environment
// (see DESIGN.md §1): collectives and passive-target window gets move real
// bytes between rank address spaces and are instrumented exactly; network
// time is derived from those counts by CostModel.
//
// Failure containment (DESIGN.md §9): every barrier is a poisonable,
// watchdog-guarded FaultBarrier registered with a per-run FailureHub. A
// rank that fails raises a typed fault on the hub, which wakes every peer
// blocked in *any* barrier — machine-level or sub-communicator — so the
// machine always unwinds with the same structured error on every surviving
// rank instead of hanging. Before any comm-layer exception propagates, the
// throwing rank parks on the hub's unwind quiesce until every peer has also
// reached a throw path (or finished its body): since zero-copy windows and
// collective slots point into rank-owned memory, unwinding early would free
// buffers a peer's in-flight memcpy is still reading. An optional FaultInjector scripts deterministic
// rank aborts, payload corruption, and stragglers against the comm-op
// counter; opt-in integrity mode checksums every received payload so
// corruption is detected, not silently folded into results. With injection
// and integrity off, every byte/message counter and result is bit-identical
// to the plain runtime.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/cost_model.hpp"
#include "runtime/fault.hpp"
#include "runtime/stats.hpp"
#include "util/common.hpp"
#include "util/timer.hpp"

namespace sa1d {

namespace detail {

struct RawBuf {
  const std::byte* ptr = nullptr;
  std::size_t bytes = 0;
};

/// One in-flight nonblocking operation. The payload is *op-owned*: senders
/// copy (ibcast) or move (ialltoallv) their chunks into this record at
/// issue time, so a receiver never reads rank-owned frames — the ownership
/// discipline that makes the unwind quiesce sound for blocking collectives
/// extends to outstanding requests automatically (a rank that unwinds with
/// requests in flight leaves every published payload alive in the shared
/// record). Ops are keyed by a per-communicator issue sequence number:
/// SPMD bodies issue nonblocking ops in identical order on every rank, so
/// sequence k names the same logical operation everywhere without any
/// extra agreement traffic.
struct AsyncOp {
  explicit AsyncOp(int nranks)
      : posted(static_cast<std::size_t>(nranks), 0),
        keepalive(static_cast<std::size_t>(nranks)),
        chunks(static_cast<std::size_t>(nranks)) {}

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::uint8_t> posted;              // source rank published its payload
  std::vector<std::shared_ptr<void>> keepalive;  // op-owned payload storage per source
  std::vector<std::vector<RawBuf>> chunks;       // chunks[src][dst], views into keepalive
  int finished = 0;                              // participants done (drives GC)
};

/// State shared by all ranks of one communicator.
struct CommShared {
  CommShared(int nranks, FailureHub& hub)
      : n(nranks), bar(hub.make_barrier(nranks)), slots(static_cast<std::size_t>(nranks)),
        split_ck(static_cast<std::size_t>(nranks)) {}

  int n;
  std::shared_ptr<FaultBarrier> bar;
  std::vector<RawBuf> slots;                 // per-rank staging for collectives
  std::vector<std::vector<RawBuf>> windows;  // windows[id][rank]
  std::mutex mu;
  std::map<int, std::shared_ptr<CommShared>> split_groups;
  std::vector<std::pair<int, int>> split_ck;  // (color, key) staging

  // The progress queue of outstanding nonblocking ops, keyed by issue
  // sequence. Entries are created by the first rank to touch a sequence
  // number and unlinked by the last participant to finish it; a rank that
  // unwinds mid-op abandons its entry, which is reclaimed with the
  // communicator (never while a peer could still read it).
  std::mutex async_mu;
  std::map<std::uint64_t, std::shared_ptr<AsyncOp>> async_ops;
};

}  // namespace detail

/// Opaque handle to an exposed RDMA window (collectively created).
class Window {
 public:
  Window() = default;

 private:
  friend class Comm;
  explicit Window(std::size_t id) : id_(id) {}
  std::size_t id_ = static_cast<std::size_t>(-1);
};

/// Handle to one outstanding nonblocking operation (Comm::ibcast, iget).
/// test() is a non-blocking completion attempt; wait() blocks until done.
/// Completion performs the receive-side copy and the modeled-time
/// attribution, so the destination buffer must stay alive until then.
/// Waits are fault-aware exactly like blocking collectives: a fault raised
/// anywhere in the machine wakes the waiter, which parks on the unwind
/// quiesce and rethrows the identical typed error. Move-only (completing a
/// request twice would corrupt the progress queue); destroying an
/// incomplete request abandons the op, which is reclaimed with the
/// communicator — only unwind paths do that.
class CommRequest {
 public:
  CommRequest() = default;
  CommRequest(const CommRequest&) = delete;
  CommRequest& operator=(const CommRequest&) = delete;
  CommRequest(CommRequest&&) = default;
  CommRequest& operator=(CommRequest&&) = default;

  /// True once the operation completed (payload delivered and accounted).
  [[nodiscard]] bool done() const { return poll_ == nullptr; }

  /// Non-blocking completion attempt; returns done().
  bool test() {
    if (poll_ != nullptr && poll_(false)) poll_ = nullptr;
    return poll_ == nullptr;
  }

  /// Blocks until completion (fault-aware, watchdog-bounded).
  void wait() {
    if (poll_ != nullptr) {
      poll_(true);
      poll_ = nullptr;
    }
  }

 private:
  friend class Comm;
  explicit CommRequest(std::function<bool(bool block)> poll) : poll_(std::move(poll)) {}
  std::function<bool(bool block)> poll_;
};

template <typename T>
class AlltoallvRequest;

/// Per-rank communicator handle (the MPI_Comm analogue).
class Comm {
 public:
  Comm(int rank, std::vector<int> global_ranks, std::shared_ptr<detail::CommShared> sh,
       RankReport* report, const CostModel* cost, std::shared_ptr<FailureHub> hub,
       FaultInjector* injector, bool integrity)
      : rank_(rank),
        global_ranks_(std::move(global_ranks)),
        sh_(std::move(sh)),
        report_(report),
        cost_(cost),
        hub_(std::move(hub)),
        inj_(injector),
        integrity_(integrity) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return sh_->n; }
  /// Global (machine-level) rank of a member of this communicator.
  [[nodiscard]] int global_rank(int r) const {
    return global_ranks_[static_cast<std::size_t>(r)];
  }

  /// Accumulates thread-CPU time of the enclosed scope into the given phase.
  [[nodiscard]] PhaseScope phase(Phase p) { return PhaseScope(*report_, p); }
  [[nodiscard]] RankReport& report() { return *report_; }
  /// The machine's cost model (algorithm selection reads α/β from here so
  /// its predictions are coherent with the modeled report times).
  [[nodiscard]] const CostModel& cost() const { return *cost_; }
  /// The run's fault injector (nullptr when no FaultPlan is installed).
  [[nodiscard]] const FaultInjector* injector() const { return inj_; }
  /// True when integrity mode (payload checksums) is on for this run.
  [[nodiscard]] bool integrity() const { return integrity_; }

  void barrier() {
    begin_op("barrier");
    sync();
  }

  /// Raises `cls` on the machine's FailureHub with this rank's context (so
  /// every peer unwinds with the identical typed error instead of hanging)
  /// and throws it here. The containment entry point for rank-local
  /// detections ahead of a collective: corruption, plan mismatches.
  [[noreturn]] void fail(FaultClass cls, const char* op, const std::string& msg,
                         bool recoverable = true) {
    hub_->raise(cls, ErrorContext{global_rank(rank_), report_->comm_ops, op}, msg, recoverable);
    hub_->park_unwind();
    hub_->throw_fault();
  }

  /// Collective, machine-wide recovery rendezvous: clears a recoverable
  /// fault and resets every barrier once all ranks have unwound. Every
  /// machine rank must call this (the self-healing retry loop does).
  void recover() {
    // Outstanding nonblocking ops from before the fault are garbage, and
    // ranks may have issued different numbers of them before unwinding —
    // drop the queue and realign the issue counter so the retry's first
    // issue matches on every rank again. This must happen before the hub
    // rendezvous releases anyone: no rank can be issuing a fresh op (all
    // are unwound, heading here) while the queues are being cleared.
    {
      std::scoped_lock lk(sh_->async_mu);
      sh_->async_ops.clear();
    }
    async_seq_ = 0;
    hub_->recover();
  }

  // ---- collectives -------------------------------------------------------

  /// Gathers one value from each rank; result indexed by rank.
  template <typename T>
  std::vector<T> allgather(const T& mine) {
    const std::uint64_t op = begin_op("allgather");
    publish(&mine, sizeof(T));
    for (int p = 0; p < size(); ++p)
      if (p != rank_) record_send(p, sizeof(T));
    sync();
    std::vector<T> out(static_cast<std::size_t>(size()));
    for (int p = 0; p < size(); ++p) {
      std::memcpy(&out[static_cast<std::size_t>(p)], sh_->slots[static_cast<std::size_t>(p)].ptr,
                  sizeof(T));
      if (p != rank_)
        post_copy("allgather", op, p, sh_->slots[static_cast<std::size_t>(p)].ptr,
                  &out[static_cast<std::size_t>(p)], sizeof(T), /*rdma=*/false);
      record_recv(p, sizeof(T));
    }
    sync();
    return out;
  }

  /// Gathers a variable-length array from each rank.
  template <typename T>
  std::vector<std::vector<T>> allgatherv(std::span<const T> mine) {
    const std::uint64_t op = begin_op("allgatherv");
    publish(mine.data(), mine.size_bytes());
    for (int p = 0; p < size(); ++p)
      if (p != rank_) record_send(p, mine.size_bytes());
    sync();
    std::vector<std::vector<T>> out(static_cast<std::size_t>(size()));
    for (int p = 0; p < size(); ++p) {
      const auto& b = sh_->slots[static_cast<std::size_t>(p)];
      out[static_cast<std::size_t>(p)].resize(b.bytes / sizeof(T));
      if (b.bytes > 0) {
        std::memcpy(out[static_cast<std::size_t>(p)].data(), b.ptr, b.bytes);
        if (p != rank_)
          post_copy("allgatherv", op, p, b.ptr, out[static_cast<std::size_t>(p)].data(),
                    b.bytes, /*rdma=*/false);
      }
      record_recv(p, b.bytes);
    }
    sync();
    return out;
  }

  /// allgatherv with results concatenated in rank order.
  template <typename T>
  std::vector<T> allgatherv_concat(std::span<const T> mine) {
    auto parts = allgatherv(mine);
    std::vector<T> out;
    std::size_t total = 0;
    for (const auto& p : parts) total += p.size();
    out.reserve(total);
    for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
    return out;
  }

  /// Personalized all-to-all: send[i] goes to rank i; returns recv[i] from rank i.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(const std::vector<std::vector<T>>& send) {
    require(send.size() == static_cast<std::size_t>(size()), "alltoallv: send.size() != P");
    const std::uint64_t op = begin_op("alltoallv");
    // The staging slot shares a pointer to the whole send table; the bytes
    // field is the *payload* volume (summed per-destination chunks), not the
    // outer vector header size, so volume accounting matches what moves.
    std::size_t payload = 0;
    for (int p = 0; p < size(); ++p) {
      const auto& chunk = send[static_cast<std::size_t>(p)];
      payload += chunk.size() * sizeof(T);
      if (p != rank_ && !chunk.empty()) record_send(p, chunk.size() * sizeof(T));
    }
    publish(&send, payload);
    sync();
    std::vector<std::vector<T>> recv(static_cast<std::size_t>(size()));
    for (int p = 0; p < size(); ++p) {
      const auto* peer_send = static_cast<const std::vector<std::vector<T>>*>(
          static_cast<const void*>(sh_->slots[static_cast<std::size_t>(p)].ptr));
      const auto& chunk = (*peer_send)[static_cast<std::size_t>(rank_)];
      recv[static_cast<std::size_t>(p)] = chunk;
      if (p != rank_ && !chunk.empty()) {
        post_copy("alltoallv", op, p, chunk.data(), recv[static_cast<std::size_t>(p)].data(),
                  chunk.size() * sizeof(T), /*rdma=*/false);
        record_recv(p, chunk.size() * sizeof(T));
      } else if (!chunk.empty()) {
        record_recv(p, chunk.size() * sizeof(T));
      }
    }
    sync();
    return recv;
  }

  /// Broadcast from `root`: non-roots resize and receive.
  template <typename T>
  void bcast(std::vector<T>& data, int root) {
    const std::uint64_t op = begin_op("bcast");
    if (rank_ == root) {
      publish(data.data(), data.size() * sizeof(T));
      for (int p = 0; p < size(); ++p)
        if (p != root) record_send(p, data.size() * sizeof(T));
    }
    sync();
    if (rank_ != root) {
      const auto& b = sh_->slots[static_cast<std::size_t>(root)];
      data.resize(b.bytes / sizeof(T));
      if (b.bytes > 0) {
        std::memcpy(data.data(), b.ptr, b.bytes);
        post_copy("bcast", op, root, b.ptr, data.data(), b.bytes, /*rdma=*/false);
      }
      record_recv(root, b.bytes);
    }
    sync();
  }

  template <typename T, typename Op>
  T allreduce(const T& mine, Op op) {
    auto all = allgather(mine);
    T acc = all[0];
    for (std::size_t i = 1; i < all.size(); ++i) acc = op(acc, all[i]);
    return acc;
  }
  template <typename T>
  T allreduce_sum(const T& mine) {
    return allreduce(mine, [](T a, T b) { return a + b; });
  }
  template <typename T>
  T allreduce_max(const T& mine) {
    return allreduce(mine, [](T a, T b) { return a > b ? a : b; });
  }

  /// Control-plane agreement exchange: every rank publishes a small string
  /// (an error verdict, an options digest) and receives all of them, rank-
  /// indexed. Deliberately *uncounted* — validation/agreement metadata is
  /// not data-plane payload, so enabling it keeps every byte/message
  /// counter bit-identical to the plain runtime. Collective.
  std::vector<std::string> exchange_control(const std::string& mine) {
    begin_op("control");
    publish(mine.data(), mine.size());
    sync();
    std::vector<std::string> out(static_cast<std::size_t>(size()));
    for (int p = 0; p < size(); ++p) {
      const auto& b = sh_->slots[static_cast<std::size_t>(p)];
      out[static_cast<std::size_t>(p)].assign(reinterpret_cast<const char*>(b.ptr), b.bytes);
    }
    sync();
    return out;
  }

  /// Splits into sub-communicators by color; ranks ordered by (key, rank).
  Comm split(int color, int key);

  // ---- passive-target RDMA windows ---------------------------------------

  /// Collectively exposes a local array; every rank must call this.
  /// The buffer must stay alive (and unmodified) until a barrier/collective
  /// separates the last remote get from buffer destruction — the same
  /// discipline MPI_Win_free imposes.
  template <typename T>
  Window expose(std::span<const T> data) {
    begin_op("expose");
    sync();  // entry barrier: no rank can be in get() while the table grows
    if (rank_ == 0) {
      std::scoped_lock lk(sh_->mu);
      sh_->windows.emplace_back(static_cast<std::size_t>(size()));
    }
    sync();
    std::size_t id = sh_->windows.size() - 1;
    sh_->windows[id][static_cast<std::size_t>(rank_)] = {
        reinterpret_cast<const std::byte*>(data.data()), data.size_bytes()};
    sync();
    return Window(id);
  }

  /// Number of T elements in `target`'s exposed window.
  template <typename T>
  [[nodiscard]] index_t window_nelems(const Window& w, int target) const {
    return static_cast<index_t>(
        sh_->windows[w.id_][static_cast<std::size_t>(target)].bytes / sizeof(T));
  }

  /// One-sided get (the MPI_Get analogue): copies `count` elements starting
  /// at `elem_offset` from target's window into dst. Counts as one RDMA
  /// message unless target == self (local access, not a network message).
  template <typename T>
  void get(const Window& w, int target, index_t elem_offset, index_t count, T* dst) {
    const std::uint64_t op = begin_op("rdma_get");
    const auto& b = sh_->windows[w.id_][static_cast<std::size_t>(target)];
    std::size_t off = static_cast<std::size_t>(elem_offset) * sizeof(T);
    std::size_t len = static_cast<std::size_t>(count) * sizeof(T);
    require(off + len <= b.bytes, "Window::get: out of range");
    if (len > 0) std::memcpy(dst, b.ptr + off, len);
    if (target == rank_) {
      report_->bytes_local += len;
    } else {
      if (len > 0) post_copy("rdma_get", op, target, b.ptr + off, dst, len, /*rdma=*/true);
      record_recv(target, len);
      report_->rdma_bytes += len;
      report_->rdma_msgs += 1;
      if (cost_->node_of(global_rank(target)) != cost_->node_of(global_rank(rank_))) {
        report_->rdma_bytes_inter += len;
        report_->rdma_msgs_inter += 1;
      }
    }
  }

  // ---- nonblocking operations --------------------------------------------
  //
  // The overlap engine (DESIGN.md §10). Issue order must be identical on
  // every rank of the communicator (SPMD, like the blocking collectives);
  // completion order is free. Byte/message counters are recorded exactly
  // like the blocking counterparts, so overlap changes *when* time is
  // attributed, never *what* moved: for every received message of modeled
  // cost alpha + beta*bytes, the thread-CPU time the receiver spent between
  // issue and completion (minus windows already credited to other requests)
  // counts as hidden (RankReport::overlap_s) and only the remainder as
  // waited (comm_s).

  /// Nonblocking broadcast from `root`. The root's payload is copied into
  /// the op-owned record at issue, so the root's `data` is free to reuse
  /// immediately; a receiver's `data` is resized and filled at completion
  /// and must stay alive until then.
  template <typename T>
  CommRequest ibcast(std::vector<T>& data, int root) {
    const std::uint64_t op_idx = begin_op("ibcast");
    const std::uint64_t seq = async_seq_++;
    auto op = async_slot(seq);
    if (rank_ == root) {
      auto owned = std::make_shared<std::vector<T>>(data);
      {
        std::scoped_lock lk(op->mu);
        op->keepalive[static_cast<std::size_t>(root)] = owned;
        op->chunks[static_cast<std::size_t>(root)].assign(
            static_cast<std::size_t>(sh_->n),
            detail::RawBuf{reinterpret_cast<const std::byte*>(owned->data()),
                           owned->size() * sizeof(T)});
        op->posted[static_cast<std::size_t>(root)] = 1;
      }
      op->cv.notify_all();
      for (int p = 0; p < size(); ++p)
        if (p != root) record_send(p, data.size() * sizeof(T));
      // The root's side is complete at issue: the payload is op-owned, so
      // its request only has to check in with the progress queue's GC.
      return CommRequest([this, seq, op](bool) {
        async_finish(seq, op);
        return true;
      });
    }
    const double t0 = CpuTimer::now_s();
    return CommRequest([this, seq, op, root, &data, op_idx, t0](bool block) {
      {
        std::unique_lock lk(op->mu);
        if (op->posted[static_cast<std::size_t>(root)] == 0) {
          if (!block && !hub_->faulted()) return false;
          async_wait(lk, *op, "ibcast",
                     [&] { return op->posted[static_cast<std::size_t>(root)] != 0; });
        }
      }
      const detail::RawBuf b =
          op->chunks[static_cast<std::size_t>(root)][static_cast<std::size_t>(rank_)];
      data.resize(b.bytes / sizeof(T));
      if (b.bytes > 0) {
        std::memcpy(data.data(), b.ptr, b.bytes);
        post_copy("ibcast", op_idx, root, b.ptr, data.data(), b.bytes, /*rdma=*/false);
      }
      credit_async(record_recv_counters(root, b.bytes), t0);
      async_finish(seq, op);
      return true;
    });
  }

  /// Nonblocking personalized all-to-all: send[i] goes to rank i. The send
  /// table is *moved* into the op-owned record (sent_chunk() on the returned
  /// handle keeps a stable view of what was sent — the ring backend
  /// multiplies from the slice it just shifted away); each source's chunk is
  /// retrieved with take_from(), so a caller can fold chunks in a
  /// deterministic order while later ones are still in flight. Counters
  /// mirror alltoallv() exactly (empty chunks move no message).
  template <typename T>
  AlltoallvRequest<T> ialltoallv(std::vector<std::vector<T>> send);

  /// Nonblocking one-sided get. The copy itself happens eagerly (the target
  /// is passive and its window immutable for the whole epoch, so there is
  /// no data dependence to defer), but the modeled network time is
  /// attributed at completion: issue a batch, do useful work, then wait —
  /// the work counts as overlap. Counters match get() exactly.
  template <typename T>
  CommRequest iget(const Window& w, int target, index_t elem_offset, index_t count, T* dst) {
    const std::uint64_t op_idx = begin_op("irdma_get");
    const auto& b = sh_->windows[w.id_][static_cast<std::size_t>(target)];
    std::size_t off = static_cast<std::size_t>(elem_offset) * sizeof(T);
    std::size_t len = static_cast<std::size_t>(count) * sizeof(T);
    require(off + len <= b.bytes, "Window::iget: out of range");
    if (len > 0) std::memcpy(dst, b.ptr + off, len);
    if (target == rank_) {
      report_->bytes_local += len;
      return CommRequest([](bool) { return true; });
    }
    if (len > 0) post_copy("irdma_get", op_idx, target, b.ptr + off, dst, len, /*rdma=*/true);
    const double model_s = record_recv_counters(target, len);
    report_->rdma_bytes += len;
    report_->rdma_msgs += 1;
    if (cost_->node_of(global_rank(target)) != cost_->node_of(global_rank(rank_))) {
      report_->rdma_bytes_inter += len;
      report_->rdma_msgs_inter += 1;
    }
    const double t0 = CpuTimer::now_s();
    return CommRequest([this, model_s, t0](bool) {
      credit_async(model_s, t0);
      return true;
    });
  }

 private:
  void publish(const void* p, std::size_t bytes) {
    sh_->slots[static_cast<std::size_t>(rank_)] = {static_cast<const std::byte*>(p), bytes};
  }

  /// Counts one communication op and runs the injector's op hooks (abort,
  /// straggler delay). Returns the op's index in this rank's counter.
  std::uint64_t begin_op(const char* opname) {
    const std::uint64_t idx = report_->comm_ops++;
    if (inj_ != nullptr) inj_->on_op(global_rank(rank_), idx, opname, *hub_);
    return idx;
  }

  /// Post-receive hook: applies scripted corruption to the landed payload,
  /// then (integrity mode) verifies the received bytes against the source —
  /// the simulated analogue of an end-to-end transport checksum. On
  /// mismatch raises Corruption machine-wide and throws CorruptionDetected.
  void post_copy(const char* opname, std::uint64_t op, int from, const void* src, void* dst,
                 std::size_t bytes, bool rdma) {
    if (inj_ != nullptr) inj_->maybe_corrupt(global_rank(rank_), op, dst, bytes, rdma);
    if (integrity_ && fnv1a64(src, bytes) != fnv1a64(dst, bytes)) {
      fail(FaultClass::Corruption, opname,
           "sa1d: payload checksum mismatch in " + std::string(opname) + " (rank " +
               std::to_string(global_rank(rank_)) + " receiving from rank " +
               std::to_string(global_rank(from)) + ", op " + std::to_string(op) + ", " +
               std::to_string(bytes) + " bytes)");
    }
  }

  /// Hub check that quiesces before throwing: with a fault recorded, this
  /// rank is about to unwind frames that hold exposed windows and published
  /// collective payloads — park on the hub's unwind rendezvous until every
  /// peer has stopped copying (parked or finished its body), then throw.
  void check_quiesced() {
    if (hub_->faulted()) {
      hub_->park_unwind();
      hub_->throw_fault();
    }
  }

  /// Deadlock-free rank rendezvous: checks the hub fault record before and
  /// after the barrier, wakes on poison (a fault raised while blocked), and
  /// converts a barrier stuck past the watchdog into a machine-wide
  /// PeerFailure — a rank that throws while peers are blocked (in this or
  /// any sub-communicator barrier) can never hang the machine. Every throw
  /// path quiesces on the hub's unwind rendezvous first so a peer still
  /// mid-copy never reads freed memory.
  void sync() {
    check_quiesced();
    switch (sh_->bar->arrive_and_wait()) {
      case detail::FaultBarrier::Outcome::Completed:
        break;
      case detail::FaultBarrier::Outcome::Poisoned:
        hub_->park_unwind();
        hub_->check();
        // Poison without a hub record (cascade from a timed-out peer whose
        // raise has not landed yet): surface it as a peer failure.
        throw PeerFailure(ErrorContext{global_rank(rank_), report_->comm_ops, "barrier"},
                          "sa1d: a peer rank failed during a collective");
      case detail::FaultBarrier::Outcome::TimedOut:
        hub_->raise(FaultClass::Peer,
                    ErrorContext{global_rank(rank_), report_->comm_ops, "barrier"},
                    "sa1d: barrier watchdog — a rank stopped arriving (stuck or dead peer)",
                    /*recoverable=*/false);
        hub_->park_unwind();
        hub_->throw_fault();
    }
    check_quiesced();
  }

  /// Sender-side accounting for two-sided collectives: the payload bytes
  /// this rank addressed to `to`. Mirrors record_recv so machine-wide
  /// collective sent == collective received, byte for byte and message for
  /// message (the alltoallv regression in test_runtime).
  void record_send(int to, std::size_t bytes) {
    bool same_node = cost_->node_of(global_rank(to)) == cost_->node_of(global_rank(rank_));
    if (same_node) {
      report_->sent_bytes_intra += bytes;
      report_->sent_msgs_intra += 1;
    } else {
      report_->sent_bytes_inter += bytes;
      report_->sent_msgs_inter += 1;
    }
  }

  /// Receiver-side counter accounting; intra/inter split uses *global* rank
  /// ids. Returns the message's modeled network seconds (alpha + beta*bytes
  /// on the matching link class; 0 for self-access) — the same per-message
  /// formula CostModel::comm_seconds sums from the counters, so
  /// comm_s + overlap_s always reconciles with the counter-derived total.
  double record_recv_counters(int from, std::size_t bytes) {
    if (from == rank_) {
      report_->bytes_local += bytes;
      return 0.0;
    }
    const CostParams& p = cost_->params();
    bool same_node = cost_->node_of(global_rank(from)) == cost_->node_of(global_rank(rank_));
    if (same_node) {
      report_->bytes_intra += bytes;
      report_->msgs_intra += 1;
      return p.alpha_intra + p.beta_intra * static_cast<double>(bytes);
    }
    report_->bytes_inter += bytes;
    report_->msgs_inter += 1;
    return p.alpha_inter + p.beta_inter * static_cast<double>(bytes);
  }

  /// Blocking receive: the rank waited for the whole modeled message time.
  void record_recv(int from, std::size_t bytes) {
    report_->comm_s += record_recv_counters(from, bytes);
  }

  /// Attribution for a nonblocking message completing now: thread-CPU time
  /// elapsed since issue (`issue_cpu_s`), minus windows already credited to
  /// other in-flight requests (the overlap_mark_s high-water mark), is work
  /// this rank provably did while the message was in flight — up to the
  /// modeled cost it counts as hidden, the rest as waited.
  void credit_async(double model_s, double issue_cpu_s) {
    if (model_s <= 0.0) return;
    const double now = CpuTimer::now_s();
    const double from =
        issue_cpu_s > report_->overlap_mark_s ? issue_cpu_s : report_->overlap_mark_s;
    double window = now - from;
    if (window < 0.0) window = 0.0;
    const double hidden = window < model_s ? window : model_s;
    report_->overlap_s += hidden;
    report_->comm_s += model_s - hidden;
    report_->overlap_mark_s = from + hidden;
  }

  /// Finds or creates the progress-queue record for nonblocking op `seq`.
  std::shared_ptr<detail::AsyncOp> async_slot(std::uint64_t seq) {
    std::scoped_lock lk(sh_->async_mu);
    auto& slot = sh_->async_ops[seq];
    if (!slot) slot = std::make_shared<detail::AsyncOp>(sh_->n);
    return slot;
  }

  /// Marks this rank's participation in op `seq` complete; the last
  /// finisher unlinks the record. An op only reaches finished == n after
  /// every rank issued and completed it, so an unlink can never race a
  /// late issuer re-creating the same sequence; participants still holding
  /// the shared_ptr keep the payload alive (sent_chunk views stay valid
  /// until their request handle dies).
  void async_finish(std::uint64_t seq, const std::shared_ptr<detail::AsyncOp>& op) {
    bool last = false;
    {
      std::scoped_lock lk(op->mu);
      last = ++op->finished == sh_->n;
    }
    if (last) {
      std::scoped_lock lk(sh_->async_mu);
      sh_->async_ops.erase(seq);
    }
  }

  /// Fault-aware wait on an async op's condition: returns when `pred`
  /// holds; wakes on any machine-wide fault (polled — the op's cv is local,
  /// so the hub cannot signal it directly) and on the watchdog, which
  /// converts a publisher that never arrives into the same machine-wide
  /// PeerFailure a stuck barrier becomes. Every throw path parks on the
  /// unwind quiesce first, exactly like sync().
  template <typename Pred>
  void async_wait(std::unique_lock<std::mutex>& lk, detail::AsyncOp& op, const char* what,
                  Pred&& pred) {
    const auto deadline = std::chrono::steady_clock::now() + hub_->watchdog();
    for (;;) {
      if (pred()) return;
      if (hub_->faulted()) {
        lk.unlock();
        hub_->park_unwind();
        hub_->throw_fault();
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        lk.unlock();
        hub_->raise(FaultClass::Peer,
                    ErrorContext{global_rank(rank_), report_->comm_ops, what},
                    std::string("sa1d: nonblocking ") + what +
                        " watchdog — a peer never published its payload (stuck or dead rank)",
                    /*recoverable=*/false);
        hub_->park_unwind();
        hub_->throw_fault();
      }
      const auto tick = now + std::chrono::milliseconds(2);
      op.cv.wait_until(lk, tick < deadline ? tick : deadline);
    }
  }

  template <typename U>
  friend class AlltoallvRequest;

  int rank_;
  std::vector<int> global_ranks_;
  std::shared_ptr<detail::CommShared> sh_;
  RankReport* report_;
  const CostModel* cost_;
  std::shared_ptr<FailureHub> hub_;
  FaultInjector* inj_;
  bool integrity_;
  // Issue sequence for nonblocking ops on this handle. Per-handle, not
  // per-rank: sub-communicators from split() get their own CommShared and
  // their own counter, so sequences can never collide across communicators.
  std::uint64_t async_seq_ = 0;
};

/// Handle to one outstanding personalized all-to-all (Comm::ialltoallv).
/// Unlike CommRequest, delivery is per source: take_from(p) blocks until
/// rank p published its table, copies out the chunk addressed to this rank
/// and attributes its modeled time (hidden vs waited against the issue
/// point), so a caller can ⊕-fold chunks in a deterministic order while
/// later ones are still in flight. The op finishes when every source has
/// been taken; wait() drains the remainder in rank order. Move-only.
template <typename T>
class AlltoallvRequest {
 public:
  AlltoallvRequest() = default;
  AlltoallvRequest(const AlltoallvRequest&) = delete;
  AlltoallvRequest& operator=(const AlltoallvRequest&) = delete;
  AlltoallvRequest(AlltoallvRequest&&) = default;
  AlltoallvRequest& operator=(AlltoallvRequest&&) = default;

  /// Stable view of this rank's outgoing chunk to `dst` (op-owned memory;
  /// valid while this request handle is alive).
  [[nodiscard]] std::span<const T> sent_chunk(int dst) const {
    const auto& chunk = (*mine_)[static_cast<std::size_t>(dst)];
    return std::span<const T>(chunk.data(), chunk.size());
  }

  /// Blocks until source `src` published, then returns the chunk it
  /// addressed to this rank. Each source may be taken exactly once.
  std::vector<T> take_from(int src) {
    require(comm_ != nullptr, "ialltoallv: take_from on an empty request");
    const auto s = static_cast<std::size_t>(src);
    require(taken_[s] == 0, "ialltoallv: source chunk taken twice");
    std::vector<T> out;
    if (src == comm_->rank_) {
      out = (*mine_)[s];
      if (!out.empty()) comm_->record_recv_counters(src, out.size() * sizeof(T));
    } else {
      {
        std::unique_lock lk(op_->mu);
        if (op_->posted[s] == 0)
          comm_->async_wait(lk, *op_, "ialltoallv", [&] { return op_->posted[s] != 0; });
      }
      const detail::RawBuf b = op_->chunks[s][static_cast<std::size_t>(comm_->rank_)];
      out.resize(b.bytes / sizeof(T));
      if (b.bytes > 0) {
        std::memcpy(out.data(), b.ptr, b.bytes);
        comm_->post_copy("ialltoallv", op_idx_, src, b.ptr, out.data(), b.bytes,
                         /*rdma=*/false);
        comm_->credit_async(comm_->record_recv_counters(src, b.bytes), t0_);
      }
    }
    taken_[s] = 1;
    if (--remaining_ == 0) comm_->async_finish(seq_, op_);
    return out;
  }

  /// Takes (and discards) every source not yet taken, finishing the op.
  void wait() {
    for (int p = 0; remaining_ > 0 && p < static_cast<int>(taken_.size()); ++p)
      if (taken_[static_cast<std::size_t>(p)] == 0) take_from(p);
  }

  [[nodiscard]] bool done() const { return comm_ != nullptr && remaining_ == 0; }

 private:
  friend class Comm;
  Comm* comm_ = nullptr;
  std::shared_ptr<detail::AsyncOp> op_;
  std::shared_ptr<std::vector<std::vector<T>>> mine_;  // the moved-in send table
  std::uint64_t seq_ = 0;
  std::uint64_t op_idx_ = 0;
  double t0_ = 0.0;  // issue timestamp on the thread-CPU clock
  std::vector<std::uint8_t> taken_;
  int remaining_ = 0;
};

template <typename T>
AlltoallvRequest<T> Comm::ialltoallv(std::vector<std::vector<T>> send) {
  require(send.size() == static_cast<std::size_t>(size()), "ialltoallv: send.size() != P");
  const std::uint64_t op_idx = begin_op("ialltoallv");
  const std::uint64_t seq = async_seq_++;
  auto op = async_slot(seq);
  auto owned = std::make_shared<std::vector<std::vector<T>>>(std::move(send));
  {
    std::scoped_lock lk(op->mu);
    op->keepalive[static_cast<std::size_t>(rank_)] = owned;
    auto& row = op->chunks[static_cast<std::size_t>(rank_)];
    row.resize(static_cast<std::size_t>(sh_->n));
    for (int p = 0; p < size(); ++p) {
      const auto& chunk = (*owned)[static_cast<std::size_t>(p)];
      row[static_cast<std::size_t>(p)] = {reinterpret_cast<const std::byte*>(chunk.data()),
                                          chunk.size() * sizeof(T)};
    }
    op->posted[static_cast<std::size_t>(rank_)] = 1;
  }
  op->cv.notify_all();
  for (int p = 0; p < size(); ++p) {
    const auto& chunk = (*owned)[static_cast<std::size_t>(p)];
    if (p != rank_ && !chunk.empty()) record_send(p, chunk.size() * sizeof(T));
  }
  AlltoallvRequest<T> req;
  req.comm_ = this;
  req.op_ = std::move(op);
  req.mine_ = std::move(owned);
  req.seq_ = seq;
  req.op_idx_ = op_idx;
  req.t0_ = CpuTimer::now_s();
  req.taken_.assign(static_cast<std::size_t>(size()), 0);
  req.remaining_ = size();
  return req;
}

/// Result of one Machine::run.
struct RunReport {
  std::vector<RankReport> ranks;
  double wall_s = 0.0;

  [[nodiscard]] std::uint64_t total_bytes_network() const {
    std::uint64_t b = 0;
    for (const auto& r : ranks) b += r.bytes_network();
    return b;
  }
  [[nodiscard]] std::uint64_t total_msgs_network() const {
    std::uint64_t m = 0;
    for (const auto& r : ranks) m += r.msgs_network();
    return m;
  }
  /// Machine-wide collective sent volume; equals total_coll_bytes_received()
  /// on every run (the send/recv mirror invariant).
  [[nodiscard]] std::uint64_t total_sent_bytes() const {
    std::uint64_t b = 0;
    for (const auto& r : ranks) b += r.sent_bytes_network();
    return b;
  }
  [[nodiscard]] std::uint64_t total_sent_msgs() const {
    std::uint64_t m = 0;
    for (const auto& r : ranks) m += r.sent_msgs_network();
    return m;
  }
  [[nodiscard]] std::uint64_t total_coll_bytes_received() const {
    std::uint64_t b = 0;
    for (const auto& r : ranks) b += r.coll_bytes_received();
    return b;
  }
  [[nodiscard]] std::uint64_t total_coll_msgs_received() const {
    std::uint64_t m = 0;
    for (const auto& r : ranks) m += r.coll_msgs_received();
    return m;
  }
  [[nodiscard]] std::uint64_t total_rdma_bytes() const {
    std::uint64_t b = 0;
    for (const auto& r : ranks) b += r.rdma_bytes;
    return b;
  }
  [[nodiscard]] std::uint64_t total_rdma_msgs() const {
    std::uint64_t m = 0;
    for (const auto& r : ranks) m += r.rdma_msgs;
    return m;
  }
};

/// Per-run fault/robustness knobs. Defaults are the zero-overhead plain
/// runtime: no injector, no integrity checksums, a watchdog long enough to
/// never fire on healthy workloads.
struct MachineOptions {
  /// Watchdog: a barrier (or recovery rendezvous) stuck longer than this
  /// converts into a machine-wide PeerFailure instead of hanging.
  std::chrono::milliseconds barrier_timeout{60000};
  /// Checksums every received collective chunk and window get against the
  /// sender's bytes; mismatches raise CorruptionDetected on every rank.
  bool integrity = false;
  /// Scripted faults; empty = no injector is constructed at all.
  FaultPlan faults;
};

/// The simulated machine. Construct with the rank count and cost parameters,
/// then run one or more SPMD bodies. Refitted rates from a cost_params.json
/// named by the SA1D_COST_PARAMS environment variable override the passed
/// parameters (cost_params_from_env), so `bench_local.sh --refit` output
/// feeds back into every run automatically.
class Machine {
 public:
  explicit Machine(int nranks, CostParams cost = {}, MachineOptions opts = {});

  [[nodiscard]] int nranks() const { return n_; }
  [[nodiscard]] const CostModel& cost() const { return cost_; }
  [[nodiscard]] const MachineOptions& options() const { return opts_; }

  /// Runs `body` on every rank (one thread each); rethrows the first rank
  /// exception after all threads joined.
  RunReport run(const std::function<void(Comm&)>& body);

 private:
  int n_;
  CostModel cost_;
  MachineOptions opts_;
};

}  // namespace sa1d
