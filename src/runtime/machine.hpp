// Simulated distributed-memory machine: P ranks, one std::thread each,
// running an SPMD body. Substitutes for MPI + RDMA in this environment
// (see DESIGN.md §1): collectives and passive-target window gets move real
// bytes between rank address spaces and are instrumented exactly; network
// time is derived from those counts by CostModel.
//
// Failure containment (DESIGN.md §9): every barrier is a poisonable,
// watchdog-guarded FaultBarrier registered with a per-run FailureHub. A
// rank that fails raises a typed fault on the hub, which wakes every peer
// blocked in *any* barrier — machine-level or sub-communicator — so the
// machine always unwinds with the same structured error on every surviving
// rank instead of hanging. Before any comm-layer exception propagates, the
// throwing rank parks on the hub's unwind quiesce until every peer has also
// reached a throw path (or finished its body): since zero-copy windows and
// collective slots point into rank-owned memory, unwinding early would free
// buffers a peer's in-flight memcpy is still reading. An optional FaultInjector scripts deterministic
// rank aborts, payload corruption, and stragglers against the comm-op
// counter; opt-in integrity mode checksums every received payload so
// corruption is detected, not silently folded into results. With injection
// and integrity off, every byte/message counter and result is bit-identical
// to the plain runtime.
#pragma once

#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/cost_model.hpp"
#include "runtime/fault.hpp"
#include "runtime/stats.hpp"
#include "util/common.hpp"

namespace sa1d {

namespace detail {

struct RawBuf {
  const std::byte* ptr = nullptr;
  std::size_t bytes = 0;
};

/// State shared by all ranks of one communicator.
struct CommShared {
  CommShared(int nranks, FailureHub& hub)
      : n(nranks), bar(hub.make_barrier(nranks)), slots(static_cast<std::size_t>(nranks)),
        split_ck(static_cast<std::size_t>(nranks)) {}

  int n;
  std::shared_ptr<FaultBarrier> bar;
  std::vector<RawBuf> slots;                 // per-rank staging for collectives
  std::vector<std::vector<RawBuf>> windows;  // windows[id][rank]
  std::mutex mu;
  std::map<int, std::shared_ptr<CommShared>> split_groups;
  std::vector<std::pair<int, int>> split_ck;  // (color, key) staging
};

}  // namespace detail

/// Opaque handle to an exposed RDMA window (collectively created).
class Window {
 public:
  Window() = default;

 private:
  friend class Comm;
  explicit Window(std::size_t id) : id_(id) {}
  std::size_t id_ = static_cast<std::size_t>(-1);
};

/// Per-rank communicator handle (the MPI_Comm analogue).
class Comm {
 public:
  Comm(int rank, std::vector<int> global_ranks, std::shared_ptr<detail::CommShared> sh,
       RankReport* report, const CostModel* cost, std::shared_ptr<FailureHub> hub,
       FaultInjector* injector, bool integrity)
      : rank_(rank),
        global_ranks_(std::move(global_ranks)),
        sh_(std::move(sh)),
        report_(report),
        cost_(cost),
        hub_(std::move(hub)),
        inj_(injector),
        integrity_(integrity) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return sh_->n; }
  /// Global (machine-level) rank of a member of this communicator.
  [[nodiscard]] int global_rank(int r) const {
    return global_ranks_[static_cast<std::size_t>(r)];
  }

  /// Accumulates thread-CPU time of the enclosed scope into the given phase.
  [[nodiscard]] PhaseScope phase(Phase p) { return PhaseScope(*report_, p); }
  [[nodiscard]] RankReport& report() { return *report_; }
  /// The machine's cost model (algorithm selection reads α/β from here so
  /// its predictions are coherent with the modeled report times).
  [[nodiscard]] const CostModel& cost() const { return *cost_; }
  /// The run's fault injector (nullptr when no FaultPlan is installed).
  [[nodiscard]] const FaultInjector* injector() const { return inj_; }
  /// True when integrity mode (payload checksums) is on for this run.
  [[nodiscard]] bool integrity() const { return integrity_; }

  void barrier() {
    begin_op("barrier");
    sync();
  }

  /// Raises `cls` on the machine's FailureHub with this rank's context (so
  /// every peer unwinds with the identical typed error instead of hanging)
  /// and throws it here. The containment entry point for rank-local
  /// detections ahead of a collective: corruption, plan mismatches.
  [[noreturn]] void fail(FaultClass cls, const char* op, const std::string& msg,
                         bool recoverable = true) {
    hub_->raise(cls, ErrorContext{global_rank(rank_), report_->comm_ops, op}, msg, recoverable);
    hub_->park_unwind();
    hub_->throw_fault();
  }

  /// Collective, machine-wide recovery rendezvous: clears a recoverable
  /// fault and resets every barrier once all ranks have unwound. Every
  /// machine rank must call this (the self-healing retry loop does).
  void recover() { hub_->recover(); }

  // ---- collectives -------------------------------------------------------

  /// Gathers one value from each rank; result indexed by rank.
  template <typename T>
  std::vector<T> allgather(const T& mine) {
    const std::uint64_t op = begin_op("allgather");
    publish(&mine, sizeof(T));
    for (int p = 0; p < size(); ++p)
      if (p != rank_) record_send(p, sizeof(T));
    sync();
    std::vector<T> out(static_cast<std::size_t>(size()));
    for (int p = 0; p < size(); ++p) {
      std::memcpy(&out[static_cast<std::size_t>(p)], sh_->slots[static_cast<std::size_t>(p)].ptr,
                  sizeof(T));
      if (p != rank_)
        post_copy("allgather", op, p, sh_->slots[static_cast<std::size_t>(p)].ptr,
                  &out[static_cast<std::size_t>(p)], sizeof(T), /*rdma=*/false);
      record_recv(p, sizeof(T));
    }
    sync();
    return out;
  }

  /// Gathers a variable-length array from each rank.
  template <typename T>
  std::vector<std::vector<T>> allgatherv(std::span<const T> mine) {
    const std::uint64_t op = begin_op("allgatherv");
    publish(mine.data(), mine.size_bytes());
    for (int p = 0; p < size(); ++p)
      if (p != rank_) record_send(p, mine.size_bytes());
    sync();
    std::vector<std::vector<T>> out(static_cast<std::size_t>(size()));
    for (int p = 0; p < size(); ++p) {
      const auto& b = sh_->slots[static_cast<std::size_t>(p)];
      out[static_cast<std::size_t>(p)].resize(b.bytes / sizeof(T));
      if (b.bytes > 0) {
        std::memcpy(out[static_cast<std::size_t>(p)].data(), b.ptr, b.bytes);
        if (p != rank_)
          post_copy("allgatherv", op, p, b.ptr, out[static_cast<std::size_t>(p)].data(),
                    b.bytes, /*rdma=*/false);
      }
      record_recv(p, b.bytes);
    }
    sync();
    return out;
  }

  /// allgatherv with results concatenated in rank order.
  template <typename T>
  std::vector<T> allgatherv_concat(std::span<const T> mine) {
    auto parts = allgatherv(mine);
    std::vector<T> out;
    std::size_t total = 0;
    for (const auto& p : parts) total += p.size();
    out.reserve(total);
    for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
    return out;
  }

  /// Personalized all-to-all: send[i] goes to rank i; returns recv[i] from rank i.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(const std::vector<std::vector<T>>& send) {
    require(send.size() == static_cast<std::size_t>(size()), "alltoallv: send.size() != P");
    const std::uint64_t op = begin_op("alltoallv");
    // The staging slot shares a pointer to the whole send table; the bytes
    // field is the *payload* volume (summed per-destination chunks), not the
    // outer vector header size, so volume accounting matches what moves.
    std::size_t payload = 0;
    for (int p = 0; p < size(); ++p) {
      const auto& chunk = send[static_cast<std::size_t>(p)];
      payload += chunk.size() * sizeof(T);
      if (p != rank_ && !chunk.empty()) record_send(p, chunk.size() * sizeof(T));
    }
    publish(&send, payload);
    sync();
    std::vector<std::vector<T>> recv(static_cast<std::size_t>(size()));
    for (int p = 0; p < size(); ++p) {
      const auto* peer_send = static_cast<const std::vector<std::vector<T>>*>(
          static_cast<const void*>(sh_->slots[static_cast<std::size_t>(p)].ptr));
      const auto& chunk = (*peer_send)[static_cast<std::size_t>(rank_)];
      recv[static_cast<std::size_t>(p)] = chunk;
      if (p != rank_ && !chunk.empty()) {
        post_copy("alltoallv", op, p, chunk.data(), recv[static_cast<std::size_t>(p)].data(),
                  chunk.size() * sizeof(T), /*rdma=*/false);
        record_recv(p, chunk.size() * sizeof(T));
      } else if (!chunk.empty()) {
        record_recv(p, chunk.size() * sizeof(T));
      }
    }
    sync();
    return recv;
  }

  /// Broadcast from `root`: non-roots resize and receive.
  template <typename T>
  void bcast(std::vector<T>& data, int root) {
    const std::uint64_t op = begin_op("bcast");
    if (rank_ == root) {
      publish(data.data(), data.size() * sizeof(T));
      for (int p = 0; p < size(); ++p)
        if (p != root) record_send(p, data.size() * sizeof(T));
    }
    sync();
    if (rank_ != root) {
      const auto& b = sh_->slots[static_cast<std::size_t>(root)];
      data.resize(b.bytes / sizeof(T));
      if (b.bytes > 0) {
        std::memcpy(data.data(), b.ptr, b.bytes);
        post_copy("bcast", op, root, b.ptr, data.data(), b.bytes, /*rdma=*/false);
      }
      record_recv(root, b.bytes);
    }
    sync();
  }

  template <typename T, typename Op>
  T allreduce(const T& mine, Op op) {
    auto all = allgather(mine);
    T acc = all[0];
    for (std::size_t i = 1; i < all.size(); ++i) acc = op(acc, all[i]);
    return acc;
  }
  template <typename T>
  T allreduce_sum(const T& mine) {
    return allreduce(mine, [](T a, T b) { return a + b; });
  }
  template <typename T>
  T allreduce_max(const T& mine) {
    return allreduce(mine, [](T a, T b) { return a > b ? a : b; });
  }

  /// Control-plane agreement exchange: every rank publishes a small string
  /// (an error verdict, an options digest) and receives all of them, rank-
  /// indexed. Deliberately *uncounted* — validation/agreement metadata is
  /// not data-plane payload, so enabling it keeps every byte/message
  /// counter bit-identical to the plain runtime. Collective.
  std::vector<std::string> exchange_control(const std::string& mine) {
    begin_op("control");
    publish(mine.data(), mine.size());
    sync();
    std::vector<std::string> out(static_cast<std::size_t>(size()));
    for (int p = 0; p < size(); ++p) {
      const auto& b = sh_->slots[static_cast<std::size_t>(p)];
      out[static_cast<std::size_t>(p)].assign(reinterpret_cast<const char*>(b.ptr), b.bytes);
    }
    sync();
    return out;
  }

  /// Splits into sub-communicators by color; ranks ordered by (key, rank).
  Comm split(int color, int key);

  // ---- passive-target RDMA windows ---------------------------------------

  /// Collectively exposes a local array; every rank must call this.
  /// The buffer must stay alive (and unmodified) until a barrier/collective
  /// separates the last remote get from buffer destruction — the same
  /// discipline MPI_Win_free imposes.
  template <typename T>
  Window expose(std::span<const T> data) {
    begin_op("expose");
    sync();  // entry barrier: no rank can be in get() while the table grows
    if (rank_ == 0) {
      std::scoped_lock lk(sh_->mu);
      sh_->windows.emplace_back(static_cast<std::size_t>(size()));
    }
    sync();
    std::size_t id = sh_->windows.size() - 1;
    sh_->windows[id][static_cast<std::size_t>(rank_)] = {
        reinterpret_cast<const std::byte*>(data.data()), data.size_bytes()};
    sync();
    return Window(id);
  }

  /// Number of T elements in `target`'s exposed window.
  template <typename T>
  [[nodiscard]] index_t window_nelems(const Window& w, int target) const {
    return static_cast<index_t>(
        sh_->windows[w.id_][static_cast<std::size_t>(target)].bytes / sizeof(T));
  }

  /// One-sided get (the MPI_Get analogue): copies `count` elements starting
  /// at `elem_offset` from target's window into dst. Counts as one RDMA
  /// message unless target == self (local access, not a network message).
  template <typename T>
  void get(const Window& w, int target, index_t elem_offset, index_t count, T* dst) {
    const std::uint64_t op = begin_op("rdma_get");
    const auto& b = sh_->windows[w.id_][static_cast<std::size_t>(target)];
    std::size_t off = static_cast<std::size_t>(elem_offset) * sizeof(T);
    std::size_t len = static_cast<std::size_t>(count) * sizeof(T);
    require(off + len <= b.bytes, "Window::get: out of range");
    if (len > 0) std::memcpy(dst, b.ptr + off, len);
    if (target == rank_) {
      report_->bytes_local += len;
    } else {
      if (len > 0) post_copy("rdma_get", op, target, b.ptr + off, dst, len, /*rdma=*/true);
      record_recv(target, len);
      report_->rdma_bytes += len;
      report_->rdma_msgs += 1;
      if (cost_->node_of(global_rank(target)) != cost_->node_of(global_rank(rank_))) {
        report_->rdma_bytes_inter += len;
        report_->rdma_msgs_inter += 1;
      }
    }
  }

 private:
  void publish(const void* p, std::size_t bytes) {
    sh_->slots[static_cast<std::size_t>(rank_)] = {static_cast<const std::byte*>(p), bytes};
  }

  /// Counts one communication op and runs the injector's op hooks (abort,
  /// straggler delay). Returns the op's index in this rank's counter.
  std::uint64_t begin_op(const char* opname) {
    const std::uint64_t idx = report_->comm_ops++;
    if (inj_ != nullptr) inj_->on_op(global_rank(rank_), idx, opname, *hub_);
    return idx;
  }

  /// Post-receive hook: applies scripted corruption to the landed payload,
  /// then (integrity mode) verifies the received bytes against the source —
  /// the simulated analogue of an end-to-end transport checksum. On
  /// mismatch raises Corruption machine-wide and throws CorruptionDetected.
  void post_copy(const char* opname, std::uint64_t op, int from, const void* src, void* dst,
                 std::size_t bytes, bool rdma) {
    if (inj_ != nullptr) inj_->maybe_corrupt(global_rank(rank_), op, dst, bytes, rdma);
    if (integrity_ && fnv1a64(src, bytes) != fnv1a64(dst, bytes)) {
      fail(FaultClass::Corruption, opname,
           "sa1d: payload checksum mismatch in " + std::string(opname) + " (rank " +
               std::to_string(global_rank(rank_)) + " receiving from rank " +
               std::to_string(global_rank(from)) + ", op " + std::to_string(op) + ", " +
               std::to_string(bytes) + " bytes)");
    }
  }

  /// Hub check that quiesces before throwing: with a fault recorded, this
  /// rank is about to unwind frames that hold exposed windows and published
  /// collective payloads — park on the hub's unwind rendezvous until every
  /// peer has stopped copying (parked or finished its body), then throw.
  void check_quiesced() {
    if (hub_->faulted()) {
      hub_->park_unwind();
      hub_->throw_fault();
    }
  }

  /// Deadlock-free rank rendezvous: checks the hub fault record before and
  /// after the barrier, wakes on poison (a fault raised while blocked), and
  /// converts a barrier stuck past the watchdog into a machine-wide
  /// PeerFailure — a rank that throws while peers are blocked (in this or
  /// any sub-communicator barrier) can never hang the machine. Every throw
  /// path quiesces on the hub's unwind rendezvous first so a peer still
  /// mid-copy never reads freed memory.
  void sync() {
    check_quiesced();
    switch (sh_->bar->arrive_and_wait()) {
      case detail::FaultBarrier::Outcome::Completed:
        break;
      case detail::FaultBarrier::Outcome::Poisoned:
        hub_->park_unwind();
        hub_->check();
        // Poison without a hub record (cascade from a timed-out peer whose
        // raise has not landed yet): surface it as a peer failure.
        throw PeerFailure(ErrorContext{global_rank(rank_), report_->comm_ops, "barrier"},
                          "sa1d: a peer rank failed during a collective");
      case detail::FaultBarrier::Outcome::TimedOut:
        hub_->raise(FaultClass::Peer,
                    ErrorContext{global_rank(rank_), report_->comm_ops, "barrier"},
                    "sa1d: barrier watchdog — a rank stopped arriving (stuck or dead peer)",
                    /*recoverable=*/false);
        hub_->park_unwind();
        hub_->throw_fault();
    }
    check_quiesced();
  }

  /// Sender-side accounting for two-sided collectives: the payload bytes
  /// this rank addressed to `to`. Mirrors record_recv so machine-wide
  /// collective sent == collective received, byte for byte and message for
  /// message (the alltoallv regression in test_runtime).
  void record_send(int to, std::size_t bytes) {
    bool same_node = cost_->node_of(global_rank(to)) == cost_->node_of(global_rank(rank_));
    if (same_node) {
      report_->sent_bytes_intra += bytes;
      report_->sent_msgs_intra += 1;
    } else {
      report_->sent_bytes_inter += bytes;
      report_->sent_msgs_inter += 1;
    }
  }

  /// Receiver-side accounting; intra/inter split uses *global* rank ids.
  void record_recv(int from, std::size_t bytes) {
    if (from == rank_) {
      report_->bytes_local += bytes;
      return;
    }
    bool same_node = cost_->node_of(global_rank(from)) == cost_->node_of(global_rank(rank_));
    if (same_node) {
      report_->bytes_intra += bytes;
      report_->msgs_intra += 1;
    } else {
      report_->bytes_inter += bytes;
      report_->msgs_inter += 1;
    }
  }

  int rank_;
  std::vector<int> global_ranks_;
  std::shared_ptr<detail::CommShared> sh_;
  RankReport* report_;
  const CostModel* cost_;
  std::shared_ptr<FailureHub> hub_;
  FaultInjector* inj_;
  bool integrity_;
};

/// Result of one Machine::run.
struct RunReport {
  std::vector<RankReport> ranks;
  double wall_s = 0.0;

  [[nodiscard]] std::uint64_t total_bytes_network() const {
    std::uint64_t b = 0;
    for (const auto& r : ranks) b += r.bytes_network();
    return b;
  }
  [[nodiscard]] std::uint64_t total_msgs_network() const {
    std::uint64_t m = 0;
    for (const auto& r : ranks) m += r.msgs_network();
    return m;
  }
  /// Machine-wide collective sent volume; equals total_coll_bytes_received()
  /// on every run (the send/recv mirror invariant).
  [[nodiscard]] std::uint64_t total_sent_bytes() const {
    std::uint64_t b = 0;
    for (const auto& r : ranks) b += r.sent_bytes_network();
    return b;
  }
  [[nodiscard]] std::uint64_t total_sent_msgs() const {
    std::uint64_t m = 0;
    for (const auto& r : ranks) m += r.sent_msgs_network();
    return m;
  }
  [[nodiscard]] std::uint64_t total_coll_bytes_received() const {
    std::uint64_t b = 0;
    for (const auto& r : ranks) b += r.coll_bytes_received();
    return b;
  }
  [[nodiscard]] std::uint64_t total_coll_msgs_received() const {
    std::uint64_t m = 0;
    for (const auto& r : ranks) m += r.coll_msgs_received();
    return m;
  }
  [[nodiscard]] std::uint64_t total_rdma_bytes() const {
    std::uint64_t b = 0;
    for (const auto& r : ranks) b += r.rdma_bytes;
    return b;
  }
  [[nodiscard]] std::uint64_t total_rdma_msgs() const {
    std::uint64_t m = 0;
    for (const auto& r : ranks) m += r.rdma_msgs;
    return m;
  }
};

/// Per-run fault/robustness knobs. Defaults are the zero-overhead plain
/// runtime: no injector, no integrity checksums, a watchdog long enough to
/// never fire on healthy workloads.
struct MachineOptions {
  /// Watchdog: a barrier (or recovery rendezvous) stuck longer than this
  /// converts into a machine-wide PeerFailure instead of hanging.
  std::chrono::milliseconds barrier_timeout{60000};
  /// Checksums every received collective chunk and window get against the
  /// sender's bytes; mismatches raise CorruptionDetected on every rank.
  bool integrity = false;
  /// Scripted faults; empty = no injector is constructed at all.
  FaultPlan faults;
};

/// The simulated machine. Construct with the rank count and cost parameters,
/// then run one or more SPMD bodies. Refitted rates from a cost_params.json
/// named by the SA1D_COST_PARAMS environment variable override the passed
/// parameters (cost_params_from_env), so `bench_local.sh --refit` output
/// feeds back into every run automatically.
class Machine {
 public:
  explicit Machine(int nranks, CostParams cost = {}, MachineOptions opts = {});

  [[nodiscard]] int nranks() const { return n_; }
  [[nodiscard]] const CostModel& cost() const { return cost_; }
  [[nodiscard]] const MachineOptions& options() const { return opts_; }

  /// Runs `body` on every rank (one thread each); rethrows the first rank
  /// exception after all threads joined.
  RunReport run(const std::function<void(Comm&)>& body);

 private:
  int n_;
  CostModel cost_;
  MachineOptions opts_;
};

}  // namespace sa1d
