// α–β network cost model: converts the runtime's exact byte/message counts
// into modeled communication time. Defaults approximate one Slingshot-11
// NIC per node as on NERSC Perlmutter (the paper's testbed).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/stats.hpp"
#include "util/common.hpp"

namespace sa1d {

struct CostParams {
  double alpha_inter = 2.0e-6;      ///< per-message latency across nodes (s)
  double beta_inter = 1.0 / 24e9;   ///< inverse bandwidth across nodes (s/byte)
  double alpha_intra = 4.0e-7;      ///< per-message latency within a node (s)
  double beta_intra = 1.0 / 100e9;  ///< inverse bandwidth within a node (s/byte)
  int ranks_per_node = 16;          ///< rank→node mapping for intra/inter split

  // Compute-rate constants for CostModel::predict. The defaults approximate
  // the recorded microbench numbers (EXPERIMENTS.md); calibrate_cost_params()
  // in dist/dist_spgemm.hpp measures them on the current host so Auto's
  // predictions live in the same unit system as the measured phase times.
  double flop_s = 6.0e-9;    ///< seconds per local SpGEMM flop (numeric pass)
  double triple_s = 3.0e-8;  ///< seconds per COO triple packed/routed/merged

  // Fitted correction terms (scripts/fit_cost_params.py; defaults are the
  // identity so unfitted runs predict exactly as before).
  /// Fraction of a backend's modeled comm time hidden behind compute when
  /// overlapped execution is on (AlgoCostInputs::overlap). Fit from the
  /// measured overlap-efficiency series in BENCH_dist_backends.json.
  double overlap_discount = 0.0;
  /// Multiplier mapping the analytic even-split imbalance of the grid
  /// backends onto the *measured* per-backend max/mean imbalance the
  /// benches record — the previously unfit unpermuted-2D imbalance term.
  double imb_scale = 1.0;
};

/// Overwrites the fields of `p` that appear as "key": number pairs in the
/// JSON file at `path` (the cost_params.json scripts/fit_cost_params.py
/// writes). Returns false when the file cannot be read; unknown keys are
/// ignored, missing keys keep their current values.
bool load_cost_params(const char* path, CostParams& p);

/// The online-refit hook: returns `base` with any overrides from the file
/// named by the SA1D_COST_PARAMS environment variable applied. Machine
/// applies this at construction, closing the bench_local.sh --refit loop —
/// fitted rates flow into every subsequent run without hand-editing.
CostParams cost_params_from_env(CostParams base);

/// The distributed SpGEMM backends spgemm_dist dispatches over. Auto asks
/// CostModel::predict to rank the concrete four and runs the winner.
enum class Algo { Auto, SparseAware1D, Ring1D, Summa2D, Split3D };

inline const char* algo_name(Algo a) {
  switch (a) {
    case Algo::Auto: return "auto";
    case Algo::SparseAware1D: return "sa1d";
    case Algo::Ring1D: return "ring1d";
    case Algo::Summa2D: return "summa2d";
    case Algo::Split3D: return "split3d";
  }
  return "?";
}

/// Column/row orderings the dispatch can run a multiply under — the reorder
/// plan stage of DESIGN.md §12. Auto is a *policy* value
/// (DistSpgemmOptions::reorder): price every backend under all three and
/// pick jointly; a chosen/predicted ordering is never Auto.
enum class Ordering { Identity, Partitioned, Random, Auto };

inline const char* ordering_name(Ordering o) {
  switch (o) {
    case Ordering::Identity: return "identity";
    case Ordering::Partitioned: return "partitioned";
    case Ordering::Random: return "random";
    case Ordering::Auto: return "auto";
  }
  return "?";
}

/// Cheap structural statistics of one distributed multiply C = A·B, gathered
/// from replicated metadata before any algorithm runs (gather_algo_cost_inputs
/// in dist/dist_spgemm.hpp). Everything here is a global aggregate, so every
/// rank derives the identical Auto decision from its own copy.
struct AlgoCostInputs {
  int P = 1;            ///< communicator size
  int threads = 1;      ///< simulated threads per rank
  int layers = 1;       ///< Split3D layer count the prediction assumes
  int grid_rows = 0;    ///< pinned process-grid rows (0 = nearest-square auto)
  int grid_cols = 0;    ///< pinned process-grid columns (0 = auto)
  index_t m = 0;        ///< rows of A / C
  index_t k = 0;        ///< inner dimension
  index_t n = 0;        ///< columns of B / C
  std::uint64_t nnz_a = 0;
  std::uint64_t nnz_b = 0;
  std::uint64_t nzc_a = 0;              ///< nonzero columns of A (metadata volume)
  std::uint64_t flops = 0;              ///< structural multiply count, global
  std::uint64_t max_rank_flops = 0;     ///< max per-rank flops under B's 1D layout
  std::uint64_t max_rank_nnz_a = 0;     ///< max per-rank nnz(A) under its 1D layout
  std::uint64_t max_rank_nnz_b = 0;     ///< max per-rank nnz(B) under its 1D layout
  std::uint64_t sa1d_fetch_elems = 0;   ///< planned remote fetch volume (elements)
  std::uint64_t sa1d_fetch_msgs = 0;    ///< planned RDMA block fetches
  std::uint64_t max_rank_fetch_elems = 0;  ///< max per-rank planned fetch volume
  double needed_fraction = 1.0;         ///< avg |H∩D| / nzc over remote pairs
  /// Peak-triples budget the prediction must respect
  /// (DistSpgemmOptions::max_peak_triples; 0 = unbounded). predict() marks a
  /// backend infeasible when its modeled per-rank peak exceeds this at every
  /// panel count, else prices the smallest feasible panelization.
  std::uint64_t max_peak_triples = 0;
  /// Column-panel count to price: 0 = resolve (smallest feasible under the
  /// budget, 1 when unbudgeted); >= 1 prices exactly that panelization.
  int panels = 0;
  std::size_t value_bytes = sizeof(double);
  std::size_t index_bytes = sizeof(index_t);
  /// Whether execution overlaps communication with compute (the
  /// DistSpgemmOptions::overlap switch); applies CostParams::overlap_discount
  /// to the comm term of every backend prediction.
  bool overlap = true;
  /// Multiplies expected to share each replay's collective rounds
  /// (DistSpgemmOptions::expected_batch): the batched executor
  /// (dist/batch_spgemm.hpp) concatenates k members' payloads into one
  /// message per phase, so predict_replay divides the per-message latency
  /// (alpha) terms by `batch` while the volume (beta) terms are unchanged.
  int batch = 1;

  // Ordering features (the reorder plan stage, part/reorder.hpp;
  // DESIGN.md §12). `ordering` names the ordering this prediction prices:
  // Identity leaves every term as measured; Partitioned substitutes the
  // measured part-weight imbalance for the analytic even-split term and
  // discounts fetch/broadcast volume by the cut fraction; Random levels the
  // flop skew but pays worst-case fetch volume. Non-identity orderings add
  // a one-shot reorder cost (partition time + permute alltoallv volume)
  // that predict_replay zeroes, so horizon pricing amortizes it over
  // expected_iterations.
  Ordering ordering = Ordering::Identity;
  double reorder_cut_fraction = 1.0;     ///< cut edge weight / total edge weight
  double reorder_part_imbalance = 1.0;   ///< measured max/mean part weight
  double reorder_seconds = 0.0;          ///< measured partitioner CPU (rank-uniform max)
  std::uint64_t reorder_move_elems = 0;  ///< operand triples the forward permutes move
};

/// Modeled per-rank seconds for one backend on one AlgoCostInputs.
/// The compute terms are linear in the CostParams rates —
/// comp_s = flop_s·comp_coeff and other_s = triple_s·other_coeff — and the
/// coefficients are exposed so accumulated prediction-vs-measured records
/// (BENCH_dist_backends.json) can refit the rates offline
/// (scripts/fit_cost_params.py) instead of one-shot calibration.
struct AlgoPrediction {
  Algo algo = Algo::Auto;
  bool feasible = false;
  const char* note = "";  ///< why infeasible / which layer count was assumed
  int layers = 1;         ///< layer count this prediction assumed (Split3D only ≠ 1)
  /// Ordering this row prices (AlgoCostInputs::ordering at predict time).
  Ordering ordering = Ordering::Identity;
  double comm_s = 0.0;
  double comp_s = 0.0;
  double other_s = 0.0;
  /// One-shot ordering cost (partition + permute movement + first inverse
  /// scatter). Paid by the build only — predict_replay zeroes it, so the
  /// horizon pricing in choose_algo amortizes it over the iteration budget.
  double reorder_s = 0.0;
  double comp_coeff = 0.0;   ///< effective flops: comp_s / CostParams.flop_s
  double other_coeff = 0.0;  ///< effective triples: other_s / CostParams.triple_s
  /// Column-panel count this row prices (1 = monolithic). When the inputs
  /// carry a peak-triples budget and panels = 0, predict() resolves this to
  /// the smallest feasible panelization — the (backend × panelization) cell
  /// Auto ranks jointly.
  int panels = 1;
  /// Modeled per-rank peak transient triples at `panels` (upper bound on
  /// the measured RankReport::peak_triples gauge; 0 = not modeled).
  std::uint64_t peak_triples = 0;
  [[nodiscard]] double total_s() const { return comm_s + comp_s + other_s + reorder_s; }
};

/// Modeled per-rank and aggregate times derived from a RankReport. `plan`
/// is the inspector side of the plan/execute split (metadata, masks,
/// symbolic analysis) — a one-time cost that amortizes across reused
/// executions; `other` is per-execute serial bookkeeping.
struct ModeledTime {
  double comp = 0.0;
  double comm = 0.0;
  double plan = 0.0;
  double other = 0.0;
  [[nodiscard]] double total() const { return comp + comm + plan + other; }
};

class CostModel {
 public:
  explicit CostModel(CostParams p = {}) : p_(p) {}

  [[nodiscard]] const CostParams& params() const { return p_; }

  [[nodiscard]] int node_of(int rank) const { return rank / p_.ranks_per_node; }

  /// Modeled network seconds for the RDMA (window get) traffic only —
  /// the paper's "communication time" component in Fig 4/6/8.
  [[nodiscard]] double rdma_seconds(const RankReport& r) const {
    std::uint64_t intra_msgs = r.rdma_msgs - r.rdma_msgs_inter;
    std::uint64_t intra_bytes = r.rdma_bytes - r.rdma_bytes_inter;
    return p_.alpha_inter * static_cast<double>(r.rdma_msgs_inter) +
           p_.beta_inter * static_cast<double>(r.rdma_bytes_inter) +
           p_.alpha_intra * static_cast<double>(intra_msgs) +
           p_.beta_intra * static_cast<double>(intra_bytes);
  }

  /// Modeled network seconds for one rank's recorded traffic.
  [[nodiscard]] double comm_seconds(const RankReport& r) const {
    return p_.alpha_inter * static_cast<double>(r.msgs_inter) +
           p_.beta_inter * static_cast<double>(r.bytes_inter) +
           p_.alpha_intra * static_cast<double>(r.msgs_intra) +
           p_.beta_intra * static_cast<double>(r.bytes_intra);
  }

  /// Modeled per-rank time. `threads_per_rank` applies the measured-Amdahl
  /// rule from DESIGN.md §5: the Comp phase is parallelizable across
  /// intra-rank threads; Plan and Other are serial; comm is network-bound.
  [[nodiscard]] ModeledTime rank_time(const RankReport& r, int threads_per_rank = 1) const {
    ModeledTime t;
    t.comp = r.comp_s / static_cast<double>(threads_per_rank < 1 ? 1 : threads_per_rank);
    t.plan = r.plan_s;
    t.other = r.other_s;
    t.comm = comm_seconds(r);
    return t;
  }

  /// Bulk-synchronous estimate for the whole run: the slowest rank decides.
  [[nodiscard]] ModeledTime run_time(const std::vector<RankReport>& ranks,
                                     int threads_per_rank = 1) const;

  /// Effective α/β for a random peer pair at communicator size P: a blend of
  /// the intra- and inter-node parameters by the expected cross-node
  /// fraction under the block rank→node mapping.
  [[nodiscard]] double alpha_eff(int P) const;
  [[nodiscard]] double beta_eff(int P) const;

  /// Predicts the per-rank cost of running `algo` on the given structural
  /// inputs (DESIGN.md §7 documents the formulas). `feasible` is false when
  /// the process count cannot form the backend's grid (only possible with a
  /// pinned grid_rows/grid_cols or layer count — every P ≥ 1 factors into
  /// some q_r × q_c grid); Split3D uses `in.layers`. Deterministic in the
  /// inputs, so every rank reaches the same Auto decision without extra
  /// communication.
  [[nodiscard]] AlgoPrediction predict(const AlgoCostInputs& in, Algo algo) const;

  /// Predicts the per-rank cost of *replaying* a cached DistSpgemmPlan of
  /// `algo` on the same structure: zero plan-side work, value-only traffic
  /// (sizeof(VT) per element instead of full triples, one RDMA get per
  /// planned block instead of two, no metadata collectives), numeric-only
  /// local passes. Plan-aware Auto reprices iterated decisions with this
  /// (DESIGN.md §8); deterministic in the inputs like predict().
  [[nodiscard]] AlgoPrediction predict_replay(const AlgoCostInputs& in, Algo algo) const;

  /// Modeled per-rank peak transient triples of one budgeted execution of
  /// `algo` at column-panel count `panels` — the upper bound predict() uses
  /// for budget feasibility (DESIGN.md §13). Exposed so benches can record
  /// the predicted-vs-measured peak series next to the time series.
  [[nodiscard]] std::uint64_t predicted_peak_triples(const AlgoCostInputs& in, Algo algo,
                                                     int panels) const;

  /// The *analytic* (unscaled) even-split max/mean load factor predict()
  /// assumes for `algo` on these inputs: the product of the row- and
  /// column-block imbalances of the process grid for the grid backends,
  /// 1 for the 1D ones. The benches record this next to the measured
  /// imbalance so fit_cost_params.py can fit CostParams::imb_scale.
  [[nodiscard]] double predicted_imbalance(const AlgoCostInputs& in, Algo algo) const;

 private:
  CostParams p_;
};

/// A q_r × q_c process grid (q_r·q_c = P) plus the SUMMA stage count over
/// it: the inner dimension is split into lcm(q_r, q_c) fine blocks so each
/// rank's A piece (stages/cols fine blocks) and B piece (stages/rows fine
/// blocks) stay contiguous — on a square grid this degenerates to the
/// classic q stages of whole-block broadcasts.
struct GridShape {
  int rows = 1;
  int cols = 1;
  int stages = 1;
  friend bool operator==(const GridShape&, const GridShape&) = default;
};

/// Grid-shape helpers shared by the 2D/3D backends, their validation
/// errors, and the cost model's pricing.
/// The q_r × q_c factorization of P: the divisor pair nearest square
/// (rows ≤ cols) unless the caller pins one or both sides. A pinned shape
/// that does not factor P is returned as-is with rows·cols ≠ P — callers
/// validate via require_grid_shape (dist/redistribute.hpp) or treat the
/// prediction as infeasible. Every P ≥ 1 has a valid auto shape (primes get
/// 1 × P).
[[nodiscard]] GridShape summa_grid_shape(int P, int grid_rows = 0, int grid_cols = 0);
/// Layer counts c with P = c·(q_r·q_c): every divisor of P, ascending,
/// since any quotient factors into a rectangular grid.
[[nodiscard]] std::vector<int> valid_layer_counts(int P);
/// True iff P admits a non-degenerate Split-3D layering: some c with
/// 1 < c < P (c = 1 is plain SUMMA, c = P collapses every layer to one
/// rank). Auto and the backend-comparison benches dispatch on this;
/// explicit Algo::Split3D requests may still pin a degenerate count.
[[nodiscard]] bool split3d_has_nontrivial_layers(int P);

}  // namespace sa1d
