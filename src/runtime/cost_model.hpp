// α–β network cost model: converts the runtime's exact byte/message counts
// into modeled communication time. Defaults approximate one Slingshot-11
// NIC per node as on NERSC Perlmutter (the paper's testbed).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/stats.hpp"

namespace sa1d {

struct CostParams {
  double alpha_inter = 2.0e-6;      ///< per-message latency across nodes (s)
  double beta_inter = 1.0 / 24e9;   ///< inverse bandwidth across nodes (s/byte)
  double alpha_intra = 4.0e-7;      ///< per-message latency within a node (s)
  double beta_intra = 1.0 / 100e9;  ///< inverse bandwidth within a node (s/byte)
  int ranks_per_node = 16;          ///< rank→node mapping for intra/inter split
};

/// Modeled per-rank and aggregate times derived from a RankReport. `plan`
/// is the inspector side of the plan/execute split (metadata, masks,
/// symbolic analysis) — a one-time cost that amortizes across reused
/// executions; `other` is per-execute serial bookkeeping.
struct ModeledTime {
  double comp = 0.0;
  double comm = 0.0;
  double plan = 0.0;
  double other = 0.0;
  [[nodiscard]] double total() const { return comp + comm + plan + other; }
};

class CostModel {
 public:
  explicit CostModel(CostParams p = {}) : p_(p) {}

  [[nodiscard]] const CostParams& params() const { return p_; }

  [[nodiscard]] int node_of(int rank) const { return rank / p_.ranks_per_node; }

  /// Modeled network seconds for the RDMA (window get) traffic only —
  /// the paper's "communication time" component in Fig 4/6/8.
  [[nodiscard]] double rdma_seconds(const RankReport& r) const {
    std::uint64_t intra_msgs = r.rdma_msgs - r.rdma_msgs_inter;
    std::uint64_t intra_bytes = r.rdma_bytes - r.rdma_bytes_inter;
    return p_.alpha_inter * static_cast<double>(r.rdma_msgs_inter) +
           p_.beta_inter * static_cast<double>(r.rdma_bytes_inter) +
           p_.alpha_intra * static_cast<double>(intra_msgs) +
           p_.beta_intra * static_cast<double>(intra_bytes);
  }

  /// Modeled network seconds for one rank's recorded traffic.
  [[nodiscard]] double comm_seconds(const RankReport& r) const {
    return p_.alpha_inter * static_cast<double>(r.msgs_inter) +
           p_.beta_inter * static_cast<double>(r.bytes_inter) +
           p_.alpha_intra * static_cast<double>(r.msgs_intra) +
           p_.beta_intra * static_cast<double>(r.bytes_intra);
  }

  /// Modeled per-rank time. `threads_per_rank` applies the measured-Amdahl
  /// rule from DESIGN.md §5: the Comp phase is parallelizable across
  /// intra-rank threads; Plan and Other are serial; comm is network-bound.
  [[nodiscard]] ModeledTime rank_time(const RankReport& r, int threads_per_rank = 1) const {
    ModeledTime t;
    t.comp = r.comp_s / static_cast<double>(threads_per_rank < 1 ? 1 : threads_per_rank);
    t.plan = r.plan_s;
    t.other = r.other_s;
    t.comm = comm_seconds(r);
    return t;
  }

  /// Bulk-synchronous estimate for the whole run: the slowest rank decides.
  [[nodiscard]] ModeledTime run_time(const std::vector<RankReport>& ranks,
                                     int threads_per_rank = 1) const;

 private:
  CostParams p_;
};

}  // namespace sa1d
