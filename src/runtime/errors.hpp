// Structured error taxonomy for the distributed runtime (DESIGN.md §9).
//
// Every failure the runtime can surface is classified, carries the rank and
// communication-op context where it originated, and is raised *consistently*:
// when one rank detects a fault mid-collective, the FailureHub (runtime/
// fault.hpp) wakes every peer and rethrows the identical typed error on all
// of them, so callers can make collective recovery decisions without extra
// agreement rounds.
//
// The concrete errors dual-inherit from the standard exception the legacy
// call sites threw (std::invalid_argument for validation, std::runtime_error
// otherwise) and from the Sa1dError mixin, so both `catch (const Sa1dError&)`
// and pre-existing `catch (const std::invalid_argument&)` handlers keep
// working.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace sa1d {

/// Classification of a runtime fault. `Peer` is what survivors observe when
/// another rank died; the dying rank itself sees the original error (or
/// InjectedRankAbort under fault injection).
enum class FaultClass {
  None,          ///< no fault recorded
  Validation,    ///< bad inputs/options, agreed collectively before any data moves
  Peer,          ///< a peer rank failed (threw, aborted, or stopped arriving)
  Corruption,    ///< integrity mode detected a corrupted payload
  PlanMismatch,  ///< a cached plan's structural assumptions broke during replay
};

[[nodiscard]] inline const char* fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::None: return "none";
    case FaultClass::Validation: return "validation";
    case FaultClass::Peer: return "peer-failure";
    case FaultClass::Corruption: return "corruption";
    case FaultClass::PlanMismatch: return "plan-mismatch";
  }
  return "?";
}

/// Where a fault originated: the (global) rank that first detected it, that
/// rank's communication-op counter at detection (RankReport::comm_ops), and
/// the operation being executed. op_index/-1 default = context unknown.
struct ErrorContext {
  int origin_rank = -1;
  std::uint64_t op_index = 0;
  std::string op;

  friend bool operator==(const ErrorContext&, const ErrorContext&) = default;
};

/// Mixin carried by every structured runtime error. Not derived from
/// std::exception itself — the concrete classes inherit the standard type
/// their legacy call sites threw, plus this interface.
class Sa1dError {
 public:
  Sa1dError(FaultClass cls, ErrorContext ctx) : cls_(cls), ctx_(std::move(ctx)) {}
  virtual ~Sa1dError() = default;

  [[nodiscard]] FaultClass fault_class() const { return cls_; }
  [[nodiscard]] const ErrorContext& context() const { return ctx_; }

 private:
  FaultClass cls_;
  ErrorContext ctx_;
};

/// Input/option validation failure, agreed collectively: spgemm_dist's
/// entry vote guarantees every rank throws this with the identical message
/// before any rank enters a data collective alone.
class ValidationError : public std::invalid_argument, public Sa1dError {
 public:
  ValidationError(ErrorContext ctx, const std::string& msg)
      : std::invalid_argument(msg), Sa1dError(FaultClass::Validation, std::move(ctx)) {}
};

/// Thrown on surviving ranks when a peer rank failed (threw out of the SPMD
/// body, was fault-injected dead, or stopped arriving at barriers long
/// enough for the watchdog to fire).
class PeerFailure : public std::runtime_error, public Sa1dError {
 public:
  PeerFailure()
      : std::runtime_error("sa1d: a peer rank failed during a collective"),
        Sa1dError(FaultClass::Peer, {}) {}
  PeerFailure(ErrorContext ctx, const std::string& msg)
      : std::runtime_error(msg), Sa1dError(FaultClass::Peer, std::move(ctx)) {}
};

/// Integrity mode found a payload whose received bytes do not match the
/// sender's (collective chunk or RDMA window get). Recoverable: cached-plan
/// callers invalidate and rebuild (spgemm_dist_cached's bounded retry).
class CorruptionDetected : public std::runtime_error, public Sa1dError {
 public:
  CorruptionDetected(ErrorContext ctx, const std::string& msg)
      : std::runtime_error(msg), Sa1dError(FaultClass::Corruption, std::move(ctx)) {}
};

/// A cached plan's structural assumptions failed against the operands — a
/// replay was attempted for data the plan was not built for, or a cached
/// route/shell disagrees with an incoming payload. Recoverable by rebuild.
class PlanMismatch : public std::runtime_error, public Sa1dError {
 public:
  PlanMismatch(ErrorContext ctx, const std::string& msg)
      : std::runtime_error(msg), Sa1dError(FaultClass::PlanMismatch, std::move(ctx)) {}
};

/// The exception a fault-injected rank abort throws on the victim rank (the
/// simulated death; peers observe PeerFailure). Classified Peer so harness
/// code can treat the whole cell uniformly.
class InjectedRankAbort : public std::runtime_error, public Sa1dError {
 public:
  InjectedRankAbort(ErrorContext ctx, const std::string& msg)
      : std::runtime_error(msg), Sa1dError(FaultClass::Peer, std::move(ctx)) {}
};

}  // namespace sa1d
