// Deterministic fault injection and failure containment for the simulated
// machine (DESIGN.md §9).
//
// Containment: FaultBarrier replaces std::barrier as the rank rendezvous.
// It can be *poisoned* — every waiter wakes immediately and every future
// arrival returns Poisoned instead of blocking — and it carries a watchdog
// that converts a barrier stuck past a timeout into a poison, so a rank
// that dies while peers are blocked (including inside sub-communicator
// barriers, where the old arrive_and_drop scheme deadlocked) always unwinds
// the whole machine within the timeout. FailureHub owns the machine-wide
// fault record: the first rank to detect a fault raise()s it (class +
// origin context + message), the hub poisons every registered barrier, and
// every other rank's next sync observes the record and throws the
// *identical* typed error (runtime/errors.hpp). Recoverable faults
// (corruption, plan mismatch) can be cleared by a collective recover()
// rendezvous once every rank has unwound — the self-healing retry in
// spgemm_dist_cached builds on this.
//
// Injection: a FaultPlan scripts actions against (victim rank, comm-op
// index) coordinates — rank abort, byte corruption of a collective payload
// or RDMA get, slow-rank delay, backend veto — either explicitly or
// generated from a single seed (replayable). The FaultInjector fires them
// from hooks inside Comm; with no plan installed the hooks are never
// called, so the default machine is byte-for-byte identical to the
// pre-fault-layer runtime.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/errors.hpp"

namespace sa1d {

/// FNV-1a 64-bit over a byte range: the payload checksum of integrity mode
/// (stands in for the NIC/transport CRC a real deployment would verify).
[[nodiscard]] inline std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                                           std::uint64_t h = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace detail {

/// Poisonable, watchdog-guarded rank rendezvous (the std::barrier
/// replacement). All machine and sub-communicator barriers are instances,
/// registered with the FailureHub so a raised fault wakes every waiter.
class FaultBarrier {
 public:
  enum class Outcome { Completed, Poisoned, TimedOut };

  FaultBarrier(int expected, std::chrono::milliseconds watchdog)
      : expected_(expected), watchdog_(watchdog) {}

  /// Blocks until all `expected` participants arrive, the barrier is
  /// poisoned, or the watchdog expires. A timeout poisons the barrier (the
  /// other waiters observe Poisoned) before returning TimedOut.
  Outcome arrive_and_wait();

  /// Wakes all waiters and makes every future arrival return Poisoned.
  void poison();

  /// Restores a clean state. Caller contract: no thread is inside
  /// arrive_and_wait (the FailureHub's recover() rendezvous guarantees
  /// every rank has unwound first).
  void reset();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int expected_;
  int arrived_ = 0;
  std::uint64_t gen_ = 0;
  bool poisoned_ = false;
  std::chrono::milliseconds watchdog_;
};

}  // namespace detail

/// Machine-wide fault record + barrier registry + recovery rendezvous.
/// One per Machine::run, shared by every Comm (and sub-Comm) of that run.
class FailureHub {
 public:
  FailureHub(int nranks, std::chrono::milliseconds watchdog)
      : n_(nranks), watchdog_(watchdog) {}

  [[nodiscard]] int nranks() const { return n_; }
  [[nodiscard]] std::chrono::milliseconds watchdog() const { return watchdog_; }

  /// Creates a barrier wired to this hub's watchdog and registers it for
  /// poison/reset propagation.
  std::shared_ptr<detail::FaultBarrier> make_barrier(int expected);

  /// Records a fault (first raise wins; a fatal raise upgrades a pending
  /// recoverable record) and poisons every registered barrier so blocked
  /// ranks wake. Safe to call from any rank/thread, idempotent.
  void raise(FaultClass cls, ErrorContext ctx, std::string msg, bool recoverable);

  [[nodiscard]] bool faulted() const;
  /// Throws the recorded fault as its typed error. Precondition: faulted().
  [[noreturn]] void throw_fault() const;
  /// Throws the recorded fault if one is raised; otherwise returns.
  void check() const;

  /// Collective over all machine ranks: once every rank has arrived (i.e.
  /// unwound out of the failed operation), clears a *recoverable* fault and
  /// resets every barrier so the retry starts clean. Throws the recorded
  /// fault if it is fatal; times out into PeerFailure if a rank never
  /// arrives (it died or is not participating in recovery).
  void recover();

  /// Unwind quiesce — called from every comm-layer throw path BEFORE the
  /// exception propagates. Blocks until every rank is parked here or has
  /// finished its body, so no rank's stack unwinds (freeing operand
  /// buffers, exposed windows, published payloads) while a peer is still
  /// mid-copy inside a collective or a window get. Watchdog-bounded —
  /// a rank stuck outside the comm layer releases the parkers after the
  /// timeout instead of deadlocking. Never throws.
  void park_unwind();

  /// A rank's SPMD body finished (normally or with its error already
  /// recorded): it will never park again, so don't make parkers wait on it.
  void rank_done();

 private:
  [[noreturn]] void throw_fault_locked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int n_;
  std::chrono::milliseconds watchdog_;

  bool faulted_ = false;
  bool recoverable_ = false;
  FaultClass cls_ = FaultClass::None;
  ErrorContext ctx_;
  std::string msg_;

  std::vector<std::weak_ptr<detail::FaultBarrier>> barriers_;
  int rec_arrived_ = 0;
  std::uint64_t rec_gen_ = 0;
  int park_count_ = 0;   // ranks currently quiescing in park_unwind()
  int done_count_ = 0;   // ranks whose bodies have finished (never reset)
  std::uint64_t park_gen_ = 0;
};

// ---- scripted fault injection ----------------------------------------------

enum class FaultKind {
  RankAbort,          ///< victim rank throws InjectedRankAbort at op k (simulated death)
  CollectiveCorrupt,  ///< flip a byte of the victim's k-th received collective chunk
  RdmaCorrupt,        ///< flip a byte of the victim's k-th op when it is a window get
  SlowRank,           ///< delay the victim at op k (straggler)
  BackendVeto,        ///< dispatch of a backend fails validation on every rank
};

[[nodiscard]] inline const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::RankAbort: return "rank-abort";
    case FaultKind::CollectiveCorrupt: return "collective-corrupt";
    case FaultKind::RdmaCorrupt: return "rdma-corrupt";
    case FaultKind::SlowRank: return "slow-rank";
    case FaultKind::BackendVeto: return "backend-veto";
  }
  return "?";
}

/// One scripted fault. Coordinates are (victim global rank, that rank's
/// comm-op counter RankReport::comm_ops) — deterministic replay coordinates
/// for a deterministic SPMD program. Corruption kinds fire on the first
/// non-empty payload chunk the victim receives during op `op_index`;
/// BackendVeto ignores the coordinates and vetoes `veto_algo` on all ranks.
struct FaultAction {
  FaultKind kind = FaultKind::SlowRank;
  int rank = 0;
  std::uint64_t op_index = 0;
  std::uint64_t byte_offset = 0;        ///< corruption target, mod payload size
  std::uint8_t xor_mask = 0x5A;         ///< corruption pattern (must be nonzero)
  int delay_us = 0;                     ///< SlowRank stall
  int veto_algo = -1;                   ///< BackendVeto: Algo enum value to reject

  friend bool operator==(const FaultAction&, const FaultAction&) = default;
};

/// A replayable script of faults: either hand-written or generated from a
/// single seed (same seed + shape => identical plan, the chaos harness's
/// reproducibility contract).
struct FaultPlan {
  std::vector<FaultAction> actions;

  [[nodiscard]] bool empty() const { return actions.empty(); }

  /// Deterministically generates `nfaults` actions of the given kinds with
  /// victim ranks in [0, nranks) and op indices in [op_lo, op_hi).
  static FaultPlan from_seed(std::uint64_t seed, int nranks, int nfaults,
                             std::uint64_t op_lo, std::uint64_t op_hi,
                             const std::vector<FaultKind>& kinds = {
                                 FaultKind::CollectiveCorrupt, FaultKind::RdmaCorrupt,
                                 FaultKind::SlowRank});
};

/// Fires a FaultPlan's actions from the Comm hooks. One per Machine::run;
/// rank-parallel calls only touch the caller rank's actions, so no
/// synchronization is needed beyond the const plan.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Called at the start of every counted comm op on `rank` (already at
  /// counter value `op_index`). Fires SlowRank (sleeps) and RankAbort
  /// (raises a fatal Peer fault on the hub, then throws InjectedRankAbort).
  void on_op(int rank, std::uint64_t op_index, const char* opname, FailureHub& hub);

  /// Called after a payload lands in `data`; applies a matching corruption
  /// action (at most once per action) and reports whether bytes changed.
  bool maybe_corrupt(int rank, std::uint64_t op_index, void* data, std::size_t bytes,
                     bool rdma);

  /// True when a BackendVeto action targets `algo` (as its enum integer).
  /// Rank-independent by design so every rank takes the same dispatch path.
  [[nodiscard]] bool vetoes(int algo) const;

 private:
  FaultPlan plan_;
  std::vector<std::uint8_t> fired_ = std::vector<std::uint8_t>(plan_.actions.size(), 0);
};

}  // namespace sa1d
