// Multi-tenant LRU plan cache: SpGEMM-as-a-service keeps one DistSpgemmPlan
// per (operand structure, options) tenant behind a byte-budgeted LRU, so a
// serving loop mixing many small multiplies pays each tenant's inspector
// exactly once while total plan residency stays bounded.
//
// Coherence protocol (DESIGN.md §11): the cache is a rank-local object, kept
// consistent across ranks purely by SPMD determinism — every rank sees the
// identical request sequence, so every rank's LRU order, admission sequence
// numbers, and (agreed) residency figures evolve identically. Two collective
// guards make that assumption safe instead of implicit:
//
//   * every lookup votes its verdict ("hit on entry #seq" / "miss") through
//     the *uncounted* control exchange; a divergent vote — a hit on one rank,
//     a miss on another — throws the byte-identical ValidationError on every
//     rank instead of sending ranks into different collective sequences
//     (which would deadlock the machine);
//   * a plan's residency differs per rank (routes are rank-shaped), so the
//     budget accounts the *agreed* max-over-ranks figure, exchanged over the
//     same control plane — zero modeled network time, zero counter noise.
//
// Eviction walks from the LRU tail and is itself deterministic given agreed
// bytes. A Ring1D victim is first *demoted* to a windowed-hop plan
// (RingPlan::demote_to_window — the eviction fallback of ROADMAP item 3):
// it sheds most of its ≈nnz(A) resident indices but stays replayable, and is
// only dropped outright if the cache is still over budget afterwards.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <list>
#include <memory>
#include <string>
#include <utility>

#include "dist/dist_plan.hpp"

namespace sa1d {

/// Snapshot of a PlanCache's lifetime counters. Rank-local, but every
/// counter is a pure function of the SPMD request sequence, so ranks of a
/// deterministic program report identical values.
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t demotions = 0;  ///< evictions softened to a windowed demote
  std::uint64_t bytes_resident = 0;
  std::size_t entries = 0;
};

namespace cachedetail {

/// Collectively agrees on one residency figure for a plan whose footprint
/// differs per rank: the maximum, exchanged over the *uncounted* control
/// plane — a counted allreduce here would add modeled alpha per cache
/// operation and eat the very latency the batched executor amortizes.
inline std::uint64_t agree_max_bytes(Comm& comm, std::uint64_t local) {
  auto all = comm.exchange_control(std::to_string(local));
  std::uint64_t mx = 0;
  for (const auto& s : all)
    mx = std::max<std::uint64_t>(mx, std::strtoull(s.c_str(), nullptr, 10));
  return mx;
}

/// Collective cache-coherence vote: every rank publishes its verdict for the
/// same request; any divergence throws the byte-identical ValidationError on
/// every rank (the rank-consistency contract — never a hang).
inline void vote_uniform(Comm& comm, const std::string& verdict, const char* op) {
  auto all = comm.exchange_control(verdict);
  for (int p = 0; p < comm.size(); ++p) {
    if (all[static_cast<std::size_t>(p)] != all[0])
      throw ValidationError(
          ErrorContext{comm.global_rank(p), comm.report().comm_ops, op},
          std::string(op) + ": plan-cache state diverged across ranks (rank " +
              std::to_string(comm.global_rank(p)) + " votes [" +
              all[static_cast<std::size_t>(p)] + "], rank " +
              std::to_string(comm.global_rank(0)) + " votes [" + all[0] +
              "]); rank-local cache mutation or divergent budgets break the SPMD "
              "determinism the cache relies on — mutate the cache uniformly on every rank");
  }
}

/// Full-fingerprint equality (every field, hashes included) — the cache key
/// comparison. quick_equals is the O(1) prefix; the hashes separate tenants
/// whose slices share dims and counts.
inline bool fp_equal(const StructureFingerprint& x, const StructureFingerprint& y) {
  return x.quick_equals(y) && x.a_hash == y.a_hash && x.b_hash == y.b_hash;
}

}  // namespace cachedetail

/// The multi-tenant plan cache. Rank-local handle (SPMD style); every
/// mutating operation below that takes a Comm is collective in the sense
/// that all ranks must call it for the same request sequence.
template <typename VT, typename SR = PlusTimes<VT>>
class PlanCache {
 public:
  struct Entry {
    StructureFingerprint fp{};
    DistSpgemmOptions opt{};
    std::unique_ptr<DistSpgemmPlan<VT, SR>> plan;
    std::uint64_t bytes = 0;  ///< agreed (max-over-ranks) residency
    std::uint64_t seq = 0;    ///< monotonic admission ordinal (vote digest payload)
    bool pinned = false;      ///< live batch member: immune to eviction
  };

  /// `budget_bytes` = 0 disables eviction; `demote_window` is the hop window
  /// Ring1D victims are demoted to before being dropped (0 = evict directly).
  /// Both must be identical on every rank (the vote digest carries the
  /// budget, so a divergence surfaces as a ValidationError, not a hang).
  explicit PlanCache(std::uint64_t budget_bytes = 0, int demote_window = 2)
      : budget_(budget_bytes), demote_window_(demote_window) {}

  [[nodiscard]] std::uint64_t budget() const { return budget_; }
  /// Retargets the budget (0 disables eviction). Must be called with the
  /// same value on every rank — like the constructor arguments, it is part
  /// of the vote digest, so a divergence surfaces as a ValidationError at
  /// the next request. Enforced lazily at the next admission/batch end.
  void set_budget(std::uint64_t budget_bytes) { budget_ = budget_bytes; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t bytes_resident() const {
    std::uint64_t b = 0;
    for (const auto& e : entries_) b += e.bytes;
    return b;
  }
  [[nodiscard]] PlanCacheStats stats() const {
    return {hits_, misses_, evictions_, demotions_, bytes_resident(), entries_.size()};
  }
  /// MRU-first entry list (front = most recently used); inspection hook.
  [[nodiscard]] const std::list<Entry>& entries() const { return entries_; }

  [[nodiscard]] bool contains(const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                              const DistSpgemmOptions& opt = {}) const {
    const auto fp = detail1d::fingerprint_of(a, b);
    for (const auto& e : entries_)
      if (cachedetail::fp_equal(e.fp, fp) && e.opt == opt) return true;
    return false;
  }

  /// Rank-LOCAL removal — a *test hook* for the coherence guard: dropping an
  /// entry on a subset of ranks makes the next vote diverge, which must
  /// surface as the identical typed ValidationError everywhere, never a
  /// hang. Returns true if an entry was removed on this rank.
  bool erase_local(const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                   const DistSpgemmOptions& opt = {}) {
    const auto fp = detail1d::fingerprint_of(a, b);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (cachedetail::fp_equal(it->fp, fp) && it->opt == opt) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }

  // ---- driver interface (spgemm_dist_cached_mt / spgemm_dist_batched) ----

  /// MRU-order linear scan for a usable entry (full fingerprint + options,
  /// plan actually built). Does not touch the LRU order.
  Entry* find(const StructureFingerprint& fp, const DistSpgemmOptions& opt) {
    for (auto& e : entries_)
      if (cachedetail::fp_equal(e.fp, fp) && e.opt == opt && e.plan != nullptr &&
          !e.plan->empty())
        return &e;
    return nullptr;
  }

  /// Moves `e` to the MRU position. (std::list: pointers stay valid.)
  void touch(Entry* e) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (&*it == e) {
        entries_.splice(entries_.begin(), entries_, it);
        return;
      }
    }
  }

  /// Admits a new MRU entry with an empty plan for the caller to build.
  Entry& admit(const StructureFingerprint& fp, const DistSpgemmOptions& opt) {
    entries_.push_front(
        Entry{fp, opt, std::make_unique<DistSpgemmPlan<VT, SR>>(), 0, next_seq_++, false});
    return entries_.front();
  }

  /// Removes a specific entry (e.g. after its build threw, so a dead empty
  /// entry cannot linger in the LRU). Errors unwind machine-wide, so every
  /// rank erases the same entry.
  void erase_entry(Entry* e) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (&*it == e) {
        entries_.erase(it);
        return;
      }
    }
  }

  /// Clears every pin — the batched executor's unwind path (it cannot know
  /// which members had pinned before the error).
  void unpin_all() {
    for (auto& e : entries_) e.pinned = false;
  }

  void record_hit(Comm& comm, Algo chosen) {
    ++hits_;
    ++comm.report().cache_hits;
    ++comm.report().cache_hits_by_algo[distdetail::algo_slot(chosen)];
  }
  void record_miss(Comm& comm) {
    ++misses_;
    ++comm.report().cache_misses;
  }
  /// Publishes the residency gauge into the RankReport — and routes the
  /// byte *delta* since the last publish through the same execution memory
  /// gauge the budgeted backends charge (DESIGN.md §13): cache residency and
  /// execution transients report through one pressure path, so peak_bytes
  /// reflects plans held resident on a tenant's behalf, not just in-flight
  /// staging.
  void publish_gauge(Comm& comm) {
    const std::uint64_t now = bytes_resident();
    auto& rep = comm.report();
    rep.cache_bytes_resident = now;
    if (now > last_published_)
      rep.mem_charge(0, now - last_published_);
    else
      rep.mem_release(0, last_published_ - now);
    last_published_ = now;
  }

  /// Evicts from the LRU tail until the agreed residency fits the budget.
  /// Deterministic across ranks (the loop reads only agreed state), so every
  /// rank evicts the same victims in the same order. `keep` (the entry just
  /// admitted) and pinned entries are never victims. A fresh Ring1D victim
  /// is demoted to its hop window first — shedding bytes while staying
  /// replayable — and only dropped if the cache is still over budget.
  /// Collective whenever a demotion re-agrees the victim's bytes.
  void enforce_budget(Comm& comm, const Entry* keep = nullptr) {
    if (budget_ == 0) return;
    while (bytes_resident() > budget_) {
      Entry* vic = nullptr;
      for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        if (!it->pinned && &*it != keep) {
          vic = &*it;
          break;
        }
      }
      if (vic == nullptr) return;  // everything pinned/kept: over budget until released
      if (demote_window_ > 0 && vic->plan != nullptr && !vic->plan->empty() &&
          vic->plan->chosen() == Algo::Ring1D && !vic->plan->ring_plan().windowed() &&
          vic->plan->demote_ring_to_window(demote_window_)) {
        vic->bytes = cachedetail::agree_max_bytes(comm, vic->plan->bytes_resident());
        ++demotions_;
        ++comm.report().cache_demotions;
        continue;  // still the tail: evicted next iteration if still over
      }
      ++evictions_;
      ++comm.report().cache_evictions;
      if (vic->plan != nullptr && !vic->plan->empty())
        ++comm.report().cache_evictions_by_algo[distdetail::algo_slot(vic->plan->chosen())];
      erase_entry(vic);
    }
  }

 private:
  std::uint64_t budget_ = 0;
  int demote_window_ = 2;
  std::list<Entry> entries_;  ///< front = MRU, evict from the back
  std::uint64_t next_seq_ = 0;
  std::uint64_t last_published_ = 0;  ///< gauge bytes charged at the last publish
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t demotions_ = 0;
};

/// Multi-tenant serving entry point: one collective coherence vote, then a
/// cache hit replays the tenant's plan (through spgemm_dist_cached, so the
/// self-healing retry loop is shared) and a miss admits + builds + runs the
/// byte-budget eviction pass. Results are identical to calling
/// spgemm_dist_cached with a per-tenant plan the caller keeps alive.
template <typename SRIn = void, typename VT>
DistMatrix1D<VT> spgemm_dist_cached_mt(Comm& comm,
                                       PlanCache<VT, ResolveSemiring<SRIn, VT>>& cache,
                                       const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                                       const DistSpgemmOptions& opt = {},
                                       DistSpgemmStats* stats = nullptr) {
  distdetail::validate_collective(comm, a, b, opt);
  // Outermost gauge scope: a serving-loop call's peak covers plan residency
  // (published below) plus the tenant's execution transients.
  MemGaugeScope gauge(comm.report());
  StructureFingerprint fp;
  {
    auto ph = comm.phase(Phase::Other);
    fp = detail1d::fingerprint_of(a, b);
  }
  auto* entry = cache.find(fp, opt);
  // Coherence vote: hit/miss — and *which* entry — must agree on every rank
  // before anyone enters a data collective.
  cachedetail::vote_uniform(
      comm,
      (entry != nullptr ? "h" + std::to_string(entry->seq) : std::string("m")) + "/b" +
          std::to_string(cache.budget()),
      "spgemm_dist_cached_mt");
  const std::uint64_t ev_before = cache.stats().evictions;
  DistMatrix1D<VT> c;
  if (entry != nullptr) {
    cache.touch(entry);
    const int builds_before = entry->plan->builds();
    c = spgemm_dist_cached<SRIn>(comm, *entry->plan, a, b, opt, stats);
    cache.record_hit(comm, entry->plan->chosen());
    if (entry->plan->builds() != builds_before) {
      // Self-healing rebuilt the plan in place; the agreed residency (and
      // the budget) follow suit.
      entry->bytes = cachedetail::agree_max_bytes(comm, entry->plan->bytes_resident());
      cache.enforce_budget(comm, entry);
    }
  } else {
    auto& e = cache.admit(fp, opt);
    try {
      c = spgemm_dist_cached<SRIn>(comm, *e.plan, a, b, opt, stats);
    } catch (...) {
      cache.erase_entry(&e);  // errors unwind machine-wide: uniform erase
      throw;
    }
    e.bytes = cachedetail::agree_max_bytes(comm, e.plan->bytes_resident());
    cache.record_miss(comm);
    cache.enforce_budget(comm, &e);
  }
  cache.publish_gauge(comm);
  if (stats != nullptr) {
    stats->cache_hits = entry != nullptr ? 1 : 0;
    stats->cache_misses = entry != nullptr ? 0 : 1;
    stats->cache_evictions = cache.stats().evictions - ev_before;
    stats->cache_bytes_resident = cache.stats().bytes_resident;
  }
  return c;
}

}  // namespace sa1d
