#include "runtime/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>

namespace sa1d {

bool load_cost_params(const char* path, CostParams& p) {
  std::ifstream f(path);
  if (!f) return false;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  auto read_key = [&text](const char* key, double& out) {
    const std::string quoted = std::string("\"") + key + "\"";
    std::size_t pos = text.find(quoted);
    if (pos == std::string::npos) return;
    pos = text.find(':', pos + quoted.size());
    if (pos == std::string::npos) return;
    // A truncated or malformed value (e.g. a file cut off mid-write, even
    // inside a number like "1.234e") must not clobber a sane default:
    // require a positive finite number that terminates at a JSON delimiter.
    const char* start = text.c_str() + pos + 1;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start || !std::isfinite(v) || v <= 0.0) return;
    while (*end == ' ' || *end == '\t' || *end == '\n' || *end == '\r') ++end;
    if (*end != ',' && *end != '}') return;
    out = v;
  };
  read_key("flop_s", p.flop_s);
  read_key("triple_s", p.triple_s);
  read_key("alpha_inter", p.alpha_inter);
  read_key("beta_inter", p.beta_inter);
  read_key("alpha_intra", p.alpha_intra);
  read_key("beta_intra", p.beta_intra);
  read_key("overlap_discount", p.overlap_discount);
  read_key("imb_scale", p.imb_scale);
  // A discount of 1 would predict free communication for every overlapped
  // backend; cap well below that so a degenerate fit cannot blind Auto.
  p.overlap_discount = std::clamp(p.overlap_discount, 0.0, 0.95);
  p.imb_scale = std::clamp(p.imb_scale, 0.25, 8.0);
  double rpn = static_cast<double>(p.ranks_per_node);
  read_key("ranks_per_node", rpn);
  p.ranks_per_node = std::max(1, static_cast<int>(std::lround(rpn)));
  return true;
}

CostParams cost_params_from_env(CostParams base) {
  const char* path = std::getenv("SA1D_COST_PARAMS");
  if (path != nullptr && path[0] != '\0' && !load_cost_params(path, base))
    std::fprintf(stderr,
                 "sa1d: SA1D_COST_PARAMS=%s is set but unreadable; "
                 "using the default cost rates\n",
                 path);
  return base;
}

ModeledTime CostModel::run_time(const std::vector<RankReport>& ranks,
                                int threads_per_rank) const {
  // The run is bulk-synchronous: each phase completes everywhere before the
  // next starts, so the elapsed estimate is the max over ranks per phase.
  ModeledTime out;
  for (const auto& r : ranks) {
    ModeledTime t = rank_time(r, threads_per_rank);
    out.comp = std::max(out.comp, t.comp);
    out.comm = std::max(out.comm, t.comm);
    out.plan = std::max(out.plan, t.plan);
    out.other = std::max(out.other, t.other);
  }
  return out;
}

GridShape summa_grid_shape(int P, int grid_rows, int grid_cols) {
  GridShape g;
  if (P < 1) return g;
  if (grid_rows != 0 || grid_cols != 0) {
    // A pinned side derives the other from P when it divides; a fully
    // pinned shape is taken verbatim (validation is the caller's job, so
    // the error message can name who pinned it). A nonsensical pin —
    // negative, or one that does not factor P — yields an invalid shape
    // (stages = 0 below), never a silent fallback to the auto grid.
    g.rows = grid_rows != 0 ? grid_rows
                            : (grid_cols > 0 && P % grid_cols == 0 ? P / grid_cols : 0);
    g.cols = grid_cols != 0 ? grid_cols
                            : (grid_rows > 0 && P % grid_rows == 0 ? P / grid_rows : 0);
  } else {
    // Nearest-square factorization, rows ≤ cols: the largest divisor of P
    // not exceeding √P. Primes land on 1 × P.
    int r = 1;
    for (int d = 1; static_cast<long long>(d) * d <= P; ++d)
      if (P % d == 0) r = d;
    g.rows = r;
    g.cols = P / r;
  }
  g.stages = g.rows >= 1 && g.cols >= 1 ? std::lcm(g.rows, g.cols) : 0;
  return g;
}

std::vector<int> valid_layer_counts(int P) {
  std::vector<int> out;
  for (int c = 1; c <= P; ++c)
    if (P % c == 0) out.push_back(c);
  return out;
}

bool split3d_has_nontrivial_layers(int P) {
  for (int c : valid_layer_counts(P))
    if (c > 1 && c < P) return true;
  return false;
}

double CostModel::alpha_eff(int P) const {
  if (P <= p_.ranks_per_node) return p_.alpha_intra;
  double f_inter = 1.0 - static_cast<double>(p_.ranks_per_node) / static_cast<double>(P);
  return f_inter * p_.alpha_inter + (1.0 - f_inter) * p_.alpha_intra;
}

double CostModel::beta_eff(int P) const {
  if (P <= p_.ranks_per_node) return p_.beta_intra;
  double f_inter = 1.0 - static_cast<double>(p_.ranks_per_node) / static_cast<double>(P);
  return f_inter * p_.beta_inter + (1.0 - f_inter) * p_.beta_intra;
}

namespace {

/// Max/mean load factor of even_split(n, parts): the largest block over the
/// average block. 1 when the split is exact; bounded by 2 (parts ≤ n) but
/// significant exactly where rectangular grids bite — small dimensions over
/// uneven factor pairs.
double even_split_imbalance(double n, int parts) {
  if (parts <= 1 || n <= 0.0) return 1.0;
  const double mean = n / static_cast<double>(parts);
  return std::ceil(mean) / mean;
}

/// Rewrites the measured inputs into what they would look like under the
/// requested ordering (DESIGN.md §12). Partitioned: the layout balanced
/// per-rank flops to the measured part imbalance and shrank the remote
/// adjacency to the cut fraction. Random: relabeling levels the flop skew
/// but destroys locality — every remote column is needed, so the fetch
/// volume saturates at the replicated-operand worst case. Identity/Auto
/// pass through. Not idempotent (the cut discount multiplies), so it is
/// applied exactly once per prediction, at the entry points.
AlgoCostInputs ordering_adjusted(const AlgoCostInputs& in) {
  AlgoCostInputs t = in;
  const auto P = static_cast<double>(in.P < 1 ? 1 : in.P);
  const auto flops = static_cast<double>(in.flops);
  switch (in.ordering) {
    case Ordering::Identity:
    case Ordering::Auto:
      break;
    case Ordering::Partitioned: {
      const double cut = std::clamp(in.reorder_cut_fraction, 0.0, 1.0);
      const double imb = std::max(1.0, in.reorder_part_imbalance);
      t.max_rank_flops = static_cast<std::uint64_t>(imb * flops / P);
      t.sa1d_fetch_elems =
          static_cast<std::uint64_t>(cut * static_cast<double>(in.sa1d_fetch_elems));
      t.sa1d_fetch_msgs = std::max<std::uint64_t>(
          static_cast<std::uint64_t>(cut * static_cast<double>(in.sa1d_fetch_msgs)),
          static_cast<std::uint64_t>(in.P < 1 ? 1 : in.P));
      break;
    }
    case Ordering::Random: {
      t.max_rank_flops = static_cast<std::uint64_t>(flops / P) + 1;
      const auto worst = static_cast<std::uint64_t>(
          static_cast<double>(in.nnz_a) * (P - 1.0) / P);
      t.sa1d_fetch_elems = std::max(in.sa1d_fetch_elems, worst);
      t.sa1d_fetch_msgs =
          std::max(in.sa1d_fetch_msgs, static_cast<std::uint64_t>(P * (P - 1.0)));
      break;
    }
  }
  return t;
}

/// The per-rank element volumes and latency of the grid backends (SUMMA-2D
/// is the layers = 1 case), shared by both pricing horizons: predict()
/// charges them at triple width, predict_replay() at value width. One
/// derivation site, so the two horizons cannot drift apart.
struct GridTerms {
  bool ok = false;           ///< layers divide P and the (pinned) shape factors P/layers
  double redist_elems = 0.0; ///< in/out redistribution elements per rank
  double bcast_elems = 0.0;  ///< stage-broadcast elements received per rank
  double latency_msgs = 0.0; ///< α multiplier: stage rounds + all-to-alls (+ layer folds)
  double imb = 1.0;          ///< even_split max/mean load factor of the C blocks
};

GridTerms grid_terms(const AlgoCostInputs& in, int layers, double imb_scale = 1.0) {
  GridTerms t;
  if (layers < 1 || in.P % layers != 0) return t;
  const GridShape g = summa_grid_shape(in.P / layers, in.grid_rows, in.grid_cols);
  if (g.rows * g.cols != in.P / layers || g.stages < 1) return t;
  const auto P = static_cast<double>(in.P < 1 ? 1 : in.P);
  const double cd = static_cast<double>(layers);
  const double qr = static_cast<double>(g.rows);
  const double qc = static_cast<double>(g.cols);
  const double s = static_cast<double>(g.stages);
  const auto nnz_a = static_cast<double>(in.nnz_a);
  const auto nnz_b = static_cast<double>(in.nnz_b);
  const auto flops = static_cast<double>(in.flops);
  // Merged-output proxy: each flop yields one pre-merge partial triple; the
  // scatter ships roughly half of them post-merge — per *layer*, since
  // cross-layer duplicates only merge at the 1D scatter, so the out volume
  // grows toward c× the merged nnz, capped by the flop count.
  const double c_out = std::min(flops, cd * flops / 2.0);
  t.redist_elems = (nnz_a + nnz_b + c_out) / P;
  // Over the lcm(q_r, q_c)-stage loop each rank receives its whole A
  // block-row and B block-column of its layer's inner slice.
  t.bcast_elems = nnz_a / (cd * qr) + nnz_b / (cd * qc);
  // Stage broadcast rounds + the three all-to-alls, plus the c cross-layer
  // fold contributions per output chunk that plain SUMMA does not pay.
  t.latency_msgs = 2.0 * s + 3.0 * P + (cd > 1.0 ? cd : 0.0);
  // Per-rank load imbalance of the grid multiply, analytic part: the
  // even_split block-shape skew (largest row × column block pair) times the
  // operands' measured 1D flop skew — sparsity skews per-block work far
  // more than block *shape* does, and max_rank_flops/avg under the 1D
  // layout is the structural proxy for it the inputs already carry. The
  // fitted imb_scale maps the analytic *excess* onto the recorded max/mean
  // series: imb = 1 + scale·(analytic − 1), so predicted_imbalance (which
  // queries at scale 1) returns the fit's unscaled independent variable.
  const double skew1d = (flops > 0.0 && in.max_rank_flops > 0)
                            ? std::max(1.0, static_cast<double>(in.max_rank_flops) * P / flops)
                            : 1.0;
  double analytic = even_split_imbalance(static_cast<double>(in.m), g.rows) *
                    even_split_imbalance(static_cast<double>(in.n), g.cols) * skew1d;
  if (in.ordering == Ordering::Partitioned) {
    // Under a partitioned ordering the analytic even-split product is
    // replaced by the *measured* part-weight imbalance — the partitioner
    // already balanced exactly the quantity the product approximates — and
    // the stage broadcasts shrink with the cut: a clustered ordering makes
    // off-diagonal blocks hypersparse, so volume tracks the cut fraction.
    // The diagonal blocks always ship, hence the 1/max(qr, qc) floor.
    analytic = std::max(1.0, in.reorder_part_imbalance);
    t.bcast_elems *= std::clamp(in.reorder_cut_fraction, 1.0 / std::max(qr, qc), 1.0);
  }
  t.imb = 1.0 + imb_scale * (analytic - 1.0);
  t.ok = true;
  return t;
}

/// Modeled per-rank peak transient triples of one budgeted execution at
/// column-panel count k — the quantity the RankReport peak_triples gauge
/// high-waters (DESIGN.md §13). Deliberately an *upper* bound: the budget
/// check `modeled ≤ max_peak_triples` must imply `measured ≤ budget`, so
/// every term carries headroom over what the gauge actually charges.
/// Returns a saturating huge value for grid shapes that do not factor, so
/// the panel sweep simply finds no feasible k there.
std::uint64_t modeled_peak_triples(const AlgoCostInputs& in, Algo algo, int k) {
  const double kk = static_cast<double>(k < 1 ? 1 : k);
  const auto P = static_cast<double>(in.P < 1 ? 1 : in.P);
  const auto flops = static_cast<double>(in.flops);
  // Panels are GLOBAL column windows of B/C, while the gauge high-waters the
  // worst single rank: with k ≤ P a rank's local columns sit wholly inside
  // one panel, so that panel replays the rank's entire accumulation in one
  // go and its peak does not move. Per-rank terms therefore shrink with
  // keff = k/P (panels subdividing each rank's columns), while global-volume
  // terms — stage-broadcast payloads, inbound B redistribution — genuinely
  // shrink with k. Calibrated against measured hwm_triples on two fixed
  // workloads (ER n=150 deg 5 and the fig16 block-clustered n=300, both
  // P=4): modeled / measured held between 1.01× and 1.9× across
  // backends × k ∈ {1..64}, never under.
  const double keff = std::max(1.0, kk / P);
  // Per-rank max aggregates, with even-share fallbacks (×2 skew headroom)
  // for hand-built inputs that did not gather them.
  const double mrf =
      in.max_rank_flops > 0 ? static_cast<double>(in.max_rank_flops) : flops / P + 1.0;
  const double mna = in.max_rank_nnz_a > 0
                         ? static_cast<double>(in.max_rank_nnz_a)
                         : 2.0 * static_cast<double>(in.nnz_a) / P + 1.0;
  const double mnb = in.max_rank_nnz_b > 0
                         ? static_cast<double>(in.max_rank_nnz_b)
                         : 2.0 * static_cast<double>(in.nnz_b) / P + 1.0;
  const double mfe = in.max_rank_fetch_elems > 0
                         ? static_cast<double>(in.max_rank_fetch_elems)
                         : 2.0 * static_cast<double>(in.sa1d_fetch_elems) / P;
  // Accumulator high water: the streaming merge holds merged prefix + fresh
  // pushes + its out-buffer — ~2× the rank's panel-share of push volume.
  // (2.27 measured on both calibration workloads; 2.3 keeps it an upper
  // bound.)
  const double acc = 2.3 * mrf / keff;
  double peak = 0.0;
  switch (algo) {
    case Algo::Auto:
      return 0;
    case Algo::SparseAware1D:
      // Ã assembly (planned fetch) and the B̃ mirror are live together; the
      // fetched Ã and the B̃ panel both track the panel's column window, so
      // they shrink with the rank's panel subdivision. The stationary A
      // slice is resident whole regardless.
      peak = 1.2 * (mna + (mnb + mfe) / keff);
      break;
    case Algo::Ring1D:
      // The circulating A slice is doubled at each shift (the arriving
      // slice is charged before the outgoing one is released) and
      // re-circulates whole once per panel; only the accumulator shrinks.
      peak = 2.4 * mna + 2.0 * mrf / keff;
      break;
    case Algo::Summa2D:
    case Algo::Split3D: {
      const int layers = algo == Algo::Split3D ? in.layers : 1;
      if (layers < 1 || in.P % layers != 0)
        return std::numeric_limits<std::uint64_t>::max() / 2;
      const GridShape g = summa_grid_shape(in.P / layers, in.grid_rows, in.grid_cols);
      if (g.rows * g.cols != in.P / layers || g.stages < 1)
        return std::numeric_limits<std::uint64_t>::max() / 2;
      const double cd = static_cast<double>(layers);
      const double qc = static_cast<double>(g.cols);
      const double s = static_cast<double>(g.stages);
      const double skew =
          flops > 0.0 ? std::max(1.0, mrf * P / flops) : 1.0;
      // The grid transients live in two phases that do NOT overlap in time —
      // the gauge high-waters whichever is taller, so summing them (the
      // first cut of this model) over-reserved ~3.5× at high panel counts
      // and forced 4× more panels (and 4× the replay latency) than the
      // budget needed.
      //
      // Redistribution phase: inbound 1D→grid staging + block assembly. A
      // ships whole every panel; inbound B is the global panel window (/k);
      // the outbound partial-C scatter is all-or-nothing per receiving rank
      // (/keff). ×2 covers arrival chunks coexisting with the assembled
      // block (and the scatter's merge out-buffer on the way out). All of
      // this is dead before the multiply's accumulator grows.
      const double c_out = std::min(flops, cd * flops / 2.0);
      const double redist =
          2.0 * skew *
          (static_cast<double>(in.nnz_a) / P + static_cast<double>(in.nnz_b) / (P * kk) +
           c_out / (P * keff));
      // Multiply phase: the accumulator plus the B stage payloads live when
      // it peaks (A stage blocks are released before the merge transient).
      // One rank's B block column spans n/(cd·qc) global columns, so a
      // panel narrower than that — kk > cd·qc — is what shrinks the
      // per-stage staging; this granularity is what makes SUMMA-2D (cd=1,
      // qc=2) and split-3D (cd=2, qc=1) measure identically at P=4. The
      // lookahead bound (≤3 stages posted under a budget) caps the resident
      // fraction on big grids; +130 is the small-problem floor (CSR
      // cursors, fold headers) the two calibration workloads expose.
      const double bwin = cd * qc;
      const double stage_live = 3.0 * skew * std::min(1.0, 3.0 / s) *
                                    (static_cast<double>(in.nnz_b) / bwin) /
                                    std::max(1.0, kk / bwin) +
                                130.0;
      peak = std::max(redist, acc + stage_live);
      break;
    }
  }
  if (!(peak >= 0.0) || peak >= 9.0e18) return std::numeric_limits<std::uint64_t>::max() / 2;
  return static_cast<std::uint64_t>(peak) + 1;
}

}  // namespace

std::uint64_t CostModel::predicted_peak_triples(const AlgoCostInputs& in, Algo algo,
                                                int panels) const {
  return modeled_peak_triples(ordering_adjusted(in), algo, panels);
}

AlgoPrediction CostModel::predict(const AlgoCostInputs& in_raw, Algo algo) const {
  // All formulas below read the ordering-adjusted view of the measurements;
  // the raw inputs only matter for the one-shot reorder term at the end.
  const AlgoCostInputs in = ordering_adjusted(in_raw);
  AlgoPrediction pr;
  pr.algo = algo;
  pr.ordering = in.ordering;
  const auto P = static_cast<double>(in.P < 1 ? 1 : in.P);
  const auto threads = static_cast<double>(in.threads < 1 ? 1 : in.threads);
  const double alpha = alpha_eff(in.P);
  const double beta = beta_eff(in.P);
  const double trip = static_cast<double>(2 * in.index_bytes + in.value_bytes);
  const double elem = static_cast<double>(in.index_bytes + in.value_bytes);
  const auto nnz_a = static_cast<double>(in.nnz_a);
  const auto nnz_b = static_cast<double>(in.nnz_b);
  const auto flops = static_cast<double>(in.flops);
  // Merged-output proxy: each flop yields one pre-merge partial triple; the
  // backends that ship partial C pay for roughly half of them post-merge.
  const double cnnz_est = flops / 2.0;

  switch (algo) {
    case Algo::Auto:
      pr.note = "auto is a dispatch policy, not a backend";
      return pr;

    case Algo::SparseAware1D: {
      pr.feasible = true;
      const auto msgs = static_cast<double>(in.sa1d_fetch_msgs) / P;
      // One-shot pipeline fetches structure and values of every planned
      // block — 2 gets per block (hence 2α per message), moving one index
      // word + one value per element in total — plus the replicated
      // metadata allgather (gids + cp ≈ 2 index words per nonzero column).
      const double fetch_bytes = static_cast<double>(in.sa1d_fetch_elems) * elem / P;
      const double meta_bytes = static_cast<double>(in.nzc_a) * 2.0 *
                                static_cast<double>(in.index_bytes);
      pr.comm_s = alpha * 2.0 * msgs + beta * (fetch_bytes + meta_bytes);
      pr.comp_coeff = static_cast<double>(in.max_rank_flops) / threads;
      // Ã/B̃ assembly + output conversion scale with the moved elements and
      // the stationary operand slice.
      pr.other_coeff = (static_cast<double>(in.sa1d_fetch_elems) + nnz_b + cnnz_est) / P;
      break;
    }

    case Algo::Ring1D: {
      pr.feasible = true;
      // Every A slice visits every rank: (P-1) hops of ~nnz_a/P triples.
      pr.comm_s = alpha * (P - 1.0) + beta * trip * nnz_a * (P - 1.0) / P;
      pr.comp_coeff = static_cast<double>(in.max_rank_flops) / threads;
      // The accumulator holds one partial triple per flop until the final
      // canonicalize (full triple rate: sort + merge); the per-hop column
      // regrouping only *scans* the circulating slice (≈ nnz_a per rank
      // over all hops), which costs about a quarter of the sort rate.
      pr.other_coeff = flops / P + nnz_a / 4.0;
      break;
    }

    case Algo::Summa2D: {
      const GridTerms t = grid_terms(in, 1, p_.imb_scale);
      if (!t.ok) {
        pr.note = "the pinned grid_rows x grid_cols does not factor P";
        return pr;
      }
      pr.feasible = true;
      pr.comm_s = alpha * t.latency_msgs + beta * trip * (t.redist_elems + t.bcast_elems);
      pr.comp_coeff = t.imb * flops / (P * threads);
      pr.other_coeff = t.imb * t.bcast_elems + flops / P + t.redist_elems;
      break;
    }

    case Algo::Split3D: {
      if (in.layers < 1 || in.P % in.layers != 0) {
        pr.note = "layers do not divide P";
        return pr;
      }
      const GridTerms t = grid_terms(in, in.layers, p_.imb_scale);
      if (!t.ok) {
        pr.note = "the pinned grid_rows x grid_cols does not factor P/layers";
        return pr;
      }
      pr.feasible = true;
      pr.comm_s = alpha * t.latency_msgs + beta * trip * (t.redist_elems + t.bcast_elems);
      pr.comp_coeff = t.imb * flops / (P * threads);
      pr.other_coeff = t.imb * t.bcast_elems + flops / P + t.redist_elems;
      break;
    }
  }
  // Column-panel resolution (DESIGN.md §13): unbudgeted runs stay
  // monolithic; a budget resolves the smallest panel count whose modeled
  // peak fits, turning the feasibility cliff into a priced slope. A pinned
  // panel count (in.panels ≥ 1) is priced and budget-checked verbatim.
  {
    int k = in.panels;
    if (k < 1) {
      if (in.max_peak_triples == 0) {
        k = 1;
      } else {
        k = 0;
        for (int cand : {1, 2, 4, 8, 16, 32, 64}) {
          if (modeled_peak_triples(in, algo, cand) <= in.max_peak_triples) {
            k = cand;
            break;
          }
        }
        if (k == 0) {
          pr.panels = 64;
          pr.peak_triples = modeled_peak_triples(in, algo, 64);
          pr.feasible = false;
          pr.note = "no column panelization brings the modeled peak under max_peak_triples";
          return pr;
        }
      }
    }
    pr.panels = k;
    pr.peak_triples = modeled_peak_triples(in, algo, k);
    if (in.max_peak_triples > 0 && pr.peak_triples > in.max_peak_triples) {
      pr.feasible = false;
      pr.note = "modeled peak exceeds max_peak_triples at the pinned panel count";
      return pr;
    }
    if (k > 1) {
      // Panel pricing slope: each extra panel replays the A-side of the
      // backend (B and C volumes are split across panels, so their totals
      // are unchanged) plus one more round of latency.
      const double kd = static_cast<double>(k);
      switch (algo) {
        case Algo::Auto:
          break;
        case Algo::SparseAware1D: {
          // Per-panel fetch plans repeat the message latency and the
          // metadata allgather; the fetched value volume covers disjoint
          // columns, so its total is roughly panel-invariant.
          const auto msgs = static_cast<double>(in.sa1d_fetch_msgs) / P;
          const double meta_bytes = static_cast<double>(in.nzc_a) * 2.0 *
                                    static_cast<double>(in.index_bytes);
          pr.comm_s += (kd - 1.0) * (alpha * 2.0 * msgs + beta * meta_bytes);
          pr.other_coeff += (kd - 1.0) * nnz_b / P;
          break;
        }
        case Algo::Ring1D:
          // A re-circulates whole once per panel: both the hop latency and
          // the shift volume scale with k, as does the per-hop column scan.
          pr.comm_s *= kd;
          pr.other_coeff += (kd - 1.0) * nnz_a / 4.0;
          break;
        case Algo::Summa2D:
        case Algo::Split3D: {
          const GridTerms t =
              grid_terms(in, algo == Algo::Split3D ? in.layers : 1, p_.imb_scale);
          const GridShape g = summa_grid_shape(
              in.P / (algo == Algo::Split3D ? in.layers : 1), in.grid_rows, in.grid_cols);
          const double cd = algo == Algo::Split3D ? static_cast<double>(in.layers) : 1.0;
          const double redist_a = nnz_a / P;
          const double bc_a = nnz_a / (cd * static_cast<double>(g.rows));
          pr.comm_s += (kd - 1.0) *
                       (alpha * t.latency_msgs + beta * trip * (redist_a + bc_a));
          pr.other_coeff += (kd - 1.0) * redist_a;
          break;
        }
      }
    }
  }
  // The compute terms are linear in the calibrated rates; keeping the
  // coefficients lets the offline refit recover flop_s/triple_s from
  // accumulated prediction-vs-measured records.
  pr.comp_s = pr.comp_coeff * p_.flop_s;
  pr.other_s = pr.other_coeff * p_.triple_s;
  // Overlapped execution hides the fitted fraction of the comm term behind
  // the numeric pass (every backend's hot loop is double-buffered or
  // pipelined); with the default discount of 0 this is the identity.
  if (in.overlap) pr.comm_s *= 1.0 - p_.overlap_discount;
  if (in.ordering == Ordering::Partitioned || in.ordering == Ordering::Random) {
    // One-shot ordering cost, paid by the build only (predict_replay zeroes
    // it, so the horizon pricing amortizes it over expected_iterations):
    // the measured partition CPU plus the structure gather feeding the
    // partitioner (Partitioned only), then the forward operand permutes and
    // the first inverse scatter of C — three alltoallv rounds moving
    // triples, with pack/unpack at the triple rate.
    const double move = static_cast<double>(in.reorder_move_elems);
    double s = 0.0;
    if (in.ordering == Ordering::Partitioned)
      s += in.reorder_seconds + alpha * (P - 1.0) +
           beta * 2.0 * static_cast<double>(in.index_bytes) * nnz_a;
    s += alpha * 3.0 * (P - 1.0) + beta * trip * (move + cnnz_est) / P +
         p_.triple_s * (move + cnnz_est) / P;
    pr.reorder_s = s;
  }
  return pr;
}

AlgoPrediction CostModel::predict_replay(const AlgoCostInputs& in_raw, Algo algo) const {
  // Start from the one-shot prediction (same feasibility rules and compute
  // term), then strip everything a cached replay does not pay: metadata
  // collectives, structure bytes (value-only payloads), the symbolic /
  // sort-and-merge side of `other` (replays run fold programs, not sorts).
  AlgoPrediction pr = predict(in_raw, algo);
  if (!pr.feasible) return pr;
  // Replays reuse the cached partition, permuted operands, and routes: the
  // one-shot ordering cost disappears (the value-only inverse scatter of C
  // that permuted replays still pay is added below as regular comm).
  pr.reorder_s = 0.0;
  const AlgoCostInputs in = ordering_adjusted(in_raw);
  const auto P = static_cast<double>(in.P < 1 ? 1 : in.P);
  // Batched amortization (dist/batch_spgemm.hpp): k fused members share one
  // concatenated message per phase, so each member pays alpha/k per round
  // while its byte volume is unchanged.
  const double alpha = alpha_eff(in.P) / static_cast<double>(in.batch < 1 ? 1 : in.batch);
  const double beta = beta_eff(in.P);
  const double vb = static_cast<double>(in.value_bytes);
  const auto nnz_a = static_cast<double>(in.nnz_a);
  const auto nnz_b = static_cast<double>(in.nnz_b);
  const auto flops = static_cast<double>(in.flops);
  const double cnnz_est = flops / 2.0;

  switch (algo) {
    case Algo::Auto:
      break;
    case Algo::SparseAware1D: {
      // One value get per planned block (structure is cached), no metadata
      // allgather; value copies and the numeric pass remain.
      const auto msgs = static_cast<double>(in.sa1d_fetch_msgs) / P;
      pr.comm_s = alpha * msgs + beta * static_cast<double>(in.sa1d_fetch_elems) * vb / P;
      pr.other_coeff = (static_cast<double>(in.sa1d_fetch_elems) + nnz_b + cnnz_est) / P;
      break;
    }
    case Algo::Ring1D: {
      // Hops shift bare value arrays; the merge replays the cached ⊕-fold
      // program (no per-hop regrouping, no sort). The numeric side is not
      // flops-only, though: each of the P−1 hop multiplies re-walks its
      // cached A-slice structure against the local B column map, so over a
      // full rotation the rank touches (P−1)/P of A's triples — a scan
      // over precomputed indices, priced at the quarter triple rate like
      // the inverse-scatter unpack below. Without this term iterated
      // pricing undersells the ring's per-replay cost by ~35% and Auto
      // picks it over a measured-faster partitioned SA-1D at MCL horizons.
      pr.comm_s = alpha * (P - 1.0) + beta * vb * nnz_a * (P - 1.0) / P;
      pr.other_coeff = flops / P + nnz_a * (P - 1.0) / (4.0 * P);
      break;
    }
    case Algo::Summa2D:
    case Algo::Split3D: {
      // Same element volumes and latency as the one-shot prediction, but
      // the exchanges carry bare values (vb per element, not a triple) and
      // the fold programs replace the sort-side merge work.
      const GridTerms t = grid_terms(in, algo == Algo::Split3D ? in.layers : 1, p_.imb_scale);
      if (!t.ok) break;  // predict() already marked it feasible, so unreachable
      pr.comm_s = alpha * t.latency_msgs + beta * vb * (t.redist_elems + t.bcast_elems);
      pr.other_coeff = flops / P + t.redist_elems;
      break;
    }
  }
  if (pr.panels > 1) {
    // Replay panel slope, mirroring predict(): each extra panel replays the
    // A-side value traffic and one more latency round; B/C value volumes
    // are split across panels so their totals are unchanged.
    const double kd = static_cast<double>(pr.panels);
    switch (algo) {
      case Algo::Auto:
        break;
      case Algo::SparseAware1D: {
        const auto msgs = static_cast<double>(in.sa1d_fetch_msgs) / P;
        pr.comm_s += (kd - 1.0) * alpha * msgs;
        pr.other_coeff += (kd - 1.0) * nnz_b / P;
        break;
      }
      case Algo::Ring1D:
        pr.comm_s *= kd;
        pr.other_coeff += (kd - 1.0) * nnz_a * (P - 1.0) / (4.0 * P);
        break;
      case Algo::Summa2D:
      case Algo::Split3D: {
        const GridTerms t =
            grid_terms(in, algo == Algo::Split3D ? in.layers : 1, p_.imb_scale);
        const GridShape g = summa_grid_shape(
            in.P / (algo == Algo::Split3D ? in.layers : 1), in.grid_rows, in.grid_cols);
        const double cd = algo == Algo::Split3D ? static_cast<double>(in.layers) : 1.0;
        const double redist_a = nnz_a / P;
        const double bc_a = nnz_a / (cd * static_cast<double>(g.rows));
        pr.comm_s +=
            (kd - 1.0) * (alpha * t.latency_msgs + beta * vb * (redist_a + bc_a));
        pr.other_coeff += (kd - 1.0) * redist_a;
        break;
      }
    }
  }
  if (in.ordering == Ordering::Partitioned || in.ordering == Ordering::Random) {
    // Permuted plans return C in the caller's original ordering every call:
    // one value-only inverse-scatter round (cached route, bare values).
    // Regular execution comm, not reorder. The unpack walks precomputed
    // slot indices — a scan, not a sort/route — so like Ring1D's per-hop
    // regrouping it costs about a quarter of the triple rate.
    pr.comm_s += alpha * (P - 1.0) + beta * vb * cnnz_est / P;
    pr.other_coeff += cnnz_est / (4.0 * P);
  }
  pr.comp_s = pr.comp_coeff * p_.flop_s;
  pr.other_s = pr.other_coeff * p_.triple_s;
  if (in.overlap) pr.comm_s *= 1.0 - p_.overlap_discount;
  return pr;
}

double CostModel::predicted_imbalance(const AlgoCostInputs& in, Algo algo) const {
  if (algo != Algo::Summa2D && algo != Algo::Split3D) return 1.0;
  // Unscaled analytic factor: this is the fit's independent variable, so it
  // must not already contain imb_scale.
  const GridTerms t = grid_terms(ordering_adjusted(in), algo == Algo::Split3D ? in.layers : 1);
  return t.ok ? t.imb : 1.0;
}

}  // namespace sa1d
