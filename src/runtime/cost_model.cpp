#include "runtime/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace sa1d {

ModeledTime CostModel::run_time(const std::vector<RankReport>& ranks,
                                int threads_per_rank) const {
  // The run is bulk-synchronous: each phase completes everywhere before the
  // next starts, so the elapsed estimate is the max over ranks per phase.
  ModeledTime out;
  for (const auto& r : ranks) {
    ModeledTime t = rank_time(r, threads_per_rank);
    out.comp = std::max(out.comp, t.comp);
    out.comm = std::max(out.comm, t.comm);
    out.plan = std::max(out.plan, t.plan);
    out.other = std::max(out.other, t.other);
  }
  return out;
}

int summa_grid_side(int P) {
  int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(P))));
  return q * q == P ? q : 0;
}

std::vector<int> valid_layer_counts(int P) {
  std::vector<int> out;
  for (int c = 1; c <= P; ++c) {
    if (P % c != 0) continue;
    if (summa_grid_side(P / c) > 0) out.push_back(c);
  }
  return out;
}

bool split3d_has_nontrivial_layers(int P) {
  for (int c : valid_layer_counts(P))
    if (c > 1 && c < P) return true;
  return false;
}

double CostModel::alpha_eff(int P) const {
  if (P <= p_.ranks_per_node) return p_.alpha_intra;
  double f_inter = 1.0 - static_cast<double>(p_.ranks_per_node) / static_cast<double>(P);
  return f_inter * p_.alpha_inter + (1.0 - f_inter) * p_.alpha_intra;
}

double CostModel::beta_eff(int P) const {
  if (P <= p_.ranks_per_node) return p_.beta_intra;
  double f_inter = 1.0 - static_cast<double>(p_.ranks_per_node) / static_cast<double>(P);
  return f_inter * p_.beta_inter + (1.0 - f_inter) * p_.beta_intra;
}

AlgoPrediction CostModel::predict(const AlgoCostInputs& in, Algo algo) const {
  AlgoPrediction pr;
  pr.algo = algo;
  const auto P = static_cast<double>(in.P < 1 ? 1 : in.P);
  const auto threads = static_cast<double>(in.threads < 1 ? 1 : in.threads);
  const double alpha = alpha_eff(in.P);
  const double beta = beta_eff(in.P);
  const double trip = static_cast<double>(2 * in.index_bytes + in.value_bytes);
  const double elem = static_cast<double>(in.index_bytes + in.value_bytes);
  const auto nnz_a = static_cast<double>(in.nnz_a);
  const auto nnz_b = static_cast<double>(in.nnz_b);
  const auto flops = static_cast<double>(in.flops);
  // Merged-output proxy: each flop yields one pre-merge partial triple; the
  // backends that ship partial C pay for roughly half of them post-merge.
  const double cnnz_est = flops / 2.0;

  switch (algo) {
    case Algo::Auto:
      pr.note = "auto is a dispatch policy, not a backend";
      return pr;

    case Algo::SparseAware1D: {
      pr.feasible = true;
      const auto msgs = static_cast<double>(in.sa1d_fetch_msgs) / P;
      // One-shot pipeline fetches structure and values of every planned
      // block — 2 gets per block (hence 2α per message), moving one index
      // word + one value per element in total — plus the replicated
      // metadata allgather (gids + cp ≈ 2 index words per nonzero column).
      const double fetch_bytes = static_cast<double>(in.sa1d_fetch_elems) * elem / P;
      const double meta_bytes = static_cast<double>(in.nzc_a) * 2.0 *
                                static_cast<double>(in.index_bytes);
      pr.comm_s = alpha * 2.0 * msgs + beta * (fetch_bytes + meta_bytes);
      pr.comp_coeff = static_cast<double>(in.max_rank_flops) / threads;
      // Ã/B̃ assembly + output conversion scale with the moved elements and
      // the stationary operand slice.
      pr.other_coeff = (static_cast<double>(in.sa1d_fetch_elems) + nnz_b + cnnz_est) / P;
      break;
    }

    case Algo::Ring1D: {
      pr.feasible = true;
      // Every A slice visits every rank: (P-1) hops of ~nnz_a/P triples.
      pr.comm_s = alpha * (P - 1.0) + beta * trip * nnz_a * (P - 1.0) / P;
      pr.comp_coeff = static_cast<double>(in.max_rank_flops) / threads;
      // The accumulator holds one partial triple per flop until the final
      // canonicalize (full triple rate: sort + merge); the per-hop column
      // regrouping only *scans* the circulating slice (≈ nnz_a per rank
      // over all hops), which costs about a quarter of the sort rate.
      pr.other_coeff = flops / P + nnz_a / 4.0;
      break;
    }

    case Algo::Summa2D: {
      const int q = summa_grid_side(in.P);
      if (q == 0) {
        pr.note = "P is not a perfect square";
        return pr;
      }
      pr.feasible = true;
      const double qd = static_cast<double>(q);
      // Redistribution in (A and B blocks) and out (merged C partials), plus
      // √P stages of row/column block broadcasts.
      const double redist = trip * (nnz_a + nnz_b + cnnz_est) / P;
      const double bcast = trip * (nnz_a + nnz_b) / qd;
      pr.comm_s = alpha * (2.0 * qd + 3.0 * P) + beta * (redist + bcast);
      pr.comp_coeff = flops / (P * threads);
      pr.other_coeff = (nnz_a + nnz_b) / qd + flops / P + redist / trip;
      break;
    }

    case Algo::Split3D: {
      const int c = in.layers;
      if (c < 1 || in.P % c != 0 || summa_grid_side(in.P / c) == 0) {
        pr.note = "layers do not divide P into square grids";
        return pr;
      }
      pr.feasible = true;
      const double cd = static_cast<double>(c);
      const double qd = static_cast<double>(summa_grid_side(in.P / c));
      // Like SUMMA per layer on 1/c of the inner dimension: broadcast volume
      // shrinks by c·…/q_c, at the price of shipping partial C per *layer* —
      // cross-layer duplicates are only merged at the 1D scatter, so the
      // out volume grows toward c× the merged nnz, capped by the flop count.
      const double c_out = std::min(flops, cd * cnnz_est);
      const double redist = trip * (nnz_a + nnz_b + c_out) / P;
      const double bcast = trip * (nnz_a + nnz_b) / (cd * qd);
      pr.comm_s = alpha * (2.0 * qd + 3.0 * P) + beta * (redist + bcast);
      pr.comp_coeff = flops / (P * threads);
      pr.other_coeff = (nnz_a + nnz_b) / (cd * qd) + flops / P + redist / trip;
      break;
    }
  }
  // The compute terms are linear in the calibrated rates; keeping the
  // coefficients lets the offline refit recover flop_s/triple_s from
  // accumulated prediction-vs-measured records.
  pr.comp_s = pr.comp_coeff * p_.flop_s;
  pr.other_s = pr.other_coeff * p_.triple_s;
  return pr;
}

}  // namespace sa1d
