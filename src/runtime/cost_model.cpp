#include "runtime/cost_model.hpp"

#include <algorithm>

namespace sa1d {

ModeledTime CostModel::run_time(const std::vector<RankReport>& ranks,
                                int threads_per_rank) const {
  // The run is bulk-synchronous: each phase completes everywhere before the
  // next starts, so the elapsed estimate is the max over ranks per phase.
  ModeledTime out;
  for (const auto& r : ranks) {
    ModeledTime t = rank_time(r, threads_per_rank);
    out.comp = std::max(out.comp, t.comp);
    out.comm = std::max(out.comm, t.comm);
    out.plan = std::max(out.plan, t.plan);
    out.other = std::max(out.other, t.other);
  }
  return out;
}

}  // namespace sa1d
