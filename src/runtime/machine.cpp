#include "runtime/machine.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "util/timer.hpp"

namespace sa1d {

Comm Comm::split(int color, int key) {
  require(color >= 0, "Comm::split: color must be non-negative");
  begin_op("split");
  sh_->split_ck[static_cast<std::size_t>(rank_)] = {color, key};
  sync();

  // Determine my subgroup: parent ranks with my color, ordered by (key, rank).
  std::vector<int> members;
  for (int p = 0; p < size(); ++p)
    if (sh_->split_ck[static_cast<std::size_t>(p)].first == color) members.push_back(p);
  std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
    return sh_->split_ck[static_cast<std::size_t>(a)].second <
           sh_->split_ck[static_cast<std::size_t>(b)].second;
  });
  int my_pos = static_cast<int>(std::find(members.begin(), members.end(), rank_) -
                                members.begin());

  if (my_pos == 0) {
    std::scoped_lock lk(sh_->mu);
    // The sub-communicator's barrier is hub-registered like every other, so
    // faults raised anywhere in the machine wake ranks blocked here too —
    // the deadlock the old top-level arrive_and_drop could not cover.
    sh_->split_groups[color] =
        std::make_shared<detail::CommShared>(static_cast<int>(members.size()), *hub_);
  }
  sync();

  std::shared_ptr<detail::CommShared> sub;
  {
    std::scoped_lock lk(sh_->mu);
    sub = sh_->split_groups.at(color);
  }
  sync();

  if (rank_ == 0) {
    std::scoped_lock lk(sh_->mu);
    sh_->split_groups.clear();
  }
  sync();

  std::vector<int> sub_globals;
  sub_globals.reserve(members.size());
  for (int m : members) sub_globals.push_back(global_rank(m));
  return Comm(my_pos, std::move(sub_globals), std::move(sub), report_, cost_, hub_, inj_,
              integrity_);
}

Machine::Machine(int nranks, CostParams cost, MachineOptions opts)
    : n_(nranks), cost_(cost_params_from_env(cost)), opts_(std::move(opts)) {
  require(nranks >= 1, "Machine: need at least one rank");
  require(opts_.barrier_timeout.count() > 0, "Machine: barrier_timeout must be positive");
}

RunReport Machine::run(const std::function<void(Comm&)>& body) {
  auto hub = std::make_shared<FailureHub>(n_, opts_.barrier_timeout);
  auto shared = std::make_shared<detail::CommShared>(n_, *hub);
  std::unique_ptr<FaultInjector> injector;
  if (!opts_.faults.empty()) injector = std::make_unique<FaultInjector>(opts_.faults);

  RunReport report;
  report.ranks.assign(static_cast<std::size_t>(n_), RankReport{});

  std::exception_ptr first_error;
  std::mutex err_mu;

  std::vector<int> identity(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) identity[static_cast<std::size_t>(i)] = i;

  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_));
  for (int r = 0; r < n_; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(r, identity, shared, &report.ranks[static_cast<std::size_t>(r)], &cost_,
                hub, injector.get(), opts_.integrity);
      try {
        body(comm);
      } catch (...) {
        {
          std::scoped_lock lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // Raise a fatal peer fault: the hub records it (unless a fault is
        // already recorded) and poisons every barrier — machine-level and
        // sub-communicator — so peers blocked anywhere wake and unwind.
        hub->raise(FaultClass::Peer,
                   ErrorContext{r, comm.report().comm_ops, "rank body"},
                   "sa1d: a peer rank failed during a collective", /*recoverable=*/false);
        // Quiesce before this thread proceeds to teardown: an app-level
        // exception (a require() deep in the body, outside the comm layer)
        // unwound frames that may hold exposed windows, published payloads,
        // or op-owned async requests a peer is still draining. Park until
        // every peer has parked or finished, the same discipline every
        // comm-layer throw path follows. Watchdog-bounded, never throws.
        hub->park_unwind();
      }
      // This rank will never park in the unwind quiesce again — don't make
      // parked peers wait on it (they would otherwise ride out the watchdog).
      hub->rank_done();
    });
  }
  for (auto& t : threads) t.join();
  report.wall_s = wall.seconds();

  if (first_error) {
    // Surface the originating error, not the cascading PeerFailure ones.
    std::rethrow_exception(first_error);
  }
  return report;
}

}  // namespace sa1d
