// Algorithm 3 of the paper: the outer-product 1D SpGEMM, used for the
// right multiplication (RᵀA)·R of the Galerkin product where Ballard et
// al. showed it is the best 1D variant.
//
//   1. redistribute B so rank i owns the row block matching A's column slice
//   2. local outer product: C_partial = A_i · B_rows_i  (full m×n, partial)
//   3. redistribute C partials to the owners of C's column slices and merge
#pragma once

#include <vector>

#include "dist/dist_matrix.hpp"
#include "kernels/spgemm_local.hpp"
#include "runtime/machine.hpp"

namespace sa1d {

struct OuterProductOptions {
  LocalKernel kernel = LocalKernel::Hybrid;
  int threads = 1;
};

/// Outer-product 1D SpGEMM (paper Algorithm 3). Collective.
/// C inherits B's column distribution, matching spgemm_1d's output layout.
template <typename VT>
DistMatrix1D<VT> spgemm_outer_product_1d(Comm& comm, const DistMatrix1D<VT>& a,
                                         const DistMatrix1D<VT>& b,
                                         const OuterProductOptions& opt = {}) {
  require(a.ncols() == b.nrows(), "spgemm_outer_product_1d: inner dimension mismatch");
  const int P = comm.size();
  const int me = comm.rank();

  // (1) Redistribute B by rows: the owner of B row g is the rank whose A
  // column slice contains g (outer product pairs A(:,g) with B(g,:)).
  std::vector<std::vector<Triple<VT>>> send(static_cast<std::size_t>(P));
  {
    auto ph = comm.phase(Phase::Other);
    const auto& bl = b.local();
    for (index_t k = 0; k < bl.nzc(); ++k) {
      index_t gcol = b.col_lo() + bl.col_id(k);
      auto rows = bl.col_rows_at(k);
      auto vals = bl.col_vals_at(k);
      for (std::size_t p = 0; p < rows.size(); ++p) {
        int owner = find_owner(std::span<const index_t>(a.bounds()), rows[p]);
        send[static_cast<std::size_t>(owner)].push_back({rows[p], gcol, vals[p]});
      }
    }
  }
  auto recv = comm.alltoallv(send);

  // (2) Local outer product. Build row-major access to the received B rows,
  // then expand against A_i's columns; accumulate triples of partial C.
  std::vector<std::vector<Triple<VT>>> c_send(static_cast<std::size_t>(P));
  {
    auto ph = comm.phase(Phase::Comp);
    // rows_of[g - col_lo] -> list of (col, val) of B(g, :).
    std::vector<std::vector<std::pair<index_t, VT>>> rows_of(
        static_cast<std::size_t>(a.local_ncols()));
    for (const auto& chunk : recv)
      for (const auto& t : chunk)
        rows_of[static_cast<std::size_t>(t.row - a.col_lo())].emplace_back(t.col, t.val);

    const auto& al = a.local();
    for (index_t k = 0; k < al.nzc(); ++k) {
      const auto& brow = rows_of[static_cast<std::size_t>(al.col_id(k))];
      if (brow.empty()) continue;
      auto arows = al.col_rows_at(k);
      auto avals = al.col_vals_at(k);
      for (const auto& [ccol, bval] : brow) {
        int owner = find_owner(std::span<const index_t>(b.bounds()), ccol);
        auto& out = c_send[static_cast<std::size_t>(owner)];
        for (std::size_t p = 0; p < arows.size(); ++p)
          out.push_back({arows[p], ccol, avals[p] * bval});
      }
    }
  }

  // (3) Redistribute partial results and merge duplicates by addition.
  auto c_recv = comm.alltoallv(c_send);
  DcscMatrix<VT> c_local;
  {
    auto ph = comm.phase(Phase::Other);
    CooMatrix<VT> coo(a.nrows(), b.local_ncols());
    for (auto& chunk : c_recv)
      for (auto& t : chunk) coo.push(t.row, t.col - b.col_lo(), t.val);
    coo.canonicalize();
    c_local = DcscMatrix<VT>::from_coo(coo);
  }
  return DistMatrix1D<VT>(a.nrows(), b.ncols(), b.bounds(), me, std::move(c_local));
}

}  // namespace sa1d
