// Algorithm 3 of the paper: the outer-product 1D SpGEMM, used for the
// right multiplication (RᵀA)·R of the Galerkin product where Ballard et
// al. showed it is the best 1D variant.
//
//   1. redistribute B so rank i owns the row block matching A's column slice
//   2. local outer product: C_partial = A_i · B_rows_i  (full m×n, partial)
//   3. redistribute C partials to the owners of C's column slices and merge
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "dist/dist_matrix.hpp"
#include "kernels/spgemm_local.hpp"
#include "runtime/machine.hpp"

namespace sa1d {

struct OuterProductOptions {
  LocalKernel kernel = LocalKernel::Hybrid;
  int threads = 1;
};

/// Outer-product 1D SpGEMM (paper Algorithm 3). Collective.
/// C inherits B's column distribution, matching spgemm_1d's output layout.
template <typename VT>
DistMatrix1D<VT> spgemm_outer_product_1d(Comm& comm, const DistMatrix1D<VT>& a,
                                         const DistMatrix1D<VT>& b,
                                         const OuterProductOptions& opt = {}) {
  require(a.ncols() == b.nrows(), "spgemm_outer_product_1d: inner dimension mismatch");
  const int P = comm.size();
  const int me = comm.rank();

  // (1) Redistribute B by rows: the owner of B row g is the rank whose A
  // column slice contains g (outer product pairs A(:,g) with B(g,:)).
  std::vector<std::vector<Triple<VT>>> send(static_cast<std::size_t>(P));
  {
    auto ph = comm.phase(Phase::Other);
    const auto& bl = b.local();
    for (index_t k = 0; k < bl.nzc(); ++k) {
      index_t gcol = b.col_lo() + bl.col_id(k);
      auto rows = bl.col_rows_at(k);
      auto vals = bl.col_vals_at(k);
      for (std::size_t p = 0; p < rows.size(); ++p) {
        int owner = find_owner(std::span<const index_t>(a.bounds()), rows[p]);
        send[static_cast<std::size_t>(owner)].push_back({rows[p], gcol, vals[p]});
      }
    }
  }
  auto recv = comm.alltoallv(send);

  // (2) Local outer product C_partial = A_i · B_rows_i through the
  // two-phase local SpGEMM engine (kernel/threads honor `opt`): assemble the
  // received B rows as a CSC block over the inner slice — compacted to the
  // nonzero global columns, so per-rank cost scales with received nnz, not
  // the global column dimension — multiply, then scatter C_partial's
  // columns to their owners.
  std::vector<std::vector<Triple<VT>>> c_send(static_cast<std::size_t>(P));
  {
    CscMatrix<VT> a_csc, b_csc;
    std::vector<index_t> gcols;  // compacted position -> global C column
    {
      auto ph = comm.phase(Phase::Other);
      a_csc = a.local().to_csc();  // nrows × local inner width
      for (const auto& chunk : recv)
        for (const auto& t : chunk) gcols.push_back(t.col);
      std::sort(gcols.begin(), gcols.end());
      gcols.erase(std::unique(gcols.begin(), gcols.end()), gcols.end());
      CooMatrix<VT> brows(a.local_ncols(), static_cast<index_t>(gcols.size()));
      for (const auto& chunk : recv)
        for (const auto& t : chunk) {
          auto cj = static_cast<index_t>(
              std::lower_bound(gcols.begin(), gcols.end(), t.col) - gcols.begin());
          brows.push(t.row - a.col_lo(), cj, t.val);
        }
      brows.canonicalize();
      b_csc = CscMatrix<VT>::from_coo(brows);
    }
    // The local multiply runs through the engine's explicit symbolic/numeric
    // split so the structural analysis is accounted as Plan time (matching
    // the sparsity-aware path's inspector/executor breakdown).
    CscMatrix<VT> c_partial;
    {
      LocalSymbolic sym;
      std::vector<detail::Workspace<PlusTimes<VT>>> ws;
      {
        auto ph = comm.phase(Phase::Plan);
        sym = spgemm_local_symbolic<PlusTimes<VT>, VT>(a_csc, b_csc, opt.kernel, opt.threads, &ws);
      }
      auto ph = comm.phase(Phase::Comp);
      c_partial = spgemm_local_numeric<PlusTimes<VT>, VT>(a_csc, b_csc, sym, &ws);
    }
    auto ph = comm.phase(Phase::Other);
    for (index_t cj = 0; cj < c_partial.ncols(); ++cj) {
      if (c_partial.col_nnz(cj) == 0) continue;
      const index_t j = gcols[static_cast<std::size_t>(cj)];
      int owner = find_owner(std::span<const index_t>(b.bounds()), j);
      auto& out = c_send[static_cast<std::size_t>(owner)];
      auto rows = c_partial.col_rows(cj);
      auto vals = c_partial.col_vals(cj);
      for (std::size_t p = 0; p < rows.size(); ++p) out.push_back({rows[p], j, vals[p]});
    }
  }

  // (3) Redistribute partial results and merge duplicates by addition.
  auto c_recv = comm.alltoallv(c_send);
  DcscMatrix<VT> c_local;
  {
    auto ph = comm.phase(Phase::Other);
    CooMatrix<VT> coo(a.nrows(), b.local_ncols());
    for (auto& chunk : c_recv)
      for (auto& t : chunk) coo.push(t.row, t.col - b.col_lo(), t.val);
    coo.canonicalize();
    c_local = DcscMatrix<VT>::from_coo(coo);
  }
  return DistMatrix1D<VT>(a.nrows(), b.ncols(), b.bounds(), me, std::move(c_local));
}

}  // namespace sa1d
