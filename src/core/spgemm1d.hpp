// Algorithm 1 of the paper: the sparsity-aware 1D SpGEMM, split into an
// inspector and an executor (the repo's plan/execute refactor).
//
//   C = A · B with A, B, C all 1D column-distributed. B and C are
//   stationary; the only data movement is one-sided fetches of the A
//   columns each rank actually needs:
//
//     1. expose windows over A's local row-id and value arrays
//     2. allgather A's nonzero column ids (D) and per-column prefix (cp)
//     3. H_i := nonzero rows of B_i (dense boolean vector of length k)
//     4. required ids D̃ := H_i ∩ D
//     5. group fetches with the block-fetch strategy (Algorithm 2)
//     6. MPI_Get-style passive-target fetches of the chosen blocks
//     7. compact fetched columns into Ã (only needed columns are kept)
//     8. C_i = Ã · B_i with a local heap/hash hybrid kernel
//
// Steps 2–5, the structural half of 6–7 (row ids), the B̃ row remap, and
// the local engine's symbolic analysis depend only on the operands'
// *sparsity structure*. SpgemmPlan1D runs them once (the inspector) and
// caches the result; execute() replays the plan for any value assignment
// over the same structure, issuing only the value fetches and the numeric
// local pass. Every workload the paper evaluates is an iterated SpGEMM
// (MCL expansion rounds, BC level series, AMG Galerkin products), so the
// metadata/planning work the paper counts as "other" time amortizes to
// zero across reuses. spgemm_1d() remains the one-shot plan-then-execute
// wrapper.
//
// No communication of C is needed: it is born 1D-distributed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/block_fetch.hpp"
#include "dist/dist_matrix.hpp"
#include "kernels/spgemm_local.hpp"
#include "runtime/machine.hpp"
#include "util/bitvector.hpp"

namespace sa1d {

struct Spgemm1dOptions {
  /// Algorithm 2's K: max RDMA block fetches per remote process.
  index_t block_fetch_k = 2048;
  /// Local kernel for C_i = Ã·B_i.
  LocalKernel kernel = LocalKernel::Hybrid;
  /// Simulated OpenMP threads inside the rank (local kernel fan-out).
  int threads = 1;
  /// Ablation: when false, every nonzero column of A is fetched
  /// (sparsity-oblivious 1D), not just H ∩ D.
  bool sparsity_aware = true;
  /// Extension to Algorithm 2: merge adjacent chosen blocks into one message.
  bool merge_adjacent_blocks = false;
  /// Overlapped execution: the executor posts the value fetch of block
  /// g+1 (and beyond, up to `prefetch_inflight`) nonblocking while the
  /// scatter of block g runs, hiding RDMA time behind the compaction
  /// copies and the B̃ gather. Off = the seed's lockstep fetch loop; the
  /// written Ã values are bit-identical either way.
  bool overlap = true;
  /// Bounded prefetch depth: max in-flight value gets (≥ 1; each holds one
  /// staging buffer). Ignored when `overlap` is false.
  int prefetch_inflight = 4;

  /// Every field influences the cached plan, so plan-reusing callers
  /// (spgemm_1d_cached) compare whole option sets to decide replans.
  friend bool operator==(const Spgemm1dOptions&, const Spgemm1dOptions&) = default;
};

/// Per-rank diagnostics of one sparsity-aware multiply.
struct Spgemm1dInfo {
  index_t needed_cols = 0;    ///< |H ∩ D| over remote ranks
  index_t fetched_cols = 0;   ///< columns actually moved (block overshoot incl.)
  index_t fetched_elems = 0;  ///< nonzeros moved from remote ranks
  index_t atilde_nnz = 0;     ///< nnz of the compacted Ã
  index_t atilde_ncols = 0;
  /// Window gets issued. Through the one-shot spgemm_1d wrapper this is 2
  /// per block (one structure get at plan time + one value get at execute
  /// time, as before the split); a reused SpgemmPlan1D::execute issues only
  /// the value get, so standalone executes report 1 per block.
  index_t rdma_calls = 0;
};

/// Structure identity of one rank's (A, B) operand pair: the reuse check
/// of the inspector–executor split. The cheap fields (dims, per-rank nzc,
/// nnz) are verified on every execute; the 64-bit structure hashes over
/// (jc, cp, ir) make matches() robust for app loops whose operand
/// structure genuinely evolves (MCL pruning, BC frontiers).
struct StructureFingerprint {
  index_t a_nrows = 0, a_ncols = 0, b_nrows = 0, b_ncols = 0;
  index_t a_nzc = 0, a_nnz = 0;  ///< this rank's A slice
  index_t b_nzc = 0, b_nnz = 0;  ///< this rank's B slice
  std::uint64_t a_hash = 0, b_hash = 0;

  /// O(1) subset checked by every execute().
  [[nodiscard]] bool quick_equals(const StructureFingerprint& o) const {
    return a_nrows == o.a_nrows && a_ncols == o.a_ncols && b_nrows == o.b_nrows &&
           b_ncols == o.b_ncols && a_nzc == o.a_nzc && a_nnz == o.a_nnz && b_nzc == o.b_nzc &&
           b_nnz == o.b_nnz;
  }

};

namespace detail1d {

/// Metadata every rank replicates about every A slice: global nonzero
/// column ids and the element prefix within the owner's ir/vals arrays.
template <typename VT>
struct AMeta {
  std::vector<std::vector<index_t>> gids;  // [rank] -> global col ids (ascending)
  std::vector<std::vector<index_t>> cp;    // [rank] -> prefix, size nzc+1
};

/// Allgathers D (global nonzero column ids) and cp for all slices of A.
/// The paper counts this metadata exchange as "other" time; the plan/execute
/// split runs it once per structure (Phase::Plan) instead of once per call.
template <typename VT>
AMeta<VT> gather_a_metadata(Comm& comm, const DistMatrix1D<VT>& a) {
  std::vector<index_t> my_gids(static_cast<std::size_t>(a.local().nzc()));
  for (index_t k = 0; k < a.local().nzc(); ++k)
    my_gids[static_cast<std::size_t>(k)] = a.global_col(k);
  AMeta<VT> meta;
  meta.gids = comm.allgatherv(std::span<const index_t>(my_gids));
  meta.cp = comm.allgatherv(std::span<const index_t>(a.local().cp()));
  return meta;
}

/// Dense boolean vector of B_i's nonzero rows (the paper's H_i).
template <typename VT>
BitVector nonzero_rows(const DcscMatrix<VT>& b_local, index_t k) {
  BitVector h(k);
  for (auto r : b_local.ir()) h.set(r);
  return h;
}

inline std::uint64_t hash_mix64(std::uint64_t h, std::uint64_t v) {
  v *= 0x9e3779b97f4a7c15ULL;
  v ^= v >> 32;
  return (h ^ v) * 0x2545f4914f6cdd1dULL;
}

/// Order-sensitive hash of a DCSC slice's structure (jc, cp, ir + dims).
template <typename VT>
std::uint64_t structure_hash(const DcscMatrix<VT>& m) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = hash_mix64(h, static_cast<std::uint64_t>(m.nrows()));
  h = hash_mix64(h, static_cast<std::uint64_t>(m.ncols()));
  for (auto j : m.jc()) h = hash_mix64(h, static_cast<std::uint64_t>(j));
  for (auto c : m.cp()) h = hash_mix64(h, static_cast<std::uint64_t>(c));
  for (auto r : m.ir()) h = hash_mix64(h, static_cast<std::uint64_t>(r));
  return h;
}

/// The O(1) fingerprint fields only (no hashing).
template <typename VT>
StructureFingerprint quick_fingerprint_of(const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b) {
  StructureFingerprint fp;
  fp.a_nrows = a.nrows();
  fp.a_ncols = a.ncols();
  fp.b_nrows = b.nrows();
  fp.b_ncols = b.ncols();
  fp.a_nzc = a.local().nzc();
  fp.a_nnz = a.local().nnz();
  fp.b_nzc = b.local().nzc();
  fp.b_nnz = b.local().nnz();
  return fp;
}

template <typename VT>
StructureFingerprint fingerprint_of(const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b) {
  StructureFingerprint fp = quick_fingerprint_of(a, b);
  fp.a_hash = structure_hash(a.local());
  fp.b_hash = &a == &b ? fp.a_hash : structure_hash(b.local());
  return fp;
}

}  // namespace detail1d

/// The cached plan of one sparsity-aware 1D SpGEMM (the inspector side of
/// Algorithm 1). Construction is collective and performs all structural
/// work: metadata exchange, H∩D masks, Algorithm 2's block-fetch planning,
/// the structure fetches, Ã/B̃ assembly maps, and the local engine's
/// symbolic pass — all accounted as Phase::Plan. execute() replays the
/// plan for any (A, B) with matching structure: it issues only the value
/// gets and the numeric local pass, with zero metadata collectives and
/// zero symbolic work. The handle is rank-local (SPMD style), like
/// DistMatrix1D itself.
template <typename VT, typename SR = PlusTimes<VT>>
class SpgemmPlan1D {
 public:
  SpgemmPlan1D() = default;

  /// Inspector (collective): builds the full plan for C = A·B.
  SpgemmPlan1D(Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
               const Spgemm1dOptions& opt = {})
      : SpgemmPlan1D(comm, a, b, opt, std::nullopt) {}

  /// Inspector with pre-gathered metadata (collective): identical plan, but
  /// the (D, cp) allgather is skipped — `meta` must be the AMeta of *this*
  /// A distribution (gather_algo_cost_inputs hands its copy over, so an
  /// Algo::Auto → SA-1D dispatch performs exactly one metadata exchange).
  SpgemmPlan1D(Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
               const Spgemm1dOptions& opt, detail1d::AMeta<VT> meta)
      : SpgemmPlan1D(comm, a, b, opt,
                     std::optional<detail1d::AMeta<VT>>(std::move(meta))) {}

 private:
  SpgemmPlan1D(Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
               const Spgemm1dOptions& opt, std::optional<detail1d::AMeta<VT>> pre_meta) {
    require(a.ncols() == b.nrows(), "SpgemmPlan1D: inner dimension mismatch");
    require(opt.block_fetch_k > 0, "SpgemmPlan1D: block_fetch_k must be positive");
    const int P = comm.size();
    const int me = comm.rank();
    opt_ = opt;
    out_bounds_ = b.bounds();
    c_nrows_ = a.nrows();
    c_ncols_ = b.ncols();

    // Structure window only: the inspector never touches A's values.
    Window win_ir = comm.expose(std::span<const index_t>(a.local().ir()));

    // (2) Metadata exchange + (3) H vector + fingerprint.
    detail1d::AMeta<VT> meta;
    BitVector h;
    {
      auto ph = comm.phase(Phase::Plan);
      meta = pre_meta.has_value() ? std::move(*pre_meta) : detail1d::gather_a_metadata(comm, a);
      h = detail1d::nonzero_rows(b.local(), a.ncols());
      // Hashing here (not lazily) is deliberate: later matches()/execute()
      // calls no longer have the inspected operands, so the hashes must be
      // pinned now. One O(nnz) scan inside an inspector that already walks
      // the operands several times; one-shot wrappers pay it as Plan time.
      fp_ = detail1d::fingerprint_of(a, b);
    }

    // (4)+(5) Needed masks and per-rank fetch plans; exact Ã sizing.
    // Exact sizes are derivable from `needed` + cp before any data moves,
    // so the assembly below never grows a vector (in *both* modes — the
    // seed only pre-reserved the oblivious path).
    std::vector<std::vector<bool>> needed_all(static_cast<std::size_t>(P));
    std::vector<std::vector<FetchRange>> plans(static_cast<std::size_t>(P));
    std::vector<index_t> atilde_gids;  // global col order; drives the B̃ remap
    std::vector<index_t> atilde_colptr;
    std::vector<index_t> atilde_rows;
    std::size_t kept_cols = 0, kept_nnz = 0;
    {
      auto ph = comm.phase(Phase::Plan);
      for (int r = 0; r < P; ++r) {
        const auto& gids = meta.gids[static_cast<std::size_t>(r)];
        const auto& cp = meta.cp[static_cast<std::size_t>(r)];
        const auto nzc = static_cast<index_t>(gids.size());
        if (nzc == 0) continue;
        auto& needed = needed_all[static_cast<std::size_t>(r)];
        needed.assign(static_cast<std::size_t>(nzc), !opt.sparsity_aware);
        if (opt.sparsity_aware) {
          for (index_t p = 0; p < nzc; ++p)
            if (h.test(gids[static_cast<std::size_t>(p)])) needed[static_cast<std::size_t>(p)] = true;
        }
        for (index_t p = 0; p < nzc; ++p) {
          if (!needed[static_cast<std::size_t>(p)]) continue;
          ++kept_cols;
          kept_nnz += static_cast<std::size_t>(cp[static_cast<std::size_t>(p) + 1] -
                                               cp[static_cast<std::size_t>(p)]);
          if (r != me && opt.sparsity_aware) ++plan_info_.needed_cols;
        }
        if (r != me) {
          if (!opt.sparsity_aware) plan_info_.needed_cols += nzc;
          plans[static_cast<std::size_t>(r)] =
              block_fetch_plan(nzc, opt.block_fetch_k, needed, opt.merge_adjacent_blocks);
        }
      }
      atilde_gids.reserve(kept_cols);
      atilde_colptr.reserve(kept_cols + 1);
      atilde_colptr.push_back(0);
      atilde_rows.reserve(kept_nnz);
    }

    // (6)+(7), structural half: fetch remote row-id blocks, compact the
    // needed columns into Ã's structure, and record the value-copy program
    // the executor will replay (local spans + per-block fetch spans).
    std::vector<index_t> buf_ir;
    for (int r = 0; r < P; ++r) {
      const auto& gids = meta.gids[static_cast<std::size_t>(r)];
      const auto& cp = meta.cp[static_cast<std::size_t>(r)];
      const auto nzc = static_cast<index_t>(gids.size());
      if (nzc == 0) continue;
      const auto& needed = needed_all[static_cast<std::size_t>(r)];

      if (r == me) {
        // Local slice: no fetch; copy structure straight out of A_i and
        // remember the contiguous value spans for execute().
        auto ph = comm.phase(Phase::Plan);
        for (index_t p = 0; p < nzc; ++p) {
          if (!needed[static_cast<std::size_t>(p)]) continue;
          const index_t clo = cp[static_cast<std::size_t>(p)];
          const index_t chi = cp[static_cast<std::size_t>(p) + 1];
          append_span(local_copies_, clo, chi - clo, static_cast<index_t>(atilde_rows.size()));
          atilde_gids.push_back(gids[static_cast<std::size_t>(p)]);
          auto rows = a.local().col_rows_at(p);
          atilde_rows.insert(atilde_rows.end(), rows.begin(), rows.end());
          atilde_colptr.push_back(static_cast<index_t>(atilde_rows.size()));
        }
        continue;
      }

      for (const auto& range : plans[static_cast<std::size_t>(r)]) {
        const index_t elo = cp[static_cast<std::size_t>(range.begin)];
        const index_t ehi = cp[static_cast<std::size_t>(range.end)];
        const index_t len = ehi - elo;
        buf_ir.resize(static_cast<std::size_t>(len));
        comm.get(win_ir, r, elo, len, buf_ir.data());
        ++plan_rdma_calls_;
        plan_info_.fetched_cols += range.end - range.begin;
        plan_info_.fetched_elems += len;

        // Compact: keep only the needed columns out of the fetched block.
        auto ph = comm.phase(Phase::Plan);
        FetchOp op;
        op.owner = r;
        op.elo = elo;
        op.len = len;
        for (index_t p = range.begin; p < range.end; ++p) {
          if (!needed[static_cast<std::size_t>(p)]) continue;
          const index_t clo = cp[static_cast<std::size_t>(p)] - elo;
          const index_t chi = cp[static_cast<std::size_t>(p) + 1] - elo;
          append_span(op.spans, clo, chi - clo, static_cast<index_t>(atilde_rows.size()));
          atilde_gids.push_back(gids[static_cast<std::size_t>(p)]);
          atilde_rows.insert(atilde_rows.end(), buf_ir.begin() + clo, buf_ir.begin() + chi);
          atilde_colptr.push_back(static_cast<index_t>(atilde_rows.size()));
        }
        fetches_.push_back(std::move(op));
      }
    }

    // B̃ structure: row ids (global k-space) -> Ã column positions, plus the
    // value gather map bt_src (B̃ value i comes from B_i's vals[bt_src[i]]).
    // Rows of B whose A column is structurally empty are dropped (they
    // contribute nothing).
    {
      auto ph = comm.phase(Phase::Plan);
      plan_info_.atilde_ncols = static_cast<index_t>(atilde_gids.size());
      plan_info_.atilde_nnz = static_cast<index_t>(atilde_rows.size());
      plan_info_.rdma_calls = plan_rdma_calls_;

      const auto& bl = b.local();
      std::vector<index_t> bt_colptr;
      std::vector<index_t> bt_rows;
      bt_colptr.reserve(static_cast<std::size_t>(b.local_ncols()) + 1);
      bt_colptr.push_back(0);
      index_t next_local = 0;
      for (index_t kcol = 0; kcol < bl.nzc(); ++kcol) {
        // Emit empty columns for structurally empty B columns before this one.
        while (next_local < bl.col_id(kcol)) {
          bt_colptr.push_back(static_cast<index_t>(bt_rows.size()));
          ++next_local;
        }
        auto rows = bl.col_rows_at(kcol);
        const index_t base = bl.cp()[static_cast<std::size_t>(kcol)];
        for (std::size_t p = 0; p < rows.size(); ++p) {
          auto it = std::lower_bound(atilde_gids.begin(), atilde_gids.end(), rows[p]);
          if (it == atilde_gids.end() || *it != rows[p]) continue;
          bt_rows.push_back(static_cast<index_t>(it - atilde_gids.begin()));
          bt_src_.push_back(base + static_cast<index_t>(p));
        }
        bt_colptr.push_back(static_cast<index_t>(bt_rows.size()));
        ++next_local;
      }
      while (next_local < b.local_ncols()) {
        bt_colptr.push_back(static_cast<index_t>(bt_rows.size()));
        ++next_local;
      }

      // Persistent Ã/B̃ shells: structure is final here and moves in; only
      // the value arrays are overwritten (in place) by each execute().
      const auto bt_nnz = bt_rows.size();
      atilde_m_ = CscMatrix<VT>(c_nrows_, plan_info_.atilde_ncols, std::move(atilde_colptr),
                                std::move(atilde_rows),
                                std::vector<VT>(static_cast<std::size_t>(plan_info_.atilde_nnz)));
      btilde_m_ = CscMatrix<VT>(plan_info_.atilde_ncols, b.local_ncols(), std::move(bt_colptr),
                                std::move(bt_rows), std::vector<VT>(bt_nnz));

      // (8), symbolic half: exact C colptr, per-column accumulator class,
      // and the flop-balanced thread partition — structural, so the
      // value-free shells are all it needs.
      sym_ = spgemm_local_symbolic<SR, VT>(atilde_m_, btilde_m_, opt.kernel,
                                                      opt.threads, &ws_);
    }

    // Keep A's structure window alive until every rank finished fetching.
    comm.barrier();
    built_ = true;
  }

 public:
  /// Executor (collective): replays the plan for any (A, B) whose structure
  /// matches the fingerprint — only value gets and the numeric local pass.
  /// The full local fingerprint (cheap fields, then hashes) is verified on
  /// every call, so a structure drift that happens to preserve nzc/nnz
  /// cannot silently replay a stale plan; matches() is the collective
  /// variant for uniform replan-vs-reuse decisions.
  DistMatrix1D<VT> execute(Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                           Spgemm1dInfo* info_out = nullptr) {
    {
      auto ph = comm.phase(Phase::Other);
      require(built_, "SpgemmPlan1D::execute: plan was never built");
      require(matches_local(a, b),
              "SpgemmPlan1D::execute: operand structure does not match the plan fingerprint "
              "(iterated callers should decide replan-vs-reuse with the collective matches(), "
              "or use spgemm_1d_cached)");
    }
    return execute_verified(comm, a, b, info_out);
  }

  /// Executor without the O(nnz) hash re-check. Precondition: the operand
  /// pair was just verified against this plan — a successful collective
  /// matches() this iteration, or the plan was built from these operands
  /// (spgemm_1d and spgemm_1d_cached call this). Only the O(1) fingerprint
  /// fields are re-validated.
  DistMatrix1D<VT> execute_verified(Comm& comm, const DistMatrix1D<VT>& a,
                                    const DistMatrix1D<VT>& b,
                                    Spgemm1dInfo* info_out = nullptr) {
    // Structured (not a bare require): a rank whose operands diverged from
    // the verified plan must not skip the window expose while peers get
    // from it — comm.fail raises PlanMismatch machine-wide so every rank
    // unwinds with the identical recoverable error.
    if (!built_ || !quick_matches_local(a, b))
      comm.fail(FaultClass::PlanMismatch, "execute_verified",
                "SpgemmPlan1D::execute_verified: operand/plan mismatch (rank " +
                    std::to_string(comm.global_rank(comm.rank())) +
                    "'s operand dims/nnz diverged from the plan fingerprint)");

    Window win_val = comm.expose(std::span<const VT>(a.local().vals()));

    // Transient-memory gauge (DESIGN.md §13): the Ã/B̃ assemblies are the
    // SA-1D execution's working set — charged for the duration of the call
    // (the shells are plan-resident, but their values are live operand
    // copies only while the multiply runs).
    auto& rep = comm.report();
    const std::uint64_t live =
        static_cast<std::uint64_t>(atilde_m_.nnz()) + static_cast<std::uint64_t>(btilde_m_.nnz());
    rep.mem_charge(live, live * sizeof(VT));

    // Ã values, written in place into the cached shell: local spans + one
    // value get per planned block.
    VT* av = atilde_m_.mutable_vals().data();
    {
      auto ph = comm.phase(Phase::Other);
      const VT* src = a.local().vals().data();
      for (const auto& s : local_copies_)
        std::copy_n(src + s.src, static_cast<std::size_t>(s.len), av + s.dst);
    }
    index_t exec_gets = 0;
    const std::size_t nf = fetches_.size();
    if (opt_.overlap && opt_.prefetch_inflight > 0 && nf > 0) {
      // Prefetch pipeline: keep up to `prefetch_inflight` value gets in
      // flight, each with its own staging buffer; the scatter of block g
      // (and the B̃ gather below) runs while blocks g+1.. travel. A slot is
      // reused only after its block has been drained, bounding memory.
      const std::size_t depth = std::min(static_cast<std::size_t>(opt_.prefetch_inflight), nf);
      if (prefetch_bufs_.size() < depth) prefetch_bufs_.resize(depth);
      std::vector<std::optional<CommRequest>> ring(depth);
      auto issue = [&](std::size_t i) {
        const auto& f = fetches_[i];
        auto& buf = prefetch_bufs_[i % depth];
        buf.resize(static_cast<std::size_t>(f.len));
        ring[i % depth].emplace(comm.iget(win_val, f.owner, f.elo, f.len, buf.data()));
      };
      for (std::size_t i = 0; i < depth; ++i) issue(i);
      // The B̃ gather is independent of Ã's fetched values, so it runs
      // inside the in-flight window (same bytes written as the lockstep
      // path, just earlier).
      {
        auto ph = comm.phase(Phase::Other);
        VT* btv = btilde_m_.mutable_vals().data();
        const VT* bv = b.local().vals().data();
        for (std::size_t i = 0; i < bt_src_.size(); ++i)
          btv[i] = bv[static_cast<std::size_t>(bt_src_[i])];
      }
      for (std::size_t i = 0; i < nf; ++i) {
        ring[i % depth]->wait();
        ring[i % depth].reset();
        ++exec_gets;
        {
          auto ph = comm.phase(Phase::Other);
          const VT* src = prefetch_bufs_[i % depth].data();
          for (const auto& s : fetches_[i].spans)
            std::copy_n(src + s.src, static_cast<std::size_t>(s.len), av + s.dst);
        }
        if (i + depth < nf) issue(i + depth);
      }
    } else {
      for (const auto& f : fetches_) {
        fetch_buf_.resize(static_cast<std::size_t>(f.len));
        comm.get(win_val, f.owner, f.elo, f.len, fetch_buf_.data());
        ++exec_gets;
        auto ph = comm.phase(Phase::Other);
        for (const auto& s : f.spans)
          std::copy_n(fetch_buf_.data() + s.src, static_cast<std::size_t>(s.len), av + s.dst);
      }
      // B̃ values through the cached gather map, then the numeric multiply
      // against the cached symbolic result.
      {
        auto ph = comm.phase(Phase::Other);
        VT* btv = btilde_m_.mutable_vals().data();
        const VT* bv = b.local().vals().data();
        for (std::size_t i = 0; i < bt_src_.size(); ++i)
          btv[i] = bv[static_cast<std::size_t>(bt_src_[i])];
      }
    }
    CscMatrix<VT> c_local;
    {
      auto ph = comm.phase(Phase::Comp);
      c_local = spgemm_local_numeric<SR, VT>(atilde_m_, btilde_m_, sym_, &ws_);
    }

    // Keep A's value window alive until every rank finished fetching.
    comm.barrier();

    DcscMatrix<VT> c_dcsc;
    {
      auto ph = comm.phase(Phase::Other);
      c_dcsc = DcscMatrix<VT>::from_csc(c_local);
    }
    rep.mem_release(live, live * sizeof(VT));
    ++executions_;
    if (info_out != nullptr) {
      *info_out = plan_info_;
      info_out->rdma_calls = exec_gets;
    }
    return DistMatrix1D<VT>(c_nrows_, c_ncols_, out_bounds_, comm.rank(), std::move(c_dcsc));
  }

  [[nodiscard]] bool empty() const { return !built_; }

  /// Exact rank-local reuse check: the O(1) fields first (dims, nzc, nnz —
  /// these reject almost every real structure change, e.g. a BC frontier
  /// growing between levels, without touching the arrays), then the
  /// structure hashes. When a and b are the same object (squaring) the
  /// slice is hashed once.
  [[nodiscard]] bool matches_local(const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b) const {
    if (!built_ || !quick_matches_local(a, b)) return false;
    const std::uint64_t ah = detail1d::structure_hash(a.local());
    if (ah != fp_.a_hash) return false;
    const std::uint64_t bh = &a == &b ? ah : detail1d::structure_hash(b.local());
    return bh == fp_.b_hash;
  }

  /// Collective reuse check: true iff every rank's slice matches its plan.
  [[nodiscard]] bool matches(Comm& comm, const DistMatrix1D<VT>& a,
                             const DistMatrix1D<VT>& b) const {
    int ok;
    {
      auto ph = comm.phase(Phase::Other);
      ok = matches_local(a, b) ? 1 : 0;
    }
    return comm.allreduce(ok, [](int x, int y) { return x < y ? x : y; }) == 1;
  }

  /// Inspector-side diagnostics (structural; identical for every execute).
  [[nodiscard]] const Spgemm1dInfo& info() const { return plan_info_; }
  /// Structure gets issued by the inspector (one per planned block).
  [[nodiscard]] index_t plan_rdma_calls() const { return plan_rdma_calls_; }
  [[nodiscard]] const Spgemm1dOptions& options() const { return opt_; }
  [[nodiscard]] int executions() const { return executions_; }
  /// The rank-local structure identity the plan was built for (backend-
  /// generic plan layers reuse it instead of re-hashing the operands).
  [[nodiscard]] const StructureFingerprint& fingerprint() const { return fp_; }

  /// Byte-accurate residency of the cached replay program on this rank
  /// (major arrays only; staging buffers and warm workspaces are scratch) —
  /// what the plan cache's budget accounts against.
  [[nodiscard]] std::uint64_t bytes_resident() const {
    auto csc = [](const CscMatrix<VT>& m) {
      return m.colptr().size() * sizeof(index_t) + m.rowids().size() * sizeof(index_t) +
             m.vals().size() * sizeof(VT);
    };
    std::uint64_t b = csc(atilde_m_) + csc(btilde_m_);
    b += local_copies_.size() * sizeof(CopySpan);
    for (const auto& f : fetches_) b += sizeof(FetchOp) + f.spans.size() * sizeof(CopySpan);
    b += bt_src_.size() * sizeof(index_t);
    b += sym_.bounds.size() * sizeof(index_t) + sym_.colptr.size() * sizeof(index_t) +
         sym_.klass.size();
    return b;
  }

  /// One member of a fused SA-1D batch: a verified plan plus the operand
  /// pair it replays.
  struct FusedArg {
    SpgemmPlan1D* plan;
    const DistMatrix1D<VT>* a;
    const DistMatrix1D<VT>* b;
  };

  /// Batched executor (collective): replays k verified plans in one fused
  /// fetch wave. All members' A-value windows are exposed up front, the
  /// members' planned value gets flatten into a single member-major
  /// interleaved pipeline (one bounded in-flight ring across the whole
  /// batch, so member boundaries never drain it), and ONE barrier at the end
  /// covers every window — k multiplies pay one expose/barrier round and one
  /// continuously-full RDMA pipeline instead of k sequential ones. Each
  /// member's value copies, gathers, and numeric pass are the sequential
  /// executor's, byte for byte, so every result is bit-identical to its own
  /// execute_verified call. Results are returned in member order.
  static std::vector<DistMatrix1D<VT>> execute_fused(Comm& comm,
                                                     std::span<const FusedArg> ops) {
    const std::size_t k = ops.size();
    // Verify every member before the first collective: a diverged member
    // must raise machine-wide, not leave peers stuck in the expose round.
    for (std::size_t m = 0; m < k; ++m)
      if (ops[m].plan == nullptr || !ops[m].plan->built_ ||
          !ops[m].plan->quick_matches_local(*ops[m].a, *ops[m].b))
        comm.fail(FaultClass::PlanMismatch, "execute_fused",
                  "SpgemmPlan1D::execute_fused: batch member " + std::to_string(m) +
                      "'s operand/plan mismatch (rank " +
                      std::to_string(comm.global_rank(comm.rank())) + ")");

    // Expose every member's window before any get — peers may be fetching
    // member j while this rank still pipelines member i.
    std::vector<Window> wins;
    wins.reserve(k);
    for (const auto& op : ops)
      wins.push_back(comm.expose(std::span<const VT>(op.a->local().vals())));

    // Transient-memory gauge: every member's Ã/B̃ assembly is live at once
    // in the fused wave (that is the point of fusion).
    auto& rep = comm.report();
    std::uint64_t live = 0;
    for (const auto& op : ops)
      live += static_cast<std::uint64_t>(op.plan->atilde_m_.nnz()) +
              static_cast<std::uint64_t>(op.plan->btilde_m_.nnz());
    rep.mem_charge(live, live * sizeof(VT));

    // Local value copies and B̃ gathers for the whole batch (independent of
    // the fetched values, so they run before/inside the in-flight window).
    for (const auto& op : ops) {
      auto ph = comm.phase(Phase::Other);
      VT* av = op.plan->atilde_m_.mutable_vals().data();
      const VT* src = op.a->local().vals().data();
      for (const auto& s : op.plan->local_copies_)
        std::copy_n(src + s.src, static_cast<std::size_t>(s.len), av + s.dst);
      VT* btv = op.plan->btilde_m_.mutable_vals().data();
      const VT* bv = op.b->local().vals().data();
      for (std::size_t i = 0; i < op.plan->bt_src_.size(); ++i)
        btv[i] = bv[static_cast<std::size_t>(op.plan->bt_src_[i])];
    }

    // Fused fetch wave: member-major flattening, one bounded ring.
    struct FlatFetch {
      std::size_t m, i;
    };
    std::vector<FlatFetch> flat;
    std::size_t depth = 1;
    for (std::size_t m = 0; m < k; ++m) {
      const auto& p = *ops[m].plan;
      for (std::size_t i = 0; i < p.fetches_.size(); ++i) flat.push_back({m, i});
      if (p.opt_.overlap && p.opt_.prefetch_inflight > 0)
        depth = std::max(depth, static_cast<std::size_t>(p.opt_.prefetch_inflight));
    }
    const std::size_t nf = flat.size();
    if (nf > 0) {
      depth = std::min(depth, nf);
      std::vector<std::vector<VT>> bufs(depth);
      std::vector<std::optional<CommRequest>> ring(depth);
      auto issue = [&](std::size_t x) {
        const auto& p = *ops[flat[x].m].plan;
        const auto& f = p.fetches_[flat[x].i];
        auto& buf = bufs[x % depth];
        buf.resize(static_cast<std::size_t>(f.len));
        ring[x % depth].emplace(comm.iget(wins[flat[x].m], f.owner, f.elo, f.len, buf.data()));
      };
      for (std::size_t x = 0; x < depth; ++x) issue(x);
      for (std::size_t x = 0; x < nf; ++x) {
        ring[x % depth]->wait();
        ring[x % depth].reset();
        {
          auto ph = comm.phase(Phase::Other);
          auto& p = *ops[flat[x].m].plan;
          const auto& f = p.fetches_[flat[x].i];
          VT* av = p.atilde_m_.mutable_vals().data();
          const VT* src = bufs[x % depth].data();
          for (const auto& s : f.spans)
            std::copy_n(src + s.src, static_cast<std::size_t>(s.len), av + s.dst);
        }
        if (x + depth < nf) issue(x + depth);
      }
    }

    // Numeric passes in member order — the same kernel calls the sequential
    // executor makes, so each member's values are bit-identical.
    std::vector<CscMatrix<VT>> c_locals;
    c_locals.reserve(k);
    for (const auto& op : ops) {
      auto ph = comm.phase(Phase::Comp);
      c_locals.push_back(spgemm_local_numeric<SR, VT>(op.plan->atilde_m_, op.plan->btilde_m_,
                                                      op.plan->sym_, &op.plan->ws_));
    }

    // One barrier keeps every member's value window alive until all ranks
    // finished fetching — the batch's single synchronization round.
    comm.barrier();

    std::vector<DistMatrix1D<VT>> out;
    out.reserve(k);
    for (std::size_t m = 0; m < k; ++m) {
      auto ph = comm.phase(Phase::Other);
      DcscMatrix<VT> c_dcsc = DcscMatrix<VT>::from_csc(c_locals[m]);
      ++ops[m].plan->executions_;
      out.emplace_back(ops[m].plan->c_nrows_, ops[m].plan->c_ncols_, ops[m].plan->out_bounds_,
                       comm.rank(), std::move(c_dcsc));
    }
    rep.mem_release(live, live * sizeof(VT));
    return out;
  }

 private:
  /// One contiguous value copy of the executor's replay program.
  struct CopySpan {
    index_t src = 0;  ///< local copies: offset into A_i's vals; fetched: offset into the block
    index_t len = 0;
    index_t dst = 0;  ///< offset into Ã's vals
  };
  /// One planned RDMA value get plus the compaction copies out of it.
  struct FetchOp {
    int owner = 0;
    index_t elo = 0;
    index_t len = 0;
    std::vector<CopySpan> spans;
  };

  static void append_span(std::vector<CopySpan>& spans, index_t src, index_t len, index_t dst) {
    if (!spans.empty() && spans.back().src + spans.back().len == src &&
        spans.back().dst + spans.back().len == dst) {
      spans.back().len += len;  // adjacent kept columns coalesce into one memcpy
    } else {
      spans.push_back({src, len, dst});
    }
  }

  [[nodiscard]] bool quick_matches_local(const DistMatrix1D<VT>& a,
                                         const DistMatrix1D<VT>& b) const {
    return fp_.quick_equals(detail1d::quick_fingerprint_of(a, b));
  }

  bool built_ = false;
  Spgemm1dOptions opt_{};
  StructureFingerprint fp_{};
  std::vector<index_t> out_bounds_{0, 0};
  index_t c_nrows_ = 0;
  index_t c_ncols_ = 0;

  // Cached Ã/B̃ shells (structure final at plan time; execute overwrites
  // values in place) + the value replay program.
  CscMatrix<VT> atilde_m_;
  CscMatrix<VT> btilde_m_;
  std::vector<CopySpan> local_copies_;
  std::vector<FetchOp> fetches_;
  std::vector<index_t> bt_src_;  ///< B̃ value i = B_i.vals[bt_src_[i]]

  // Local engine's cached symbolic result + warm per-thread workspaces.
  LocalSymbolic sym_;
  std::vector<detail::Workspace<SR>> ws_;

  Spgemm1dInfo plan_info_{};
  index_t plan_rdma_calls_ = 0;
  int executions_ = 0;
  std::vector<VT> fetch_buf_;
  std::vector<std::vector<VT>> prefetch_bufs_;  ///< one staging buffer per in-flight get
};

/// The sparsity-aware 1D SpGEMM (paper Algorithm 1). Collective. One-shot
/// plan-then-execute over SpgemmPlan1D; iterated callers should hold the
/// plan and call execute() per iteration instead.
/// Phase accounting: inspector work (metadata, masks, fetch planning,
/// symbolic) → Plan; value assembly + output conversion → Other; the
/// numeric local multiply → Comp; window gets → RDMA counters.
template <typename SRIn = void, typename VT>
DistMatrix1D<VT> spgemm_1d(Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                           const Spgemm1dOptions& opt = {}, Spgemm1dInfo* info_out = nullptr) {
  SpgemmPlan1D<VT, ResolveSemiring<SRIn, VT>> plan(comm, a, b, opt);
  auto c = plan.execute_verified(comm, a, b, info_out);
  if (info_out != nullptr) info_out->rdma_calls += plan.plan_rdma_calls();
  return c;
}

/// Iterated-caller entry point: reuses `plan` when every rank's operand
/// structure still matches it (one collective check), rebuilds it
/// otherwise, then executes. The full fingerprint is verified exactly once
/// per call — either by matches() or by the fresh build — so the executor
/// skips its own O(nnz) re-hash. The empty()/matches() decision is uniform
/// across ranks, which keeps the replan collective deadlock-free. The app
/// loops (MCL rounds, BC levels, AMG setup refreshes) all go through this.
template <typename VT, typename SR>
DistMatrix1D<VT> spgemm_1d_cached(Comm& comm, SpgemmPlan1D<VT, SR>& plan,
                                  const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                                  const Spgemm1dOptions& opt = {},
                                  Spgemm1dInfo* info_out = nullptr) {
  // An option change invalidates the plan just like a structure change:
  // every option field shapes the fetch plan or the local pass.
  if (plan.empty() || plan.options() != opt || !plan.matches(comm, a, b))
    plan = SpgemmPlan1D<VT, SR>(comm, a, b, opt);
  return plan.execute_verified(comm, a, b, info_out);
}

/// The paper's §V advisor: planned RDMA volume over the full size of A
/// (CV/memA). Computable from metadata alone, before any data movement;
/// above ~0.3 the paper recommends graph partitioning first. Collective.
template <typename VT>
double cv_over_mem_a(Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                     const Spgemm1dOptions& opt = {}) {
  auto meta = detail1d::gather_a_metadata(comm, a);
  BitVector h = detail1d::nonzero_rows(b.local(), a.ncols());
  std::uint64_t planned = 0;
  for (int r = 0; r < comm.size(); ++r) {
    if (r == comm.rank()) continue;
    const auto& gids = meta.gids[static_cast<std::size_t>(r)];
    const auto nzc = static_cast<index_t>(gids.size());
    if (nzc == 0) continue;
    std::vector<bool> needed(static_cast<std::size_t>(nzc), !opt.sparsity_aware);
    if (opt.sparsity_aware)
      for (index_t p = 0; p < nzc; ++p)
        if (h.test(gids[static_cast<std::size_t>(p)])) needed[static_cast<std::size_t>(p)] = true;
    auto plan = block_fetch_plan(nzc, opt.block_fetch_k, needed, opt.merge_adjacent_blocks);
    planned += static_cast<std::uint64_t>(
        plan_elements(plan, std::span<const index_t>(meta.cp[static_cast<std::size_t>(r)])));
  }
  std::uint64_t planned_total = comm.allreduce_sum(planned);
  auto mem_a = static_cast<std::uint64_t>(a.global_nnz(comm));
  if (mem_a == 0) return 0.0;
  // Fig 5(b)'s ratio of 1.0 means "each process retrieves all of A", so the
  // numerator is the *average per-process* fetched volume (in elements).
  double per_rank = static_cast<double>(planned_total) / static_cast<double>(comm.size());
  return per_rank / static_cast<double>(mem_a);
}

}  // namespace sa1d
