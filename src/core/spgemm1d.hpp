// Algorithm 1 of the paper: the sparsity-aware 1D SpGEMM.
//
//   C = A · B with A, B, C all 1D column-distributed. B and C are
//   stationary; the only data movement is one-sided fetches of the A
//   columns each rank actually needs:
//
//     1. expose two windows over A's local row-id and value arrays
//     2. allgather A's nonzero column ids (D) and per-column prefix (cp)
//     3. H_i := nonzero rows of B_i (dense boolean vector of length k)
//     4. required ids D̃ := H_i ∩ D
//     5. group fetches with the block-fetch strategy (Algorithm 2)
//     6. MPI_Get-style passive-target fetches of the chosen blocks
//     7. compact fetched columns into Ã (only needed columns are kept)
//     8. C_i = Ã · B_i with a local heap/hash hybrid kernel
//
// No communication of C is needed: it is born 1D-distributed.
#pragma once

#include <vector>

#include "core/block_fetch.hpp"
#include "dist/dist_matrix.hpp"
#include "kernels/spgemm_local.hpp"
#include "runtime/machine.hpp"
#include "util/bitvector.hpp"

namespace sa1d {

struct Spgemm1dOptions {
  /// Algorithm 2's K: max RDMA block fetches per remote process.
  index_t block_fetch_k = 2048;
  /// Local kernel for C_i = Ã·B_i.
  LocalKernel kernel = LocalKernel::Hybrid;
  /// Simulated OpenMP threads inside the rank (local kernel fan-out).
  int threads = 1;
  /// Ablation: when false, every nonzero column of A is fetched
  /// (sparsity-oblivious 1D), not just H ∩ D.
  bool sparsity_aware = true;
  /// Extension to Algorithm 2: merge adjacent chosen blocks into one message.
  bool merge_adjacent_blocks = false;
};

/// Per-rank diagnostics of one sparsity-aware multiply.
struct Spgemm1dInfo {
  index_t needed_cols = 0;    ///< |H ∩ D| over remote ranks
  index_t fetched_cols = 0;   ///< columns actually moved (block overshoot incl.)
  index_t fetched_elems = 0;  ///< nonzeros moved from remote ranks
  index_t atilde_nnz = 0;     ///< nnz of the compacted Ã
  index_t atilde_ncols = 0;
  index_t rdma_calls = 0;     ///< window gets issued (2 per block: ir + vals)
};

namespace detail1d {

/// Metadata every rank replicates about every A slice: global nonzero
/// column ids and the element prefix within the owner's ir/vals arrays.
template <typename VT>
struct AMeta {
  std::vector<std::vector<index_t>> gids;  // [rank] -> global col ids (ascending)
  std::vector<std::vector<index_t>> cp;    // [rank] -> prefix, size nzc+1
};

/// Allgathers D (global nonzero column ids) and cp for all slices of A.
/// The paper counts this metadata exchange as "other" time.
template <typename VT>
AMeta<VT> gather_a_metadata(Comm& comm, const DistMatrix1D<VT>& a) {
  std::vector<index_t> my_gids(static_cast<std::size_t>(a.local().nzc()));
  for (index_t k = 0; k < a.local().nzc(); ++k)
    my_gids[static_cast<std::size_t>(k)] = a.global_col(k);
  AMeta<VT> meta;
  meta.gids = comm.allgatherv(std::span<const index_t>(my_gids));
  meta.cp = comm.allgatherv(std::span<const index_t>(a.local().cp()));
  return meta;
}

/// Dense boolean vector of B_i's nonzero rows (the paper's H_i).
template <typename VT>
BitVector nonzero_rows(const DcscMatrix<VT>& b_local, index_t k) {
  BitVector h(k);
  for (auto r : b_local.ir()) h.set(r);
  return h;
}

}  // namespace detail1d

/// The sparsity-aware 1D SpGEMM (paper Algorithm 1). Collective.
/// Phase accounting: metadata + Ã assembly + output conversion → Other;
/// the local multiply → Comp; window gets → RDMA counters (modeled time).
template <typename VT>
DistMatrix1D<VT> spgemm_1d(Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                           const Spgemm1dOptions& opt = {}, Spgemm1dInfo* info_out = nullptr) {
  require(a.ncols() == b.nrows(), "spgemm_1d: inner dimension mismatch");
  require(opt.block_fetch_k > 0, "spgemm_1d: block_fetch_k must be positive");
  const int P = comm.size();
  const int me = comm.rank();
  Spgemm1dInfo info;

  // (1) Windows over A's structural and numeric arrays.
  Window win_ir = comm.expose(std::span<const index_t>(a.local().ir()));
  Window win_val = comm.expose(std::span<const VT>(a.local().vals()));

  // (2) Metadata exchange + (3) H vector. "Other" time.
  detail1d::AMeta<VT> meta;
  BitVector h;
  {
    auto ph = comm.phase(Phase::Other);
    meta = detail1d::gather_a_metadata(comm, a);
    h = detail1d::nonzero_rows(b.local(), a.ncols());
  }

  // (4)-(7) Plan, fetch, and assemble the compacted Ã in global col order.
  std::vector<index_t> atilde_gids;
  std::vector<index_t> atilde_colptr{0};
  std::vector<index_t> atilde_rows;
  std::vector<VT> atilde_vals;
  if (!opt.sparsity_aware) {
    // Oblivious mode keeps every nonzero column of A, so Ã's exact width
    // and nnz are both known from the replicated metadata. (Sparsity-aware
    // mode keeps a small subset; pre-reserving the full bound there would
    // defeat the compaction's memory savings.)
    std::size_t nzc_total = 0, nnz_total = 0;
    for (const auto& g : meta.gids) nzc_total += g.size();
    for (const auto& cp : meta.cp)
      if (!cp.empty()) nnz_total += static_cast<std::size_t>(cp.back());
    atilde_gids.reserve(nzc_total);
    atilde_colptr.reserve(nzc_total + 1);
    atilde_rows.reserve(nnz_total);
    atilde_vals.reserve(nnz_total);
  }

  std::vector<index_t> buf_ir;
  std::vector<VT> buf_val;
  for (int r = 0; r < P; ++r) {
    const auto& gids = meta.gids[static_cast<std::size_t>(r)];
    const auto& cp = meta.cp[static_cast<std::size_t>(r)];
    const auto nzc = static_cast<index_t>(gids.size());
    if (nzc == 0) continue;

    if (r == me) {
      // Local slice: no fetch; copy needed columns straight out of A_i.
      auto ph = comm.phase(Phase::Other);
      for (index_t p = 0; p < nzc; ++p) {
        if (opt.sparsity_aware && !h.test(gids[static_cast<std::size_t>(p)])) continue;
        atilde_gids.push_back(gids[static_cast<std::size_t>(p)]);
        auto rows = a.local().col_rows_at(p);
        auto vals = a.local().col_vals_at(p);
        atilde_rows.insert(atilde_rows.end(), rows.begin(), rows.end());
        atilde_vals.insert(atilde_vals.end(), vals.begin(), vals.end());
        atilde_colptr.push_back(static_cast<index_t>(atilde_rows.size()));
      }
      continue;
    }

    std::vector<bool> needed(static_cast<std::size_t>(nzc), !opt.sparsity_aware);
    if (opt.sparsity_aware) {
      auto ph = comm.phase(Phase::Other);
      for (index_t p = 0; p < nzc; ++p) {
        if (h.test(gids[static_cast<std::size_t>(p)])) {
          needed[static_cast<std::size_t>(p)] = true;
          ++info.needed_cols;
        }
      }
    } else {
      info.needed_cols += nzc;
    }

    auto plan =
        block_fetch_plan(nzc, opt.block_fetch_k, needed, opt.merge_adjacent_blocks);
    for (const auto& range : plan) {
      index_t elo = cp[static_cast<std::size_t>(range.begin)];
      index_t ehi = cp[static_cast<std::size_t>(range.end)];
      index_t len = ehi - elo;
      buf_ir.resize(static_cast<std::size_t>(len));
      buf_val.resize(static_cast<std::size_t>(len));
      comm.get(win_ir, r, elo, len, buf_ir.data());
      comm.get(win_val, r, elo, len, buf_val.data());
      info.rdma_calls += 2;
      info.fetched_cols += range.end - range.begin;
      info.fetched_elems += len;

      // Compact: keep only the needed columns out of the fetched block.
      auto ph = comm.phase(Phase::Other);
      for (index_t p = range.begin; p < range.end; ++p) {
        if (!needed[static_cast<std::size_t>(p)]) continue;
        index_t clo = cp[static_cast<std::size_t>(p)] - elo;
        index_t chi = cp[static_cast<std::size_t>(p) + 1] - elo;
        atilde_gids.push_back(gids[static_cast<std::size_t>(p)]);
        atilde_rows.insert(atilde_rows.end(), buf_ir.begin() + clo, buf_ir.begin() + chi);
        atilde_vals.insert(atilde_vals.end(), buf_val.begin() + clo, buf_val.begin() + chi);
        atilde_colptr.push_back(static_cast<index_t>(atilde_rows.size()));
      }
    }
  }

  // Assemble Ã and the remapped B̃_i, then run the local multiply.
  CscMatrix<VT> atilde_m, btilde_m;
  {
    auto ph = comm.phase(Phase::Other);
    info.atilde_ncols = static_cast<index_t>(atilde_gids.size());
    info.atilde_nnz = static_cast<index_t>(atilde_rows.size());

    CscMatrix<VT> atilde(a.nrows(), info.atilde_ncols, atilde_colptr, atilde_rows, atilde_vals);

    // B̃_i: row ids (global k-space) -> Ã column positions. Rows of B whose
    // A column is structurally empty are dropped (they contribute nothing).
    const auto& bl = b.local();
    std::vector<index_t> bt_colptr{0};
    std::vector<index_t> bt_rows;
    std::vector<VT> bt_vals;
    bt_colptr.reserve(static_cast<std::size_t>(b.local_ncols()) + 1);
    index_t next_local = 0;
    for (index_t kcol = 0; kcol < bl.nzc(); ++kcol) {
      // Emit empty columns for structurally empty B columns before this one.
      while (next_local < bl.col_id(kcol)) {
        bt_colptr.push_back(static_cast<index_t>(bt_rows.size()));
        ++next_local;
      }
      auto rows = bl.col_rows_at(kcol);
      auto vals = bl.col_vals_at(kcol);
      for (std::size_t p = 0; p < rows.size(); ++p) {
        auto it = std::lower_bound(atilde_gids.begin(), atilde_gids.end(), rows[p]);
        if (it == atilde_gids.end() || *it != rows[p]) continue;
        bt_rows.push_back(static_cast<index_t>(it - atilde_gids.begin()));
        bt_vals.push_back(vals[p]);
      }
      bt_colptr.push_back(static_cast<index_t>(bt_rows.size()));
      ++next_local;
    }
    while (next_local < b.local_ncols()) {
      bt_colptr.push_back(static_cast<index_t>(bt_rows.size()));
      ++next_local;
    }
    atilde_m = std::move(atilde);
    btilde_m = CscMatrix<VT>(info.atilde_ncols, b.local_ncols(), std::move(bt_colptr),
                             std::move(bt_rows), std::move(bt_vals));
  }

  CscMatrix<VT> c_local;
  {
    auto ph = comm.phase(Phase::Comp);
    c_local = spgemm_local<PlusTimes<VT>, VT>(atilde_m, btilde_m, opt.kernel, opt.threads);
  }

  // Keep A's windows alive until every rank finished fetching.
  comm.barrier();

  DcscMatrix<VT> c_dcsc;
  {
    auto ph = comm.phase(Phase::Other);
    c_dcsc = DcscMatrix<VT>::from_csc(c_local);
  }
  DistMatrix1D<VT> c(a.nrows(), b.ncols(), b.bounds(), me, std::move(c_dcsc));
  if (info_out != nullptr) *info_out = info;
  return c;
}

/// The paper's §V advisor: planned RDMA volume over the full size of A
/// (CV/memA). Computable from metadata alone, before any data movement;
/// above ~0.3 the paper recommends graph partitioning first. Collective.
template <typename VT>
double cv_over_mem_a(Comm& comm, const DistMatrix1D<VT>& a, const DistMatrix1D<VT>& b,
                     const Spgemm1dOptions& opt = {}) {
  auto meta = detail1d::gather_a_metadata(comm, a);
  BitVector h = detail1d::nonzero_rows(b.local(), a.ncols());
  std::uint64_t planned = 0;
  for (int r = 0; r < comm.size(); ++r) {
    if (r == comm.rank()) continue;
    const auto& gids = meta.gids[static_cast<std::size_t>(r)];
    const auto nzc = static_cast<index_t>(gids.size());
    if (nzc == 0) continue;
    std::vector<bool> needed(static_cast<std::size_t>(nzc), !opt.sparsity_aware);
    if (opt.sparsity_aware)
      for (index_t p = 0; p < nzc; ++p)
        if (h.test(gids[static_cast<std::size_t>(p)])) needed[static_cast<std::size_t>(p)] = true;
    auto plan = block_fetch_plan(nzc, opt.block_fetch_k, needed, opt.merge_adjacent_blocks);
    planned += static_cast<std::uint64_t>(
        plan_elements(plan, std::span<const index_t>(meta.cp[static_cast<std::size_t>(r)])));
  }
  std::uint64_t planned_total = comm.allreduce_sum(planned);
  auto mem_a = static_cast<std::uint64_t>(a.global_nnz(comm));
  if (mem_a == 0) return 0.0;
  // Fig 5(b)'s ratio of 1.0 means "each process retrieves all of A", so the
  // numerator is the *average per-process* fetched volume (in elements).
  double per_rank = static_cast<double>(planned_total) / static_cast<double>(comm.size());
  return per_rank / static_cast<double>(mem_a);
}

}  // namespace sa1d
