// Algorithm 2 of the paper: the block fetching strategy. The owner's
// nonzero columns (in DCSC order) are split into at most K contiguous
// groups; a group is fetched iff it contains at least one required column.
// This bounds the number of RDMA messages per remote process by K while
// still covering every required column.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "util/common.hpp"

namespace sa1d {

/// One contiguous run of nonzero-column *positions* [begin, end) in the
/// owner's DCSC order; fetching it moves elements [cp[begin], cp[end]).
struct FetchRange {
  index_t begin = 0;
  index_t end = 0;

  friend bool operator==(const FetchRange&, const FetchRange&) = default;
};

/// Builds the fetch plan for one remote process.
///   nzc           number of nonzero columns the owner stores
///   k_groups      the paper's K parameter (e.g. 2048)
///   needed        needed[pos] == true iff the column at `pos` participates
///                 in the local computation (H ∩ D restricted to this owner)
///   merge_adjacent  optional extension: coalesce back-to-back chosen groups
///                 into one message (fewer, larger messages than Alg. 2)
/// Postconditions (tested): ranges are disjoint, ascending, within [0,nzc),
/// their union covers every needed position, and size() <= k_groups
/// (without merging; merging can only reduce the count).
inline std::vector<FetchRange> block_fetch_plan(index_t nzc, index_t k_groups,
                                                const std::vector<bool>& needed,
                                                bool merge_adjacent = false) {
  require(k_groups > 0, "block_fetch_plan: K must be positive");
  require(static_cast<index_t>(needed.size()) == nzc, "block_fetch_plan: needed size != nzc");
  std::vector<FetchRange> out;
  if (nzc == 0) return out;

  index_t groups = std::min(k_groups, nzc);
  index_t base = nzc / groups, rem = nzc % groups;
  index_t begin = 0;
  for (index_t g = 0; g < groups; ++g) {
    index_t len = base + (g < rem ? 1 : 0);
    index_t end = begin + len;
    bool choose = false;
    for (index_t p = begin; p < end && !choose; ++p) choose = needed[static_cast<std::size_t>(p)];
    if (choose) {
      if (merge_adjacent && !out.empty() && out.back().end == begin) {
        out.back().end = end;
      } else {
        out.push_back({begin, end});
      }
    }
    begin = end;
  }
  return out;
}

/// Elements moved by a plan given the owner's cp prefix array.
inline index_t plan_elements(const std::vector<FetchRange>& plan,
                             std::span<const index_t> cp) {
  index_t total = 0;
  for (const auto& r : plan)
    total += cp[static_cast<std::size_t>(r.end)] - cp[static_cast<std::size_t>(r.begin)];
  return total;
}

}  // namespace sa1d
