// Multi-tenant serving example: three applications share one cluster and
// one plan cache, each re-multiplying a *fixed* sparsity structure with
// fresh values per request (edge-weight refreshes on a clustered graph, a
// road-like mesh, and a power-law community graph). Requests arrive as a
// mixed stream and are served in batches through spgemm_dist_batched: the
// structure is fingerprinted, the per-tenant plan is built once, and every
// later request replays it with the batch's collectives fused — so a batch
// of k small multiplies pays roughly one per-phase latency instead of k.
//
// A deliberately tight memory budget forces the cache to evict (and to
// demote ring plans to their windowed fallback first), showing the serving
// runtime degrading gracefully instead of failing admission.
//
//   ./serving_mixed [n] [batch]
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "sa1d.hpp"

int main(int argc, char** argv) {
  using namespace sa1d;
  index_t n = argc > 1 ? std::atoll(argv[1]) : 1024;
  const int batch = argc > 2 ? std::atoi(argv[2]) : 8;

  // The tenant structures: frozen sparsity, values refreshed per request.
  std::vector<CscMatrix<double>> tenants;
  tenants.push_back(block_clustered<double>(n, 8, 5.0, 0.4, 91));       // CFD-ish
  tenants.push_back(mesh3d<double>(static_cast<index_t>(8)));           // stencil
  tenants.push_back(hidden_community<double>(n, 8, 5.0, 0.5, 93));     // social
  std::printf("3 tenants: %lld/%lld/%lld rows, %lld/%lld/%lld nnz\n",
              static_cast<long long>(tenants[0].nrows()),
              static_cast<long long>(tenants[1].nrows()),
              static_cast<long long>(tenants[2].nrows()),
              static_cast<long long>(tenants[0].nnz()),
              static_cast<long long>(tenants[1].nnz()),
              static_cast<long long>(tenants[2].nnz()));

  Machine machine(16);
  std::uint64_t hits = 0, misses = 0, evictions = 0, demotions = 0, resident = 0;
  int served = 0;
  auto report = machine.run([&](Comm& comm) {
    DistSpgemmOptions opt;
    opt.algo = Algo::Auto;
    opt.expected_batch = batch;
    // Budget two tenants' worth of plans: the third admission must evict
    // (or demote) the least-recently-used plan instead of growing.
    PlanCache<double> cache(/*budget_bytes=*/0, /*demote_window=*/2);
    std::uint64_t two_tenant_bytes = 0;

    for (int round = 0; round < 6; ++round) {
      // The mixed request stream: tenants interleaved round-robin, values
      // keyed by request ordinal (a weight refresh, not a new structure).
      std::vector<CscMatrix<double>> reqs;
      for (int i = 0; i < batch; ++i) {
        const auto& base = tenants[static_cast<std::size_t>(i) % tenants.size()];
        std::vector<double> vals(base.vals().size());
        for (std::size_t v = 0; v < vals.size(); ++v)
          vals[v] = 0.5 + 0.01 * static_cast<double>((round * batch + i + static_cast<int>(v)) % 97);
        reqs.emplace_back(base.nrows(), base.ncols(), base.colptr(), base.rowids(),
                          std::move(vals));
      }
      std::vector<DistMatrix1D<double>> ops;
      ops.reserve(reqs.size());
      for (const auto& r : reqs) ops.push_back(DistMatrix1D<double>::from_global(comm, r));
      std::vector<std::pair<const DistMatrix1D<double>*, const DistMatrix1D<double>*>> items;
      for (const auto& op : ops) items.push_back({&op, &op});

      auto results = spgemm_dist_batched(comm, cache, items, opt);
      if (comm.rank() == 0) served += static_cast<int>(results.size());

      if (round == 1) {
        // After two unbounded rounds every tenant's plan is resident;
        // shrink the budget below that to put admission under pressure.
        two_tenant_bytes = cache.stats().bytes_resident * 2 / 3;
        cache.set_budget(two_tenant_bytes);
      }
    }
    if (comm.rank() == 0) {
      hits = cache.stats().hits;
      misses = cache.stats().misses;
      evictions = cache.stats().evictions;
      demotions = cache.stats().demotions;
      resident = cache.stats().bytes_resident;
    }
  });

  std::printf("served %d multiplies in batches of %d through one plan cache\n", served, batch);
  std::printf("cache: %llu hits / %llu misses (hit rate %.2f), %llu evictions, %llu demotions\n",
              static_cast<unsigned long long>(hits), static_cast<unsigned long long>(misses),
              hits + misses > 0
                  ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                  : 0.0,
              static_cast<unsigned long long>(evictions),
              static_cast<unsigned long long>(demotions));
  std::printf("resident plan bytes under budget: %.2f KiB\n",
              static_cast<double>(resident) / 1024.0);
  std::printf("modeled network time: %.3f ms across %d ranks\n",
              1e3 * report.ranks[0].comm_s, machine.nranks());
  return 0;
}
