// Partition study: walk through the paper's §V decision procedure on
// matrices with different structure. For each input, compute the CV/memA
// advisor ratio, then measure the real communication volume of the
// sparsity-aware 1D SpGEMM under (a) natural order, (b) random permutation,
// (c) multilevel partitioning — and report which choice the advisor would
// have made and whether it was right.
//
//   ./partition_study
#include <cstdio>

#include "sa1d.hpp"

namespace {

using namespace sa1d;

void study(const char* name, const CscMatrix<double>& a, int P) {
  Machine machine(P);

  auto volume_with = [&](const CscMatrix<double>& m, const std::vector<index_t>& bounds,
                         double* cv) {
    auto rep = machine.run([&](Comm& comm) {
      auto da = DistMatrix1D<double>::from_global(comm, m, bounds);
      double r = cv_over_mem_a(comm, da, da);
      if (comm.rank() == 0 && cv) *cv = r;
      spgemm_1d(comm, da, da);
    });
    return static_cast<double>(rep.total_rdma_bytes()) / (1 << 20);
  };

  double cv_natural = 0;
  double v_natural = volume_with(a, {}, &cv_natural);
  auto rand_perm = random_permutation(a.ncols(), 3);
  double v_random = volume_with(permute_symmetric(a, rand_perm), {}, nullptr);

  auto g = graph_from_matrix(symmetrize(a));
  auto w = flops_vertex_weights(a);
  PartitionOptions opt;
  opt.nparts = P;
  auto layout = partition_to_layout(partition_graph(g, w, opt).part, P);
  double v_parted = volume_with(permute_symmetric(a, layout.perm), layout.bounds, nullptr);

  const char* advice = cv_natural > 0.3 ? "partition" : "keep natural order";
  bool advice_right = cv_natural > 0.3 ? (v_parted < v_natural) : (v_natural <= v_parted * 4);
  std::printf("%-22s CV/memA=%.3f -> advisor says: %-18s", name, cv_natural, advice);
  std::printf(" | volume MiB: natural %8.2f  random %8.2f  partitioned %8.2f  (%s)\n",
              v_natural, v_random, v_parted, advice_right ? "advice sound" : "advice off");
}

}  // namespace

int main() {
  using namespace sa1d;
  const int P = 16;
  std::printf("Sec. V decision procedure on four structure classes (P=%d):\n\n", P);
  study("3D mesh (natural)", mesh3d<double>(16), P);
  study("clustered blocks", block_clustered<double>(4096, 16, 8.0, 0.5, 11), P);
  study("hidden communities", hidden_community<double>(4096, 16, 8.0, 0.5, 11), P);
  study("erdos-renyi (random)", erdos_renyi<double>(4096, 8.0, 11, true), P);
  std::printf("\nReading: clustered/mesh inputs need no preprocessing; hidden structure is\n"
              "recovered by the partitioner; true random graphs gain little either way —\n"
              "the paper's worst case for 1D algorithms.\n");
  return 0;
}
