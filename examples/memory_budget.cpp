// Memory-bounded execution (DESIGN.md §13): the same squaring run three
// ways on a simulated 4-rank machine —
//   1. unbudgeted, to see the natural peak-triples high-water mark;
//   2. under a peak budget of half that, backend pinned: the planner
//      resolves a column-panel count (plus windowed ring hops / bounded
//      stage lookahead) that fits, and the result stays bit-identical;
//   3. the same budget with Algo::Auto: every monolithic plan is modeled
//      infeasible, and Auto crosses the cliff by picking a feasible
//      budgeted (backend × panelization) plan instead of failing.
//
//   ./memory_budget
#include <algorithm>
#include <cstdio>

#include "sa1d.hpp"

int main() {
  using namespace sa1d;

  auto a = block_clustered<double>(2048, 16, 6.0, 0.4, /*seed=*/7);
  std::printf("A: %lld x %lld, %lld nonzeros\n", static_cast<long long>(a.nrows()),
              static_cast<long long>(a.ncols()), static_cast<long long>(a.nnz()));

  auto peak_of = [](const RunReport& rep) {
    std::uint64_t mx = 0;
    for (const auto& r : rep.ranks) mx = std::max(mx, r.hwm_triples);
    return mx;
  };

  // 1. Unbudgeted: the anchor peak.
  CscMatrix<double> want;
  DistSpgemmStats st0;
  Machine m0(4);
  auto rep0 = m0.run([&](Comm& comm) {
    auto da = DistMatrix1D<double>::from_global(comm, a);
    DistSpgemmOptions opt;
    opt.algo = Algo::Summa2D;
    auto dc = spgemm_dist(comm, da, da, opt, &st0);
    want = dc.gather(comm);
  });
  const auto peak0 = peak_of(rep0);
  std::printf("unbudgeted summa2d: peak %llu triples (%d panel)\n",
              static_cast<unsigned long long>(peak0), st0.panels);

  // 2. Half the anchor, backend pinned: panels + streaming merges + bounded
  //    lookahead keep every rank under budget, bit-identically.
  const std::uint64_t budget = peak0 / 2 + 1;
  CscMatrix<double> got;
  DistSpgemmStats st1;
  Machine m1(4);
  auto rep1 = m1.run([&](Comm& comm) {
    auto da = DistMatrix1D<double>::from_global(comm, a);
    DistSpgemmOptions opt;
    opt.algo = Algo::Summa2D;
    opt.max_peak_triples = budget;
    auto dc = spgemm_dist(comm, da, da, opt, &st1);
    got = dc.gather(comm);
  });
  std::printf("budget %llu: summa2d ran %d panels, peak %llu triples (%s), result %s\n",
              static_cast<unsigned long long>(budget), st1.panels,
              static_cast<unsigned long long>(peak_of(rep1)),
              peak_of(rep1) <= budget ? "held" : "EXCEEDED",
              got == want ? "bit-identical" : "DIFFERS");

  // 3. Same budget, Auto: the feasibility cliff becomes a priced slope.
  DistSpgemmStats st2;
  Machine m2(4);
  auto rep2 = m2.run([&](Comm& comm) {
    auto da = DistMatrix1D<double>::from_global(comm, a);
    DistSpgemmOptions opt;
    opt.max_peak_triples = budget;
    auto dc = spgemm_dist(comm, da, da, opt, &st2);
    got = dc.gather(comm);
  });
  std::printf("budget %llu: Auto chose %s x %d panels, peak %llu triples, result %s\n",
              static_cast<unsigned long long>(budget), algo_name(st2.chosen), st2.panels,
              static_cast<unsigned long long>(peak_of(rep2)),
              got == want ? "bit-identical" : "DIFFERS");
  return 0;
}
