// Quickstart: multiply two sparse matrices with the sparsity-aware 1D
// algorithm on a simulated 8-rank machine, verify against a serial
// reference, and inspect the communication the algorithm actually did.
//
//   ./quickstart
#include <cstdio>

#include "sa1d.hpp"

int main() {
  using namespace sa1d;

  // A structured sparse matrix: 16 clustered diagonal blocks, the shape the
  // sparsity-aware algorithm exploits (hv15r-like; see DESIGN.md §4).
  auto a = block_clustered<double>(4096, 16, 8.0, 0.5, /*seed=*/42);
  std::printf("A: %lld x %lld, %lld nonzeros\n", static_cast<long long>(a.nrows()),
              static_cast<long long>(a.ncols()), static_cast<long long>(a.nnz()));

  // A simulated distributed machine: 8 ranks, 4 ranks per node, with a
  // Slingshot-like alpha-beta cost model (see runtime/cost_model.hpp).
  CostParams cost;
  cost.ranks_per_node = 4;
  Machine machine(8, cost);

  CscMatrix<double> c_dist;
  auto report = machine.run([&](Comm& comm) {
    // 1D column distribution: rank i owns a contiguous slice of columns.
    auto da = DistMatrix1D<double>::from_global(comm, a);

    // Before communicating, the paper's Sec. V advisor: planned fetch
    // volume over the size of A. Above ~0.3, partition first.
    double cv = cv_over_mem_a(comm, da, da);
    if (comm.rank() == 0) std::printf("CV/memA advisor: %.3f (<0.3: use natural order)\n", cv);

    // C = A * A with Algorithm 1 (windows + H-filter + block fetch).
    Spgemm1dOptions opt;
    opt.block_fetch_k = 2048;  // Algorithm 2's K
    Spgemm1dInfo info;
    auto dc = spgemm_1d(comm, da, da, opt, &info);

    if (comm.rank() == 0)
      std::printf("rank 0 fetched %lld of %lld needed columns (%lld elements) into an "
                  "A-tilde of %lld nonzeros\n",
                  static_cast<long long>(info.fetched_cols),
                  static_cast<long long>(info.needed_cols),
                  static_cast<long long>(info.fetched_elems),
                  static_cast<long long>(info.atilde_nnz));

    // Gather to verify (only sensible at example scale).
    c_dist = dc.gather(comm);
  });

  auto c_ref = spgemm(a, a);
  std::printf("distributed result %s the serial reference\n",
              approx_equal(c_dist, c_ref, 1e-9) ? "matches" : "DIFFERS FROM");

  std::printf("total RDMA: %.2f MiB in %llu messages\n",
              static_cast<double>(report.total_rdma_bytes()) / (1 << 20),
              static_cast<unsigned long long>(report.total_rdma_msgs()));
  CostModel cm(cost);
  ModeledTime t = cm.run_time(report.ranks);
  std::printf("modeled time: %.3f ms (comp %.3f + comm %.3f + plan %.3f + other %.3f)\n",
              1e3 * t.total(), 1e3 * t.comp, 1e3 * t.comm, 1e3 * t.plan, 1e3 * t.other);
  return 0;
}
