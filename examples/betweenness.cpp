// Betweenness-centrality example: rank the most central vertices of a
// community network with the batched linear-algebra Brandes algorithm
// (multi-source BFS + backward sweep, both SpGEMM on the distributed 1D
// machinery — the paper's §IV-C workload), validated against serial Brandes.
//
//   ./betweenness [n] [batch]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "sa1d.hpp"

int main(int argc, char** argv) {
  using namespace sa1d;
  index_t n = argc > 1 ? std::atoll(argv[1]) : 2048;
  index_t batch = argc > 2 ? std::atoll(argv[2]) : 128;

  // A social-network-like graph: hidden communities, no natural order.
  auto a = hidden_community<double>(n, /*communities=*/16, 8.0, 0.5, /*seed=*/5);
  auto sources = pick_sources(n, batch, /*seed=*/9);
  std::printf("graph: %lld vertices, %lld edges; sampling %lld sources\n",
              static_cast<long long>(n), static_cast<long long>(a.nnz() / 2),
              static_cast<long long>(batch));

  BcResult result;
  Machine machine(8);
  machine.run([&](Comm& comm) {
    auto r = betweenness_batch(comm, a, sources);
    if (comm.rank() == 0) result = r;
  });
  std::printf("BFS finished in %d levels; %zu SpGEMM calls total\n", result.nlevels,
              result.level_stats.size());

  // Top-5 most central vertices.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(), [&](index_t x, index_t y) {
    return result.scores[static_cast<std::size_t>(x)] > result.scores[static_cast<std::size_t>(y)];
  });
  std::printf("top-5 central vertices:\n");
  for (int i = 0; i < 5; ++i)
    std::printf("  #%d vertex %lld  score %.1f\n", i + 1,
                static_cast<long long>(order[static_cast<std::size_t>(i)]),
                result.scores[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])]);

  // Validate against serial Brandes on the same sources.
  auto ref = brandes_serial(a, sources);
  double worst = 0;
  for (std::size_t v = 0; v < ref.size(); ++v)
    worst = std::max(worst, std::abs(ref[v] - result.scores[v]));
  std::printf("max |distributed - serial Brandes| = %.2e (%s)\n", worst,
              worst < 1e-6 ? "ok" : "MISMATCH");
  return 0;
}
