// AMG setup example: build a two-level algebraic multigrid hierarchy for a
// 3D Poisson problem. The restriction operator comes from MIS-2
// aggregation and the Galerkin product R^T A R runs on the distributed 1D
// algorithms — the paper's §IV-B workload.
//
//   ./amg_galerkin [mesh_k]
#include <cstdio>
#include <cstdlib>

#include "sa1d.hpp"

int main(int argc, char** argv) {
  using namespace sa1d;
  index_t k = argc > 1 ? std::atoll(argv[1]) : 20;

  auto a = mesh3d<double>(k);
  std::printf("fine operator: %lld dofs, %lld nnz (3D 27-point Poisson)\n",
              static_cast<long long>(a.nrows()), static_cast<long long>(a.nnz()));

  // Coarsening: distance-2 MIS -> aggregates -> R (one nonzero per row).
  auto roots = mis2(a, /*seed=*/7);
  auto agg = aggregate_mis2(a, roots);
  auto r = restriction_from_aggregates(agg);
  std::printf("MIS-2 picked %zu aggregates: R is %lld x %lld with %lld nnz\n", roots.size(),
              static_cast<long long>(r.nrows()), static_cast<long long>(r.ncols()),
              static_cast<long long>(r.nnz()));

  Machine machine(16);
  CscMatrix<double> coarse;
  auto report = machine.run([&](Comm& comm) {
    // Left multiply with Algorithm 1, right multiply with the outer-product
    // algorithm — the configuration Fig 12 shows is fastest.
    auto res = galerkin_product(comm, a, r, {}, RightMultAlgo::OuterProduct1d);
    coarse = res.rtar.gather(comm);
  });

  std::printf("coarse operator: %lld dofs, %lld nnz (%.1fx reduction)\n",
              static_cast<long long>(coarse.nrows()), static_cast<long long>(coarse.nnz()),
              static_cast<double>(a.nnz()) / static_cast<double>(coarse.nnz()));

  // Sanity: the Galerkin coarse operator of a symmetric A stays symmetric.
  std::printf("coarse operator symmetric: %s\n",
              approx_equal(coarse, transpose(coarse), 1e-9) ? "yes" : "NO");
  std::printf("setup moved %.2f MiB over the network across 16 ranks\n",
              static_cast<double>(report.total_bytes_network()) / (1 << 20));
  return 0;
}
