// Graph-mining example: Markov clustering and triangle counting on the same
// protein-network-like graph — the two SpGEMM application families the
// paper's introduction motivates (HipMCL squaring; triangle counting as the
// early 1D use case). Both run on the sparsity-aware 1D machinery.
//
//   ./graph_clustering [n] [communities]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "sa1d.hpp"

int main(int argc, char** argv) {
  using namespace sa1d;
  index_t n = argc > 1 ? std::atoll(argv[1]) : 1536;
  index_t k = argc > 2 ? std::atoll(argv[2]) : 12;

  auto a = hidden_community<double>(n, k, 9.0, 0.05, /*seed=*/3);
  std::printf("graph: %lld vertices, %lld edges, %lld planted communities (hidden by a "
              "random relabeling)\n",
              static_cast<long long>(n), static_cast<long long>(a.nnz() / 2),
              static_cast<long long>(k));

  Machine machine(8);
  machine.run([&](Comm& comm) {
    // Triangle counting: local clustering evidence.
    auto triangles = count_triangles_1d(comm, a);

    // MCL: expansion = distributed squaring (the paper's core workload).
    MclOptions opt;
    opt.inflation = 2.0;
    auto res = mcl_cluster(comm, a, opt);

    if (comm.rank() == 0) {
      std::printf("triangles: %lld\n", static_cast<long long>(triangles));
      std::printf("MCL: %lld clusters after %d iterations (%s)\n",
                  static_cast<long long>(res.nclusters), res.iterations,
                  res.converged ? "converged" : "iteration cap");
      std::map<index_t, index_t> sizes;
      for (auto c : res.cluster) ++sizes[c];
      index_t big = 0;
      for (auto& [id, sz] : sizes)
        if (sz >= n / (4 * k)) ++big;
      std::printf("clusters holding a community-sized population: %lld (planted: %lld)\n",
                  static_cast<long long>(big), static_cast<long long>(k));
    }
  });
  return 0;
}
