// Fig 11: strong scaling of RᵀA on the four datasets, plus the full
// restriction pipeline (RᵀA + (RᵀA)R) algorithm comparison on queen-like.
// Paper result: the 1D variant beats 2D/3D; scaling flattens once the
// restriction workload is too small (after ~8192 cores there).
#include <cstdio>

#include "apps/amg.hpp"
#include "bench_common.hpp"
#include "dist/spgemm3d.hpp"
#include "dist/summa2d.hpp"
#include "part/permutation.hpp"

int main() {
  using namespace sa1d;
  bench::banner("fig11_rta_scaling", "Fig 11",
                "R from MIS-2; R^T A via sparsity-aware 1D vs 2D/3D baselines");

  std::printf("-- R^T A strong scaling (modeled ms) --\n");
  std::printf("%-13s %8s %8s %8s\n", "dataset", "P=4", "P=16", "P=64");
  for (auto d : {Dataset::QueenLike, Dataset::StokesLike, Dataset::Hv15rLike,
                 Dataset::NlpkktLike}) {
    auto a = bench::load(d);
    auto r = restriction_operator(symmetrize(a), 11);
    auto rt = transpose(r);
    std::printf("%-13s", dataset_name(d));
    for (int P : {4, 16, 64}) {
      CostParams cp;
      cp.ranks_per_node = 16;
      Machine m(P, cp);
      auto rep = m.run([&](Comm& c) {
        auto drt = DistMatrix1D<double>::from_global(c, rt);
        auto da = DistMatrix1D<double>::from_global(c, a);
        spgemm_1d(c, drt, da);
      });
      std::printf(" %8.2f", 1e3 * bench::modeled(rep, m.cost()).total());
    }
    std::printf("\n");
  }

  std::printf("\n-- queen-like: full restriction R^T A + (R^T A)R, algorithm comparison --\n");
  std::printf("%5s %-22s %12s\n", "P", "algorithm", "modeled ms");
  auto a = bench::load(Dataset::QueenLike);
  auto r = restriction_operator(a, 11);
  auto rt = transpose(r);
  auto perm = random_permutation(a.ncols(), 13);
  auto aperm = permute_symmetric(a, perm);
  auto rperm = permute(r, perm, Permutation::identity(r.ncols()));
  auto rtperm = transpose(rperm);

  for (int P : {4, 16, 64}) {
    CostParams cp;
    cp.ranks_per_node = 16;
    Machine m(P, cp);
    {
      auto rep = m.run([&](Comm& c) {
        auto res = galerkin_product(c, a, r, {}, RightMultAlgo::OuterProduct1d);
        (void)res;
      });
      std::printf("%5d %-22s %12.2f\n", P, "1D (outer right)",
                  1e3 * bench::modeled(rep, m.cost()).total());
    }
    {
      auto rep = m.run([&](Comm& c) {
        auto rta = spgemm_summa_2d(c, rtperm, aperm);
        auto rta_csc = gather_coo(c, rta);
        spgemm_summa_2d(c, rta_csc, rperm);
      });
      std::printf("%5d %-22s %12.2f\n", P, "2D SUMMA (rand)",
                  1e3 * bench::modeled(rep, m.cost()).total());
    }
    for (int layers : valid_layer_counts(P)) {
      if (layers == 1 || layers == P) continue;
      auto rep = m.run([&](Comm& c) {
        auto rta = spgemm_split_3d(c, rtperm, aperm, layers);
        auto rta_csc = gather_coo(c, rta);
        spgemm_split_3d(c, rta_csc, rperm, layers);
      });
      char label[64];
      std::snprintf(label, sizeof label, "3D split c=%d (rand)", layers);
      std::printf("%5d %-22s %12.2f\n", P, label, 1e3 * bench::modeled(rep, m.cost()).total());
      break;  // smallest non-trivial layer count is representative here
    }
  }
  std::printf("\n(paper: 1D variant best; scaling stalls when the restriction workload "
              "is too small per rank)\n");
  return 0;
}
