// Fig 7: MPI x OpenMP configuration sweep at a fixed core budget on
// hv15r-like squaring. For c = p*t cores we vary the rank count p (ranks
// really execute; the per-rank thread count t enters through the
// measured-Amdahl model of DESIGN.md §5). Paper result: intermediate rank
// counts (64-256) win — few ranks pay serial copy overhead ("other"),
// many ranks pay communication.
#include <cstdio>

#include "bench_common.hpp"
#include "core/spgemm1d.hpp"

int main() {
  using namespace sa1d;
  bench::banner("fig07_mpi_omp_sweep", "Fig 7",
                "thread axis via measured serial/parallel decomposition (single-core host)");
  auto a = bench::load(Dataset::Hv15rLike);

  for (int cores : {256, 1024}) {
    std::printf("\n-- %d cores (p ranks x t threads) --\n", cores);
    std::printf("%8s %8s %12s %12s %12s %12s %12s\n", "p", "t", "comm ms", "comp ms", "plan ms",
                "other ms", "total ms");
    for (int p : {16, 64, 256, 1024}) {
      if (p > cores) continue;
      int t = cores / p;
      CostParams cp;
      cp.ranks_per_node = std::max(1, p / 8);  // 8-node allocation
      Machine m(p, cp);
      auto rep = m.run([&](Comm& c) {
        auto da = DistMatrix1D<double>::from_global(c, a);
        spgemm_1d(c, da, da);
      });
      auto b = bench::modeled(rep, m.cost(), t);
      std::printf("%8d %8d %12.3f %12.3f %12.3f %12.3f %12.3f\n", p, t, 1e3 * b.comm,
                  1e3 * b.comp, 1e3 * b.plan, 1e3 * b.other, 1e3 * b.total());
    }
  }
  std::printf("\n(paper: 64-256 ranks optimal; extremes lose to serial overhead or comm)\n");
  return 0;
}
