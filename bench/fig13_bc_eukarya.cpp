// Fig 13: betweenness centrality on eukarya-like — per-iteration SpGEMM
// time of the forward search and backward sweep of the first batch,
// comparing the partitioned sparsity-aware 1D algorithm against 2D/3D.
// Paper result (64 ranks, METIS permutation): 1D is ~1.7x faster than the
// best baseline (3D).
#include <cstdio>

#include "bc_compare.hpp"
#include "part/partitioner.hpp"

int main() {
  using namespace sa1d;
  bench::banner("fig13_bc_eukarya", "Fig 13",
                "batch of sources; partitioner permutation applied for the 1D algorithm");
  // Smaller than the squaring benches: the 2D/3D comparison drivers hold
  // replicated frontier operands on every rank-thread, so the footprint is
  // P x (matrix + frontiers). Paper runs 64 ranks on 4 nodes.
  const int P = 16;
  const index_t batch = 128;
  CostParams cp;
  cp.ranks_per_node = 4;
  Machine m(P, cp);

  auto a0 = make_dataset(Dataset::EukaryaLike, 0.3 * bench::bench_scale());
  auto sources = pick_sources(a0.ncols(), batch, 21);

  // Partition (the recommended preprocessing for eukarya; cost excluded as
  // in the paper — BC runs thousands of SpGEMMs per partitioning).
  auto g = graph_from_matrix(a0);
  auto w = flops_vertex_weights(a0);
  PartitionOptions popt;
  popt.nparts = P;
  auto layout = partition_to_layout(partition_graph(g, w, popt).part, P);
  auto a = permute_symmetric(a0, layout.perm);
  std::vector<index_t> psources;
  for (auto s : sources) psources.push_back(layout.perm(s));

  std::printf("\n-- eukarya-like, batch=%lld, %d ranks (per-level SpGEMM ms) --\n",
              static_cast<long long>(batch), P);
  // Coarse block fetching: at this instance scale each owner has only a few
  // hundred nonzero columns, so the paper's K=2048 would degenerate to
  // per-column messages; K=32 + adjacent merging keeps the latency term at
  // the same message:volume balance the paper tunes for (cf. fig06).
  BcOptions bopt;
  bopt.mult.block_fetch_k = 32;
  bopt.mult.merge_adjacent_blocks = true;
  auto s1d = bench::bc_series_1d(m, a, psources, bopt);
  bench::print_series("1D (partitioned)", s1d);
  auto s2d = bench::bc_series_baseline(m, a, psources, bench::make_summa2d_mult());
  bench::print_series("2D SUMMA", s2d);
  auto s3d = bench::bc_series_baseline(m, a, psources, bench::make_split3d_mult(4));
  bench::print_series("3D split (c=4)", s3d);

  auto total = [](const bench::LevelSeries& s) {
    double t = 0;
    for (auto v : s.forward_ms) t += v;
    for (auto v : s.backward_ms) t += v;
    return t;
  };
  std::printf("\n  totals: 1D %.3f ms, 2D %.3f ms, 3D %.3f ms -> 1D speedup vs best "
              "baseline: %.2fx (paper: 1.74x vs 3D)\n",
              total(s1d), total(s2d), total(s3d),
              std::min(total(s2d), total(s3d)) / total(s1d));
  return 0;
}
